module st2gpu

go 1.22
