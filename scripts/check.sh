#!/bin/sh
# Repo gate: static analysis + full test suite under the race detector.
# Equivalent to `make check`; kept as a script for environments without
# make.
set -eu
cd "$(dirname "$0")/.."

go vet ./...

# st2lint enforces the determinism and shard-ownership invariants
# (DESIGN.md §11) plus the concurrency-safety and wire-taint invariants
# (DESIGN.md §16) statically — it must pass before the race suite runs,
# since a lint violation usually predicts a bit-identity failure or a
# decoder OOM that is much slower to chase at runtime. The go-list load
# is cached; the committed baseline is empty and must stay empty.
go run ./cmd/st2lint -cache .cache/st2lint -baseline .st2lint-baseline.json ./...

go test -race ./...

# The sweep-grid determinism rule deserves its own named gate: the
# (kernel × design) grid must be race-clean and bit-identical at any
# -sweep-workers count (the full -race sweep above also covers it, but a
# failure here names the broken invariant directly).
go test -race -count=1 -run TestSweepBitIdenticalAcrossWorkers ./internal/experiments

# Distributed-sweep determinism gate: a scale-1 sweep sharded over real
# worker subprocesses (2 and 3 shards × 1 and 2 sweep-workers, partial
# kernel-section loads from the store) must produce rows DeepEqual to
# the in-process grid, under the race detector — the named smoke for
# the coordinator/worker protocol and the lease/requeue machinery.
go test -race -count=1 -run 'TestShardedSweepMatchesInProcess|TestShardedSweepSurvivesWorkerKill' ./internal/experiments

# Short fuzz pass over the recording decoder: seeds plus a few seconds
# of mutation must never panic, over-allocate, or round-trip unstably.
go test -run='^$' -fuzz=FuzzReadRecording -fuzztime=5s ./internal/gpusim
