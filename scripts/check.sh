#!/bin/sh
# Repo gate: static analysis + full test suite under the race detector.
# Equivalent to `make check`; kept as a script for environments without
# make.
set -eu
cd "$(dirname "$0")/.."

go vet ./...
go test -race ./...
