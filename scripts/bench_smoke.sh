#!/bin/sh
# Smoke benchmark: run the full evaluation suite at scale 1 with the
# JSONL run manifest enabled and sanity-check the output. Catches the
# regressions a unit test can miss — NaN statistics leaking into the
# manifest, kernels silently executing zero instructions, or the
# manifest losing events. The manifest itself goes to a temp file; the
# suite summary is appended to the BENCH_smoke.json trend array at the
# repo root (newest entry last), which scripts/trend_gate.sh gates.
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_smoke.json
RUNLOG=$(mktemp -t st2smoke.XXXXXX.jsonl)
trap 'rm -f "$RUNLOG"' EXIT

go run ./cmd/st2sim -kernel all -scale 1 -sms 2 -json "$RUNLOG" -bench "$OUT" -progress >/dev/null

fail() {
    echo "bench-smoke: FAIL: $1" >&2
    exit 1
}

# last <key>: extract the field value from the newest entry of the
# append-only JSON trend array (each entry carries each key once, so the
# last match is the run we just appended).
last() {
    sed -n "s/.*\"$1\": \{0,1\}\([^,}]*\).*/\1/p" "$OUT" | tail -1
}

[ -s "$RUNLOG" ] || fail "run manifest is missing or empty"

# Every suite kernel must have produced exactly one manifest event.
lines=$(wc -l < "$RUNLOG")
[ "$lines" -ge 23 ] || fail "expected >= 23 manifest events, got $lines"

# NaN never survives json.Marshal, so its presence means someone started
# sanitizing instead of fixing the source statistic.
if grep -q 'NaN' "$RUNLOG"; then
    fail "NaN found in the run manifest"
fi

# A kernel that executed zero thread instructions is a broken workload.
if grep -q '"total_thread_instrs":0[,}]' "$RUNLOG"; then
    fail "kernel with zero thread instructions in the run manifest"
fi

# The newest trend entry must reflect the run we just made.
[ -s "$OUT" ] || fail "$OUT is missing or empty"
[ "$(last kernels)" = "23" ] || fail "newest $OUT entry covers $(last kernels) kernels, want 23"
instrs=$(last total_thread_instrs)
[ -n "$instrs" ] || fail "total_thread_instrs missing from $OUT"
[ "$instrs" -gt 0 ] 2>/dev/null || fail "newest $OUT entry recorded zero thread instructions"
secs=$(last total_seconds)
[ -n "$secs" ] || fail "total_seconds missing from $OUT"
awk "BEGIN { exit !($secs > 0) }" || fail "newest $OUT entry has non-positive total_seconds"

echo "bench-smoke: OK ($lines manifest events; suite ${secs}s appended to $OUT)"
