#!/bin/sh
# Smoke benchmark: run the full evaluation suite at scale 1 with the
# JSONL run manifest enabled and sanity-check the output. Catches the
# regressions a unit test can miss — NaN statistics leaking into the
# manifest, kernels silently executing zero instructions, or the
# manifest losing events. Writes BENCH_smoke.json at the repo root.
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_smoke.json

go run ./cmd/st2sim -kernel all -scale 1 -sms 2 -json "$OUT" -progress >/dev/null

fail() {
    echo "bench-smoke: FAIL: $1" >&2
    exit 1
}

[ -s "$OUT" ] || fail "$OUT is missing or empty"

# Every suite kernel must have produced exactly one manifest event.
lines=$(wc -l < "$OUT")
[ "$lines" -ge 23 ] || fail "expected >= 23 manifest events, got $lines"

# NaN never survives json.Marshal, so its presence means someone started
# sanitizing instead of fixing the source statistic.
if grep -q 'NaN' "$OUT"; then
    fail "NaN found in $OUT"
fi

# A kernel that executed zero thread instructions is a broken workload.
if grep -q '"total_thread_instrs":0[,}]' "$OUT"; then
    fail "kernel with zero thread instructions in $OUT"
fi

echo "bench-smoke: OK ($lines events in $OUT)"
