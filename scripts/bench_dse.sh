#!/bin/sh
# DSE benchmark: time the decode-once parallel Figure 5 sweep (one SoA
# decode + (kernel × design) grid) against the per-design replay baseline
# (each design varint-decodes the recorded stream from scratch) over the
# full 12-design space, and verify the rows are bit-identical at several
# worker counts. st2dse -bench exits non-zero itself on a row mismatch;
# this script additionally sanity-checks the JSON payload and fails
# loudly if identity or the speedup floor is lost. Writes BENCH_dse.json
# at the repo root.
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_dse.json

go run ./cmd/st2dse -bench "$OUT" -scale 1 -sms 2

fail() {
    echo "bench-dse: FAIL: $1" >&2
    exit 1
}

[ -s "$OUT" ] || fail "$OUT is missing or empty"

grep -q '"identical": true' "$OUT" || fail "decode-once rows not bit-identical to per-design replay"
grep -q '"designs": 12' "$OUT" || fail "sweep did not cover the 12-design space"
grep -q '"sweep_workers":' "$OUT" || fail "sweep_workers missing from $OUT"

if grep -q '"recorded_ops": 0[,}]' "$OUT"; then
    fail "recording captured zero warp-add records"
fi

# Decode throughput must be present and nonzero — it is the denominator
# of the whole decode-once trade.
decops=$(sed -n 's/.*"decode_ops_per_sec": \([0-9.]*\).*/\1/p' "$OUT")
[ -n "$decops" ] || fail "decode_ops_per_sec missing from $OUT"
awk "BEGIN { exit !($decops > 0) }" || fail "decode throughput is zero"

# The decode-once sweep must never lose to per-design replay: on a
# single-core box it still saves 11 of 12 varint decodes (floor 1.0);
# with real host parallelism the grid should win by at least 2x.
speedup=$(sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p' "$OUT")
[ -n "$speedup" ] || fail "speedup missing from $OUT"
hostpar=$(sed -n 's/.*"host_parallelism": \([0-9]*\).*/\1/p' "$OUT")
[ -n "$hostpar" ] || fail "host_parallelism missing from $OUT"
floor=1.0
[ "$hostpar" -gt 1 ] && floor=2.0
awk "BEGIN { exit !($speedup >= $floor) }" || fail "speedup $speedup < ${floor}x (host_parallelism=$hostpar)"

echo "bench-dse: OK (speedup ${speedup}x over per-design replay, decode ${decops} ops/s, identical rows, $OUT)"
