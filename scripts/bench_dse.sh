#!/bin/sh
# DSE benchmark: time the record-once/replay-many Figure 5 sweep against
# the legacy simulate-per-design baseline over the full 12-design space,
# and verify the miss rates are bit-identical. st2dse -bench exits
# non-zero itself on a rate mismatch; this script additionally
# sanity-checks the JSON payload. Writes BENCH_dse.json at the repo root.
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_dse.json

go run ./cmd/st2dse -bench "$OUT" -scale 1 -sms 2

fail() {
    echo "bench-dse: FAIL: $1" >&2
    exit 1
}

[ -s "$OUT" ] || fail "$OUT is missing or empty"

grep -q '"identical": true' "$OUT" || fail "replayed rates not bit-identical to live"
grep -q '"designs": 12' "$OUT" || fail "sweep did not cover the 12-design space"

if grep -q '"recorded_ops": 0[,}]' "$OUT"; then
    fail "recording captured zero warp-add records"
fi

# The replay sweep must beat simulate-per-design even on a single-core
# CI box (replay skips 11 of 12 simulation passes); multi-core hosts see
# far more. Keep the floor modest so the gate is not flaky.
speedup=$(sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p' "$OUT")
[ -n "$speedup" ] || fail "speedup missing from $OUT"
awk "BEGIN { exit !($speedup >= 1.5) }" || fail "speedup $speedup < 1.5x"

echo "bench-dse: OK (speedup ${speedup}x, identical rates, $OUT)"
