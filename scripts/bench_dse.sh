#!/bin/sh
# DSE benchmark: time the design-batched bit-parallel Figure 5 sweep
# (one SoA decode + (kernel × design-batch) grid, all designs advanced
# in one pass per record) against decode-once per-design evaluation and
# against the per-design replay baseline (each design varint-decodes the
# recorded stream from scratch) over the full 12-design space, and
# verify the rows are bit-identical at several worker counts. st2dse
# -bench exits non-zero itself on a row mismatch; this script
# additionally sanity-checks the JSON payload and fails loudly if
# identity or a throughput floor is lost. Appends to the BENCH_dse.json
# array at the repo root; all checks read the newest (last) entry.
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_dse.json

go run ./cmd/st2dse -bench "$OUT" -scale 1 -sms 2

fail() {
    echo "bench-dse: FAIL: $1" >&2
    exit 1
}

# last <sed-pattern>: extract the field value from the newest entry of
# the append-only JSON array (each entry carries each key once, so the
# last match is the run we just appended).
last() {
    sed -n "s/.*\"$1\": \([^,}]*\).*/\1/p" "$OUT" | tail -1
}

[ -s "$OUT" ] || fail "$OUT is missing or empty"

[ "$(last identical)" = "true" ] || fail "sweep rows not bit-identical across batched / decode-once / per-design"
[ "$(last designs)" = "12" ] || fail "sweep did not cover the 12-design space"
[ -n "$(last sweep_workers)" ] || fail "sweep_workers missing from $OUT"

recops=$(last recorded_ops)
[ -n "$recops" ] || fail "recorded_ops missing from $OUT"
[ "$recops" -gt 0 ] 2>/dev/null || fail "recording captured zero warp-add records"

# Decode throughput must be present and nonzero — it is the denominator
# of the whole decode-once trade.
decops=$(last decode_ops_per_sec)
[ -n "$decops" ] || fail "decode_ops_per_sec missing from $OUT"
awk "BEGIN { exit !($decops > 0) }" || fail "decode throughput is zero"

hostpar=$(last host_parallelism)
[ -n "$hostpar" ] || fail "host_parallelism missing from $OUT"

# The decode-once sweep must never lose to per-design replay: on a
# single-core box it still saves 11 of 12 varint decodes (floor 1.0);
# with real host parallelism the grid should win by at least 2x.
speedup=$(last speedup)
[ -n "$speedup" ] || fail "speedup missing from $OUT"
floor=1.0
[ "$hostpar" -gt 1 ] && floor=2.0
awk "BEGIN { exit !($speedup >= $floor) }" || fail "speedup $speedup < ${floor}x (host_parallelism=$hostpar)"

# Batched-throughput floor: the design-batched kernel measures ~13x over
# per-design replay even on a single core (flat-table predictor state,
# one decode pass, hoisted Peek); require 5x there so a regression that
# reintroduces per-design decode or map traffic fails the gate, and 10x
# once the host has real parallelism (the ISSUE's acceptance bar).
bspeedup=$(last batched_speedup)
[ -n "$bspeedup" ] || fail "batched_speedup missing from $OUT"
bfloor=5.0
[ "$hostpar" -gt 1 ] && bfloor=10.0
awk "BEGIN { exit !($bspeedup >= $bfloor) }" || fail "batched_speedup $bspeedup < ${bfloor}x (host_parallelism=$hostpar)"

bevalrate=$(last batched_eval_ops_per_sec)
[ -n "$bevalrate" ] || fail "batched_eval_ops_per_sec missing from $OUT"
awk "BEGIN { exit !($bevalrate > 0) }" || fail "batched eval throughput is zero"

# Columnar-store floor: loading the decoded store must beat re-running
# the varint decode by at least 3x even on a single core — the store is
# a sequential column read with no varint parsing, no sum reconstruction,
# and no carry recomputation, so losing this means the load path has
# regressed into decode-shaped work.
sbytes=$(last store_bytes)
[ -n "$sbytes" ] || fail "store_bytes missing from $OUT"
[ "$sbytes" -gt 0 ] 2>/dev/null || fail "store serialized to zero bytes"
sload=$(last store_load_ops_per_sec)
[ -n "$sload" ] || fail "store_load_ops_per_sec missing from $OUT"
awk "BEGIN { exit !($sload > 0) }" || fail "store load throughput is zero"
sspeedup=$(last store_load_speedup)
[ -n "$sspeedup" ] || fail "store_load_speedup missing from $OUT"
awk "BEGIN { exit !($sspeedup >= 3.0) }" || fail "store load speedup $sspeedup < 3.0x over varint decode"

# Sharded-sweep fields: the distributed path must have run (2 worker
# subprocesses), produced bit-identical rows (folded into `identical`
# above), and recorded a nonzero throughput. No >1 floor vs batched —
# on a small single-host grid the subprocess spawn + IPC tax dominates;
# the win is the multi-host scale-out the trend gate tracks.
[ "$(last shards)" = "2" ] || fail "sharded sweep did not run over 2 workers"
srate=$(last sharded_eval_ops_per_sec)
[ -n "$srate" ] || fail "sharded_eval_ops_per_sec missing from $OUT"
awk "BEGIN { exit !($srate > 0) }" || fail "sharded eval throughput is zero"

# Partial-load floor: opening the store and loading ONE kernel's
# sections must beat a full-store load by 2x — the whole point of the
# section table is that a shard worker's load time tracks its
# assignment, so losing this means LoadKernels regressed into reading
# the file.
prate=$(last store_partial_load_ops_per_sec)
[ -n "$prate" ] || fail "store_partial_load_ops_per_sec missing from $OUT"
awk "BEGIN { exit !($prate > 0) }" || fail "partial store load throughput is zero"
pspeedup=$(last store_partial_load_speedup)
[ -n "$pspeedup" ] || fail "store_partial_load_speedup missing from $OUT"
awk "BEGIN { exit !($pspeedup >= 2.0) }" || fail "partial-load speedup $pspeedup < 2.0x over a full store load"

echo "bench-dse: OK (batched ${bspeedup}x / decode-once ${speedup}x over per-design replay, batched ${bevalrate} eval-ops/s, decode ${decops} ops/s, store load ${sspeedup}x over decode, partial load ${pspeedup}x over full, sharded ${srate} eval-ops/s, identical rows, $OUT)"
