#!/bin/sh
# Trend gate: parse the append-only benchmark trend arrays with
# cmd/st2trend and fail if the newest entry regresses against the best
# prior entry. Run after bench_smoke.sh / bench_dse.sh have appended
# fresh entries (make check does this). The ratios are deliberately
# loose — they catch order-of-magnitude regressions (a reintroduced
# per-design decode, a sweep gone sequential, a suite that stopped
# simulating), not CI-host jitter.
#
#   BENCH_dse.json   batched_eval_ops_per_sec       ≥ 0.25 × best prior
#                    decode_ops_per_sec             ≥ 0.25 × best prior
#                    store_load_ops_per_sec         ≥ 0.25 × best prior
#                    sharded_eval_ops_per_sec       ≥ 0.25 × best prior
#                    store_partial_load_ops_per_sec ≥ 0.25 × best prior
#                    identical                      == true (bit-identity verdict)
#   BENCH_smoke.json total_seconds            ≤ 5 × best prior
#                    kernels                  ≥ best prior (suite never shrinks)
set -eu
cd "$(dirname "$0")/.."

fail() {
    echo "trend-gate: FAIL: $1" >&2
    exit 1
}

[ -s BENCH_dse.json ] || fail "BENCH_dse.json missing — run scripts/bench_dse.sh first"
[ -s BENCH_smoke.json ] || fail "BENCH_smoke.json missing — run scripts/bench_smoke.sh first"

go run ./cmd/st2trend -q \
    -gate batched_eval_ops_per_sec:higher:0.25 \
    -gate decode_ops_per_sec:higher:0.25 \
    -gate store_load_ops_per_sec:higher:0.25 \
    -gate sharded_eval_ops_per_sec:higher:0.25 \
    -gate store_partial_load_ops_per_sec:higher:0.25 \
    -gate identical:true \
    -gate total_seconds:lower:5.0 \
    -gate kernels:higher:1.0 \
    BENCH_dse.json BENCH_smoke.json

echo "trend-gate: OK"
