// Quickstart: drive an ST² adder unit directly.
//
// This example builds the paper's final design — a 64-bit sliced
// speculative adder with the Ltid+Prev+ModPC4+Peek carry-speculation
// mechanism backed by a Carry Register File — and feeds it a loop-shaped
// value stream, printing how the speculation warms up, what each
// misprediction costs, and the resulting energy relative to the baseline
// adder.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"st2gpu/internal/adder"
	"st2gpu/internal/circuit"
	"st2gpu/internal/core"
	"st2gpu/internal/speculate"
)

func main() {
	// 1. Price the unit from the circuit characterization (the Synopsys
	// stand-in): nominal reference adder vs. voltage-scaled 8-bit slices.
	tech := circuit.SAED90()
	price, err := core.DeriveEnergyParams(tech, 64, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit characterization (%s):\n", tech.Name)
	fmt.Printf("  slice supply        %.3f V (%.0f%% of nominal)\n",
		price.ScaledSupply, 100*price.SupplyRatio)
	fmt.Printf("  reference adder     %.3g J/op\n", price.RefAdderEnergy)
	fmt.Printf("  ST² slices (8×)     %.3g J/op before mispredictions\n",
		8*price.SliceEnergy)

	// 2. Build the 64-bit ALU unit and its speculation source: the
	// hardware CRF (16 entries × 32 lanes × 7 bits) plus the Peek filter.
	unit, err := core.NewUnit(core.ALU, 8, price)
	if err != nil {
		log.Fatal(err)
	}
	crf := speculate.NewDefaultCRF(42)
	spec := &core.CRFSpeculator{CRF: crf, Geom: unit.Geometry()}

	// 3. Execute a warp-wide loop: every lane accumulates a stride —
	// the "consecutive operations from the same code location are highly
	// correlated" regime of the paper.
	const pc = 3 // low 4 bits index the CRF row
	acc := [32]uint64{}
	for lane := range acc {
		acc[lane] = uint64(lane) * 1000
	}
	fmt.Println("\niter  mispredicted-lanes  cycles  recomputed-slices")
	for iter := 0; iter < 10; iter++ {
		crf.BeginCycle(uint64(iter + 1))
		var lanes [core.WarpSize]core.LaneOp
		for l := 0; l < core.WarpSize; l++ {
			lanes[l] = core.LaneOp{Active: true, A: acc[l], B: 7, Op: adder.Add}
		}
		res := unit.ExecuteWarp(spec, pc, 0, &lanes)
		for l := range acc {
			acc[l] = res.Sums[l] // always bit-exact: ST² guarantees correctness
		}
		fmt.Printf("%4d  %18d  %6d  %17d\n",
			iter, res.ThreadMispredicts, res.Cycles, res.RecomputedSlices)
	}

	// 4. Anatomy of one misprediction, on the raw adder engine.
	fmt.Println("\nanatomy of a misprediction (0xFF + 0x01, all-zero prediction):")
	raw := unit.Adder().Execute(0xFF, 0x01, adder.Add, 0)
	fmt.Print(raw.Describe(unit.Adder().Config()))

	// 5. The aggregate: accuracy and energy vs. the baseline adder.
	st := unit.Stats()
	fmt.Printf("\nthread misprediction rate  %.1f%%\n", 100*st.ThreadMispredictionRate())
	fmt.Printf("adder energy: ST² %.3g J vs baseline %.3g J  (saving %.0f%%)\n",
		st.EnergyST2, st.EnergyBaseline, 100*(1-st.EnergyST2/st.EnergyBaseline))
	fmt.Println("\nEvery sum above is exact — mispredictions cost a cycle, never a bit.")
}
