// Energysweep: the Figure 7 story on a chosen subset of the suite.
//
// Runs a handful of kernels under both adder microarchitectures and
// prints each kernel's energy breakdown and saving — quick-look version
// of cmd/st2energy for programmatic use.
//
// Run with:
//
//	go run ./examples/energysweep [kernel ...]
package main

import (
	"fmt"
	"log"
	"os"

	"st2gpu/internal/circuit"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/kernels"
	"st2gpu/internal/power"
)

func main() {
	names := []string{"walsh_K1", "binomial", "kmeans_K1", "sgemm", "qrng_K1"}
	if len(os.Args) > 1 {
		names = os.Args[1:]
	}
	tbl, err := power.DefaultTable(circuit.SAED90())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %12s %12s %9s %9s %9s\n",
		"kernel", "base (J)", "st2 (J)", "system", "chip", "mispred")
	var sumSys, sumChip float64
	for _, name := range names {
		w, err := kernels.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		var b [2]power.Breakdown
		var mispred float64
		for i, mode := range []gpusim.AdderMode{gpusim.BaselineAdders, gpusim.ST2Adders} {
			spec, err := w.Build(1)
			if err != nil {
				log.Fatal(err)
			}
			cfg := gpusim.DefaultConfig()
			cfg.NumSMs = 2
			cfg.AdderMode = mode
			d, err := gpusim.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if spec.Setup != nil {
				if err := spec.Setup(d.Memory()); err != nil {
					log.Fatal(err)
				}
			}
			rs, err := d.Launch(spec.Kernel)
			if err != nil {
				log.Fatal(err)
			}
			if spec.Verify != nil {
				if err := spec.Verify(d.Memory()); err != nil {
					log.Fatalf("%s: %v", name, err)
				}
			}
			b[i] = power.FromRun(rs, d.Prices(), tbl)
			if mode == gpusim.ST2Adders {
				mispred = rs.MispredictionRate()
			}
		}
		sys := 1 - b[1].Total()/b[0].Total()
		chip := 1 - b[1].Chip()/b[0].Chip()
		sumSys += sys
		sumChip += chip
		fmt.Printf("%-12s %12.3g %12.3g %8.1f%% %8.1f%% %8.2f%%\n",
			name, b[0].Total(), b[1].Total(), 100*sys, 100*chip, 100*mispred)
	}
	n := float64(len(names))
	fmt.Printf("%-12s %12s %12s %8.1f%% %8.1f%%\n", "average", "", "", 100*sumSys/n, 100*sumChip/n)
	fmt.Println("\n(paper, full suite: 19% system / 21% chip savings)")
}
