// Customasm: write a GPU kernel as assembly text and run it on ST² GPU.
//
// The PTX-lite ISA has a canonical textual form (isa.Parse /
// Program.Text). This example embeds a kernel as a string — a saxpy with
// a strided loop — assembles it, runs it under both adder
// microarchitectures, and checks the result on the host.
//
// Run with:
//
//	go run ./examples/customasm
package main

import (
	"fmt"
	"log"

	"st2gpu/internal/gpusim"
	"st2gpu/internal/isa"
)

// Each thread processes elements gtid, gtid+stride, ... of a saxpy:
// y[i] = 2·x[i] + y[i], over n = 4096 elements with 1024 threads.
const src = `
.kernel saxpy_strided
  mov.u32 r0, %gtid
  mov.u32 r1, #4096          // n
  mov.u32 r2, #1024          // stride (total threads)
  mov.u32 r3, r0             // i = gtid
Lloop:
  setp.ge.u32 p0, r3, r1
  @p0 bra Ldone
  shl.u64 r4, r3, #2
  add.u64 r5, r4, #1048576   // &x[i]
  add.u64 r6, r4, #2097152   // &y[i]
  ld.global.f32 r7, [r5]
  ld.global.f32 r8, [r6]
  mul.f32 r7, r7, r9         // a·x  (a staged in r9 below)
  add.f32 r8, r7, r8         // y += a·x — a real ST² FPU add

  st.global.f32 [r6], r8
  add.u32 r3, r3, r2
  bra Lloop
Ldone:
  exit
`

func main() {
	prog, err := isa.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	// r9 holds the scalar a = 2.0; it is staged by prepending a mov.
	// (Alternatively bake it into the FMA immediate; shown here to
	// demonstrate program editing.)
	mov := isa.Instr{Op: isa.OpMov, Type: isa.F32, Dst: 9, Guard: isa.NoPred}
	mov.Srcs[0] = isa.ImmF32(2.0)
	prog.Instrs = append([]isa.Instr{mov}, prog.Instrs...)
	for i := range prog.Instrs {
		if prog.Instrs[i].Op == isa.OpBra {
			prog.Instrs[i].Target++ // branch targets shifted by the insert
		}
	}
	if prog.NumRegs < 10 {
		prog.NumRegs = 10
	}
	if err := prog.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %q: %d instructions\n\n", prog.Name, len(prog.Instrs))

	const n = 4096
	x := make([]float32, n)
	y := make([]float32, n)
	for i := range x {
		// Irregular magnitudes so the mantissa carry speculation actually
		// has something to predict (and occasionally miss).
		x[i] = float32(i%97) * 0.137
		y[i] = float32(i%61)*0.731 + 3.25
	}

	for _, mode := range []gpusim.AdderMode{gpusim.BaselineAdders, gpusim.ST2Adders} {
		cfg := gpusim.DefaultConfig()
		cfg.NumSMs = 2
		cfg.AdderMode = mode
		d, err := gpusim.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := d.Memory().WriteF32s(1<<20, x); err != nil {
			log.Fatal(err)
		}
		if err := d.Memory().WriteF32s(2<<20, y); err != nil {
			log.Fatal(err)
		}
		rs, err := d.Launch(&gpusim.Kernel{Program: prog, GridDim: 8, BlockDim: 128})
		if err != nil {
			log.Fatal(err)
		}
		got, err := d.Memory().ReadF32s(2<<20, n)
		if err != nil {
			log.Fatal(err)
		}
		for i := range got {
			want := x[i]*2 + y[i]
			if got[i] != want {
				log.Fatalf("mode %v: y[%d] = %g, want %g", mode, i, got[i], want)
			}
		}
		fmt.Printf("%-8v %7d cycles, %6d thread instrs, mispredict %.2f%% — result exact\n",
			mode, rs.Cycles, rs.TotalThreadInstrs(), 100*rs.MispredictionRate())
	}
}
