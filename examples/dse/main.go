// DSE: write your own kernel, sweep the carry-speculation design space.
//
// Builds a small custom PTX-lite kernel with the Builder API, runs it once
// on the simulated GPU with the design-space meter attached, and prints
// how every Figure 5 speculation mechanism would have fared on its add
// stream — the workflow for exploring new predictor designs.
//
// Run with:
//
//	go run ./examples/dse
package main

import (
	"fmt"
	"log"

	"st2gpu/internal/gpusim"
	"st2gpu/internal/isa"
	"st2gpu/internal/speculate"
	"st2gpu/internal/trace"
)

// buildHistogram3x3 is a small stencil kernel: each thread sums a 3×3
// neighbourhood — nine loads and eight dependent adds per pixel, a mix of
// small-magnitude data adds and large-magnitude address arithmetic.
func buildHistogram3x3(width, height int) *isa.Program {
	b := isa.NewBuilder("stencil3x3")
	gtid := b.Reg()
	x := b.Reg()
	y := b.Reg()
	acc := b.Reg()
	v := b.Reg()
	idx := b.Reg()
	t := b.Reg()
	addr := b.Reg()

	b.MovSpecial(gtid, isa.SRegGtid)
	b.IRem(isa.U32, x, isa.R(gtid), isa.Imm(uint64(width)))
	b.IDiv(isa.U32, y, isa.R(gtid), isa.Imm(uint64(width)))
	b.Mov(isa.U32, acc, isa.Imm(0))
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			// clamped neighbour index
			b.IAdd(isa.S32, t, isa.R(y), isa.ImmI(int64(dy)))
			b.IMax(isa.S32, t, isa.R(t), isa.Imm(0))
			b.IMin(isa.S32, t, isa.R(t), isa.Imm(uint64(height-1)))
			b.IMul(isa.U32, idx, isa.R(t), isa.Imm(uint64(width)))
			b.IAdd(isa.S32, t, isa.R(x), isa.ImmI(int64(dx)))
			b.IMax(isa.S32, t, isa.R(t), isa.Imm(0))
			b.IMin(isa.S32, t, isa.R(t), isa.Imm(uint64(width-1)))
			b.IAdd(isa.U32, idx, isa.R(idx), isa.R(t))
			b.Shl(isa.U64, addr, isa.R(idx), isa.Imm(2))
			b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(1<<20))
			b.Ld(isa.Global, isa.U32, v, isa.R(addr))
			b.IAdd(isa.U32, acc, isa.R(acc), isa.R(v))
		}
	}
	b.Shl(isa.U64, addr, isa.R(gtid), isa.Imm(2))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(8<<20))
	b.St(isa.Global, isa.U32, isa.R(addr), isa.R(acc))
	b.Exit()
	return b.MustBuild()
}

func main() {
	const width, height = 128, 32
	prog := buildHistogram3x3(width, height)
	fmt.Printf("custom kernel: %d instructions, %d registers\n\n", len(prog.Instrs), prog.NumRegs)

	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 2
	cfg.AdderMode = gpusim.BaselineAdders
	d, err := gpusim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Stage a smooth image — neighbouring pixels correlate, like real data.
	img := make([]uint32, width*height)
	for i := range img {
		img[i] = uint32(100 + (i%width)/4 + (i/width)*3)
	}
	if err := d.Memory().WriteU32s(1<<20, img); err != nil {
		log.Fatal(err)
	}

	// Sweep the full Figure 5 design space plus the XOR-hash ablation in a
	// single pass: every design observes the identical operation stream.
	designs := append(append([]string{}, speculate.DesignSpace...), "Ltid+Prev+XorPC4+Peek", "oracle")
	meter, err := trace.NewDSEMeter(designs)
	if err != nil {
		log.Fatal(err)
	}
	d.SetTracer(meter)

	rs, err := d.Launch(&gpusim.Kernel{Program: prog, GridDim: width * height / 128, BlockDim: 128})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d thread instructions\n\n", rs.TotalThreadInstrs())

	fmt.Printf("%-26s %s\n", "design", "thread misprediction rate")
	for _, name := range designs {
		r, err := meter.MissRate(name)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if name == speculate.FinalDesign {
			marker = "  <= ST² ships this"
		}
		fmt.Printf("%-26s %6.2f%%%s\n", name, 100*r, marker)
	}
	fmt.Println("\n(XOR-hash indexing should show no benefit over ModPC4 — Section IV-B.)")
}
