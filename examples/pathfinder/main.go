// Pathfinder: the paper's motivating workload end-to-end.
//
// Runs the Rodinia pathfinder kernel (the Figure 2 hot loop) on the
// simulated ST² GPU and on the baseline, prints the per-PC value
// evolution of one thread (Figure 2), the carry-correlation rates
// (Figure 3), and the misprediction/energy outcome for this kernel.
//
// Run with:
//
//	go run ./examples/pathfinder
package main

import (
	"fmt"
	"log"

	"st2gpu/internal/circuit"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/kernels"
	"st2gpu/internal/power"
	"st2gpu/internal/trace"
)

func run(mode gpusim.AdderMode, tracer gpusim.AddTracer) (*gpusim.RunStats, *gpusim.Device) {
	spec, err := kernels.Pathfinder(1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 2
	cfg.AdderMode = mode
	d, err := gpusim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if tracer != nil {
		d.SetTracer(tracer)
	}
	if err := spec.Setup(d.Memory()); err != nil {
		log.Fatal(err)
	}
	rs, err := d.Launch(spec.Kernel)
	if err != nil {
		log.Fatal(err)
	}
	if err := spec.Verify(d.Memory()); err != nil {
		log.Fatal(err)
	}
	return rs, d
}

func main() {
	// --- Figure 2: one thread's addition results per PC. ---
	vt := trace.NewValueTrace(37, 8)
	cm, err := trace.NewCorrMeter()
	if err != nil {
		log.Fatal(err)
	}
	base, dBase := run(gpusim.BaselineAdders, trace.Multi{vt, cm})

	fmt.Println("Figure 2 — thread 37's addition results, first iterations per PC:")
	for _, pc := range vt.PCs() {
		fmt.Printf("  PC%-3d:", pc)
		for _, p := range vt.Series(pc) {
			fmt.Printf(" %6d", p.Value)
		}
		fmt.Println()
	}
	fmt.Println("  (same-PC streams evolve gradually; cross-PC values differ wildly)")

	rates := cm.Rates()
	fmt.Println("\nFigure 3 — carry-in match rates on pathfinder:")
	for i, d := range trace.Fig3Designs {
		fmt.Printf("  %-18s %.1f%%\n", d, 100*rates[i])
	}

	// --- ST² run: mispredictions, performance, energy. ---
	st2, dST2 := run(gpusim.ST2Adders, nil)
	fmt.Println("\nST² GPU vs baseline on pathfinder:")
	fmt.Printf("  thread misprediction rate  %.2f%%\n", 100*st2.MispredictionRate())
	slow := float64(st2.Cycles)/float64(base.Cycles) - 1
	fmt.Printf("  cycles                     %d → %d (%.2f%% overhead)\n",
		base.Cycles, st2.Cycles, 100*slow)

	tbl, err := power.DefaultTable(circuit.SAED90())
	if err != nil {
		log.Fatal(err)
	}
	bb := power.FromRun(base, dBase.Prices(), tbl)
	sb := power.FromRun(st2, dST2.Prices(), tbl)
	fmt.Printf("  system energy              %.3g J → %.3g J (%.1f%% saved)\n",
		bb.Total(), sb.Total(), 100*(1-sb.Total()/bb.Total()))
	fmt.Printf("  ALU+FPU component          %.3g J → %.3g J (%.1f%% saved)\n",
		bb[power.CompALUFPU], sb[power.CompALUFPU],
		100*(1-sb[power.CompALUFPU]/bb[power.CompALUFPU]))
	fmt.Println("\nOutputs verified bit-exact against the host oracle in both modes.")
}
