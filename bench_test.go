// The benchmark harness: one benchmark per figure and table of the
// paper's evaluation (Sections III–VI), plus the ablations DESIGN.md
// calls out and microarchitectural throughput benches. Each experiment
// benchmark prints the rows the paper plots (once) and reports its
// headline number as a custom metric.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package st2gpu

import (
	"bytes"
	"fmt"
	"testing"

	"st2gpu/internal/adder"
	"st2gpu/internal/circuit"
	"st2gpu/internal/core"
	"st2gpu/internal/experiments"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/kernels"
	"st2gpu/internal/speculate"
	"st2gpu/internal/trace"
)

func benchCfg() experiments.Config { return experiments.Default() }

// --- Figure 1: dynamic instruction mix ---

func BenchmarkFig1InstructionMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nFigure 1 — dynamic instruction mix (ALU add / FPU add / ALU other / FPU other / rest):")
			for _, r := range rows {
				fmt.Printf("  %-12s %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
					r.Kernel, 100*r.ALUAdd, 100*r.FPUAdd, 100*r.ALUOther, 100*r.FPUOther, 100*r.Other)
			}
			avg := rows[len(rows)-1]
			b.ReportMetric(100*(avg.ALUAdd+avg.FPUAdd), "%add-instrs")
		}
	}
}

// --- Figure 2: value evolution of the pathfinder hot loop ---

func BenchmarkFig2ValueEvolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig2(benchCfg(), 37, 6)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nFigure 2 — pathfinder thread 37, addition results per PC (first iterations):")
			for _, s := range series {
				fmt.Printf("  PC%-3d:", s.PC)
				for _, p := range s.Points {
					fmt.Printf(" %7d", p.Value)
				}
				fmt.Println()
			}
			b.ReportMetric(float64(len(series)), "add-PCs")
		}
	}
}

// --- Figure 3: spatio-temporal carry correlation ---

func BenchmarkFig3Correlation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nFigure 3 — carry-in match rates (Prev+Gtid / Prev+FullPC+Gtid / Prev+FullPC+Ltid):")
			for _, r := range rows {
				fmt.Printf("  %-12s %5.1f%% %5.1f%% %5.1f%%\n",
					r.Kernel, 100*r.Rates[0], 100*r.Rates[1], 100*r.Rates[2])
			}
			avg := rows[len(rows)-1]
			fmt.Println("  (paper's averages: 50% / 83% / 89%)")
			b.ReportMetric(100*avg.Rates[2], "%ltid-match")
		}
	}
}

// --- Figure 5: carry-speculation design space ---

func BenchmarkFig5DesignSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(benchCfg(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nFigure 5 — average thread misprediction rate per speculation design:")
			for _, r := range rows {
				fmt.Printf("  %-26s %6.2f%%\n", r.Design, 100*r.MissRate)
			}
			fmt.Println("  (paper: staticZero high, VaLHALLA ~26%, final design ~9%)")
			b.ReportMetric(100*rows[len(rows)-1].MissRate, "%final-missrate")
		}
	}
}

// BenchmarkFig5Replay vs BenchmarkFig5Live time the record-once/
// replay-many sweep against the legacy simulate-per-design baseline over
// the same 12 designs. `make bench-dse` runs the same comparison via
// `st2dse -bench` and additionally asserts the rates are bit-identical.

func BenchmarkFig5Replay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(benchCfg(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Live(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, d := range speculate.DesignSpace {
			if _, err := experiments.Fig5Live(benchCfg(), []string{d}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkReplayDecodeOnce vs BenchmarkReplayPerDesign isolate the
// decode-once trade on an already-recorded suite (simulation excluded
// from the timer): one SoA decode plus 12 array-walk evaluations against
// 12 full varint replays. The rows are proven bit-identical by
// TestSweepBitIdenticalAcrossWorkers; only the work distribution differs.

func BenchmarkReplayDecodeOnce(b *testing.B) {
	cfg := benchCfg()
	set, err := experiments.RecordSuite(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs() // lane arrays are preallocated from the recording's counters
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := trace.DecodeSet(set)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.Fig5FromDecoded(cfg, dec, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(set.NumOps())*float64(b.N)/b.Elapsed().Seconds(), "decoded-ops/s")
}

// BenchmarkStoreLoad times loading the columnar decoded store against
// BenchmarkStoreDecode, the varint decode it replaces: the store load is
// the steady-state cost of every st2dse -store sweep after the first.
// bench_dse.sh gates the same ratio (store_load_speedup ≥ 3x) end to end.
func BenchmarkStoreLoad(b *testing.B) {
	set, err := experiments.RecordSuite(benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	dec, err := trace.DecodeSet(set)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := trace.WriteDecoded(&buf, dec, trace.StoreOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(buf.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadDecoded(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(set.NumOps())*float64(b.N)/b.Elapsed().Seconds(), "loaded-ops/s")
}

func BenchmarkStoreDecode(b *testing.B) {
	set, err := experiments.RecordSuite(benchCfg())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.DecodeSet(set); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(set.NumOps())*float64(b.N)/b.Elapsed().Seconds(), "decoded-ops/s")
}

// BenchmarkReplayBatched isolates the design-batched evaluation kernel
// itself: decode excluded from the timer, one (kernel × design-batch)
// sweep per iteration scoring all 12 designs in a single pass per
// kernel. eval-ops/s counts records × designs — the figure the
// bench_dse.sh throughput floor gates.
func BenchmarkReplayBatched(b *testing.B) {
	cfg := benchCfg()
	set, err := experiments.RecordSuite(cfg)
	if err != nil {
		b.Fatal(err)
	}
	dec, err := trace.DecodeSet(set)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5FromDecoded(cfg, dec, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(set.NumOps())*float64(len(speculate.DesignSpace))*float64(b.N)/b.Elapsed().Seconds(), "eval-ops/s")
}

func BenchmarkReplayPerDesign(b *testing.B) {
	cfg := benchCfg()
	set, err := experiments.RecordSuite(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5FromSetPerDesign(cfg, set, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 6: per-kernel misprediction on the hardware ST² path ---

func BenchmarkFig6Misprediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nFigure 6 — thread misprediction rate per kernel (ST², CRF + arbitration):")
			for _, r := range rows {
				fmt.Printf("  %-12s %6.2f%%  (recompute avg %.2f, max %d)\n",
					r.Kernel, 100*r.MissRate, r.MeanRecompute, r.MaxRecompute)
			}
			avg := rows[len(rows)-1]
			fmt.Println("  (paper: 9% average)")
			b.ReportMetric(100*avg.MissRate, "%missrate")
		}
	}
}

// --- Section VI: slices recomputed per misprediction ---

func BenchmarkRecomputedSlices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			avg := rows[len(rows)-1]
			fmt.Printf("\nSection VI — slices recomputed per misprediction: avg %.2f, max %d (paper: 1.94 avg, 2.73 max)\n",
				avg.MeanRecompute, avg.MaxRecompute)
			b.ReportMetric(avg.MeanRecompute, "slices/mispredict")
		}
	}
}

// --- Figure 7: energy breakdown and savings ---

func BenchmarkFig7Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, sum, err := experiments.Fig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nFigure 7 — normalized system energy, baseline vs ST² (saving per kernel):")
			for _, r := range rows {
				fmt.Printf("  %-12s system %5.1f%%  chip %5.1f%%  (ALU+FPU share %4.1f%%)\n",
					r.Kernel, 100*r.SystemSaving, 100*r.ChipSaving, 100*r.ALUFPUShare)
			}
			fmt.Printf("  average: system %.1f%% (paper 19%%), chip %.1f%% (paper 21%%); ALU+FPU share %.1f%% (paper 27%%)\n",
				100*sum.AvgSystemSaving, 100*sum.AvgChipSaving, 100*sum.AvgALUFPUShare)
			fmt.Printf("  >20%%-ALU+FPU kernels: %d (paper 14), their system saving %.1f%% (paper 26%%)\n",
				sum.IntenseCount, 100*sum.IntenseSystemSaving)
			b.ReportMetric(100*sum.AvgChipSaving, "%chip-saving")
		}
	}
}

// --- Section VI: performance overhead ---

func BenchmarkPerfOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PerfOverhead(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			worst := 0.0
			worstK := ""
			for _, r := range rows[:len(rows)-1] {
				if r.Slowdown > worst {
					worst, worstK = r.Slowdown, r.Kernel
				}
			}
			avg := rows[len(rows)-1]
			fmt.Printf("\nSection VI — ST² slowdown: avg %.3f%% (paper 0.36%%), worst %.2f%% on %s (paper 3.5%% on dwt2d)\n",
				100*avg.Slowdown, 100*worst, worstK)
			b.ReportMetric(100*avg.Slowdown, "%slowdown")
		}
	}
}

// --- Section V-B: slice-width design-space exploration ---

func BenchmarkSliceWidthDSE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, best, err := experiments.SliceWidthDSE()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nSection V-B — slice width characterization:")
			for j, r := range results {
				mark := ""
				if j == best {
					mark = "  <= chosen"
				}
				fmt.Printf("  %2d-bit: V/Vnom %.2f, adder saving %.1f%%, %d predictions/op%s\n",
					r.SliceBits, r.SupplyRatio, 100*r.EnergySaving, r.PredictionsPerOp, mark)
			}
			fmt.Println("  (paper: 8-bit slices, 60% voltage, 75–87% potential saving)")
			b.ReportMetric(float64(results[best].SliceBits), "chosen-bits")
		}
	}
}

// --- Section V-C: power-model calibration + validation ---

func BenchmarkPowerModelValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, _, err := experiments.PowerValidation(benchCfg(), 0.06)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nSection V-C — power model: MARE %.1f%% ± %.1f%% (paper 10.5%% ± 3.8%%), Pearson r %.2f (paper 0.8)\n",
				100*rep.MeanAbsRelErr, 100*rep.ErrCI95, rep.PearsonR)
			b.ReportMetric(100*rep.MeanAbsRelErr, "%MARE")
		}
	}
}

// --- Section VI: area/power overhead budget ---

func BenchmarkOverheadBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		budget, err := experiments.Overheads(0)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nSection VI — overheads: shifters %.2f mm² (%.2f%% of chip, paper 0.68%%), %.2f W static (paper 0.6 W); CRF+DFFs %.0f kB (%.3f%% of SRAM, paper 0.09%%)\n",
				budget.ShifterAreaMM2, 100*budget.ShifterAreaFraction, budget.ShifterStaticW,
				float64(budget.TotalSRAMBytes)/1024, 100*budget.SRAMFraction)
			b.ReportMetric(float64(budget.TotalSRAMBytes)/1024, "kB-added")
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

func BenchmarkAblationPeek(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPeek(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nAblation — Peek: with %.2f%%, without %.2f%% misprediction\n",
				100*res.WithRate, 100*res.SansRate)
			b.ReportMetric(100*(res.SansRate-res.WithRate), "%peek-benefit")
		}
	}
}

func BenchmarkAblationContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationContention(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nAblation — CRF contention: hardware CRF %.2f%%, idealized table %.2f%%\n",
				100*res.WithRate, 100*res.SansRate)
			b.ReportMetric(100*(res.WithRate-res.SansRate), "%contention-cost")
		}
	}
}

func BenchmarkAblationSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSharing(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nAblation — thread-history sharing:")
			for _, r := range rows {
				fmt.Printf("  %-26s %6.2f%%\n", r.Design, 100*r.MissRate)
			}
		}
	}
}

func BenchmarkAblationXORHash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationXORHash(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nAblation — PC indexing: ModPC4 %.2f%% vs XorPC4 %.2f%% (paper: no benefit from hashing)\n",
				100*rows[0].MissRate, 100*rows[1].MissRate)
		}
	}
}

// --- Microarchitectural throughput benches ---

// BenchmarkAdderExecute measures the sliced-adder engine's per-operation
// cost — the simulator's hottest path.
func BenchmarkAdderExecute(b *testing.B) {
	ad, err := adder.New(adder.Config{Width: 64, SliceBits: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		r := ad.Execute(uint64(i)*2654435761, uint64(i)+12345, adder.Add, uint64(i)&0x7F)
		sink ^= r.Sum
	}
	_ = sink
}

// BenchmarkCRFWarpOp measures one warp operation through the full ST²
// unit including CRF read/write-back.
func BenchmarkCRFWarpOp(b *testing.B) {
	price, err := core.DeriveEnergyParams(circuit.SAED90(), 64, 8)
	if err != nil {
		b.Fatal(err)
	}
	unit, err := core.NewUnit(core.ALU, 8, price)
	if err != nil {
		b.Fatal(err)
	}
	crf := speculate.NewDefaultCRF(1)
	spec := &core.CRFSpeculator{CRF: crf, Geom: unit.Geometry()}
	var lanes [core.WarpSize]core.LaneOp
	for l := range lanes {
		lanes[l] = core.LaneOp{Active: true, A: uint64(l) * 37, B: 11, Op: adder.Add}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crf.BeginCycle(uint64(i))
		res := unit.ExecuteWarp(spec, uint32(i)&15, 0, &lanes)
		lanes[0].A = res.Sums[0]
	}
}

// BenchmarkSimulatorThroughput measures full-pipeline simulation speed in
// thread-instructions per second on the pathfinder kernel.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var instrs uint64
	for i := 0; i < b.N; i++ {
		spec, err := kernels.Pathfinder(1)
		if err != nil {
			b.Fatal(err)
		}
		cfg := gpusim.DefaultConfig()
		cfg.NumSMs = 2
		d, err := gpusim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := spec.Setup(d.Memory()); err != nil {
			b.Fatal(err)
		}
		rs, err := d.Launch(spec.Kernel)
		if err != nil {
			b.Fatal(err)
		}
		instrs = rs.TotalThreadInstrs()
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "thread-instrs/s")
}

// BenchmarkLaunchParallelSMs measures the parallel per-SM launch path
// against the sequential one on an 8-SM device running pathfinder at
// scale 32 (64 blocks × 256 threads). Compare the sub-benchmarks' ns/op:
// workers=auto should be well over 1.5× faster than workers=1 on a
// multi-core host, with bit-identical RunStats (TestParallelMatchesSequential).
func BenchmarkLaunchParallelSMs(b *testing.B) {
	spec, err := kernels.Pathfinder(32)
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=auto", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := gpusim.DefaultConfig()
			cfg.NumSMs = 8
			cfg.ParallelSMs = bc.workers
			var instrs uint64
			for i := 0; i < b.N; i++ {
				d, err := gpusim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := spec.Setup(d.Memory()); err != nil {
					b.Fatal(err)
				}
				rs, err := d.Launch(spec.Kernel)
				if err != nil {
					b.Fatal(err)
				}
				instrs = rs.TotalThreadInstrs()
			}
			b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "thread-instrs/s")
		})
	}
}

// BenchmarkDSEMeter measures the single-pass design-space meter on full
// 32-lane warp batches.
func BenchmarkDSEMeter(b *testing.B) {
	m, err := trace.NewDSEMeter(nil)
	if err != nil {
		b.Fatal(err)
	}
	var ops [32]gpusim.WarpAddOp
	for l := range ops {
		ops[l] = gpusim.WarpAddOp{Active: true, EA: uint64(l) * 2654435761, EB: uint64(l) | 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TraceWarpAdds(core.ALU, uint32(i)&63, uint32(i&7)*32, &ops)
	}
}

// BenchmarkApproximateAdders quantifies the related-work contrast: what
// fraction of results an error-accepting approximate speculative adder
// ([10]–[13] in the paper) would corrupt on the real kernel streams.
func BenchmarkApproximateAdders(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ApproximateAdderStudy(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nRelated work — uncorrected (approximate) speculative adders:")
			for _, r := range rows {
				fmt.Printf("  %-24s wrong results %5.2f%%  mean relative error %.3g\n",
					r.Design, 100*r.WrongResults, r.MeanRelError)
			}
			fmt.Println("  (ST²'s correction pass turns every one of these into a 1-cycle stall instead)")
		}
	}
}

// BenchmarkAblationCRFSize sweeps the Carry Register File capacity: the
// paper's 16-entry PC[3:0] table against smaller and larger tables.
func BenchmarkAblationCRFSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationCRFSize(benchCfg(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nAblation — CRF entries (PC index bits):")
			for _, r := range rows {
				fmt.Printf("  %3d entries: %6.2f%% misprediction\n", r.Entries, 100*r.MissRate)
			}
			fmt.Println("  (paper: 4 PC bits / 16 entries; more shows diminishing returns)")
		}
	}
}

// BenchmarkAblationHistoryDepth compares depth-1 and depth-2 previous-
// carry histories — the paper's temporal-axis exploration ends at depth 1.
func BenchmarkAblationHistoryDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationHistoryDepth(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\nAblation — history depth: Prev %.2f%% vs Prev2(alternation) %.2f%%\n",
				100*rows[0].MissRate, 100*rows[1].MissRate)
		}
	}
}

// BenchmarkCarryChains reproduces Section III's quantification: carry-
// propagation chain lengths across the suite (short chains dominate,
// which is why per-slice speculation works at all).
func BenchmarkCarryChains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		meters := make([]*trace.ChainMeter, len(kernels.Suite()))
		for k, w := range kernels.Suite() {
			spec, err := w.Build(1)
			if err != nil {
				b.Fatal(err)
			}
			cfg := gpusim.DefaultConfig()
			cfg.NumSMs = 2
			cfg.AdderMode = gpusim.BaselineAdders
			d, err := gpusim.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if spec.Setup != nil {
				if err := spec.Setup(d.Memory()); err != nil {
					b.Fatal(err)
				}
			}
			m := trace.NewChainMeter()
			d.SetTracer(m)
			if _, err := d.Launch(spec.Kernel); err != nil {
				b.Fatal(err)
			}
			meters[k] = m
		}
		if i == 0 {
			var short, mean float64
			n := 0
			fmt.Println("\nSection III — carry-chain lengths per kernel (short ≤ one slice):")
			for k, w := range kernels.Suite() {
				m := meters[k]
				if m.Ops == 0 {
					continue
				}
				fmt.Printf("  %-12s %5.1f%% short, mean %.2f bits\n",
					w.Name, 100*m.ShortChainFraction(), m.MeanChainLength())
				short += m.ShortChainFraction()
				mean += m.MeanChainLength()
				n++
			}
			fmt.Printf("  average: %.1f%% short, mean %.2f bits\n", 100*short/float64(n), mean/float64(n))
			b.ReportMetric(100*short/float64(n), "%short-chains")
		}
	}
}

// BenchmarkTechnologyScaling re-checks the Section V-B claim that the
// relative savings persist when scaling from 90 nm to a 12 nm FinFET node.
func BenchmarkTechnologyScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TechnologyScaling(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println("\nSection V-B — technology scaling (savings persist across nodes):")
			for _, r := range rows {
				fmt.Printf("  %-9s %2d-bit: V/Vnom %.2f, adder saving %.1f%%\n",
					r.Tech, r.SliceBits, r.SupplyRatio, 100*r.EnergySaving)
			}
		}
	}
}
