GO ?= go

.PHONY: build test vet lint lint-clean race fuzz-smoke check bench bench-smoke bench-dse trend-gate

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# st2lint: the determinism analyzers (DESIGN.md §11) plus the
# concurrency-safety and wire-taint analyzers (DESIGN.md §16). Exits
# non-zero on any finding not suppressed by //st2:det-ok <reason> /
# //st2:conc-ok <reason> and not in the committed (empty) baseline. The
# `go list` package-discovery step is cached under .cache/st2lint/,
# keyed on the toolchain, go.mod, and every non-testdata .go file, so
# repeat runs skip the subprocess.
lint:
	$(GO) run ./cmd/st2lint -cache .cache/st2lint -baseline .st2lint-baseline.json ./...

# Drop the cached go-list load (it self-invalidates on any .go edit;
# this is for reclaiming space or forcing a cold run).
lint-clean:
	rm -rf .cache/st2lint

# Race-detector run over the packages that exercise the parallel per-SM
# launch path (plus everything downstream of it).
race:
	$(GO) test -race ./...

# Short fuzz pass over the binary readers (one -fuzz pattern per `go
# test` invocation): the recording decoder and the columnar decoded-store
# reader. Seed corpora (valid, truncated, and oversized-declaration
# inputs) plus a few seconds of mutation must never panic, over-allocate,
# or round-trip unstably.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadRecording -fuzztime=5s ./internal/gpusim
	$(GO) test -run='^$$' -fuzz=FuzzReadDecoded -fuzztime=5s ./internal/trace

# The gate CI runs: static analysis (vet + st2lint), the full test suite
# under the race detector, a short decoder fuzz pass, a suite smoke pass
# with the run manifest sanity-checked, the record-vs-replay DSE
# benchmark with bit-identity verified, and the st2trend regression gate
# over both trend arrays.
check: vet lint race fuzz-smoke bench-smoke bench-dse trend-gate

bench:
	$(GO) test -bench=. -benchmem

# Scale-1 suite pass with the JSONL manifest enabled; fails on NaN or
# zero-instruction regressions. Appends to the BENCH_smoke.json trend
# array.
bench-smoke:
	./scripts/bench_smoke.sh

# st2trend regression gate: the newest BENCH_dse.json / BENCH_smoke.json
# entries must not regress against the best prior entries.
trend-gate:
	./scripts/trend_gate.sh

# Record-once/replay-many Figure 5 sweep vs the simulate-per-design
# baseline; fails unless rates are bit-identical and replay is faster.
# Writes BENCH_dse.json.
bench-dse:
	./scripts/bench_dse.sh
