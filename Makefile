GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detector run over the packages that exercise the parallel per-SM
# launch path (plus everything downstream of it).
race:
	$(GO) test -race ./...

# The gate CI runs: static analysis plus the full test suite under the
# race detector.
check: vet race

bench:
	$(GO) test -bench=. -benchmem
