package isa

import (
	"math"
	"strings"
	"testing"
)

func TestTypeProperties(t *testing.T) {
	cases := []struct {
		ty     Type
		size   uint64
		float  bool
		signed bool
		is64   bool
		str    string
	}{
		{U32, 4, false, false, false, "u32"},
		{S32, 4, false, true, false, "s32"},
		{U64, 8, false, false, true, "u64"},
		{S64, 8, false, true, true, "s64"},
		{F32, 4, true, false, false, "f32"},
		{F64, 8, true, false, true, "f64"},
		{Pred, 0, false, false, false, "pred"},
	}
	for _, c := range cases {
		if c.ty.Size() != c.size || c.ty.IsFloat() != c.float ||
			c.ty.IsSigned() != c.signed || c.ty.Is64() != c.is64 || c.ty.String() != c.str {
			t.Errorf("type %v properties wrong", c.ty)
		}
	}
}

func TestOpcodeClasses(t *testing.T) {
	cases := []struct {
		op  Opcode
		cls FUClass
		st2 bool
	}{
		{OpIAdd, FUAluAdd, true},
		{OpISub, FUAluAdd, true},
		{OpFAdd, FUFpAdd, true},
		{OpFSub, FUFpAdd, true},
		{OpIMul, FUIntMul, false},
		{OpIMad, FUIntMul, false},
		{OpIDiv, FUIntDiv, false},
		{OpFMul, FUFpMul, false},
		{OpFFma, FUFpMul, false},
		{OpFDiv, FUFpDiv, false},
		{OpSin, FUSfu, false},
		{OpLd, FUMem, false},
		{OpBra, FUCtrl, false},
		{OpMov, FUAluOther, false},
		{OpSetp, FUAluOther, false},
	}
	for _, c := range cases {
		if c.op.Class() != c.cls {
			t.Errorf("%v class = %v, want %v", c.op, c.op.Class(), c.cls)
		}
		if c.op.IsST2Candidate() != c.st2 {
			t.Errorf("%v ST² candidacy = %v, want %v", c.op, c.op.IsST2Candidate(), c.st2)
		}
	}
}

func TestOpcodeShape(t *testing.T) {
	if OpIMad.NumSrcs() != 3 || OpMov.NumSrcs() != 1 || OpIAdd.NumSrcs() != 2 ||
		OpExit.NumSrcs() != 0 || OpSt.NumSrcs() != 2 {
		t.Error("NumSrcs wrong")
	}
	if !OpIAdd.HasDst() || OpSt.HasDst() || OpSetp.HasDst() || OpBra.HasDst() || OpAtomAdd.HasDst() {
		t.Error("HasDst wrong")
	}
}

func TestOperandConstructors(t *testing.T) {
	if R(3).Kind != OpReg || Imm(7).Imm != 7 || ImmI(-1).Imm != ^uint64(0) {
		t.Error("operand constructors wrong")
	}
	if Special(SRegTid).SReg != SRegTid {
		t.Error("special operand wrong")
	}
	if ImmF32(1.5).Imm != uint64(math.Float32bits(1.5)) {
		t.Error("ImmF32 encoding wrong")
	}
	if ImmF64(2.5).Imm != math.Float64bits(2.5) {
		t.Error("ImmF64 encoding wrong")
	}
	if R(1).String() != "r1" || Imm(5).String() != "#5" || Special(SRegGtid).String() != "%gtid" {
		t.Error("operand strings wrong")
	}
}

func buildSaxpy(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("saxpy")
	gtid := b.Reg()
	n := b.Reg()
	x := b.Reg()
	y := b.Reg()
	addrX := b.Reg()
	addrY := b.Reg()
	acc := b.Reg()
	p := b.PredReg()
	b.MovSpecial(gtid, SRegGtid)
	b.Ld(Param, U32, n, Imm(0))
	b.Setp(GE, U32, p, R(gtid), R(n))
	b.BraTo("done", p, false)
	b.IMad(U64, addrX, R(gtid), Imm(4), Imm(0x1000))
	b.IMad(U64, addrY, R(gtid), Imm(4), Imm(0x9000))
	b.Ld(Global, F32, x, R(addrX))
	b.Ld(Global, F32, y, R(addrY))
	b.FFma(F32, acc, R(x), ImmF32(2.0), R(y))
	b.St(Global, F32, R(addrY), R(acc))
	b.Label("done")
	b.Exit()
	p2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p2
}

func TestBuilderProducesValidProgram(t *testing.T) {
	p := buildSaxpy(t)
	if p.NumRegs != 7 || p.NumPreds != 1 {
		t.Errorf("regs=%d preds=%d", p.NumRegs, p.NumPreds)
	}
	// The guarded branch resolves to the exit label.
	var bra *Instr
	for i := range p.Instrs {
		if p.Instrs[i].Op == OpBra {
			bra = &p.Instrs[i]
		}
	}
	if bra == nil || p.Instrs[bra.Target].Op != OpExit {
		t.Error("branch should resolve to exit")
	}
	counts := p.StaticCounts()
	if counts[FUMem] != 4 || counts[FUFpMul] != 1 || counts[FUIntMul] != 2 {
		t.Errorf("static counts: %v", counts)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad")
	b.Bra("nowhere")
	b.Exit()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("undefined label should fail: %v", err)
	}

	b = NewBuilder("dup")
	b.Label("l")
	b.Label("l")
	b.Exit()
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label should fail")
	}

	b = NewBuilder("noexit")
	b.Mov(U32, b.Reg(), Imm(1))
	if _, err := b.Build(); err == nil {
		t.Error("missing exit should fail")
	}

	b = NewBuilder("guard-nothing")
	b.Guarded(0, false)
	b.Exit()
	if _, err := b.Build(); err == nil {
		t.Error("Guarded before any instruction should fail")
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	mk := func(mod func(*Program)) error {
		p := &Program{
			Name:     "t",
			NumRegs:  2,
			NumPreds: 1,
			Instrs: []Instr{
				{Op: OpIAdd, Type: U32, Dst: 0, Srcs: [3]Operand{R(0), R(1)}, Guard: NoPred},
				{Op: OpExit, Guard: NoPred},
			},
		}
		mod(p)
		return p.Validate()
	}
	if err := mk(func(*Program) {}); err != nil {
		t.Fatalf("base program should validate: %v", err)
	}
	cases := []struct {
		name string
		mod  func(*Program)
	}{
		{"empty name", func(p *Program) { p.Name = "" }},
		{"no instrs", func(p *Program) { p.Instrs = nil }},
		{"dst out of range", func(p *Program) { p.Instrs[0].Dst = 9 }},
		{"src out of range", func(p *Program) { p.Instrs[0].Srcs[0] = R(5) }},
		{"missing src", func(p *Program) { p.Instrs[0].Srcs[1] = Operand{} }},
		{"guard out of range", func(p *Program) { p.Instrs[0].Guard = 3 }},
		{"float type on int op", func(p *Program) { p.Instrs[0].Type = F32 }},
		{"bad branch target", func(p *Program) {
			p.Instrs[0] = Instr{Op: OpBra, Target: 99, Guard: NoPred}
		}},
		{"store to param", func(p *Program) {
			p.Instrs[0] = Instr{Op: OpSt, Type: U32, Space: Param,
				Srcs: [3]Operand{R(0), R(1)}, Guard: NoPred}
		}},
		{"atomic on param", func(p *Program) {
			p.Instrs[0] = Instr{Op: OpAtomAdd, Type: U32, Space: Param,
				Srcs: [3]Operand{R(0), R(1)}, Guard: NoPred}
		}},
		{"int type on float op", func(p *Program) {
			p.Instrs[0] = Instr{Op: OpFAdd, Type: U32, Dst: 0,
				Srcs: [3]Operand{R(0), R(1)}, Guard: NoPred}
		}},
		{"selp bad pred", func(p *Program) {
			p.Instrs[0] = Instr{Op: OpSelp, Type: U32, Dst: 0,
				Srcs: [3]Operand{R(0), R(1), {Kind: OpReg, Reg: 7}}, Guard: NoPred}
		}},
		{"setp pdst out of range", func(p *Program) {
			p.Instrs[0] = Instr{Op: OpSetp, Type: U32, PDst: 4, Cmp: EQ,
				Srcs: [3]Operand{R(0), R(1)}, Guard: NoPred}
		}},
	}
	for _, c := range cases {
		if err := mk(c.mod); err == nil {
			t.Errorf("%s: should fail validation", c.name)
		}
	}
}

func TestSharedAllocation(t *testing.T) {
	b := NewBuilder("shm")
	a := b.Shared(10) // rounds to 16
	c := b.Shared(8)
	if a != 0 || c != 16 {
		t.Errorf("shared offsets: %d %d", a, c)
	}
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.SharedBytes != 24 {
		t.Errorf("shared bytes = %d", p.SharedBytes)
	}
}

func TestDisassembleRoundTrips(t *testing.T) {
	p := buildSaxpy(t)
	asm := p.Disassemble()
	for _, want := range []string{"kernel saxpy", "mov.u32 r0, %gtid", "ld.param.u32",
		"setp.ge.u32 p0", "bra L", "fma.f32", "st.global.f32", "exit"} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q:\n%s", want, asm)
		}
	}
	// Guarded instruction renders its guard.
	b := NewBuilder("g")
	r := b.Reg()
	pr := b.PredReg()
	b.Setp(EQ, U32, pr, R(r), Imm(0))
	b.Mov(U32, r, Imm(1))
	b.Guarded(pr, true)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.Disassemble(), "@!p0 mov.u32") {
		t.Errorf("negated guard not rendered:\n%s", prog.Disassemble())
	}
}

func TestRegsHelper(t *testing.T) {
	b := NewBuilder("regs")
	rs := b.Regs(3)
	if len(rs) != 3 || rs[0] != 0 || rs[2] != 2 {
		t.Errorf("Regs = %v", rs)
	}
}

func TestStringsForCoverage(t *testing.T) {
	if Global.String() != "global" || Shared.String() != "shared" || Param.String() != "param" {
		t.Error("MemSpace strings")
	}
	if EQ.String() != "eq" || GE.String() != "ge" {
		t.Error("CmpOp strings")
	}
	if OpIAdd.String() != "add" || Opcode(200).String() != "op(200)" {
		t.Error("Opcode strings")
	}
	if FUAluAdd.String() != "ALU.add" || FUNone.String() != "none" {
		t.Error("FUClass strings")
	}
	if SRegLane.String() != "%lane" {
		t.Error("SReg strings")
	}
}
