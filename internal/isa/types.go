// Package isa defines the PTX-lite instruction set the GPU simulator
// executes. It plays the role of NVIDIA's PTX in the paper's methodology
// (GPGPU-Sim in PTX mode): a typed, register-based, SIMT-executed virtual
// ISA. Kernels in internal/kernels are written against the Builder API and
// validated before simulation.
package isa

import "fmt"

// Type is the operand type of an instruction.
type Type uint8

const (
	U32 Type = iota
	S32
	U64
	S64
	F32
	F64
	Pred
)

func (t Type) String() string {
	switch t {
	case U32:
		return "u32"
	case S32:
		return "s32"
	case U64:
		return "u64"
	case S64:
		return "s64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	case Pred:
		return "pred"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Size returns the memory footprint of the type in bytes.
func (t Type) Size() uint64 {
	switch t {
	case U32, S32, F32:
		return 4
	case U64, S64, F64:
		return 8
	default:
		return 0
	}
}

// IsFloat reports whether the type is floating point.
func (t Type) IsFloat() bool { return t == F32 || t == F64 }

// IsSigned reports whether the type is a signed integer.
func (t Type) IsSigned() bool { return t == S32 || t == S64 }

// Is64 reports whether the type is 64 bits wide.
func (t Type) Is64() bool { return t == U64 || t == S64 || t == F64 }

// Reg is a virtual data register index (thread-private, 64-bit storage).
type Reg uint16

// PReg is a virtual predicate register index.
type PReg uint16

// NoPred marks an unguarded instruction.
const NoPred PReg = 0xFFFF

// MemSpace selects the address space of a memory instruction.
type MemSpace uint8

const (
	Global MemSpace = iota
	Shared
	Param
)

func (s MemSpace) String() string {
	switch s {
	case Global:
		return "global"
	case Shared:
		return "shared"
	case Param:
		return "param"
	default:
		return fmt.Sprintf("space(%d)", uint8(s))
	}
}

// CmpOp is a SETP comparison operator.
type CmpOp uint8

const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (c CmpOp) String() string {
	switch c {
	case EQ:
		return "eq"
	case NE:
		return "ne"
	case LT:
		return "lt"
	case LE:
		return "le"
	case GT:
		return "gt"
	case GE:
		return "ge"
	default:
		return fmt.Sprintf("cmp(%d)", uint8(c))
	}
}

// SReg is a special (read-only) register.
type SReg uint8

const (
	SRegTid    SReg = iota // thread index within the block (x only)
	SRegNTid               // block dimension
	SRegCtaid              // block index
	SRegNCtaid             // grid dimension
	SRegGtid               // convenience: global thread id
	SRegLane               // lane within the warp
)

func (s SReg) String() string {
	switch s {
	case SRegTid:
		return "%tid"
	case SRegNTid:
		return "%ntid"
	case SRegCtaid:
		return "%ctaid"
	case SRegNCtaid:
		return "%nctaid"
	case SRegGtid:
		return "%gtid"
	case SRegLane:
		return "%lane"
	default:
		return fmt.Sprintf("%%sreg(%d)", uint8(s))
	}
}

// OperandKind distinguishes register from immediate operands.
type OperandKind uint8

const (
	OpNone OperandKind = iota
	OpReg
	OpImm
	OpSpecial
)

// Operand is one instruction input.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  uint64 // raw bits; floats stored as their IEEE encoding
	SReg SReg
}

// R makes a register operand.
func R(r Reg) Operand { return Operand{Kind: OpReg, Reg: r} }

// Imm makes an integer immediate operand.
func Imm(v uint64) Operand { return Operand{Kind: OpImm, Imm: v} }

// ImmI makes a signed integer immediate operand.
func ImmI(v int64) Operand { return Operand{Kind: OpImm, Imm: uint64(v)} }

// Special makes a special-register operand.
func Special(s SReg) Operand { return Operand{Kind: OpSpecial, SReg: s} }

func (o Operand) String() string {
	switch o.Kind {
	case OpReg:
		return fmt.Sprintf("r%d", o.Reg)
	case OpImm:
		return fmt.Sprintf("#%d", int64(o.Imm))
	case OpSpecial:
		return o.SReg.String()
	case OpNone:
		return "_"
	default:
		return "?"
	}
}
