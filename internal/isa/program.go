package isa

import (
	"fmt"
	"strings"
)

// Program is a validated PTX-lite kernel body.
type Program struct {
	Name     string
	Instrs   []Instr
	NumRegs  int // data registers per thread
	NumPreds int // predicate registers per thread
	// SharedBytes is the static shared-memory allocation per block.
	SharedBytes uint64
}

// Validate checks structural well-formedness: operand counts and kinds,
// register bounds, branch targets, and type/opcode compatibility. The
// simulator assumes a validated program.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("isa: program has no name")
	}
	if len(p.Instrs) == 0 {
		return fmt.Errorf("isa: %s: empty program", p.Name)
	}
	hasExit := false
	for i, in := range p.Instrs {
		if err := p.validateInstr(i, in); err != nil {
			return err
		}
		if in.Op == OpExit {
			hasExit = true
		}
	}
	if !hasExit {
		return fmt.Errorf("isa: %s: no exit instruction", p.Name)
	}
	return nil
}

func (p *Program) validateInstr(i int, in Instr) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("isa: %s: instr %d (%s): %s", p.Name, i, in.Format(i), fmt.Sprintf(format, args...))
	}
	if in.Op >= opCount {
		return fail("unknown opcode")
	}
	if in.Guard != NoPred && int(in.Guard) >= p.NumPreds {
		return fail("guard p%d out of range (%d preds)", in.Guard, p.NumPreds)
	}
	if in.Op.HasDst() && int(in.Dst) >= p.NumRegs {
		return fail("dst r%d out of range (%d regs)", in.Dst, p.NumRegs)
	}
	if in.Op == OpSetp && int(in.PDst) >= p.NumPreds {
		return fail("pdst p%d out of range", in.PDst)
	}
	for s := 0; s < in.Op.NumSrcs(); s++ {
		o := in.Srcs[s]
		switch o.Kind {
		case OpReg:
			if int(o.Reg) >= p.NumRegs {
				return fail("src%d r%d out of range", s, o.Reg)
			}
		case OpImm, OpSpecial:
		case OpNone:
			return fail("missing src%d", s)
		default:
			return fail("bad operand kind %d", o.Kind)
		}
	}
	switch in.Op {
	case OpBra:
		if in.Target < 0 || in.Target >= len(p.Instrs) {
			return fail("branch target %d out of range", in.Target)
		}
	case OpLd, OpSt, OpAtomAdd:
		if in.Type.Size() == 0 {
			return fail("memory op needs a sized type, got %v", in.Type)
		}
		if in.Op == OpAtomAdd && in.Space == Param {
			return fail("atomics not allowed on param space")
		}
		if in.Op == OpSt && in.Space == Param {
			return fail("param space is read-only")
		}
	case OpSelp:
		if in.Srcs[2].Kind != OpReg || int(in.Srcs[2].Reg) >= p.NumPreds {
			return fail("selp needs an in-range predicate as src2")
		}
	}
	isFloatOp := false
	switch in.Op.Class() {
	case FUFpAdd, FUFpMul, FUFpDiv, FUSfu:
		isFloatOp = true
	}
	if isFloatOp && !in.Type.IsFloat() {
		return fail("float opcode with non-float type %v", in.Type)
	}
	if in.Op.Class() == FUAluAdd || in.Op.Class() == FUIntMul || in.Op.Class() == FUIntDiv {
		if in.Type.IsFloat() {
			return fail("integer opcode with float type %v", in.Type)
		}
	}
	return nil
}

// StaticCounts summarizes the static opcode mix by functional-unit class.
func (p *Program) StaticCounts() map[FUClass]int {
	m := make(map[FUClass]int)
	for _, in := range p.Instrs {
		m[in.Op.Class()]++
	}
	return m
}

// Disassemble renders the whole program.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// kernel %s: %d instrs, %d regs, %d preds, %d B shared\n",
		p.Name, len(p.Instrs), p.NumRegs, p.NumPreds, p.SharedBytes)
	targets := make(map[int]bool)
	for _, in := range p.Instrs {
		if in.Op == OpBra {
			targets[in.Target] = true
		}
	}
	for i, in := range p.Instrs {
		if targets[i] {
			fmt.Fprintf(&b, "L%d:\n", i)
		}
		fmt.Fprintf(&b, "  %3d: %s\n", i, in.Format(i))
	}
	return b.String()
}
