package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the textual kernel format: Program.Text emits a
// canonical assembly listing and Parse reads one back. The two functions
// round-trip exactly (Parse(p.Text()) reproduces p's instruction stream),
// so kernels can be written, stored and diffed as plain text.
//
// Format:
//
//	.kernel saxpy
//	.regs 7
//	.preds 1
//	.shared 1024
//	  mov.u32 r0, %gtid
//	  setp.ge.u32 p0, r0, #1024
//	  @p0 bra L9
//	  ...
//	L9:
//	  exit

// Text renders the program in the canonical assemblable form.
func (p *Program) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, ".kernel %s\n", p.Name)
	fmt.Fprintf(&b, ".regs %d\n", p.NumRegs)
	fmt.Fprintf(&b, ".preds %d\n", p.NumPreds)
	if p.SharedBytes > 0 {
		fmt.Fprintf(&b, ".shared %d\n", p.SharedBytes)
	}
	targets := map[int]bool{}
	for _, in := range p.Instrs {
		if in.Op == OpBra {
			targets[in.Target] = true
		}
	}
	for i, in := range p.Instrs {
		if targets[i] {
			fmt.Fprintf(&b, "L%d:\n", i)
		}
		fmt.Fprintf(&b, "  %s\n", formatAsm(in))
	}
	return b.String()
}

// formatAsm renders one instruction unambiguously (unlike the
// human-oriented Format, it preserves CVT's source type).
func formatAsm(in Instr) string {
	guard := ""
	if in.Guard != NoPred {
		n := ""
		if in.GuardNeg {
			n = "!"
		}
		guard = fmt.Sprintf("@%sp%d ", n, in.Guard)
	}
	op := func(o Operand) string { return o.String() }
	switch in.Op {
	case OpNop:
		return guard + "nop"
	case OpExit:
		return guard + "exit"
	case OpBar:
		return guard + "bar.sync"
	case OpBra:
		return fmt.Sprintf("%sbra L%d", guard, in.Target)
	case OpSetp:
		return fmt.Sprintf("%ssetp.%v.%v p%d, %s, %s",
			guard, in.Cmp, in.Type, in.PDst, op(in.Srcs[0]), op(in.Srcs[1]))
	case OpLd:
		return fmt.Sprintf("%sld.%v.%v r%d, [%s]", guard, in.Space, in.Type, in.Dst, op(in.Srcs[0]))
	case OpSt:
		return fmt.Sprintf("%sst.%v.%v [%s], %s", guard, in.Space, in.Type, op(in.Srcs[0]), op(in.Srcs[1]))
	case OpAtomAdd:
		return fmt.Sprintf("%satom.%v.add.%v [%s], %s", guard, in.Space, in.Type, op(in.Srcs[0]), op(in.Srcs[1]))
	case OpSelp:
		return fmt.Sprintf("%sselp.%v r%d, %s, %s, p%d",
			guard, in.Type, in.Dst, op(in.Srcs[0]), op(in.Srcs[1]), in.Srcs[2].Reg)
	case OpCvt:
		return fmt.Sprintf("%scvt.%v.%v r%d, %s",
			guard, in.Type, Type(in.Srcs[1].Imm), in.Dst, op(in.Srcs[0]))
	default:
		s := fmt.Sprintf("%s%v.%v r%d", guard, in.Op, in.Type, in.Dst)
		for i := 0; i < in.Op.NumSrcs(); i++ {
			s += ", " + op(in.Srcs[i])
		}
		return s
	}
}

// asmError reports a parse failure with its line number.
type asmError struct {
	line int
	msg  string
}

func (e *asmError) Error() string { return fmt.Sprintf("isa: line %d: %s", e.line, e.msg) }

// Parse assembles the canonical text format into a validated Program.
func Parse(src string) (*Program, error) {
	p := &Program{}
	labels := map[string]int{}
	type fix struct {
		instr int
		label string
		line  int
	}
	var fixes []fix

	maxReg, maxPred := -1, -1
	noteReg := func(r Reg) {
		if int(r) > maxReg {
			maxReg = int(r)
		}
	}
	notePred := func(pr PReg) {
		if int(pr) > maxPred {
			maxPred = int(pr)
		}
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		n := lineNo + 1
		line := strings.TrimSpace(raw)
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, ".kernel "):
			p.Name = strings.TrimSpace(strings.TrimPrefix(line, ".kernel "))
			continue
		case strings.HasPrefix(line, ".regs "):
			v, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, ".regs ")))
			if err != nil {
				return nil, &asmError{n, "bad .regs: " + err.Error()}
			}
			p.NumRegs = v
			continue
		case strings.HasPrefix(line, ".preds "):
			v, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, ".preds ")))
			if err != nil {
				return nil, &asmError{n, "bad .preds: " + err.Error()}
			}
			p.NumPreds = v
			continue
		case strings.HasPrefix(line, ".shared "):
			v, err := strconv.ParseUint(strings.TrimSpace(strings.TrimPrefix(line, ".shared ")), 10, 64)
			if err != nil {
				return nil, &asmError{n, "bad .shared: " + err.Error()}
			}
			p.SharedBytes = v
			continue
		case strings.HasSuffix(line, ":"):
			name := strings.TrimSuffix(line, ":")
			if name == "" {
				return nil, &asmError{n, "empty label"}
			}
			if _, dup := labels[name]; dup {
				return nil, &asmError{n, "duplicate label " + name}
			}
			labels[name] = len(p.Instrs)
			continue
		}

		in, target, err := parseInstr(line, n, noteReg, notePred)
		if err != nil {
			return nil, err
		}
		if in.Op == OpBra {
			fixes = append(fixes, fix{instr: len(p.Instrs), label: target, line: n})
		}
		p.Instrs = append(p.Instrs, in)
	}

	for _, f := range fixes {
		t, ok := labels[f.label]
		if !ok {
			return nil, &asmError{f.line, "undefined label " + f.label}
		}
		p.Instrs[f.instr].Target = t
		p.Instrs[f.instr].Label = f.label
	}
	if p.NumRegs == 0 {
		p.NumRegs = maxReg + 1
	}
	if p.NumPreds == 0 {
		p.NumPreds = maxPred + 1
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// mnemonic tables for the regular two/one/three-operand opcodes.
var intOps = map[string]Opcode{
	"add": OpIAdd, "sub": OpISub, "min": OpIMin, "max": OpIMax,
	"and": OpAnd, "or": OpOr, "xor": OpXor, "not": OpNot,
	"shl": OpShl, "shr": OpShr, "mov": OpMov, "abs": OpAbs,
	"mul": OpIMul, "mad": OpIMad, "div": OpIDiv, "rem": OpIRem,
}

var floatOps = map[string]Opcode{
	"add": OpFAdd, "sub": OpFSub, "mul": OpFMul, "fma": OpFFma,
	"div": OpFDiv, "min": OpFMin, "max": OpFMax, "neg": OpFNeg,
	"abs": OpFAbs, "mov": OpMov,
	"sqrt": OpSqrt, "rsqrt": OpRsqrt, "sin": OpSin, "cos": OpCos,
	"ex2": OpExp2, "lg2": OpLog2, "rcp": OpRcp,
}

var typeNames = map[string]Type{
	"u32": U32, "s32": S32, "u64": U64, "s64": S64, "f32": F32, "f64": F64,
}

var cmpNames = map[string]CmpOp{
	"eq": EQ, "ne": NE, "lt": LT, "le": LE, "gt": GT, "ge": GE,
}

var spaceNames = map[string]MemSpace{
	"global": Global, "shared": Shared, "param": Param,
}

var sregNames = map[string]SReg{
	"%tid": SRegTid, "%ntid": SRegNTid, "%ctaid": SRegCtaid,
	"%nctaid": SRegNCtaid, "%gtid": SRegGtid, "%lane": SRegLane,
}

func parseInstr(line string, n int, noteReg func(Reg), notePred func(PReg)) (Instr, string, error) {
	in := Instr{Guard: NoPred}

	// Guard prefix.
	if strings.HasPrefix(line, "@") {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return in, "", &asmError{n, "guard without instruction"}
		}
		g := line[1:sp]
		if strings.HasPrefix(g, "!") {
			in.GuardNeg = true
			g = g[1:]
		}
		if !strings.HasPrefix(g, "p") {
			return in, "", &asmError{n, "bad guard " + g}
		}
		v, err := strconv.Atoi(g[1:])
		if err != nil {
			return in, "", &asmError{n, "bad guard " + g}
		}
		in.Guard = PReg(v)
		notePred(in.Guard)
		line = strings.TrimSpace(line[sp+1:])
	}

	head, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	parts := strings.Split(head, ".")

	operands := splitOperands(rest)
	parseOp := func(s string) (Operand, error) {
		return parseOperand(s, n, noteReg)
	}
	needDst := func() (Reg, error) {
		if len(operands) == 0 {
			return 0, &asmError{n, "missing destination"}
		}
		o, err := parseOp(operands[0])
		if err != nil {
			return 0, err
		}
		if o.Kind != OpReg {
			return 0, &asmError{n, "destination must be a register"}
		}
		return o.Reg, nil
	}

	switch parts[0] {
	case "nop":
		in.Op = OpNop
		return in, "", nil
	case "exit":
		in.Op = OpExit
		return in, "", nil
	case "bar":
		in.Op = OpBar
		return in, "", nil
	case "bra":
		in.Op = OpBra
		if rest == "" {
			return in, "", &asmError{n, "bra needs a label"}
		}
		return in, rest, nil
	case "setp":
		if len(parts) != 3 {
			return in, "", &asmError{n, "setp needs .cmp.type"}
		}
		cmp, ok := cmpNames[parts[1]]
		if !ok {
			return in, "", &asmError{n, "unknown comparison " + parts[1]}
		}
		ty, ok := typeNames[parts[2]]
		if !ok {
			return in, "", &asmError{n, "unknown type " + parts[2]}
		}
		if len(operands) != 3 || !strings.HasPrefix(operands[0], "p") {
			return in, "", &asmError{n, "setp needs pN, a, b"}
		}
		pv, err := strconv.Atoi(operands[0][1:])
		if err != nil {
			return in, "", &asmError{n, "bad predicate " + operands[0]}
		}
		in.Op, in.Cmp, in.Type, in.PDst = OpSetp, cmp, ty, PReg(pv)
		notePred(in.PDst)
		for i := 0; i < 2; i++ {
			o, err := parseOp(operands[i+1])
			if err != nil {
				return in, "", err
			}
			in.Srcs[i] = o
		}
		return in, "", nil
	case "ld", "st":
		if len(parts) != 3 {
			return in, "", &asmError{n, parts[0] + " needs .space.type"}
		}
		space, ok := spaceNames[parts[1]]
		if !ok {
			return in, "", &asmError{n, "unknown space " + parts[1]}
		}
		ty, ok := typeNames[parts[2]]
		if !ok {
			return in, "", &asmError{n, "unknown type " + parts[2]}
		}
		in.Type, in.Space = ty, space
		if parts[0] == "ld" {
			in.Op = OpLd
			if len(operands) != 2 {
				return in, "", &asmError{n, "ld needs rD, [addr]"}
			}
			dst, err := needDst()
			if err != nil {
				return in, "", err
			}
			in.Dst = dst
			addr, err := parseBracket(operands[1], n, noteReg)
			if err != nil {
				return in, "", err
			}
			in.Srcs[0] = addr
			return in, "", nil
		}
		in.Op = OpSt
		if len(operands) != 2 {
			return in, "", &asmError{n, "st needs [addr], val"}
		}
		addr, err := parseBracket(operands[0], n, noteReg)
		if err != nil {
			return in, "", err
		}
		val, err := parseOp(operands[1])
		if err != nil {
			return in, "", err
		}
		in.Srcs[0], in.Srcs[1] = addr, val
		return in, "", nil
	case "atom":
		// atom.<space>.add.<type>
		if len(parts) != 4 || parts[2] != "add" {
			return in, "", &asmError{n, "atomics support atom.<space>.add.<type>"}
		}
		space, ok := spaceNames[parts[1]]
		if !ok {
			return in, "", &asmError{n, "unknown space " + parts[1]}
		}
		ty, ok := typeNames[parts[3]]
		if !ok {
			return in, "", &asmError{n, "unknown type " + parts[3]}
		}
		in.Op, in.Space, in.Type = OpAtomAdd, space, ty
		if len(operands) != 2 {
			return in, "", &asmError{n, "atom needs [addr], val"}
		}
		addr, err := parseBracket(operands[0], n, noteReg)
		if err != nil {
			return in, "", err
		}
		val, err := parseOp(operands[1])
		if err != nil {
			return in, "", err
		}
		in.Srcs[0], in.Srcs[1] = addr, val
		return in, "", nil
	case "selp":
		if len(parts) != 2 {
			return in, "", &asmError{n, "selp needs .type"}
		}
		ty, ok := typeNames[parts[1]]
		if !ok {
			return in, "", &asmError{n, "unknown type " + parts[1]}
		}
		in.Op, in.Type = OpSelp, ty
		if len(operands) != 4 || !strings.HasPrefix(operands[3], "p") {
			return in, "", &asmError{n, "selp needs rD, a, b, pN"}
		}
		dst, err := needDst()
		if err != nil {
			return in, "", err
		}
		in.Dst = dst
		for i := 0; i < 2; i++ {
			o, err := parseOp(operands[i+1])
			if err != nil {
				return in, "", err
			}
			in.Srcs[i] = o
		}
		pv, err := strconv.Atoi(operands[3][1:])
		if err != nil {
			return in, "", &asmError{n, "bad predicate " + operands[3]}
		}
		in.Srcs[2] = Operand{Kind: OpReg, Reg: Reg(pv)}
		notePred(PReg(pv))
		return in, "", nil
	case "cvt":
		if len(parts) != 3 {
			return in, "", &asmError{n, "cvt needs .to.from"}
		}
		to, ok := typeNames[parts[1]]
		if !ok {
			return in, "", &asmError{n, "unknown type " + parts[1]}
		}
		from, ok := typeNames[parts[2]]
		if !ok {
			return in, "", &asmError{n, "unknown type " + parts[2]}
		}
		in.Op, in.Type = OpCvt, to
		if len(operands) != 2 {
			return in, "", &asmError{n, "cvt needs rD, src"}
		}
		dst, err := needDst()
		if err != nil {
			return in, "", err
		}
		in.Dst = dst
		src, err := parseOp(operands[1])
		if err != nil {
			return in, "", err
		}
		in.Srcs[0] = src
		in.Srcs[1] = Imm(uint64(from))
		return in, "", nil
	}

	// Regular typed ops: <mnemonic>.<type> rD, srcs...
	if len(parts) != 2 {
		return in, "", &asmError{n, "unknown instruction " + head}
	}
	ty, ok := typeNames[parts[1]]
	if !ok {
		return in, "", &asmError{n, "unknown type " + parts[1]}
	}
	var op Opcode
	if ty.IsFloat() {
		op, ok = floatOps[parts[0]]
	} else {
		op, ok = intOps[parts[0]]
	}
	if !ok {
		return in, "", &asmError{n, "unknown mnemonic " + parts[0] + " for type " + parts[1]}
	}
	in.Op, in.Type = op, ty
	want := 1 + op.NumSrcs()
	if len(operands) != want {
		return in, "", &asmError{n, fmt.Sprintf("%s expects %d operands, got %d", head, want, len(operands))}
	}
	dst, err := needDst()
	if err != nil {
		return in, "", err
	}
	in.Dst = dst
	for i := 0; i < op.NumSrcs(); i++ {
		o, err := parseOp(operands[i+1])
		if err != nil {
			return in, "", err
		}
		in.Srcs[i] = o
	}
	return in, "", nil
}

func splitOperands(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseBracket(s string, n int, noteReg func(Reg)) (Operand, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return Operand{}, &asmError{n, "expected [addr], got " + s}
	}
	return parseOperand(strings.TrimSpace(s[1:len(s)-1]), n, noteReg)
}

func parseOperand(s string, n int, noteReg func(Reg)) (Operand, error) {
	switch {
	case s == "":
		return Operand{}, &asmError{n, "empty operand"}
	case s[0] == 'r':
		v, err := strconv.Atoi(s[1:])
		if err != nil || v < 0 {
			return Operand{}, &asmError{n, "bad register " + s}
		}
		noteReg(Reg(v))
		return R(Reg(v)), nil
	case s[0] == '#':
		// Immediates round-trip as signed decimal of the raw bits.
		v, err := strconv.ParseInt(s[1:], 10, 64)
		if err != nil {
			// Accept unsigned and hex forms too.
			u, uerr := strconv.ParseUint(strings.TrimPrefix(s[1:], "0x"), 16, 64)
			if uerr != nil || !strings.HasPrefix(s[1:], "0x") {
				return Operand{}, &asmError{n, "bad immediate " + s}
			}
			return Imm(u), nil
		}
		return ImmI(v), nil
	case s[0] == '%':
		sr, ok := sregNames[s]
		if !ok {
			return Operand{}, &asmError{n, "unknown special register " + s}
		}
		return Special(sr), nil
	default:
		return Operand{}, &asmError{n, "unparseable operand " + s}
	}
}
