package isa

import "testing"

// FuzzParse: the assembler must reject or accept arbitrary input without
// panicking, and anything it accepts must validate and re-emit text that
// parses to the same instruction count.
func FuzzParse(f *testing.F) {
	f.Add(".kernel k\n  exit\n")
	f.Add(".kernel k\n  add.u32 r0, r1, #5\n  exit\n")
	f.Add(".kernel k\nL0:\n  bra L0\n  exit\n")
	f.Add(".kernel k\n  @!p0 st.shared.f32 [r0], r1\n  exit\n")
	f.Add(".kernel k\n .shared 64\n setp.lt.s32 p0, r0, #-1\n selp.u64 r1, r0, r0, p0\n exit")
	f.Add(".kernel k\n cvt.f64.s32 r1, r0\n atom.global.add.u32 [r1], #1\n exit")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Parse accepted a program Validate rejects: %v", verr)
		}
		p2, err := Parse(p.Text())
		if err != nil {
			t.Fatalf("re-parse of Text failed: %v\n%s", err, p.Text())
		}
		if len(p2.Instrs) != len(p.Instrs) {
			t.Fatalf("round trip changed instruction count: %d vs %d", len(p2.Instrs), len(p.Instrs))
		}
	})
}
