package isa

import (
	"fmt"
	"math"
)

// Builder assembles a Program with symbolic labels and automatic register
// allocation. The typical kernel shape:
//
//	b := isa.NewBuilder("saxpy")
//	i := b.Reg()
//	b.MovSpecial(i, isa.SRegGtid)
//	b.Label("loop")
//	...
//	b.BraTo("loop", p, false)
//	b.Exit()
//	prog, err := b.Build()
type Builder struct {
	name     string
	instrs   []Instr
	labels   map[string]int
	fixups   []fixup
	nextReg  Reg
	nextPred PReg
	shared   uint64
	errs     []error
}

type fixup struct {
	instr int
	label string
}

// NewBuilder starts a new kernel.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// Reg allocates a fresh data register.
func (b *Builder) Reg() Reg {
	r := b.nextReg
	b.nextReg++
	return r
}

// Regs allocates n fresh data registers.
func (b *Builder) Regs(n int) []Reg {
	out := make([]Reg, n)
	for i := range out {
		out[i] = b.Reg()
	}
	return out
}

// PredReg allocates a fresh predicate register.
func (b *Builder) PredReg() PReg {
	p := b.nextPred
	b.nextPred++
	return p
}

// Shared reserves n bytes of block-shared memory and returns its base
// byte offset.
func (b *Builder) Shared(n uint64) uint64 {
	base := b.shared
	b.shared += (n + 7) &^ 7 // 8-byte align allocations
	return base
}

// Label marks the next emitted instruction.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("isa: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.instrs)
}

func (b *Builder) emit(in Instr) *Builder {
	b.instrs = append(b.instrs, in)
	return b
}

// instr builds the common shape.
func instr(op Opcode, ty Type, dst Reg, srcs ...Operand) Instr {
	in := Instr{Op: op, Type: ty, Dst: dst, Guard: NoPred}
	copy(in.Srcs[:], srcs)
	return in
}

// Guarded wraps the most recently emitted instruction with a guard
// predicate: the instruction executes only for threads where p is true
// (or false, when neg is set).
func (b *Builder) Guarded(p PReg, neg bool) *Builder {
	if len(b.instrs) == 0 {
		b.errs = append(b.errs, fmt.Errorf("isa: Guarded with no instruction"))
		return b
	}
	b.instrs[len(b.instrs)-1].Guard = p
	b.instrs[len(b.instrs)-1].GuardNeg = neg
	return b
}

// --- Integer ALU ---

// IAdd emits dst = a + b (type ty).
func (b *Builder) IAdd(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpIAdd, ty, dst, a, c))
}

// ISub emits dst = a - b.
func (b *Builder) ISub(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpISub, ty, dst, a, c))
}

// IMul emits dst = a * b (low bits).
func (b *Builder) IMul(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpIMul, ty, dst, a, c))
}

// IMad emits dst = a * b + c.
func (b *Builder) IMad(ty Type, dst Reg, a, c, d Operand) *Builder {
	return b.emit(instr(OpIMad, ty, dst, a, c, d))
}

// IDiv emits dst = a / b.
func (b *Builder) IDiv(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpIDiv, ty, dst, a, c))
}

// IRem emits dst = a % b.
func (b *Builder) IRem(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpIRem, ty, dst, a, c))
}

// IMin / IMax / logic / shifts.
func (b *Builder) IMin(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpIMin, ty, dst, a, c))
}
func (b *Builder) IMax(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpIMax, ty, dst, a, c))
}
func (b *Builder) And(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpAnd, ty, dst, a, c))
}
func (b *Builder) Or(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpOr, ty, dst, a, c))
}
func (b *Builder) Xor(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpXor, ty, dst, a, c))
}
func (b *Builder) Not(ty Type, dst Reg, a Operand) *Builder { return b.emit(instr(OpNot, ty, dst, a)) }
func (b *Builder) Shl(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpShl, ty, dst, a, c))
}
func (b *Builder) Shr(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpShr, ty, dst, a, c))
}
func (b *Builder) Abs(ty Type, dst Reg, a Operand) *Builder { return b.emit(instr(OpAbs, ty, dst, a)) }

// Mov emits dst = src.
func (b *Builder) Mov(ty Type, dst Reg, src Operand) *Builder {
	return b.emit(instr(OpMov, ty, dst, src))
}

// MovSpecial emits dst = special register.
func (b *Builder) MovSpecial(dst Reg, s SReg) *Builder {
	return b.emit(instr(OpMov, U32, dst, Special(s)))
}

// Cvt emits dst = convert(src) to type ty (from the type recorded in the
// operand's producing instruction; the simulator converts via f64).
func (b *Builder) Cvt(to Type, dst Reg, src Operand, from Type) *Builder {
	in := instr(OpCvt, to, dst, src)
	// The source type rides in Cmp's slot-free encoding: reuse Space field
	// would be obscure; store in Srcs[1] as an immediate type tag.
	in.Srcs[1] = Imm(uint64(from))
	return b.emit(in)
}

// Selp emits dst = p ? a : b.
func (b *Builder) Selp(ty Type, dst Reg, a, c Operand, p PReg) *Builder {
	in := instr(OpSelp, ty, dst, a, c)
	in.Srcs[2] = Operand{Kind: OpReg, Reg: Reg(p)}
	return b.emit(in)
}

// --- Floating point ---

func (b *Builder) FAdd(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpFAdd, ty, dst, a, c))
}
func (b *Builder) FSub(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpFSub, ty, dst, a, c))
}
func (b *Builder) FMul(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpFMul, ty, dst, a, c))
}
func (b *Builder) FFma(ty Type, dst Reg, a, c, d Operand) *Builder {
	return b.emit(instr(OpFFma, ty, dst, a, c, d))
}
func (b *Builder) FDiv(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpFDiv, ty, dst, a, c))
}
func (b *Builder) FMin(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpFMin, ty, dst, a, c))
}
func (b *Builder) FMax(ty Type, dst Reg, a, c Operand) *Builder {
	return b.emit(instr(OpFMax, ty, dst, a, c))
}
func (b *Builder) FNeg(ty Type, dst Reg, a Operand) *Builder {
	return b.emit(instr(OpFNeg, ty, dst, a))
}
func (b *Builder) FAbs(ty Type, dst Reg, a Operand) *Builder {
	return b.emit(instr(OpFAbs, ty, dst, a))
}

// SFU ops.
func (b *Builder) Sqrt(ty Type, dst Reg, a Operand) *Builder {
	return b.emit(instr(OpSqrt, ty, dst, a))
}
func (b *Builder) Rsqrt(ty Type, dst Reg, a Operand) *Builder {
	return b.emit(instr(OpRsqrt, ty, dst, a))
}
func (b *Builder) Sin(ty Type, dst Reg, a Operand) *Builder { return b.emit(instr(OpSin, ty, dst, a)) }
func (b *Builder) Cos(ty Type, dst Reg, a Operand) *Builder { return b.emit(instr(OpCos, ty, dst, a)) }
func (b *Builder) Exp2(ty Type, dst Reg, a Operand) *Builder {
	return b.emit(instr(OpExp2, ty, dst, a))
}
func (b *Builder) Log2(ty Type, dst Reg, a Operand) *Builder {
	return b.emit(instr(OpLog2, ty, dst, a))
}
func (b *Builder) Rcp(ty Type, dst Reg, a Operand) *Builder { return b.emit(instr(OpRcp, ty, dst, a)) }

// --- Predicates and control ---

// Setp emits p = a <cmp> b.
func (b *Builder) Setp(cmp CmpOp, ty Type, p PReg, a, c Operand) *Builder {
	in := Instr{Op: OpSetp, Type: ty, PDst: p, Cmp: cmp, Guard: NoPred}
	in.Srcs[0] = a
	in.Srcs[1] = c
	return b.emit(in)
}

// BraTo emits a branch to label, guarded by p (NoPred = unconditional);
// neg inverts the guard.
func (b *Builder) BraTo(label string, p PReg, neg bool) *Builder {
	in := Instr{Op: OpBra, Guard: p, GuardNeg: neg}
	b.fixups = append(b.fixups, fixup{instr: len(b.instrs), label: label})
	return b.emit(in)
}

// Bra emits an unconditional branch.
func (b *Builder) Bra(label string) *Builder { return b.BraTo(label, NoPred, false) }

// Exit emits thread termination.
func (b *Builder) Exit() *Builder { return b.emit(Instr{Op: OpExit, Guard: NoPred}) }

// Bar emits a block-wide barrier.
func (b *Builder) Bar() *Builder { return b.emit(Instr{Op: OpBar, Guard: NoPred}) }

// --- Memory ---

// Ld emits dst = space[addr].
func (b *Builder) Ld(space MemSpace, ty Type, dst Reg, addr Operand) *Builder {
	in := instr(OpLd, ty, dst, addr)
	in.Space = space
	return b.emit(in)
}

// St emits space[addr] = val.
func (b *Builder) St(space MemSpace, ty Type, addr, val Operand) *Builder {
	in := Instr{Op: OpSt, Type: ty, Space: space, Guard: NoPred}
	in.Srcs[0] = addr
	in.Srcs[1] = val
	return b.emit(in)
}

// AtomAdd emits space[addr] += val atomically.
func (b *Builder) AtomAdd(space MemSpace, ty Type, addr, val Operand) *Builder {
	in := Instr{Op: OpAtomAdd, Type: ty, Space: space, Guard: NoPred}
	in.Srcs[0] = addr
	in.Srcs[1] = val
	return b.emit(in)
}

// --- Immediates for floats ---

// ImmF32 encodes a float32 immediate.
func ImmF32(v float32) Operand { return Operand{Kind: OpImm, Imm: uint64(math.Float32bits(v))} }

// ImmF64 encodes a float64 immediate.
func ImmF64(v float64) Operand { return Operand{Kind: OpImm, Imm: math.Float64bits(v)} }

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: %s: undefined label %q", b.name, f.label)
		}
		b.instrs[f.instr].Target = target
		b.instrs[f.instr].Label = f.label
	}
	p := &Program{
		Name:        b.name,
		Instrs:      b.instrs,
		NumRegs:     int(b.nextReg),
		NumPreds:    int(b.nextPred),
		SharedBytes: b.shared,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; for statically-known-good
// kernels in internal/kernels (their construction is covered by tests).
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
