package isa

import (
	"strings"
	"testing"
)

func TestParseSimpleKernel(t *testing.T) {
	src := `
.kernel vecadd
.shared 128
  mov.u32 r0, %gtid
  setp.ge.u32 p0, r0, #1024
  @p0 bra Ldone
  shl.u64 r1, r0, #2
  add.u64 r1, r1, #4096
  ld.global.u32 r2, [r1]
  add.u32 r2, r2, #1
  st.global.u32 [r1], r2
Ldone:
  exit
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "vecadd" || p.SharedBytes != 128 {
		t.Errorf("header: %q %d", p.Name, p.SharedBytes)
	}
	if p.NumRegs != 3 || p.NumPreds != 1 {
		t.Errorf("inferred regs=%d preds=%d", p.NumRegs, p.NumPreds)
	}
	if len(p.Instrs) != 9 {
		t.Fatalf("instrs = %d", len(p.Instrs))
	}
	bra := p.Instrs[2]
	if bra.Op != OpBra || bra.Guard != 0 || bra.GuardNeg || p.Instrs[bra.Target].Op != OpExit {
		t.Errorf("branch parsed wrong: %+v", bra)
	}
	if p.Instrs[5].Op != OpLd || p.Instrs[5].Space != Global || p.Instrs[5].Srcs[0].Reg != 1 {
		t.Errorf("load parsed wrong: %+v", p.Instrs[5])
	}
}

func TestParseAllForms(t *testing.T) {
	src := `
.kernel forms
  mov.u32 r0, %tid
  mov.u32 r1, %ntid
  mov.u32 r2, %ctaid
  mov.u32 r3, %nctaid
  mov.u32 r4, %lane
  nop
  bar.sync
  and.u32 r5, r0, #255
  not.u64 r6, r5
  mad.u32 r7, r0, #3, #7
  div.s32 r8, r7, #3
  rem.s32 r9, r7, #3
  abs.s32 r9, r9
  min.s32 r9, r9, #10
  max.s32 r9, r9, #0
  setp.lt.s32 p0, r9, #5
  selp.u32 r10, r9, r8, p0
  @!p0 add.u32 r10, r10, #1
  cvt.f32.u32 r11, r10
  add.f32 r12, r11, #1065353216
  fma.f32 r12, r12, r11, r12
  sqrt.f32 r13, r12
  rsqrt.f32 r13, r13
  sin.f32 r13, r13
  cos.f32 r13, r13
  ex2.f32 r13, r13
  lg2.f32 r13, r13
  rcp.f32 r13, r13
  neg.f32 r13, r13
  abs.f32 r13, r13
  cvt.u32.f32 r14, r13
  atom.global.add.u32 [r6], #1
  st.shared.f32 [r5], r13
  ld.param.u64 r15, [#0]
  exit
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// cvt must carry its source type.
	var cvt *Instr
	for i := range p.Instrs {
		if p.Instrs[i].Op == OpCvt {
			cvt = &p.Instrs[i]
			break
		}
	}
	if cvt == nil || Type(cvt.Srcs[1].Imm) != U32 {
		t.Errorf("cvt source type lost: %+v", cvt)
	}
	// The shared store must need shared memory: Validate passed already.
	if p.Instrs[6].Op != OpBar {
		t.Error("bar.sync mis-parsed")
	}
}

// Round-trip property: Text() output parses back to the same instruction
// stream for every kernel in the evaluation suite (via their programs).
func TestTextParseRoundTrip(t *testing.T) {
	progs := []*Program{buildSaxpy(t)}
	for _, orig := range progs {
		src := orig.Text()
		got, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: parse of own Text failed: %v\n%s", orig.Name, err, src)
		}
		if got.Name != orig.Name || got.SharedBytes != orig.SharedBytes {
			t.Errorf("%s: header mismatch", orig.Name)
		}
		if len(got.Instrs) != len(orig.Instrs) {
			t.Fatalf("%s: %d instrs vs %d", orig.Name, len(got.Instrs), len(orig.Instrs))
		}
		for i := range got.Instrs {
			a, b := got.Instrs[i], orig.Instrs[i]
			a.Label, b.Label = "", "" // labels are display-only
			if a != b {
				t.Errorf("%s @%d:\n got %+v\nwant %+v", orig.Name, i, a, b)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"undefined label", ".kernel k\n bra Lx\n exit"},
		{"duplicate label", ".kernel k\nL0:\nL0:\n exit"},
		{"empty label", ".kernel k\n:\n exit"},
		{"bad regs", ".kernel k\n.regs x\n exit"},
		{"bad preds", ".kernel k\n.preds x\n exit"},
		{"bad shared", ".kernel k\n.shared x\n exit"},
		{"unknown mnemonic", ".kernel k\n frob.u32 r0, r1\n exit"},
		{"unknown type", ".kernel k\n add.q32 r0, r1, r2\n exit"},
		{"wrong arity", ".kernel k\n add.u32 r0, r1\n exit"},
		{"bad operand", ".kernel k\n add.u32 r0, r1, q5\n exit"},
		{"bad register", ".kernel k\n add.u32 rx, r1, r2\n exit"},
		{"bad immediate", ".kernel k\n add.u32 r0, r1, #zz\n exit"},
		{"bad special", ".kernel k\n mov.u32 r0, %bogus\n exit"},
		{"guard dangling", ".kernel k\n @p0\n exit"},
		{"bad guard", ".kernel k\n @q0 add.u32 r0, r1, r2\n exit"},
		{"ld missing bracket", ".kernel k\n ld.global.u32 r0, r1\n exit"},
		{"st to param", ".kernel k\n st.param.u32 [r0], r1\n exit"},
		{"setp bad pred", ".kernel k\n setp.lt.u32 r0, r1, r2\n exit"},
		{"selp bad pred", ".kernel k\n selp.u32 r0, r1, r2, r3\n exit"},
		{"atom non-add", ".kernel k\n atom.global.min.u32 [r0], r1\n exit"},
		{"cvt missing from", ".kernel k\n cvt.f32 r0, r1\n exit"},
		{"bra without label", ".kernel k\n bra\n exit"},
		{"no exit", ".kernel k\n nop"},
		{"float mnemonic on int", ".kernel k\n sqrt.u32 r0, r1\n exit"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: should fail", c.name)
		}
	}
}

func TestParseComments(t *testing.T) {
	p, err := Parse(`
.kernel c // trailing comment
  // full-line comment
  mov.u32 r0, #5 // another
  exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "c" || len(p.Instrs) != 2 {
		t.Errorf("comments mishandled: %q %d", p.Name, len(p.Instrs))
	}
}

func TestParseHexImmediate(t *testing.T) {
	p, err := Parse(".kernel h\n mov.u64 r0, #0xDEADBEEF\n exit")
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[0].Srcs[0].Imm != 0xDEADBEEF {
		t.Errorf("hex imm = %#x", p.Instrs[0].Srcs[0].Imm)
	}
}

func TestTextIncludesDirectives(t *testing.T) {
	b := NewBuilder("hdr")
	b.Shared(64)
	r := b.Reg()
	b.Mov(U32, r, Imm(1))
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	txt := p.Text()
	for _, want := range []string{".kernel hdr", ".regs 1", ".preds 0", ".shared 64"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Text missing %q:\n%s", want, txt)
		}
	}
}
