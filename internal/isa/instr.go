package isa

import "fmt"

// Opcode enumerates the PTX-lite operations. The grouping mirrors the
// functional-unit classes the paper's power model distinguishes: ALU
// add/sub (ST² targets), ALU other, integer mul/div, FP add/sub (ST²
// targets the mantissa adder), FP mul/div/FMA, SFU transcendental,
// memory, and control.
type Opcode uint8

const (
	OpNop Opcode = iota

	// Integer ALU — add/sub class (ST² candidates).
	OpIAdd
	OpISub

	// Integer ALU — other single-cycle ops.
	OpIMin
	OpIMax
	OpAnd
	OpOr
	OpXor
	OpNot
	OpShl
	OpShr
	OpMov
	OpSelp
	OpCvt
	OpAbs

	// Integer multiplier / divider class.
	OpIMul
	OpIMad
	OpIDiv
	OpIRem

	// Floating point — add/sub class (ST² candidates on the mantissa adder).
	OpFAdd
	OpFSub

	// Floating point — other.
	OpFMul
	OpFFma
	OpFDiv
	OpFMin
	OpFMax
	OpFNeg
	OpFAbs

	// SFU transcendentals.
	OpSqrt
	OpRsqrt
	OpSin
	OpCos
	OpExp2
	OpLog2
	OpRcp

	// Predicates and control.
	OpSetp
	OpBra
	OpExit
	OpBar

	// Memory.
	OpLd
	OpSt
	OpAtomAdd

	opCount // sentinel
)

var opNames = map[Opcode]string{
	OpNop: "nop", OpIAdd: "add", OpISub: "sub", OpIMin: "min", OpIMax: "max",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not", OpShl: "shl",
	OpShr: "shr", OpMov: "mov", OpSelp: "selp", OpCvt: "cvt", OpAbs: "abs",
	OpIMul: "mul", OpIMad: "mad", OpIDiv: "div", OpIRem: "rem",
	OpFAdd: "add", OpFSub: "sub", OpFMul: "mul", OpFFma: "fma",
	OpFDiv: "div", OpFMin: "min", OpFMax: "max", OpFNeg: "neg", OpFAbs: "abs",
	OpSqrt: "sqrt", OpRsqrt: "rsqrt", OpSin: "sin", OpCos: "cos",
	OpExp2: "ex2", OpLog2: "lg2", OpRcp: "rcp",
	OpSetp: "setp", OpBra: "bra", OpExit: "exit", OpBar: "bar.sync",
	OpLd: "ld", OpSt: "st", OpAtomAdd: "atom.add",
}

func (op Opcode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// FUClass is the functional-unit class an opcode executes on — the unit
// taxonomy of the paper's Figure 7 energy breakdown.
type FUClass uint8

const (
	FUNone     FUClass = iota
	FUAluAdd           // integer add/sub: ST² ALU adders
	FUAluOther         // other single-cycle integer/logic ops
	FUIntMul           // integer multiply / MAD multiplier part
	FUIntDiv           // integer division (multi-op sequence on real HW)
	FUFpAdd            // FP add/sub: ST² mantissa adders
	FUFpMul            // FP multiply / FMA
	FUFpDiv            // FP division
	FUSfu              // special function unit
	FUMem              // LD/ST/atomics
	FUCtrl             // branches, barriers, exit

	// NumFUClasses sizes dense per-class counter arrays (hot-path stat
	// bumps index with the class instead of hashing a map key).
	NumFUClasses = int(FUCtrl) + 1
)

func (c FUClass) String() string {
	switch c {
	case FUAluAdd:
		return "ALU.add"
	case FUAluOther:
		return "ALU.other"
	case FUIntMul:
		return "INT.mul"
	case FUIntDiv:
		return "INT.div"
	case FUFpAdd:
		return "FPU.add"
	case FUFpMul:
		return "FPU.mul"
	case FUFpDiv:
		return "FPU.div"
	case FUSfu:
		return "SFU"
	case FUMem:
		return "MEM"
	case FUCtrl:
		return "CTRL"
	default:
		return "none"
	}
}

// Class returns the functional-unit class of the opcode.
func (op Opcode) Class() FUClass {
	switch op {
	case OpIAdd, OpISub:
		return FUAluAdd
	case OpIMin, OpIMax, OpAnd, OpOr, OpXor, OpNot, OpShl, OpShr,
		OpMov, OpSelp, OpCvt, OpAbs, OpSetp:
		return FUAluOther
	case OpIMul, OpIMad:
		return FUIntMul
	case OpIDiv, OpIRem:
		return FUIntDiv
	case OpFAdd, OpFSub:
		return FUFpAdd
	case OpFMul, OpFFma, OpFMin, OpFMax, OpFNeg, OpFAbs:
		return FUFpMul
	case OpFDiv:
		return FUFpDiv
	case OpSqrt, OpRsqrt, OpSin, OpCos, OpExp2, OpLog2, OpRcp:
		return FUSfu
	case OpLd, OpSt, OpAtomAdd:
		return FUMem
	case OpBra, OpExit, OpBar:
		return FUCtrl
	default:
		return FUNone
	}
}

// IsST2Candidate reports whether the opcode's primary datapath is an
// ST²-equipped adder (integer add/sub, FP add/sub). FMA also contains an
// adder, but the paper applies ST² only to dedicated add/sub operations
// ("we refrain from employing speculative adders ... in other complex
// units such as multipliers").
func (op Opcode) IsST2Candidate() bool {
	c := op.Class()
	return c == FUAluAdd || c == FUFpAdd
}

// NumSrcs returns how many source operands the opcode consumes.
func (op Opcode) NumSrcs() int {
	switch op {
	case OpNop, OpExit, OpBar, OpBra:
		return 0
	case OpMov, OpNot, OpCvt, OpAbs, OpFNeg, OpFAbs,
		OpSqrt, OpRsqrt, OpSin, OpCos, OpExp2, OpLog2, OpRcp, OpLd:
		return 1
	case OpIMad, OpFFma, OpSelp:
		return 3
	case OpSt, OpAtomAdd:
		return 2
	default:
		return 2
	}
}

// HasDst reports whether the opcode writes a data register.
func (op Opcode) HasDst() bool {
	switch op {
	case OpNop, OpSetp, OpBra, OpExit, OpBar, OpSt:
		return false
	case OpAtomAdd:
		return false // our atomics do not return the old value
	default:
		return true
	}
}

// Instr is one PTX-lite instruction.
type Instr struct {
	Op   Opcode
	Type Type
	Dst  Reg
	PDst PReg // SETP destination
	Srcs [3]Operand

	// Guard: execute only when (Guard) == !GuardNeg. NoPred = always.
	Guard    PReg
	GuardNeg bool

	Cmp    CmpOp    // SETP
	Space  MemSpace // LD/ST/ATOM
	Target int      // BRA destination (instruction index, resolved by Builder)

	Label string // optional source-level label (diagnostics)
}

// Format renders the instruction in a PTX-flavoured syntax.
func (in Instr) Format(idx int) string {
	guard := ""
	if in.Guard != NoPred {
		n := ""
		if in.GuardNeg {
			n = "!"
		}
		guard = fmt.Sprintf("@%sp%d ", n, in.Guard)
	}
	switch in.Op {
	case OpNop:
		return guard + "nop"
	case OpExit:
		return guard + "exit"
	case OpBar:
		return guard + "bar.sync 0"
	case OpBra:
		return fmt.Sprintf("%sbra L%d", guard, in.Target)
	case OpSetp:
		return fmt.Sprintf("%ssetp.%v.%v p%d, %v, %v", guard, in.Cmp, in.Type, in.PDst, in.Srcs[0], in.Srcs[1])
	case OpLd:
		return fmt.Sprintf("%sld.%v.%v r%d, [%v]", guard, in.Space, in.Type, in.Dst, in.Srcs[0])
	case OpSt:
		return fmt.Sprintf("%sst.%v.%v [%v], %v", guard, in.Space, in.Type, in.Srcs[0], in.Srcs[1])
	case OpAtomAdd:
		return fmt.Sprintf("%satom.%v.add.%v [%v], %v", guard, in.Space, in.Type, in.Srcs[0], in.Srcs[1])
	case OpSelp:
		return fmt.Sprintf("%sselp.%v r%d, %v, %v, p%d", guard, in.Type, in.Dst, in.Srcs[0], in.Srcs[1], in.Srcs[2].Reg)
	default:
		s := fmt.Sprintf("%s%v.%v", guard, in.Op, in.Type)
		if in.Op.HasDst() {
			s += fmt.Sprintf(" r%d", in.Dst)
		}
		for i := 0; i < in.Op.NumSrcs(); i++ {
			s += fmt.Sprintf(", %v", in.Srcs[i])
		}
		return s
	}
}
