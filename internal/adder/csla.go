package adder

import "st2gpu/internal/bitmath"

// CSLAResult reports one operation on the carry-select baseline.
type CSLAResult struct {
	Sum      uint64
	CarryOut uint
	// SliceComputations is the number of slice-level additions performed:
	// a CSLA computes both carry alternatives for every slice above slice
	// 0, always — 2n-1 computations. This is the energy-relevant contrast
	// with ST², which pays the second computation only on mispredictions.
	SliceComputations int
}

// CSLA models the classic carry-select adder (Bedrij, 1962) the paper
// positions ST² against in Section IV-A: same slicing, but both carry-in
// alternatives are computed unconditionally for every slice and the final
// multiplexing picks the right one. Always single-cycle, never wrong,
// roughly 2× the slice energy.
type CSLA struct {
	cfg Config
}

// NewCSLA returns a carry-select adder for the configuration.
func NewCSLA(cfg Config) (*CSLA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &CSLA{cfg: cfg}, nil
}

// Config returns the adder's configuration.
func (c *CSLA) Config() Config { return c.cfg }

// Execute performs one add/sub.
func (c *CSLA) Execute(a, b uint64, op Op) CSLAResult {
	cfg := c.cfg
	m := bitmath.Mask(cfg.Width)
	ea := a & m
	eb := b & m
	cin0 := uint(0)
	if op == Sub {
		eb = bitmath.OnesComplement(b, cfg.Width)
		cin0 = 1
	}
	n := cfg.NumSlices()
	var sum uint64
	carry := cin0
	comps := 0
	for i := uint(0); i < n; i++ {
		lo := i * cfg.SliceBits
		w := bitmath.SliceWidthAt(i, cfg.Width, cfg.SliceBits)
		sa := bitmath.Slice(ea, lo, w)
		sb := bitmath.Slice(eb, lo, w)
		if i == 0 {
			s, co := bitmath.AddWithCarry(sa, sb, cin0, w)
			sum |= s << lo
			carry = co
			comps++
			continue
		}
		// Both alternatives computed in parallel; the true carry selects.
		s0, co0 := bitmath.AddWithCarry(sa, sb, 0, w)
		s1, co1 := bitmath.AddWithCarry(sa, sb, 1, w)
		comps += 2
		if carry == 0 {
			sum |= s0 << lo
			carry = co0
		} else {
			sum |= s1 << lo
			carry = co1
		}
	}
	return CSLAResult{Sum: sum & m, CarryOut: carry, SliceComputations: comps}
}
