package adder

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"st2gpu/internal/bitmath"
)

func mustNew(t *testing.T, cfg Config) *SlicedAdder {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Width: 0, SliceBits: 8},
		{Width: 65, SliceBits: 8},
		{Width: 64, SliceBits: 0},
		{Width: 8, SliceBits: 16},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should fail validation", c)
		}
		if _, err := New(c); err == nil {
			t.Errorf("New(%+v) should fail", c)
		}
	}
	good := []Config{
		{Width: 64, SliceBits: 8},
		{Width: 24, SliceBits: 8},
		{Width: 52, SliceBits: 8},
		{Width: 64, SliceBits: 64},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("config %+v should validate: %v", c, err)
		}
	}
}

func TestConfigGeometry(t *testing.T) {
	cases := []struct {
		cfg        Config
		slices, nb uint
	}{
		{Config{64, 8}, 8, 7},
		{Config{24, 8}, 3, 2},
		{Config{52, 8}, 7, 6},
		{Config{64, 64}, 1, 0},
	}
	for _, c := range cases {
		if got := c.cfg.NumSlices(); got != c.slices {
			t.Errorf("%+v slices = %d, want %d", c.cfg, got, c.slices)
		}
		if got := c.cfg.NumBoundaries(); got != c.nb {
			t.Errorf("%+v boundaries = %d, want %d", c.cfg, got, c.nb)
		}
	}
}

func TestOpString(t *testing.T) {
	if Add.String() != "add" || Sub.String() != "sub" || Op(9).String() != "Op(9)" {
		t.Error("Op strings wrong")
	}
}

// The paper's central correctness guarantee: ST² produces the exact result
// regardless of what the predictor claimed. quick-check over operands,
// ops, predictions, and all unit geometries.
func TestExecuteAlwaysExact(t *testing.T) {
	cfgs := []Config{{64, 8}, {24, 8}, {52, 8}, {64, 16}, {64, 4}, {32, 8}}
	adders := make([]*SlicedAdder, len(cfgs))
	for i, c := range cfgs {
		adders[i] = mustNew(t, c)
	}
	f := func(a, b, pred uint64, subOp bool) bool {
		op := Add
		if subOp {
			op = Sub
		}
		for _, s := range adders {
			got := s.Execute(a, b, op, pred)
			wantSum, wantCout := s.Reference(a, b, op)
			if got.Sum != wantSum || got.CarryOut != wantCout {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

// With perfect (oracle) predictions the operation is single-cycle and
// recomputes nothing.
func TestPerfectPredictionSingleCycle(t *testing.T) {
	s := mustNew(t, Config{Width: 64, SliceBits: 8})
	f := func(a, b uint64, subOp bool) bool {
		op := Add
		if subOp {
			op = Sub
		}
		ea, eb, cin0 := s.EffectiveOperands(a, b, op)
		oracle := bitmath.BoundaryCarriesPacked(ea, eb, cin0, 64, 8)
		r := s.Execute(a, b, op, oracle)
		return r.Cycles == 1 && !r.Mispredicted && r.Recomputed == 0 &&
			r.ErrorSlices == 0 && r.SuspectSlices == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// An operation takes 2 cycles iff at least one slice mispredicted, and the
// suspect mask is exactly the contiguous run from the first error upward.
func TestCycleAndSuspectSemantics(t *testing.T) {
	s := mustNew(t, Config{Width: 64, SliceBits: 8})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		pred := rng.Uint64() & 0x7F
		r := s.Execute(a, b, Add, pred)
		if r.Mispredicted != (r.Cycles == 2) {
			t.Fatalf("cycles=%d but mispredicted=%v", r.Cycles, r.Mispredicted)
		}
		if !r.Mispredicted && r.Recomputed != 0 {
			t.Fatalf("clean op recomputed %d slices", r.Recomputed)
		}
		if r.Mispredicted {
			// Lowest error bit determines the whole suspect run.
			low := r.ErrorSlices & -r.ErrorSlices
			wantSuspect := (bitmath.Mask(7) &^ (low - 1))
			if r.SuspectSlices != wantSuspect {
				t.Fatalf("E=%07b S=%07b want S=%07b", r.ErrorSlices, r.SuspectSlices, wantSuspect)
			}
			if r.Recomputed < 1 || r.Recomputed > 7 {
				t.Fatalf("recomputed %d out of range", r.Recomputed)
			}
		}
		// Error bits are always a subset of suspect bits.
		if r.ErrorSlices&^r.SuspectSlices != 0 {
			t.Fatalf("E=%07b not subset of S=%07b", r.ErrorSlices, r.SuspectSlices)
		}
	}
}

// ActualCarries must equal the ground-truth boundary carries — it is what
// the CRF stores for the next prediction.
func TestActualCarriesGroundTruth(t *testing.T) {
	cfgs := []Config{{64, 8}, {52, 8}, {24, 8}}
	for _, cfg := range cfgs {
		s := mustNew(t, cfg)
		f := func(a, b, pred uint64, subOp bool) bool {
			op := Add
			if subOp {
				op = Sub
			}
			ea, eb, cin0 := s.EffectiveOperands(a, b, op)
			want := bitmath.BoundaryCarriesPacked(ea, eb, cin0, cfg.Width, cfg.SliceBits)
			r := s.Execute(a, b, op, pred)
			return r.ActualCarries == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("cfg %+v: %v", cfg, err)
		}
	}
}

func TestSubtractionSemantics(t *testing.T) {
	s := mustNew(t, Config{Width: 64, SliceBits: 8})
	r := s.Execute(10, 3, Sub, 0)
	if r.Sum != 7 {
		t.Errorf("10-3 = %d", r.Sum)
	}
	r = s.Execute(3, 10, Sub, 0)
	if int64(r.Sum) != -7 {
		t.Errorf("3-10 = %d", int64(r.Sum))
	}
	// Narrow widths wrap modulo 2^width.
	s24 := mustNew(t, Config{Width: 24, SliceBits: 8})
	r = s24.Execute(0, 1, Sub, 0)
	if r.Sum != bitmath.Mask(24) {
		t.Errorf("0-1 (24b) = %#x", r.Sum)
	}
}

func TestEffectiveOperands(t *testing.T) {
	s := mustNew(t, Config{Width: 32, SliceBits: 8})
	ea, eb, cin := s.EffectiveOperands(0xFFFFFFFF00000001, 0x2, Add)
	if ea != 1 || eb != 2 || cin != 0 {
		t.Errorf("add effective = %#x %#x %d", ea, eb, cin)
	}
	ea, eb, cin = s.EffectiveOperands(5, 3, Sub)
	if ea != 5 || eb != ^uint64(3)&0xFFFFFFFF || cin != 1 {
		t.Errorf("sub effective = %#x %#x %d", ea, eb, cin)
	}
}

// A misprediction planted at a specific boundary is detected at exactly
// that boundary.
func TestPlantedMisprediction(t *testing.T) {
	s := mustNew(t, Config{Width: 64, SliceBits: 8})
	// 0xFF + 0x01: true carry into slice 1 is 1, all others 0.
	a, b := uint64(0xFF), uint64(0x01)
	truth := bitmath.BoundaryCarriesPacked(a, b, 0, 64, 8)
	if truth != 1 {
		t.Fatalf("truth carries = %07b, want 0000001", truth)
	}
	// Predict all zero: boundary 0 is wrong → slice 1 errs, slices 1-7 suspect.
	r := s.Execute(a, b, Add, 0)
	if !r.Mispredicted || r.ErrorSlices != 1 {
		t.Fatalf("E = %07b, want 0000001", r.ErrorSlices)
	}
	if r.SuspectSlices != 0x7F || r.Recomputed != 7 {
		t.Fatalf("S = %07b recomputed=%d, want all 7 suspect", r.SuspectSlices, r.Recomputed)
	}
	// Predict exactly the truth → clean.
	r = s.Execute(a, b, Add, truth)
	if r.Mispredicted {
		t.Fatal("oracle prediction flagged as misprediction")
	}
	// Mispredict only the top boundary → exactly one slice recomputes.
	r = s.Execute(a, b, Add, truth|(1<<6))
	if r.ErrorSlices != 1<<6 || r.Recomputed != 1 {
		t.Fatalf("top-boundary error: E=%07b recomputed=%d", r.ErrorSlices, r.Recomputed)
	}
}

// The approximate variant returns wrong results exactly when a prediction
// was wrong in a way that changes the sum, and the exact flag tracks it.
func TestExecuteApproximate(t *testing.T) {
	s := mustNew(t, Config{Width: 64, SliceBits: 8})
	a, b := uint64(0xFF), uint64(0x01)
	sum, exact := s.ExecuteApproximate(a, b, Add, 0) // drops the carry into slice 1
	if exact {
		t.Error("dropped carry should not be exact")
	}
	if sum != 0 {
		t.Errorf("approximate sum = %#x, want 0 (carry lost)", sum)
	}
	truth := bitmath.BoundaryCarriesPacked(a, b, 0, 64, 8)
	sum, exact = s.ExecuteApproximate(a, b, Add, truth)
	if !exact || sum != 0x100 {
		t.Errorf("oracle approximate = %#x exact=%v", sum, exact)
	}
	// Property: exact flag is truthful.
	f := func(x, y, pred uint64) bool {
		got, ok := s.ExecuteApproximate(x, y, Add, pred)
		return ok == (got == x+y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCSLAExactAndCost(t *testing.T) {
	c, err := NewCSLA(Config{Width: 64, SliceBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().Width != 64 {
		t.Error("config accessor wrong")
	}
	f := func(a, b uint64, subOp bool) bool {
		op := Add
		if subOp {
			op = Sub
		}
		r := c.Execute(a, b, op)
		want := a + b
		if op == Sub {
			want = a - b
		}
		return r.Sum == want && r.SliceComputations == 15 // 2·8-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
	if _, err := NewCSLA(Config{Width: 0, SliceBits: 8}); err == nil {
		t.Error("invalid CSLA config should error")
	}
}

// ST² does strictly fewer slice computations than CSLA unless every
// boundary mispredicts.
func TestST2CheaperThanCSLA(t *testing.T) {
	s := mustNew(t, Config{Width: 64, SliceBits: 8})
	c, _ := NewCSLA(Config{Width: 64, SliceBits: 8})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		r := s.Execute(a, b, Add, rng.Uint64()&0x7F)
		st2Comps := 8 + r.Recomputed
		cslaComps := c.Execute(a, b, Add).SliceComputations
		if st2Comps > cslaComps {
			t.Fatalf("ST² computations %d exceed CSLA %d", st2Comps, cslaComps)
		}
	}
}

func TestSingleSliceDegenerate(t *testing.T) {
	// A one-slice adder has nothing to speculate: always 1 cycle, exact.
	s := mustNew(t, Config{Width: 64, SliceBits: 64})
	r := s.Execute(123, 456, Add, ^uint64(0))
	if r.Sum != 579 || r.Cycles != 1 || r.Mispredicted {
		t.Errorf("degenerate adder: %+v", r)
	}
}

func TestResultDescribe(t *testing.T) {
	s := mustNew(t, Config{Width: 64, SliceBits: 8})
	clean := s.Execute(1, 2, Add, 0)
	d := clean.Describe(s.Config())
	if !strings.Contains(d, "single-cycle") {
		t.Errorf("clean op description:\n%s", d)
	}
	bad := s.Execute(0xFF, 0x01, Add, 0)
	d = bad.Describe(s.Config())
	for _, want := range []string{"cycles=2", "E (errors)", "re-executed"} {
		if !strings.Contains(d, want) {
			t.Errorf("mispredict description missing %q:\n%s", want, d)
		}
	}
}
