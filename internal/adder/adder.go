// Package adder implements the executable microarchitectural model of the
// ST² sliced speculative adder (Section IV-A of the paper), plus the
// reference adder and the carry-select adder it is compared against.
//
// The model is bit-exact and cycle-faithful: an operation completes in one
// cycle when every speculated slice carry-in was correct, and in two cycles
// otherwise, with exactly the slices whose S (suspect) signal is raised
// recomputing on the second cycle — the quantities the paper's energy and
// performance evaluation is built on. Energy is *not* computed here; the
// engine reports slice activity and internal/core prices it using the
// characterization in internal/circuit.
package adder

import (
	"fmt"
	"strings"

	"st2gpu/internal/bitmath"
)

// Op selects addition or subtraction. Subtraction is executed, as in the
// hardware, by ones'-complementing the second operand and injecting a
// carry-in of 1 into slice 0.
type Op int

const (
	Add Op = iota
	Sub
)

func (o Op) String() string {
	switch o {
	case Add:
		return "add"
	case Sub:
		return "sub"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Config describes a sliced adder instance.
type Config struct {
	Width     uint // operand width in bits: 64 (ALU), 24 (FP32 mantissa), 52 (FP64 mantissa)
	SliceBits uint // slice width in bits; the paper's design point is 8
}

// Validate reports whether the configuration is supported.
func (c Config) Validate() error {
	if c.Width == 0 || c.Width > 64 {
		return fmt.Errorf("adder: width %d outside (0,64]", c.Width)
	}
	if c.SliceBits == 0 || c.SliceBits > c.Width {
		return fmt.Errorf("adder: slice width %d outside (0,%d]", c.SliceBits, c.Width)
	}
	return nil
}

// NumSlices returns the slice count of the configuration.
func (c Config) NumSlices() uint { return bitmath.NumSlices(c.Width, c.SliceBits) }

// NumBoundaries returns how many carry-ins must be speculated (slices-1).
func (c Config) NumBoundaries() uint {
	n := c.NumSlices()
	if n == 0 {
		return 0
	}
	return n - 1
}

// Result reports everything about one operation on the sliced adder.
type Result struct {
	Sum      uint64 // the (always exact) final result, Width bits
	CarryOut uint   // carry out of the top bit

	Cycles       uint // 1 (all predictions correct) or 2
	Mispredicted bool // at least one speculated boundary was wrong

	// ErrorSlices is the packed E[] signals: bit i-1 set means slice i
	// received a carry-in that differed from the carry slice i-1 actually
	// produced on cycle 1.
	ErrorSlices uint64
	// SuspectSlices is the packed S[] signals: the slices that re-executed
	// on cycle 2 (bit i-1 for slice i). popcount = recompute energy cost.
	SuspectSlices uint64
	// Recomputed is the number of slices that ran a second computation.
	Recomputed int

	// ActualCarries is the packed exact boundary carries (bit i = carry
	// into slice i+1) — what the history table stores for next time.
	ActualCarries uint64
	// Predicted echoes the packed predictions the operation used.
	Predicted uint64
}

// SlicedAdder is a stateless (per-operation) model of the ST² datapath.
// Prediction state lives in internal/speculate; this type turns
// (operands, predictions) into (result, timing, activity).
type SlicedAdder struct {
	cfg Config
}

// New returns a sliced adder for the given configuration.
func New(cfg Config) (*SlicedAdder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SlicedAdder{cfg: cfg}, nil
}

// Config returns the adder's configuration.
func (s *SlicedAdder) Config() Config { return s.cfg }

// EffectiveOperands applies the subtraction transformation: for Sub, the
// second operand is ones'-complemented and the injected carry-in is 1.
// Predictors peek at these effective operands, exactly as the hardware
// sees them on the slice input registers.
func (s *SlicedAdder) EffectiveOperands(a, b uint64, op Op) (ea, eb uint64, cin0 uint) {
	m := bitmath.Mask(s.cfg.Width)
	ea = a & m
	switch op {
	case Sub:
		return ea, bitmath.OnesComplement(b, s.cfg.Width), 1
	default:
		return ea, b & m, 0
	}
}

// Execute performs one operation. predicted is the packed per-boundary
// carry predictions (bit i = predicted carry into slice i+1); bits above
// NumBoundaries-1 are ignored.
//
// Cycle 1: every slice computes with its predicted carry-in (slice 0 with
// the injected carry). Each slice i>0 then compares its prediction with
// the carry-out slice i-1 actually produced; a mismatch raises E[i].
// S[i] = OR of E[1..i]; all suspect slices recompute on cycle 2 with the
// inverted carry-in, after which — as in a carry-select adder — both
// possibilities are available everywhere and the exact result is selected.
func (s *SlicedAdder) Execute(a, b uint64, op Op, predicted uint64) Result {
	ea, eb, cin0 := s.EffectiveOperands(a, b, op)
	return s.executeEffective(ea, eb, cin0, predicted)
}

func (s *SlicedAdder) executeEffective(ea, eb uint64, cin0 uint, predicted uint64) Result {
	cfg := s.cfg
	n := cfg.NumSlices()
	res := Result{Predicted: predicted & bitmath.Mask(cfg.NumBoundaries())}

	// --- Cycle 1: all slices in parallel with speculated carry-ins. ---
	// usedCin[i] is the carry-in slice i computed with; cout1[i] its
	// cycle-1 carry-out. Fixed-size arrays keep the hot path free of heap
	// allocations (the simulator calls Execute tens of millions of times).
	var usedCin, cout1 [bitmath.MaxWidth]uint
	var sums1 [bitmath.MaxWidth]uint64
	for i := uint(0); i < n; i++ {
		lo := i * cfg.SliceBits
		w := bitmath.SliceWidthAt(i, cfg.Width, cfg.SliceBits)
		sa := bitmath.Slice(ea, lo, w)
		sb := bitmath.Slice(eb, lo, w)
		cin := cin0
		if i > 0 {
			cin = uint((predicted >> (i - 1)) & 1)
		}
		usedCin[i] = cin
		sums1[i], cout1[i] = bitmath.AddWithCarry(sa, sb, cin, w)
	}

	// --- End of cycle 1: misprediction detection (E signals). ---
	var e, sMask uint64
	for i := uint(1); i < n; i++ {
		if usedCin[i] != cout1[i-1] {
			e |= 1 << (i - 1)
		}
	}
	// S[i] = OR of E[1..i]: once any lower slice erred, everything above
	// is suspect.
	var seen bool
	for i := uint(1); i < n; i++ {
		if e&(1<<(i-1)) != 0 {
			seen = true
		}
		if seen {
			sMask |= 1 << (i - 1)
		}
	}
	res.ErrorSlices = e
	res.SuspectSlices = sMask
	res.Recomputed = bitmath.PopCount64(sMask)
	res.Mispredicted = e != 0

	// --- Cycle 2 (only if needed): suspect slices recompute with the
	// inverse carry-in; then exact carries are resolved left to right and
	// each slice selects the computation matching its true carry-in. ---
	res.Cycles = 1
	if res.Mispredicted {
		res.Cycles = 2
	}

	var sum uint64
	carry := cin0
	for i := uint(0); i < n; i++ {
		lo := i * cfg.SliceBits
		w := bitmath.SliceWidthAt(i, cfg.Width, cfg.SliceBits)
		var sliceSum uint64
		var sliceCout uint
		if carry == usedCin[i] {
			// Cycle-1 computation used the true carry-in: keep it. For
			// non-suspect slices this is the only computation available,
			// and the invariant usedCin == true carry always holds there.
			sliceSum, sliceCout = sums1[i], cout1[i]
		} else {
			// The slice is suspect and its cycle-2 computation (inverse
			// carry) is the correct one.
			sa := bitmath.Slice(ea, lo, w)
			sb := bitmath.Slice(eb, lo, w)
			sliceSum, sliceCout = bitmath.AddWithCarry(sa, sb, carry, w)
		}
		sum |= sliceSum << lo
		carry = sliceCout

		// Record the true boundary carry for the history update.
		if i < n-1 {
			res.ActualCarries |= uint64(carry) << i
		}
	}
	res.Sum = sum & bitmath.Mask(cfg.Width)
	res.CarryOut = carry
	return res
}

// ExecuteApproximate models an *approximate* speculative adder (the
// error-accepting designs of related work [10]–[13]): it returns the
// cycle-1 result unconditionally in a single cycle, along with whether
// that result happens to be exact. Used by the ablation benches to show
// why the paper insists on correction.
func (s *SlicedAdder) ExecuteApproximate(a, b uint64, op Op, predicted uint64) (sum uint64, exact bool) {
	ea, eb, cin0 := s.EffectiveOperands(a, b, op)
	cfg := s.cfg
	n := cfg.NumSlices()
	var out uint64
	for i := uint(0); i < n; i++ {
		lo := i * cfg.SliceBits
		w := bitmath.SliceWidthAt(i, cfg.Width, cfg.SliceBits)
		sa := bitmath.Slice(ea, lo, w)
		sb := bitmath.Slice(eb, lo, w)
		cin := cin0
		if i > 0 {
			cin = uint((predicted >> (i - 1)) & 1)
		}
		sliceSum, _ := bitmath.AddWithCarry(sa, sb, cin, w)
		out |= sliceSum << lo
	}
	out &= bitmath.Mask(cfg.Width)
	want, _ := bitmath.AddWithCarry(ea, eb, cin0, cfg.Width)
	return out, out == want
}

// Reference computes the exact result the full-width reference adder
// produces, for cross-checking.
func (s *SlicedAdder) Reference(a, b uint64, op Op) (sum uint64, cout uint) {
	ea, eb, cin0 := s.EffectiveOperands(a, b, op)
	return bitmath.AddWithCarry(ea, eb, cin0, s.cfg.Width)
}

// Describe renders a cycle-by-cycle narrative of the operation — which
// boundaries were speculated, where the errors surfaced, and which slices
// re-executed. Intended for debugging and teaching; see
// examples/quickstart.
func (r Result) Describe(cfg Config) string {
	nb := cfg.NumBoundaries()
	var b strings.Builder
	fmt.Fprintf(&b, "sum=%#x cout=%d cycles=%d\n", r.Sum, r.CarryOut, r.Cycles)
	fmt.Fprintf(&b, "  predicted carries: %0*b\n", nb, r.Predicted)
	fmt.Fprintf(&b, "  actual carries:    %0*b\n", nb, r.ActualCarries)
	if !r.Mispredicted {
		b.WriteString("  all speculated carry-ins correct: single-cycle completion\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  E (errors):        %0*b\n", nb, r.ErrorSlices)
	fmt.Fprintf(&b, "  S (suspects):      %0*b\n", nb, r.SuspectSlices)
	fmt.Fprintf(&b, "  cycle 2: %d slice(s) re-executed with inverted carry-in\n", r.Recomputed)
	return b.String()
}
