package metrics

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"sync"
)

// ExpvarName is the expvar key the registry snapshot is published under
// (GET /debug/vars on the debug listener).
const ExpvarName = "st2.metrics"

var publishOnce sync.Once

// DebugServer is a running debug/observability listener started by
// ServeDebug. Close shuts the listener down and releases the port; the
// serving goroutine exits once the listener closes.
type DebugServer struct {
	ln  net.Listener
	reg *Registry
}

// Addr returns the bound address (useful when ServeDebug was given ":0").
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener. In-flight requests are not drained — this is
// a debug endpoint, not a serving path.
func (s *DebugServer) Close() error { return s.ln.Close() }

// ServeDebug starts an HTTP listener on addr serving:
//
//	/healthz      — liveness probe, 200 "ok"
//	/metrics      — Prometheus text exposition of reg
//	/debug/vars   — expvar JSON with reg's snapshot under ExpvarName
//	/debug/pprof/ — net/http/pprof profiles
//
// It never blocks; the listener runs until Close. /metrics and
// /debug/vars always reflect the registry passed to THIS call — each
// server gets its own mux — but the process-global expvar table can
// carry only one publication of ExpvarName, so only the first registry
// ever passed to ServeDebug is visible to other expvar consumers
// (expvar.Get, third-party /debug/vars handlers). Single-publish is a
// limitation of expvar's global namespace, not of this package: prefer
// one long-lived registry per process.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	publishOnce.Do(func() {
		expvar.Publish(ExpvarName, expvar.Func(func() any { return reg.Snapshot() }))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &DebugServer{ln: ln, reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, reg)
	})
	mux.HandleFunc("/debug/vars", srv.serveVars)
	// pprof registers only on the default mux; delegate its subtree.
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
	go func() {
		_ = http.Serve(ln, mux)
	}()
	return srv, nil
}

// serveVars mirrors expvar's handler but substitutes THIS server's
// registry snapshot for ExpvarName, so a second ServeDebug call still
// exposes its own registry even though the global expvar table only
// carries the first.
func (s *DebugServer) serveVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	writeVar := func(key, val string) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", key, val)
	}
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key == ExpvarName {
			return // replaced below with this server's registry
		}
		writeVar(kv.Key, kv.Value.String())
	})
	snap := expvar.Func(func() any { return s.reg.Snapshot() })
	writeVar(ExpvarName, snap.String())
	fmt.Fprintf(w, "\n}\n")
}
