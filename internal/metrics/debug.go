package metrics

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"sync"
)

// ExpvarName is the expvar key the registry snapshot is published under
// (GET /debug/vars on the debug listener).
const ExpvarName = "st2.metrics"

var publishOnce sync.Once

// ServeDebug starts an HTTP listener on addr serving net/http/pprof
// (/debug/pprof/) and expvar (/debug/vars) with the registry snapshot
// published under ExpvarName. It returns the bound address (useful with
// ":0") and never blocks; the listener runs until the process exits.
// Only the first registry passed across the process lifetime is exported
// — expvar's namespace is global.
func ServeDebug(addr string, reg *Registry) (string, error) {
	publishOnce.Do(func() {
		expvar.Publish(ExpvarName, expvar.Func(func() any { return reg.Snapshot() }))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		// The default mux carries the pprof and expvar handlers.
		_ = http.Serve(ln, nil)
	}()
	return ln.Addr().String(), nil
}
