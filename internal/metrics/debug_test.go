package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeDebugEndpoints(t *testing.T) {
	reg := New()
	reg.Counter("sweep.cells").Add(7)
	reg.Gauge("sim.record_bytes").Set(1024)
	h := reg.Histogram("sweep.cell_log2_us", 4)
	h.Observe(0)
	h.Observe(2)
	h.Observe(99) // clamps into the open-ended bucket

	srv, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// /healthz
	code, body := get(t, base+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}

	// /debug/vars carries the registry snapshot under ExpvarName.
	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	var snap map[string]any
	if err := json.Unmarshal(vars[ExpvarName], &snap); err != nil {
		t.Fatalf("%s is not a snapshot: %v", ExpvarName, err)
	}
	if snap["sweep.cells"] != float64(7) {
		t.Errorf("snapshot sweep.cells = %v, want 7", snap["sweep.cells"])
	}
	if snap["sim.record_bytes"] != float64(1024) {
		t.Errorf("snapshot sim.record_bytes = %v, want 1024", snap["sim.record_bytes"])
	}

	// /metrics parses as Prometheus text exposition.
	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	parsed := parsePromText(t, body)
	if parsed["st2_sweep_cells_total"] != 7 {
		t.Errorf("st2_sweep_cells_total = %v, want 7", parsed["st2_sweep_cells_total"])
	}
	if parsed["st2_sim_record_bytes"] != 1024 {
		t.Errorf("st2_sim_record_bytes = %v, want 1024", parsed["st2_sim_record_bytes"])
	}
	if parsed[`st2_sweep_cell_log2_us_bucket{le="+Inf"}`] != 3 {
		t.Errorf("+Inf bucket = %v, want 3", parsed[`st2_sweep_cell_log2_us_bucket{le="+Inf"}`])
	}
	if parsed["st2_sweep_cell_log2_us_count"] != 3 {
		t.Errorf("histogram count = %v, want 3", parsed["st2_sweep_cell_log2_us_count"])
	}
}

// parsePromText is a strict-enough parser for the text exposition
// format: every non-comment line must be `name[{labels}] value`, every
// series must be preceded by a # TYPE comment, and histogram bucket
// counts must be cumulative.
func parsePromText(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	typed := make(map[string]string)
	seriesName := func(series string) string {
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, suffix); base != name && typed[base] == "histogram" {
				return base
			}
		}
		return name
	}
	lastCum := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				typed[fields[2]] = fields[3]
			}
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line: %q", line)
		}
		series, valStr := line[:i], line[i+1:]
		var val float64
		if _, err := fmt.Sscanf(valStr, "%g", &val); err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		name := seriesName(series)
		if typed[name] == "" {
			t.Fatalf("series %q has no preceding # TYPE", series)
		}
		if typed[name] == "histogram" && strings.Contains(series, "_bucket{") {
			if val < lastCum[name] {
				t.Fatalf("histogram %s buckets not cumulative at %q", name, series)
			}
			lastCum[name] = val
		}
		out[series] = val
	}
	return out
}

func TestWritePrometheusHistogramShape(t *testing.T) {
	reg := New()
	h := reg.Histogram("x.lat", 3) // buckets for 0,1,2 + clamp at 3
	h.ObserveN(0, 2)
	h.Observe(2)
	h.ObserveN(50, 4) // clamp

	var b strings.Builder
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "# TYPE st2_x_lat histogram\n" +
		"st2_x_lat_bucket{le=\"0\"} 2\n" +
		"st2_x_lat_bucket{le=\"1\"} 2\n" +
		"st2_x_lat_bucket{le=\"2\"} 3\n" +
		"st2_x_lat_bucket{le=\"+Inf\"} 7\n" +
		"st2_x_lat_sum 14\n" + // 0*2 + 2*1 + 3*4 (clamped priced at threshold)
		"st2_x_lat_count 7\n"
	if got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestServeDebugSecondServerSeesOwnRegistry(t *testing.T) {
	// The global expvar table only carries the first registry
	// (publishOnce), but each server's /debug/vars and /metrics must
	// reflect its own.
	regA := New()
	regA.Counter("only.in.a").Add(1)
	regB := New()
	regB.Counter("only.in.b").Add(2)

	srvA, err := ServeDebug("127.0.0.1:0", regA)
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Close()
	srvB, err := ServeDebug("127.0.0.1:0", regB)
	if err != nil {
		t.Fatal(err)
	}

	_, bodyB := get(t, "http://"+srvB.Addr()+"/metrics")
	if !strings.Contains(bodyB, "st2_only_in_b_total 2") {
		t.Errorf("server B /metrics missing its own registry:\n%s", bodyB)
	}
	if strings.Contains(bodyB, "only_in_a") {
		t.Errorf("server B /metrics leaked server A's registry:\n%s", bodyB)
	}
	_, varsB := get(t, "http://"+srvB.Addr()+"/debug/vars")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(varsB), &vars); err != nil {
		t.Fatalf("server B /debug/vars is not JSON: %v", err)
	}
	var snap map[string]any
	if err := json.Unmarshal(vars[ExpvarName], &snap); err != nil {
		t.Fatal(err)
	}
	if snap["only.in.b"] != float64(2) {
		t.Errorf("server B snapshot = %v, want its own registry", snap)
	}

	// Close releases the port: a fresh server can bind the same addr.
	addr := srvB.Addr()
	if err := srvB.Close(); err != nil {
		t.Fatal(err)
	}
	srvC, err := ServeDebug(addr, New())
	if err != nil {
		t.Fatalf("rebinding %s after Close: %v", addr, err)
	}
	srvC.Close()
}
