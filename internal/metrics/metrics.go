// Package metrics is the simulator stack's observability substrate: a
// lightweight registry of named counters, gauges, and fixed-bucket
// histograms, with per-worker shards that fold at launch end.
//
// The design mirrors the per-SM statistics pattern of internal/gpusim:
// hot paths write to a private Shard (plain slices, zero locks, zero
// atomics), and after every worker has joined, the owner folds the
// shards into the registry in a deterministic order. The registry's own
// cells are atomics, so a concurrently running pprof/expvar exporter can
// snapshot them at any time without stopping the simulation. Because
// every folded value is a sum of uint64 shard cells, the registry state
// after a launch is bit-identical at any worker count.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the three metric families.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing uint64 cell. Direct Add is
// atomic (safe from any goroutine); sharded adds go through Shard.Count.
type Counter struct {
	name string
	id   int // index into a Shard's counter slice
	v    atomic.Uint64
}

// Add increments the counter directly (atomic; bypasses shards).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge is a last-write-wins float64 cell.
type Gauge struct {
	name string
	id   int
	bits atomic.Uint64 // math.Float64bits
	set  atomic.Bool
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Value returns the stored value (0 before the first Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Name returns the registered name.
func (g *Gauge) Name() string { return g.name }

// Histogram is a fixed-bucket histogram over small non-negative ints:
// bucket i counts observations of value i, and the last bucket is
// open-ended (larger values clamp into it) — the same shape as
// stats.Histogram, but with atomic cells so exporters can read live.
type Histogram struct {
	name    string
	id      int
	buckets []atomic.Uint64
}

// Observe records one occurrence of v (atomic; bypasses shards).
func (h *Histogram) Observe(v int) { h.ObserveN(v, 1) }

// ObserveN records n occurrences of v.
func (h *Histogram) ObserveN(v int, n uint64) {
	h.buckets[h.clamp(v)].Add(n)
}

func (h *Histogram) clamp(v int) int {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	return v
}

// Counts returns a copy of the bucket counts.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Name returns the registered name.
func (h *Histogram) Name() string { return h.name }

// Registry owns a fixed-order set of metrics. Registration takes a lock;
// everything on the read/update path is lock-free.
type Registry struct {
	mu     sync.Mutex
	byName map[string]int
	metrics []metricSlot
}

type metricSlot struct {
	name string
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// Counter registers (or fetches, if already registered) a counter.
// Registering an existing name with a different kind panics: metric
// names are a flat global namespace per registry.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byName[name]; ok {
		r.mustKind(id, KindCounter)
		return r.metrics[id].c
	}
	c := &Counter{name: name, id: len(r.metrics)}
	r.byName[name] = len(r.metrics)
	r.metrics = append(r.metrics, metricSlot{name: name, kind: KindCounter, c: c})
	return c
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byName[name]; ok {
		r.mustKind(id, KindGauge)
		return r.metrics[id].g
	}
	g := &Gauge{name: name, id: len(r.metrics)}
	r.byName[name] = len(r.metrics)
	r.metrics = append(r.metrics, metricSlot{name: name, kind: KindGauge, g: g})
	return g
}

// Histogram registers (or fetches) a histogram counting values
// 0..maxValue, with larger values clamped into the last bucket.
// Re-registering with a different bucket count panics.
func (r *Registry) Histogram(name string, maxValue int) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byName[name]; ok {
		r.mustKind(id, KindHistogram)
		h := r.metrics[id].h
		if len(h.buckets) != maxValue+1 {
			panic(fmt.Sprintf("metrics: histogram %q re-registered with %d buckets, has %d",
				name, maxValue+1, len(h.buckets)))
		}
		return h
	}
	h := &Histogram{name: name, id: len(r.metrics), buckets: make([]atomic.Uint64, maxValue+1)}
	r.byName[name] = len(r.metrics)
	r.metrics = append(r.metrics, metricSlot{name: name, kind: KindHistogram, h: h})
	return h
}

func (r *Registry) mustKind(id int, want Kind) {
	if got := r.metrics[id].kind; got != want {
		panic(fmt.Sprintf("metrics: %q registered as %v, requested as %v",
			r.metrics[id].name, got, want))
	}
}

// Shard is one worker's private accumulation buffer: plain slices, no
// locks, no atomics. A shard belongs to exactly one goroutine between
// NewShard and Fold. Shards index metrics by registration id, so a shard
// created before a later registration simply has no cell for it — create
// shards after all metrics are registered.
type Shard struct {
	reg      *Registry
	counters []uint64
	gauges   []float64
	gaugeSet []bool
	hists    [][]uint64
}

// NewShard creates a shard covering every metric registered so far.
func (r *Registry) NewShard() *Shard {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Shard{
		reg:      r,
		counters: make([]uint64, len(r.metrics)),
		gauges:   make([]float64, len(r.metrics)),
		gaugeSet: make([]bool, len(r.metrics)),
		hists:    make([][]uint64, len(r.metrics)),
	}
	for id, m := range r.metrics {
		if m.kind == KindHistogram {
			s.hists[id] = make([]uint64, len(m.h.buckets))
		}
	}
	return s
}

// Count adds n to c's cell in the shard.
func (s *Shard) Count(c *Counter, n uint64) { s.counters[c.id] += n }

// SetGauge stores v in g's cell; at fold time the highest-indexed shard
// with a set gauge wins (fold order is the caller's shard order, which
// gpusim keeps at SM-ID order — deterministic).
func (s *Shard) SetGauge(g *Gauge, v float64) {
	s.gauges[g.id] = v
	s.gaugeSet[g.id] = true
}

// Observe records one occurrence of v in h's shard cell.
func (s *Shard) Observe(h *Histogram, v int) { s.ObserveN(h, v, 1) }

// ObserveN records n occurrences of v in h's shard cell.
func (s *Shard) ObserveN(h *Histogram, v int, n uint64) {
	s.hists[h.id][h.clamp(v)] += n
}

// Fold merges the shards into the registry in slice order and resets
// them for reuse. Counter and histogram folds are sums, so the resulting
// registry state is independent of how work was distributed over shards;
// gauges are last-set-wins in shard order.
func (r *Registry) Fold(shards ...*Shard) {
	for _, s := range shards {
		if s.reg != r {
			panic("metrics: folding a shard into a foreign registry")
		}
		for id := range s.counters {
			m := r.metrics[id]
			switch m.kind {
			case KindCounter:
				if s.counters[id] != 0 {
					m.c.v.Add(s.counters[id])
					s.counters[id] = 0
				}
			case KindGauge:
				if s.gaugeSet[id] {
					m.g.Set(s.gauges[id])
					s.gaugeSet[id] = false
					s.gauges[id] = 0
				}
			case KindHistogram:
				for b, n := range s.hists[id] {
					if n != 0 {
						m.h.buckets[b].Add(n)
						s.hists[id][b] = 0
					}
				}
			}
		}
	}
}

// Snapshot returns every metric's current value keyed by name: counters
// as uint64, gauges as float64, histograms as []uint64. The map is safe
// to mutate and to marshal (map keys serialize in sorted order).
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	slots := make([]metricSlot, len(r.metrics))
	copy(slots, r.metrics)
	r.mu.Unlock()
	out := make(map[string]any, len(slots))
	for _, m := range slots {
		switch m.kind {
		case KindCounter:
			out[m.name] = m.c.Value()
		case KindGauge:
			out[m.name] = m.g.Value()
		case KindHistogram:
			out[m.name] = m.h.Counts()
		}
	}
	return out
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
