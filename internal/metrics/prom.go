package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders a Registry in the Prometheus text exposition format
// (version 0.0.4), the stable wire shape scrapers and dashboards speak.
// Metric names gain an "st2_" prefix and have every character outside
// [a-zA-Z0-9_] rewritten to '_' (dots in registry names become
// underscores); counters additionally get the conventional "_total"
// suffix. Output is sorted by exposition name so successive scrapes of
// an idle registry are byte-identical.

// promName sanitizes a registry metric name into a Prometheus name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("st2_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes every metric in r to w in the Prometheus text
// exposition format. Registry histograms are value-indexed (bucket i
// counts observations of value i, last bucket open-ended), so they
// translate directly to cumulative le-buckets: le="i" for each closed
// bucket, with the clamp bucket folded into le="+Inf". The _sum prices
// clamped observations at the clamp threshold, so it is a lower bound
// when clamping occurred.
func WritePrometheus(w io.Writer, r *Registry) error {
	r.mu.Lock()
	slots := make([]metricSlot, len(r.metrics))
	copy(slots, r.metrics)
	r.mu.Unlock()

	sort.Slice(slots, func(i, j int) bool {
		return promName(slots[i].name) < promName(slots[j].name)
	})

	for _, m := range slots {
		switch m.kind {
		case KindCounter:
			name := promName(m.name) + "_total"
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, m.c.Value()); err != nil {
				return err
			}
		case KindGauge:
			name := promName(m.name)
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, m.g.Value()); err != nil {
				return err
			}
		case KindHistogram:
			if err := writePromHistogram(w, promName(m.name), m.h.Counts()); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, counts []uint64) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum, sum uint64
	clampAt := len(counts) - 1
	for v := 0; v < clampAt; v++ {
		cum += counts[v]
		sum += uint64(v) * counts[v]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, v, cum); err != nil {
			return err
		}
	}
	cum += counts[clampAt]
	sum += uint64(clampAt) * counts[clampAt]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, sum, name, cum); err != nil {
		return err
	}
	return nil
}
