package runlog

import (
	"encoding/json"
	"fmt"

	"st2gpu/internal/obs"
)

// This file is the runlog sink for internal/obs span traces: a v2
// manifest may interleave "spans" lines between run events, carrying a
// whole tracer's completed spans. Span lines are observability-only —
// wall-clock offsets and durations, never simulation results — and v1
// readers skip them by the "type" discriminator.

// SpanSnap is one completed span on a manifest line. Times are
// microsecond offsets from the tracer's epoch, matching the Chrome
// trace-event sink, so the two sinks cross-reference by span id.
type SpanSnap struct {
	ID      int64          `json:"id"`
	Parent  int64          `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// SpanEvent is one "spans" manifest line. It shares the schema, seq,
// host, version, and clock stamps with run events but omits the
// launch-specific payload.
type SpanEvent struct {
	Schema  string     `json:"schema"`
	Type    string     `json:"type"`
	Seq     int        `json:"seq"`
	UnixMS  int64      `json:"unix_ms"`
	Label   string     `json:"label"`
	Host    Host       `json:"host"`
	Version string     `json:"version"`
	Spans   []SpanSnap `json:"spans"`
}

// SnapSpans converts completed spans to their manifest shape.
func SnapSpans(spans []obs.Span) []SpanSnap {
	out := make([]SpanSnap, 0, len(spans))
	for _, s := range spans {
		snap := SpanSnap{
			ID:      int64(s.ID),
			Parent:  int64(s.Parent),
			Name:    s.Name,
			StartUS: s.Start.Microseconds(),
			DurUS:   s.Dur.Microseconds(),
		}
		if len(s.Attrs) > 0 {
			snap.Attrs = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				snap.Attrs[a.Key] = a.Value
			}
		}
		out = append(out, snap)
	}
	return out
}

// LogSpans writes tr's completed spans as one "spans" manifest line
// under label. A nil or empty tracer logs nothing and returns nil, so
// callers can pass their maybe-disabled tracer unconditionally.
func (l *Logger) LogSpans(label string, tr *obs.Tracer) error {
	if tr.Len() == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ev := SpanEvent{
		Schema:  Schema,
		Type:    TypeSpans,
		Seq:     l.seq,
		UnixMS:  l.Now().UnixMilli(),
		Label:   label,
		Host:    l.Host,
		Version: l.Version,
		Spans:   SnapSpans(tr.Spans()),
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("runlog: encoding span event %q: %w", label, err)
	}
	line = append(line, '\n')
	if _, err := l.w.Write(line); err != nil {
		return fmt.Errorf("runlog: writing span event: %w", err)
	}
	l.seq++
	return nil
}
