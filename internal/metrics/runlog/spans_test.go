package runlog

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"st2gpu/internal/gpusim"
	"st2gpu/internal/obs"
)

// stepTracer builds a tracer whose injected clock ticks 1ms per read,
// so span offsets are byte-stable for golden comparison.
func stepTracer() *obs.Tracer {
	t := time.UnixMilli(0)
	return obs.NewWithClock(func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	})
}

func goldenTracer() *obs.Tracer {
	tr := stepTracer()
	root := tr.Begin("gpusim.launch", obs.Str("kernel", "synthetic"))
	sim := root.Child("simulate", obs.Int("workers", 2))
	sim.Add(obs.Int("cycles", 1000))
	sim.End()
	root.End()
	return tr
}

func TestGoldenSpanEvent(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf)
	if err := l.LogSpans("launch/synthetic", goldenTracer()); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "golden_spans.jsonl")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("span event drifted from golden file:\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
}

// TestSpanEventShape checks the v2 manifest contract: span lines carry
// the discriminator v1 readers skip on, share the logger's sequence
// space with run events, and an empty tracer logs nothing.
func TestSpanEventShape(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf)

	if err := l.LogSpans("empty", obs.NewWithClock(func() time.Time { return time.UnixMilli(0) })); err != nil {
		t.Fatal(err)
	}
	var nilTracer *obs.Tracer
	if err := l.LogSpans("nil", nilTracer); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty/nil tracers must log nothing, got %q", buf.String())
	}

	if err := l.LogRun(1, gpusim.DefaultConfig(), goldenRun(), gpusim.PhaseTimings{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.LogSpans("launch/synthetic", goldenTracer()); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want run + spans", len(lines))
	}

	// A version-agnostic reader dispatches on the type discriminator.
	var head struct {
		Schema string `json:"schema"`
		Type   string `json:"type"`
		Seq    int    `json:"seq"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &head); err != nil {
		t.Fatal(err)
	}
	if head.Schema != Schema || head.Type != TypeRun || head.Seq != 0 {
		t.Errorf("run line header = %+v", head)
	}
	if err := json.Unmarshal([]byte(lines[1]), &head); err != nil {
		t.Fatal(err)
	}
	if head.Schema != Schema || head.Type != TypeSpans || head.Seq != 1 {
		t.Errorf("span line header = %+v", head)
	}

	var sev SpanEvent
	if err := json.Unmarshal([]byte(lines[1]), &sev); err != nil {
		t.Fatal(err)
	}
	if sev.Label != "launch/synthetic" || len(sev.Spans) != 2 {
		t.Fatalf("span event = %+v", sev)
	}
	root, child := sev.Spans[0], sev.Spans[1]
	if root.Name != "gpusim.launch" || root.Parent != 0 {
		t.Errorf("root span = %+v", root)
	}
	if child.Parent != root.ID {
		t.Errorf("child span does not reference root: %+v", child)
	}
	if child.DurUS <= 0 || child.StartUS < root.StartUS {
		t.Errorf("child span timing inconsistent: %+v vs root %+v", child, root)
	}
	if child.Attrs["workers"] != float64(2) || child.Attrs["cycles"] != float64(1000) {
		t.Errorf("child attrs = %v", child.Attrs)
	}
	if sev.Host.Hostname != "ci" || sev.Version != "deadbeef" {
		t.Errorf("span event missing host/version stamps: %+v", sev)
	}
}
