package runlog

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"st2gpu/internal/core"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/isa"
	"st2gpu/internal/metrics"
	"st2gpu/internal/stats"
)

var update = flag.Bool("update", false, "rewrite the golden manifest")

// fixedLogger returns a logger with every nondeterministic capture point
// pinned, so its output is byte-stable.
func fixedLogger(w *bytes.Buffer) *Logger {
	l := New(w)
	l.Host = Host{OS: "linux", Arch: "amd64", NumCPU: 8, GoVersion: "go1.22", Hostname: "ci"}
	l.Version = "deadbeef"
	l.Now = func() time.Time { return time.UnixMilli(1700000000000) }
	return l
}

func TestGoldenManifest(t *testing.T) {
	rs := goldenRun()
	cfg := gpusim.DefaultConfig()
	ph := gpusim.PhaseTimings{
		Setup:    1 * time.Millisecond,
		Simulate: 20 * time.Millisecond,
		Fold:     500 * time.Microsecond,
		Verify:   2 * time.Millisecond,
	}
	var buf bytes.Buffer
	l := fixedLogger(&buf)
	if err := l.LogRun(1, cfg, rs, ph, nil); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("manifest drifted from golden file:\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
}

// goldenRun is the synthetic RunStats behind the golden file.
func goldenRun() *gpusim.RunStats {
	rh := stats.NewHistogram(8)
	rh.Observe(1)
	rh.Observe(2)
	mh := stats.NewHistogram(32)
	mh.Observe(0)
	mh.Observe(3)
	rs := &gpusim.RunStats{
		Kernel:       "synthetic",
		Mode:         gpusim.ST2Adders,
		Cycles:       1000,
		SMsUsed:      2,
		PerSMCycles:  []uint64{900, 1000},
		ThreadInstrs: map[isa.FUClass]uint64{isa.FUAluAdd: 640, isa.FUMem: 64},
		WarpInstrs:   map[isa.FUClass]uint64{isa.FUAluAdd: 20, isa.FUMem: 2},
		Units: map[core.UnitKind]core.UnitStats{
			core.ALU: {WarpOps: 20, ThreadOps: 640, ThreadMispredicts: 64, EnergyST2: 1e-9, EnergyBaseline: 4e-9},
		},
		BaselineAdderOps: map[core.UnitKind]uint64{},
		RegReads:         1280,
		RegWrites:        640,
		L1:               gpusim.CacheStats{Accesses: 64, Hits: 48, Misses: 16},
		L2:               gpusim.CacheStats{Accesses: 16, Hits: 8, Misses: 8},
		DRAMAccesses:     8,
		RecomputeHist:    rh,
		MispredLanesHist: mh,
	}
	rs.CRF.Reads = 20
	rs.CRF.WriteRequests = 4
	rs.CRF.WritesCommitted = 3
	rs.CRF.Conflicts = 1
	rs.CRF.RowReads = []uint64{10, 10}
	rs.CRF.RowDistinctPCs = []uint64{1, 2}
	return rs
}

// TestLiveManifest runs a real (tiny) kernel through the simulator with
// a metrics registry installed and checks the emitted line end to end:
// valid JSON, positive phase timings, non-zero instruction counts, and
// the new histograms present.
func TestLiveManifest(t *testing.T) {
	b := isa.NewBuilder("manifest")
	gtid := b.Reg()
	acc := b.Reg()
	b.MovSpecial(gtid, isa.SRegGtid)
	b.IAdd(isa.U32, acc, isa.R(gtid), isa.Imm(1))
	for i := 0; i < 4; i++ {
		b.IAdd(isa.U32, acc, isa.R(acc), isa.R(gtid))
	}
	b.Exit()
	prog := b.MustBuild()

	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 2
	d, err := gpusim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	d.SetMetrics(reg)
	rs, err := d.Launch(&gpusim.Kernel{Program: prog, GridDim: 4, BlockDim: 64})
	if err != nil {
		t.Fatal(err)
	}
	ph := d.LaunchTimings()
	ph.Verify = time.Microsecond

	var buf bytes.Buffer
	l := New(&buf)
	if err := l.LogRun(1, cfg, rs, ph, reg); err != nil {
		t.Fatal(err)
	}

	line := buf.String()
	if strings.Count(line, "\n") != 1 || !strings.HasSuffix(line, "\n") {
		t.Fatalf("want exactly one newline-terminated JSONL line, got %q", line)
	}
	var ev Event
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
	if ev.Schema != Schema || ev.Seq != 0 || ev.Kernel != "manifest" {
		t.Errorf("header fields wrong: %+v", ev)
	}
	for name, v := range map[string]float64{
		"setup_s":    ev.Phases.SetupS,
		"simulate_s": ev.Phases.SimulateS,
		"fold_s":     ev.Phases.FoldS,
		"verify_s":   ev.Phases.VerifyS,
		"total_s":    ev.Phases.TotalS,
	} {
		if !(v > 0) {
			t.Errorf("phase %s = %v, want > 0", name, v)
		}
	}
	if ev.Stats.TotalThreadInstrs == 0 || ev.Stats.Cycles == 0 {
		t.Errorf("empty stats: %+v", ev.Stats)
	}
	if ev.Stats.RecomputeHist == nil || ev.Stats.MispredLanesHist == nil {
		t.Error("observability histograms missing from manifest")
	}
	if len(ev.Stats.PerSMCycles) != rs.SMsUsed {
		t.Errorf("per_sm_cycles has %d entries, want %d", len(ev.Stats.PerSMCycles), rs.SMsUsed)
	}
	if len(ev.Stats.CRF.RowReads) == 0 {
		t.Error("CRF row occupancy missing")
	}
	if ev.Metrics == nil {
		t.Error("registry snapshot missing")
	} else if _, ok := ev.Metrics["sim.launches"]; !ok {
		t.Errorf("sim.launches missing from metrics snapshot: %v", ev.Metrics)
	}
}

// TestNaNRejected pins the manifest's NaN policy: a NaN statistic must
// fail the write loudly instead of silently serializing.
func TestNaNRejected(t *testing.T) {
	rs := goldenRun()
	u := rs.Units[core.ALU]
	u.EnergyST2 = math.NaN()
	rs.Units[core.ALU] = u
	var buf bytes.Buffer
	l := fixedLogger(&buf)
	if err := l.LogRun(1, gpusim.DefaultConfig(), rs, gpusim.PhaseTimings{}, nil); err == nil {
		t.Error("NaN statistic must fail to encode")
	}
	if buf.Len() != 0 {
		t.Error("failed event must not be partially written")
	}
}

func TestSequenceNumbers(t *testing.T) {
	var buf bytes.Buffer
	l := fixedLogger(&buf)
	rs := goldenRun()
	for i := 0; i < 3; i++ {
		if err := l.LogRun(1, gpusim.DefaultConfig(), rs, gpusim.PhaseTimings{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Seq != i {
			t.Errorf("line %d has seq %d", i, ev.Seq)
		}
	}
}

// TestVersionNeverUnknownUnderTest pins the build-info fallback chain:
// go test binaries carry no VCS stamp, but they do embed module and
// toolchain versions, so manifests written from tests (and from go run)
// must not degrade to the useless "unknown".
func TestVersionNeverUnknownUnderTest(t *testing.T) {
	if v := Version(); v == "unknown" || v == "" {
		t.Errorf("Version() = %q; want a VCS revision, module version, or toolchain version", v)
	}
}
