// Package runlog writes the structured JSONL run manifest: one event
// per kernel launch, carrying the device configuration, a full RunStats
// snapshot (including the observability histograms), wall-clock phase
// timings, host info, and build version. Manifests are append-only JSON
// Lines, so BENCH_*.json-style trajectories can be diffed across PRs
// with line-oriented tools and parsed by any JSON reader.
package runlog

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"st2gpu/internal/gpusim"
	"st2gpu/internal/metrics"
	"st2gpu/internal/stats"
)

// Schema is the manifest line format identifier; bump on incompatible
// changes to Event. v2 is additive over v1: run events gain a "type"
// discriminator ("run") and the manifest may interleave "spans" lines
// (SpanEvent) — v1 readers that decode run events by field name still
// parse every v2 run line, and skip span lines by checking "type".
const Schema = "st2gpu.runlog/v2"

// SchemaV1 is the previous manifest schema, kept for readers that
// accept both versions (cmd/st2trend does).
const SchemaV1 = "st2gpu.runlog/v1"

// TypeRun and TypeSpans discriminate manifest line shapes in v2.
const (
	TypeRun   = "run"
	TypeSpans = "spans"
)

// Event is one manifest line: everything needed to reproduce and to
// diff a single kernel launch.
type Event struct {
	Schema  string     `json:"schema"`
	Type    string     `json:"type"`
	Seq     int        `json:"seq"`
	UnixMS  int64      `json:"unix_ms"`
	Kernel  string     `json:"kernel"`
	Mode    string     `json:"mode"`
	Config  ConfigSnap `json:"config"`
	Host    Host       `json:"host"`
	Version string     `json:"version"`
	Phases  PhaseSnap  `json:"phases"`
	Stats   RunSnap    `json:"stats"`
	// Metrics is the installed registry's snapshot at log time —
	// cumulative across launches when one registry serves a whole sweep.
	Metrics map[string]any `json:"metrics,omitempty"`
}

// ConfigSnap is the launch-relevant subset of gpusim.Config plus the
// experiment-level workload scale.
type ConfigSnap struct {
	Name            string `json:"name"`
	NumSMs          int    `json:"num_sms"`
	SchedulersPerSM int    `json:"schedulers_per_sm"`
	MaxWarpsPerSM   int    `json:"max_warps_per_sm"`
	MaxBlocksPerSM  int    `json:"max_blocks_per_sm"`
	Scheduler       string `json:"scheduler"`
	AdderMode       string `json:"adder_mode"`
	SliceBits       uint   `json:"slice_bits"`
	Speculation     string `json:"speculation"`
	UseCRF          bool   `json:"use_crf"`
	CRFEntries      int    `json:"crf_entries"`
	Seed            int64  `json:"seed"`
	ParallelSMs     int    `json:"parallel_sms"`
	Scale           int    `json:"scale"`
}

// Host describes the machine a manifest line was produced on.
type Host struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
	Hostname  string `json:"hostname"`
}

// PhaseSnap is the wall-clock phase breakdown in seconds.
type PhaseSnap struct {
	SetupS    float64 `json:"setup_s"`
	SimulateS float64 `json:"simulate_s"`
	FoldS     float64 `json:"fold_s"`
	VerifyS   float64 `json:"verify_s"`
	TotalS    float64 `json:"total_s"`
}

// HistSnap serializes a fixed-bucket histogram with its derived moments.
type HistSnap struct {
	Counts []uint64 `json:"counts"`
	Total  uint64   `json:"total"`
	Mean   float64  `json:"mean"`
	Max    int      `json:"max"`
}

// UnitSnap is one ST² unit family's statistics.
type UnitSnap struct {
	WarpOps           uint64  `json:"warp_ops"`
	StalledWarpOps    uint64  `json:"stalled_warp_ops"`
	ThreadOps         uint64  `json:"thread_ops"`
	ThreadMispredicts uint64  `json:"thread_mispredicts"`
	MispredRate       float64 `json:"mispred_rate"`
	SliceComputations uint64  `json:"slice_computations"`
	RecomputedSlices  uint64  `json:"recomputed_slices"`
	EnergyST2         float64 `json:"energy_st2_j"`
	EnergyBaseline    float64 `json:"energy_baseline_j"`
}

// CacheSnap is one cache level's counters.
type CacheSnap struct {
	Accesses uint64  `json:"accesses"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
}

// CRFSnap is the Carry Register File's activity including the per-row
// occupancy views.
type CRFSnap struct {
	Reads           uint64   `json:"reads"`
	WriteRequests   uint64   `json:"write_requests"`
	WritesCommitted uint64   `json:"writes_committed"`
	Conflicts       uint64   `json:"conflicts"`
	LaneBitsWritten uint64   `json:"lane_bits_written"`
	RowReads        []uint64 `json:"row_reads,omitempty"`
	RowDistinctPCs  []uint64 `json:"row_distinct_pcs,omitempty"`
}

// RunSnap is the JSON shape of gpusim.RunStats.
type RunSnap struct {
	Cycles            uint64              `json:"cycles"`
	SMsUsed           int                 `json:"sms_used"`
	PerSMCycles       []uint64            `json:"per_sm_cycles"`
	CycleImbalance    float64             `json:"cycle_imbalance"`
	WarpInstrs        map[string]uint64   `json:"warp_instrs"`
	ThreadInstrs      map[string]uint64   `json:"thread_instrs"`
	TotalThreadInstrs uint64              `json:"total_thread_instrs"`
	SIMDEfficiency    float64             `json:"simd_efficiency"`
	MispredRate       float64             `json:"mispred_rate"`
	Units             map[string]UnitSnap `json:"units"`
	BaselineAdderOps  map[string]uint64   `json:"baseline_adder_ops"`
	CRF               CRFSnap             `json:"crf"`
	RegReads          uint64              `json:"reg_reads"`
	RegWrites         uint64              `json:"reg_writes"`
	SharedAccesses    uint64              `json:"shared_accesses"`
	ParamAccesses     uint64              `json:"param_accesses"`
	L1                CacheSnap           `json:"l1"`
	L2                CacheSnap           `json:"l2"`
	DRAMAccesses      uint64              `json:"dram_accesses"`
	AtomicLaneOps     uint64              `json:"atomic_lane_ops"`
	ST2StallCycles    uint64              `json:"st2_stall_cycles"`
	RecomputeHist     *HistSnap           `json:"recompute_hist,omitempty"`
	MispredLanesHist  *HistSnap           `json:"mispred_lanes_hist,omitempty"`
}

// CollectHost captures the current machine's identity.
func CollectHost() Host {
	hn, _ := os.Hostname()
	return Host{
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Hostname:  hn,
	}
}

// Version returns the build's VCS revision ("rev" or "rev-dirty") from
// the embedded build info. Outside a VCS-stamped build (go test, go run
// of a tree built without stamping) it degrades through the module
// version (e.g. "(devel)") and then the toolchain version, so manifests
// still record which build produced them; "unknown" only appears when
// the binary carries no build info at all.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", ""
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev == "" {
		if v := bi.Main.Version; v != "" {
			return v
		}
		if bi.GoVersion != "" {
			return bi.GoVersion
		}
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
}

// Logger writes manifest events as JSON Lines. Safe for concurrent use;
// sequence numbers follow write order.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	seq int

	// Host, Version, and Now are capture points overridable for
	// deterministic tests; New fills them with the live values.
	Host    Host
	Version string
	Now     func() time.Time
}

// New creates a Logger writing to w with live host/version/clock info.
func New(w io.Writer) *Logger {
	return &Logger{w: w, Host: CollectHost(), Version: Version(), Now: time.Now}
}

// Log stamps ev with schema, sequence number, host, version, and time,
// then writes it as one JSON line. Events containing NaN or Inf floats
// fail to encode — a NaN statistic is a regression the manifest is
// supposed to catch, so the error is surfaced, not sanitized.
func (l *Logger) Log(ev *Event) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	ev.Schema = Schema
	ev.Type = TypeRun
	ev.Seq = l.seq
	ev.Host = l.Host
	ev.Version = l.Version
	ev.UnixMS = l.Now().UnixMilli()
	line, err := json.Marshal(ev)
	if err != nil {
		return fmt.Errorf("runlog: encoding %s event: %w", ev.Kernel, err)
	}
	line = append(line, '\n')
	if _, err := l.w.Write(line); err != nil {
		return fmt.Errorf("runlog: writing event: %w", err)
	}
	l.seq++
	return nil
}

// LogRun assembles and writes the manifest event for one launch. reg may
// be nil (no registry snapshot in the event).
func (l *Logger) LogRun(scale int, cfg gpusim.Config, rs *gpusim.RunStats, ph gpusim.PhaseTimings, reg *metrics.Registry) error {
	ev := NewEvent(scale, cfg, rs, ph)
	if reg != nil {
		ev.Metrics = reg.Snapshot()
	}
	return l.Log(ev)
}

// NewEvent builds the unstamped event for one launch (Log fills schema,
// seq, host, version, and time).
func NewEvent(scale int, cfg gpusim.Config, rs *gpusim.RunStats, ph gpusim.PhaseTimings) *Event {
	return &Event{
		Kernel: rs.Kernel,
		Mode:   rs.Mode.String(),
		Config: ConfigSnap{
			Name:            cfg.Name,
			NumSMs:          cfg.NumSMs,
			SchedulersPerSM: cfg.SchedulersPerSM,
			MaxWarpsPerSM:   cfg.MaxWarpsPerSM,
			MaxBlocksPerSM:  cfg.MaxBlocksPerSM,
			Scheduler:       cfg.Scheduler.String(),
			AdderMode:       cfg.AdderMode.String(),
			SliceBits:       cfg.SliceBits,
			Speculation:     cfg.Speculation,
			UseCRF:          cfg.UseCRF,
			CRFEntries:      cfg.CRFEntries,
			Seed:            cfg.Seed,
			ParallelSMs:     cfg.ParallelSMs,
			Scale:           scale,
		},
		Phases: PhaseSnap{
			SetupS:    ph.Setup.Seconds(),
			SimulateS: ph.Simulate.Seconds(),
			FoldS:     ph.Fold.Seconds(),
			VerifyS:   ph.Verify.Seconds(),
			TotalS:    ph.Total().Seconds(),
		},
		Stats: snapRun(rs),
	}
}

func snapRun(rs *gpusim.RunStats) RunSnap {
	warp := make(map[string]uint64, len(rs.WarpInstrs))
	for c, v := range rs.WarpInstrs { //st2:det-ok re-keying into a map: distinct keys hit distinct cells and encoding/json renders maps in sorted key order
		warp[c.String()] = v
	}
	thread := make(map[string]uint64, len(rs.ThreadInstrs))
	for c, v := range rs.ThreadInstrs { //st2:det-ok re-keying into a map: distinct keys hit distinct cells and encoding/json renders maps in sorted key order
		thread[c.String()] = v
	}
	units := make(map[string]UnitSnap, len(rs.Units))
	for k, u := range rs.Units { //st2:det-ok re-keying into a map: distinct keys hit distinct cells and encoding/json renders maps in sorted key order
		units[k.String()] = UnitSnap{
			WarpOps:           u.WarpOps,
			StalledWarpOps:    u.StalledWarpOps,
			ThreadOps:         u.ThreadOps,
			ThreadMispredicts: u.ThreadMispredicts,
			MispredRate:       u.ThreadMispredictionRate(),
			SliceComputations: u.SliceComputations,
			RecomputedSlices:  u.RecomputedSlices,
			EnergyST2:         u.EnergyST2,
			EnergyBaseline:    u.EnergyBaseline,
		}
	}
	base := make(map[string]uint64, len(rs.BaselineAdderOps))
	for k, v := range rs.BaselineAdderOps { //st2:det-ok re-keying into a map: distinct keys hit distinct cells and encoding/json renders maps in sorted key order
		base[k.String()] = v
	}
	return RunSnap{
		Cycles:            rs.Cycles,
		SMsUsed:           rs.SMsUsed,
		PerSMCycles:       rs.PerSMCycles,
		CycleImbalance:    rs.CycleImbalance(),
		WarpInstrs:        warp,
		ThreadInstrs:      thread,
		TotalThreadInstrs: rs.TotalThreadInstrs(),
		SIMDEfficiency:    rs.SIMDEfficiency(),
		MispredRate:       rs.MispredictionRate(),
		Units:             units,
		BaselineAdderOps:  base,
		CRF: CRFSnap{
			Reads:           rs.CRF.Reads,
			WriteRequests:   rs.CRF.WriteRequests,
			WritesCommitted: rs.CRF.WritesCommitted,
			Conflicts:       rs.CRF.Conflicts,
			LaneBitsWritten: rs.CRF.LaneBitsWritten,
			RowReads:        rs.CRF.RowReads,
			RowDistinctPCs:  rs.CRF.RowDistinctPCs,
		},
		RegReads:         rs.RegReads,
		RegWrites:        rs.RegWrites,
		SharedAccesses:   rs.SharedAccesses,
		ParamAccesses:    rs.ParamAccesses,
		L1:               snapCache(rs.L1),
		L2:               snapCache(rs.L2),
		DRAMAccesses:     rs.DRAMAccesses,
		AtomicLaneOps:    rs.AtomicLaneOps,
		ST2StallCycles:   rs.ST2StallCycles,
		RecomputeHist:    snapHist(rs.RecomputeHist),
		MispredLanesHist: snapHist(rs.MispredLanesHist),
	}
}

func snapCache(c gpusim.CacheStats) CacheSnap {
	return CacheSnap{Accesses: c.Accesses, Hits: c.Hits, Misses: c.Misses, HitRate: c.HitRate()}
}

func snapHist(h *stats.Histogram) *HistSnap {
	if h == nil {
		return nil
	}
	counts := make([]uint64, len(h.Counts))
	copy(counts, h.Counts)
	return &HistSnap{Counts: counts, Total: h.Total(), Mean: h.Mean(), Max: h.Max()}
}
