package metrics

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestRegistryBasics(t *testing.T) {
	r := New()
	c := r.Counter("ops")
	c.Add(3)
	c.Add(4)
	if c.Value() != 7 {
		t.Errorf("counter = %d, want 7", c.Value())
	}
	if r.Counter("ops") != c {
		t.Error("re-registering a counter must return the same cell")
	}

	g := r.Gauge("temp")
	g.Set(1.5)
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Errorf("gauge = %g, want 2.5", g.Value())
	}

	h := r.Histogram("lat", 4)
	h.Observe(0)
	h.Observe(2)
	h.Observe(99) // clamps into last bucket
	h.Observe(-1) // clamps into first
	want := []uint64{2, 0, 1, 0, 1}
	if got := h.Counts(); !reflect.DeepEqual(got, want) {
		t.Errorf("hist = %v, want %v", got, want)
	}

	snap := r.Snapshot()
	if snap["ops"] != uint64(7) || snap["temp"] != 2.5 {
		t.Errorf("snapshot = %v", snap)
	}
	if !reflect.DeepEqual(r.Names(), []string{"lat", "ops", "temp"}) {
		t.Errorf("names = %v", r.Names())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge should panic")
		}
	}()
	r.Gauge("x")
}

// TestShardFoldDeterministic folds the same per-shard contents arriving
// in different shard orders and via different shard counts, and checks
// the registry ends in the identical state — the bit-identical-fold
// contract gpusim relies on for any ParallelSMs setting.
func TestShardFoldDeterministic(t *testing.T) {
	build := func(shardValues [][]uint64) map[string]any {
		r := New()
		c := r.Counter("c")
		h := r.Histogram("h", 3)
		shards := make([]*Shard, len(shardValues))
		for i := range shards {
			shards[i] = r.NewShard()
			for _, v := range shardValues[i] {
				shards[i].Count(c, v)
				shards[i].Observe(h, int(v%4))
			}
		}
		r.Fold(shards...)
		return r.Snapshot()
	}
	a := build([][]uint64{{1, 2, 3}, {4, 5}, {6}})
	b := build([][]uint64{{6}, {4, 5}, {1, 2, 3}}) // same work, different shard layout
	c := build([][]uint64{{1, 2, 3, 4, 5, 6}})     // one shard
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
		t.Errorf("fold not layout-independent:\n%v\n%v\n%v", a, b, c)
	}
}

func TestFoldResetsShards(t *testing.T) {
	r := New()
	c := r.Counter("c")
	s := r.NewShard()
	s.Count(c, 5)
	r.Fold(s)
	r.Fold(s) // second fold of an already-drained shard adds nothing
	if c.Value() != 5 {
		t.Errorf("counter = %d after double fold, want 5", c.Value())
	}
}

func TestGaugeFoldLastShardWins(t *testing.T) {
	r := New()
	g := r.Gauge("g")
	s0, s1 := r.NewShard(), r.NewShard()
	s0.SetGauge(g, 1)
	s1.SetGauge(g, 2)
	r.Fold(s0, s1)
	if g.Value() != 2 {
		t.Errorf("gauge = %g, want 2 (last shard in fold order)", g.Value())
	}
}

// TestConcurrentShards exercises the intended concurrency pattern under
// the race detector: one shard per goroutine, folded after the join,
// while a reader snapshots the registry mid-flight.
func TestConcurrentShards(t *testing.T) {
	r := New()
	c := r.Counter("ops")
	h := r.Histogram("v", 8)
	const workers, iters = 8, 1000
	shards := make([]*Shard, workers)
	for i := range shards {
		shards[i] = r.NewShard()
	}
	done := make(chan struct{})
	go func() { // concurrent exporter
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
		}
		close(done)
	}()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				s.Count(c, 1)
				s.Observe(h, j%9)
			}
		}(shards[i])
	}
	wg.Wait()
	r.Fold(shards...)
	<-done
	if c.Value() != workers*iters {
		t.Errorf("ops = %d, want %d", c.Value(), workers*iters)
	}
	var tot uint64
	for _, n := range h.Counts() {
		tot += n
	}
	if tot != workers*iters {
		t.Errorf("hist total = %d, want %d", tot, workers*iters)
	}
}

func TestServeDebug(t *testing.T) {
	r := New()
	r.Counter("dbg.ops").Add(11)
	srv, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	raw, ok := vars[ExpvarName]
	if !ok {
		t.Fatalf("expvar %q missing; keys: %v", ExpvarName, keys(vars))
	}
	if !strings.Contains(string(raw), `"dbg.ops":11`) {
		t.Errorf("snapshot = %s", raw)
	}
	// pprof index must be mounted too.
	pp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/", addr))
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", pp.StatusCode)
	}
}

func keys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
