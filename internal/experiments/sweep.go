package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"st2gpu/internal/kernels"
	"st2gpu/internal/speculate"
	"st2gpu/internal/stats"
	"st2gpu/internal/trace"
)

// This file is the decode-once, evaluate-many sweep engine: a recording
// Set is decoded a single time into trace.Decoded flat arrays, and the
// (kernel × design-batch) grid of every predictor-only analysis is
// scheduled over a bounded worker pool. Each grid cell walks its kernel's
// arrays ONCE scoring a contiguous batch of designs (the design-batched
// kernel in trace amortizes the operand loads, true-carry masks and Peek
// computation across the batch), and writes its results into a
// task-indexed slot; the fold into rows happens afterwards in fixed
// suite × design order — the same per-worker-shard + fold-in-fixed-order
// rule the parallel simulator uses. The batch partition varies with the
// worker count, but each design's counters never depend on which batch
// it landed in (per-design predictor state is independent), so rows are
// bit-identical at any SweepWorkers count.

// runGrid runs n independent tasks over a bounded worker pool
// (workers ≤ 0 means GOMAXPROCS). fn receives the task index and must
// write its result into caller-owned, task-indexed storage; runGrid
// itself shares nothing between tasks, which is what makes the schedule
// irrelevant to the outcome.
func runGrid(workers, n int, fn func(t int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for t := 0; t < n; t++ {
			if err := fn(t); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for t := 0; t < n; t++ {
		t := t
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			errs[t] = fn(t)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// designBatches splits nd designs into contiguous [lo, hi) batches sized
// so the (kernel × batch) grid still has at least `workers` cells to
// keep every worker busy, clamped to [1, nd] batches. One worker gets
// one batch of everything — the maximum-amortization schedule.
func designBatches(workers, nk, nd int) [][2]int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nb := (workers + nk - 1) / nk
	if nb < 1 {
		nb = 1
	}
	if nb > nd {
		nb = nd
	}
	out := make([][2]int, nb)
	for b := 0; b < nb; b++ {
		out[b] = [2]int{b * nd / nb, (b + 1) * nd / nb}
	}
	return out
}

// foldBatches scatters per-cell batched results back into the flat
// (kernel × design) rate grid, in fixed order.
func foldBatches(rates []stats.Rate, cells [][]stats.Rate, batches [][2]int, nk, nd int) {
	nb := len(batches)
	for i := 0; i < nk; i++ {
		for b := 0; b < nb; b++ {
			lo := batches[b][0]
			for x, r := range cells[i*nb+b] {
				rates[i*nd+lo+x] = r
			}
		}
	}
}

// suiteKernels resolves every suite kernel in the decoded set, in suite
// order — the fixed fold order of every grid below.
func suiteKernels(dec *trace.Decoded) ([]kernels.Workload, []*trace.DecodedKernel, error) {
	ws := kernels.Suite()
	ks := make([]*trace.DecodedKernel, len(ws))
	for i, w := range ws {
		k, ok := dec.Kernel(w.Name)
		if !ok {
			return nil, nil, fmt.Errorf("experiments: recording set is missing kernel %q", w.Name)
		}
		ks[i] = k
	}
	return ws, ks, nil
}

// Fig5FromDecoded sweeps the design space over a decoded set: the
// (kernel × design-batch) grid runs on cfg.SweepWorkers workers and each
// cell is ONE array walk scoring its whole design batch — no varint
// decoding, no simulation, operand loads amortized across designs. Rows
// are bit-identical to Fig5/Fig5Live/Fig5FromSet at any worker count.
func Fig5FromDecoded(cfg Config, dec *trace.Decoded, designs []string) ([]Fig5Row, error) {
	if designs == nil {
		designs = speculate.DesignSpace
	}
	if err := dec.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	_, ks, err := suiteKernels(dec)
	if err != nil {
		return nil, err
	}
	nk, nd := len(ks), len(designs)
	batches := designBatches(cfg.SweepWorkers, nk, nd)
	nb := len(batches)
	cells := make([][]stats.Rate, nk*nb)
	err = runGrid(cfg.SweepWorkers, nk*nb, func(t int) error {
		i, b := t/nb, t%nb
		rs, err := ks[i].EvalMissBatch(designs[batches[b][0]:batches[b][1]])
		if err != nil {
			return err
		}
		cells[t] = rs
		return nil
	})
	if err != nil {
		return nil, err
	}
	rates := make([]stats.Rate, nk*nd)
	foldBatches(rates, cells, batches, nk, nd)
	out := make([]Fig5Row, nd)
	vals := make([]float64, nk)
	for j, d := range designs {
		for i := 0; i < nk; i++ {
			vals[i] = rates[i*nd+j].Value()
		}
		out[j] = Fig5Row{Design: d, MissRate: stats.Mean(vals)}
	}
	return out, nil
}

// Fig3FromDecoded runs the Figure 3 correlation analysis over a decoded
// set with the (kernel × scheme-batch) grid on cfg.SweepWorkers workers.
// Rows are bit-identical to Fig3/Fig3Live/Fig3FromSet at any worker count.
func Fig3FromDecoded(cfg Config, dec *trace.Decoded) ([]Fig3Row, error) {
	if err := dec.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	ws, ks, err := suiteKernels(dec)
	if err != nil {
		return nil, err
	}
	nk, nd := len(ks), len(trace.Fig3Designs)
	batches := designBatches(cfg.SweepWorkers, nk, nd)
	nb := len(batches)
	cells := make([][]stats.Rate, nk*nb)
	err = runGrid(cfg.SweepWorkers, nk*nb, func(t int) error {
		i, b := t/nb, t%nb
		rs, err := ks[i].EvalCorrBatch(trace.Fig3Designs[batches[b][0]:batches[b][1]])
		if err != nil {
			return err
		}
		cells[t] = rs
		return nil
	})
	if err != nil {
		return nil, err
	}
	rates := make([]stats.Rate, nk*nd)
	foldBatches(rates, cells, batches, nk, nd)
	rows := make([]Fig3Row, nk)
	var agg [3]stats.Rate
	for i := 0; i < nk; i++ {
		rows[i].Kernel = ws[i].Name
		for j := 0; j < nd; j++ {
			r := rates[i*nd+j]
			rows[i].Rates[j] = r.Value()
			rows[i].Samples[j] = r.Total
			agg[j].Merge(r)
		}
	}
	var avg Fig3Row
	avg.Kernel = "Average"
	for j := range agg {
		avg.Rates[j] = agg[j].Value()
		avg.Samples[j] = agg[j].Total
	}
	return append(rows, avg), nil
}

// approxFromDecoded is the decoded-grid form of the approximate-adder
// study; rows are bit-identical to the meter-replay path.
func approxFromDecoded(cfg Config, dec *trace.Decoded, designs []string) ([]ApproxRow, error) {
	if err := dec.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	_, ks, err := suiteKernels(dec)
	if err != nil {
		return nil, err
	}
	nk, nd := len(ks), len(designs)
	batches := designBatches(cfg.SweepWorkers, nk, nd)
	nb := len(batches)
	cells := make([][]trace.ApproxResult, nk*nb)
	err = runGrid(cfg.SweepWorkers, nk*nb, func(t int) error {
		i, b := t/nb, t%nb
		rs, err := ks[i].EvalApproxBatch(designs[batches[b][0]:batches[b][1]])
		if err != nil {
			return err
		}
		cells[t] = rs
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := make([]trace.ApproxResult, nk*nd)
	for i := 0; i < nk; i++ {
		for b := 0; b < nb; b++ {
			lo := batches[b][0]
			for x, r := range cells[i*nb+b] {
				res[i*nd+lo+x] = r
			}
		}
	}
	// Aggregate in suite order so the floating-point sums match the old
	// sequential loop bit for bit.
	out := make([]ApproxRow, nd)
	for j, d := range designs {
		var wrSum, reSum float64
		for i := 0; i < nk; i++ {
			wrSum += res[i*nd+j].Wrong.Value()
			reSum += res[i*nd+j].MeanRelErr
		}
		out[j] = ApproxRow{
			Design:       d,
			WrongResults: wrSum / float64(nk),
			MeanRelError: reSum / float64(nk),
		}
	}
	return out, nil
}

// Fig5FromDecodedPerDesign is the unbatched decode-once baseline: the
// (kernel × design) grid with one full array walk per design, exactly
// the pre-batching sweep shape. Kept for the benchmark harness so the
// batched kernel's amortization is measured against it; rows are
// bit-identical to Fig5FromDecoded.
func Fig5FromDecodedPerDesign(cfg Config, dec *trace.Decoded, designs []string) ([]Fig5Row, error) {
	if designs == nil {
		designs = speculate.DesignSpace
	}
	if err := dec.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	_, ks, err := suiteKernels(dec)
	if err != nil {
		return nil, err
	}
	nk, nd := len(ks), len(designs)
	rates := make([]stats.Rate, nk*nd)
	err = runGrid(cfg.SweepWorkers, nk*nd, func(t int) error {
		i, j := t/nd, t%nd
		r, err := ks[i].EvalMiss(designs[j])
		if err != nil {
			return err
		}
		rates[t] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig5Row, nd)
	vals := make([]float64, nk)
	for j, d := range designs {
		for i := 0; i < nk; i++ {
			vals[i] = rates[i*nd+j].Value()
		}
		out[j] = Fig5Row{Design: d, MissRate: stats.Mean(vals)}
	}
	return out, nil
}

// Fig5FromSetPerDesign is the PR-3-style per-design replay baseline,
// kept for the decode-once benchmark: every design replays — and
// therefore varint-decodes — the full recording set from scratch
// (N designs cost N decodes). Rows are bit-identical to the decode-once
// sweep; only the work distribution differs.
func Fig5FromSetPerDesign(cfg Config, set *trace.Set, designs []string) ([]Fig5Row, error) {
	if designs == nil {
		designs = speculate.DesignSpace
	}
	if err := set.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	out := make([]Fig5Row, 0, len(designs))
	for _, d := range designs {
		rows, err := fig5(cfg, []string{d}, feedFromSet(set))
		if err != nil {
			return nil, err
		}
		out = append(out, rows[0])
	}
	return out, nil
}
