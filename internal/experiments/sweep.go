package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"st2gpu/internal/kernels"
	"st2gpu/internal/speculate"
	"st2gpu/internal/stats"
	"st2gpu/internal/trace"
)

// This file is the decode-once, evaluate-many sweep engine: a recording
// Set is decoded a single time into trace.Decoded flat arrays, and the
// (kernel × design) grid of every predictor-only analysis is scheduled
// over a bounded worker pool. Each grid cell owns its predictor and
// writes its counter into a slot indexed by (kernel, design); the fold
// into rows happens afterwards in fixed suite × design order — the same
// per-worker-shard + fold-in-fixed-order rule the parallel simulator
// uses — so results are bit-identical at any SweepWorkers count.

// runGrid runs n independent tasks over a bounded worker pool
// (workers ≤ 0 means GOMAXPROCS). fn receives the task index and must
// write its result into caller-owned, task-indexed storage; runGrid
// itself shares nothing between tasks, which is what makes the schedule
// irrelevant to the outcome.
func runGrid(workers, n int, fn func(t int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for t := 0; t < n; t++ {
			if err := fn(t); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for t := 0; t < n; t++ {
		t := t
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			errs[t] = fn(t)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// suiteKernels resolves every suite kernel in the decoded set, in suite
// order — the fixed fold order of every grid below.
func suiteKernels(dec *trace.Decoded) ([]kernels.Workload, []*trace.DecodedKernel, error) {
	ws := kernels.Suite()
	ks := make([]*trace.DecodedKernel, len(ws))
	for i, w := range ws {
		k, ok := dec.Kernel(w.Name)
		if !ok {
			return nil, nil, fmt.Errorf("experiments: recording set is missing kernel %q", w.Name)
		}
		ks[i] = k
	}
	return ws, ks, nil
}

// Fig5FromDecoded sweeps the design space over a decoded set: the
// (kernel × design) grid runs on cfg.SweepWorkers workers and each cell
// is one array walk — no varint decoding, no simulation. Rows are
// bit-identical to Fig5/Fig5Live/Fig5FromSet at any worker count.
func Fig5FromDecoded(cfg Config, dec *trace.Decoded, designs []string) ([]Fig5Row, error) {
	if designs == nil {
		designs = speculate.DesignSpace
	}
	if err := dec.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	_, ks, err := suiteKernels(dec)
	if err != nil {
		return nil, err
	}
	nk, nd := len(ks), len(designs)
	rates := make([]stats.Rate, nk*nd)
	err = runGrid(cfg.SweepWorkers, nk*nd, func(t int) error {
		i, j := t/nd, t%nd
		r, err := ks[i].EvalMiss(designs[j])
		if err != nil {
			return err
		}
		rates[t] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]Fig5Row, nd)
	vals := make([]float64, nk)
	for j, d := range designs {
		for i := 0; i < nk; i++ {
			vals[i] = rates[i*nd+j].Value()
		}
		out[j] = Fig5Row{Design: d, MissRate: stats.Mean(vals)}
	}
	return out, nil
}

// Fig3FromDecoded runs the Figure 3 correlation analysis over a decoded
// set with the (kernel × scheme) grid on cfg.SweepWorkers workers. Rows
// are bit-identical to Fig3/Fig3Live/Fig3FromSet at any worker count.
func Fig3FromDecoded(cfg Config, dec *trace.Decoded) ([]Fig3Row, error) {
	if err := dec.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	ws, ks, err := suiteKernels(dec)
	if err != nil {
		return nil, err
	}
	nk, nd := len(ks), len(trace.Fig3Designs)
	rates := make([]stats.Rate, nk*nd)
	err = runGrid(cfg.SweepWorkers, nk*nd, func(t int) error {
		i, j := t/nd, t%nd
		r, err := ks[i].EvalCorr(trace.Fig3Designs[j])
		if err != nil {
			return err
		}
		rates[t] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig3Row, nk)
	var agg [3]stats.Rate
	for i := 0; i < nk; i++ {
		rows[i].Kernel = ws[i].Name
		for j := 0; j < nd; j++ {
			r := rates[i*nd+j]
			rows[i].Rates[j] = r.Value()
			rows[i].Samples[j] = r.Total
			agg[j].Merge(r)
		}
	}
	var avg Fig3Row
	avg.Kernel = "Average"
	for j := range agg {
		avg.Rates[j] = agg[j].Value()
		avg.Samples[j] = agg[j].Total
	}
	return append(rows, avg), nil
}

// approxFromDecoded is the decoded-grid form of the approximate-adder
// study; rows are bit-identical to the meter-replay path.
func approxFromDecoded(cfg Config, dec *trace.Decoded, designs []string) ([]ApproxRow, error) {
	if err := dec.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	_, ks, err := suiteKernels(dec)
	if err != nil {
		return nil, err
	}
	nk, nd := len(ks), len(designs)
	res := make([]trace.ApproxResult, nk*nd)
	err = runGrid(cfg.SweepWorkers, nk*nd, func(t int) error {
		i, j := t/nd, t%nd
		r, err := ks[i].EvalApprox(designs[j])
		if err != nil {
			return err
		}
		res[t] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Aggregate in suite order so the floating-point sums match the old
	// sequential loop bit for bit.
	out := make([]ApproxRow, nd)
	for j, d := range designs {
		var wrSum, reSum float64
		for i := 0; i < nk; i++ {
			wrSum += res[i*nd+j].Wrong.Value()
			reSum += res[i*nd+j].MeanRelErr
		}
		out[j] = ApproxRow{
			Design:       d,
			WrongResults: wrSum / float64(nk),
			MeanRelError: reSum / float64(nk),
		}
	}
	return out, nil
}

// Fig5FromSetPerDesign is the PR-3-style per-design replay baseline,
// kept for the decode-once benchmark: every design replays — and
// therefore varint-decodes — the full recording set from scratch
// (N designs cost N decodes). Rows are bit-identical to the decode-once
// sweep; only the work distribution differs.
func Fig5FromSetPerDesign(cfg Config, set *trace.Set, designs []string) ([]Fig5Row, error) {
	if designs == nil {
		designs = speculate.DesignSpace
	}
	if err := set.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	out := make([]Fig5Row, 0, len(designs))
	for _, d := range designs {
		rows, err := fig5(cfg, []string{d}, feedFromSet(set))
		if err != nil {
			return nil, err
		}
		out = append(out, rows[0])
	}
	return out, nil
}
