package experiments

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"st2gpu/internal/kernels"
	"st2gpu/internal/metrics"
	"st2gpu/internal/obs"
	"st2gpu/internal/speculate"
	"st2gpu/internal/stats"
	"st2gpu/internal/trace"
)

// This file is the decode-once, evaluate-many sweep engine: a recording
// Set is decoded a single time into trace.Decoded flat arrays, and the
// (kernel × design-batch) grid of every predictor-only analysis is
// scheduled over a bounded worker pool. Each grid cell walks its kernel's
// arrays ONCE scoring a contiguous batch of designs (the design-batched
// kernel in trace amortizes the operand loads, true-carry masks and Peek
// computation across the batch), and writes its results into a
// task-indexed slot; the fold into rows happens afterwards in fixed
// suite × design order — the same per-worker-shard + fold-in-fixed-order
// rule the parallel simulator uses. The batch partition varies with the
// worker count, but each design's counters never depend on which batch
// it landed in (per-design predictor state is independent), so rows are
// bit-identical at any SweepWorkers count.

// runGrid runs n independent tasks over a fixed pool of `workers`
// goroutines (workers ≤ 0 means GOMAXPROCS) claiming task indices from
// a shared atomic counter — the same claim scheme as the simulator's SM
// pool, which gives each task a real worker id for the observability
// layer. fn receives (worker, task) and must write its result into
// caller-owned, task-indexed storage; runGrid itself shares nothing
// between tasks, which is what makes the schedule irrelevant to the
// outcome.
func runGrid(workers, n int, fn func(worker, t int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for t := 0; t < n; t++ {
			if err := fn(0, t); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1)) - 1
				if t >= n {
					return
				}
				errs[t] = fn(w, t)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// cellMeter is the sweep grids' observability tap: per-cell spans under
// one grid root span (cfg.Obs) and per-cell duration/throughput plus
// worker-occupancy histograms (cfg.Metrics). Everything it records is
// derived from wall-clock and scheduling, so none of it may — and none
// of it does — flow back into sweep results; a nil meter (observability
// disabled) makes every method a no-op.
type cellMeter struct {
	tr    *obs.Tracer // clock source; also the span sink when spans is set
	spans bool
	root  *obs.ActiveSpan
	busy  atomic.Int64

	cells    *metrics.Counter
	evalOps  *metrics.Counter
	durHist  *metrics.Histogram // log2(cell µs), open-ended at 2^40
	rateHist *metrics.Histogram // log2(cell eval-ops/s)
	occHist  *metrics.Histogram // busy workers sampled at cell start
}

// newCellMeter opens the grid's root span and registers the sweep
// metrics. Returns nil when both sinks are disabled.
func (c Config) newCellMeter(grid string, cells int) *cellMeter {
	if c.Metrics == nil && c.Obs == nil {
		return nil
	}
	m := &cellMeter{tr: c.Obs, spans: c.Obs.Enabled()}
	if m.tr == nil {
		// Metrics without spans still needs a clock for the duration
		// histograms; a private tracer provides one (no spans recorded).
		m.tr = obs.New()
	}
	if m.spans {
		m.root = c.Obs.Begin("sweep."+grid, obs.Int("cells", int64(cells)))
	}
	if c.Metrics != nil {
		m.cells = c.Metrics.Counter("sweep.cells")
		m.evalOps = c.Metrics.Counter("sweep.cell_eval_ops")
		m.durHist = c.Metrics.Histogram("sweep.cell_log2_us", 40)
		m.rateHist = c.Metrics.Histogram("sweep.cell_log2_eval_ops_per_sec", 48)
		m.occHist = c.Metrics.Histogram("sweep.busy_workers", 64)
	}
	return m
}

// cell marks one grid cell's start and returns its completion func.
// evalOps is the cell's design-evaluation volume (lanes × designs).
func (m *cellMeter) cell(worker int, kernel string, designs int, evalOps uint64) func() {
	if m == nil {
		return func() {}
	}
	start := m.tr.Elapsed()
	busy := m.busy.Add(1)
	var sp *obs.ActiveSpan
	if m.spans {
		sp = m.root.Child("cell",
			obs.Str("kernel", kernel),
			obs.Int("worker", int64(worker)),
			obs.Int("designs", int64(designs)),
			obs.Int("eval_ops", int64(evalOps)),
			obs.Int("queue_wait_us", (start-m.root.Start()).Microseconds()))
	}
	return func() {
		dur := m.tr.Elapsed() - start
		m.busy.Add(-1)
		sp.End()
		if m.cells == nil {
			return
		}
		m.cells.Add(1)
		m.evalOps.Add(evalOps)
		m.occHist.Observe(int(busy))
		m.durHist.Observe(bits.Len64(uint64(dur.Microseconds())))
		if secs := dur.Seconds(); secs > 0 {
			m.rateHist.Observe(bits.Len64(uint64(float64(evalOps) / secs)))
		}
	}
}

// close ends the grid's root span.
func (m *cellMeter) close() {
	if m != nil && m.spans {
		m.root.End()
	}
}

// designBatches splits nd designs into contiguous [lo, hi) batches sized
// so the (kernel × batch) grid still has at least `workers` cells to
// keep every worker busy, clamped to [1, nd] batches. One worker gets
// one batch of everything — the maximum-amortization schedule.
func designBatches(workers, nk, nd int) [][2]int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nb := (workers + nk - 1) / nk
	if nb < 1 {
		nb = 1
	}
	if nb > nd {
		nb = nd
	}
	out := make([][2]int, nb)
	for b := 0; b < nb; b++ {
		out[b] = [2]int{b * nd / nb, (b + 1) * nd / nb}
	}
	return out
}

// foldBatches scatters per-cell batched results back into the flat
// (kernel × design) rate grid, in fixed order.
func foldBatches(rates []stats.Rate, cells [][]stats.Rate, batches [][2]int, nk, nd int) {
	nb := len(batches)
	for i := 0; i < nk; i++ {
		for b := 0; b < nb; b++ {
			lo := batches[b][0]
			for x, r := range cells[i*nb+b] {
				rates[i*nd+lo+x] = r
			}
		}
	}
}

// foldFig5Rows folds the flat kernel-major (kernel × design) rate grid
// into Fig5 rows: per design, the mean of the per-kernel miss rates in
// fixed suite order. Shared by the in-process and sharded sweeps so
// both paths run the identical float fold.
func foldFig5Rows(designs []string, rates []stats.Rate, nk int) []Fig5Row {
	nd := len(designs)
	out := make([]Fig5Row, nd)
	vals := make([]float64, nk)
	for j, d := range designs {
		for i := 0; i < nk; i++ {
			vals[i] = rates[i*nd+j].Value()
		}
		out[j] = Fig5Row{Design: d, MissRate: stats.Mean(vals)}
	}
	return out
}

// foldFig3Rows folds the flat kernel-major (kernel × scheme) rate grid
// into per-kernel Fig3 rows plus the sample-weighted Average row, in
// fixed suite order. Shared by the in-process and sharded sweeps.
func foldFig3Rows(names []string, rates []stats.Rate) []Fig3Row {
	nk, nd := len(names), len(trace.Fig3Designs)
	rows := make([]Fig3Row, nk)
	var agg [3]stats.Rate
	for i := 0; i < nk; i++ {
		rows[i].Kernel = names[i]
		for j := 0; j < nd; j++ {
			r := rates[i*nd+j]
			rows[i].Rates[j] = r.Value()
			rows[i].Samples[j] = r.Total
			agg[j].Merge(r)
		}
	}
	var avg Fig3Row
	avg.Kernel = "Average"
	for j := range agg {
		avg.Rates[j] = agg[j].Value()
		avg.Samples[j] = agg[j].Total
	}
	return append(rows, avg)
}

// suiteKernels resolves every suite kernel in the decoded set, in suite
// order — the fixed fold order of every grid below.
func suiteKernels(dec *trace.Decoded) ([]kernels.Workload, []*trace.DecodedKernel, error) {
	ws := kernels.Suite()
	ks := make([]*trace.DecodedKernel, len(ws))
	for i, w := range ws {
		k, ok := dec.Kernel(w.Name)
		if !ok {
			return nil, nil, fmt.Errorf("experiments: recording set is missing kernel %q", w.Name)
		}
		ks[i] = k
	}
	return ws, ks, nil
}

// Fig5FromDecoded sweeps the design space over a decoded set: the
// (kernel × design-batch) grid runs on cfg.SweepWorkers workers and each
// cell is ONE array walk scoring its whole design batch — no varint
// decoding, no simulation, operand loads amortized across designs. Rows
// are bit-identical to Fig5/Fig5Live/Fig5FromSet at any worker count.
func Fig5FromDecoded(cfg Config, dec *trace.Decoded, designs []string) ([]Fig5Row, error) {
	if designs == nil {
		designs = speculate.DesignSpace
	}
	if err := dec.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	ws, ks, err := suiteKernels(dec)
	if err != nil {
		return nil, err
	}
	nk, nd := len(ks), len(designs)
	batches := designBatches(cfg.SweepWorkers, nk, nd)
	nb := len(batches)
	cells := make([][]stats.Rate, nk*nb)
	meter := cfg.newCellMeter("fig5", nk*nb)
	err = runGrid(cfg.SweepWorkers, nk*nb, func(w, t int) error {
		i, b := t/nb, t%nb
		batch := designs[batches[b][0]:batches[b][1]]
		done := meter.cell(w, ws[i].Name, len(batch), uint64(ks[i].NumLanes())*uint64(len(batch)))
		rs, err := ks[i].EvalMissBatch(batch)
		done()
		if err != nil {
			return err
		}
		cells[t] = rs
		return nil
	})
	meter.close()
	if err != nil {
		return nil, err
	}
	rates := make([]stats.Rate, nk*nd)
	foldBatches(rates, cells, batches, nk, nd)
	return foldFig5Rows(designs, rates, nk), nil
}

// Fig3FromDecoded runs the Figure 3 correlation analysis over a decoded
// set with the (kernel × scheme-batch) grid on cfg.SweepWorkers workers.
// Rows are bit-identical to Fig3/Fig3Live/Fig3FromSet at any worker count.
func Fig3FromDecoded(cfg Config, dec *trace.Decoded) ([]Fig3Row, error) {
	if err := dec.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	ws, ks, err := suiteKernels(dec)
	if err != nil {
		return nil, err
	}
	nk, nd := len(ks), len(trace.Fig3Designs)
	batches := designBatches(cfg.SweepWorkers, nk, nd)
	nb := len(batches)
	cells := make([][]stats.Rate, nk*nb)
	meter := cfg.newCellMeter("fig3", nk*nb)
	err = runGrid(cfg.SweepWorkers, nk*nb, func(w, t int) error {
		i, b := t/nb, t%nb
		batch := trace.Fig3Designs[batches[b][0]:batches[b][1]]
		done := meter.cell(w, ws[i].Name, len(batch), uint64(ks[i].NumLanes())*uint64(len(batch)))
		rs, err := ks[i].EvalCorrBatch(batch)
		done()
		if err != nil {
			return err
		}
		cells[t] = rs
		return nil
	})
	meter.close()
	if err != nil {
		return nil, err
	}
	rates := make([]stats.Rate, nk*nd)
	foldBatches(rates, cells, batches, nk, nd)
	names := make([]string, nk)
	for i, w := range ws {
		names[i] = w.Name
	}
	return foldFig3Rows(names, rates), nil
}

// approxFromDecoded is the decoded-grid form of the approximate-adder
// study; rows are bit-identical to the meter-replay path.
func approxFromDecoded(cfg Config, dec *trace.Decoded, designs []string) ([]ApproxRow, error) {
	if err := dec.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	ws, ks, err := suiteKernels(dec)
	if err != nil {
		return nil, err
	}
	nk, nd := len(ks), len(designs)
	batches := designBatches(cfg.SweepWorkers, nk, nd)
	nb := len(batches)
	cells := make([][]trace.ApproxResult, nk*nb)
	meter := cfg.newCellMeter("approx", nk*nb)
	err = runGrid(cfg.SweepWorkers, nk*nb, func(w, t int) error {
		i, b := t/nb, t%nb
		batch := designs[batches[b][0]:batches[b][1]]
		done := meter.cell(w, ws[i].Name, len(batch), uint64(ks[i].NumLanes())*uint64(len(batch)))
		rs, err := ks[i].EvalApproxBatch(batch)
		done()
		if err != nil {
			return err
		}
		cells[t] = rs
		return nil
	})
	meter.close()
	if err != nil {
		return nil, err
	}
	res := make([]trace.ApproxResult, nk*nd)
	for i := 0; i < nk; i++ {
		for b := 0; b < nb; b++ {
			lo := batches[b][0]
			for x, r := range cells[i*nb+b] {
				res[i*nd+lo+x] = r
			}
		}
	}
	// Aggregate in suite order so the floating-point sums match the old
	// sequential loop bit for bit.
	out := make([]ApproxRow, nd)
	for j, d := range designs {
		var wrSum, reSum float64
		for i := 0; i < nk; i++ {
			wrSum += res[i*nd+j].Wrong.Value()
			reSum += res[i*nd+j].MeanRelErr
		}
		out[j] = ApproxRow{
			Design:       d,
			WrongResults: wrSum / float64(nk),
			MeanRelError: reSum / float64(nk),
		}
	}
	return out, nil
}

// Fig5FromDecodedPerDesign is the unbatched decode-once baseline: the
// (kernel × design) grid with one full array walk per design, exactly
// the pre-batching sweep shape. Kept for the benchmark harness so the
// batched kernel's amortization is measured against it; rows are
// bit-identical to Fig5FromDecoded.
func Fig5FromDecodedPerDesign(cfg Config, dec *trace.Decoded, designs []string) ([]Fig5Row, error) {
	if designs == nil {
		designs = speculate.DesignSpace
	}
	if err := dec.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	ws, ks, err := suiteKernels(dec)
	if err != nil {
		return nil, err
	}
	nk, nd := len(ks), len(designs)
	rates := make([]stats.Rate, nk*nd)
	meter := cfg.newCellMeter("fig5_per_design", nk*nd)
	err = runGrid(cfg.SweepWorkers, nk*nd, func(w, t int) error {
		i, j := t/nd, t%nd
		done := meter.cell(w, ws[i].Name, 1, uint64(ks[i].NumLanes()))
		r, err := ks[i].EvalMiss(designs[j])
		done()
		if err != nil {
			return err
		}
		rates[t] = r
		return nil
	})
	meter.close()
	if err != nil {
		return nil, err
	}
	return foldFig5Rows(designs, rates, nk), nil
}

// Fig5FromSetPerDesign is the PR-3-style per-design replay baseline,
// kept for the decode-once benchmark: every design replays — and
// therefore varint-decodes — the full recording set from scratch
// (N designs cost N decodes). Rows are bit-identical to the decode-once
// sweep; only the work distribution differs.
func Fig5FromSetPerDesign(cfg Config, set *trace.Set, designs []string) ([]Fig5Row, error) {
	if designs == nil {
		designs = speculate.DesignSpace
	}
	if err := set.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	out := make([]Fig5Row, 0, len(designs))
	for _, d := range designs {
		rows, err := fig5(cfg, []string{d}, feedFromSet(set))
		if err != nil {
			return nil, err
		}
		out = append(out, rows[0])
	}
	return out, nil
}
