package experiments

import (
	"reflect"
	"strings"
	"testing"

	"st2gpu/internal/metrics"
	"st2gpu/internal/obs"
	"st2gpu/internal/trace"
)

// TestObservabilityDoesNotPerturbSweep pins the -trace-out contract at
// the experiment layer: running the record → decode → sweep pipeline
// with the span tracer and a metrics registry installed yields rows
// deep-equal to the bare pipeline, at several SweepWorkers counts. It
// also sanity-checks the artifacts the observability layer is supposed
// to produce: record/decode/sweep spans and the sweep-cell histograms.
func TestObservabilityDoesNotPerturbSweep(t *testing.T) {
	bare := Default()
	set, err := RecordSuite(bare)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := trace.DecodeSet(set)
	if err != nil {
		t.Fatal(err)
	}
	baseF5, err := Fig5FromDecoded(bare, dec, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseF3, err := Fig3FromDecoded(bare, dec)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3, 8} {
		cfg := Default()
		cfg.SweepWorkers = workers
		cfg.Obs = obs.New()
		cfg.Metrics = metrics.New()

		obsSet, err := RecordSuite(cfg)
		if err != nil {
			t.Fatal(err)
		}
		obsDec, err := trace.DecodeSetTraced(obsSet, cfg.Obs)
		if err != nil {
			t.Fatal(err)
		}
		f5, err := Fig5FromDecoded(cfg, obsDec, nil)
		if err != nil {
			t.Fatal(err)
		}
		f3, err := Fig3FromDecoded(cfg, obsDec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(baseF5, f5) {
			t.Errorf("workers=%d: Fig5 rows with observability differ from bare rows", workers)
		}
		if !reflect.DeepEqual(baseF3, f3) {
			t.Errorf("workers=%d: Fig3 rows with observability differ from bare rows", workers)
		}

		// The pipeline must actually have produced its spans...
		names := map[string]int{}
		for _, s := range cfg.Obs.Spans() {
			names[s.Name]++
		}
		for _, want := range []string{"experiments.record_suite", "gpusim.launch", "trace.decode_set", "sweep.fig5", "sweep.fig3", "cell"} {
			if names[want] == 0 {
				t.Errorf("workers=%d: no %q span recorded (have %v)", workers, want, names)
			}
		}
		if got := names["gpusim.launch"]; got != 23 {
			t.Errorf("workers=%d: %d launch spans, want one per suite kernel (23)", workers, got)
		}

		// ... and the sweep-cell metrics.
		snap := cfg.Metrics.Snapshot()
		if v, ok := snap["sweep.cells"].(uint64); !ok || v == 0 {
			t.Errorf("workers=%d: sweep.cells = %v, want > 0", workers, snap["sweep.cells"])
		}
		var found bool
		for name := range snap {
			if strings.HasPrefix(name, "sweep.cell_log2_us") {
				found = true
			}
		}
		if !found {
			t.Errorf("workers=%d: sweep duration histogram missing from registry", workers)
		}
		counts, ok := snap["sweep.cell_log2_us"].([]uint64)
		if !ok {
			t.Fatalf("workers=%d: sweep.cell_log2_us has wrong shape %T", workers, snap["sweep.cell_log2_us"])
		}
		var total uint64
		for _, n := range counts {
			total += n
		}
		if cells := snap["sweep.cells"].(uint64); total != cells {
			t.Errorf("workers=%d: duration histogram total %d != sweep.cells %d", workers, total, cells)
		}
	}
}
