package experiments

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"st2gpu/internal/gpusim"
	"st2gpu/internal/kernels"
	"st2gpu/internal/trace"
)

// These tests pin the record-once/replay-many contract at the driver
// level: every replay-fed analysis must produce rates byte-equal to the
// legacy sequential live-tracer path, for the full suite at scale 1.

func TestFig3ReplayMatchesLive(t *testing.T) {
	cfg := Default()
	live, err := Fig3Live(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replayed) {
		t.Error("Fig3 replay rows differ from live-tracer rows")
	}
}

func TestFig5ReplayMatchesLive(t *testing.T) {
	cfg := Default()
	live, err := Fig5Live(cfg, nil) // full 12-design space
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Fig5(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replayed) {
		t.Error("Fig5 replay rows differ from live-tracer rows")
	}

	// The same recordings answer the sweep from a file: capture the
	// suite once, roundtrip it through the set format, and require the
	// file-fed sweep to reproduce the live rates bit for bit.
	set, err := RecordSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(set.Names()); got != len(kernels.Suite()) {
		t.Fatalf("RecordSuite captured %d kernels, want %d", got, len(kernels.Suite()))
	}
	path := filepath.Join(t.TempDir(), "suite.st2rec")
	if err := set.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadSetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fromSet, err := Fig5FromSet(cfg, loaded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, fromSet) {
		t.Error("Fig5FromSet rows differ from live-tracer rows after a file roundtrip")
	}

	// Fig3 from the same capture — one recording feeds every meter.
	live3, err := Fig3Live(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fromSet3, err := Fig3FromSet(cfg, loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live3, fromSet3) {
		t.Error("Fig3FromSet rows differ from live-tracer rows")
	}

	// A set captured under one configuration must refuse to answer for
	// another: replaying it would silently produce wrong-config rates.
	bad := cfg
	bad.Scale = cfg.Scale + 1
	if _, err := Fig5FromSet(bad, loaded, nil); err == nil {
		t.Error("Fig5FromSet accepted a set recorded at a different scale")
	}
	bad = cfg
	bad.NumSMs = cfg.NumSMs + 1
	if _, err := Fig3FromSet(bad, loaded); err == nil {
		t.Error("Fig3FromSet accepted a set recorded with a different SM count")
	}
}

func TestApproximateAdderStudyReplayMatchesLive(t *testing.T) {
	cfg := Default()
	live, err := ApproximateAdderStudyLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ApproximateAdderStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replayed) {
		t.Error("approximate-adder replay rows differ from live-tracer rows")
	}
}

func TestFig2ReplayMatchesLive(t *testing.T) {
	cfg := Default()
	const gtid, maxPts = 37, 30

	// Live reference: the value trace observes the sequential launch.
	spec, err := kernels.Pathfinder(cfg.Scale)
	if err != nil {
		t.Fatal(err)
	}
	vt := trace.NewValueTrace(gtid, maxPts)
	if _, _, err := cfg.runSpec(spec, gpusim.BaselineAdders, vt); err != nil {
		t.Fatal(err)
	}
	live := make([]Fig2Series, 0, 8)
	for _, pc := range vt.PCs() {
		live = append(live, Fig2Series{PC: pc, Points: vt.Series(pc)})
	}

	replayed, err := Fig2(cfg, gtid, maxPts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, replayed) {
		t.Error("Fig2 replay series differ from live-tracer series")
	}
}

func TestRecordSuiteHonorsByteCap(t *testing.T) {
	cfg := Default()
	cfg.RecordMaxBytes = 256
	_, err := RecordSuite(cfg)
	if err == nil {
		t.Fatal("RecordSuite succeeded despite a 256-byte recording cap")
	}
	if !strings.Contains(err.Error(), "cap") {
		t.Errorf("cap error %q does not mention the cap", err)
	}
}
