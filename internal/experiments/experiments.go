// Package experiments contains one driver per figure and table of the
// paper's evaluation: each function runs the right simulations and
// returns the rows the paper plots, so the benchmarks in bench_test.go
// and the cmd/ tools regenerate every result from scratch.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"st2gpu/internal/circuit"
	"st2gpu/internal/core"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/isa"
	"st2gpu/internal/kernels"
	"st2gpu/internal/metrics"
	"st2gpu/internal/metrics/runlog"
	"st2gpu/internal/obs"
	"st2gpu/internal/power"
	"st2gpu/internal/speculate"
	"st2gpu/internal/stats"
	"st2gpu/internal/trace"
)

// Config parameterizes every experiment run.
type Config struct {
	Scale  int   // workload scale (1 = default evaluation size)
	NumSMs int   // simulated SM count
	Seed   int64 // determinism seed
	// ParallelSMs is forwarded to gpusim.Config.ParallelSMs: 0 lets each
	// launch use min(NumSMs, GOMAXPROCS) SM workers, 1 forces sequential
	// SM simulation. Results are identical either way.
	ParallelSMs int
	// RecordMaxBytes caps each kernel's in-memory adder-op recording
	// (0 = gpusim.DefaultRecordMaxBytes). Exceeding it fails the run with
	// a loud error instead of exhausting host memory.
	RecordMaxBytes uint64
	// SweepWorkers bounds the worker pool the decode-once sweep engine
	// schedules the (kernel × design) grid on: 0 lets the grid use
	// GOMAXPROCS workers, 1 forces sequential evaluation. Results are
	// bit-identical at any worker count.
	SweepWorkers int
	// Progress, when non-nil, is called after each kernel of a suite pass
	// finishes: done kernels so far, the suite total, and the kernel that
	// just completed. Calls are serialized; done is monotonic even when
	// kernels run concurrently.
	Progress func(done, total int, name string)
	// Metrics, when non-nil, receives experiment activity: every device
	// the experiment creates publishes its launch counters here, and the
	// sweep engine adds per-cell duration/throughput and worker-occupancy
	// histograms. Observability only — results are bit-identical with or
	// without a registry.
	Metrics *metrics.Registry
	// Obs, when non-nil, receives hierarchical spans (record → decode →
	// sweep cells, plus each launch's setup/simulate/fold) for the Chrome
	// trace and runlog v2 sinks. Observability only, like Metrics.
	Obs *obs.Tracer
}

// Default returns the configuration used by the benchmark harness.
func Default() Config { return Config{Scale: 1, NumSMs: 2, Seed: 1} }

// deviceConfig builds the simulator configuration for a mode.
func (c Config) deviceConfig(mode gpusim.AdderMode) gpusim.Config {
	dc := gpusim.DefaultConfig()
	dc.NumSMs = c.NumSMs
	dc.AdderMode = mode
	dc.Seed = c.Seed
	dc.ParallelSMs = c.ParallelSMs
	return dc
}

// newDevice builds a device for one experiment run with the configured
// observability (metrics registry, span tracer) installed. Many devices
// may share one registry: launch counters are atomic sums, so the folded
// totals are schedule-independent.
func (c Config) newDevice(mode gpusim.AdderMode) (*gpusim.Device, error) {
	d, err := gpusim.New(c.deviceConfig(mode))
	if err != nil {
		return nil, err
	}
	if c.Metrics != nil {
		d.SetMetrics(c.Metrics)
	}
	d.SetObs(c.Obs)
	return d, nil
}

// runSpec executes one workload spec on a fresh device.
func (c Config) runSpec(spec *kernels.Spec, mode gpusim.AdderMode, tracer gpusim.AddTracer) (*gpusim.RunStats, *gpusim.Device, error) {
	d, err := c.newDevice(mode)
	if err != nil {
		return nil, nil, err
	}
	if tracer != nil {
		d.SetTracer(tracer)
	}
	if spec.Setup != nil {
		if err := spec.Setup(d.Memory()); err != nil {
			return nil, nil, fmt.Errorf("experiments: %s setup: %w", spec.Name, err)
		}
	}
	rs, err := d.Launch(spec.Kernel)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %s: %w", spec.Name, err)
	}
	if spec.Verify != nil {
		if err := spec.Verify(d.Memory()); err != nil {
			return nil, nil, fmt.Errorf("experiments: %s output check: %w", spec.Name, err)
		}
	}
	return rs, d, nil
}

// recordSpec simulates one workload spec with a stream recorder
// installed (the parallel launch path stays enabled — recording shards
// are per-SM) and returns the captured adder-op stream.
func (c Config) recordSpec(spec *kernels.Spec, mode gpusim.AdderMode) (*gpusim.Recording, error) {
	d, err := c.newDevice(mode)
	if err != nil {
		return nil, err
	}
	rec := gpusim.NewRecorder(c.RecordMaxBytes)
	d.SetRecorder(rec)
	if spec.Setup != nil {
		if err := spec.Setup(d.Memory()); err != nil {
			return nil, fmt.Errorf("experiments: %s setup: %w", spec.Name, err)
		}
	}
	if _, err := d.Launch(spec.Kernel); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", spec.Name, err)
	}
	if spec.Verify != nil {
		if err := spec.Verify(d.Memory()); err != nil {
			return nil, fmt.Errorf("experiments: %s output check: %w", spec.Name, err)
		}
	}
	return rec.Recording(), nil
}

// recordWorkload builds one named workload and records its stream.
func (c Config) recordWorkload(w kernels.Workload, mode gpusim.AdderMode) (*gpusim.Recording, error) {
	spec, err := w.Build(c.Scale)
	if err != nil {
		return nil, err
	}
	return c.recordSpec(spec, mode)
}

// RecordSuite simulates every suite kernel once under recording (kernels
// concurrent, SMs parallel within each launch) and returns the captured
// per-kernel streams, tagged with the capture configuration. The set can
// be replayed by Fig3FromSet/Fig5FromSet any number of times, or saved
// with trace.Set.WriteFile and reused across processes
// (st2trace -record / st2dse -reuse-trace).
func RecordSuite(cfg Config) (*trace.Set, error) {
	ws := kernels.Suite()
	recs := make([]*gpusim.Recording, len(ws))
	suiteSpan := cfg.Obs.Begin("experiments.record_suite",
		obs.Int("kernels", int64(len(ws))))
	err := cfg.forEachKernel(func(i int, w kernels.Workload) error {
		kernSpan := suiteSpan.Child("record." + w.Name)
		rec, err := cfg.recordWorkload(w, gpusim.BaselineAdders)
		if err != nil {
			kernSpan.End()
			return err
		}
		kernSpan.Add(
			obs.Int("records", int64(rec.NumOps())),
			obs.Int("bytes", int64(rec.Bytes())))
		kernSpan.End()
		recs[i] = rec
		return nil
	})
	suiteSpan.End()
	if err != nil {
		return nil, err
	}
	set := trace.NewSet(cfg.Scale, cfg.NumSMs, cfg.Seed)
	for i, w := range ws {
		set.Add(w.Name, recs[i])
	}
	return set, nil
}

// forEachKernel runs fn over the evaluation suite concurrently (one
// goroutine per kernel, bounded by GOMAXPROCS). Each invocation gets its
// own device, so results are deterministic and order-independent; fn
// receives the kernel's index for order-preserving collection. If
// c.Progress is set it is invoked under a mutex as each kernel finishes.
func (c Config) forEachKernel(fn func(i int, w kernels.Workload) error) error {
	ws := kernels.Suite()
	errs := make([]error, len(ws))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for i, w := range ws {
		i, w := i, w
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i, w)
			if c.Progress != nil {
				mu.Lock()
				done++
				c.Progress(done, len(ws), w.Name)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runWorkload builds and runs one named workload.
func (c Config) runWorkload(w kernels.Workload, mode gpusim.AdderMode, tracer gpusim.AddTracer) (*gpusim.RunStats, *gpusim.Device, error) {
	spec, err := w.Build(c.Scale)
	if err != nil {
		return nil, nil, err
	}
	return c.runSpec(spec, mode, tracer)
}

// RunSuite runs the full evaluation suite sequentially under one adder
// mode and returns the per-kernel RunStats in suite order. When lg is
// non-nil it emits one runlog manifest event per launch; with
// cfg.Metrics unset each launch gets a fresh metrics registry so every
// event's snapshot is self-contained, while a caller-provided registry
// is shared across launches (snapshots cumulative, and live exporters
// like /metrics see the whole suite). The verify phase is timed around
// the workload's output check (clamped to ≥1ns so manifests never
// report zero). cfg.Progress, if set, fires after each kernel.
func RunSuite(cfg Config, mode gpusim.AdderMode, lg *runlog.Logger) ([]*gpusim.RunStats, error) {
	ws := kernels.Suite()
	out := make([]*gpusim.RunStats, 0, len(ws))
	for i, w := range ws {
		spec, err := w.Build(cfg.Scale)
		if err != nil {
			return nil, err
		}
		dc := cfg.deviceConfig(mode)
		d, err := gpusim.New(dc)
		if err != nil {
			return nil, err
		}
		reg := cfg.Metrics
		if reg == nil {
			reg = metrics.New()
		}
		d.SetMetrics(reg)
		d.SetObs(cfg.Obs)
		if spec.Setup != nil {
			if err := spec.Setup(d.Memory()); err != nil {
				return nil, fmt.Errorf("experiments: %s setup: %w", spec.Name, err)
			}
		}
		rs, err := d.Launch(spec.Kernel)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", spec.Name, err)
		}
		tVerify := time.Now() //st2:det-ok wall-clock phase timing; feeds runlog timings only, never simulation results
		if spec.Verify != nil {
			if err := spec.Verify(d.Memory()); err != nil {
				return nil, fmt.Errorf("experiments: %s output check: %w", spec.Name, err)
			}
		}
		ph := d.LaunchTimings()
		if ph.Verify = time.Since(tVerify); ph.Verify <= 0 { //st2:det-ok wall-clock phase timing; feeds runlog timings only, never simulation results
			ph.Verify = time.Nanosecond
		}
		if lg != nil {
			if err := lg.LogRun(cfg.Scale, dc, rs, ph, reg); err != nil {
				return nil, fmt.Errorf("experiments: %s manifest: %w", spec.Name, err)
			}
		}
		out = append(out, rs)
		if cfg.Progress != nil {
			cfg.Progress(i+1, len(ws), w.Name)
		}
	}
	return out, nil
}

// --- Figure 1: dynamic instruction mix ---

// MixRow is one bar of Figure 1.
type MixRow struct {
	Kernel   string
	ALUAdd   float64 // fraction of dynamic thread instructions
	FPUAdd   float64
	ALUOther float64
	FPUOther float64 // fp mul/div + SFU
	Other    float64 // memory, control, int mul/div
}

// Fig1 reproduces Figure 1: the ALU/FPU add share of every kernel's
// dynamic instructions, with an Average row appended.
func Fig1(cfg Config) ([]MixRow, error) {
	rows := make([]MixRow, 23)
	err := cfg.forEachKernel(func(i int, w kernels.Workload) error {
		rs, _, err := cfg.runWorkload(w, gpusim.BaselineAdders, nil)
		if err != nil {
			return err
		}
		tot := float64(rs.TotalThreadInstrs())
		row := MixRow{
			Kernel:   w.Name,
			ALUAdd:   float64(rs.ThreadInstrs[isa.FUAluAdd]) / tot,
			FPUAdd:   float64(rs.ThreadInstrs[isa.FUFpAdd]) / tot,
			ALUOther: float64(rs.ThreadInstrs[isa.FUAluOther]+rs.ThreadInstrs[isa.FUIntMul]+rs.ThreadInstrs[isa.FUIntDiv]) / tot,
			FPUOther: float64(rs.ThreadInstrs[isa.FUFpMul]+rs.ThreadInstrs[isa.FUFpDiv]+rs.ThreadInstrs[isa.FUSfu]) / tot,
		}
		row.Other = 1 - row.ALUAdd - row.FPUAdd - row.ALUOther - row.FPUOther
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	var avg MixRow
	for _, row := range rows {
		avg.ALUAdd += row.ALUAdd
		avg.FPUAdd += row.FPUAdd
		avg.ALUOther += row.ALUOther
		avg.FPUOther += row.FPUOther
		avg.Other += row.Other
	}
	n := float64(len(rows))
	avg.Kernel = "Average"
	avg.ALUAdd /= n
	avg.FPUAdd /= n
	avg.ALUOther /= n
	avg.FPUOther /= n
	avg.Other /= n
	return append(rows, avg), nil
}

// --- Figure 2: value evolution in pathfinder ---

// Fig2Series is one PC's value stream.
type Fig2Series struct {
	PC     uint32
	Points []trace.ValuePoint
}

// Fig2 traces one pathfinder thread's additions per PC — the data behind
// the paper's Figure 2 (bottom). The kernel is simulated once with the
// parallel recording path; the value trace is filled from a replay.
func Fig2(cfg Config, gtid uint32, maxPts int) ([]Fig2Series, error) {
	spec, err := kernels.Pathfinder(cfg.Scale)
	if err != nil {
		return nil, err
	}
	rec, err := cfg.recordSpec(spec, gpusim.BaselineAdders)
	if err != nil {
		return nil, err
	}
	return fig2Replay(rec, gtid, maxPts)
}

// Fig2FromSet fills the Figure 2 value trace from a captured set's
// pathfinder recording with zero simulation.
func Fig2FromSet(cfg Config, set *trace.Set, gtid uint32, maxPts int) ([]Fig2Series, error) {
	if err := set.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	rec, ok := set.Get("pathfinder")
	if !ok {
		return nil, fmt.Errorf("experiments: recording set is missing kernel %q", "pathfinder")
	}
	return fig2Replay(rec, gtid, maxPts)
}

func fig2Replay(rec *gpusim.Recording, gtid uint32, maxPts int) ([]Fig2Series, error) {
	vt := trace.NewValueTrace(gtid, maxPts)
	if err := trace.Replay(rec, vt); err != nil {
		return nil, err
	}
	out := make([]Fig2Series, 0, 8)
	for _, pc := range vt.PCs() {
		out = append(out, Fig2Series{PC: pc, Points: vt.Series(pc)})
	}
	return out, nil
}

// --- Figure 3: carry-in correlation ---

// Fig3Row holds one kernel's three match rates (Fig3Designs order) and
// the number of boundary observations behind them (kernels whose threads
// execute each add PC only once contribute no per-thread-PC samples).
type Fig3Row struct {
	Kernel  string
	Rates   [3]float64
	Samples [3]uint64
}

// Fig3 measures the temporal/spatial carry correlation of every kernel
// plus the op-weighted suite aggregate (appended as "Average"). The
// suite is simulated once under the parallel recording path, decoded
// once into flat arrays, and the (kernel × scheme) grid runs on the
// decode-once sweep engine — every rate is bit-identical to the legacy
// sequential live-tracer path (Fig3Live) at any cfg.SweepWorkers count.
func Fig3(cfg Config) ([]Fig3Row, error) {
	set, err := RecordSuite(cfg)
	if err != nil {
		return nil, err
	}
	dec, err := trace.DecodeSet(set)
	if err != nil {
		return nil, err
	}
	return Fig3FromDecoded(cfg, dec)
}

// Fig3Live is the legacy live-tracer path: the meter observes the stream
// during simulation, which forces each launch onto the sequential SM
// worker. Kept for third-party-tracer parity testing; Fig3 returns
// bit-identical rates without serializing.
func Fig3Live(cfg Config) ([]Fig3Row, error) {
	return fig3(cfg, func(i int, w kernels.Workload, cm *trace.CorrMeter) error {
		_, _, err := cfg.runWorkload(w, gpusim.BaselineAdders, cm)
		return err
	})
}

// Fig3FromSet evaluates a previously captured recording set (same scale,
// SM count, seed and kernel list — checked) without any simulation at
// all: one decode pass, then the parallel (kernel × scheme) grid.
func Fig3FromSet(cfg Config, set *trace.Set) ([]Fig3Row, error) {
	if err := set.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	if err := set.MatchesKernels(kernels.Names()); err != nil {
		return nil, err
	}
	dec, err := trace.DecodeSet(set)
	if err != nil {
		return nil, err
	}
	return Fig3FromDecoded(cfg, dec)
}

// fig3 runs the Figure 3 analysis with the operation stream delivered by
// feed — from a live tracer, a fresh recording, or a saved set.
func fig3(cfg Config, feed func(i int, w kernels.Workload, cm *trace.CorrMeter) error) ([]Fig3Row, error) {
	rows := make([]Fig3Row, 23)
	raws := make([][3]stats.Rate, 23)
	err := cfg.forEachKernel(func(i int, w kernels.Workload) error {
		cm, err := trace.NewCorrMeter()
		if err != nil {
			return err
		}
		if err := feed(i, w, cm); err != nil {
			return err
		}
		rows[i].Kernel = w.Name
		for j, d := range trace.Fig3Designs {
			r, err := cm.RawRate(d)
			if err != nil {
				return err
			}
			rows[i].Rates[j] = r.Value()
			rows[i].Samples[j] = r.Total
			raws[i][j] = r
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var agg [3]stats.Rate
	for _, rw := range raws {
		for j := range agg {
			agg[j].Merge(rw[j])
		}
	}
	var avg Fig3Row
	avg.Kernel = "Average"
	for i := range agg {
		avg.Rates[i] = agg[i].Value()
		avg.Samples[i] = agg[i].Total
	}
	return append(rows, avg), nil
}

// --- Figure 5: carry-speculation design space ---

// Fig5Row is one design's average thread misprediction rate.
type Fig5Row struct {
	Design   string
	MissRate float64
}

// Fig5 sweeps the speculation design space over the full suite with a
// single simulation pass per kernel (all designs observe the identical
// operation stream). The suite is recorded once under the parallel
// recording path, decoded once into flat arrays, and the
// (kernel × design) grid runs on the decode-once sweep engine — adding
// designs costs one array walk each, not a decode or a simulation.
// Rates are bit-identical to the legacy sequential live-tracer path
// (Fig5Live) at any cfg.SweepWorkers count. The returned rows follow the
// paper's Figure 5 left-to-right order; rates are unweighted kernel
// averages.
func Fig5(cfg Config, designs []string) ([]Fig5Row, error) {
	set, err := RecordSuite(cfg)
	if err != nil {
		return nil, err
	}
	dec, err := trace.DecodeSet(set)
	if err != nil {
		return nil, err
	}
	return Fig5FromDecoded(cfg, dec, designs)
}

// Fig5Live is the legacy live-tracer sweep: the meter observes the stream
// during simulation, forcing each launch onto the sequential SM worker.
// Kept for parity testing and the replay-vs-live benchmark; Fig5 returns
// bit-identical rates without serializing.
func Fig5Live(cfg Config, designs []string) ([]Fig5Row, error) {
	return fig5(cfg, designs, func(i int, w kernels.Workload, meter *trace.DSEMeter) error {
		_, _, err := cfg.runWorkload(w, gpusim.BaselineAdders, meter)
		return err
	})
}

// Fig5FromSet sweeps the design space over a previously captured
// recording set (same scale, SM count, seed and kernel list — checked)
// with zero simulation: one decode pass plus O(designs) array walks,
// scheduled on the parallel sweep grid.
func Fig5FromSet(cfg Config, set *trace.Set, designs []string) ([]Fig5Row, error) {
	if err := set.Matches(cfg.Scale, cfg.NumSMs, cfg.Seed); err != nil {
		return nil, err
	}
	if err := set.MatchesKernels(kernels.Names()); err != nil {
		return nil, err
	}
	dec, err := trace.DecodeSet(set)
	if err != nil {
		return nil, err
	}
	return Fig5FromDecoded(cfg, dec, designs)
}

// feedFromSet builds a fig5 feed that replays each kernel's recording
// from a captured set — the per-design replay baseline's delivery path.
func feedFromSet(set *trace.Set) func(i int, w kernels.Workload, meter *trace.DSEMeter) error {
	return func(i int, w kernels.Workload, meter *trace.DSEMeter) error {
		rec, ok := set.Get(w.Name)
		if !ok {
			return fmt.Errorf("experiments: recording set is missing kernel %q", w.Name)
		}
		return trace.Replay(rec, meter)
	}
}

// fig5 runs the design-space sweep with the operation stream delivered by
// feed — from a live tracer, a fresh recording, or a saved set.
func fig5(cfg Config, designs []string, feed func(i int, w kernels.Workload, meter *trace.DSEMeter) error) ([]Fig5Row, error) {
	if designs == nil {
		designs = speculate.DesignSpace
	}
	perKernel := make([]map[string]float64, 23)
	err := cfg.forEachKernel(func(i int, w kernels.Workload) error {
		meter, err := trace.NewDSEMeter(designs)
		if err != nil {
			return err
		}
		if err := feed(i, w, meter); err != nil {
			return err
		}
		m := make(map[string]float64, len(designs))
		for _, d := range designs {
			r, err := meter.MissRate(d)
			if err != nil {
				return err
			}
			m[d] = r
		}
		perKernel[i] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	perDesign := make(map[string][]float64, len(designs))
	for _, m := range perKernel {
		for _, d := range designs {
			perDesign[d] = append(perDesign[d], m[d])
		}
	}
	out := make([]Fig5Row, len(designs))
	for i, d := range designs {
		out[i] = Fig5Row{Design: d, MissRate: stats.Mean(perDesign[d])}
	}
	return out, nil
}

// --- Figure 6 + Section VI: the final design on the real pipeline ---

// Fig6Row is one kernel under the hardware ST² path (CRF, contention,
// write-back arbitration).
type Fig6Row struct {
	Kernel        string
	MissRate      float64
	MeanRecompute float64 // slices recomputed per misprediction
	MaxRecompute  int
	CRFConflicts  uint64
}

// Fig6 runs the full suite on the ST² GPU and reports the per-kernel
// thread misprediction rates of Figure 6 plus the recompute statistics
// quoted in Section VI (1.94 average, 2.73 max). The Average row is
// appended last.
func Fig6(cfg Config) ([]Fig6Row, error) {
	rows := make([]Fig6Row, 23)
	err := cfg.forEachKernel(func(i int, w kernels.Workload) error {
		rs, _, err := cfg.runWorkload(w, gpusim.ST2Adders, nil)
		if err != nil {
			return err
		}
		var merged Fig6Row
		merged.Kernel = w.Name
		merged.MissRate = rs.MispredictionRate()
		var mean float64
		var n float64
		// Canonical kind order: the float fold below must not depend on
		// map iteration order.
		for _, kind := range core.UnitKinds {
			u := rs.Units[kind]
			if u.RecomputeHistogram == nil || u.RecomputeHistogram.Total() == 0 {
				continue
			}
			mean += u.RecomputeHistogram.Mean() * float64(u.RecomputeHistogram.Total())
			n += float64(u.RecomputeHistogram.Total())
			if mx := u.RecomputeHistogram.Max(); mx > merged.MaxRecompute {
				merged.MaxRecompute = mx
			}
		}
		if n > 0 {
			merged.MeanRecompute = mean / n
		}
		merged.CRFConflicts = rs.CRF.Conflicts
		rows[i] = merged
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rateSum, recompSum float64
	maxRecomp := 0
	for _, merged := range rows {
		rateSum += merged.MissRate
		recompSum += merged.MeanRecompute
		if merged.MaxRecompute > maxRecomp {
			maxRecomp = merged.MaxRecompute
		}
	}
	avg := Fig6Row{
		Kernel:        "Average",
		MissRate:      rateSum / float64(len(rows)),
		MeanRecompute: recompSum / float64(len(rows)),
		MaxRecompute:  maxRecomp,
	}
	return append(rows, avg), nil
}

// --- Figure 7: energy breakdown ---

// Fig7Row is one kernel's baseline and ST² energy breakdown.
type Fig7Row struct {
	Kernel   string
	Baseline power.Breakdown
	ST2      power.Breakdown
	// Normalized savings.
	SystemSaving float64 // 1 − ST2.Total/Baseline.Total
	ChipSaving   float64 // excluding DRAM
	// Arithmetic intensity of the baseline run (ALU+FPU share of system
	// energy) — the paper's ">20% ALU+FPU system energy" classifier.
	ALUFPUShare float64
}

// Fig7Summary aggregates the paper's headline numbers.
type Fig7Summary struct {
	AvgSystemSaving float64
	AvgChipSaving   float64
	AvgALUFPUShare  float64 // baseline, of system energy
	AvgALUFPUChip   float64 // baseline, of chip energy
	// The ">20% ALU+FPU" subset.
	IntenseCount          int
	IntenseSystemSaving   float64
	IntenseChipSaving     float64
	MaxSystemSaving       float64
	MaxSystemSavingKernel string
}

// Fig7 runs every kernel under both adder microarchitectures and prices
// the activity with the power model.
func Fig7(cfg Config) ([]Fig7Row, Fig7Summary, error) {
	tbl, err := power.DefaultTable(circuit.SAED90())
	if err != nil {
		return nil, Fig7Summary{}, err
	}
	rows := make([]Fig7Row, 23)
	err = cfg.forEachKernel(func(i int, w kernels.Workload) error {
		base, dBase, err := cfg.runWorkload(w, gpusim.BaselineAdders, nil)
		if err != nil {
			return err
		}
		st2, dST2, err := cfg.runWorkload(w, gpusim.ST2Adders, nil)
		if err != nil {
			return err
		}
		row := Fig7Row{
			Kernel:   w.Name,
			Baseline: power.FromRun(base, dBase.Prices(), tbl),
			ST2:      power.FromRun(st2, dST2.Prices(), tbl),
		}
		row.SystemSaving = 1 - row.ST2.Total()/row.Baseline.Total()
		row.ChipSaving = 1 - row.ST2.Chip()/row.Baseline.Chip()
		row.ALUFPUShare = row.Baseline[power.CompALUFPU] / row.Baseline.Total()
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, Fig7Summary{}, err
	}
	var sum Fig7Summary
	for _, row := range rows {
		sum.AvgSystemSaving += row.SystemSaving
		sum.AvgChipSaving += row.ChipSaving
		sum.AvgALUFPUShare += row.ALUFPUShare
		sum.AvgALUFPUChip += row.Baseline[power.CompALUFPU] / row.Baseline.Chip()
		if row.ALUFPUShare > 0.20 {
			sum.IntenseCount++
			sum.IntenseSystemSaving += row.SystemSaving
			sum.IntenseChipSaving += row.ChipSaving
		}
		if row.SystemSaving > sum.MaxSystemSaving {
			sum.MaxSystemSaving = row.SystemSaving
			sum.MaxSystemSavingKernel = row.Kernel
		}
	}
	n := float64(len(rows))
	sum.AvgSystemSaving /= n
	sum.AvgChipSaving /= n
	sum.AvgALUFPUShare /= n
	sum.AvgALUFPUChip /= n
	if sum.IntenseCount > 0 {
		sum.IntenseSystemSaving /= float64(sum.IntenseCount)
		sum.IntenseChipSaving /= float64(sum.IntenseCount)
	}
	return rows, sum, nil
}

// --- Section VI: performance overhead ---

// PerfRow is one kernel's cycle comparison.
type PerfRow struct {
	Kernel     string
	BaseCycles uint64
	ST2Cycles  uint64
	Slowdown   float64 // (ST2−base)/base
}

// PerfOverhead reproduces the "execution time within 0.36% of baseline,
// worst case 3.5%" analysis. The Average row is appended last.
func PerfOverhead(cfg Config) ([]PerfRow, error) {
	rows := make([]PerfRow, 23)
	err := cfg.forEachKernel(func(i int, w kernels.Workload) error {
		base, _, err := cfg.runWorkload(w, gpusim.BaselineAdders, nil)
		if err != nil {
			return err
		}
		st2, _, err := cfg.runWorkload(w, gpusim.ST2Adders, nil)
		if err != nil {
			return err
		}
		rows[i] = PerfRow{
			Kernel:     w.Name,
			BaseCycles: base.Cycles,
			ST2Cycles:  st2.Cycles,
			Slowdown:   float64(st2.Cycles)/float64(base.Cycles) - 1,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var sum float64
	for _, row := range rows {
		sum += row.Slowdown
	}
	rows = append(rows, PerfRow{Kernel: "Average", Slowdown: sum / float64(len(rows))})
	return rows, nil
}

// --- Section V-C: power-model calibration and validation ---

// PowerValidation reproduces the calibration workflow: run the 123
// micro-stressors on the baseline device, "measure" them on the synthetic
// silicon, solve Equation 1's factors, and validate on the 23-kernel
// suite.
func PowerValidation(cfg Config, noiseSigma float64) (power.ValidationReport, power.Model, error) {
	tbl, err := power.DefaultTable(circuit.SAED90())
	if err != nil {
		return power.ValidationReport{}, power.Model{}, err
	}
	silicon := power.NewSilicon(cfg.Seed, noiseSigma)
	// The synthetic silicon models a chip of 2× the simulated SM count so
	// the busy/idle split varies enough across stressors to identify
	// P_idleSM separately from P_const (the stressor grids span 1..4
	// blocks → 1..NumSMs busy SMs).
	chipSMs := 2 * cfg.NumSMs

	sample := func(name string, rs *gpusim.RunStats, d *gpusim.Device) power.Sample {
		b := power.FromRun(rs, d.Prices(), tbl)
		secs := tbl.Seconds(rs)
		idle := chipSMs - rs.SMsUsed
		return power.Sample{
			Name: name, B: b, Seconds: secs, IdleSMs: idle,
			Measured: silicon.Measure(b, secs, idle),
		}
	}

	train := make([]power.Sample, 0, kernels.NumMicro)
	for i := 0; i < kernels.NumMicro; i++ {
		spec, err := kernels.Micro(i)
		if err != nil {
			return power.ValidationReport{}, power.Model{}, err
		}
		rs, d, err := cfg.runSpec(spec, gpusim.BaselineAdders, nil)
		if err != nil {
			return power.ValidationReport{}, power.Model{}, err
		}
		train = append(train, sample(spec.Name, rs, d))
	}
	model, err := power.Calibrate(train)
	if err != nil {
		return power.ValidationReport{}, power.Model{}, err
	}

	val := make([]power.Sample, 0, 23)
	for _, w := range kernels.Suite() {
		rs, d, err := cfg.runWorkload(w, gpusim.BaselineAdders, nil)
		if err != nil {
			return power.ValidationReport{}, power.Model{}, err
		}
		val = append(val, sample(w.Name, rs, d))
	}
	rep, err := power.Validate(model, val)
	return rep, model, err
}

// --- Section V-B / VI: circuit-level results ---

// SliceWidthDSE re-exports the Section V-B sweep.
func SliceWidthDSE() ([]circuit.SliceCharacterization, int, error) {
	tech := circuit.SAED90()
	crf := circuit.DefaultCRF()
	perBit := crf.ReadEnergy(tech) / float64(crf.BitsPerRow) * 8
	return tech.SliceWidthDSE([]uint{2, 4, 8, 16, 32}, perBit)
}

// Overheads reproduces the Section VI area/power overhead budget, using
// measured average adder utilization from a suite run when provided
// (falls back to the paper's conservative 25%).
func Overheads(adderUtilization float64) (circuit.OverheadBudget, error) {
	if adderUtilization <= 0 {
		adderUtilization = 0.25
	}
	return circuit.ComputeOverheads(circuit.TitanV(), circuit.DefaultLevelShifter(),
		circuit.DefaultCRF(), 8, 1.0, adderUtilization, 1.2e9)
}

// --- Section V-B: technology scaling ---

// ScalingRow compares the slice characterization under two process nodes.
type ScalingRow struct {
	Tech         string
	SliceBits    uint
	SupplyRatio  float64
	EnergySaving float64
}

// TechnologyScaling re-checks the paper's claim that "the relative energy
// differences across adder designs will persist when we scale the designs
// to the 12 nm FinFET process": it characterizes the 8-bit slice design
// under the 90 nm library used for the main results and under the
// FinFET-like node, and returns both (the savings fractions should agree
// within a few points even though absolute energies differ by ~50×).
func TechnologyScaling(widths []uint) ([]ScalingRow, error) {
	if widths == nil {
		widths = []uint{4, 8, 16}
	}
	out := make([]ScalingRow, 0, 2*len(widths))
	for _, tech := range []circuit.Technology{circuit.SAED90(), circuit.FinFET12()} {
		for _, w := range widths {
			c, err := tech.CharacterizeSlices(w)
			if err != nil {
				return nil, err
			}
			out = append(out, ScalingRow{
				Tech:         tech.Name,
				SliceBits:    w,
				SupplyRatio:  c.SupplyRatio,
				EnergySaving: c.EnergySaving,
			})
		}
	}
	return out, nil
}
