package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"st2gpu/internal/speculate"
	"st2gpu/internal/trace"
)

// TestSweepBitIdenticalAcrossWorkers pins the sweep-grid determinism
// rule: the (kernel × design) grid must produce deep-equal rows at any
// SweepWorkers count, and those rows must equal the per-design replay
// baseline (which decodes the stream once per design instead of once
// total). Run under -race by scripts/check.sh, this also proves the
// decoded arrays are treated as read-only by concurrent evaluations.
func TestSweepBitIdenticalAcrossWorkers(t *testing.T) {
	cfg := Default()
	set, err := RecordSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := trace.DecodeSet(set)
	if err != nil {
		t.Fatal(err)
	}

	var fig5Rows [][]Fig5Row
	var fig3Rows [][]Fig3Row
	var approxRows [][]ApproxRow
	for _, workers := range []int{1, 2, 5, 16} {
		c := cfg
		c.SweepWorkers = workers
		f5, err := Fig5FromDecoded(c, dec, nil)
		if err != nil {
			t.Fatal(err)
		}
		fig5Rows = append(fig5Rows, f5)
		f3, err := Fig3FromDecoded(c, dec)
		if err != nil {
			t.Fatal(err)
		}
		fig3Rows = append(fig3Rows, f3)
		ax, err := approxFromDecoded(c, dec, []string{"staticZero", "CASA", speculate.FinalDesign})
		if err != nil {
			t.Fatal(err)
		}
		approxRows = append(approxRows, ax)
	}
	for i := 1; i < len(fig5Rows); i++ {
		if !reflect.DeepEqual(fig5Rows[0], fig5Rows[i]) {
			t.Errorf("Fig5 rows differ between SweepWorkers=1 and the %d-th worker config", i)
		}
		if !reflect.DeepEqual(fig3Rows[0], fig3Rows[i]) {
			t.Errorf("Fig3 rows differ between SweepWorkers=1 and the %d-th worker config", i)
		}
		if !reflect.DeepEqual(approxRows[0], approxRows[i]) {
			t.Errorf("approx rows differ between SweepWorkers=1 and the %d-th worker config", i)
		}
	}

	// The decode-once grid must agree with the per-design replay baseline
	// bit for bit — it is the same analysis, minus the redundant decodes.
	perDesign, err := Fig5FromSetPerDesign(cfg, set, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fig5Rows[0], perDesign) {
		t.Errorf("decode-once rows %v differ from per-design replay rows %v", fig5Rows[0], perDesign)
	}

	// ... and with the unbatched decode-once baseline, at several worker
	// counts: the design-batched kernel changes only the work schedule.
	for _, workers := range []int{1, 3} {
		c := cfg
		c.SweepWorkers = workers
		unbatched, err := Fig5FromDecodedPerDesign(c, dec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fig5Rows[0], unbatched) {
			t.Errorf("batched rows differ from unbatched decode-once rows at SweepWorkers=%d", workers)
		}
	}

	// The store round-trip must be invisible to the sweep: a Decoded
	// loaded back from its columnar store form produces the same Fig5
	// rows, at several load and sweep worker counts.
	for _, opts := range []trace.StoreOptions{{}, {OmitDerived: true}} {
		var buf bytes.Buffer
		if _, err := trace.WriteDecoded(&buf, dec, opts); err != nil {
			t.Fatal(err)
		}
		for _, loadWorkers := range []int{1, 2, 8} {
			loaded, err := trace.ReadDecodedLimit(bytes.NewReader(buf.Bytes()), 0, loadWorkers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dec, loaded) {
				t.Fatalf("store-loaded Decoded (omit=%v, %d load workers) is not bit-identical", opts.OmitDerived, loadWorkers)
			}
			c := cfg
			c.SweepWorkers = loadWorkers
			f5, err := Fig5FromDecoded(c, loaded, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fig5Rows[0], f5) {
				t.Errorf("Fig5 rows from the store-loaded Decoded (omit=%v, %d workers) differ from the decode path",
					opts.OmitDerived, loadWorkers)
			}
		}
	}

	// Bad-config and bad-kernel-list rejection on the decoded form.
	bad := cfg
	bad.Seed = cfg.Seed + 1
	if _, err := Fig5FromDecoded(bad, dec, nil); err == nil {
		t.Error("Fig5FromDecoded accepted a decoded set with a different seed")
	}
	partial := trace.NewSet(cfg.Scale, cfg.NumSMs, cfg.Seed)
	if _, err := Fig5FromSet(cfg, partial, nil); err == nil {
		t.Error("Fig5FromSet accepted a set missing every suite kernel")
	}
}
