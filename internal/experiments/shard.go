package experiments

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"sync"
	"time"

	"st2gpu/internal/kernels"
	"st2gpu/internal/metrics"
	"st2gpu/internal/obs"
	"st2gpu/internal/speculate"
	"st2gpu/internal/stats"
	"st2gpu/internal/trace"
)

// This file is the distributed half of the sweep engine: a coordinator
// partitions the (kernel × design-batch) grid into cells and hands them
// to worker processes over a line-delimited JSON protocol. Workers open
// the decoded store with trace.OpenStore and load ONLY the kernels
// their cells name (LoadKernels), so a worker's memory and load time
// are proportional to its assignment, not the suite. Cell results are
// integer stats.Rate counters — they JSON-round-trip exactly — and the
// coordinator scatters them into the same flat kernel-major rate grid
// the in-process sweep builds, then folds through the identical
// foldFig5Rows/foldFig3Rows helpers. The batch partition and the
// cell→worker schedule therefore cannot affect the rows: distributed
// output is bit-identical to Fig5FromDecoded/Fig3FromDecoded at any
// (shards × sweep-workers) combination, including after a killed
// worker's cells are requeued elsewhere.

// Protocol: one JSON object per line, both directions.
//
//	coordinator → worker:  open{store,scale,sms,seed,workers}
//	                       cell{id,op,kernel,designs}   op ∈ {miss, corr}
//	                       done{}
//	worker → coordinator:  ready{kernels}               after open
//	                       result{id,rates}
//	                       error{id,msg}                id<0: fatal, not cell-scoped
type shardMsg struct {
	Type string `json:"type"`

	// open
	Store   string `json:"store,omitempty"`
	Scale   int    `json:"scale,omitempty"`
	NumSMs  int    `json:"sms,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	Workers int    `json:"workers,omitempty"`

	// cell / result / error
	ID      int          `json:"id"`
	Op      string       `json:"op,omitempty"`
	Kernel  string       `json:"kernel,omitempty"`
	Designs []string     `json:"designs,omitempty"`
	Rates   []stats.Rate `json:"rates,omitempty"`

	// ready
	Kernels []string `json:"kernels,omitempty"`

	// error
	Msg string `json:"msg,omitempty"`
}

const (
	shardOpMiss = "miss"
	shardOpCorr = "corr"
)

// ShardConn is one coordinator↔worker connection: a line-delimited JSON
// stream plus a closer that tears the transport down (killing the
// subprocess for spawned workers, closing the socket for TCP ones).
type ShardConn struct {
	Name string // used in errors, spans, and metrics
	R    io.Reader
	W    io.Writer
	C    io.Closer // may be nil
}

// Close tears down the connection's transport.
func (c *ShardConn) Close() error {
	if c.C == nil {
		return nil
	}
	return c.C.Close()
}

// spawnedWorker adapts a worker subprocess to io.Closer: closing kills
// the process and reaps it, which is what the coordinator's lease
// watchdog calls on a hung worker.
type spawnedWorker struct {
	cmd   *exec.Cmd
	stdin io.Closer
}

func (s *spawnedWorker) Close() error {
	s.stdin.Close()
	if s.cmd.Process != nil {
		s.cmd.Process.Kill()
	}
	s.cmd.Wait()
	return nil
}

// SpawnWorkers launches n worker subprocesses from the command factory
// and wires each as a ShardConn over its stdin/stdout (stderr passes
// through). The spawned command must run ServeShardWorker on its own
// stdin/stdout — `st2dse -shard-worker` and `st2shard -worker` do. On
// any launch failure the already-spawned workers are closed.
func SpawnWorkers(n int, newCmd func() *exec.Cmd) ([]*ShardConn, error) {
	if n < 1 {
		return nil, fmt.Errorf("experiments: SpawnWorkers needs n ≥ 1, got %d", n)
	}
	conns := make([]*ShardConn, 0, n)
	fail := func(err error) ([]*ShardConn, error) {
		CloseShardConns(conns)
		return nil, err
	}
	for i := 0; i < n; i++ {
		cmd := newCmd()
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return fail(fmt.Errorf("experiments: shard worker %d stdin: %w", i, err))
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return fail(fmt.Errorf("experiments: shard worker %d stdout: %w", i, err))
		}
		if cmd.Stderr == nil {
			cmd.Stderr = os.Stderr
		}
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("experiments: shard worker %d: %w", i, err))
		}
		conns = append(conns, &ShardConn{
			Name: fmt.Sprintf("worker-%d", i),
			R:    stdout,
			W:    stdin,
			C:    &spawnedWorker{cmd: cmd, stdin: stdin},
		})
	}
	return conns, nil
}

// CloseShardConns closes every connection, ignoring errors — the
// coordinator calls it after a sweep, when workers have either exited
// on "done" or deserve a kill.
func CloseShardConns(conns []*ShardConn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

// ServeShardWorker serves one coordinator connection on r/w: it opens
// the store named by the open message, loads each cell's kernel section
// on first use (partial loads — never the whole store), and evaluates
// cells on an internal pool of the coordinator-requested size, so a
// worker keeps its cores busy while replies stay serialized. Returns
// nil on a clean "done" or EOF.
func ServeShardWorker(r io.Reader, w io.Writer) error {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<16))
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var mu sync.Mutex // serializes reply lines from eval goroutines
	send := func(m shardMsg) error {
		mu.Lock()
		defer mu.Unlock()
		if err := enc.Encode(m); err != nil {
			return err
		}
		return bw.Flush()
	}
	fatal := func(err error) error {
		send(shardMsg{Type: "error", ID: -1, Msg: err.Error()})
		return err
	}

	var h *trace.StoreHandle
	cache := map[string]*trace.DecodedKernel{} // touched only by this loop
	var sem chan struct{}
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		var m shardMsg
		if err := dec.Decode(&m); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		switch m.Type {
		case "open":
			var err error
			h, err = trace.OpenStore(m.Store, 0)
			if err != nil {
				return fatal(err)
			}
			if err := h.Matches(m.Scale, m.NumSMs, m.Seed); err != nil {
				return fatal(err)
			}
			workers := m.Workers
			if workers < 1 {
				workers = runtime.GOMAXPROCS(0)
			}
			sem = make(chan struct{}, workers)
			if err := send(shardMsg{Type: "ready", ID: -1, Kernels: h.Names()}); err != nil {
				return err
			}
		case "cell":
			if h == nil {
				return fatal(fmt.Errorf("experiments: shard cell %d before open", m.ID))
			}
			// The kernel section loads in the read loop (the cache is
			// loop-owned); only the pure array-walk eval fans out.
			k, ok := cache[m.Kernel]
			if !ok {
				d, err := h.LoadKernels([]string{m.Kernel}, 0)
				if err != nil {
					if sendErr := send(shardMsg{Type: "error", ID: m.ID, Msg: err.Error()}); sendErr != nil {
						return sendErr
					}
					continue
				}
				k, _ = d.Kernel(m.Kernel)
				cache[m.Kernel] = k
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(m shardMsg, k *trace.DecodedKernel) {
				defer wg.Done()
				defer func() { <-sem }()
				var rates []stats.Rate
				var err error
				switch m.Op {
				case shardOpMiss:
					rates, err = k.EvalMissBatch(m.Designs)
				case shardOpCorr:
					rates, err = k.EvalCorrBatch(m.Designs)
				default:
					err = fmt.Errorf("experiments: shard cell %d has unknown op %q", m.ID, m.Op)
				}
				if err != nil {
					send(shardMsg{Type: "error", ID: m.ID, Msg: err.Error()})
					return
				}
				send(shardMsg{Type: "result", ID: m.ID, Rates: rates})
			}(m, k)
		case "done":
			return nil
		default:
			return fatal(fmt.Errorf("experiments: shard worker got unknown message type %q", m.Type))
		}
	}
}

// ShardOptions tunes the coordinator's robustness machinery.
type ShardOptions struct {
	// Lease bounds how long a connection with outstanding cells may go
	// without delivering any result before it is declared hung, closed,
	// and its cells requeued. 0 means 2 minutes.
	Lease time.Duration
	// MaxAttempts caps how many times one cell may be dispatched
	// (first try included) before the sweep fails loudly. 0 means 3.
	MaxAttempts int
}

func (o ShardOptions) lease() time.Duration {
	if o.Lease <= 0 {
		return 2 * time.Minute
	}
	return o.Lease
}

func (o ShardOptions) maxAttempts() int {
	if o.MaxAttempts < 1 {
		return 3
	}
	return o.MaxAttempts
}

// Fig5Sharded runs the Figure 5 design-space sweep distributed over the
// given worker connections, each loading only its assigned kernels from
// the store at storePath. Rows are bit-identical to Fig5FromDecoded on
// the same store at any (connections × SweepWorkers) combination.
func Fig5Sharded(cfg Config, storePath string, designs []string, conns []*ShardConn, opts ShardOptions) ([]Fig5Row, error) {
	if designs == nil {
		designs = speculate.DesignSpace
	}
	rates, _, err := runSharded(cfg, storePath, shardOpMiss, designs, conns, opts)
	if err != nil {
		return nil, err
	}
	return foldFig5Rows(designs, rates, len(kernels.Suite())), nil
}

// Fig3Sharded runs the Figure 3 correlation analysis distributed over
// the given worker connections. Rows are bit-identical to
// Fig3FromDecoded on the same store.
func Fig3Sharded(cfg Config, storePath string, conns []*ShardConn, opts ShardOptions) ([]Fig3Row, error) {
	rates, names, err := runSharded(cfg, storePath, shardOpCorr, trace.Fig3Designs, conns, opts)
	if err != nil {
		return nil, err
	}
	return foldFig3Rows(names, rates), nil
}

// shardCell is one dispatchable unit: a kernel and a contiguous design
// batch. The id doubles as the slot its rates land in.
type shardCell struct {
	id     int
	kernel string
	lo, hi int // design range [lo, hi)
}

// shardEvent is what connection readers feed the coordinator loop: a
// decoded message, or a terminal read error (conn died).
type shardEvent struct {
	conn int
	msg  shardMsg
	err  error
}

// runSharded drives the grid over the connections and returns the flat
// kernel-major rate grid plus the suite kernel names. All mutable
// scheduling state (queue, attempts, inflight, results) is owned by
// this goroutine; per-connection reader/writer goroutines only move
// messages, so the engine passes the shardown ownership rules by
// construction.
func runSharded(cfg Config, storePath, op string, designs []string, conns []*ShardConn, opts ShardOptions) ([]stats.Rate, []string, error) {
	if len(conns) == 0 {
		return nil, nil, fmt.Errorf("experiments: sharded sweep needs at least one worker connection")
	}
	ws := kernels.Suite()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	nk, nd := len(names), len(designs)
	perConn := cfg.SweepWorkers
	if perConn < 1 {
		perConn = runtime.GOMAXPROCS(0)
	}
	batches := designBatches(len(conns)*perConn, nk, nd)
	nb := len(batches)
	cells := make([]shardCell, nk*nb)
	for t := range cells {
		i, b := t/nb, t%nb
		cells[t] = shardCell{id: t, kernel: names[i], lo: batches[b][0], hi: batches[b][1]}
	}

	var cellsDispatched, cellsRetried *metrics.Counter
	var occHist *metrics.Histogram
	if cfg.Metrics != nil {
		cellsDispatched = cfg.Metrics.Counter("shard.cells_dispatched")
		cellsRetried = cfg.Metrics.Counter("shard.cells_retried")
		occHist = cfg.Metrics.Histogram("shard.occupancy", 64)
	}
	root := cfg.Obs.Begin("shard.assign",
		obs.Str("op", op),
		obs.Int("cells", int64(len(cells))),
		obs.Int("shards", int64(len(conns))),
		obs.Int("per_conn", int64(perConn)))
	defer root.End()

	// Per-connection plumbing: a shared event channel fed by one reader
	// goroutine per conn, and one writer goroutine per conn draining a
	// buffered send queue (so a hung transport never blocks this loop).
	events := make(chan shardEvent, len(conns)*(perConn+2))
	quit := make(chan struct{}) // closed on return so readers never block
	sendChs := make([]chan shardMsg, len(conns))
	var wg sync.WaitGroup
	for c, conn := range conns {
		c, conn := c, conn
		sendChs[c] = make(chan shardMsg, perConn+2)
		wg.Add(1)
		go func() { // writer
			defer wg.Done()
			bw := bufio.NewWriter(conn.W)
			enc := json.NewEncoder(bw)
			for m := range sendChs[c] {
				if err := enc.Encode(m); err != nil {
					return
				}
				if err := bw.Flush(); err != nil {
					return
				}
			}
		}()
		wg.Add(1)
		go func() { // reader
			defer wg.Done()
			dec := json.NewDecoder(bufio.NewReaderSize(conn.R, 1<<16))
			for {
				var m shardMsg
				err := dec.Decode(&m)
				select {
				case events <- shardEvent{conn: c, msg: m, err: err}:
				case <-quit:
					return
				}
				if err != nil {
					return
				}
			}
		}()
	}
	defer func() {
		close(quit)
		for _, ch := range sendChs {
			close(ch)
		}
		CloseShardConns(conns)
		wg.Wait()
	}()

	// Lease watchdogs: one timer per connection, armed while the conn
	// holds cells and reset on every result. Expiry closes the conn —
	// the reader then surfaces the death and this loop requeues. The
	// timers never touch scheduling state, so the wall clock cannot
	// reach the results.
	leases := make([]*time.Timer, len(conns))
	for c := range conns {
		conn := conns[c]
		leases[c] = time.AfterFunc(opts.lease(), func() { conn.Close() })
		leases[c].Stop()
	}
	defer func() {
		for _, l := range leases {
			l.Stop()
		}
	}()

	// Coordinator-owned scheduling state.
	queue := make([]int, 0, len(cells))
	attempts := make([]int, len(cells))
	lastErr := make([]error, len(cells))
	inflight := make([]map[int]bool, len(conns)) // conn → set of cell ids
	spans := make(map[int]*obs.ActiveSpan, len(cells))
	results := make([][]stats.Rate, len(cells))
	done := make([]bool, len(cells))
	ready := make([]bool, len(conns))
	dead := make([]bool, len(conns))
	remaining := len(cells)
	for c := range conns {
		inflight[c] = map[int]bool{}
		sendChs[c] <- shardMsg{Type: "open", ID: -1, Store: storePath,
			Scale: cfg.Scale, NumSMs: cfg.NumSMs, Seed: cfg.Seed, Workers: perConn}
	}
	for t := len(cells) - 1; t >= 0; t-- {
		queue = append(queue, t) // popped from the end → dispatches in cell order
	}

	totalInflight := 0
	dispatch := func(c int) {
		for !dead[c] && ready[c] && len(inflight[c]) < perConn && len(queue) > 0 {
			t := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			attempts[t]++
			if attempts[t] > 1 && cellsRetried != nil {
				cellsRetried.Add(1)
			}
			if cellsDispatched != nil {
				cellsDispatched.Add(1)
			}
			inflight[c][t] = true
			totalInflight++
			if occHist != nil {
				occHist.Observe(totalInflight)
			}
			spans[t] = root.Child("shard.cell",
				obs.Str("kernel", cells[t].kernel),
				obs.Str("conn", conns[c].Name),
				obs.Int("designs", int64(cells[t].hi-cells[t].lo)),
				obs.Int("attempt", int64(attempts[t])))
			if len(inflight[c]) == 1 {
				leases[c].Reset(opts.lease())
			}
			sendChs[c] <- shardMsg{Type: "cell", ID: t, Op: op,
				Kernel: cells[t].kernel, Designs: designs[cells[t].lo:cells[t].hi]}
		}
	}

	// requeue returns an error when a cell has exhausted its attempts —
	// the loud-failure path the retry cap exists for.
	requeue := func(t int, cause error) error {
		if spans[t] != nil {
			spans[t].Add(obs.Str("outcome", "requeued"))
			spans[t].End()
			delete(spans, t)
		}
		lastErr[t] = cause
		if attempts[t] >= opts.maxAttempts() {
			return fmt.Errorf("experiments: shard cell %d (kernel %q, designs [%d,%d)) failed %d times, giving up: %w",
				t, cells[t].kernel, cells[t].lo, cells[t].hi, attempts[t], cause)
		}
		queue = append(queue, t)
		return nil
	}

	// connDied requeues every cell the connection held, in cell order so
	// the redispatch sequence is deterministic given the failure.
	connDied := func(c int, cause error) error {
		if dead[c] {
			return nil
		}
		dead[c] = true
		leases[c].Stop()
		conns[c].Close()
		held := make([]int, 0, len(inflight[c]))
		for t := range inflight[c] {
			held = append(held, t)
		}
		sort.Ints(held)
		totalInflight -= len(held)
		inflight[c] = map[int]bool{}
		for _, t := range held {
			if err := requeue(t, fmt.Errorf("experiments: shard conn %s died holding cell %d: %w", conns[c].Name, t, cause)); err != nil {
				return err
			}
		}
		allDead := true
		for _, d := range dead {
			allDead = allDead && d
		}
		if allDead && remaining > 0 {
			return fmt.Errorf("experiments: all %d shard workers died with %d of %d cells unfinished (conn %s last: %v)",
				len(conns), remaining, len(cells), conns[c].Name, cause)
		}
		return nil
	}

	for remaining > 0 {
		ev := <-events
		c := ev.conn
		if ev.err != nil {
			if err := connDied(c, ev.err); err != nil {
				return nil, nil, err
			}
			for o := range conns {
				dispatch(o)
			}
			continue
		}
		switch ev.msg.Type {
		case "ready":
			if err := suiteCovered(names, ev.msg.Kernels); err != nil {
				// A store without the suite is a config error, not a
				// transient worker fault: fail the sweep loudly.
				return nil, nil, err
			}
			ready[c] = true
			dispatch(c)
		case "result", "error":
			t := ev.msg.ID
			if t < 0 || t >= len(cells) || !inflight[c][t] {
				if ev.msg.Type == "error" {
					// Fatal worker-level error (bad store path, config
					// mismatch): the conn is useless, treat it as dead.
					if err := connDied(c, errors.New(ev.msg.Msg)); err != nil {
						return nil, nil, err
					}
					for o := range conns {
						dispatch(o)
					}
				}
				continue // stale reply for a cell requeued elsewhere
			}
			delete(inflight[c], t)
			totalInflight--
			if len(inflight[c]) > 0 {
				leases[c].Reset(opts.lease())
			} else {
				leases[c].Stop()
			}
			if ev.msg.Type == "error" {
				if err := requeue(t, errors.New(ev.msg.Msg)); err != nil {
					return nil, nil, err
				}
				for o := range conns {
					dispatch(o)
				}
				continue
			}
			if want := cells[t].hi - cells[t].lo; len(ev.msg.Rates) != want {
				if err := requeue(t, fmt.Errorf("experiments: shard cell %d returned %d rates, want %d", t, len(ev.msg.Rates), want)); err != nil {
					return nil, nil, err
				}
				dispatch(c)
				continue
			}
			if !done[t] {
				done[t] = true
				remaining--
				results[t] = ev.msg.Rates
				if spans[t] != nil {
					spans[t].End()
					delete(spans, t)
				}
			}
			dispatch(c)
		}
	}
	for c := range conns {
		if !dead[c] {
			sendChs[c] <- shardMsg{Type: "done", ID: -1}
		}
	}

	fold := root.Child("shard.fold")
	rates := make([]stats.Rate, nk*nd)
	foldBatches(rates, results, batches, nk, nd)
	fold.End()
	return rates, names, nil
}

// suiteCovered checks a worker's advertised kernel list holds every
// suite kernel, failing the same way suiteKernels does on a short set.
func suiteCovered(suite, have []string) error {
	got := make(map[string]bool, len(have))
	for _, n := range have {
		got[n] = true
	}
	for _, n := range suite {
		if !got[n] {
			return fmt.Errorf("experiments: shard store is missing kernel %q (store holds %d kernels)", n, len(have))
		}
	}
	return nil
}
