package experiments

import (
	"st2gpu/internal/gpusim"
	"st2gpu/internal/kernels"
	"st2gpu/internal/speculate"
	"st2gpu/internal/stats"
	"st2gpu/internal/trace"
)

// AblationResult compares two configurations of the final design.
type AblationResult struct {
	Name     string
	WithRate float64 // misprediction rate with the feature
	SansRate float64 // without it
}

// suiteMissRate runs the whole suite under a device-config mutation and
// returns the average thread misprediction rate. This is the hardware
// ST² path: the in-pipeline CRF's contention, arbitration and capacity
// interact with execution timing, so these ablations genuinely need
// re-simulation and cannot be answered from a recorded stream (contrast
// the predictor-only ablations, which ride Fig5's record-once/replay-many
// path).
func (c Config) suiteMissRate(mut func(*gpusim.Config)) (float64, error) {
	rates := make([]float64, 23)
	err := c.forEachKernel(func(i int, w kernels.Workload) error {
		spec, err := w.Build(c.Scale)
		if err != nil {
			return err
		}
		dc := c.deviceConfig(gpusim.ST2Adders)
		mut(&dc)
		d, err := gpusim.New(dc)
		if err != nil {
			return err
		}
		if spec.Setup != nil {
			if err := spec.Setup(d.Memory()); err != nil {
				return err
			}
		}
		rs, err := d.Launch(spec.Kernel)
		if err != nil {
			return err
		}
		rates[i] = rs.MispredictionRate()
		return nil
	})
	if err != nil {
		return 0, err
	}
	return stats.Mean(rates), nil
}

// AblationPeek toggles the Peek static-resolution filter on the hardware
// ST² path (Section IV-B: "Retrofitting VaLHALLA with Peek reduces its
// misprediction rate by 18%" — here applied to the final design).
func AblationPeek(cfg Config) (AblationResult, error) {
	with, err := cfg.suiteMissRate(func(*gpusim.Config) {})
	if err != nil {
		return AblationResult{}, err
	}
	sans, err := cfg.suiteMissRate(func(dc *gpusim.Config) { dc.DisablePeek = true })
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{Name: "Peek", WithRate: with, SansRate: sans}, nil
}

// AblationContention compares the hardware CRF (write-back contention,
// random arbitration, 16-entry table) against the idealized contention-
// free predictor the Figure 5 sweep assumes — quantifying what the
// paper's "random arbitration is enough" argument costs.
func AblationContention(cfg Config) (AblationResult, error) {
	hw, err := cfg.suiteMissRate(func(*gpusim.Config) {})
	if err != nil {
		return AblationResult{}, err
	}
	ideal, err := cfg.suiteMissRate(func(dc *gpusim.Config) { dc.UseCRF = false })
	if err != nil {
		return AblationResult{}, err
	}
	// "With" the hardware constraint; "sans" is the idealized table.
	return AblationResult{Name: "CRF contention", WithRate: hw, SansRate: ideal}, nil
}

// AblationSharing contrasts thread-history sharing policies on identical
// operation streams (Fig 5's right half): no disambiguation, Gtid
// isolation, and Ltid lane sharing. Like every Fig5 delegate it records
// each kernel once and replays the designs from the captured stream.
func AblationSharing(cfg Config) ([]Fig5Row, error) {
	return Fig5(cfg, []string{
		"Prev+ModPC4+Peek",
		"Gtid+Prev+ModPC4+Peek",
		"Ltid+Prev+ModPC4+Peek",
	})
}

// AblationXORHash checks the paper's claim that "more complex PC-based
// indexing (e.g., XOR-hash of 4-bit PC chunks) provides no additional
// benefits".
func AblationXORHash(cfg Config) ([]Fig5Row, error) {
	return Fig5(cfg, []string{
		"Ltid+Prev+ModPC4+Peek",
		"Ltid+Prev+XorPC4+Peek",
	})
}

// ApproxRow reports the cost of dropping ST²'s correction pass: the
// fraction of adder results that would simply be wrong under an
// approximate (no-correction) speculative adder, per prediction scheme.
type ApproxRow struct {
	Design       string
	WrongResults float64
	MeanRelError float64
}

// ApproximateAdderStudy runs the suite once and evaluates uncorrected
// speculative addition under staticZero (the assumption of approximate
// adders [10]–[13]), CASA, and ST²'s own predictor — motivating the
// paper's guaranteed-correctness design point. The suite is recorded
// once, decoded once, and the (kernel × design) grid runs on the
// decode-once sweep engine; rates are bit-identical to
// ApproximateAdderStudyLive at any cfg.SweepWorkers count.
func ApproximateAdderStudy(cfg Config) ([]ApproxRow, error) {
	set, err := RecordSuite(cfg)
	if err != nil {
		return nil, err
	}
	dec, err := trace.DecodeSet(set)
	if err != nil {
		return nil, err
	}
	return approxFromDecoded(cfg, dec, []string{"staticZero", "CASA", speculate.FinalDesign})
}

// ApproximateAdderStudyLive is the legacy live-tracer path (sequential
// SM worker per launch); kept for parity testing.
func ApproximateAdderStudyLive(cfg Config) ([]ApproxRow, error) {
	return approximateAdderStudy(cfg, func(i int, w kernels.Workload, meter *trace.ApproxMeter) error {
		_, _, err := cfg.runWorkload(w, gpusim.BaselineAdders, meter)
		return err
	})
}

func approximateAdderStudy(cfg Config, feed func(i int, w kernels.Workload, meter *trace.ApproxMeter) error) ([]ApproxRow, error) {
	designs := []string{"staticZero", "CASA", speculate.FinalDesign}
	type kernelRates struct{ wrong, relErr []float64 }
	perKernel := make([]kernelRates, 23)
	err := cfg.forEachKernel(func(i int, w kernels.Workload) error {
		meter, err := trace.NewApproxMeter(designs)
		if err != nil {
			return err
		}
		if err := feed(i, w, meter); err != nil {
			return err
		}
		kr := kernelRates{wrong: make([]float64, len(designs)), relErr: make([]float64, len(designs))}
		for j, d := range designs {
			wr, err := meter.WrongRate(d)
			if err != nil {
				return err
			}
			re, err := meter.MeanRelError(d)
			if err != nil {
				return err
			}
			kr.wrong[j], kr.relErr[j] = wr, re
		}
		perKernel[i] = kr
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Aggregate in suite order so the floating-point sums match the old
	// sequential loop bit for bit.
	out := make([]ApproxRow, len(designs))
	for j, d := range designs {
		var wrSum, reSum float64
		for _, kr := range perKernel {
			wrSum += kr.wrong[j]
			reSum += kr.relErr[j]
		}
		out[j] = ApproxRow{
			Design:       d,
			WrongResults: wrSum / float64(len(perKernel)),
			MeanRelError: reSum / float64(len(perKernel)),
		}
	}
	return out, nil
}

// CRFSizeRow is one point of the CRF-capacity sweep.
type CRFSizeRow struct {
	Entries  int
	MissRate float64
}

// AblationCRFSize sweeps the Carry Register File's entry count (the
// paper's 16-entry PC[3:0] table against smaller and larger tables) on
// the hardware path, quantifying how much PC aliasing the 4-bit index
// actually costs.
func AblationCRFSize(cfg Config, sizes []int) ([]CRFSizeRow, error) {
	if sizes == nil {
		sizes = []int{4, 8, 16, 32, 64}
	}
	out := make([]CRFSizeRow, 0, len(sizes))
	for _, n := range sizes {
		n := n
		rate, err := cfg.suiteMissRate(func(dc *gpusim.Config) { dc.CRFEntries = n })
		if err != nil {
			return nil, err
		}
		out = append(out, CRFSizeRow{Entries: n, MissRate: rate})
	}
	return out, nil
}

// AblationHistoryDepth compares the final design against its depth-2
// variant (the paper's temporal-axis exploration).
func AblationHistoryDepth(cfg Config) ([]Fig5Row, error) {
	return Fig5(cfg, []string{
		"Ltid+Prev+ModPC4+Peek",
		"Ltid+Prev2+ModPC4+Peek",
	})
}
