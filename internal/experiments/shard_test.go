package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"st2gpu/internal/kernels"
	"st2gpu/internal/trace"
)

// TestMain doubles as the shard-worker entry point: the coordinator
// tests re-exec this test binary with ST2_SHARD_WORKER=1 and speak the
// shard protocol over its stdio — a real subprocess worker, no mocks.
func TestMain(m *testing.M) {
	if os.Getenv("ST2_SHARD_WORKER") == "1" {
		if err := ServeShardWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "shard worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	code := m.Run()
	suiteStoreState.mu.Lock()
	if suiteStoreState.dir != "" {
		os.RemoveAll(suiteStoreState.dir)
	}
	suiteStoreState.mu.Unlock()
	os.Exit(code)
}

// suiteStoreState caches the recorded suite store across shard tests —
// recording 23 kernels is the expensive part, and every test wants the
// same scale-1 capture.
var suiteStoreState struct {
	mu   sync.Mutex
	once sync.Once
	dir  string
	path string
	dec  *trace.Decoded
	err  error
}

// suiteStore records the suite under Default(), persists it as a store
// file, and returns the path plus the in-memory decoded set the
// in-process comparators run on.
func suiteStore(t *testing.T) (string, *trace.Decoded) {
	t.Helper()
	s := &suiteStoreState
	s.once.Do(func() {
		set, err := RecordSuite(Default())
		if err != nil {
			s.err = err
			return
		}
		dec, err := trace.DecodeSet(set)
		if err != nil {
			s.err = err
			return
		}
		dir, err := os.MkdirTemp("", "st2shard")
		if err != nil {
			s.err = err
			return
		}
		path := filepath.Join(dir, "suite.st2dec")
		if err := dec.WriteStoreFile(path, trace.StoreOptions{}); err != nil {
			s.err = err
			return
		}
		s.mu.Lock()
		s.dir, s.path, s.dec = dir, path, dec
		s.mu.Unlock()
	})
	if s.err != nil {
		t.Fatal(s.err)
	}
	return s.path, s.dec
}

// spawnTestWorkers launches n real worker subprocesses by re-execing
// the test binary with the worker env flag set.
func spawnTestWorkers(t *testing.T, n int) []*ShardConn {
	t.Helper()
	conns, err := SpawnWorkers(n, func() *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "ST2_SHARD_WORKER=1")
		return cmd
	})
	if err != nil {
		t.Fatal(err)
	}
	return conns
}

// TestShardedSweepMatchesInProcess pins the tentpole guarantee: the
// distributed sweep over real worker subprocesses produces rows
// DeepEqual to the in-process decoded sweeps, at multiple shard counts
// × sweep-worker counts (the inflight cap that also sets the batch
// partition).
func TestShardedSweepMatchesInProcess(t *testing.T) {
	storePath, dec := suiteStore(t)
	cfg := Default()
	wantF5, err := Fig5FromDecoded(cfg, dec, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantF3, err := Fig3FromDecoded(cfg, dec)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3} {
		for _, workers := range []int{1, 2} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				c := cfg
				c.SweepWorkers = workers
				conns := spawnTestWorkers(t, shards)
				gotF5, err := Fig5Sharded(c, storePath, nil, conns, ShardOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotF5, wantF5) {
					t.Errorf("sharded Fig5 rows differ from in-process:\n got %+v\nwant %+v", gotF5, wantF5)
				}
				conns = spawnTestWorkers(t, shards)
				gotF3, err := Fig3Sharded(c, storePath, conns, ShardOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotF3, wantF3) {
					t.Errorf("sharded Fig3 rows differ from in-process:\n got %+v\nwant %+v", gotF3, wantF3)
				}
			})
		}
	}
}

// killAfterResults wraps a worker connection's read side and fires kill
// once `remaining` reply lines have passed through — deterministic
// mid-sweep worker death while the worker still holds leased cells.
type killAfterResults struct {
	r         io.Reader
	remaining int
	kill      func()
	once      sync.Once
}

func (k *killAfterResults) Read(p []byte) (int, error) {
	n, err := k.r.Read(p)
	k.remaining -= bytes.Count(p[:n], []byte("\n"))
	if k.remaining <= 0 {
		k.once.Do(k.kill)
	}
	return n, err
}

// TestShardedSweepSurvivesWorkerKill is the fault-injection test: a
// worker subprocess dies mid-sweep (after delivering two results, so it
// holds leased cells) and another dies before the handshake; both
// times the coordinator requeues onto the survivor and the rows stay
// bit-identical to the in-process sweep.
func TestShardedSweepSurvivesWorkerKill(t *testing.T) {
	storePath, dec := suiteStore(t)
	cfg := Default()
	cfg.SweepWorkers = 2
	want, err := Fig5FromDecoded(cfg, dec, nil)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("mid-sweep", func(t *testing.T) {
		conns := spawnTestWorkers(t, 2)
		victim := conns[0]
		victim.R = &killAfterResults{r: victim.R, remaining: 3, kill: func() { victim.Close() }}
		got, err := Fig5Sharded(cfg, storePath, nil, conns, ShardOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("rows after mid-sweep worker kill differ from in-process:\n got %+v\nwant %+v", got, want)
		}
	})

	t.Run("before-handshake", func(t *testing.T) {
		conns := spawnTestWorkers(t, 2)
		conns[0].Close()
		got, err := Fig5Sharded(cfg, storePath, nil, conns, ShardOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("rows after pre-handshake worker kill differ from in-process:\n got %+v\nwant %+v", got, want)
		}
	})
}

// fakeWorker speaks the protocol in-process over pipes with a
// scriptable cell reply — how the error paths get exercised without
// needing a subprocess that misbehaves on cue.
func fakeWorker(t *testing.T, reply func(m shardMsg) shardMsg) *ShardConn {
	t.Helper()
	names := make([]string, 0, len(kernels.Suite()))
	for _, w := range kernels.Suite() {
		names = append(names, w.Name)
	}
	coordR, workerW := io.Pipe()
	workerR, coordW := io.Pipe()
	go func() {
		dec := json.NewDecoder(workerR)
		enc := json.NewEncoder(workerW)
		for {
			var m shardMsg
			if err := dec.Decode(&m); err != nil {
				workerW.Close()
				return
			}
			switch m.Type {
			case "open":
				enc.Encode(shardMsg{Type: "ready", ID: -1, Kernels: names})
			case "cell":
				enc.Encode(reply(m))
			case "done":
				workerW.Close()
				return
			}
		}
	}()
	return &ShardConn{Name: "fake", R: coordR, W: coordW, C: coordW}
}

// TestShardedSweepRetryExhausted covers the loud-failure path: every
// worker fails every cell, so once a cell burns MaxAttempts the sweep
// errors naming the cell instead of spinning forever.
func TestShardedSweepRetryExhausted(t *testing.T) {
	storePath, _ := suiteStore(t)
	cfg := Default()
	cfg.SweepWorkers = 1
	alwaysFail := func(m shardMsg) shardMsg {
		return shardMsg{Type: "error", ID: m.ID, Msg: "injected cell failure"}
	}
	conns := []*ShardConn{fakeWorker(t, alwaysFail), fakeWorker(t, alwaysFail)}
	_, err := Fig5Sharded(cfg, storePath, nil, conns, ShardOptions{MaxAttempts: 2, Lease: time.Minute})
	if err == nil {
		t.Fatal("sweep with always-failing workers succeeded")
	}
	if !strings.Contains(err.Error(), "giving up") || !strings.Contains(err.Error(), "injected cell failure") {
		t.Errorf("retry-exhausted error %q does not name the failure", err)
	}
}

// TestShardedSweepAllWorkersDead covers the other loud-failure path:
// every connection dies with cells outstanding.
func TestShardedSweepAllWorkersDead(t *testing.T) {
	storePath, _ := suiteStore(t)
	cfg := Default()
	cfg.SweepWorkers = 1
	conns := spawnTestWorkers(t, 2)
	conns[0].Close()
	conns[1].Close()
	_, err := Fig5Sharded(cfg, storePath, nil, conns, ShardOptions{})
	if err == nil {
		t.Fatal("sweep with all workers dead succeeded")
	}
	if !strings.Contains(err.Error(), "workers died") {
		t.Errorf("all-dead error %q does not say the workers died", err)
	}
}
