package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"st2gpu/internal/gpusim"
	"st2gpu/internal/metrics/runlog"
	"st2gpu/internal/power"
	"st2gpu/internal/speculate"
)

// The experiment drivers are exercised end to end here at scale 1; the
// benchmark harness at the repo root prints their full row sets.

func TestFig1Shape(t *testing.T) {
	rows, err := Fig1(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 24 || rows[23].Kernel != "Average" {
		t.Fatalf("want 23 kernels + Average, got %d rows", len(rows))
	}
	intense := 0
	for _, r := range rows[:23] {
		sum := r.ALUAdd + r.FPUAdd + r.ALUOther + r.FPUOther + r.Other
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: fractions sum to %.4f", r.Kernel, sum)
		}
		if r.ALUAdd+r.FPUAdd > 0.20 {
			intense++
		}
	}
	// Figure 1: 21 of 23 kernels have >20% add instructions alone; our
	// reproduction should see a clear majority.
	if intense < 14 {
		t.Errorf("only %d/23 kernels are add-intense; expected a clear majority", intense)
	}
	if avg := rows[23].ALUAdd + rows[23].FPUAdd; avg < 0.20 {
		t.Errorf("average add fraction %.3f below the paper's >20%% regime", avg)
	}
}

func TestFig2ProducesPathfinderPCs(t *testing.T) {
	series, err := Fig2(Default(), 37, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 5 {
		t.Fatalf("pathfinder hot loop should expose ≥5 add PCs, got %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Errorf("PC %d has no points", s.PC)
		}
	}
}

func TestFig3Ordering(t *testing.T) {
	rows, err := Fig3(Default())
	if err != nil {
		t.Fatal(err)
	}
	avg := rows[len(rows)-1]
	if avg.Kernel != "Average" {
		t.Fatal("missing average row")
	}
	noPC, gtidPC, ltidPC := avg.Rates[0], avg.Rates[1], avg.Rates[2]
	t.Logf("Fig3 averages: Prev+Gtid=%.3f Prev+FullPC+Gtid=%.3f Prev+FullPC+Ltid=%.3f",
		noPC, gtidPC, ltidPC)
	// The paper's ordering (50% / 83% / 89%): temporal-only trails the
	// spatio-temporal schemes, and lane sharing helps. Our synthetic
	// inputs carry more all-zero-carry additions than production traces,
	// which compresses the absolute gaps; the ordering is the claim.
	if !(noPC < gtidPC && gtidPC <= ltidPC+0.03) {
		t.Errorf("Figure 3 ordering broken: %.3f %.3f %.3f", noPC, gtidPC, ltidPC)
	}
	if gtidPC < 0.70 {
		t.Errorf("spatio-temporal correlation %.3f too weak (paper ≈0.83)", gtidPC)
	}
	if noPC > gtidPC-0.02 {
		t.Errorf("temporal-only correlation should trail: %.3f vs %.3f", noPC, gtidPC)
	}
}

func TestFig5DesignSpaceShape(t *testing.T) {
	rows, err := Fig5(Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for _, r := range rows {
		rates[r.Design] = r.MissRate
		t.Logf("%-26s %.4f", r.Design, r.MissRate)
	}
	final := rates[speculate.FinalDesign]
	// The paper's key orderings.
	if final >= rates["VaLHALLA"] {
		t.Errorf("final design (%.3f) must beat VaLHALLA (%.3f)", final, rates["VaLHALLA"])
	}
	if rates["VaLHALLA+Peek"] >= rates["VaLHALLA"] {
		t.Errorf("Peek should improve VaLHALLA: %.3f vs %.3f",
			rates["VaLHALLA+Peek"], rates["VaLHALLA"])
	}
	if rates["Prev+ModPC4+Peek"] >= rates["Prev+Peek"] {
		t.Errorf("PC indexing should improve Prev+Peek: %.3f vs %.3f",
			rates["Prev+ModPC4+Peek"], rates["Prev+Peek"])
	}
	if final >= rates["Gtid+Prev+ModPC4+Peek"] {
		t.Errorf("Ltid sharing (%.3f) should beat Gtid isolation (%.3f)",
			final, rates["Gtid+Prev+ModPC4+Peek"])
	}
	if final > 0.20 {
		t.Errorf("final design rate %.3f; the paper reports ≈0.09", final)
	}
}

func TestFig6FinalDesign(t *testing.T) {
	rows, err := Fig6(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 24 || rows[23].Kernel != "Average" {
		t.Fatalf("rows = %d", len(rows))
	}
	avg := rows[23]
	t.Logf("Fig6 average: miss=%.4f recompute=%.2f (max %d)",
		avg.MissRate, avg.MeanRecompute, avg.MaxRecompute)
	if avg.MissRate > 0.20 {
		t.Errorf("average misprediction rate %.3f; paper reports ≈0.09", avg.MissRate)
	}
	if avg.MeanRecompute <= 0 || avg.MeanRecompute > 4.5 {
		t.Errorf("mean recomputed slices %.2f; paper reports 1.94", avg.MeanRecompute)
	}
	if avg.MaxRecompute > 7 {
		t.Errorf("max recompute %d exceeds slice count", avg.MaxRecompute)
	}
}

func TestFig7EnergySavings(t *testing.T) {
	rows, sum, err := Fig7(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 23 {
		t.Fatalf("rows = %d", len(rows))
	}
	t.Logf("Fig7: system saving %.3f, chip saving %.3f, ALU+FPU share %.3f (chip %.3f), intense %d (sys %.3f), max %.3f (%s)",
		sum.AvgSystemSaving, sum.AvgChipSaving, sum.AvgALUFPUShare, sum.AvgALUFPUChip,
		sum.IntenseCount, sum.IntenseSystemSaving, sum.MaxSystemSaving, sum.MaxSystemSavingKernel)
	for _, r := range rows {
		if r.SystemSaving < -0.01 {
			t.Errorf("%s: ST² increased system energy by %.3f", r.Kernel, -r.SystemSaving)
		}
		if r.ChipSaving < r.SystemSaving-1e-9 {
			t.Errorf("%s: chip saving (%.3f) should exceed system saving (%.3f) — DRAM dilutes",
				r.Kernel, r.ChipSaving, r.SystemSaving)
		}
	}
	// Shape targets (paper: 19% system, 21% chip, 27% ALU+FPU share).
	if sum.AvgSystemSaving < 0.08 || sum.AvgSystemSaving > 0.35 {
		t.Errorf("avg system saving %.3f outside the paper's ≈0.19 neighbourhood", sum.AvgSystemSaving)
	}
	if sum.AvgChipSaving <= sum.AvgSystemSaving {
		t.Errorf("chip saving %.3f should exceed system saving %.3f",
			sum.AvgChipSaving, sum.AvgSystemSaving)
	}
	if sum.AvgALUFPUShare < 0.15 || sum.AvgALUFPUShare > 0.45 {
		t.Errorf("ALU+FPU share %.3f outside the paper's ≈0.27 neighbourhood", sum.AvgALUFPUShare)
	}
	if sum.IntenseCount < 8 {
		t.Errorf("only %d kernels exceed 20%% ALU+FPU energy; paper has 14", sum.IntenseCount)
	}
	if sum.IntenseSystemSaving <= sum.AvgSystemSaving {
		t.Errorf("intense kernels should save more: %.3f vs %.3f",
			sum.IntenseSystemSaving, sum.AvgSystemSaving)
	}
}

func TestPerfOverheadSmall(t *testing.T) {
	rows, err := PerfOverhead(Default())
	if err != nil {
		t.Fatal(err)
	}
	avg := rows[len(rows)-1]
	if avg.Kernel != "Average" {
		t.Fatal("missing average")
	}
	t.Logf("perf overhead: avg %.4f%%", avg.Slowdown*100)
	if avg.Slowdown > 0.02 {
		t.Errorf("average slowdown %.3f%%; paper reports 0.36%%", avg.Slowdown*100)
	}
	worst := 0.0
	for _, r := range rows[:len(rows)-1] {
		if r.Slowdown > worst {
			worst = r.Slowdown
		}
	}
	if worst > 0.06 {
		t.Errorf("worst slowdown %.3f%%; paper's worst is 3.5%%", worst*100)
	}
}

func TestPowerValidationWorkflow(t *testing.T) {
	rep, model, err := PowerValidation(Default(), 0.06)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("power model: MARE %.3f ± %.3f, Pearson r %.3f (N=%d)",
		rep.MeanAbsRelErr, rep.ErrCI95, rep.PearsonR, rep.N)
	if rep.N != 23 {
		t.Errorf("validation set N = %d", rep.N)
	}
	if rep.MeanAbsRelErr > 0.25 {
		t.Errorf("validation error %.3f; the paper's regime is ≈0.105", rep.MeanAbsRelErr)
	}
	if rep.PearsonR < 0.5 {
		t.Errorf("Pearson r %.3f; the paper reports 0.8", rep.PearsonR)
	}
	for i, s := range model.Scale {
		if s < 0 {
			t.Errorf("scale[%v] negative: %g", power.Component(i), s)
		}
	}
}

func TestSliceWidthDSEAndOverheads(t *testing.T) {
	results, best, err := SliceWidthDSE()
	if err != nil {
		t.Fatal(err)
	}
	if results[best].SliceBits != 8 {
		t.Errorf("DSE picked %d-bit slices; paper picks 8", results[best].SliceBits)
	}
	budget, err := Overheads(0)
	if err != nil {
		t.Fatal(err)
	}
	if budget.CRFBytesPerSM != 448 || budget.ShifterAreaFraction > 0.01 {
		t.Errorf("overhead budget off: %+v", budget)
	}
	if _, err := Overheads(0.3); err != nil {
		t.Errorf("explicit utilization: %v", err)
	}
}

func TestApproximateAdderStudy(t *testing.T) {
	rows, err := ApproximateAdderStudy(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ApproxRow{}
	for _, r := range rows {
		byName[r.Design] = r
		t.Logf("%-24s wrong %.2f%%  mean rel err %.3g", r.Design, 100*r.WrongResults, r.MeanRelError)
	}
	final := byName[speculate.FinalDesign]
	zero := byName["staticZero"]
	if final.WrongResults >= zero.WrongResults {
		t.Errorf("ST²'s predictor (%.3f) should corrupt fewer uncorrected results than staticZero (%.3f)",
			final.WrongResults, zero.WrongResults)
	}
	// Even the best predictor corrupts some results without correction —
	// the reason the paper's variable-latency correction exists.
	if final.WrongResults <= 0 {
		t.Error("an uncorrected approximate adder should produce some wrong results")
	}
}

func TestAblationCRFSizeShape(t *testing.T) {
	rows, err := AblationCRFSize(Default(), []int{4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%3d entries: %.3f", r.Entries, r.MissRate)
	}
	// Bigger tables cannot be much worse; tiny tables alias more.
	if rows[0].MissRate < rows[1].MissRate-0.01 {
		t.Errorf("4-entry CRF (%.3f) should not beat 16-entry (%.3f)",
			rows[0].MissRate, rows[1].MissRate)
	}
	if rows[2].MissRate > rows[1].MissRate+0.01 {
		t.Errorf("64-entry CRF (%.3f) should not trail 16-entry (%.3f) badly",
			rows[2].MissRate, rows[1].MissRate)
	}
	if _, err := AblationCRFSize(Default(), []int{3}); err == nil {
		t.Error("non-power-of-two size should fail")
	}
}

func TestAblationHistoryDepth(t *testing.T) {
	rows, err := AblationHistoryDepth(Default())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("depth 1: %.4f, depth 2: %.4f", rows[0].MissRate, rows[1].MissRate)
	// The paper ends at depth 1; the alternation heuristic must not win
	// decisively (>2pp) or the paper's choice would be wrong here.
	if rows[1].MissRate < rows[0].MissRate-0.02 {
		t.Errorf("depth-2 (%.3f) decisively beats depth-1 (%.3f); unexpected",
			rows[1].MissRate, rows[0].MissRate)
	}
}

// The Section V-B scaling claim: per-design savings fractions persist
// across process nodes even though absolute energies differ by orders of
// magnitude.
func TestTechnologyScaling(t *testing.T) {
	rows, err := TechnologyScaling(nil)
	if err != nil {
		t.Fatal(err)
	}
	byTech := map[string]map[uint]ScalingRow{}
	for _, r := range rows {
		if byTech[r.Tech] == nil {
			byTech[r.Tech] = map[uint]ScalingRow{}
		}
		byTech[r.Tech][r.SliceBits] = r
		t.Logf("%-9s %2d-bit: V/Vnom %.2f saving %.3f", r.Tech, r.SliceBits, r.SupplyRatio, r.EnergySaving)
	}
	for _, w := range []uint{4, 8, 16} {
		a := byTech["saed90"][w].EnergySaving
		b := byTech["finfet12"][w].EnergySaving
		if diff := a - b; diff < -0.15 || diff > 0.15 {
			t.Errorf("width %d: savings diverge across nodes: %.3f vs %.3f", w, a, b)
		}
	}
	// Ordering persists: narrower slices always save more (pre-overhead).
	for _, tech := range []string{"saed90", "finfet12"} {
		if !(byTech[tech][4].EnergySaving > byTech[tech][8].EnergySaving &&
			byTech[tech][8].EnergySaving > byTech[tech][16].EnergySaving) {
			t.Errorf("%s: width ordering broken", tech)
		}
	}
}

func TestRunSuiteManifestAndProgress(t *testing.T) {
	var buf bytes.Buffer
	lg := runlog.New(&buf)
	var calls []string
	cfg := Default()
	cfg.Progress = func(done, total int, name string) {
		if done < 1 || done > total {
			t.Errorf("progress done=%d total=%d", done, total)
		}
		calls = append(calls, name)
	}
	rss, err := RunSuite(cfg, gpusim.ST2Adders, lg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rss) != 23 {
		t.Fatalf("want 23 runs, got %d", len(rss))
	}
	if len(calls) != 23 {
		t.Errorf("progress fired %d times, want 23", len(calls))
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 23 {
		t.Fatalf("manifest has %d lines, want 23", len(lines))
	}
	for i, line := range lines {
		var ev runlog.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d: invalid JSON: %v", i, err)
		}
		if ev.Seq != i || ev.Kernel != calls[i] {
			t.Errorf("line %d: seq=%d kernel=%q, progress saw %q", i, ev.Seq, ev.Kernel, calls[i])
		}
		if ev.Stats.TotalThreadInstrs == 0 {
			t.Errorf("line %d (%s): zero thread instructions", i, ev.Kernel)
		}
		if !(ev.Phases.SetupS > 0 && ev.Phases.SimulateS > 0 && ev.Phases.FoldS > 0 && ev.Phases.VerifyS > 0) {
			t.Errorf("line %d (%s): non-positive phase timing: %+v", i, ev.Kernel, ev.Phases)
		}
		if ev.Metrics == nil {
			t.Errorf("line %d (%s): registry snapshot missing", i, ev.Kernel)
		}
	}
}
