package gpusim

import (
	"fmt"
	"math"

	"st2gpu/internal/adder"
	"st2gpu/internal/core"
	"st2gpu/internal/isa"
)

func f32bits(v float32) uint32     { return math.Float32bits(v) }
func f32fromBits(b uint32) float32 { return math.Float32frombits(b) }
func f64bits(v float64) uint64     { return math.Float64bits(v) }
func f64fromBits(b uint64) float64 { return math.Float64frombits(b) }

// warp is one warp's architectural and scheduling state.
type warp struct {
	id       int
	blockIdx int    // global block index
	gtidBase uint32 // global thread id of lane 0
	tidBase  uint32 // block-local thread id of lane 0
	nLanes   int    // threads actually populated (last warp may be partial)

	pc     [32]int32 // per-thread next instruction; -1 = exited
	regs   []uint64  // flat: reg*32 + lane
	preds  []bool    // flat: pred*32 + lane
	shared []byte    // block shared memory (shared with sibling warps)

	// Scheduling state.
	regReady  []uint64 // scoreboard: cycle each data register becomes readable
	nextIssue uint64   // in-order issue point
	atBarrier bool
	done      bool
}

func (w *warp) reg(r isa.Reg, lane int) uint64       { return w.regs[int(r)*32+lane] }
func (w *warp) setReg(r isa.Reg, lane int, v uint64) { w.regs[int(r)*32+lane] = v }
func (w *warp) pred(p isa.PReg, lane int) bool       { return w.preds[int(p)*32+lane] }
func (w *warp) setPred(p isa.PReg, lane int, v bool) { w.preds[int(p)*32+lane] = v }

// minPC returns the smallest live PC (SIMT min-PC reconvergence) or -1
// when every thread has exited.
func (w *warp) minPC() int32 {
	min := int32(-1)
	for l := 0; l < w.nLanes; l++ {
		if w.pc[l] < 0 {
			continue
		}
		if min < 0 || w.pc[l] < min {
			min = w.pc[l]
		}
	}
	return min
}

// stepResult is what one warp instruction's functional execution reports
// to the timing model.
type stepResult struct {
	class           isa.FUClass
	latency         uint64 // producer→consumer latency
	occupancy       uint64 // cycles the FU pipe stays busy (initiation interval)
	dstReg          isa.Reg
	hasDst          bool
	activeLanes     int
	memTransactions int
	barrier         bool
	exited          bool // every thread gone after this step
	st2Stall        bool // warp pays the misprediction recompute cycle
}

// operand value fetch.
func (sm *smState) operand(w *warp, o isa.Operand, lane int) uint64 {
	switch o.Kind {
	case isa.OpReg:
		return w.reg(o.Reg, lane)
	case isa.OpImm:
		return o.Imm
	case isa.OpSpecial:
		switch o.SReg {
		case isa.SRegTid:
			return uint64(w.tidBase) + uint64(lane)
		case isa.SRegNTid:
			return uint64(sm.kernel.BlockDim)
		case isa.SRegCtaid:
			return uint64(w.blockIdx)
		case isa.SRegNCtaid:
			return uint64(sm.kernel.GridDim)
		case isa.SRegGtid:
			return uint64(w.gtidBase) + uint64(lane)
		case isa.SRegLane:
			return uint64(lane)
		default:
			return 0
		}
	default:
		return 0
	}
}

// truncate narrows a raw 64-bit value to the type's width with the
// type-appropriate extension, the canonical register representation.
func truncate(ty isa.Type, v uint64) uint64 {
	switch ty {
	case isa.U32:
		return uint64(uint32(v))
	case isa.S32:
		return uint64(int64(int32(uint32(v))))
	case isa.F32:
		return uint64(uint32(v))
	default:
		return v
	}
}

// executeStep functionally executes the instruction group at minPC for
// all threads whose PC equals it, advances their PCs, and returns the
// timing facts. Errors indicate simulator bugs or out-of-bounds memory.
func (sm *smState) executeStep(w *warp) (stepResult, error) {
	pc := w.minPC()
	if pc < 0 {
		return stepResult{exited: true}, nil
	}
	prog := sm.kernel.Program
	in := prog.Instrs[pc]
	res := stepResult{class: in.Op.Class(), dstReg: in.Dst, hasDst: in.Op.HasDst()}

	// The execution set: threads at this PC whose guard passes. Threads at
	// this PC with a failing guard still advance their PC.
	var atPC [32]bool
	var execMask uint32
	for l := 0; l < w.nLanes; l++ {
		if w.pc[l] != pc {
			continue
		}
		atPC[l] = true
		pass := true
		if in.Guard != isa.NoPred {
			pass = w.pred(in.Guard, l) != in.GuardNeg
		}
		if pass {
			execMask |= 1 << l
			res.activeLanes++
		}
	}

	advance := func() {
		for l := 0; l < w.nLanes; l++ {
			if atPC[l] {
				w.pc[l] = pc + 1
			}
		}
	}

	lat, occ := sm.dev.latency(in.Op)
	res.latency, res.occupancy = lat, occ

	switch in.Op {
	case isa.OpNop:
		advance()

	case isa.OpExit:
		for l := 0; l < w.nLanes; l++ {
			if atPC[l] && execMask&(1<<l) != 0 {
				w.pc[l] = -1
			} else if atPC[l] {
				w.pc[l] = pc + 1
			}
		}
		if w.minPC() < 0 {
			res.exited = true
		}

	case isa.OpBar:
		advance()
		res.barrier = true

	case isa.OpBra:
		for l := 0; l < w.nLanes; l++ {
			if !atPC[l] {
				continue
			}
			if execMask&(1<<l) != 0 {
				w.pc[l] = int32(in.Target)
			} else {
				w.pc[l] = pc + 1
			}
		}

	case isa.OpIAdd, isa.OpISub:
		if err := sm.execIntAddSub(w, uint32(pc), in, execMask, &res); err != nil {
			return res, err
		}
		advance()

	case isa.OpFAdd, isa.OpFSub:
		if err := sm.execFloatAddSub(w, uint32(pc), in, execMask, &res); err != nil {
			return res, err
		}
		advance()

	case isa.OpSetp:
		for l := 0; l < w.nLanes; l++ {
			if execMask&(1<<l) == 0 {
				continue
			}
			a := sm.operand(w, in.Srcs[0], l)
			b := sm.operand(w, in.Srcs[1], l)
			w.setPred(in.PDst, l, compare(in.Cmp, in.Type, a, b))
		}
		advance()

	case isa.OpLd, isa.OpSt, isa.OpAtomAdd:
		if err := sm.execMemory(w, in, execMask, &res); err != nil {
			return res, err
		}
		advance()

	default:
		for l := 0; l < w.nLanes; l++ {
			if execMask&(1<<l) == 0 {
				continue
			}
			v, err := evalScalar(sm, w, in, l)
			if err != nil {
				return res, fmt.Errorf("gpusim: %s @%d lane %d: %w", prog.Name, pc, l, err)
			}
			if in.Op.HasDst() {
				w.setReg(in.Dst, l, truncate(in.Type, v))
			}
		}
		advance()
	}
	return res, nil
}

// execIntAddSub routes an integer add/sub through the ST² ALU (or the
// baseline adder in baseline mode).
func (sm *smState) execIntAddSub(w *warp, pc uint32, in isa.Instr, execMask uint32, res *stepResult) error {
	op := adder.Add
	if in.Op == isa.OpISub {
		op = adder.Sub
	}
	unit := sm.alu32
	if in.Type.Is64() {
		unit = sm.alu64
	}
	var lanes [32]core.LaneOp
	for l := 0; l < w.nLanes; l++ {
		if execMask&(1<<l) == 0 {
			continue
		}
		a := sm.operand(w, in.Srcs[0], l)
		b := sm.operand(w, in.Srcs[1], l)
		lanes[l] = core.LaneOp{Active: true, A: a, B: b, Op: op}
	}
	if sm.dev.tracer != nil || sm.rec != nil {
		if err := sm.observeLanes(unit, pc, w, &lanes); err != nil {
			return err
		}
	}
	if sm.dev.cfg.AdderMode == ST2Adders {
		wr := unit.ExecuteWarp(sm.spec, pc, w.gtidBase, &lanes)
		for l := 0; l < w.nLanes; l++ {
			if lanes[l].Active {
				w.setReg(in.Dst, l, truncate(in.Type, wr.Sums[l]))
			}
		}
		if wr.Cycles == 2 {
			res.st2Stall = true
		}
		return nil
	}
	// Baseline: exact native arithmetic; count the op for pricing.
	for l := 0; l < w.nLanes; l++ {
		if !lanes[l].Active {
			continue
		}
		v := lanes[l].A + lanes[l].B
		if op == adder.Sub {
			v = lanes[l].A - lanes[l].B
		}
		w.setReg(in.Dst, l, truncate(in.Type, v))
	}
	sm.baselineAdderOps[unit.Kind] += uint64(res.activeLanes)
	return nil
}

// observeLanes reports the warp's effective adder operations — in one
// warp-synchronous batch — to the installed live tracer and/or this SM's
// recording shard. The only error it can return is the recording
// byte-cap tripping.
func (sm *smState) observeLanes(unit *core.Unit, pc uint32, w *warp, lanes *[32]core.LaneOp) error {
	var ops [32]WarpAddOp
	any := false
	for l := 0; l < w.nLanes; l++ {
		if !lanes[l].Active {
			continue
		}
		ea, eb, cin0 := unit.Adder().EffectiveOperands(lanes[l].A, lanes[l].B, lanes[l].Op)
		sum, _ := unit.Adder().Reference(lanes[l].A, lanes[l].B, lanes[l].Op)
		ops[l] = WarpAddOp{Active: true, EA: ea, EB: eb, Cin0: cin0, Sum: sum}
		any = true
	}
	if !any {
		return nil
	}
	if sm.dev.tracer != nil {
		sm.dev.tracer.TraceWarpAdds(unit.Kind, pc, w.gtidBase, &ops)
	}
	if sm.rec != nil {
		return sm.rec.append(unit.Kind, pc, w.gtidBase, &ops)
	}
	return nil
}

// execFloatAddSub: the architectural result is native IEEE; in ST² mode
// the aligned mantissa operation additionally flows through the FPU/DPU
// sliced adder for timing/energy/misprediction accounting.
func (sm *smState) execFloatAddSub(w *warp, pc uint32, in isa.Instr, execMask uint32, res *stepResult) error {
	is64 := in.Type == isa.F64
	unit := sm.fpu
	if is64 {
		unit = sm.dpu
	}
	var lanes [32]core.LaneOp
	for l := 0; l < w.nLanes; l++ {
		if execMask&(1<<l) == 0 {
			continue
		}
		a := sm.operand(w, in.Srcs[0], l)
		b := sm.operand(w, in.Srcs[1], l)
		// Architectural result.
		var out uint64
		if is64 {
			x, y := f64fromBits(a), f64fromBits(b)
			if in.Op == isa.OpFSub {
				y = -y
			}
			out = f64bits(x + y)
			if sm.dev.cfg.AdderMode == ST2Adders || sm.dev.tracer != nil || sm.rec != nil {
				if mop, ok := core.MantissaOpF64(x, y); ok {
					lanes[l] = mop
				}
			}
		} else {
			x, y := f32fromBits(uint32(a)), f32fromBits(uint32(b))
			if in.Op == isa.OpFSub {
				y = -y
			}
			out = uint64(f32bits(x + y))
			if sm.dev.cfg.AdderMode == ST2Adders || sm.dev.tracer != nil || sm.rec != nil {
				if mop, ok := core.MantissaOpF32(x, y); ok {
					lanes[l] = mop
				}
			}
		}
		w.setReg(in.Dst, l, out)
	}
	if sm.dev.tracer != nil || sm.rec != nil {
		if err := sm.observeLanes(unit, pc, w, &lanes); err != nil {
			return err
		}
	}
	if sm.dev.cfg.AdderMode == ST2Adders {
		wr := unit.ExecuteWarp(sm.spec, pc, w.gtidBase, &lanes)
		if wr.Cycles == 2 {
			res.st2Stall = true
		}
	} else {
		sm.baselineAdderOps[unit.Kind] += uint64(res.activeLanes)
	}
	return nil
}

// compare evaluates a SETP comparison.
func compare(cmp isa.CmpOp, ty isa.Type, a, b uint64) bool {
	var lt, eq bool
	switch {
	case ty == isa.F32:
		x, y := f32fromBits(uint32(a)), f32fromBits(uint32(b))
		lt, eq = x < y, x == y
	case ty == isa.F64:
		x, y := f64fromBits(a), f64fromBits(b)
		lt, eq = x < y, x == y
	case ty.IsSigned():
		x, y := int64(a), int64(b)
		if ty == isa.S32 {
			x, y = int64(int32(uint32(a))), int64(int32(uint32(b)))
		}
		lt, eq = x < y, x == y
	default:
		x, y := a, b
		if ty == isa.U32 {
			x, y = uint64(uint32(a)), uint64(uint32(b))
		}
		lt, eq = x < y, x == y
	}
	switch cmp {
	case isa.EQ:
		return eq
	case isa.NE:
		return !eq
	case isa.LT:
		return lt
	case isa.LE:
		return lt || eq
	case isa.GT:
		return !lt && !eq
	case isa.GE:
		return !lt
	default:
		return false
	}
}

// evalScalar executes the non-memory, non-add scalar opcodes for one lane.
func evalScalar(sm *smState, w *warp, in isa.Instr, l int) (uint64, error) {
	a := sm.operand(w, in.Srcs[0], l)
	var b, c uint64
	if in.Op.NumSrcs() >= 2 {
		b = sm.operand(w, in.Srcs[1], l)
	}
	if in.Op.NumSrcs() >= 3 && in.Op != isa.OpSelp {
		c = sm.operand(w, in.Srcs[2], l)
	}
	ty := in.Type

	// Float helpers.
	fa := func(v uint64) float64 {
		if ty == isa.F32 {
			return float64(f32fromBits(uint32(v)))
		}
		return f64fromBits(v)
	}
	enc := func(v float64) uint64 {
		if ty == isa.F32 {
			return uint64(f32bits(float32(v)))
		}
		return f64bits(v)
	}

	switch in.Op {
	case isa.OpMov:
		return a, nil
	case isa.OpIMin, isa.OpIMax:
		amin := a < b
		if ty.IsSigned() {
			if ty == isa.S32 {
				amin = int32(uint32(a)) < int32(uint32(b))
			} else {
				amin = int64(a) < int64(b)
			}
		} else if ty == isa.U32 {
			amin = uint32(a) < uint32(b)
		}
		if (in.Op == isa.OpIMin) == amin {
			return a, nil
		}
		return b, nil
	case isa.OpAnd:
		return a & b, nil
	case isa.OpOr:
		return a | b, nil
	case isa.OpXor:
		return a ^ b, nil
	case isa.OpNot:
		return ^a, nil
	case isa.OpShl:
		return a << (b & 63), nil
	case isa.OpShr:
		if ty.IsSigned() {
			if ty == isa.S32 {
				return uint64(int32(uint32(a)) >> (b & 31)), nil
			}
			return uint64(int64(a) >> (b & 63)), nil
		}
		if ty == isa.U32 {
			return uint64(uint32(a) >> (b & 31)), nil
		}
		return a >> (b & 63), nil
	case isa.OpAbs:
		if ty == isa.S32 {
			v := int32(uint32(a))
			if v < 0 {
				v = -v
			}
			return uint64(v), nil
		}
		v := int64(a)
		if v < 0 {
			v = -v
		}
		return uint64(v), nil
	case isa.OpSelp:
		if w.pred(isa.PReg(in.Srcs[2].Reg), l) {
			return a, nil
		}
		return b, nil
	case isa.OpCvt:
		return convert(isa.Type(in.Srcs[1].Imm), ty, a), nil
	case isa.OpIMul:
		if ty == isa.S32 || ty == isa.U32 {
			return uint64(uint32(a) * uint32(b)), nil
		}
		return a * b, nil
	case isa.OpIMad:
		if ty == isa.S32 || ty == isa.U32 {
			return uint64(uint32(a)*uint32(b) + uint32(c)), nil
		}
		return a*b + c, nil
	case isa.OpIDiv, isa.OpIRem:
		if b == 0 || (ty == isa.S32 && uint32(b) == 0) || (ty == isa.U32 && uint32(b) == 0) {
			return 0, fmt.Errorf("division by zero")
		}
		switch ty {
		case isa.S32:
			x, y := int32(uint32(a)), int32(uint32(b))
			if in.Op == isa.OpIDiv {
				return uint64(uint32(x / y)), nil
			}
			return uint64(uint32(x % y)), nil
		case isa.U32:
			if in.Op == isa.OpIDiv {
				return uint64(uint32(a) / uint32(b)), nil
			}
			return uint64(uint32(a) % uint32(b)), nil
		case isa.S64:
			if in.Op == isa.OpIDiv {
				return uint64(int64(a) / int64(b)), nil
			}
			return uint64(int64(a) % int64(b)), nil
		default:
			if in.Op == isa.OpIDiv {
				return a / b, nil
			}
			return a % b, nil
		}
	case isa.OpFMul:
		return enc(fa(a) * fa(b)), nil
	case isa.OpFFma:
		return enc(fa(a)*fa(b) + fa(c)), nil
	case isa.OpFDiv:
		return enc(fa(a) / fa(b)), nil
	case isa.OpFMin:
		return enc(math.Min(fa(a), fa(b))), nil
	case isa.OpFMax:
		return enc(math.Max(fa(a), fa(b))), nil
	case isa.OpFNeg:
		return enc(-fa(a)), nil
	case isa.OpFAbs:
		return enc(math.Abs(fa(a))), nil
	case isa.OpSqrt:
		return enc(math.Sqrt(fa(a))), nil
	case isa.OpRsqrt:
		return enc(1 / math.Sqrt(fa(a))), nil
	case isa.OpSin:
		return enc(math.Sin(fa(a))), nil
	case isa.OpCos:
		return enc(math.Cos(fa(a))), nil
	case isa.OpExp2:
		return enc(math.Exp2(fa(a))), nil
	case isa.OpLog2:
		return enc(math.Log2(fa(a))), nil
	case isa.OpRcp:
		return enc(1 / fa(a)), nil
	default:
		return 0, fmt.Errorf("unimplemented opcode %v", in.Op)
	}
}

// convert implements CVT between the numeric types via the natural Go
// conversions.
func convert(from, to isa.Type, v uint64) uint64 {
	// Decode source to a canonical pair (i int64, f float64, isF bool).
	var f float64
	var i int64
	isF := false
	switch from {
	case isa.F32:
		f, isF = float64(f32fromBits(uint32(v))), true
	case isa.F64:
		f, isF = f64fromBits(v), true
	case isa.S32:
		i = int64(int32(uint32(v)))
	case isa.U32:
		i = int64(uint32(v))
	case isa.S64:
		i = int64(v)
	default:
		i = int64(v)
	}
	switch to {
	case isa.F32:
		if isF {
			return uint64(f32bits(float32(f)))
		}
		return uint64(f32bits(float32(i)))
	case isa.F64:
		if isF {
			return f64bits(f)
		}
		return f64bits(float64(i))
	default:
		if isF {
			i = int64(f)
		}
		return truncate(to, uint64(i))
	}
}
