package gpusim

import (
	"strings"
	"testing"

	"st2gpu/internal/isa"
)

// Failure injection: the simulator must detect pathological kernels and
// report them as errors rather than hanging or corrupting state.

func TestInfiniteLoopTripsMaxCycles(t *testing.T) {
	b := isa.NewBuilder("spin")
	b.Label("forever")
	b.Bra("forever")
	b.Exit()
	prog := b.MustBuild()

	cfg := DefaultConfig()
	cfg.NumSMs = 1
	cfg.MaxCycles = 20000
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Launch(&Kernel{Program: prog, GridDim: 1, BlockDim: 32})
	if err == nil || !strings.Contains(err.Error(), "cycles") {
		t.Fatalf("infinite loop should trip MaxCycles, got %v", err)
	}
}

func TestDivergentBarrierDeadlocks(t *testing.T) {
	// Half the threads exit before the barrier... that is legal (exited
	// threads are excluded). A true deadlock needs threads waiting at a
	// barrier that can never be satisfied: a thread spinning forever while
	// its siblings wait. Build: odd threads loop forever, even threads hit
	// the barrier.
	b := isa.NewBuilder("deadlock")
	tid := b.Reg()
	bit := b.Reg()
	p := b.PredReg()
	b.MovSpecial(tid, isa.SRegTid)
	b.And(isa.U32, bit, isa.R(tid), isa.Imm(1))
	b.Setp(isa.EQ, isa.U32, p, isa.R(bit), isa.Imm(0))
	b.BraTo("even", p, false)
	b.Label("spin")
	b.Bra("spin")
	b.Label("even")
	b.Bar()
	b.Exit()
	prog := b.MustBuild()

	cfg := DefaultConfig()
	cfg.NumSMs = 1
	cfg.MaxCycles = 20000
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = d.Launch(&Kernel{Program: prog, GridDim: 1, BlockDim: 64})
	if err == nil {
		t.Fatal("divergent barrier + spin should fail, not hang")
	}
}

func TestBarrierWithExitedThreadsReleases(t *testing.T) {
	// Threads above 16 exit early; the rest barrier twice. Must complete.
	b := isa.NewBuilder("partialbar")
	tid := b.Reg()
	p := b.PredReg()
	b.MovSpecial(tid, isa.SRegTid)
	b.Setp(isa.GE, isa.U32, p, isa.R(tid), isa.Imm(16))
	b.Exit().Guarded(p, false)
	b.Bar()
	b.Bar()
	b.Exit()
	prog := b.MustBuild()

	cfg := DefaultConfig()
	cfg.NumSMs = 1
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(&Kernel{Program: prog, GridDim: 2, BlockDim: 64}); err != nil {
		t.Fatalf("barrier with exited threads should release: %v", err)
	}
}

func TestSharedMemoryOutOfBounds(t *testing.T) {
	b := isa.NewBuilder("shmoob")
	r := b.Reg()
	_ = b.Shared(64)
	b.Mov(isa.U64, r, isa.Imm(1<<20))
	b.Ld(isa.Shared, isa.U32, r, isa.R(r))
	b.Exit()
	prog := b.MustBuild()
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(&Kernel{Program: prog, GridDim: 1, BlockDim: 32}); err == nil {
		t.Fatal("out-of-bounds shared access should fail the launch")
	}
}

func TestParamOutOfBounds(t *testing.T) {
	b := isa.NewBuilder("paramoob")
	r := b.Reg()
	b.Ld(isa.Param, isa.U64, r, isa.Imm(64))
	b.Exit()
	prog := b.MustBuild()
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(&Kernel{Program: prog, GridDim: 1, BlockDim: 32, Params: []uint64{1}}); err == nil {
		t.Fatal("param read past the buffer should fail")
	}
}

// A kernel whose threads all exit immediately must terminate cleanly and
// report zero adder activity.
func TestImmediateExit(t *testing.T) {
	b := isa.NewBuilder("empty")
	b.Exit()
	prog := b.MustBuild()
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := d.Launch(&Kernel{Program: prog, GridDim: 4, BlockDim: 256})
	if err != nil {
		t.Fatal(err)
	}
	if rs.MispredictionRate() != 0 {
		t.Error("no adds executed, no mispredictions possible")
	}
	if rs.ThreadInstrs[isa.FUCtrl] != 4*256 {
		t.Errorf("ctrl thread instrs = %d, want one exit per thread", rs.ThreadInstrs[isa.FUCtrl])
	}
}
