package gpusim

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"st2gpu/internal/circuit"
	"st2gpu/internal/core"
	"st2gpu/internal/isa"
	"st2gpu/internal/metrics"
	"st2gpu/internal/obs"
	"st2gpu/internal/speculate"
	"st2gpu/internal/stats"
)

// Kernel is a launch request: a validated program, its grid geometry, and
// the parameter buffer kernels read through the Param space.
type Kernel struct {
	Program  *isa.Program
	GridDim  int // blocks
	BlockDim int // threads per block
	Params   []uint64
}

// serializeParams renders the param buffer once per launch; every SM's
// param-space loads index into the shared read-only result.
func (k *Kernel) serializeParams() []byte {
	buf := make([]byte, 8*len(k.Params))
	for i, p := range k.Params {
		binary.LittleEndian.PutUint64(buf[i*8:], p)
	}
	return buf
}

// paramLoad reads size (4 or 8) bytes at off from a serialized param
// buffer. The size is validated before the bounds check so that a bounds
// check passing for a smaller size can never let the 8-byte read run past
// the buffer.
func paramLoad(buf []byte, off, size uint64) (uint64, error) {
	if size != 4 && size != 8 {
		return 0, fmt.Errorf("gpusim: unsupported param access size %d", size)
	}
	if off+size > uint64(len(buf)) || off+size < off {
		return 0, fmt.Errorf("gpusim: param read [%#x,%#x) outside %d-byte param buffer",
			off, off+size, len(buf))
	}
	if size == 4 {
		return uint64(binary.LittleEndian.Uint32(buf[off:])), nil
	}
	return binary.LittleEndian.Uint64(buf[off:]), nil
}

// Validate checks the launch geometry.
func (k *Kernel) Validate() error {
	if k.Program == nil {
		return fmt.Errorf("gpusim: kernel has no program")
	}
	if err := k.Program.Validate(); err != nil {
		return err
	}
	if k.GridDim <= 0 || k.BlockDim <= 0 {
		return fmt.Errorf("gpusim: bad launch geometry %d×%d", k.GridDim, k.BlockDim)
	}
	if k.BlockDim > 1024 {
		return fmt.Errorf("gpusim: block dim %d exceeds 1024", k.BlockDim)
	}
	return nil
}

// WarpAddOp is one lane's effective adder operation within a traced warp
// instruction.
type WarpAddOp struct {
	Active bool
	EA, EB uint64 // effective operands (post subtraction transform)
	Cin0   uint
	Sum    uint64 // exact result
}

// AddTracer observes every executed warp-level adder operation (integer
// add/sub and the FP mantissa additions), after execution, with all 32
// lanes delivered together. Warp-synchronous delivery matters: hardware
// predicts every lane of a warp from the *same* pre-update history state,
// and meters that serialize lanes would overstate shared-history designs.
//
// Installing a live tracer forces Launch onto the sequential (one-worker)
// path, because tracers observe a single globally ordered stream and are
// not required to be thread-safe. That constraint is kept ONLY for legacy
// third-party tracers: all built-in meters (trace.CorrMeter,
// trace.DSEMeter, value traces, …) should instead consume a Recording
// captured via SetRecorder, which records in parallel — one lock-free
// shard per SM, folded in SM-ID order — and replays the bit-identical
// stream any number of times without re-simulating.
type AddTracer interface {
	TraceWarpAdds(unit core.UnitKind, pc, gtidBase uint32, ops *[32]WarpAddOp)
}

// Device is the simulated GPU.
type Device struct {
	cfg    Config
	mem    *Memory
	prices map[core.UnitKind]core.EnergyParams
	tracer AddTracer
	rec    *Recorder
	// l2Stats accumulates the per-SM L2 shard counters across launches
	// (the device-level cumulative view RunStats.L2 reports). Written
	// only at fold time, after all SM workers have joined.
	l2Stats CacheStats

	// met publishes launch activity into an installed metrics.Registry
	// (nil: disabled). timings holds the previous Launch's wall-clock
	// phase breakdown; both are launch-serial like the rest of Device.
	met     *deviceMetrics
	timings PhaseTimings

	// obs receives setup/simulate/fold spans per launch (nil: disabled).
	// Like timings, spans are observability-only: nothing they carry
	// feeds back into RunStats.
	obs *obs.Tracer
}

// SetObs installs (or clears, with nil) the span tracer. Every Launch
// then emits a gpusim.launch span with setup/simulate/fold children;
// span data never influences simulation results, so tracing composes
// with the parallel launch path and any worker count.
func (d *Device) SetObs(tr *obs.Tracer) { d.obs = tr }

// LaunchTimings returns the wall-clock phase breakdown of the most
// recent Launch (Verify left zero for the caller to fill). Launches are
// serial per device, so this is simply "the last launch".
func (d *Device) LaunchTimings() PhaseTimings { return d.timings }

// SetTracer installs (or clears, with nil) the adder-operation observer.
func (d *Device) SetTracer(t AddTracer) { d.tracer = t }

// SetRecorder installs (or clears, with nil) a warp-add stream recorder.
// Unlike SetTracer it leaves the parallel launch path enabled; each SM
// records into its own shard and Launch folds them in SM-ID order. When a
// metrics registry is installed, each launch publishes the bytes it
// recorded on the "sim.record_bytes" gauge.
func (d *Device) SetRecorder(r *Recorder) { d.rec = r }

// New builds a device from the configuration.
func New(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// L2 shards are built per SM at launch; validate the geometry now so a
	// bad config fails at New, not mid-launch.
	if _, err := NewCache(cfg.L2KB, cfg.LineBytes, cfg.L2Ways); err != nil {
		return nil, err
	}
	tech := circuit.SAED90()
	prices := make(map[core.UnitKind]core.EnergyParams)
	for _, kind := range []core.UnitKind{core.ALU, core.ALU32, core.FPU, core.DPU} {
		c, err := kind.AdderConfig(cfg.SliceBits)
		if err != nil {
			return nil, err
		}
		p, err := core.DeriveEnergyParams(tech, c.Width, cfg.SliceBits)
		if err != nil {
			return nil, err
		}
		prices[kind] = p
	}
	return &Device{
		cfg:    cfg,
		mem:    NewMemory(cfg.GlobalMemBytes),
		prices: prices,
	}, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Memory exposes device global memory for host staging.
func (d *Device) Memory() *Memory { return d.mem }

// Prices returns the per-unit energy pricing.
func (d *Device) Prices() map[core.UnitKind]core.EnergyParams { return d.prices }

// latency returns (producer latency, FU occupancy) in cycles for an
// opcode; memory ops are priced in execMemory instead.
func (d *Device) latency(op isa.Opcode) (lat, occ uint64) {
	switch op.Class() {
	case isa.FUAluAdd, isa.FUAluOther:
		return 4, 2
	case isa.FUIntMul:
		return 5, 2
	case isa.FUIntDiv:
		// Hardware expands division into an instruction sequence.
		return 24, 8
	case isa.FUFpAdd, isa.FUFpMul:
		if op == isa.OpFFma {
			return 4, 2
		}
		return 4, 2
	case isa.FUFpDiv:
		return 44, 16
	case isa.FUSfu:
		return 20, 8
	case isa.FUMem:
		return 4, 2 // overridden by execMemory's latency
	default:
		return 1, 1
	}
}

// RunStats is the outcome of one kernel launch.
type RunStats struct {
	Kernel string
	Mode   AdderMode

	Cycles uint64 // max over SMs (they run concurrently)

	ThreadInstrs map[isa.FUClass]uint64
	WarpInstrs   map[isa.FUClass]uint64

	// ST² unit statistics, merged across SMs, by unit kind.
	Units map[core.UnitKind]core.UnitStats
	// BaselineAdderOps counts thread-level add/sub ops per unit kind when
	// running baseline adders (for pricing).
	BaselineAdderOps map[core.UnitKind]uint64

	CRF speculate.CRFStats

	// PerSMCycles is every used SM's cycle count in SM-ID order; Cycles
	// is its maximum. The spread is the launch's load imbalance.
	PerSMCycles []uint64

	// RecomputeHist merges every unit's slices-recomputed-per-
	// misprediction histogram (units with fewer slices clamp into the
	// shared bucket range). MispredLanesHist counts warp-level add ops by
	// how many of their lanes mispredicted (0..32).
	RecomputeHist    *stats.Histogram
	MispredLanesHist *stats.Histogram

	RegReads, RegWrites uint64
	SharedAccesses      uint64
	ParamAccesses       uint64
	L1                  CacheStats
	L2                  CacheStats
	DRAMAccesses        uint64
	AtomicLaneOps       uint64
	ST2StallCycles      uint64

	SMsUsed int
}

// TotalThreadInstrs sums the dynamic thread-level instruction count.
func (r *RunStats) TotalThreadInstrs() uint64 {
	var t uint64
	for _, v := range r.ThreadInstrs {
		t += v
	}
	return t
}

// AddFraction returns the fraction of dynamic thread instructions that
// are ALU or FPU add/sub — the Figure 1 metric (DPU adds included with
// FPU adds, as in the paper's "FPU Add" bucket).
func (r *RunStats) AddFraction() (aluAdd, fpuAdd float64) {
	t := float64(r.TotalThreadInstrs())
	if t == 0 {
		return 0, 0
	}
	return float64(r.ThreadInstrs[isa.FUAluAdd]) / t, float64(r.ThreadInstrs[isa.FUFpAdd]) / t
}

// SIMDEfficiency returns executed thread-slots over issued warp-slots
// (thread instrs / (warp instrs × 32)): 1.0 means no divergence or
// partial-warp waste.
func (r *RunStats) SIMDEfficiency() float64 {
	var warp uint64
	for _, v := range r.WarpInstrs {
		warp += v
	}
	if warp == 0 {
		return 0
	}
	return float64(r.TotalThreadInstrs()) / float64(warp*32)
}

// CycleImbalance returns (max−min)/max over the used SMs' cycle counts:
// 0 means perfectly balanced, 1 means at least one SM finished instantly
// while another ran the critical path.
func (r *RunStats) CycleImbalance() float64 {
	if len(r.PerSMCycles) == 0 || r.Cycles == 0 {
		return 0
	}
	min := r.PerSMCycles[0]
	for _, c := range r.PerSMCycles[1:] {
		if c < min {
			min = c
		}
	}
	return float64(r.Cycles-min) / float64(r.Cycles)
}

// MispredictionRate returns the overall thread misprediction rate across
// all ST² units.
func (r *RunStats) MispredictionRate() float64 {
	var mis, tot uint64
	for _, u := range r.Units {
		mis += u.ThreadMispredicts
		tot += u.ThreadOps
	}
	if tot == 0 {
		return 0
	}
	return float64(mis) / float64(tot)
}

// Launch runs the kernel to completion and returns its statistics.
//
// SMs are simulated concurrently by a bounded worker pool of
// min(NumSMs, GOMAXPROCS) goroutines (Config.ParallelSMs overrides; 1
// forces the sequential debugging path). Every SM owns its complete
// simulation state — warps, L1, L2 shard, ST² units, CRF — so per-SM
// execution is deterministic regardless of worker count; per-SM
// statistics are folded into RunStats in SM-ID order after all workers
// join, and the reported Cycles is the maximum over SMs, modeling their
// concurrent execution. Global memory is the one shared structure: loads
// and stores go through striped locks and cross-SM atomics commit their
// read-modify-write under the stripe lock, so the only cross-SM ordering
// a race-free kernel can observe is the (commutative) accumulation order
// of its atomics. Installing an AddTracer forces the sequential path:
// tracers observe a single globally ordered warp-synchronous stream and
// are not required to be thread-safe (a legacy constraint — see
// AddTracer). An installed Recorder does NOT serialize the launch: each
// SM records into its own shard and the shards fold in SM-ID order, so
// the recorded stream is bit-identical at any worker count.
func (d *Device) Launch(k *Kernel) (*RunStats, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	launchSpan := d.obs.Begin("gpusim.launch",
		obs.Str("kernel", k.Program.Name),
		obs.Int("grid", int64(k.GridDim)),
		obs.Int("block", int64(k.BlockDim)))
	setupSpan := launchSpan.Child("setup")
	tSetup := time.Now() //st2:det-ok wall-clock phase timing; feeds runlog timings only, never simulation results
	run := &RunStats{
		Kernel:           k.Program.Name,
		Mode:             d.cfg.AdderMode,
		ThreadInstrs:     make(map[isa.FUClass]uint64),
		WarpInstrs:       make(map[isa.FUClass]uint64),
		Units:            make(map[core.UnitKind]core.UnitStats),
		BaselineAdderOps: make(map[core.UnitKind]uint64),
		RecomputeHist:    stats.NewHistogram(d.maxSlices()),
		MispredLanesHist: stats.NewHistogram(core.WarpSize),
	}

	// Distribute blocks round-robin over SMs.
	numSMs := d.cfg.NumSMs
	if k.GridDim < numSMs {
		numSMs = k.GridDim
	}
	run.SMsUsed = numSMs

	params := k.serializeParams()
	sms := make([]*smState, numSMs)
	for smID := range sms {
		sm, err := d.newSM(smID, k, params)
		if err != nil {
			return nil, err
		}
		for b := smID; b < k.GridDim; b += numSMs {
			sm.blockQueue = append(sm.blockQueue, b)
		}
		if d.met != nil {
			sm.shard = d.met.reg.NewShard()
		}
		if d.rec != nil {
			sm.rec = d.rec.newShard()
		}
		sms[smID] = sm
	}
	d.timings = PhaseTimings{Setup: clampPhase(time.Since(tSetup))} //st2:det-ok wall-clock phase timing; feeds runlog timings only, never simulation results
	setupSpan.End()

	workers := d.cfg.smWorkers(numSMs)
	if d.tracer != nil {
		workers = 1
	}
	simSpan := launchSpan.Child("simulate",
		obs.Int("sms", int64(numSMs)),
		obs.Int("workers", int64(workers)))
	tSim := time.Now() //st2:det-ok wall-clock phase timing; feeds runlog timings only, never simulation results
	if workers == 1 {
		for _, sm := range sms {
			if err := sm.run(); err != nil {
				return nil, err
			}
		}
	} else {
		errs := make([]error, numSMs)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= numSMs {
						return
					}
					errs[i] = sms[i].run()
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	d.timings.Simulate = clampPhase(time.Since(tSim)) //st2:det-ok wall-clock phase timing; feeds runlog timings only, never simulation results
	simSpan.End()

	foldSpan := launchSpan.Child("fold")
	tFold := time.Now() //st2:det-ok wall-clock phase timing; feeds runlog timings only, never simulation results
	for _, sm := range sms {
		d.foldSM(run, sm)
	}
	if d.rec != nil {
		recSpan := foldSpan.Child("record.fold")
		shards := make([]*recShard, len(sms))
		for i, sm := range sms {
			shards[i] = sm.rec
		}
		recBytes := d.rec.fold(shards)
		if d.met != nil {
			// Registered lazily so plain (non-recording) runs keep their
			// registry snapshot — and the runlog golden files — unchanged.
			d.met.reg.Gauge("sim.record_bytes").Set(float64(recBytes))
		}
		recSpan.Add(obs.Int("bytes", int64(recBytes)))
		recSpan.End()
	}
	d.foldMetrics(run, sms)
	d.timings.Fold = clampPhase(time.Since(tFold)) //st2:det-ok wall-clock phase timing; feeds runlog timings only, never simulation results
	foldSpan.End()
	launchSpan.Add(obs.Int("cycles", int64(run.Cycles)))
	launchSpan.End()
	return run, nil
}

// foldMetrics publishes the launch into the installed metrics registry:
// per-SM shards fold in SM-ID order, then launch-level values are added
// directly (single-threaded).
func (d *Device) foldMetrics(run *RunStats, sms []*smState) {
	if d.met == nil {
		return
	}
	shards := make([]*metrics.Shard, len(sms))
	for i, sm := range sms {
		shards[i] = sm.shard
	}
	d.met.reg.Fold(shards...)
	d.publishLaunch(run)
}

func (d *Device) newSM(id int, k *Kernel, params []byte) (*smState, error) {
	l1, err := NewCache(d.cfg.L1KB, d.cfg.LineBytes, d.cfg.L1Ways)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache(d.cfg.L2KB, d.cfg.LineBytes, d.cfg.L2Ways)
	if err != nil {
		return nil, err
	}
	sm := &smState{
		dev:              d,
		id:               id,
		lastWarp:         -1,
		kernel:           k,
		params:           params,
		l1:               l1,
		l2:               l2,
		liveBlocks:       make(map[int]int),
		barrierArrived:   make(map[int]int),
		baselineAdderOps: make(map[core.UnitKind]uint64),
		stats:            newSMStats(),
	}
	// Execution pipe pools (Volta-like counts).
	sm.pools[poolALU] = make([]uint64, d.cfg.SchedulersPerSM)
	sm.pools[poolFP32] = make([]uint64, d.cfg.SchedulersPerSM)
	sm.pools[poolFP64] = make([]uint64, 2)
	sm.pools[poolSFU] = make([]uint64, 1)
	sm.pools[poolMEM] = make([]uint64, 2)

	for _, mk := range []struct {
		kind core.UnitKind
		dst  **core.Unit
	}{
		{core.ALU32, &sm.alu32},
		{core.ALU, &sm.alu64},
		{core.FPU, &sm.fpu},
		{core.DPU, &sm.dpu},
	} {
		u, err := core.NewUnit(mk.kind, d.cfg.SliceBits, d.prices[mk.kind])
		if err != nil {
			return nil, err
		}
		*mk.dst = u
	}

	if d.cfg.AdderMode == ST2Adders {
		if d.cfg.UseCRF {
			entries := d.cfg.CRFEntries
			if entries == 0 {
				entries = 16
			}
			crf, err := speculate.NewCRF(entries, 32, 7, d.cfg.Seed+int64(id))
			if err != nil {
				return nil, err
			}
			sm.crf = crf
			sm.spec = &core.CRFSpeculator{
				CRF:         sm.crf,
				Geom:        sm.alu64.Geometry(),
				DisablePeek: d.cfg.DisablePeek,
			}
		} else {
			p, err := speculate.NewDesign(d.cfg.Speculation, sm.alu64.Geometry())
			if err != nil {
				return nil, err
			}
			sm.spec = &core.PredictorSpeculator{P: p}
		}
	}
	return sm, nil
}

// foldSM merges one finished SM's statistics into the run. Callers fold
// SMs in SM-ID order after every worker has joined, so the result is
// identical to the sequential path's fold.
func (d *Device) foldSM(run *RunStats, sm *smState) {
	if sm.cycle > run.Cycles {
		run.Cycles = sm.cycle
	}
	// The per-SM counters are dense arrays; only non-zero classes land in
	// the RunStats maps so reports (and the runlog manifest) keep seeing
	// exactly the classes the kernel executed.
	for c, v := range sm.stats.ThreadInstrs {
		if v != 0 {
			run.ThreadInstrs[isa.FUClass(c)] += v
		}
	}
	for c, v := range sm.stats.WarpInstrs {
		if v != 0 {
			run.WarpInstrs[isa.FUClass(c)] += v
		}
	}
	for _, u := range sm.units() {
		agg := run.Units[u.Kind]
		agg.Merge(u.Stats())
		run.Units[u.Kind] = agg
	}
	for kind, n := range sm.baselineAdderOps {
		run.BaselineAdderOps[kind] += n
	}
	for _, u := range sm.units() {
		us := u.Stats()
		run.RecomputeHist.MergeClamped(us.RecomputeHistogram)
		run.MispredLanesHist.MergeClamped(us.MispredLanesHistogram)
	}
	run.PerSMCycles = append(run.PerSMCycles, sm.cycle)
	if sm.crf != nil {
		sm.crf.Flush()
		run.CRF.Merge(sm.crf.Stats())
	}
	run.RegReads += sm.stats.RegReads
	run.RegWrites += sm.stats.RegWrites
	run.SharedAccesses += sm.stats.SharedAccesses
	run.ParamAccesses += sm.stats.ParamAccesses
	l1 := sm.l1.Stats()
	run.L1.Accesses += l1.Accesses
	run.L1.Hits += l1.Hits
	run.L1.Misses += l1.Misses
	run.DRAMAccesses += sm.stats.DRAMAccesses
	run.AtomicLaneOps += sm.stats.AtomicLaneOps
	run.ST2StallCycles += sm.stats.ST2StallCycles
	d.l2Stats.Merge(sm.l2.Stats())
	run.L2 = d.l2Stats // cumulative; device-level
}
