package gpusim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// corruptRecording builds a wire-format recording stream by hand so each
// corruption case controls the exact bytes under test.
func corruptHeader(ops, lanes, nsegs uint64) []byte {
	var b []byte
	b = append(b, recMagic...)
	b = binary.AppendUvarint(b, ops)
	b = binary.AppendUvarint(b, lanes)
	b = binary.AppendUvarint(b, nsegs)
	return b
}

// TestReadRecordingCorruptInputs is the table-driven robustness suite
// for the recording reader: every corruption fails with an error (never
// a panic or a giant allocation), and budget violations fail with the
// named ErrRecordingTooBig before any length-sized allocation.
func TestReadRecordingCorruptInputs(t *testing.T) {
	valid := serializeRecording(t, recordRun(t, barrierKernel(t), 0, 8, 64, nil))

	oversized := corruptHeader(1, 1, 1)
	oversized = binary.AppendUvarint(oversized, 1<<62) // segLen far past any budget

	declared := corruptHeader(1, 1, 1)
	declared = binary.AppendUvarint(declared, 1<<20) // 1 MiB declared, no payload

	truncatedSeg := corruptHeader(1, 1, 1)
	truncatedSeg = binary.AppendUvarint(truncatedSeg, 64)
	truncatedSeg = append(truncatedSeg, make([]byte, 16)...) // only 16 of 64 bytes

	// Counts that cannot fit the payload actually present: a lying op or
	// lane count must not survive to size a decoder preallocation.
	lyingOps := corruptHeader(1<<40, 8, 1)
	lyingOps = binary.AppendUvarint(lyingOps, 8)
	lyingOps = append(lyingOps, make([]byte, 8)...)
	lyingLanes := corruptHeader(1, 1<<40, 1)
	lyingLanes = binary.AppendUvarint(lyingLanes, 8)
	lyingLanes = append(lyingLanes, make([]byte, 8)...)

	cases := []struct {
		name    string
		data    []byte
		max     uint64
		wantBig bool
	}{
		{name: "empty", data: nil},
		{name: "truncated magic", data: valid[:3]},
		{name: "bad magic", data: []byte("not a recording stream")},
		{name: "truncated header", data: valid[:len(recMagic)+1]},
		{name: "truncated mid-stream", data: valid[:len(valid)/2]},
		{name: "oversized segLen", data: oversized, wantBig: true},
		{name: "declared beyond budget", data: declared, max: 1 << 10, wantBig: true},
		{name: "truncated segment payload", data: truncatedSeg},
		{name: "op count beyond payload", data: lyingOps},
		{name: "lane count beyond payload", data: lyingLanes},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadRecordingLimit(bytes.NewReader(tc.data), tc.max)
			if err == nil {
				t.Fatal("corrupt recording accepted")
			}
			if tc.wantBig && !errors.Is(err, ErrRecordingTooBig) {
				t.Fatalf("error = %v, want ErrRecordingTooBig", err)
			}
			if !tc.wantBig && errors.Is(err, ErrRecordingTooBig) {
				t.Fatalf("error = %v, should not be ErrRecordingTooBig", err)
			}
		})
	}

	t.Run("trailing garbage after valid stream", func(t *testing.T) {
		// The reader consumes exactly the declared stream; trailing bytes
		// are left for the caller (Set streams append recordings
		// back-to-back), so the read itself must still succeed and
		// round-trip.
		withTrailer := append(append([]byte(nil), valid...), "garbage"...)
		rec, err := ReadRecording(bytes.NewReader(withTrailer))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(valid, serializeRecording(t, rec)) {
			t.Error("recording with trailing garbage did not round-trip the valid prefix")
		}
	})
}

// TestReadRecordingDefaultBudget pins that the no-limit entry point is
// bounded: ReadRecording defaults to DefaultRecordMaxBytes, so a stream
// declaring a segment past 1 GiB fails loudly instead of allocating.
func TestReadRecordingDefaultBudget(t *testing.T) {
	over := corruptHeader(1, 1, 1)
	over = binary.AppendUvarint(over, DefaultRecordMaxBytes+1)
	if _, err := ReadRecording(bytes.NewReader(over)); !errors.Is(err, ErrRecordingTooBig) {
		t.Fatalf("ReadRecording error = %v, want ErrRecordingTooBig under the default budget", err)
	}
}

// TestReadRecordingLimitRoundTrip checks a legitimate recording reads
// back under its own size as the budget, and fails once the budget
// drops below the payload.
func TestReadRecordingLimitRoundTrip(t *testing.T) {
	rec := recordRun(t, barrierKernel(t), 0, 8, 64, nil)
	raw := serializeRecording(t, rec)

	back, err := ReadRecordingLimit(bytes.NewReader(raw), uint64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, serializeRecording(t, back)) {
		t.Error("round-trip under exact budget is not byte-equal")
	}

	if _, err := ReadRecordingLimit(bytes.NewReader(raw), 8); !errors.Is(err, ErrRecordingTooBig) {
		t.Errorf("tiny budget error = %v, want ErrRecordingTooBig", err)
	}
}

// FuzzReadRecording drives the reader with arbitrary bytes under a small
// budget: it must never panic or over-allocate, and anything it accepts
// must re-serialize and read back identically.
func FuzzReadRecording(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a recording stream"))
	f.Add(corruptHeader(3, 4, 2))
	// Seed from a valid round-trip so the fuzzer starts inside the
	// format instead of rediscovering the magic.
	seedRec := recordRun(f, barrierKernel(f), 0, 8, 64, nil)
	var buf bytes.Buffer
	if _, err := seedRec.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])

	const budget = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := ReadRecordingLimit(bytes.NewReader(data), budget)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := rec.WriteTo(&out); err != nil {
			t.Fatalf("accepted recording failed to serialize: %v", err)
		}
		again, err := ReadRecordingLimit(bytes.NewReader(out.Bytes()), budget)
		if err != nil {
			t.Fatalf("accepted recording failed to read back: %v", err)
		}
		var out2 bytes.Buffer
		if _, err := again.WriteTo(&out2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Error("serialize/read/serialize is not a fixed point")
		}
	})
}
