package gpusim

import (
	"reflect"
	"sync/atomic"
	"testing"

	"st2gpu/internal/core"
	"st2gpu/internal/isa"
	"st2gpu/internal/metrics"
)

// Cross-checks for the parallel per-SM launch path: the worker count must
// not change a single statistic or architectural result. These tests are
// the ones `make check` runs under the race detector to keep the
// striped-lock design honest.

func parallelConfig(workers int, mode AdderMode) Config {
	cfg := DefaultConfig()
	cfg.NumSMs = 8
	cfg.ParallelSMs = workers
	cfg.AdderMode = mode
	return cfg
}

// atomicsKernel hammers four shared histogram bins from every block, so
// SMs running on different workers contend on the same global addresses.
func atomicsKernel(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("xatomics")
	gtid := b.Reg()
	bin := b.Reg()
	addr := b.Reg()
	b.MovSpecial(gtid, isa.SRegGtid)
	b.IRem(isa.U32, bin, isa.R(gtid), isa.Imm(4))
	b.IMad(isa.U64, addr, isa.R(bin), isa.Imm(4), isa.Imm(0x100))
	b.AtomAdd(isa.Global, isa.U32, isa.R(addr), isa.Imm(1))
	b.Exit()
	return b.MustBuild()
}

// barrierKernel reverses each block through shared memory (two barrier
// phases per block).
func barrierKernel(t testing.TB) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("xbarrier")
	tid := b.Reg()
	ntid := b.Reg()
	v := b.Reg()
	saddr := b.Reg()
	raddr := b.Reg()
	gaddr := b.Reg()
	rt := b.Reg()
	gtid := b.Reg()
	base := b.Shared(128 * 4)
	b.MovSpecial(tid, isa.SRegTid)
	b.MovSpecial(ntid, isa.SRegNTid)
	b.IMul(isa.U32, v, isa.R(tid), isa.R(tid))
	b.IMad(isa.U64, saddr, isa.R(tid), isa.Imm(4), isa.Imm(base))
	b.St(isa.Shared, isa.U32, isa.R(saddr), isa.R(v))
	b.Bar()
	b.ISub(isa.U32, rt, isa.R(ntid), isa.Imm(1))
	b.ISub(isa.U32, rt, isa.R(rt), isa.R(tid))
	b.IMad(isa.U64, raddr, isa.R(rt), isa.Imm(4), isa.Imm(base))
	b.Ld(isa.Shared, isa.U32, v, isa.R(raddr))
	b.MovSpecial(gtid, isa.SRegGtid)
	b.IMad(isa.U64, gaddr, isa.R(gtid), isa.Imm(4), isa.Imm(0x8000))
	b.St(isa.Global, isa.U32, isa.R(gaddr), isa.R(v))
	b.Exit()
	return b.MustBuild()
}

// fpKernel drives the FPU and DPU ST² paths (mantissa adds with a
// misprediction-prone dependent chain).
func fpKernel(t testing.TB) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("xfp")
	gtid := b.Reg()
	x := b.Reg()
	s := b.Reg()
	d64 := b.Reg()
	addr := b.Reg()
	b.MovSpecial(gtid, isa.SRegGtid)
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(0x1000))
	b.Ld(isa.Global, isa.F32, x, isa.R(addr))
	b.FMul(isa.F32, s, isa.R(x), isa.ImmF32(0.5))
	for i := 0; i < 6; i++ {
		b.FAdd(isa.F32, s, isa.R(s), isa.R(x))
		b.FSub(isa.F32, x, isa.R(x), isa.ImmF32(0.125))
	}
	b.Cvt(isa.F64, d64, isa.R(s), isa.F32)
	b.FAdd(isa.F64, d64, isa.R(d64), isa.ImmF64(0.5))
	b.Cvt(isa.F32, s, isa.R(d64), isa.F64)
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(0x40000))
	b.St(isa.Global, isa.F32, isa.R(addr), isa.R(s))
	b.Exit()
	return b.MustBuild()
}

// TestParallelMatchesSequential asserts Launch with the worker pool on
// (ParallelSMs=8, one goroutine per SM — forced explicitly so the pool
// runs even on single-core hosts where auto resolves to 1) and off
// (ParallelSMs=1) produces identical RunStats and memory contents on an
// atomics kernel, a barrier kernel, and an FP-heavy kernel. Because
// every SM owns its complete simulation state (including its L2 shard),
// equality is exact — no field, L2 included, is allowed to drift with
// the worker count.
func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name    string
		prog    *isa.Program
		grid    int
		block   int
		outAddr uint64
		outN    int
		setup   func(m *Memory) error
	}{
		{"atomics", atomicsKernel(t), 64, 64, 0x100, 4, nil},
		{"barrier", barrierKernel(t), 32, 128, 0x8000, 32 * 128, nil},
		{"fp", fpKernel(t), 32, 128, 0x40000, 32 * 128, func(m *Memory) error {
			in := make([]float32, 32*128)
			for i := range in {
				in[i] = float32(i%257) * 0.375
			}
			return m.WriteF32s(0x1000, in)
		}},
	}
	for _, mode := range []AdderMode{BaselineAdders, ST2Adders} {
		for _, tc := range cases {
			run := func(workers int) (*RunStats, []uint32) {
				d, err := New(parallelConfig(workers, mode))
				if err != nil {
					t.Fatal(err)
				}
				if tc.setup != nil {
					if err := tc.setup(d.Memory()); err != nil {
						t.Fatal(err)
					}
				}
				rs, err := d.Launch(&Kernel{Program: tc.prog, GridDim: tc.grid, BlockDim: tc.block})
				if err != nil {
					t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
				}
				out, err := d.Memory().ReadU32s(tc.outAddr, tc.outN)
				if err != nil {
					t.Fatal(err)
				}
				return rs, out
			}
			seqRS, seqOut := run(1)
			parRS, parOut := run(8)
			if !reflect.DeepEqual(seqRS, parRS) {
				t.Errorf("%s/%v: RunStats diverge between sequential and parallel:\nseq: %+v\npar: %+v",
					tc.name, mode, seqRS, parRS)
			}
			if !reflect.DeepEqual(seqOut, parOut) {
				t.Errorf("%s/%v: memory contents diverge between sequential and parallel", tc.name, mode)
			}
		}
	}
}

// TestMetricsFoldBitIdentical runs the same launch with a fresh metrics
// registry at several worker counts and requires identical snapshots:
// per-SM shards fold in SM-ID order and every folded value is a sum, so
// ParallelSMs must never change a single metric bit.
func TestMetricsFoldBitIdentical(t *testing.T) {
	prog := fpKernel(t)
	run := func(workers int) map[string]any {
		d, err := New(parallelConfig(workers, ST2Adders))
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.New()
		d.SetMetrics(reg)
		in := make([]float32, 32*128)
		for i := range in {
			in[i] = float32(i%257) * 0.375
		}
		if err := d.Memory().WriteF32s(0x1000, in); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Launch(&Kernel{Program: prog, GridDim: 32, BlockDim: 128}); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot()
	}
	seq := run(1)
	for _, workers := range []int{2, 8} {
		if par := run(workers); !reflect.DeepEqual(seq, par) {
			t.Errorf("metrics snapshot diverges at ParallelSMs=%d:\nseq: %v\npar: %v", workers, seq, par)
		}
	}
	if v, ok := seq["sim.launches"]; !ok || v.(uint64) != 1 {
		t.Errorf("sim.launches = %v, want 1", seq["sim.launches"])
	}
	if v := seq["sim.st2_thread_ops"].(uint64); v == 0 {
		t.Error("sim.st2_thread_ops is zero — shards not publishing")
	}
}

// TestRunStatsObservabilityFields checks the new RunStats surface on a
// real launch: per-SM cycles, the imbalance metric, and both
// misprediction histograms.
func TestRunStatsObservabilityFields(t *testing.T) {
	d, err := New(parallelConfig(0, ST2Adders))
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float32, 32*128)
	for i := range in {
		in[i] = float32(i%257) * 0.375
	}
	if err := d.Memory().WriteF32s(0x1000, in); err != nil {
		t.Fatal(err)
	}
	rs, err := d.Launch(&Kernel{Program: fpKernel(t), GridDim: 32, BlockDim: 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.PerSMCycles) != rs.SMsUsed {
		t.Fatalf("PerSMCycles has %d entries, want %d", len(rs.PerSMCycles), rs.SMsUsed)
	}
	var maxSM uint64
	for _, c := range rs.PerSMCycles {
		if c > maxSM {
			maxSM = c
		}
	}
	if maxSM != rs.Cycles {
		t.Errorf("max(PerSMCycles) = %d, Cycles = %d", maxSM, rs.Cycles)
	}
	if imb := rs.CycleImbalance(); imb < 0 || imb >= 1 {
		t.Errorf("CycleImbalance = %g outside [0,1)", imb)
	}
	if rs.MispredLanesHist == nil || rs.MispredLanesHist.Total() == 0 {
		t.Error("MispredLanesHist empty on an ST² FP launch")
	}
	var mispred uint64
	for _, u := range rs.Units {
		mispred += u.ThreadMispredicts
	}
	if mispred > 0 && rs.RecomputeHist.Total() != mispred {
		t.Errorf("RecomputeHist total %d != thread mispredicts %d",
			rs.RecomputeHist.Total(), mispred)
	}
	ph := d.LaunchTimings()
	if ph.Setup <= 0 || ph.Simulate <= 0 || ph.Fold <= 0 {
		t.Errorf("phase timings not all positive: %+v", ph)
	}
}

// TestParallelAtomicsLoseNoUpdates drives heavy cross-SM atomic
// contention through the parallel path and checks the exact final counts:
// a lost read-modify-write would show up as a short bin.
func TestParallelAtomicsLoseNoUpdates(t *testing.T) {
	d, err := New(parallelConfig(8, ST2Adders))
	if err != nil {
		t.Fatal(err)
	}
	const grid, block = 64, 256
	rs, err := d.Launch(&Kernel{Program: atomicsKernel(t), GridDim: grid, BlockDim: block})
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Memory().ReadU32s(0x100, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range out {
		if got != grid*block/4 {
			t.Errorf("bin %d: got %d, want %d (lost atomic updates)", i, got, grid*block/4)
		}
	}
	if rs.AtomicLaneOps != grid*block {
		t.Errorf("atomic lane ops = %d, want %d", rs.AtomicLaneOps, grid*block)
	}
}

// countingTracer counts trace callbacks; it is deliberately not
// thread-safe — installing a tracer must force the sequential path.
type countingTracer struct{ warps, lanes uint64 }

func (c *countingTracer) TraceWarpAdds(_ core.UnitKind, _, _ uint32, ops *[32]WarpAddOp) {
	c.warps++
	for l := range ops {
		if ops[l].Active {
			c.lanes++
		}
	}
}

func TestTracerForcesSequentialPath(t *testing.T) {
	run := func() (uint64, uint64) {
		d, err := New(parallelConfig(8, BaselineAdders))
		if err != nil {
			t.Fatal(err)
		}
		tr := &countingTracer{}
		d.SetTracer(tr)
		in := make([]float32, 32*128)
		for i := range in {
			in[i] = float32(i%257)*0.375 + 1
		}
		if err := d.Memory().WriteF32s(0x1000, in); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Launch(&Kernel{Program: fpKernel(t), GridDim: 32, BlockDim: 128}); err != nil {
			t.Fatal(err)
		}
		return tr.warps, tr.lanes
	}
	w1, l1 := run()
	w2, l2 := run()
	if w1 == 0 || l1 == 0 {
		t.Fatal("tracer observed nothing")
	}
	if w1 != w2 || l1 != l2 {
		t.Errorf("traced counts not deterministic: (%d,%d) vs (%d,%d)", w1, l1, w2, l2)
	}
}

func TestParallelSMsValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ParallelSMs = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative ParallelSMs should fail validation")
	}
	for _, w := range []int{0, 1, 3, 100} {
		cfg.ParallelSMs = w
		if err := cfg.Validate(); err != nil {
			t.Errorf("ParallelSMs=%d should validate: %v", w, err)
		}
	}
}

// TestParallelErrorPropagates injects an out-of-bounds access on one SM's
// blocks and checks the launch reports it instead of deadlocking a worker.
func TestParallelErrorPropagates(t *testing.T) {
	b := isa.NewBuilder("oneoob")
	gtid := b.Reg()
	addr := b.Reg()
	p := b.PredReg()
	b.MovSpecial(gtid, isa.SRegGtid)
	// Block 5's first thread reads far outside memory; everyone else is fine.
	b.Setp(isa.EQ, isa.U32, p, isa.R(gtid), isa.Imm(5*32))
	b.Mov(isa.U64, addr, isa.Imm(1<<40)).Guarded(p, false)
	b.Ld(isa.Global, isa.U32, addr, isa.R(addr)).Guarded(p, false)
	b.Exit()
	d, err := New(parallelConfig(8, BaselineAdders))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(&Kernel{Program: b.MustBuild(), GridDim: 16, BlockDim: 32}); err == nil {
		t.Fatal("out-of-bounds access on one SM must fail the whole launch")
	}
}

// TestMemoryAtomicAdd exercises the striped-lock RMW primitive directly,
// including spans that straddle a stripe boundary.
func TestMemoryAtomicAdd(t *testing.T) {
	m := NewMemory(1 << 20)
	if _, err := m.AtomicAdd(8, 4, 5); err != nil {
		t.Fatal(err)
	}
	old, err := m.AtomicAdd(8, 4, 3)
	if err != nil || old != 5 {
		t.Errorf("AtomicAdd old = %d, %v; want 5", old, err)
	}
	v, _ := m.Load(8, 4)
	if v != 8 {
		t.Errorf("final value %d, want 8", v)
	}
	// Straddles the 128-byte stripe boundary at 0x80.
	if _, err := m.AtomicAdd(0x80-4, 8, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AtomicAdd(1<<20-2, 4, 1); err == nil {
		t.Error("out-of-bounds AtomicAdd should fail")
	}
	if _, err := m.AtomicAdd(0, 3, 1); err == nil {
		t.Error("unsupported size should fail")
	}

	// Hammer one word from many goroutines; the race detector plus the
	// exact final count verify the RMW is indivisible.
	done := make(chan struct{})
	var launched atomic.Int32
	const workers, iters = 8, 1000
	for g := 0; g < workers; g++ {
		go func() {
			launched.Add(1)
			for i := 0; i < iters; i++ {
				if _, err := m.AtomicAdd(0x200, 8, 1); err != nil {
					t.Error(err)
					break
				}
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < workers; g++ {
		<-done
	}
	if launched.Load() != workers {
		t.Fatal("not all workers ran")
	}
	v, _ = m.Load(0x200, 8)
	if v != workers*iters {
		t.Errorf("concurrent AtomicAdd total = %d, want %d", v, workers*iters)
	}
}

// TestParamLoadBounds pins the paramLoad contract: the size is validated
// before the bounds check, so a stale check can never let the 8-byte read
// run past the buffer (the old code panicked on size∉{4,8} near the end
// of the buffer).
func TestParamLoadBounds(t *testing.T) {
	k := &Kernel{Params: []uint64{0x1122334455667788, 42}}
	buf := k.serializeParams()
	if len(buf) != 16 {
		t.Fatalf("serialized %d bytes, want 16", len(buf))
	}
	if v, err := paramLoad(buf, 0, 8); err != nil || v != 0x1122334455667788 {
		t.Errorf("u64 read: %#x, %v", v, err)
	}
	if v, err := paramLoad(buf, 4, 4); err != nil || v != 0x11223344 {
		t.Errorf("u32 read: %#x, %v", v, err)
	}
	if _, err := paramLoad(buf, 12, 8); err == nil {
		t.Error("read past the buffer should error")
	}
	if _, err := paramLoad(buf, 14, 2); err == nil {
		t.Error("unsupported size must error, not fall through to an 8-byte read")
	}
	if _, err := paramLoad(buf, ^uint64(0)-3, 4); err == nil {
		t.Error("offset overflow should error")
	}
	if _, err := paramLoad(nil, 0, 4); err == nil {
		t.Error("empty param buffer should error")
	}
}
