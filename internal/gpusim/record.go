package gpusim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"

	"st2gpu/internal/bitmath"
	"st2gpu/internal/core"
)

// DefaultRecordMaxBytes caps a Recorder that was built with no explicit
// limit: recording a runaway kernel fails loudly at 1 GiB instead of
// exhausting host memory.
const DefaultRecordMaxBytes = 1 << 30

// recChargeChunk is the granularity at which shards charge their growth
// against the shared byte budget: coarse enough to keep the atomic off
// the per-operation path, fine enough that the cap trips promptly.
const recChargeChunk = 64 << 10

// Recorder captures a launch's warp-add operation stream into a compact
// in-memory Recording. Install it with Device.SetRecorder; unlike an
// AddTracer it does NOT force the sequential launch path — every SM
// appends to its own lock-free shard, and the shards are folded in SM-ID
// order after the workers join, so the recorded stream is bit-identical
// at any ParallelSMs worker count and equals the stream a sequential
// live tracer would have observed.
type Recorder struct {
	maxBytes uint64
	chunk    uint64        // per-shard charge granularity
	total    atomic.Uint64 // bytes charged across all shards (chunked)
	rec      Recording
}

// NewRecorder returns a recorder bounded to maxBytes of encoded stream
// (0 means DefaultRecordMaxBytes). Exceeding the cap fails the launch
// with a loud error instead of running the host out of memory.
func NewRecorder(maxBytes uint64) *Recorder {
	if maxBytes == 0 {
		maxBytes = DefaultRecordMaxBytes
	}
	// Shards charge in chunks to keep the shared atomic off the per-op
	// path; a small cap needs a proportionally small chunk or it would
	// never be reached.
	chunk := uint64(recChargeChunk)
	if c := maxBytes / 8; c < chunk {
		chunk = c + 1
	}
	return &Recorder{maxBytes: maxBytes, chunk: chunk}
}

// Recording returns the stream recorded so far. Launches accumulate:
// recording a multi-kernel application yields one stream covering every
// launch in order.
func (r *Recorder) Recording() *Recording { return &r.rec }

// newShard creates one SM's private recording buffer.
func (r *Recorder) newShard() *recShard { return &recShard{owner: r} }

// fold appends the finished shards' segments in the caller's order
// (Device.Launch passes SM-ID order) and returns the bytes this fold
// added.
func (r *Recorder) fold(shards []*recShard) uint64 {
	var n uint64
	for _, s := range shards {
		if s == nil || len(s.buf) == 0 {
			continue
		}
		r.rec.segs = append(r.rec.segs, s.buf)
		r.rec.ops += s.ops
		r.rec.lanes += s.lanes
		n += uint64(len(s.buf))
	}
	return n
}

// Recording is a compact encoded warp-add operation stream: one segment
// per (launch, SM) in execution-fold order. Within a segment, records
// carry delta-encoded PCs and warp bases, packed active/carry-in masks,
// and varint effective operands; exact sums are reconstructed at replay
// time (Sum = EA + EB + Cin0 over the unit width), so they are never
// stored.
type Recording struct {
	segs  [][]byte
	ops   uint64
	lanes uint64
}

// NumOps returns the number of recorded warp-add records.
func (r *Recording) NumOps() uint64 { return r.ops }

// NumLanes returns the total number of active thread-ops across all
// records — the exact length of the flat per-lane arrays a decoder
// materializes, so decode passes can size them up front instead of
// growing by repeated append. Recordings deserialized from the legacy v1
// wire format report 0 (unknown).
func (r *Recording) NumLanes() uint64 { return r.lanes }

// Bytes returns the encoded stream size.
func (r *Recording) Bytes() uint64 {
	var n uint64
	for _, s := range r.segs {
		n += uint64(len(s))
	}
	return n
}

// recShard is one SM's private recording buffer plus its delta-encoder
// state. It belongs to exactly one worker goroutine between newShard and
// fold, so appends are lock-free; only the coarse budget charge touches
// the shared Recorder.
type recShard struct {
	owner    *Recorder
	buf      []byte
	ops      uint64
	lanes    uint64 // active thread-ops recorded (Σ popcount(active))
	prevPC   uint32
	prevBase uint32
	charged  uint64 // bytes already charged against owner's budget
}

// record header-byte layout.
const (
	recKindMask = 0b0000_0011 // core.UnitKind (ALU, ALU32, FPU, DPU)
	recFullWarp = 0b0000_0100 // all 32 lanes active
	recCinShift = 3           // bits 3-4: carry-in pattern
	recCinZero  = 0           // every active lane has Cin0 = 0 (adds)
	recCinOne   = 1           // every active lane has Cin0 = 1 (subs)
	recCinMixed = 2           // per-lane mask follows (FP mantissa ops)
	recCinBits  = 0b0001_1000 // mask extracting the pattern bits
)

// append encodes one warp-synchronous record.
func (s *recShard) append(kind core.UnitKind, pc, gtidBase uint32, ops *[32]WarpAddOp) error {
	var active, cin uint32
	for l := 0; l < 32; l++ {
		if !ops[l].Active {
			continue
		}
		active |= 1 << l
		if ops[l].Cin0 != 0 {
			cin |= 1 << l
		}
	}
	if active == 0 {
		return nil
	}

	hdr := byte(kind) & recKindMask
	if active == ^uint32(0) {
		hdr |= recFullWarp
	}
	switch {
	case cin == 0:
		hdr |= recCinZero << recCinShift
	case cin == active:
		hdr |= recCinOne << recCinShift
	default:
		hdr |= recCinMixed << recCinShift
	}

	s.buf = append(s.buf, hdr)
	s.buf = binary.AppendUvarint(s.buf, zigzag(int64(pc)-int64(s.prevPC)))
	s.buf = binary.AppendUvarint(s.buf, zigzag(int64(gtidBase)-int64(s.prevBase)))
	s.prevPC, s.prevBase = pc, gtidBase
	if hdr&recFullWarp == 0 {
		s.buf = binary.AppendUvarint(s.buf, uint64(active))
	}
	if (hdr&recCinBits)>>recCinShift == recCinMixed {
		s.buf = binary.AppendUvarint(s.buf, uint64(cin))
	}
	for l := 0; l < 32; l++ {
		if !ops[l].Active {
			continue
		}
		s.buf = binary.AppendUvarint(s.buf, ops[l].EA)
		s.buf = binary.AppendUvarint(s.buf, ops[l].EB)
	}
	s.ops++
	s.lanes += uint64(bits.OnesCount32(active))

	// Charge growth against the shared budget in coarse chunks so the
	// shared atomic stays off the per-operation path.
	if grown := uint64(len(s.buf)); grown >= s.charged+s.owner.chunk {
		delta := grown - s.charged
		s.charged = grown
		if s.owner.total.Add(delta) > s.owner.maxBytes {
			return fmt.Errorf("gpusim: recording exceeded the %d-byte cap (raise it with NewRecorder, or record at a smaller scale)",
				s.owner.maxBytes)
		}
	}
	return nil
}

// unitWidth returns the datapath width of a unit kind (the mirror of
// UnitKind.AdderConfig, kept branch-cheap for the replay decoder).
func unitWidth(kind core.UnitKind) uint {
	switch kind {
	case core.ALU32:
		return 32
	case core.FPU:
		return 24
	case core.DPU:
		return 52
	default:
		return 64
	}
}

// DecodedRecord is one warp-synchronous record delivered by Decode: the
// lane masks plus the per-active-lane operands and reconstructed sums in
// ascending lane order (the j-th set bit of Active owns EA[j], EB[j],
// Sum[j]). The slices alias decoder scratch and are valid only for the
// duration of the visit callback — copy what must outlive it.
type DecodedRecord struct {
	Kind     core.UnitKind
	PC       uint32
	GtidBase uint32
	Active   uint32 // bit l set: lane l executed the op
	Cin      uint32 // bit l set: lane l's Cin0 was 1
	EA, EB   []uint64
	Sum      []uint64
}

// Decode walks the recorded stream once, in the exact order a sequential
// live tracer would have observed it (SM-ID-major, per-SM execution
// order), invoking visit per warp-synchronous record. Sums are
// reconstructed from the effective operands (Sum = EA + EB + Cin0 over
// the unit width) — the integrity check that makes a recording a valid
// stand-in for a live trace. This is the single varint-decode pass
// behind both Replay and the structure-of-arrays decoded caches built by
// internal/trace; callers that evaluate many designs should decode once
// and walk the flat arrays instead of re-decoding per consumer.
// Decode is read-only and safe to call concurrently.
func (r *Recording) Decode(visit func(rec *DecodedRecord) error) error {
	var ea, eb, sum [32]uint64
	dr := DecodedRecord{}
	for si, seg := range r.segs {
		var prevPC, prevBase uint32
		pos := 0
		for pos < len(seg) {
			hdr := seg[pos]
			pos++
			kind := core.UnitKind(hdr & recKindMask)
			width := unitWidth(kind)

			dpc, err := readZigzag(seg, &pos)
			if err != nil {
				return fmt.Errorf("gpusim: replay segment %d: pc: %w", si, err)
			}
			dbase, err := readZigzag(seg, &pos)
			if err != nil {
				return fmt.Errorf("gpusim: replay segment %d: gtidBase: %w", si, err)
			}
			pc := uint32(int64(prevPC) + dpc)
			base := uint32(int64(prevBase) + dbase)
			prevPC, prevBase = pc, base

			active := ^uint32(0)
			if hdr&recFullWarp == 0 {
				v, err := readUvarint(seg, &pos)
				if err != nil {
					return fmt.Errorf("gpusim: replay segment %d: active mask: %w", si, err)
				}
				active = uint32(v)
			}
			var cin uint32
			switch (hdr & recCinBits) >> recCinShift {
			case recCinZero:
			case recCinOne:
				cin = active
			case recCinMixed:
				v, err := readUvarint(seg, &pos)
				if err != nil {
					return fmt.Errorf("gpusim: replay segment %d: cin mask: %w", si, err)
				}
				cin = uint32(v)
			default:
				return fmt.Errorf("gpusim: replay segment %d: corrupt carry-in pattern %#x", si, hdr)
			}
			if active == 0 {
				return fmt.Errorf("gpusim: replay segment %d: record with no active lanes", si)
			}

			n := 0
			for l := 0; l < 32; l++ {
				if active&(1<<l) == 0 {
					continue
				}
				a, err := readUvarint(seg, &pos)
				if err != nil {
					return fmt.Errorf("gpusim: replay segment %d: lane %d EA: %w", si, l, err)
				}
				b, err := readUvarint(seg, &pos)
				if err != nil {
					return fmt.Errorf("gpusim: replay segment %d: lane %d EB: %w", si, l, err)
				}
				c := uint(0)
				if cin&(1<<l) != 0 {
					c = 1
				}
				s, _ := bitmath.AddWithCarry(a, b, c, width)
				ea[n], eb[n], sum[n] = a, b, s
				n++
			}
			dr = DecodedRecord{
				Kind: kind, PC: pc, GtidBase: base, Active: active, Cin: cin,
				EA: ea[:n], EB: eb[:n], Sum: sum[:n],
			}
			if err := visit(&dr); err != nil {
				return err
			}
		}
	}
	return nil
}

// Replay feeds the recorded stream to t in the exact order a sequential
// live tracer would have observed it. Sums are reconstructed from the
// effective operands, so the delivered WarpAddOps are bit-identical to
// the live-traced ones. Replay is read-only: the same Recording can be
// replayed any number of times, concurrently from multiple goroutines.
func (r *Recording) Replay(t AddTracer) error {
	return r.Decode(func(rec *DecodedRecord) error {
		var ops [32]WarpAddOp
		j := 0
		for m := rec.Active; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			ops[l] = WarpAddOp{
				Active: true,
				EA:     rec.EA[j], EB: rec.EB[j],
				Cin0: uint(rec.Cin >> l & 1),
				Sum:  rec.Sum[j],
			}
			j++
		}
		t.TraceWarpAdds(rec.Kind, rec.PC, rec.GtidBase, &ops)
		return nil
	})
}

// --- serialization ---

// recMagic versions the on-disk encoding; bump it on any wire change.
// v2 added the lane count after the op count; v1 streams (recMagicV1)
// still read back, reporting NumLanes()==0.
var recMagic = []byte("st2rec\x02")
var recMagicV1 = []byte("st2rec\x01")

// WriteTo serializes the recording (magic, op count, lane count, segment
// count, then length-prefixed segments). The encoding is deterministic:
// equal recordings produce byte-equal output.
func (r *Recording) WriteTo(w io.Writer) (int64, error) {
	var hdr []byte
	hdr = append(hdr, recMagic...)
	hdr = binary.AppendUvarint(hdr, r.ops)
	hdr = binary.AppendUvarint(hdr, r.lanes)
	hdr = binary.AppendUvarint(hdr, uint64(len(r.segs)))
	n, err := w.Write(hdr)
	total := int64(n)
	if err != nil {
		return total, err
	}
	for _, seg := range r.segs {
		var lp []byte
		lp = binary.AppendUvarint(lp, uint64(len(seg)))
		n, err = w.Write(lp)
		total += int64(n)
		if err != nil {
			return total, err
		}
		n, err = w.Write(seg)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ErrRecordingTooBig marks a recording stream whose declared payload
// exceeds the reader's byte budget. The check fires before any
// length-sized allocation, so a corrupt or hostile varint cannot trigger
// a multi-GiB make.
var ErrRecordingTooBig = errors.New("gpusim: recording exceeds byte budget")

// readSegChunk bounds each incremental segment read: segment payloads
// are consumed in chunks no larger than this, so the buffer only grows
// as fast as real bytes arrive and a lying length prefix fails at the
// true EOF having allocated at most one chunk beyond the data.
const readSegChunk = 64 << 10

// ReadRecording deserializes a recording written by WriteTo, holding
// segment payloads to the DefaultRecordMaxBytes budget (the same
// 0-means-default idiom every other no-limit reader uses).
func ReadRecording(rd io.Reader) (*Recording, error) {
	return ReadRecordingLimit(rd, 0)
}

// ReadRecordingLimit deserializes a recording written by WriteTo,
// failing with ErrRecordingTooBig once the declared segment payloads
// exceed maxBytes (0 means DefaultRecordMaxBytes — the same budget the
// Recorder enforces at capture time, so any recording the simulator
// could legally produce reads back under the default).
func ReadRecordingLimit(rd io.Reader, maxBytes uint64) (*Recording, error) {
	if maxBytes == 0 {
		maxBytes = DefaultRecordMaxBytes
	}
	br := newByteReader(rd)
	magic := make([]byte, len(recMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("gpusim: recording header: %w", err)
	}
	v1 := string(magic) == string(recMagicV1)
	if !v1 && string(magic) != string(recMagic) {
		return nil, fmt.Errorf("gpusim: not an st2 recording (bad magic %q)", magic)
	}
	ops, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("gpusim: recording op count: %w", err)
	}
	var lanes uint64
	if !v1 {
		if lanes, err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("gpusim: recording lane count: %w", err)
		}
	}
	nsegs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("gpusim: recording segment count: %w", err)
	}
	rec := &Recording{ops: ops, lanes: lanes}
	var total uint64
	for i := uint64(0); i < nsegs; i++ {
		segLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("gpusim: segment %d length: %w", i, err)
		}
		if segLen > maxBytes-total {
			return nil, fmt.Errorf("gpusim: segment %d declares %d bytes with %d of %d remaining: %w",
				i, segLen, maxBytes-total, maxBytes, ErrRecordingTooBig)
		}
		total += segLen
		seg, err := readSegment(br, segLen)
		if err != nil {
			return nil, fmt.Errorf("gpusim: segment %d payload: %w", i, err)
		}
		rec.segs = append(rec.segs, seg)
	}
	// The declared counts size decoder preallocations, so a lying header
	// must not survive the read: every record costs at least one header
	// byte and every lane at least two operand bytes, so neither count
	// can exceed the payload actually present.
	if rec.ops > total || rec.lanes > total {
		return nil, fmt.Errorf("gpusim: recording declares %d records / %d lanes in %d payload bytes", rec.ops, rec.lanes, total)
	}
	return rec, nil
}

// readSegment reads a length-prefixed payload incrementally (chunked) so
// the allocation tracks bytes actually present in the stream.
func readSegment(r io.Reader, segLen uint64) ([]byte, error) {
	seg := make([]byte, 0, min(segLen, readSegChunk))
	for uint64(len(seg)) < segLen {
		chunk := segLen - uint64(len(seg))
		if chunk > readSegChunk {
			chunk = readSegChunk
		}
		lo := len(seg)
		seg = append(seg, make([]byte, chunk)...)
		if _, err := io.ReadFull(r, seg[lo:]); err != nil {
			return nil, err
		}
	}
	return seg, nil
}

// --- varint helpers ---

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func readUvarint(b []byte, pos *int) (uint64, error) {
	v, n := binary.Uvarint(b[*pos:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated varint at offset %d", *pos)
	}
	*pos += n
	return v, nil
}

func readZigzag(b []byte, pos *int) (int64, error) {
	v, err := readUvarint(b, pos)
	if err != nil {
		return 0, err
	}
	return unzigzag(v), nil
}

// byteReader adapts any reader for binary.ReadUvarint without double
// buffering the segment payload reads.
type byteReader struct {
	r   io.Reader
	one [1]byte
}

func newByteReader(r io.Reader) *byteReader {
	if br, ok := r.(*byteReader); ok {
		return br
	}
	return &byteReader{r: r}
}

func (b *byteReader) Read(p []byte) (int, error) { return io.ReadFull(b.r, p) }

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}
