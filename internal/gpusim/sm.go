package gpusim

import (
	"fmt"

	"st2gpu/internal/core"
	"st2gpu/internal/isa"
	"st2gpu/internal/metrics"
	"st2gpu/internal/speculate"
)

// poolKind buckets functional-unit classes into the SM's physical
// execution pipes (Volta-like: per-scheduler INT32/FP32 pipes, shared
// FP64, shared SFU, shared LSU).
type poolKind int

const (
	poolALU poolKind = iota
	poolFP32
	poolFP64
	poolSFU
	poolMEM
	poolNone
	poolCount
)

func poolFor(c isa.FUClass) poolKind {
	switch c {
	case isa.FUAluAdd, isa.FUAluOther, isa.FUIntMul, isa.FUIntDiv:
		return poolALU
	case isa.FUFpAdd, isa.FUFpMul, isa.FUFpDiv:
		return poolFP32
	case isa.FUSfu:
		return poolSFU
	case isa.FUMem:
		return poolMEM
	default:
		return poolNone
	}
}

// SMStats aggregates one SM's activity over a kernel run. The
// per-FU-class instruction counters are dense arrays indexed by FUClass:
// they are bumped once per issued instruction, and an array index is a
// fraction of the map-hash cost that used to sit on that path.
type SMStats struct {
	Cycles         uint64
	WarpInstrs     [isa.NumFUClasses]uint64
	ThreadInstrs   [isa.NumFUClasses]uint64
	RegReads       uint64
	RegWrites      uint64
	SharedAccesses uint64
	ParamAccesses  uint64
	GlobalAccesses uint64 // warp-level global memory instructions
	L2Accesses     uint64
	DRAMAccesses   uint64
	AtomicLaneOps  uint64
	ST2StallCycles uint64
	BarrierWaits   uint64
}

func newSMStats() *SMStats { return &SMStats{} }

// smState is one streaming multiprocessor mid-simulation. Each SM owns
// everything it touches on the hot path — warps, caches, execution units,
// CRF, statistics — so smState.run needs no locks and one launch can run
// its SMs on concurrent worker goroutines; only global memory (striped
// locks inside Memory) is shared between SMs.
type smState struct {
	dev    *Device
	id     int
	kernel *Kernel
	params []byte // kernel params, serialized once per launch (read-only)

	l1 *Cache
	// l2 is this SM's private shard of the L2 model: tags and statistics
	// are per-SM, which keeps the timing simulation deterministic and
	// lock-free under the parallel launch path. Shard stats merge into the
	// device aggregate at fold time; hit rates differ marginally from a
	// truly shared L2, exactly as the old SM-by-SM sequential loop
	// admitted its warm-L2 carry-over did.
	l2 *Cache

	// ST² execution units and speculation source.
	alu32, alu64, fpu, dpu *core.Unit
	crf                    *speculate.CRF
	spec                   core.Speculator
	baselineAdderOps       map[core.UnitKind]uint64

	// Execution state.
	warps      []*warp
	blockQueue []int               // global block indices awaiting launch
	liveBlocks map[int]int         // blockIdx → live (not done) warp count
	pools      [poolCount][]uint64 // busy-until per pipe

	cycle    uint64
	rrPos    int
	lastWarp int // GTO: the warp that issued most recently (-1 none)
	stats    *SMStats

	// barrierArrived counts, per live block, the warps currently waiting
	// at a barrier. Maintained incrementally (bumped when a warp arrives,
	// entry deleted on release) so releaseBarriers does no per-cycle
	// allocation and is O(blocks-at-barrier), not O(warps).
	barrierArrived map[int]int

	// shard is this SM's private metrics buffer (nil when no registry is
	// installed); written once at the end of run, folded by the device in
	// SM-ID order after all workers join.
	shard *metrics.Shard

	// rec is this SM's private recording shard (nil when no Recorder is
	// installed); appended to lock-free on the execution hot path, folded
	// by the device in SM-ID order after all workers join.
	rec *recShard
}

// units returns the SM's ST² execution units in a fixed fold order.
func (sm *smState) units() []*core.Unit {
	return []*core.Unit{sm.alu32, sm.alu64, sm.fpu, sm.dpu}
}

func (sm *smState) poolPipes(k poolKind) []uint64 { return sm.pools[k] }

// nextFreePipe returns the pipe index with the earliest busy-until time.
func (sm *smState) nextFreePipe(k poolKind) int {
	pipes := sm.pools[k]
	best := 0
	for i := 1; i < len(pipes); i++ {
		if pipes[i] < pipes[best] {
			best = i
		}
	}
	return best
}

// launchBlock instantiates the warps of global block b on this SM.
func (sm *smState) launchBlock(b int) {
	prog := sm.kernel.Program
	threads := sm.kernel.BlockDim
	var shared []byte
	if prog.SharedBytes > 0 {
		shared = make([]byte, prog.SharedBytes)
	}
	nWarps := (threads + 31) / 32
	for wi := 0; wi < nWarps; wi++ {
		lanes := threads - wi*32
		if lanes > 32 {
			lanes = 32
		}
		w := &warp{
			id:        len(sm.warps),
			blockIdx:  b,
			tidBase:   uint32(wi * 32),
			gtidBase:  uint32(b*threads + wi*32),
			nLanes:    lanes,
			regs:      make([]uint64, prog.NumRegs*32),
			preds:     make([]bool, max(prog.NumPreds, 1)*32),
			shared:    shared,
			regReady:  make([]uint64, max(prog.NumRegs, 1)),
			nextIssue: sm.cycle,
		}
		for l := lanes; l < 32; l++ {
			w.pc[l] = -1
		}
		sm.warps = append(sm.warps, w)
	}
	sm.liveBlocks[b] = nWarps
}

// residentWarps counts warps that have not finished.
func (sm *smState) residentWarps() int {
	n := 0
	for _, w := range sm.warps {
		if !w.done {
			n++
		}
	}
	return n
}

// refill launches queued blocks while resources allow.
func (sm *smState) refill() {
	warpsPerBlock := (sm.kernel.BlockDim + 31) / 32
	for len(sm.blockQueue) > 0 &&
		len(sm.liveBlocks) < sm.dev.cfg.MaxBlocksPerSM &&
		sm.residentWarps()+warpsPerBlock <= sm.dev.cfg.MaxWarpsPerSM {
		b := sm.blockQueue[0]
		sm.blockQueue = sm.blockQueue[1:]
		sm.launchBlock(b)
	}
}

// releaseBarriers frees blocks whose live warps have all arrived. The
// arrival counts are maintained incrementally by tryIssue (and decayed
// by warp exits through liveBlocks), so the common all-running cycle is
// a single empty-map check with no allocation.
func (sm *smState) releaseBarriers() {
	if len(sm.barrierArrived) == 0 {
		return
	}
	//st2:det-ok per-block effects are disjoint and idempotent: each b releases only its own block's warps, so visit order cannot reach results
	for b, n := range sm.barrierArrived {
		if n == sm.liveBlocks[b] {
			for _, w := range sm.warps {
				if w.blockIdx == b && w.atBarrier {
					w.atBarrier = false
					if w.nextIssue < sm.cycle+1 {
						w.nextIssue = sm.cycle + 1
					}
				}
			}
			delete(sm.barrierArrived, b)
		}
	}
}

// srcReadyAt returns the cycle at which the warp's next instruction can
// read all its operands.
func (sm *smState) srcReadyAt(w *warp) uint64 {
	pc := w.minPC()
	if pc < 0 {
		return w.nextIssue
	}
	in := sm.kernel.Program.Instrs[pc]
	t := w.nextIssue
	for s := 0; s < in.Op.NumSrcs(); s++ {
		o := in.Srcs[s]
		if o.Kind == isa.OpReg && in.Op != isa.OpSelp || (in.Op == isa.OpSelp && s < 2 && o.Kind == isa.OpReg) {
			if r := w.regReady[o.Reg]; r > t {
				t = r
			}
		}
	}
	// Write-after-write / write-after-read on the destination: the warp is
	// in-order, so only the destination's pending latency matters.
	if in.Op.HasDst() {
		if r := w.regReady[in.Dst]; r > t {
			t = r
		}
	}
	return t
}

// earliestIssue computes when warp w could issue, considering scoreboard
// and FU pool availability.
func (sm *smState) earliestIssue(w *warp) uint64 {
	t := sm.srcReadyAt(w)
	pc := w.minPC()
	if pc >= 0 {
		pool := poolFor(sm.kernel.Program.Instrs[pc].Op.Class())
		if pool != poolNone {
			pipe := sm.nextFreePipe(pool)
			if b := sm.pools[pool][pipe]; b > t {
				t = b
			}
		}
	}
	return t
}

// tryIssue attempts to issue warp w at the current cycle; reports whether
// it issued.
func (sm *smState) tryIssue(w *warp) (bool, error) {
	if w.done || w.atBarrier || w.nextIssue > sm.cycle {
		return false, nil
	}
	if sm.srcReadyAt(w) > sm.cycle {
		return false, nil
	}
	pc := w.minPC()
	if pc < 0 {
		w.done = true
		return false, nil
	}
	in := sm.kernel.Program.Instrs[pc]
	pool := poolFor(in.Op.Class())
	pipe := -1
	if pool != poolNone {
		pipe = sm.nextFreePipe(pool)
		if sm.pools[pool][pipe] > sm.cycle {
			return false, nil
		}
	}

	res, err := sm.executeStep(w)
	if err != nil {
		return false, err
	}

	// Occupancy and latency, with the ST² misprediction stall.
	occ, lat := res.occupancy, res.latency
	if res.st2Stall {
		occ++
		lat++
		sm.stats.ST2StallCycles++
	}
	if res.memTransactions > 1 {
		extra := uint64(res.memTransactions - 1)
		occ += extra
		lat += extra
	}
	if pipe >= 0 {
		sm.pools[pool][pipe] = sm.cycle + occ
	}
	if res.hasDst {
		w.regReady[res.dstReg] = sm.cycle + lat
		sm.stats.RegWrites += uint64(res.activeLanes)
	}
	sm.stats.RegReads += uint64(res.activeLanes * in.Op.NumSrcs())
	w.nextIssue = sm.cycle + 1

	// Bookkeeping.
	cls := in.Op.Class()
	sm.stats.WarpInstrs[cls]++
	sm.stats.ThreadInstrs[cls] += uint64(res.activeLanes)
	if res.barrier {
		w.atBarrier = true
		sm.barrierArrived[w.blockIdx]++
		sm.stats.BarrierWaits++
	}
	if res.exited {
		w.done = true
		sm.liveBlocks[w.blockIdx]--
		if sm.liveBlocks[w.blockIdx] == 0 {
			delete(sm.liveBlocks, w.blockIdx)
			sm.refill()
		}
	}
	return true, nil
}

// run simulates this SM to completion.
func (sm *smState) run() error {
	sm.refill()
	for {
		if len(sm.liveBlocks) == 0 && len(sm.blockQueue) == 0 {
			break
		}
		if sm.cycle > sm.dev.cfg.MaxCycles {
			return fmt.Errorf("gpusim: SM %d exceeded %d cycles (livelock?)", sm.id, sm.dev.cfg.MaxCycles)
		}
		if sm.crf != nil {
			sm.crf.BeginCycle(sm.cycle)
		}
		sm.releaseBarriers()

		issued := 0
		n := len(sm.warps)
		greedy := sm.dev.cfg.Scheduler == GTO
		// GTO: give the most recent issuer first claim on a slot.
		if greedy && sm.lastWarp >= 0 && sm.lastWarp < n {
			ok, err := sm.tryIssue(sm.warps[sm.lastWarp])
			if err != nil {
				return err
			}
			if ok {
				issued++
			} else {
				sm.lastWarp = -1
			}
		}
		for scanned := 0; scanned < n && issued < sm.dev.cfg.SchedulersPerSM; scanned++ {
			var idx int
			if greedy {
				idx = scanned // oldest-first
			} else {
				idx = (sm.rrPos + scanned) % n
			}
			if greedy && idx == sm.lastWarp {
				continue
			}
			w := sm.warps[idx]
			ok, err := sm.tryIssue(w)
			if err != nil {
				return err
			}
			if ok {
				issued++
				if greedy {
					sm.lastWarp = idx
				}
			}
		}
		sm.rrPos++

		if issued > 0 {
			sm.cycle++
			continue
		}
		// Nothing issuable: fast-forward to the next event.
		next := ^uint64(0)
		anyWaiting := false
		for _, w := range sm.warps {
			if w.done || w.atBarrier {
				continue
			}
			anyWaiting = true
			if t := sm.earliestIssue(w); t < next {
				next = t
			}
		}
		if !anyWaiting {
			// Everyone is at a barrier (or done): barriers must be
			// releasable next round; advance one cycle.
			stuck := 0
			for _, w := range sm.warps {
				if !w.done && w.atBarrier {
					stuck++
				}
			}
			if stuck > 0 && len(sm.liveBlocks) > 0 {
				sm.cycle++
				// If releaseBarriers cannot free anyone, the kernel has a
				// divergent barrier — detect by re-checking.
				sm.releaseBarriers()
				still := 0
				for _, w := range sm.warps {
					if !w.done && w.atBarrier {
						still++
					}
				}
				if still == stuck {
					return fmt.Errorf("gpusim: SM %d: %d warps deadlocked at a barrier", sm.id, stuck)
				}
				continue
			}
			// No live warps but blocks remain queued: refill and continue.
			sm.refill()
			if len(sm.liveBlocks) == 0 && len(sm.blockQueue) == 0 {
				break
			}
			sm.cycle++
			continue
		}
		if next <= sm.cycle {
			next = sm.cycle + 1
		}
		sm.cycle = next
	}
	sm.stats.Cycles = sm.cycle
	sm.publishShard()
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
