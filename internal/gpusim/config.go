// Package gpusim is the repository's substitute for GPGPU-Sim (Section V
// of the paper): a SIMT GPU simulator that executes PTX-lite kernels
// (internal/isa) on a Volta-like device model — streaming multiprocessors
// with warp schedulers, a scoreboard, functional-unit pools, an L1/L2
// cache hierarchy and a DRAM latency model — while driving every integer
// and floating-point add/sub through the ST² execution units
// (internal/core) and collecting the activity counters the power model
// (internal/power) prices.
//
// The timing model is warp-level and in-order per warp: a warp issues its
// next instruction when its operands are ready (scoreboard), the target
// functional unit is free, and — for ST² adds — stalls one extra cycle on
// a carry misprediction, exactly the pipeline behaviour of Section IV-C.
//
// SMs inside one launch are simulated concurrently by a bounded worker
// pool (Config.ParallelSMs); every SM owns its complete simulation state,
// so results are bit-identical across worker counts.
package gpusim

import (
	"fmt"
	"runtime"

	"st2gpu/internal/speculate"
)

// SchedPolicy selects the warp scheduler's pick order.
type SchedPolicy int

const (
	// LRR: loose round-robin — rotate the starting warp every cycle.
	LRR SchedPolicy = iota
	// GTO: greedy-then-oldest — keep issuing the same warp until it
	// stalls, then fall back to the oldest ready warp.
	GTO
)

func (p SchedPolicy) String() string {
	if p == GTO {
		return "gto"
	}
	return "lrr"
}

// AdderMode selects the adder microarchitecture the device runs.
type AdderMode int

const (
	// BaselineAdders: conventional full-width adders at nominal voltage.
	BaselineAdders AdderMode = iota
	// ST2Adders: sliced speculative adders with the configured speculation
	// design and the per-SM CRF.
	ST2Adders
)

func (m AdderMode) String() string {
	if m == ST2Adders {
		return "st2"
	}
	return "baseline"
}

// Config describes the simulated device. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	Name string

	// SM geometry.
	NumSMs          int
	SchedulersPerSM int // warp schedulers (Volta: 4 processing blocks)
	MaxWarpsPerSM   int
	MaxBlocksPerSM  int
	Scheduler       SchedPolicy

	// Adder microarchitecture.
	AdderMode   AdderMode
	SliceBits   uint
	Speculation string // speculate design name; FinalDesign when empty
	// UseCRF routes speculation through the hardware CRF (with write-back
	// contention); false uses the idealized trace-level predictor (the
	// Figure 5 DSE path).
	UseCRF bool
	// DisablePeek turns off the static Peek filter (ablation).
	DisablePeek bool
	// CRFEntries sizes the per-SM Carry Register File (power-of-two; the
	// paper's design is 16 = PC[3:0] indexing). 0 means 16.
	CRFEntries int

	// Memory system.
	GlobalMemBytes uint64
	L1KB           int
	L2KB           int
	LineBytes      int
	L1Ways         int
	L2Ways         int
	L1HitLatency   uint64
	L2HitLatency   uint64
	DRAMLatency    uint64
	SharedLatency  uint64

	// Determinism.
	Seed int64

	// MaxCycles aborts runaway simulations.
	MaxCycles uint64

	// ParallelSMs bounds the worker pool that simulates SMs concurrently
	// inside one Launch. 0 (the default) uses min(NumSMs, GOMAXPROCS); 1
	// restores the sequential debugging path; larger values are clamped
	// to the SM count. Worker count never changes results: every SM owns
	// its complete simulation state, so RunStats is bit-identical across
	// settings (see the concurrency model in DESIGN.md). Negative values
	// fail validation.
	ParallelSMs int
}

// DefaultConfig returns a scaled-down TITAN V-like device: the SM
// microarchitecture matches (4 schedulers, 64 warps), while the SM count
// defaults to 4 so the 23-kernel suite simulates in seconds — energy is
// reported per unit of work, so the SM count does not change the
// breakdown shape. Set NumSMs to 80 for the full chip.
func DefaultConfig() Config {
	return Config{
		Name:            "titanv-sim",
		NumSMs:          4,
		SchedulersPerSM: 4,
		MaxWarpsPerSM:   64,
		MaxBlocksPerSM:  16,
		AdderMode:       ST2Adders,
		SliceBits:       8,
		Speculation:     speculate.FinalDesign,
		UseCRF:          true,
		GlobalMemBytes:  64 << 20,
		L1KB:            128,
		L2KB:            4096, // TITAN V has 4.5 MB; rounded to a power-of-two set count

		LineBytes:     128,
		L1Ways:        4,
		L2Ways:        16,
		L1HitLatency:  28,
		L2HitLatency:  190,
		DRAMLatency:   430,
		SharedLatency: 24,
		Seed:          1,
		MaxCycles:     200_000_000,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NumSMs <= 0 || c.SchedulersPerSM <= 0 || c.MaxWarpsPerSM <= 0 || c.MaxBlocksPerSM <= 0 {
		return fmt.Errorf("gpusim: non-positive SM geometry: %+v", c)
	}
	if c.MaxWarpsPerSM%c.SchedulersPerSM != 0 {
		return fmt.Errorf("gpusim: MaxWarpsPerSM %d not divisible by schedulers %d",
			c.MaxWarpsPerSM, c.SchedulersPerSM)
	}
	if c.SliceBits == 0 || c.SliceBits > 8 {
		// The CRF holds 7 prediction bits per lane; slices narrower than
		// 8 bits on a 64-bit adder would not fit its geometry.
		return fmt.Errorf("gpusim: slice bits %d outside [1,8]", c.SliceBits)
	}
	if c.GlobalMemBytes == 0 {
		return fmt.Errorf("gpusim: no global memory")
	}
	if c.LineBytes == 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("gpusim: cache line %d not a power of two", c.LineBytes)
	}
	if c.L1KB <= 0 || c.L2KB <= 0 || c.L1Ways <= 0 || c.L2Ways <= 0 {
		return fmt.Errorf("gpusim: bad cache geometry")
	}
	if c.MaxCycles == 0 {
		return fmt.Errorf("gpusim: MaxCycles is zero")
	}
	if c.AdderMode == ST2Adders && c.Speculation == "" {
		return fmt.Errorf("gpusim: ST2 mode needs a speculation design")
	}
	if c.CRFEntries != 0 && (c.CRFEntries < 1 || c.CRFEntries&(c.CRFEntries-1) != 0) {
		return fmt.Errorf("gpusim: CRF entries %d not a power of two", c.CRFEntries)
	}
	if c.ParallelSMs < 0 {
		return fmt.Errorf("gpusim: negative ParallelSMs %d", c.ParallelSMs)
	}
	return nil
}

// smWorkers resolves ParallelSMs into the worker-pool size for a launch
// occupying numSMs SMs.
func (c Config) smWorkers(numSMs int) int {
	w := c.ParallelSMs
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > numSMs {
		w = numSMs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// TitanVConfig returns the full-chip configuration: all 80 SMs of the
// TITAN V. Simulations are ~20× slower than DefaultConfig; per-unit-of-
// work statistics (misprediction rates, energy shares) match the
// scaled-down default, which is why the experiment harness uses the
// latter.
func TitanVConfig() Config {
	c := DefaultConfig()
	c.Name = "titanv-full"
	c.NumSMs = 80
	return c
}
