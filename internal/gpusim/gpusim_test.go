package gpusim

import (
	"testing"

	"st2gpu/internal/core"
	"st2gpu/internal/isa"
)

func testDevice(t *testing.T, mode AdderMode) *Device {
	t.Helper()
	cfg := DefaultConfig()
	cfg.NumSMs = 2
	cfg.AdderMode = mode
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// vecAddKernel: out[i] = a[i] + b[i] for u32 arrays.
func vecAddKernel(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("vecadd")
	gtid := b.Reg()
	n := b.Reg()
	av := b.Reg()
	bv := b.Reg()
	addr := b.Reg()
	sum := b.Reg()
	p := b.PredReg()
	b.MovSpecial(gtid, isa.SRegGtid)
	b.Ld(isa.Param, isa.U32, n, isa.Imm(0)) // params[0] = n
	b.Setp(isa.GE, isa.U32, p, isa.R(gtid), isa.R(n))
	b.BraTo("done", p, false)
	// addr = gtid*4 + base; a at 0x1000, b at 0x11000, out at 0x21000
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(0x1000))
	b.Ld(isa.Global, isa.U32, av, isa.R(addr))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(0x10000))
	b.Ld(isa.Global, isa.U32, bv, isa.R(addr))
	b.IAdd(isa.U32, sum, isa.R(av), isa.R(bv))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(0x10000))
	b.St(isa.Global, isa.U32, isa.R(addr), isa.R(sum))
	b.Label("done")
	b.Exit()
	return b.MustBuild()
}

func TestVecAddEndToEnd(t *testing.T) {
	for _, mode := range []AdderMode{BaselineAdders, ST2Adders} {
		d := testDevice(t, mode)
		const n = 1000
		a := make([]uint32, n)
		bvals := make([]uint32, n)
		for i := range a {
			a[i] = uint32(i * 3)
			bvals[i] = uint32(i*7 + 1)
		}
		if err := d.Memory().WriteU32s(0x1000, a); err != nil {
			t.Fatal(err)
		}
		if err := d.Memory().WriteU32s(0x11000, bvals); err != nil {
			t.Fatal(err)
		}
		k := &Kernel{Program: vecAddKernel(t), GridDim: 8, BlockDim: 128, Params: []uint64{n}}
		rs, err := d.Launch(k)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		out, err := d.Memory().ReadU32s(0x21000, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != a[i]+bvals[i] {
				t.Fatalf("mode %v: out[%d] = %d, want %d", mode, i, out[i], a[i]+bvals[i])
			}
		}
		if rs.Cycles == 0 {
			t.Error("no cycles recorded")
		}
		if rs.TotalThreadInstrs() == 0 {
			t.Error("no instructions recorded")
		}
		// 1024 threads ran, 1000 did the add (plus address adds).
		if rs.ThreadInstrs[isa.FUAluAdd] < 3000 {
			t.Errorf("mode %v: ALU adds = %d, want ≥3000", mode, rs.ThreadInstrs[isa.FUAluAdd])
		}
		if mode == ST2Adders {
			if rs.Units[core.ALU32].ThreadOps == 0 || rs.Units[core.ALU].ThreadOps == 0 {
				t.Error("ST² units saw no operations")
			}
			if rs.CRF.Reads == 0 {
				t.Error("CRF never read")
			}
		} else if rs.BaselineAdderOps[core.ALU32] == 0 {
			t.Error("baseline adder ops not counted")
		}
	}
}

// Divergent kernel: odd threads take a different path than even threads.
func TestDivergenceReconverges(t *testing.T) {
	b := isa.NewBuilder("diverge")
	gtid := b.Reg()
	bit := b.Reg()
	v := b.Reg()
	addr := b.Reg()
	p := b.PredReg()
	b.MovSpecial(gtid, isa.SRegGtid)
	b.And(isa.U32, bit, isa.R(gtid), isa.Imm(1))
	b.Setp(isa.EQ, isa.U32, p, isa.R(bit), isa.Imm(0))
	b.BraTo("even", p, false)
	// odd path: v = gtid*100
	b.IMul(isa.U32, v, isa.R(gtid), isa.Imm(100))
	b.Bra("store")
	b.Label("even")
	// even path: v = gtid+7
	b.IAdd(isa.U32, v, isa.R(gtid), isa.Imm(7))
	b.Label("store")
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(0x1000))
	b.St(isa.Global, isa.U32, isa.R(addr), isa.R(v))
	b.Exit()
	prog := b.MustBuild()

	d := testDevice(t, ST2Adders)
	k := &Kernel{Program: prog, GridDim: 2, BlockDim: 64, Params: nil}
	if _, err := d.Launch(k); err != nil {
		t.Fatal(err)
	}
	out, err := d.Memory().ReadU32s(0x1000, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range out {
		want := uint32(i + 7)
		if i%2 == 1 {
			want = uint32(i * 100)
		}
		if got != want {
			t.Fatalf("thread %d: got %d want %d", i, got, want)
		}
	}
}

// Loop kernel: each thread sums 1..k where k = tid%7+1.
func TestLoopExecution(t *testing.T) {
	b := isa.NewBuilder("loop")
	gtid := b.Reg()
	k := b.Reg()
	i := b.Reg()
	acc := b.Reg()
	addr := b.Reg()
	p := b.PredReg()
	b.MovSpecial(gtid, isa.SRegGtid)
	b.IRem(isa.U32, k, isa.R(gtid), isa.Imm(7))
	b.IAdd(isa.U32, k, isa.R(k), isa.Imm(1))
	b.Mov(isa.U32, i, isa.Imm(1))
	b.Mov(isa.U32, acc, isa.Imm(0))
	b.Label("loop")
	b.IAdd(isa.U32, acc, isa.R(acc), isa.R(i))
	b.IAdd(isa.U32, i, isa.R(i), isa.Imm(1))
	b.Setp(isa.LE, isa.U32, p, isa.R(i), isa.R(k))
	b.BraTo("loop", p, false)
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(0x4000))
	b.St(isa.Global, isa.U32, isa.R(addr), isa.R(acc))
	b.Exit()
	prog := b.MustBuild()

	d := testDevice(t, ST2Adders)
	if _, err := d.Launch(&Kernel{Program: prog, GridDim: 1, BlockDim: 96}); err != nil {
		t.Fatal(err)
	}
	out, _ := d.Memory().ReadU32s(0x4000, 96)
	for tid, got := range out {
		kk := uint32(tid%7 + 1)
		want := kk * (kk + 1) / 2
		if got != want {
			t.Fatalf("thread %d: sum(1..%d) = %d, want %d", tid, kk, got, want)
		}
	}
}

// Shared memory + barrier: block-wide reversal through shared memory.
func TestSharedMemoryAndBarrier(t *testing.T) {
	b := isa.NewBuilder("reverse")
	tid := b.Reg()
	ntid := b.Reg()
	v := b.Reg()
	saddr := b.Reg()
	raddr := b.Reg()
	gaddr := b.Reg()
	rt := b.Reg()
	base := b.Shared(256 * 4)
	b.MovSpecial(tid, isa.SRegTid)
	b.MovSpecial(ntid, isa.SRegNTid)
	// shared[tid] = tid*tid
	b.IMul(isa.U32, v, isa.R(tid), isa.R(tid))
	b.IMad(isa.U64, saddr, isa.R(tid), isa.Imm(4), isa.Imm(base))
	b.St(isa.Shared, isa.U32, isa.R(saddr), isa.R(v))
	b.Bar()
	// rt = ntid-1-tid; v = shared[rt]
	b.ISub(isa.U32, rt, isa.R(ntid), isa.Imm(1))
	b.ISub(isa.U32, rt, isa.R(rt), isa.R(tid))
	b.IMad(isa.U64, raddr, isa.R(rt), isa.Imm(4), isa.Imm(base))
	b.Ld(isa.Shared, isa.U32, v, isa.R(raddr))
	// out[gtid] = v
	gtid := b.Reg()
	b.MovSpecial(gtid, isa.SRegGtid)
	b.IMad(isa.U64, gaddr, isa.R(gtid), isa.Imm(4), isa.Imm(0x8000))
	b.St(isa.Global, isa.U32, isa.R(gaddr), isa.R(v))
	b.Exit()
	prog := b.MustBuild()
	if prog.SharedBytes != 256*4 {
		t.Fatalf("shared bytes = %d", prog.SharedBytes)
	}

	d := testDevice(t, ST2Adders)
	const bd = 256
	if _, err := d.Launch(&Kernel{Program: prog, GridDim: 3, BlockDim: bd}); err != nil {
		t.Fatal(err)
	}
	out, _ := d.Memory().ReadU32s(0x8000, 3*bd)
	for g, got := range out {
		tid := g % bd
		rt := bd - 1 - tid
		if got != uint32(rt*rt) {
			t.Fatalf("gtid %d: got %d want %d", g, got, rt*rt)
		}
	}
}

// Atomic histogram on global memory.
func TestGlobalAtomics(t *testing.T) {
	b := isa.NewBuilder("atomics")
	gtid := b.Reg()
	bin := b.Reg()
	addr := b.Reg()
	b.MovSpecial(gtid, isa.SRegGtid)
	b.IRem(isa.U32, bin, isa.R(gtid), isa.Imm(4))
	b.IMad(isa.U64, addr, isa.R(bin), isa.Imm(4), isa.Imm(0x100))
	b.AtomAdd(isa.Global, isa.U32, isa.R(addr), isa.Imm(1))
	b.Exit()
	prog := b.MustBuild()

	d := testDevice(t, ST2Adders)
	rs, err := d.Launch(&Kernel{Program: prog, GridDim: 4, BlockDim: 64})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := d.Memory().ReadU32s(0x100, 4)
	for i, got := range out {
		if got != 64 {
			t.Fatalf("bin %d: got %d want 64", i, got)
		}
	}
	if rs.AtomicLaneOps != 256 {
		t.Errorf("atomic lane ops = %d", rs.AtomicLaneOps)
	}
}

// FP32/FP64 arithmetic and the FPU/DPU ST² units.
func TestFloatKernel(t *testing.T) {
	b := isa.NewBuilder("fp")
	gtid := b.Reg()
	x := b.Reg()
	y := b.Reg()
	addr := b.Reg()
	s := b.Reg()
	d64 := b.Reg()
	b.MovSpecial(gtid, isa.SRegGtid)
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(0x1000))
	b.Ld(isa.Global, isa.F32, x, isa.R(addr))
	b.FMul(isa.F32, y, isa.R(x), isa.ImmF32(2.0))
	b.FAdd(isa.F32, s, isa.R(x), isa.R(y))      // s = 3x
	b.FSub(isa.F32, s, isa.R(s), isa.ImmF32(1)) // s = 3x-1
	b.Cvt(isa.F64, d64, isa.R(s), isa.F32)
	b.FAdd(isa.F64, d64, isa.R(d64), isa.ImmF64(0.5))
	b.Cvt(isa.F32, s, isa.R(d64), isa.F64)
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(0x5000))
	b.St(isa.Global, isa.F32, isa.R(addr), isa.R(s))
	b.Exit()
	prog := b.MustBuild()

	d := testDevice(t, ST2Adders)
	const n = 256
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(i) * 0.25
	}
	if err := d.Memory().WriteF32s(0x1000, in); err != nil {
		t.Fatal(err)
	}
	rs, err := d.Launch(&Kernel{Program: prog, GridDim: 2, BlockDim: 128})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := d.Memory().ReadF32s(0x5000, n)
	for i, got := range out {
		want := float32(float64(3*in[i]-1) + 0.5)
		if got != want {
			t.Fatalf("lane %d: got %g want %g", i, got, want)
		}
	}
	if rs.Units[core.FPU].ThreadOps == 0 {
		t.Error("FPU unit saw no mantissa ops")
	}
	if rs.Units[core.DPU].ThreadOps == 0 {
		t.Error("DPU unit saw no mantissa ops")
	}
}

// ST² and baseline must produce identical results and instruction counts;
// ST² may take (slightly) more cycles, never fewer.
func TestST2MatchesBaselineResults(t *testing.T) {
	run := func(mode AdderMode) (*RunStats, []uint32) {
		d := testDevice(t, mode)
		const n = 2048
		a := make([]uint32, n)
		bv := make([]uint32, n)
		for i := range a {
			a[i] = uint32(i * 12345)
			bv[i] = uint32(i*999 + 77)
		}
		_ = d.Memory().WriteU32s(0x1000, a)
		_ = d.Memory().WriteU32s(0x11000, bv)
		rs, err := d.Launch(&Kernel{Program: vecAddKernel(t), GridDim: 16, BlockDim: 128, Params: []uint64{n}})
		if err != nil {
			t.Fatal(err)
		}
		out, _ := d.Memory().ReadU32s(0x21000, n)
		return rs, out
	}
	rsB, outB := run(BaselineAdders)
	rsS, outS := run(ST2Adders)
	for i := range outB {
		if outB[i] != outS[i] {
			t.Fatalf("result divergence at %d: %d vs %d", i, outB[i], outS[i])
		}
	}
	if rsB.TotalThreadInstrs() != rsS.TotalThreadInstrs() {
		t.Errorf("instruction counts differ: %d vs %d", rsB.TotalThreadInstrs(), rsS.TotalThreadInstrs())
	}
	if rsS.Cycles < rsB.Cycles {
		t.Errorf("ST² (%d cycles) should not be faster than baseline (%d)", rsS.Cycles, rsB.Cycles)
	}
	slowdown := float64(rsS.Cycles)/float64(rsB.Cycles) - 1
	if slowdown > 0.10 {
		t.Errorf("ST² slowdown %.1f%% is far beyond the paper's ≤3.5%%", 100*slowdown)
	}
}

func TestKernelValidation(t *testing.T) {
	d := testDevice(t, ST2Adders)
	if _, err := d.Launch(&Kernel{Program: nil, GridDim: 1, BlockDim: 32}); err == nil {
		t.Error("nil program should fail")
	}
	prog := vecAddKernel(t)
	if _, err := d.Launch(&Kernel{Program: prog, GridDim: 0, BlockDim: 32}); err == nil {
		t.Error("zero grid should fail")
	}
	if _, err := d.Launch(&Kernel{Program: prog, GridDim: 1, BlockDim: 2000}); err == nil {
		t.Error("oversized block should fail")
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.NumSMs = 0 },
		func(c *Config) { c.MaxWarpsPerSM = 63 },
		func(c *Config) { c.SliceBits = 0 },
		func(c *Config) { c.SliceBits = 16 },
		func(c *Config) { c.GlobalMemBytes = 0 },
		func(c *Config) { c.LineBytes = 100 },
		func(c *Config) { c.L1KB = 0 },
		func(c *Config) { c.MaxCycles = 0 },
		func(c *Config) { c.Speculation = ""; c.AdderMode = ST2Adders },
	}
	for i, mod := range cases {
		c := DefaultConfig()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	if BaselineAdders.String() != "baseline" || ST2Adders.String() != "st2" {
		t.Error("mode strings")
	}
}

func TestOutOfBoundsMemoryFails(t *testing.T) {
	b := isa.NewBuilder("oob")
	r := b.Reg()
	b.Mov(isa.U64, r, isa.Imm(1<<40))
	b.Ld(isa.Global, isa.U32, r, isa.R(r))
	b.Exit()
	prog := b.MustBuild()
	d := testDevice(t, ST2Adders)
	if _, err := d.Launch(&Kernel{Program: prog, GridDim: 1, BlockDim: 32}); err == nil {
		t.Error("out-of-bounds load should fail the launch")
	}
}

func TestDivisionByZeroFails(t *testing.T) {
	b := isa.NewBuilder("divz")
	r := b.Reg()
	b.Mov(isa.U32, r, isa.Imm(5))
	b.IDiv(isa.U32, r, isa.R(r), isa.Imm(0))
	b.Exit()
	prog := b.MustBuild()
	d := testDevice(t, ST2Adders)
	if _, err := d.Launch(&Kernel{Program: prog, GridDim: 1, BlockDim: 32}); err == nil {
		t.Error("division by zero should fail the launch")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (*RunStats, []uint32) {
		d := testDevice(t, ST2Adders)
		const n = 512
		a := make([]uint32, n)
		for i := range a {
			a[i] = uint32(i)
		}
		_ = d.Memory().WriteU32s(0x1000, a)
		_ = d.Memory().WriteU32s(0x11000, a)
		rs, err := d.Launch(&Kernel{Program: vecAddKernel(t), GridDim: 4, BlockDim: 128, Params: []uint64{n}})
		if err != nil {
			t.Fatal(err)
		}
		out, _ := d.Memory().ReadU32s(0x21000, n)
		return rs, out
	}
	r1, o1 := run()
	r2, o2 := run()
	if r1.Cycles != r2.Cycles || r1.MispredictionRate() != r2.MispredictionRate() {
		t.Error("simulation not deterministic")
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("results not deterministic")
		}
	}
}

func TestCacheBasics(t *testing.T) {
	c, err := NewCache(4, 128, 2) // 4 KB, 32 lines, 2-way, 16 sets
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0) {
		t.Error("cold access should miss")
	}
	if !c.Access(0) || !c.Access(64) {
		t.Error("same line should hit")
	}
	if c.Access(128) {
		t.Error("different line should miss")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate %g", st.HitRate())
	}
	// LRU eviction within a set: lines mapping to set 0 are multiples of
	// 128*16 = 2048.
	c.Reset()
	c.Access(0)
	c.Access(2048)
	c.Access(4096) // evicts line 0
	if c.Access(0) {
		t.Error("evicted line should miss")
	}
	if !c.Access(4096) {
		t.Error("most recent line should hit")
	}
	if _, err := NewCache(0, 128, 2); err == nil {
		t.Error("bad geometry should error")
	}
	if _, err := NewCache(1, 128, 32); err == nil {
		t.Error("too many ways should error")
	}
}

func TestMemoryHelpers(t *testing.T) {
	m := NewMemory(4096)
	if m.Size() != 4096 {
		t.Error("size")
	}
	if err := m.WriteF64s(0, []float64{1.5, -2.5}); err != nil {
		t.Fatal(err)
	}
	f, err := m.ReadF64s(0, 2)
	if err != nil || f[0] != 1.5 || f[1] != -2.5 {
		t.Errorf("f64 round trip: %v %v", f, err)
	}
	if err := m.WriteU64s(16, []uint64{42}); err != nil {
		t.Fatal(err)
	}
	u, _ := m.ReadU64s(16, 1)
	if u[0] != 42 {
		t.Error("u64 round trip")
	}
	if _, err := m.Load(4090, 8); err == nil {
		t.Error("straddling load should fail")
	}
	if err := m.Store(4096, 4, 1); err == nil {
		t.Error("out-of-bounds store should fail")
	}
	if _, err := m.Load(0, 3); err == nil {
		t.Error("odd size should fail")
	}
	v, err := m.Load(16, 8)
	if err != nil || v != 42 {
		t.Error("load")
	}
	if err := m.Store(24, 4, 7); err != nil {
		t.Fatal(err)
	}
	v, _ = m.Load(24, 4)
	if v != 7 {
		t.Error("store/load 4B")
	}
}

// Partial warps: block size not a multiple of 32.
func TestPartialWarp(t *testing.T) {
	b := isa.NewBuilder("partial")
	gtid := b.Reg()
	addr := b.Reg()
	b.MovSpecial(gtid, isa.SRegGtid)
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(0x2000))
	b.St(isa.Global, isa.U32, isa.R(addr), isa.R(gtid))
	b.Exit()
	prog := b.MustBuild()
	d := testDevice(t, ST2Adders)
	if _, err := d.Launch(&Kernel{Program: prog, GridDim: 2, BlockDim: 50}); err != nil {
		t.Fatal(err)
	}
	out, _ := d.Memory().ReadU32s(0x2000, 100)
	for i, got := range out {
		if got != uint32(i) {
			t.Fatalf("thread %d wrote %d", i, got)
		}
	}
}

// The GTO scheduler must produce identical architectural results and a
// plausible cycle count relative to LRR.
func TestGTOScheduler(t *testing.T) {
	run := func(pol SchedPolicy) (*RunStats, []uint32) {
		cfg := DefaultConfig()
		cfg.NumSMs = 2
		cfg.Scheduler = pol
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const n = 1024
		a := make([]uint32, n)
		for i := range a {
			a[i] = uint32(i * 13)
		}
		_ = d.Memory().WriteU32s(0x1000, a)
		_ = d.Memory().WriteU32s(0x11000, a)
		rs, err := d.Launch(&Kernel{Program: vecAddKernel(t), GridDim: 8, BlockDim: 128, Params: []uint64{n}})
		if err != nil {
			t.Fatal(err)
		}
		out, _ := d.Memory().ReadU32s(0x21000, n)
		return rs, out
	}
	lrr, outL := run(LRR)
	gto, outG := run(GTO)
	for i := range outL {
		if outL[i] != outG[i] {
			t.Fatalf("scheduler changed results at %d", i)
		}
	}
	if lrr.TotalThreadInstrs() != gto.TotalThreadInstrs() {
		t.Error("instruction counts must not depend on the scheduler")
	}
	ratio := float64(gto.Cycles) / float64(lrr.Cycles)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("GTO/LRR cycle ratio %.2f implausible (%d vs %d)", ratio, gto.Cycles, lrr.Cycles)
	}
	if LRR.String() != "lrr" || GTO.String() != "gto" {
		t.Error("policy strings")
	}
}

func TestSIMDEfficiency(t *testing.T) {
	// Full warps, no divergence → efficiency 1.
	d := testDevice(t, BaselineAdders)
	const n = 512
	a := make([]uint32, n)
	_ = d.Memory().WriteU32s(0x1000, a)
	_ = d.Memory().WriteU32s(0x11000, a)
	rs, err := d.Launch(&Kernel{Program: vecAddKernel(t), GridDim: 4, BlockDim: 128, Params: []uint64{n}})
	if err != nil {
		t.Fatal(err)
	}
	// Not exactly 1: the predicated-off guard branch issues with zero
	// active lanes and still counts as a warp instruction.
	uniform := rs.SIMDEfficiency()
	if uniform < 0.9 || uniform > 1.0 {
		t.Errorf("uniform kernel SIMD efficiency = %.3f, want ≈1", uniform)
	}
	// Divergent kernel: odd/even split halves the efficiency of the
	// divergent region.
	b := isa.NewBuilder("div2")
	tid := b.Reg()
	v := b.Reg()
	p := b.PredReg()
	b.MovSpecial(tid, isa.SRegTid)
	b.And(isa.U32, v, isa.R(tid), isa.Imm(1))
	b.Setp(isa.EQ, isa.U32, p, isa.R(v), isa.Imm(0))
	b.BraTo("odd", p, true)
	for i := 0; i < 8; i++ {
		b.IAdd(isa.U32, v, isa.R(v), isa.Imm(1))
	}
	b.Bra("join")
	b.Label("odd")
	for i := 0; i < 8; i++ {
		b.IAdd(isa.U32, v, isa.R(v), isa.Imm(2))
	}
	b.Label("join")
	b.Exit()
	d2 := testDevice(t, BaselineAdders)
	rs2, err := d2.Launch(&Kernel{Program: b.MustBuild(), GridDim: 1, BlockDim: 64})
	if err != nil {
		t.Fatal(err)
	}
	if e := rs2.SIMDEfficiency(); e > uniform-0.1 {
		t.Errorf("divergent kernel SIMD efficiency = %.3f, expected well below %.3f", e, uniform)
	}
	if (&RunStats{WarpInstrs: map[isa.FUClass]uint64{}}).SIMDEfficiency() != 0 {
		t.Error("empty stats should be 0")
	}
}

func TestTitanVConfigRuns(t *testing.T) {
	cfg := TitanVConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumSMs != 80 {
		t.Fatalf("SMs = %d", cfg.NumSMs)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A small grid only occupies a few of the 80 SMs.
	const n = 256
	a := make([]uint32, n)
	_ = d.Memory().WriteU32s(0x1000, a)
	_ = d.Memory().WriteU32s(0x11000, a)
	rs, err := d.Launch(&Kernel{Program: vecAddKernel(t), GridDim: 2, BlockDim: 128, Params: []uint64{n}})
	if err != nil {
		t.Fatal(err)
	}
	if rs.SMsUsed != 2 {
		t.Errorf("SMs used = %d, want 2 (grid-limited)", rs.SMsUsed)
	}
}

// Pipeline timing contracts: dependent instructions are spaced by the
// producer latency; independent instructions pipeline through the FU.
func TestPipelineTimingContracts(t *testing.T) {
	run := func(build func(b *isa.Builder)) uint64 {
		b := isa.NewBuilder("timing")
		build(b)
		b.Exit()
		prog := b.MustBuild()
		cfg := DefaultConfig()
		cfg.NumSMs = 1
		d, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := d.Launch(&Kernel{Program: prog, GridDim: 1, BlockDim: 32})
		if err != nil {
			t.Fatal(err)
		}
		return rs.Cycles
	}
	// A chain of N dependent adds is spaced by the producer latency (4
	// cycles); N independent adds issue back to back (a single warp is
	// bounded by its 1-IPC issue, not the 4 ALU pipes). The cycle ratio
	// must therefore approach the ALU latency.
	const n = 64
	dep := run(func(b *isa.Builder) {
		r := b.Reg()
		b.Mov(isa.U32, r, isa.Imm(1))
		for i := 0; i < n; i++ {
			b.IAdd(isa.U32, r, isa.R(r), isa.Imm(1))
		}
	})
	indep := run(func(b *isa.Builder) {
		rs := b.Regs(8)
		for _, r := range rs {
			b.Mov(isa.U32, r, isa.Imm(1))
		}
		for i := 0; i < n; i++ {
			r := rs[i%8]
			b.IAdd(isa.U32, r, isa.R(r), isa.Imm(1))
		}
	})
	if dep <= indep {
		t.Fatalf("dependent chain (%d cycles) must be slower than independent stream (%d)", dep, indep)
	}
	ratio := float64(dep) / float64(indep)
	if ratio < 3.0 || ratio > 4.5 {
		t.Errorf("dep/indep cycle ratio %.2f, expected ≈4 (the ALU latency)", ratio)
	}
	// Division is far slower than addition.
	divChain := run(func(b *isa.Builder) {
		r := b.Reg()
		b.Mov(isa.U32, r, isa.Imm(0x7FFFFFFF))
		for i := 0; i < n; i++ {
			b.IDiv(isa.U32, r, isa.R(r), isa.Imm(1))
		}
	})
	if divChain < dep*3 {
		t.Errorf("division chain (%d) should dwarf the add chain (%d)", divChain, dep)
	}
}
