package gpusim

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"strings"
	"testing"

	"st2gpu/internal/core"
	"st2gpu/internal/isa"
	"st2gpu/internal/metrics"
)

// recordRun launches prog with a recorder installed at the given worker
// count and returns the captured recording.
func recordRun(t testing.TB, prog *isa.Program, workers, grid, block int, setup func(m *Memory) error) *Recording {
	t.Helper()
	d, err := New(parallelConfig(workers, BaselineAdders))
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(0)
	d.SetRecorder(rec)
	if setup != nil {
		if err := setup(d.Memory()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Launch(&Kernel{Program: prog, GridDim: grid, BlockDim: block}); err != nil {
		t.Fatal(err)
	}
	return rec.Recording()
}

func fpSetup(m *Memory) error {
	in := make([]float32, 32*128)
	for i := range in {
		in[i] = float32(i%257) * 0.375
	}
	return m.WriteF32s(0x1000, in)
}

func serializeRecording(t *testing.T, rec *Recording) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRecordingBitIdenticalAcrossWorkers pins the tentpole determinism
// rule: because every SM appends to its own shard and shards fold in
// SM-ID order, the serialized recording must be byte-equal at any
// ParallelSMs worker count — recording no longer forces sequential.
func TestRecordingBitIdenticalAcrossWorkers(t *testing.T) {
	cases := []struct {
		name  string
		prog  *isa.Program
		grid  int
		block int
		setup func(m *Memory) error
	}{
		{"barrier", barrierKernel(t), 32, 128, nil},
		{"fp", fpKernel(t), 32, 128, fpSetup},
	}
	for _, tc := range cases {
		seq := recordRun(t, tc.prog, 1, tc.grid, tc.block, tc.setup)
		if seq.NumOps() == 0 {
			t.Fatalf("%s: recorded zero warp-add records", tc.name)
		}
		seqBytes := serializeRecording(t, seq)
		for _, workers := range []int{2, 8} {
			par := recordRun(t, tc.prog, workers, tc.grid, tc.block, tc.setup)
			if !bytes.Equal(seqBytes, serializeRecording(t, par)) {
				t.Errorf("%s: recording at ParallelSMs=%d is not byte-equal to sequential", tc.name, workers)
			}
		}
	}
}

// capturedWarp is one warp-synchronous tracer delivery.
type capturedWarp struct {
	kind     core.UnitKind
	pc, base uint32
	ops      [32]WarpAddOp
}

// captureTracer stores the full stream it observes.
type captureTracer struct{ evs []capturedWarp }

func (c *captureTracer) TraceWarpAdds(kind core.UnitKind, pc, base uint32, ops *[32]WarpAddOp) {
	c.evs = append(c.evs, capturedWarp{kind: kind, pc: pc, base: base, ops: *ops})
}

// TestReplayMatchesLiveTracer installs a live tracer and a recorder on
// the same launch (the tracer forces the sequential path, so the live
// stream is the globally ordered reference), then replays the recording
// and requires the decoded stream — order, masks, operands, carry-ins,
// and reconstructed sums — to equal the live one exactly.
func TestReplayMatchesLiveTracer(t *testing.T) {
	for _, tc := range []struct {
		name  string
		prog  *isa.Program
		grid  int
		block int
		setup func(m *Memory) error
	}{
		{"barrier", barrierKernel(t), 32, 128, nil},
		{"fp", fpKernel(t), 32, 128, fpSetup},
	} {
		d, err := New(parallelConfig(0, BaselineAdders))
		if err != nil {
			t.Fatal(err)
		}
		live := &captureTracer{}
		rec := NewRecorder(0)
		d.SetTracer(live)
		d.SetRecorder(rec)
		if tc.setup != nil {
			if err := tc.setup(d.Memory()); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := d.Launch(&Kernel{Program: tc.prog, GridDim: tc.grid, BlockDim: tc.block}); err != nil {
			t.Fatal(err)
		}
		replayed := &captureTracer{}
		if err := rec.Recording().Replay(replayed); err != nil {
			t.Fatalf("%s: replay: %v", tc.name, err)
		}
		if len(live.evs) == 0 {
			t.Fatalf("%s: live tracer saw no operations", tc.name)
		}
		if !reflect.DeepEqual(live.evs, replayed.evs) {
			t.Errorf("%s: replayed stream differs from live stream (%d live vs %d replayed records)",
				tc.name, len(live.evs), len(replayed.evs))
		}
	}
}

// TestRecordingCapFailsLoudly pins the memory-accounting contract: a
// recording that exceeds the configured cap must fail the launch with a
// clear error, not exhaust host memory.
func TestRecordingCapFailsLoudly(t *testing.T) {
	d, err := New(parallelConfig(0, BaselineAdders))
	if err != nil {
		t.Fatal(err)
	}
	d.SetRecorder(NewRecorder(512))
	if err := fpSetup(d.Memory()); err != nil {
		t.Fatal(err)
	}
	_, err = d.Launch(&Kernel{Program: fpKernel(t), GridDim: 32, BlockDim: 128})
	if err == nil {
		t.Fatal("launch succeeded despite a 512-byte recording cap")
	}
	if !strings.Contains(err.Error(), "cap") {
		t.Errorf("cap error %q does not mention the cap", err)
	}
}

// TestRecordingLaneCount pins the lane counter decode passes size their
// flat arrays from: it must equal the decoded stream's active-lane total,
// survive serialization, and read as 0 (unknown) from a legacy v1 stream.
func TestRecordingLaneCount(t *testing.T) {
	rec := recordRun(t, fpKernel(t), 0, 32, 128, fpSetup)
	var want uint64
	if err := rec.Decode(func(r *DecodedRecord) error {
		want += uint64(len(r.EA))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want == 0 || rec.NumLanes() != want {
		t.Fatalf("NumLanes() = %d, decoded stream holds %d active thread-ops", rec.NumLanes(), want)
	}

	raw := serializeRecording(t, rec)
	back, err := ReadRecording(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumLanes() != want {
		t.Errorf("roundtrip changed NumLanes: %d → %d", want, back.NumLanes())
	}

	// A v1 stream (no lane count in the header) reads back with lanes
	// unknown but the payload intact.
	v1 := append([]byte(nil), recMagicV1...)
	var ops bytes.Buffer
	if _, err := rec.WriteTo(&ops); err != nil {
		t.Fatal(err)
	}
	body := ops.Bytes()[len(recMagic):]
	// Strip the v2 lane-count varint that sits between the op count and
	// the segment count.
	r := bytes.NewReader(body)
	opsCount, err := binary.ReadUvarint(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := binary.ReadUvarint(r); err != nil { // lanes
		t.Fatal(err)
	}
	v1 = binary.AppendUvarint(v1, opsCount)
	rest := body[len(body)-r.Len():]
	v1 = append(v1, rest...)
	legacy, err := ReadRecording(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 stream rejected: %v", err)
	}
	if legacy.NumLanes() != 0 {
		t.Errorf("v1 stream NumLanes = %d, want 0 (unknown)", legacy.NumLanes())
	}
	if legacy.NumOps() != rec.NumOps() {
		t.Errorf("v1 stream NumOps = %d, want %d", legacy.NumOps(), rec.NumOps())
	}
	a, b := &captureTracer{}, &captureTracer{}
	if err := rec.Replay(a); err != nil {
		t.Fatal(err)
	}
	if err := legacy.Replay(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.evs, b.evs) {
		t.Error("v1-read recording replays a different stream")
	}
}

// TestRecordingFileRoundtrip serializes a recording, reads it back, and
// checks both the bytes and the replayed stream survive unchanged.
func TestRecordingFileRoundtrip(t *testing.T) {
	rec := recordRun(t, fpKernel(t), 0, 32, 128, fpSetup)
	raw := serializeRecording(t, rec)

	back, err := ReadRecording(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumOps() != rec.NumOps() || back.Bytes() != rec.Bytes() {
		t.Errorf("roundtrip changed size: ops %d→%d, bytes %d→%d",
			rec.NumOps(), back.NumOps(), rec.Bytes(), back.Bytes())
	}
	if !bytes.Equal(raw, serializeRecording(t, back)) {
		t.Error("re-serialized recording is not byte-equal")
	}

	a, b := &captureTracer{}, &captureTracer{}
	if err := rec.Replay(a); err != nil {
		t.Fatal(err)
	}
	if err := back.Replay(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.evs, b.evs) {
		t.Error("roundtripped recording replays a different stream")
	}
}

// TestReadRecordingRejectsGarbage checks corrupt inputs fail cleanly.
func TestReadRecordingRejectsGarbage(t *testing.T) {
	if _, err := ReadRecording(bytes.NewReader([]byte("not a recording"))); err == nil {
		t.Error("bad magic accepted")
	}
	rec := recordRun(t, barrierKernel(t), 0, 8, 64, nil)
	raw := serializeRecording(t, rec)
	if _, err := ReadRecording(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated recording accepted")
	}
}

// TestRecordBytesGauge checks the per-launch recorded-bytes gauge is
// published when (and only when) a recorder is installed, so plain runs
// keep their registry snapshot unchanged.
func TestRecordBytesGauge(t *testing.T) {
	run := func(withRecorder bool) map[string]any {
		d, err := New(parallelConfig(0, BaselineAdders))
		if err != nil {
			t.Fatal(err)
		}
		reg := metrics.New()
		d.SetMetrics(reg)
		if withRecorder {
			d.SetRecorder(NewRecorder(0))
		}
		if _, err := d.Launch(&Kernel{Program: barrierKernel(t), GridDim: 8, BlockDim: 64}); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot()
	}
	with := run(true)
	v, ok := with["sim.record_bytes"]
	if !ok {
		t.Fatal("sim.record_bytes missing from recording run's snapshot")
	}
	if f, _ := v.(float64); f <= 0 {
		t.Errorf("sim.record_bytes = %v, want > 0", v)
	}
	if _, ok := run(false)["sim.record_bytes"]; ok {
		t.Error("sim.record_bytes registered on a run without a recorder")
	}
}
