package gpusim

import (
	"time"

	"st2gpu/internal/metrics"
)

// PhaseTimings is the wall-clock (host) time one Launch spent in each
// phase. It is observability data, deliberately kept out of RunStats:
// RunStats is bit-identical across runs and worker counts, wall-clock
// time is not. Verify is zero until the caller that runs the workload's
// output check fills it in.
type PhaseTimings struct {
	Setup    time.Duration // SM/unit construction and block distribution
	Simulate time.Duration // worker-pool simulation of all SMs
	Fold     time.Duration // per-SM statistics fold
	Verify   time.Duration // host-oracle output check (caller-filled)
}

// Total sums the recorded phases.
func (t PhaseTimings) Total() time.Duration {
	return t.Setup + t.Simulate + t.Fold + t.Verify
}

// clampPhase guarantees a measured phase is visible (> 0) even when the
// host clock's resolution swallows a very short phase.
func clampPhase(d time.Duration) time.Duration {
	if d <= 0 {
		return time.Nanosecond
	}
	return d
}

// deviceMetrics caches the registry handles a Device publishes into.
// Counters and histograms that SM workers produce are written through
// per-SM shards (lock-free on the hot path, folded in SM-ID order after
// the workers join); launch-level values are written directly at fold
// time, which is single-threaded.
type deviceMetrics struct {
	reg *metrics.Registry

	launches     *metrics.Counter
	smCycles     *metrics.Counter // sum of per-SM cycle counts
	maxCycles    *metrics.Gauge   // last launch's critical-path cycles
	warpInstrs   *metrics.Counter
	threadInstrs *metrics.Counter
	threadOps    *metrics.Counter // ST² adder thread-ops
	mispredicts  *metrics.Counter
	stallCycles  *metrics.Counter
	crfReads     *metrics.Counter
	crfConflicts *metrics.Counter

	recompute    *metrics.Histogram // slices recomputed per misprediction
	mispredLanes *metrics.Histogram // mispredicted lanes per warp add op
	imbalance    *metrics.Histogram // per-SM cycles as % of the slowest SM
}

// newDeviceMetrics registers (or re-binds) the simulator's metric set on
// reg. Names are stable: the same registry can serve many devices and
// launches, accumulating across them.
func newDeviceMetrics(reg *metrics.Registry, maxSlices int) *deviceMetrics {
	return &deviceMetrics{
		reg:          reg,
		launches:     reg.Counter("sim.launches"),
		smCycles:     reg.Counter("sim.sm_cycles"),
		maxCycles:    reg.Gauge("sim.last_launch_cycles"),
		warpInstrs:   reg.Counter("sim.warp_instrs"),
		threadInstrs: reg.Counter("sim.thread_instrs"),
		threadOps:    reg.Counter("sim.st2_thread_ops"),
		mispredicts:  reg.Counter("sim.st2_mispredicts"),
		stallCycles:  reg.Counter("sim.st2_stall_cycles"),
		crfReads:     reg.Counter("sim.crf_reads"),
		crfConflicts: reg.Counter("sim.crf_conflicts"),
		recompute:    reg.Histogram("sim.recompute_per_mispredict", maxSlices),
		mispredLanes: reg.Histogram("sim.mispred_lanes_per_warp", 32),
		imbalance:    reg.Histogram("sim.sm_cycle_imbalance_pct", 100),
	}
}

// SetMetrics installs a registry the device publishes launch activity
// into (nil disables). Install before Launch; the same registry may be
// shared by many devices — counters accumulate across all of them.
func (d *Device) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		d.met = nil
		return
	}
	d.met = newDeviceMetrics(reg, d.maxSlices())
}

// maxSlices returns the largest slice count over the device's units (the
// 64-bit ALU), sizing the recompute histogram's buckets.
func (d *Device) maxSlices() int {
	return int(64 / d.cfg.SliceBits)
}

// publishShard writes one finished SM's totals into its metrics shard.
// Called once at the end of smState.run — zero cost per simulated
// instruction — on the worker goroutine, so everything goes through the
// lock-free shard, never the shared registry.
func (sm *smState) publishShard() {
	if sm.shard == nil {
		return
	}
	m := sm.dev.met
	s := sm.shard
	s.Count(m.smCycles, sm.cycle)
	var warp, thread uint64
	for _, v := range sm.stats.WarpInstrs {
		warp += v
	}
	for _, v := range sm.stats.ThreadInstrs {
		thread += v
	}
	s.Count(m.warpInstrs, warp)
	s.Count(m.threadInstrs, thread)
	s.Count(m.stallCycles, sm.stats.ST2StallCycles)
	for _, u := range sm.units() {
		us := u.Stats()
		s.Count(m.threadOps, us.ThreadOps)
		s.Count(m.mispredicts, us.ThreadMispredicts)
		if us.RecomputeHistogram != nil {
			for v, n := range us.RecomputeHistogram.Counts {
				s.ObserveN(m.recompute, v, n)
			}
		}
		if us.MispredLanesHistogram != nil {
			for v, n := range us.MispredLanesHistogram.Counts {
				s.ObserveN(m.mispredLanes, v, n)
			}
		}
	}
}

// publishLaunch records launch-level metrics after the fold: CRF traffic
// (read post-Flush, so it includes the end-of-kernel commit) and the
// per-SM cycle-imbalance distribution. Single-threaded; writes the
// registry directly.
func (d *Device) publishLaunch(run *RunStats) {
	if d.met == nil {
		return
	}
	m := d.met
	m.launches.Add(1)
	m.maxCycles.Set(float64(run.Cycles))
	m.crfReads.Add(run.CRF.Reads)
	m.crfConflicts.Add(run.CRF.Conflicts)
	if run.Cycles > 0 {
		for _, c := range run.PerSMCycles {
			m.imbalance.Observe(int(100 * c / run.Cycles))
		}
	}
}

