package gpusim

import (
	"encoding/binary"
	"fmt"
)

// Memory is the device's flat global memory. Kernels address it with byte
// addresses; hosts stage inputs and read back outputs through the typed
// helpers. All multi-byte values are little-endian.
type Memory struct {
	data []byte
}

// NewMemory allocates size bytes of zeroed device memory.
func NewMemory(size uint64) *Memory {
	return &Memory{data: make([]byte, size)}
}

// Size returns the capacity in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.data)) }

func (m *Memory) check(addr, n uint64) error {
	if addr+n > uint64(len(m.data)) || addr+n < addr {
		return fmt.Errorf("gpusim: memory access [%#x,%#x) outside %#x-byte device memory",
			addr, addr+n, len(m.data))
	}
	return nil
}

// Load reads n (4 or 8) bytes at addr.
func (m *Memory) Load(addr, n uint64) (uint64, error) {
	if err := m.check(addr, n); err != nil {
		return 0, err
	}
	switch n {
	case 4:
		return uint64(binary.LittleEndian.Uint32(m.data[addr:])), nil
	case 8:
		return binary.LittleEndian.Uint64(m.data[addr:]), nil
	default:
		return 0, fmt.Errorf("gpusim: unsupported access size %d", n)
	}
}

// Store writes n (4 or 8) bytes at addr.
func (m *Memory) Store(addr, n, val uint64) error {
	if err := m.check(addr, n); err != nil {
		return err
	}
	switch n {
	case 4:
		binary.LittleEndian.PutUint32(m.data[addr:], uint32(val))
	case 8:
		binary.LittleEndian.PutUint64(m.data[addr:], val)
	default:
		return fmt.Errorf("gpusim: unsupported access size %d", n)
	}
	return nil
}

// --- Host-side staging helpers ---

// WriteU32s stages a []uint32 at addr.
func (m *Memory) WriteU32s(addr uint64, vals []uint32) error {
	if err := m.check(addr, uint64(len(vals))*4); err != nil {
		return err
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint32(m.data[addr+uint64(i)*4:], v)
	}
	return nil
}

// ReadU32s reads n uint32 values from addr.
func (m *Memory) ReadU32s(addr uint64, n int) ([]uint32, error) {
	if err := m.check(addr, uint64(n)*4); err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(m.data[addr+uint64(i)*4:])
	}
	return out, nil
}

// WriteF32s stages a []float32 at addr.
func (m *Memory) WriteF32s(addr uint64, vals []float32) error {
	u := make([]uint32, len(vals))
	for i, v := range vals {
		u[i] = f32bits(v)
	}
	return m.WriteU32s(addr, u)
}

// ReadF32s reads n float32 values from addr.
func (m *Memory) ReadF32s(addr uint64, n int) ([]float32, error) {
	u, err := m.ReadU32s(addr, n)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = f32fromBits(u[i])
	}
	return out, nil
}

// WriteF64s stages a []float64 at addr.
func (m *Memory) WriteF64s(addr uint64, vals []float64) error {
	if err := m.check(addr, uint64(len(vals))*8); err != nil {
		return err
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(m.data[addr+uint64(i)*8:], f64bits(v))
	}
	return nil
}

// ReadF64s reads n float64 values from addr.
func (m *Memory) ReadF64s(addr uint64, n int) ([]float64, error) {
	if err := m.check(addr, uint64(n)*8); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = f64fromBits(binary.LittleEndian.Uint64(m.data[addr+uint64(i)*8:]))
	}
	return out, nil
}

// WriteU64s stages a []uint64 at addr.
func (m *Memory) WriteU64s(addr uint64, vals []uint64) error {
	if err := m.check(addr, uint64(len(vals))*8); err != nil {
		return err
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(m.data[addr+uint64(i)*8:], v)
	}
	return nil
}

// ReadU64s reads n uint64 values from addr.
func (m *Memory) ReadU64s(addr uint64, n int) ([]uint64, error) {
	if err := m.check(addr, uint64(n)*8); err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(m.data[addr+uint64(i)*8:])
	}
	return out, nil
}
