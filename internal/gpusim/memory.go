package gpusim

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Memory stripe geometry: addresses are striped across a small mutex
// array at 128-byte (default cache line) granularity, so kernel accesses
// to different lines proceed in parallel while same-line accesses from
// concurrently simulated SMs serialize.
const (
	memStripeShift = 7
	memStripeCount = 64 // power of two
)

// Memory is the device's flat global memory. Kernels address it with byte
// addresses; hosts stage inputs and read back outputs through the typed
// helpers. All multi-byte values are little-endian.
//
// The kernel-visible accessors (Load, Store, AtomicAdd) are safe for
// concurrent use by the parallel per-SM launch path via lock striping by
// address range. The host staging helpers (WriteU32s, ReadF64s, ...) are
// not synchronized: call them only while no kernel is running.
type Memory struct {
	data    []byte
	stripes [memStripeCount]sync.Mutex
}

// NewMemory allocates size bytes of zeroed device memory.
func NewMemory(size uint64) *Memory {
	return &Memory{data: make([]byte, size)}
}

// lockSpan acquires the stripe lock(s) covering [addr, addr+n). An access
// can straddle a stripe boundary, so up to two stripes are taken, always
// in ascending index order to stay deadlock-free. unlockSpan releases.
func (m *Memory) lockSpan(addr, n uint64) (a, b *sync.Mutex) {
	i := (addr >> memStripeShift) % memStripeCount
	j := ((addr + n - 1) >> memStripeShift) % memStripeCount
	if i == j {
		a = &m.stripes[i]
		a.Lock()
		return a, nil
	}
	if j < i {
		i, j = j, i
	}
	a, b = &m.stripes[i], &m.stripes[j]
	a.Lock()
	b.Lock()
	return a, b
}

func unlockSpan(a, b *sync.Mutex) {
	if b != nil {
		b.Unlock()
	}
	a.Unlock()
}

// Size returns the capacity in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.data)) }

func (m *Memory) check(addr, n uint64) error {
	if addr+n > uint64(len(m.data)) || addr+n < addr {
		return fmt.Errorf("gpusim: memory access [%#x,%#x) outside %#x-byte device memory",
			addr, addr+n, len(m.data))
	}
	return nil
}

// Load reads n (4 or 8) bytes at addr.
func (m *Memory) Load(addr, n uint64) (uint64, error) {
	if n != 4 && n != 8 {
		return 0, fmt.Errorf("gpusim: unsupported access size %d", n)
	}
	if err := m.check(addr, n); err != nil {
		return 0, err
	}
	a, b := m.lockSpan(addr, n)
	var v uint64
	if n == 4 {
		v = uint64(binary.LittleEndian.Uint32(m.data[addr:]))
	} else {
		v = binary.LittleEndian.Uint64(m.data[addr:])
	}
	unlockSpan(a, b)
	return v, nil
}

// Store writes n (4 or 8) bytes at addr.
func (m *Memory) Store(addr, n, val uint64) error {
	if n != 4 && n != 8 {
		return fmt.Errorf("gpusim: unsupported access size %d", n)
	}
	if err := m.check(addr, n); err != nil {
		return err
	}
	a, b := m.lockSpan(addr, n)
	if n == 4 {
		binary.LittleEndian.PutUint32(m.data[addr:], uint32(val))
	} else {
		binary.LittleEndian.PutUint64(m.data[addr:], val)
	}
	unlockSpan(a, b)
	return nil
}

// AtomicAdd adds delta to the n (4 or 8) byte integer at addr and returns
// the value it held before. The stripe lock is held across the whole
// read-modify-write, so concurrent atomics from different SMs never lose
// updates; because addition commutes, the final memory state is
// independent of SM interleaving.
func (m *Memory) AtomicAdd(addr, n, delta uint64) (uint64, error) {
	if n != 4 && n != 8 {
		return 0, fmt.Errorf("gpusim: unsupported access size %d", n)
	}
	if err := m.check(addr, n); err != nil {
		return 0, err
	}
	a, b := m.lockSpan(addr, n)
	var old uint64
	if n == 4 {
		old = uint64(binary.LittleEndian.Uint32(m.data[addr:]))
		binary.LittleEndian.PutUint32(m.data[addr:], uint32(old+delta))
	} else {
		old = binary.LittleEndian.Uint64(m.data[addr:])
		binary.LittleEndian.PutUint64(m.data[addr:], old+delta)
	}
	unlockSpan(a, b)
	return old, nil
}

// --- Host-side staging helpers ---

// WriteU32s stages a []uint32 at addr.
func (m *Memory) WriteU32s(addr uint64, vals []uint32) error {
	if err := m.check(addr, uint64(len(vals))*4); err != nil {
		return err
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint32(m.data[addr+uint64(i)*4:], v)
	}
	return nil
}

// ReadU32s reads n uint32 values from addr.
func (m *Memory) ReadU32s(addr uint64, n int) ([]uint32, error) {
	if err := m.check(addr, uint64(n)*4); err != nil {
		return nil, err
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(m.data[addr+uint64(i)*4:])
	}
	return out, nil
}

// WriteF32s stages a []float32 at addr.
func (m *Memory) WriteF32s(addr uint64, vals []float32) error {
	u := make([]uint32, len(vals))
	for i, v := range vals {
		u[i] = f32bits(v)
	}
	return m.WriteU32s(addr, u)
}

// ReadF32s reads n float32 values from addr.
func (m *Memory) ReadF32s(addr uint64, n int) ([]float32, error) {
	u, err := m.ReadU32s(addr, n)
	if err != nil {
		return nil, err
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = f32fromBits(u[i])
	}
	return out, nil
}

// WriteF64s stages a []float64 at addr.
func (m *Memory) WriteF64s(addr uint64, vals []float64) error {
	if err := m.check(addr, uint64(len(vals))*8); err != nil {
		return err
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(m.data[addr+uint64(i)*8:], f64bits(v))
	}
	return nil
}

// ReadF64s reads n float64 values from addr.
func (m *Memory) ReadF64s(addr uint64, n int) ([]float64, error) {
	if err := m.check(addr, uint64(n)*8); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = f64fromBits(binary.LittleEndian.Uint64(m.data[addr+uint64(i)*8:]))
	}
	return out, nil
}

// WriteU64s stages a []uint64 at addr.
func (m *Memory) WriteU64s(addr uint64, vals []uint64) error {
	if err := m.check(addr, uint64(len(vals))*8); err != nil {
		return err
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(m.data[addr+uint64(i)*8:], v)
	}
	return nil
}

// ReadU64s reads n uint64 values from addr.
func (m *Memory) ReadU64s(addr uint64, n int) ([]uint64, error) {
	if err := m.check(addr, uint64(n)*8); err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(m.data[addr+uint64(i)*8:])
	}
	return out, nil
}
