package gpusim

import (
	"encoding/binary"
	"fmt"

	"st2gpu/internal/isa"
)

// execMemory executes LD/ST/ATOM for the active lanes, modeling
// coalescing into cache-line transactions for the global space.
func (sm *smState) execMemory(w *warp, in isa.Instr, execMask uint32, res *stepResult) error {
	size := in.Type.Size()
	cfg := sm.dev.cfg

	switch in.Space {
	case isa.Param:
		// Parameter space: constant-cache-like, one transaction.
		res.memTransactions = 1
		res.latency = cfg.SharedLatency
		sm.stats.ParamAccesses++
		if in.Op != isa.OpLd {
			return fmt.Errorf("gpusim: %v on param space", in.Op)
		}
		for l := 0; l < w.nLanes; l++ {
			if execMask&(1<<l) == 0 {
				continue
			}
			off := sm.operand(w, in.Srcs[0], l)
			v, err := paramLoad(sm.params, off, size)
			if err != nil {
				return err
			}
			w.setReg(in.Dst, l, truncate(in.Type, v))
		}
		return nil

	case isa.Shared:
		res.memTransactions = 1
		res.latency = cfg.SharedLatency
		for l := 0; l < w.nLanes; l++ {
			if execMask&(1<<l) == 0 {
				continue
			}
			addr := sm.operand(w, in.Srcs[0], l)
			if addr+size > uint64(len(w.shared)) {
				return fmt.Errorf("gpusim: shared access [%#x,%#x) outside %d-byte block allocation",
					addr, addr+size, len(w.shared))
			}
			sm.stats.SharedAccesses++
			switch in.Op {
			case isa.OpLd:
				w.setReg(in.Dst, l, truncate(in.Type, loadLE(w.shared[addr:], size)))
			case isa.OpSt:
				storeLE(w.shared[addr:], size, sm.operand(w, in.Srcs[1], l))
			case isa.OpAtomAdd:
				sm.stats.AtomicLaneOps++
				old := loadLE(w.shared[addr:], size)
				storeLE(w.shared[addr:], size, old+sm.operand(w, in.Srcs[1], l))
			}
		}
		if in.Op == isa.OpAtomAdd {
			// Shared atomics serialize on bank conflicts; approximate one
			// extra transaction per four contending lanes.
			res.memTransactions += res.activeLanes / 4
		}
		return nil

	case isa.Global:
		sm.stats.GlobalAccesses++
		// Coalesce: distinct cache lines touched by the active lanes.
		lineShift := uint(0)
		for 1<<lineShift < cfg.LineBytes {
			lineShift++
		}
		var lines [32]uint64
		nLines := 0
		worst := uint64(0)
		for l := 0; l < w.nLanes; l++ {
			if execMask&(1<<l) == 0 {
				continue
			}
			addr := sm.operand(w, in.Srcs[0], l)
			switch in.Op {
			case isa.OpLd:
				v, err := sm.dev.mem.Load(addr, size)
				if err != nil {
					return err
				}
				w.setReg(in.Dst, l, truncate(in.Type, v))
			case isa.OpSt:
				if err := sm.dev.mem.Store(addr, size, sm.operand(w, in.Srcs[1], l)); err != nil {
					return err
				}
			case isa.OpAtomAdd:
				sm.stats.AtomicLaneOps++
				// The RMW must be indivisible: concurrently simulated SMs
				// contend on the same addresses (histogram bins etc.).
				if _, err := sm.dev.mem.AtomicAdd(addr, size, sm.operand(w, in.Srcs[1], l)); err != nil {
					return err
				}
			}
			line := addr >> lineShift
			seen := false
			for i := 0; i < nLines; i++ {
				if lines[i] == line {
					seen = true
					break
				}
			}
			if !seen && nLines < len(lines) {
				lines[nLines] = line
				nLines++
			}
		}
		// Timing: each transaction walks the hierarchy.
		for i := 0; i < nLines; i++ {
			addr := lines[i] << lineShift
			lat := cfg.L1HitLatency
			if !sm.l1.Access(addr) {
				sm.stats.L2Accesses++
				lat = cfg.L2HitLatency
				if !sm.l2.Access(addr) {
					sm.stats.DRAMAccesses++
					lat = cfg.DRAMLatency
				}
			}
			if lat > worst {
				worst = lat
			}
		}
		res.memTransactions = nLines
		if in.Op == isa.OpAtomAdd {
			// Atomics resolve at the L2: pay at least its latency and
			// serialize contending lanes.
			if worst < cfg.L2HitLatency {
				worst = cfg.L2HitLatency
			}
			res.memTransactions += res.activeLanes / 2
		}
		res.latency = worst
		return nil

	default:
		return fmt.Errorf("gpusim: unknown memory space %v", in.Space)
	}
}

func loadLE(b []byte, size uint64) uint64 {
	if size == 4 {
		return uint64(binary.LittleEndian.Uint32(b))
	}
	return binary.LittleEndian.Uint64(b)
}

func storeLE(b []byte, size uint64, v uint64) {
	if size == 4 {
		binary.LittleEndian.PutUint32(b, uint32(v))
		return
	}
	binary.LittleEndian.PutUint64(b, v)
}
