package gpusim

import (
	"bytes"
	"reflect"
	"testing"

	"st2gpu/internal/metrics"
	"st2gpu/internal/obs"
)

// TestTracingDoesNotPerturbLaunch pins the span tracer's core contract:
// running the identical launch with the tracer (and a metrics registry
// and recorder) installed produces bit-identical RunStats and a
// byte-identical recording at every worker count, and identical to the
// tracer-free run. Spans observe; they never steer.
func TestTracingDoesNotPerturbLaunch(t *testing.T) {
	in := make([]float32, 32*128)
	for i := range in {
		in[i] = float32(i%257) * 0.375
	}
	run := func(workers int, tr *obs.Tracer) (*RunStats, []byte) {
		d, err := New(parallelConfig(workers, ST2Adders))
		if err != nil {
			t.Fatal(err)
		}
		d.SetObs(tr)
		d.SetMetrics(metrics.New())
		rec := NewRecorder(0)
		d.SetRecorder(rec)
		if err := d.Memory().WriteF32s(0x1000, in); err != nil {
			t.Fatal(err)
		}
		rs, err := d.Launch(&Kernel{Program: fpKernel(t), GridDim: 32, BlockDim: 128})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := rec.Recording().WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return rs, buf.Bytes()
	}

	baseRS, baseRec := run(1, nil)
	for _, workers := range []int{1, 2, 8} {
		tr := obs.New()
		rs, recBytes := run(workers, tr)
		if !reflect.DeepEqual(baseRS, rs) {
			t.Errorf("workers=%d: RunStats with tracer differ from untraced baseline", workers)
		}
		if !bytes.Equal(baseRec, recBytes) {
			t.Errorf("workers=%d: recording bytes with tracer differ from untraced baseline", workers)
		}

		// The spans themselves must be structurally sane: one launch root
		// with setup/simulate/fold (plus record.fold) children.
		spans := tr.Spans()
		byName := map[string]obs.Span{}
		for _, s := range spans {
			byName[s.Name] = s
		}
		root, ok := byName["gpusim.launch"]
		if !ok {
			t.Fatalf("workers=%d: no gpusim.launch span in %d spans", workers, len(spans))
		}
		for _, child := range []string{"setup", "simulate", "fold", "record.fold"} {
			s, ok := byName[child]
			if !ok {
				t.Errorf("workers=%d: missing %s span", workers, child)
				continue
			}
			if s.Parent == 0 {
				t.Errorf("workers=%d: %s span has no parent", workers, child)
			}
		}
		if byName["simulate"].Parent != root.ID {
			t.Errorf("workers=%d: simulate span not under the launch root", workers)
		}
	}
}
