package gpusim

import (
	"math"
	"testing"

	"st2gpu/internal/isa"
)

// evalOp runs a one-instruction program: r0 = <op>(inputs...) on a single
// warp and returns lane 0's result. Inputs are staged with typed movs.
func evalOp(t *testing.T, stage func(b *isa.Builder, dst isa.Reg)) uint64 {
	t.Helper()
	b := isa.NewBuilder("op")
	dst := b.Reg()
	stage(b, dst)
	addr := b.Reg()
	b.Mov(isa.U64, addr, isa.Imm(0x100))
	b.St(isa.Global, isa.U64, isa.R(addr), isa.R(dst))
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.NumSMs = 1
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Launch(&Kernel{Program: prog, GridDim: 1, BlockDim: 32}); err != nil {
		t.Fatal(err)
	}
	v, err := d.Memory().Load(0x100, 8)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// movI stages an integer constant of the given type.
func movI(b *isa.Builder, ty isa.Type, v uint64) isa.Reg {
	r := b.Reg()
	b.Mov(ty, r, isa.Imm(v))
	return r
}

func f32b(v float32) uint64 { return uint64(math.Float32bits(v)) }
func f64b(v float64) uint64 { return math.Float64bits(v) }

func TestIntegerOpcodeSemantics(t *testing.T) {
	neg5 := uint64(0xFFFFFFFB) // raw 32-bit -5
	cases := []struct {
		name string
		emit func(b *isa.Builder, dst isa.Reg)
		want uint64
	}{
		{"min.s32 negative", func(b *isa.Builder, d isa.Reg) {
			b.IMin(isa.S32, d, isa.R(movI(b, isa.S32, neg5)), isa.Imm(3))
		}, ^uint64(4)}, // -5 sign-extended
		{"max.s32 negative", func(b *isa.Builder, d isa.Reg) {
			b.IMax(isa.S32, d, isa.R(movI(b, isa.S32, neg5)), isa.Imm(3))
		}, 3},
		{"min.u32 wraps", func(b *isa.Builder, d isa.Reg) {
			b.IMin(isa.U32, d, isa.R(movI(b, isa.U32, neg5)), isa.Imm(3))
		}, 3}, // 0xFFFFFFFB > 3 unsigned
		{"min.s64", func(b *isa.Builder, d isa.Reg) {
			b.IMin(isa.S64, d, isa.R(movI(b, isa.S64, ^uint64(8))), isa.Imm(2))
		}, ^uint64(8)},
		{"max.u64", func(b *isa.Builder, d isa.Reg) {
			b.IMax(isa.U64, d, isa.R(movI(b, isa.U64, 1<<40)), isa.Imm(7))
		}, 1 << 40},
		{"not.u64", func(b *isa.Builder, d isa.Reg) {
			b.Not(isa.U64, d, isa.R(movI(b, isa.U64, 0x0F0F)))
		}, ^uint64(0x0F0F)},
		{"shr.s32 arithmetic", func(b *isa.Builder, d isa.Reg) {
			b.Shr(isa.S32, d, isa.R(movI(b, isa.S32, 0x80000000)), isa.Imm(4))
		}, 0xFFFFFFFFF8000000},
		{"shr.u32 logical", func(b *isa.Builder, d isa.Reg) {
			b.Shr(isa.U32, d, isa.R(movI(b, isa.U32, 0x80000000)), isa.Imm(4))
		}, 0x08000000},
		{"shr.s64 arithmetic", func(b *isa.Builder, d isa.Reg) {
			b.Shr(isa.S64, d, isa.R(movI(b, isa.S64, 1<<63)), isa.Imm(8))
		}, 0xFF80000000000000}, // arithmetic shift fill
		{"shr.u64 logical", func(b *isa.Builder, d isa.Reg) {
			b.Shr(isa.U64, d, isa.R(movI(b, isa.U64, 1<<63)), isa.Imm(8))
		}, 1 << 55},
		{"abs.s32", func(b *isa.Builder, d isa.Reg) {
			b.Abs(isa.S32, d, isa.R(movI(b, isa.S32, neg5)))
		}, 5},
		{"abs.s64", func(b *isa.Builder, d isa.Reg) {
			b.Abs(isa.S64, d, isa.R(movI(b, isa.S64, ^uint64(76))))
		}, 77},
		{"mul.u64 wide", func(b *isa.Builder, d isa.Reg) {
			b.IMul(isa.U64, d, isa.R(movI(b, isa.U64, 1<<33)), isa.Imm(4))
		}, 1 << 35},
		{"mad.u64", func(b *isa.Builder, d isa.Reg) {
			b.IMad(isa.U64, d, isa.R(movI(b, isa.U64, 1<<32)), isa.Imm(2), isa.Imm(5))
		}, 1<<33 + 5},
		{"div.s32 negative", func(b *isa.Builder, d isa.Reg) {
			b.IDiv(isa.S32, d, isa.R(movI(b, isa.S32, 0xFFFFFFF9)), isa.Imm(2))
		}, ^uint64(2)}, // -3, sign-extended canonical S32 form
		{"rem.s32 negative", func(b *isa.Builder, d isa.Reg) {
			b.IRem(isa.S32, d, isa.R(movI(b, isa.S32, 0xFFFFFFF9)), isa.Imm(2))
		}, ^uint64(0)}, // -1, sign-extended canonical S32 form
		{"div.s64", func(b *isa.Builder, d isa.Reg) {
			b.IDiv(isa.S64, d, isa.R(movI(b, isa.S64, ^uint64(99))), isa.Imm(7))
		}, ^uint64(13)}, // -14
		{"rem.s64", func(b *isa.Builder, d isa.Reg) {
			b.IRem(isa.S64, d, isa.R(movI(b, isa.S64, ^uint64(99))), isa.Imm(7))
		}, ^uint64(1)}, // -2
		{"div.u64", func(b *isa.Builder, d isa.Reg) {
			b.IDiv(isa.U64, d, isa.R(movI(b, isa.U64, 1<<40)), isa.Imm(1<<10))
		}, 1 << 30},
		{"rem.u64", func(b *isa.Builder, d isa.Reg) {
			b.IRem(isa.U64, d, isa.R(movI(b, isa.U64, (1<<40)+123)), isa.Imm(1<<20))
		}, 123},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if got := evalOp(t, c.emit); got != c.want {
				t.Errorf("got %#x, want %#x", got, c.want)
			}
		})
	}
}

func TestFloatOpcodeSemantics(t *testing.T) {
	cases := []struct {
		name string
		emit func(b *isa.Builder, dst isa.Reg)
		want uint64
	}{
		{"mul.f64", func(b *isa.Builder, d isa.Reg) {
			b.FMul(isa.F64, d, isa.R(movI(b, isa.F64, f64b(1.5))), isa.ImmF64(-2))
		}, f64b(-3)},
		{"fma.f64", func(b *isa.Builder, d isa.Reg) {
			b.FFma(isa.F64, d, isa.R(movI(b, isa.F64, f64b(2))), isa.ImmF64(3), isa.ImmF64(0.5))
		}, f64b(6.5)},
		{"div.f64", func(b *isa.Builder, d isa.Reg) {
			b.FDiv(isa.F64, d, isa.R(movI(b, isa.F64, f64b(1))), isa.ImmF64(4))
		}, f64b(0.25)},
		{"min.f64", func(b *isa.Builder, d isa.Reg) {
			b.FMin(isa.F64, d, isa.R(movI(b, isa.F64, f64b(-1))), isa.ImmF64(2))
		}, f64b(-1)},
		{"max.f32", func(b *isa.Builder, d isa.Reg) {
			b.FMax(isa.F32, d, isa.R(movI(b, isa.F32, f32b(-1))), isa.ImmF32(2))
		}, f32b(2)},
		{"neg.f64", func(b *isa.Builder, d isa.Reg) {
			b.FNeg(isa.F64, d, isa.R(movI(b, isa.F64, f64b(3.5))))
		}, f64b(-3.5)},
		{"abs.f32", func(b *isa.Builder, d isa.Reg) {
			b.FAbs(isa.F32, d, isa.R(movI(b, isa.F32, f32b(-7))))
		}, f32b(7)},
		{"sqrt.f64", func(b *isa.Builder, d isa.Reg) {
			b.Sqrt(isa.F64, d, isa.R(movI(b, isa.F64, f64b(9))))
		}, f64b(3)},
		{"rsqrt.f64", func(b *isa.Builder, d isa.Reg) {
			b.Rsqrt(isa.F64, d, isa.R(movI(b, isa.F64, f64b(4))))
		}, f64b(0.5)},
		{"rcp.f64", func(b *isa.Builder, d isa.Reg) {
			b.Rcp(isa.F64, d, isa.R(movI(b, isa.F64, f64b(8))))
		}, f64b(0.125)},
		{"ex2.f64", func(b *isa.Builder, d isa.Reg) {
			b.Exp2(isa.F64, d, isa.R(movI(b, isa.F64, f64b(10))))
		}, f64b(1024)},
		{"lg2.f64", func(b *isa.Builder, d isa.Reg) {
			b.Log2(isa.F64, d, isa.R(movI(b, isa.F64, f64b(1024))))
		}, f64b(10)},
		{"sin.f64 zero", func(b *isa.Builder, d isa.Reg) {
			b.Sin(isa.F64, d, isa.R(movI(b, isa.F64, f64b(0))))
		}, f64b(0)},
		{"cos.f64 zero", func(b *isa.Builder, d isa.Reg) {
			b.Cos(isa.F64, d, isa.R(movI(b, isa.F64, f64b(0))))
		}, f64b(1)},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if got := evalOp(t, c.emit); got != c.want {
				t.Errorf("got %#x, want %#x", got, c.want)
			}
		})
	}
}

func TestCvtSemantics(t *testing.T) {
	cases := []struct {
		name     string
		from, to isa.Type
		in       uint64
		want     uint64
	}{
		{"u32→f32", isa.U32, isa.F32, 7, f32b(7)},
		{"s32→f32 negative", isa.S32, isa.F32, 0xFFFFFFFD, f32b(-3)},
		{"u32→f64", isa.U32, isa.F64, 1000, f64b(1000)},
		{"s64→f64 negative", isa.S64, isa.F64, ^uint64(11), f64b(-12)},
		{"f32→s32 truncates", isa.F32, isa.S32, f32b(-2.9), ^uint64(1)},
		{"f32→u32", isa.F32, isa.U32, f32b(3.7), 3},
		{"f64→f32", isa.F64, isa.F32, f64b(1.5), f32b(1.5)},
		{"f32→f64", isa.F32, isa.F64, f32b(0.5), f64b(0.5)},
		{"f64→s64", isa.F64, isa.S64, f64b(-123.9), ^uint64(122)},
		{"u64→u32 truncates", isa.U64, isa.U32, 1<<40 | 5, 5},
		{"s32→s64 sign extends", isa.S32, isa.S64, 0xFFFFFFFF, ^uint64(0)},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got := evalOp(t, func(b *isa.Builder, d isa.Reg) {
				src := b.Reg()
				b.Mov(c.from, src, isa.Imm(c.in))
				b.Cvt(c.to, d, isa.R(src), c.from)
			})
			if got != c.want {
				t.Errorf("got %#x, want %#x", got, c.want)
			}
		})
	}
}

// Every comparison operator × representative type, captured through Selp.
func TestSetpSemantics(t *testing.T) {
	check := func(name string, ty isa.Type, cmp isa.CmpOp, a, b uint64, want bool) {
		t.Helper()
		got := evalOp(t, func(bb *isa.Builder, d isa.Reg) {
			ra := bb.Reg()
			rb := bb.Reg()
			bb.Mov(ty, ra, isa.Imm(a))
			bb.Mov(ty, rb, isa.Imm(b))
			p := bb.PredReg()
			bb.Setp(cmp, ty, p, isa.R(ra), isa.R(rb))
			bb.Selp(isa.U64, d, isa.Imm(1), isa.Imm(0), p)
		})
		if (got == 1) != want {
			t.Errorf("%s: got %d, want %v", name, got, want)
		}
	}
	neg := uint64(0xFFFFFFFC)
	check("lt.s32 neg", isa.S32, isa.LT, neg, 3, true)
	check("lt.u32 neg-as-big", isa.U32, isa.LT, neg, 3, false)
	check("le.s32 equal", isa.S32, isa.LE, 5, 5, true)
	check("gt.s64", isa.S64, isa.GT, ^uint64(1), ^uint64(6), true)
	check("ge.u64", isa.U64, isa.GE, 9, 9, true)
	check("ne.u32", isa.U32, isa.NE, 1, 2, true)
	check("eq.f32", isa.F32, isa.EQ, f32b(1.5), f32b(1.5), true)
	check("lt.f32", isa.F32, isa.LT, f32b(-0.5), f32b(0.25), true)
	check("gt.f64", isa.F64, isa.GT, f64b(2.5), f64b(2.4), true)
	check("le.f64 nan is false", isa.F64, isa.LE, f64b(math.NaN()), f64b(1), false)
}
