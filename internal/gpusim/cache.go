package gpusim

import "fmt"

// CacheStats counts accesses for the timing and energy models.
type CacheStats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// HitRate returns hits/accesses (0 when idle).
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Merge adds o's counters into s (per-SM cache shards folding into a
// launch or device aggregate).
func (s *CacheStats) Merge(o CacheStats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
}

// Cache is a set-associative cache with LRU replacement, modeled at tag
// granularity (no data storage — the simulator's memory is always
// coherent, caches only shape timing and energy).
//
// Cache is not safe for concurrent use. The device never shares one: each
// SM owns a private L1 and a private L2 shard (see the concurrency model
// in DESIGN.md), so the simulation hot path needs no cache locking.
type Cache struct {
	sets     int
	ways     int
	lineBits uint
	tags     []uint64 // sets×ways; 0 = invalid (tag 0 encoded as tag+1)
	lru      []uint64 // per-line last-use stamp
	stamp    uint64
	stats    CacheStats
}

// NewCache builds a cache of sizeKB with the given line size and ways.
func NewCache(sizeKB, lineBytes, ways int) (*Cache, error) {
	if sizeKB <= 0 || lineBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("gpusim: bad cache geometry %d KB / %d B / %d ways", sizeKB, lineBytes, ways)
	}
	lines := sizeKB * 1024 / lineBytes
	if lines < ways {
		return nil, fmt.Errorf("gpusim: cache too small for %d ways", ways)
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("gpusim: set count %d not a power of two", sets)
	}
	var lb uint
	for 1<<lb < lineBytes {
		lb++
	}
	return &Cache{
		sets:     sets,
		ways:     ways,
		lineBits: lb,
		tags:     make([]uint64, sets*ways),
		lru:      make([]uint64, sets*ways),
	}, nil
}

// Access looks up the line containing addr, filling it on a miss, and
// reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.stamp++
	c.stats.Accesses++
	line := addr >> c.lineBits
	set := int(line) & (c.sets - 1)
	tag := line + 1 // +1 so a zero entry means invalid
	base := set * c.ways
	victim := base
	oldest := ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == tag {
			c.lru[i] = c.stamp
			c.stats.Hits++
			return true
		}
		if c.lru[i] < oldest {
			oldest = c.lru[i]
			victim = i
		}
	}
	c.stats.Misses++
	c.tags[victim] = tag
	c.lru[victim] = c.stamp
	return false
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.stamp = 0
	c.stats = CacheStats{}
}
