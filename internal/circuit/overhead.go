package circuit

import "fmt"

// LevelShifter models the voltage-domain crossing cells ST² adds around
// each adder (Section VI). Constants default to the published figures the
// paper cites: 2.8 µm² at 45 nm [20], 1.38 fJ/transition and 307 nW static
// at 16 nm FinFET [21], 20.8 ps worst-case delay for a 500→790 mV crossing.
type LevelShifter struct {
	Area             float64 // µm² per shifter
	EnergyTransition float64 // joules per transition
	StaticPower      float64 // watts per shifter
	Delay            float64 // seconds per crossing
}

// DefaultLevelShifter returns the published figures used in Section VI.
func DefaultLevelShifter() LevelShifter {
	return LevelShifter{
		Area:             2.8,      // µm² (45 nm, [20])
		EnergyTransition: 1.38e-15, // 1.38 fJ ([21])
		StaticPower:      307e-9,   // 307 nW ([21])
		Delay:            20.8e-12, // 20.8 ps ([21])
	}
}

// ChipConfig describes the GPU-level quantities needed to turn per-cell
// overheads into chip totals. Defaults model an NVIDIA TITAN V.
type ChipConfig struct {
	SMs             int
	ALUsPerSM       int
	FPUsPerSM       int
	DPUsPerSM       int
	ChipArea        float64 // mm²
	OnChipSRAMBytes int64   // caches + register files, for the 0.09% comparison
}

// TitanV returns the TITAN V configuration the paper evaluates
// (80 SMs × 64 ALUs, 64 FPUs, 32 DPUs; 815 mm²; ~55 MB of on-chip SRAM
// counting register files, L1 and L2).
func TitanV() ChipConfig {
	return ChipConfig{
		SMs:             80,
		ALUsPerSM:       64,
		FPUsPerSM:       64,
		DPUsPerSM:       32,
		ChipArea:        815,
		OnChipSRAMBytes: 55 * 1024 * 1024,
	}
}

// Adders returns the total number of ST²-equipped adder units on the chip.
func (c ChipConfig) Adders() int {
	return c.SMs * (c.ALUsPerSM + c.FPUsPerSM + c.DPUsPerSM)
}

// OverheadBudget aggregates the ST² area/power overheads of Section VI.
type OverheadBudget struct {
	Shifters            int     // level shifter instances on the chip
	ShifterAreaMM2      float64 // total level-shifter area, mm²
	ShifterAreaFraction float64 // of chip area
	ShifterStaticW      float64 // total static power, watts
	ShifterDynamicW     float64 // worst-case dynamic power at the given toggle rate, watts
	CRFBytesPerSM       int     // carry register file per SM
	CRFBytesChip        int64   // all SMs
	StateDFFBytesChip   int64   // per-slice state/Cout DFF storage
	TotalSRAMBytes      int64   // CRF + DFFs
	SRAMFraction        float64 // of on-chip SRAM
}

// CRFGeometry describes the paper's Carry Register File: 16 entries
// (PC[3:0]) × 224 bits (7 carry bits × 32 threads).
type CRFGeometry struct {
	Entries    int // history entries (2^pcBits)
	BitsPerRow int // 7 predictions × 32 lanes
}

// DefaultCRF returns the 16×224-bit geometry of the final design.
func DefaultCRF() CRFGeometry { return CRFGeometry{Entries: 16, BitsPerRow: 224} }

// Bytes returns the CRF storage per SM.
func (g CRFGeometry) Bytes() int { return g.Entries * g.BitsPerRow / 8 }

// ReadEnergy returns the energy of one full-row CRF read at nominal
// voltage (all BitsPerRow bits plus decode amortization).
func (g CRFGeometry) ReadEnergy(t Technology) float64 {
	bits := float64(g.BitsPerRow)
	return bits * CellSRAMBit.EnergyGates * t.GateEnergy(t.VNominal)
}

// ComputeOverheads reproduces the Section VI overhead analysis.
//
// shiftersPerAdder: the paper places shifters on each adder's two input
// operands and its output → 3 per adder unit (each handling a full word,
// counted as one shifter instance per crossing as in the paper's budget).
// toggleRate: fraction of shifter bits flipping per cycle (1.0 = the
// paper's worst case); adderUtilization: fraction of cycles an adder is
// busy; clockHz: core clock.
func ComputeOverheads(chip ChipConfig, ls LevelShifter, crf CRFGeometry,
	sliceCount int, toggleRate, adderUtilization, clockHz float64) (OverheadBudget, error) {
	if toggleRate < 0 || toggleRate > 1 {
		return OverheadBudget{}, fmt.Errorf("circuit: toggle rate %.3g outside [0,1]", toggleRate)
	}
	if adderUtilization < 0 || adderUtilization > 1 {
		return OverheadBudget{}, fmt.Errorf("circuit: utilization %.3g outside [0,1]", adderUtilization)
	}
	const shiftersPerAdder = 3 // two operand inputs + one output domain crossing
	// Each crossing shifts a 64-bit word: the per-bit published cell is
	// multiplied by the word width for area and energy.
	const bitsPerCrossing = 64
	// Shifter cells are per bit: every crossing needs one cell per wire.
	n := chip.Adders() * shiftersPerAdder * bitsPerCrossing
	areaUM2 := float64(n) * ls.Area
	budget := OverheadBudget{
		Shifters:            n,
		ShifterAreaMM2:      areaUM2 / 1e6,
		ShifterAreaFraction: areaUM2 / 1e6 / chip.ChipArea,
		ShifterStaticW:      float64(n) * ls.StaticPower,
		ShifterDynamicW: float64(n) * toggleRate *
			adderUtilization * ls.EnergyTransition * clockHz,
	}
	budget.CRFBytesPerSM = crf.Bytes()
	budget.CRFBytesChip = int64(chip.SMs) * int64(crf.Bytes())
	// Each slice except slice 0 carries a State DFF and a Cout DFF → 2 bits
	// per slice; 14 bits per 8-slice ALU adder, 4 per FP32, 12 per FP64.
	dffBitsPerALU := 2 * (sliceCount - 1)
	const dffBitsPerFPU = 4  // 3 mantissa slices → 2·2
	const dffBitsPerDPU = 12 // 7 mantissa slices → 2·6
	dffBits := int64(chip.SMs) * (int64(chip.ALUsPerSM*dffBitsPerALU) +
		int64(chip.FPUsPerSM*dffBitsPerFPU) + int64(chip.DPUsPerSM*dffBitsPerDPU))
	budget.StateDFFBytesChip = dffBits / 8
	budget.TotalSRAMBytes = budget.CRFBytesChip + budget.StateDFFBytesChip
	if chip.OnChipSRAMBytes > 0 {
		budget.SRAMFraction = float64(budget.TotalSRAMBytes) / float64(chip.OnChipSRAMBytes)
	}
	return budget, nil
}
