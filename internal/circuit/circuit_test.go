package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTechnologyValidate(t *testing.T) {
	if err := SAED90().Validate(); err != nil {
		t.Errorf("SAED90 should validate: %v", err)
	}
	if err := FinFET12().Validate(); err != nil {
		t.Errorf("FinFET12 should validate: %v", err)
	}
	bad := SAED90()
	bad.VNominal = bad.VThreshold
	if err := bad.Validate(); err == nil {
		t.Error("VNominal == VThreshold should fail validation")
	}
	bad = SAED90()
	bad.Alpha = 3
	if err := bad.Validate(); err == nil {
		t.Error("alpha outside [1,2] should fail validation")
	}
	bad = SAED90()
	bad.CGate = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero capacitance should fail validation")
	}
}

func TestGateDelayMonotone(t *testing.T) {
	tech := SAED90()
	prev := math.Inf(-1)
	// Delay must strictly increase as voltage drops toward threshold.
	for v := tech.VNominal; v > tech.VThreshold+0.05; v -= 0.05 {
		d, err := tech.GateDelay(v)
		if err != nil {
			t.Fatalf("GateDelay(%.2f): %v", v, err)
		}
		if d <= prev {
			t.Fatalf("delay not increasing as V drops: d(%.2f)=%.3g prev=%.3g", v, d, prev)
		}
		prev = d
	}
	if _, err := tech.GateDelay(tech.VThreshold); err == nil {
		t.Error("delay at threshold should error")
	}
}

func TestGateDelayNominalAnchor(t *testing.T) {
	tech := SAED90()
	d, err := tech.GateDelay(tech.VNominal)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-40e-12) > 1e-15 {
		t.Errorf("nominal stage delay = %.3g, want 40 ps anchor", d)
	}
}

func TestGateEnergyQuadratic(t *testing.T) {
	tech := SAED90()
	e1 := tech.GateEnergy(1.2)
	e2 := tech.GateEnergy(0.6)
	if math.Abs(e1/e2-4) > 1e-9 {
		t.Errorf("halving V should quarter energy: ratio %.3g", e1/e2)
	}
}

func TestCharacterizeAdderBasics(t *testing.T) {
	tech := SAED90()
	rca, err := tech.CharacterizeAdder(AdderSpec{RippleCarry, 64}, tech.VNominal)
	if err != nil {
		t.Fatal(err)
	}
	pfx, err := tech.CharacterizeAdder(AdderSpec{ParallelPrefix, 64}, tech.VNominal)
	if err != nil {
		t.Fatal(err)
	}
	if rca.Delay <= pfx.Delay {
		t.Errorf("64-bit ripple (%.3g) should be slower than prefix (%.3g)", rca.Delay, pfx.Delay)
	}
	if rca.EnergyOp >= pfx.EnergyOp {
		t.Errorf("64-bit ripple (%.3g J) should use less energy than prefix (%.3g J)", rca.EnergyOp, pfx.EnergyOp)
	}
	small, _ := tech.CharacterizeAdder(AdderSpec{RippleCarry, 8}, tech.VNominal)
	if small.Delay >= rca.Delay || small.EnergyOp >= rca.EnergyOp {
		t.Error("8-bit slice should be faster and cheaper than 64-bit ripple")
	}
	if _, err := tech.CharacterizeAdder(AdderSpec{RippleCarry, 0}, 1.2); err == nil {
		t.Error("zero width should error")
	}
	if _, err := tech.CharacterizeAdder(AdderSpec{AdderKind(99), 8}, 1.2); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestAdderKindString(t *testing.T) {
	if RippleCarry.String() != "ripple-carry" || ParallelPrefix.String() != "parallel-prefix" {
		t.Error("AdderKind strings wrong")
	}
	if AdderKind(7).String() != "AdderKind(7)" {
		t.Error("unknown kind string wrong")
	}
}

func TestNominalPeriodCoversReference(t *testing.T) {
	tech := SAED90()
	period, err := tech.NominalPeriod()
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := tech.CharacterizeAdder(AdderSpec{ParallelPrefix, 64}, tech.VNominal)
	if period <= ref.Delay {
		t.Errorf("period %.3g should exceed reference delay %.3g", period, ref.Delay)
	}
}

func TestMinSupplyForDelayBisection(t *testing.T) {
	tech := SAED90()
	period, _ := tech.NominalPeriod()
	v, err := tech.MinSupplyForDelay(AdderSpec{RippleCarry, 8}, period)
	if err != nil {
		t.Fatal(err)
	}
	if v >= tech.VNominal || v <= tech.VThreshold {
		t.Fatalf("scaled supply %.3g should be strictly between threshold and nominal", v)
	}
	// Verify it actually meets timing, and that a slightly lower voltage does not.
	p, _ := tech.CharacterizeAdder(AdderSpec{RippleCarry, 8}, v)
	if p.Delay > period {
		t.Errorf("returned supply misses timing: %.3g > %.3g", p.Delay, period)
	}
	pLow, err := tech.CharacterizeAdder(AdderSpec{RippleCarry, 8}, v-0.01)
	if err == nil && pLow.Delay <= period {
		t.Errorf("supply 10 mV lower should miss timing (bisection not tight)")
	}
	// An adder slower than the period even at nominal must error.
	if _, err := tech.MinSupplyForDelay(AdderSpec{RippleCarry, 64}, period); err == nil {
		t.Error("64-bit ripple cannot meet the prefix-derived period; want error")
	}
}

// The headline Section V-B claims: 8-bit slices scale to ≈60% of the
// reference voltage and save 75–87% of adder energy before mispredictions.
func TestEightBitSliceCharacterization(t *testing.T) {
	tech := SAED90()
	c, err := tech.CharacterizeSlices(8)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSlices != 8 || c.PredictionsPerOp != 7 {
		t.Fatalf("8-bit slices: got %d slices, %d predictions", c.NumSlices, c.PredictionsPerOp)
	}
	if c.SupplyRatio < 0.45 || c.SupplyRatio > 0.75 {
		t.Errorf("supply ratio %.3f outside the paper's ≈0.6 neighbourhood", c.SupplyRatio)
	}
	if c.EnergySaving < 0.60 || c.EnergySaving > 0.95 {
		t.Errorf("potential adder energy saving %.3f outside the paper's 75–87%% neighbourhood", c.EnergySaving)
	}
}

func TestSliceEnergyMonotoneInWidth(t *testing.T) {
	// Wider slices must scale voltage less (higher supply ratio).
	tech := SAED90()
	prevRatio := 0.0
	for _, w := range []uint{2, 4, 8, 16, 32} {
		c, err := tech.CharacterizeSlices(w)
		if err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if c.SupplyRatio <= prevRatio {
			t.Errorf("supply ratio should grow with width: width %d ratio %.3f prev %.3f",
				w, c.SupplyRatio, prevRatio)
		}
		prevRatio = c.SupplyRatio
	}
}

func TestSliceWidthDSEPicksEight(t *testing.T) {
	tech := SAED90()
	crf := DefaultCRF()
	perBit := crf.ReadEnergy(tech) / float64(crf.BitsPerRow) * 8 // charge per predicted bit incl. write traffic
	results, best, err := tech.SliceWidthDSE([]uint{2, 4, 8, 16, 32}, perBit)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 || best < 0 {
		t.Fatalf("DSE returned %d results, best=%d", len(results), best)
	}
	if got := results[best].SliceBits; got != 8 {
		for _, r := range results {
			t.Logf("width %2d: ratio %.3f saving %.3f", r.SliceBits, r.SupplyRatio, r.EnergySaving)
		}
		t.Errorf("DSE picked %d-bit slices, paper picks 8", got)
	}
	if _, _, err := tech.SliceWidthDSE(nil, perBit); err == nil {
		t.Error("empty width list should error")
	}
}

func TestCharacterizeSlicesErrors(t *testing.T) {
	tech := SAED90()
	if _, err := tech.CharacterizeSlices(0); err == nil {
		t.Error("zero slice width should error")
	}
	if _, err := tech.CharacterizeSlices(65); err == nil {
		t.Error("slice wider than 64 should error")
	}
}

func TestCRFGeometry(t *testing.T) {
	crf := DefaultCRF()
	if got := crf.Bytes(); got != 448 {
		t.Errorf("CRF bytes = %d, want 448 (paper: 448-byte CRF per SM)", got)
	}
	if e := crf.ReadEnergy(SAED90()); e <= 0 {
		t.Errorf("CRF read energy should be positive, got %g", e)
	}
}

func TestTitanVConfig(t *testing.T) {
	chip := TitanV()
	if chip.Adders() != 80*(64+64+32) {
		t.Errorf("TitanV adder count = %d", chip.Adders())
	}
}

// Reproduces the Section VI overhead arithmetic and checks it stays in the
// paper's ballpark: <1% chip area, <1 W static, sub-milliwatt dynamic at
// realistic toggle rates, ≈50 kB of state ≈0.1% of on-chip SRAM.
func TestOverheadBudgetSectionVI(t *testing.T) {
	budget, err := ComputeOverheads(TitanV(), DefaultLevelShifter(), DefaultCRF(),
		8, 1.0, 0.25, 1.2e9)
	if err != nil {
		t.Fatal(err)
	}
	if budget.ShifterAreaFraction <= 0 || budget.ShifterAreaFraction > 0.01 {
		t.Errorf("shifter area fraction %.4f, paper reports 0.68%%", budget.ShifterAreaFraction)
	}
	if budget.ShifterStaticW <= 0 || budget.ShifterStaticW > 4 {
		t.Errorf("shifter static power %.3g W, paper reports ≈0.6 W", budget.ShifterStaticW)
	}
	if budget.CRFBytesPerSM != 448 {
		t.Errorf("CRF per SM = %d B, want 448", budget.CRFBytesPerSM)
	}
	if budget.CRFBytesChip != 448*80 {
		t.Errorf("chip CRF = %d B", budget.CRFBytesChip)
	}
	if budget.TotalSRAMBytes < 40*1024 || budget.TotalSRAMBytes > 70*1024 {
		t.Errorf("total added state %d B, paper reports ≈50 kB", budget.TotalSRAMBytes)
	}
	if budget.SRAMFraction > 0.002 {
		t.Errorf("SRAM fraction %.5f, paper reports 0.09%%", budget.SRAMFraction)
	}
}

func TestComputeOverheadsValidation(t *testing.T) {
	if _, err := ComputeOverheads(TitanV(), DefaultLevelShifter(), DefaultCRF(), 8, 1.5, 0.2, 1e9); err == nil {
		t.Error("toggle rate > 1 should error")
	}
	if _, err := ComputeOverheads(TitanV(), DefaultLevelShifter(), DefaultCRF(), 8, 0.5, -0.1, 1e9); err == nil {
		t.Error("negative utilization should error")
	}
}

// Property: for any valid voltage, energy scales exactly with V² and the
// characterization never returns negative quantities.
func TestCharacterizationProperties(t *testing.T) {
	tech := SAED90()
	f := func(raw uint8) bool {
		v := tech.VThreshold + 0.05 + float64(raw)/255*(tech.VNominal-tech.VThreshold-0.05)
		p, err := tech.CharacterizeAdder(AdderSpec{RippleCarry, 8}, v)
		if err != nil {
			return false
		}
		if p.Delay <= 0 || p.EnergyOp <= 0 || p.Leakage < 0 || p.Area <= 0 {
			return false
		}
		ref, _ := tech.CharacterizeAdder(AdderSpec{RippleCarry, 8}, tech.VNominal)
		wantRatio := (v * v) / (tech.VNominal * tech.VNominal)
		return math.Abs(p.EnergyOp/ref.EnergyOp-wantRatio) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
