package circuit

import (
	"fmt"
	"math"
)

// AdderKind selects an adder microarchitecture to characterize.
type AdderKind int

const (
	// RippleCarry is a chain of full adders — what each small ST² slice is.
	RippleCarry AdderKind = iota
	// ParallelPrefix is a Sklansky/Kogge-Stone style adder — the
	// "industrial-strength DesignWare" reference design of the paper.
	ParallelPrefix
)

func (k AdderKind) String() string {
	switch k {
	case RippleCarry:
		return "ripple-carry"
	case ParallelPrefix:
		return "parallel-prefix"
	default:
		return fmt.Sprintf("AdderKind(%d)", int(k))
	}
}

// AdderSpec describes an adder instance to characterize.
type AdderSpec struct {
	Kind  AdderKind
	Width uint // bits
}

// AdderProfile is the characterization result at one supply voltage:
// everything the energy model upstream needs.
type AdderProfile struct {
	Spec      AdderSpec
	Supply    float64 // volts
	Delay     float64 // seconds, critical path
	EnergyOp  float64 // joules per addition (average activity)
	Leakage   float64 // watts
	Area      float64 // µm²
	GateCount float64 // inverter-equivalents
}

// activityFactor is the average fraction of gates that switch per
// operation; 0.5 is the standard random-input assumption the paper's
// random-vector characterization uses.
const activityFactor = 0.5

// CharacterizeAdder evaluates an adder's delay/energy/leakage/area at the
// given supply voltage.
func (t Technology) CharacterizeAdder(spec AdderSpec, supply float64) (AdderProfile, error) {
	if err := t.Validate(); err != nil {
		return AdderProfile{}, err
	}
	if spec.Width == 0 || spec.Width > 64 {
		return AdderProfile{}, fmt.Errorf("circuit: adder width %d outside (0,64]", spec.Width)
	}
	stage, err := t.GateDelay(supply)
	if err != nil {
		return AdderProfile{}, err
	}
	var depth, gates float64
	n := float64(spec.Width)
	switch spec.Kind {
	case RippleCarry:
		// Carry ripples through n FA carry stages, plus the final sum XOR.
		depth = n*CellFA.DelayStages + CellFASum.DelayStages
		gates = n * CellFA.EnergyGates
	case ParallelPrefix:
		// PG preprocessing + ceil(log2 n) prefix levels + sum XOR.
		levels := math.Ceil(math.Log2(n))
		depth = CellPG.DelayStages + levels*CellPrefix.DelayStages + CellXOR2.DelayStages
		// Sklansky-ish cost: n PG cells + (n/2)·log2(n) prefix cells + n XORs.
		gates = n*CellPG.EnergyGates + (n/2)*levels*CellPrefix.EnergyGates + n*CellXOR2.EnergyGates
	default:
		return AdderProfile{}, fmt.Errorf("circuit: unknown adder kind %v", spec.Kind)
	}
	return AdderProfile{
		Spec:      spec,
		Supply:    supply,
		Delay:     depth * stage,
		EnergyOp:  gates * activityFactor * t.GateEnergy(supply),
		Leakage:   gates * t.GateLeakage(supply),
		Area:      gates * t.AreaPerGate,
		GateCount: gates,
	}, nil
}

// NominalPeriod returns the paper's definition of the clock period: the
// minimum execution delay of the reference (64-bit parallel-prefix) adder
// at nominal voltage, padded by the usual 10% setup/clock margin.
func (t Technology) NominalPeriod() (float64, error) {
	ref, err := t.CharacterizeAdder(AdderSpec{Kind: ParallelPrefix, Width: 64}, t.VNominal)
	if err != nil {
		return 0, err
	}
	return ref.Delay * 1.1, nil
}

// MinSupplyForDelay finds, by bisection, the lowest supply voltage at
// which the given adder still meets `period`. This mirrors the paper's
// slice characterization: "identify the voltage at which we can scale the
// slices while still fitting within the nominal clock period".
func (t Technology) MinSupplyForDelay(spec AdderSpec, period float64) (float64, error) {
	meets := func(v float64) bool {
		p, err := t.CharacterizeAdder(spec, v)
		return err == nil && p.Delay <= period
	}
	if !meets(t.VNominal) {
		return 0, fmt.Errorf("circuit: %v %d-bit adder cannot meet %.3g s even at nominal voltage",
			spec.Kind, spec.Width, period)
	}
	lo := t.VThreshold + 1e-4 // fails (delay → ∞)
	hi := t.VNominal          // meets
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if meets(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// SliceCharacterization is the outcome of characterizing one candidate
// slice width for the ST² adder (the Section V-B design-space point).
type SliceCharacterization struct {
	SliceBits        uint
	Kind             AdderKind // sub-adder structure synthesis chose
	NumSlices        uint
	ScaledSupply     float64 // volts at which a slice still fits the nominal period
	SupplyRatio      float64 // ScaledSupply / VNominal
	SliceEnergy      float64 // joules per slice operation at scaled voltage
	AdderEnergy      float64 // joules: all slices once (one speculative add)
	RefEnergy        float64 // joules: the 64-bit reference adder at nominal
	EnergySaving     float64 // 1 - AdderEnergy/RefEnergy (no mispredictions)
	PredictionsPerOp uint    // carry predictions needed per 64-bit add
}

// CharacterizeSlices runs the Section V-B slice-bitwidth exploration for a
// 64-bit adder split into sliceBits slices.
func (t Technology) CharacterizeSlices(sliceBits uint) (SliceCharacterization, error) {
	if sliceBits == 0 || sliceBits > 64 {
		return SliceCharacterization{}, fmt.Errorf("circuit: slice width %d outside (0,64]", sliceBits)
	}
	period, err := t.NominalPeriod()
	if err != nil {
		return SliceCharacterization{}, err
	}
	// Synthesis picks the cheapest sub-adder structure that meets timing:
	// small slices come out as ripple chains; wide ones need a prefix tree.
	sliceSpec := AdderSpec{Kind: RippleCarry, Width: sliceBits}
	v, err := t.MinSupplyForDelay(sliceSpec, period)
	if err != nil {
		sliceSpec.Kind = ParallelPrefix
		v, err = t.MinSupplyForDelay(sliceSpec, period)
		if err != nil {
			return SliceCharacterization{}, err
		}
	}
	slice, err := t.CharacterizeAdder(sliceSpec, v)
	if err != nil {
		return SliceCharacterization{}, err
	}
	ref, err := t.CharacterizeAdder(AdderSpec{Kind: ParallelPrefix, Width: 64}, t.VNominal)
	if err != nil {
		return SliceCharacterization{}, err
	}
	n := (64 + sliceBits - 1) / sliceBits
	adderEnergy := float64(n) * slice.EnergyOp
	return SliceCharacterization{
		SliceBits:        sliceBits,
		Kind:             sliceSpec.Kind,
		NumSlices:        n,
		ScaledSupply:     v,
		SupplyRatio:      v / t.VNominal,
		SliceEnergy:      slice.EnergyOp,
		AdderEnergy:      adderEnergy,
		RefEnergy:        ref.EnergyOp,
		EnergySaving:     1 - adderEnergy/ref.EnergyOp,
		PredictionsPerOp: n - 1,
	}, nil
}

// SliceWidthDSE characterizes every candidate width and returns the
// results plus the index of the best design. "Best" follows the paper:
// maximize energy saving among widths whose speculation burden is
// practical — we charge each predicted carry a small fixed CRF-access
// energy so that 2-bit slices (63 predictions) lose to 8-bit slices even
// though their supply scales lower.
func (t Technology) SliceWidthDSE(widths []uint, crfBitEnergy float64) ([]SliceCharacterization, int, error) {
	if len(widths) == 0 {
		return nil, -1, fmt.Errorf("circuit: no widths given")
	}
	out := make([]SliceCharacterization, 0, len(widths))
	best := -1
	bestNet := math.Inf(-1)
	for _, w := range widths {
		c, err := t.CharacterizeSlices(w)
		if err != nil {
			return nil, -1, fmt.Errorf("width %d: %w", w, err)
		}
		out = append(out, c)
		net := c.RefEnergy - c.AdderEnergy - float64(c.PredictionsPerOp)*crfBitEnergy
		if net > bestNet {
			bestNet, best = net, len(out)-1
		}
	}
	return out, best, nil
}
