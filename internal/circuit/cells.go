// Package circuit is the repository's substitute for the paper's Synopsys
// synthesis + SPICE characterization flow (Section V-B). It provides an
// analytic standard-cell model — alpha-power-law delay, CV² dynamic energy,
// voltage-dependent leakage — and uses it to characterize the reference
// 64-bit adder, the ST² adder slices, the Carry Register File, and the
// level shifters, producing exactly the quantities the paper's evaluation
// consumes: the nominal clock period, the scaled slice supply voltage, the
// per-operation energies, and the area/power overhead budget.
//
// The technology constants are loosely modeled on the Synopsys SAED 90 nm
// educational library the paper uses. Absolute values are synthetic;
// *relative* behaviour (quadratic energy-vs-voltage, super-linear
// delay-vs-voltage near threshold, logarithmic prefix-adder depth) follows
// the same physics, which is what the paper's conclusions rest on.
package circuit

import (
	"fmt"
	"math"
)

// Technology captures the process parameters of the cell library.
type Technology struct {
	Name        string
	VNominal    float64 // nominal supply voltage, volts
	VThreshold  float64 // transistor threshold voltage, volts
	Alpha       float64 // velocity-saturation exponent of the alpha-power law
	CGate       float64 // effective switched capacitance of a 1x inverter, farads
	LeakPerGate float64 // leakage power of a 1x inverter at VNominal, watts
	AreaPerGate float64 // area of a 1x inverter, square micrometres
}

// SAED90 approximates the Synopsys SAED 90 nm educational library the
// paper synthesizes with.
func SAED90() Technology {
	return Technology{
		Name:        "saed90",
		VNominal:    1.2,
		VThreshold:  0.35,
		Alpha:       1.3,
		CGate:       1.8e-15, // 1.8 fF
		LeakPerGate: 2.0e-9,  // 2 nW
		AreaPerGate: 5.0,     // µm²
	}
}

// FinFET12 approximates the 12 nm FinFET process of the TITAN V, used for
// the scaling commentary in Section V-B.
func FinFET12() Technology {
	return Technology{
		Name:        "finfet12",
		VNominal:    0.8,
		VThreshold:  0.30,
		Alpha:       1.15,
		CGate:       0.25e-15,
		LeakPerGate: 0.6e-9,
		AreaPerGate: 0.25,
	}
}

// Validate reports whether the technology parameters are physical.
func (t Technology) Validate() error {
	if t.VNominal <= t.VThreshold {
		return fmt.Errorf("circuit: VNominal %.3g must exceed VThreshold %.3g", t.VNominal, t.VThreshold)
	}
	if t.Alpha < 1 || t.Alpha > 2 {
		return fmt.Errorf("circuit: alpha %.3g outside the physical range [1,2]", t.Alpha)
	}
	if t.CGate <= 0 || t.LeakPerGate < 0 || t.AreaPerGate <= 0 {
		return fmt.Errorf("circuit: non-positive capacitance/leakage/area")
	}
	return nil
}

// Cell is a standard cell characterized in units of the 1x inverter:
// Delay in inverter FO4-equivalent stages, Energy and Area in
// inverter-equivalents.
type Cell struct {
	Name        string
	DelayStages float64 // critical-path depth in inverter-equivalent stages
	EnergyGates float64 // switched capacitance in inverter-equivalents
	AreaGates   float64 // layout area in inverter-equivalents
}

// The cell library. Depth/energy/area ratios follow standard textbook
// mirror-adder / transmission-gate implementations (Rabaey, Digital
// Integrated Circuits), which is the reference the paper itself cites for
// speculative-adder voltage scaling.
var (
	CellINV   = Cell{Name: "INV", DelayStages: 1, EnergyGates: 1, AreaGates: 1}
	CellNAND2 = Cell{Name: "NAND2", DelayStages: 1.2, EnergyGates: 1.5, AreaGates: 1.4}
	CellXOR2  = Cell{Name: "XOR2", DelayStages: 2.0, EnergyGates: 3.0, AreaGates: 3.0}
	CellMUX2  = Cell{Name: "MUX2", DelayStages: 1.6, EnergyGates: 2.4, AreaGates: 2.6}
	// CellFA is a mirror-style full adder. DelayStages is the per-bit
	// carry-chain delay (Manchester-style optimized carry path ≈ 1 stage
	// per bit); energy ≈ 28 transistors ≈ 7 inverter-equivalents.
	CellFA = Cell{Name: "FA", DelayStages: 1.0, EnergyGates: 7.0, AreaGates: 7.0}
	// CellFASum is the final sum-XOR tail added once at the end of a
	// ripple chain.
	CellFASum = Cell{Name: "FA.sum", DelayStages: 2.0, EnergyGates: 0, AreaGates: 0}
	CellDFF   = Cell{Name: "DFF", DelayStages: 3.0, EnergyGates: 6.0, AreaGates: 6.0}
	// CellPG / CellPrefix are the preprocessing and prefix-merge cells of a
	// Kogge-Stone / Sklansky style parallel-prefix adder.
	CellPG     = Cell{Name: "PG", DelayStages: 2.0, EnergyGates: 4.0, AreaGates: 4.0}
	CellPrefix = Cell{Name: "PREFIX", DelayStages: 1.8, EnergyGates: 3.5, AreaGates: 3.6}
	// CellSRAMBit is one bit of a small register-file array (storage +
	// share of decode/wordline/bitline).
	CellSRAMBit = Cell{Name: "SRAMBIT", DelayStages: 0, EnergyGates: 1.2, AreaGates: 1.5}
)

// GateDelay returns the absolute delay, in seconds, of one
// inverter-equivalent stage at supply voltage v under the alpha-power law:
// d(V) = k · V / (V − Vth)^α, normalized so that d(VNominal) = d0.
//
// d0 is the technology's nominal FO4 stage delay; we derive it from the
// switched capacitance: d0 = 3 · C·Vnom / Isat with Isat folded into a
// constant chosen to give ≈ 40 ps per stage at 90 nm — a standard figure.
func (t Technology) GateDelay(v float64) (float64, error) {
	if v <= t.VThreshold {
		return 0, fmt.Errorf("circuit: supply %.3g V at or below threshold %.3g V", v, t.VThreshold)
	}
	const d0At90nm = 40e-12
	d0 := d0At90nm * (t.CGate / 1.8e-15) // scale stage delay with device capacitance
	nom := t.VNominal / pow(t.VNominal-t.VThreshold, t.Alpha)
	cur := v / pow(v-t.VThreshold, t.Alpha)
	return d0 * cur / nom, nil
}

// GateEnergy returns the dynamic switching energy, in joules, of one
// inverter-equivalent at supply voltage v: E = C·V².
func (t Technology) GateEnergy(v float64) float64 {
	return t.CGate * v * v
}

// GateLeakage returns the leakage power, in watts, of one
// inverter-equivalent at supply voltage v. Subthreshold leakage falls
// roughly linearly-to-quadratically with VDD in this regime; we model
// P ∝ V² against the nominal point.
func (t Technology) GateLeakage(v float64) float64 {
	r := v / t.VNominal
	return t.LeakPerGate * r * r
}

// pow is math.Pow under a short local name; bases are always positive here.
func pow(base, exp float64) float64 { return math.Pow(base, exp) }
