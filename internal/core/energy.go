// Package core assembles the paper's contribution into executable form:
// the ST² execution unit — a sliced speculative adder (internal/adder)
// driven by a carry-speculation source (internal/speculate) — with
// warp-wide execution semantics, floating-point mantissa extraction, and
// per-operation energy accounting priced by the circuit characterization.
//
// Everything the GPU pipeline model (internal/gpusim) knows about ST² goes
// through this package.
package core

import (
	"fmt"

	"st2gpu/internal/circuit"
)

// EnergyParams prices one ST²-equipped adder unit. All values in joules.
type EnergyParams struct {
	// SliceEnergy is one slice computation at the scaled supply.
	SliceEnergy float64
	// RefAdderEnergy is one full-width reference-adder operation at
	// nominal supply — what the baseline GPU pays per add.
	RefAdderEnergy float64
	// CRFReadEnergy is one full-row CRF read (charged once per warp op).
	CRFReadEnergy float64
	// CRFLaneWriteEnergy is the write-back of one lane's boundary bits.
	CRFLaneWriteEnergy float64
	// ShifterEnergyPerLaneOp is the level-shifter cost of moving one
	// lane's operands and result across the voltage boundary.
	ShifterEnergyPerLaneOp float64
	// ScaledSupply and SupplyRatio record the operating point for reports.
	ScaledSupply float64
	SupplyRatio  float64
	// NumSlices of the unit's geometry.
	NumSlices uint
}

// DeriveEnergyParams builds the pricing for a width-bit ST² unit with
// sliceBits slices from the circuit characterization, mirroring the
// paper's Section V-B flow: the reference adder defines the nominal clock
// period and baseline energy; the slice supply is scaled to the lowest
// voltage that still meets that period.
func DeriveEnergyParams(tech circuit.Technology, width, sliceBits uint) (EnergyParams, error) {
	if width == 0 || sliceBits == 0 || sliceBits > width {
		return EnergyParams{}, fmt.Errorf("core: bad geometry %d/%d", width, sliceBits)
	}
	period, err := tech.NominalPeriod()
	if err != nil {
		return EnergyParams{}, err
	}
	ref, err := tech.CharacterizeAdder(circuit.AdderSpec{Kind: circuit.ParallelPrefix, Width: width}, tech.VNominal)
	if err != nil {
		return EnergyParams{}, err
	}
	sliceSpec := circuit.AdderSpec{Kind: circuit.RippleCarry, Width: sliceBits}
	v, err := tech.MinSupplyForDelay(sliceSpec, period)
	if err != nil {
		sliceSpec.Kind = circuit.ParallelPrefix
		if v, err = tech.MinSupplyForDelay(sliceSpec, period); err != nil {
			return EnergyParams{}, err
		}
	}
	slice, err := tech.CharacterizeAdder(sliceSpec, v)
	if err != nil {
		return EnergyParams{}, err
	}
	crf := circuit.DefaultCRF()
	rowRead := crf.ReadEnergy(tech)
	perLaneBits := float64(crf.BitsPerRow) / 32.0
	laneWrite := perLaneBits * circuit.CellSRAMBit.EnergyGates * tech.GateEnergy(tech.VNominal) * 1.5 // writes cost ~1.5× reads
	ls := circuit.DefaultLevelShifter()
	// Three word crossings per op (two operands in, one result out),
	// `width` bits each, at the paper's average — not worst-case — toggle
	// activity of one half of the bits.
	shifter := 3 * float64(width) * 0.5 * ls.EnergyTransition

	n := (width + sliceBits - 1) / sliceBits
	return EnergyParams{
		SliceEnergy:            slice.EnergyOp,
		RefAdderEnergy:         ref.EnergyOp,
		CRFReadEnergy:          rowRead,
		CRFLaneWriteEnergy:     laneWrite,
		ShifterEnergyPerLaneOp: shifter,
		ScaledSupply:           v,
		SupplyRatio:            v / tech.VNominal,
		NumSlices:              n,
	}, nil
}

// BaselineWarpEnergy returns the baseline (non-speculative) adder energy
// for a warp operation with the given number of active lanes.
func (p EnergyParams) BaselineWarpEnergy(activeLanes int) float64 {
	return float64(activeLanes) * p.RefAdderEnergy
}

// ST2WarpEnergy prices one warp operation on the ST² unit:
// every active lane computes all slices once; recomputedSlices slice
// re-executions are added; one CRF row read per warp; one CRF lane write
// per mispredicted lane; level shifting for every active lane.
func (p EnergyParams) ST2WarpEnergy(activeLanes, recomputedSlices, mispredictedLanes int) float64 {
	sliceOps := float64(activeLanes)*float64(p.NumSlices) + float64(recomputedSlices)
	return sliceOps*p.SliceEnergy +
		p.CRFReadEnergy +
		float64(mispredictedLanes)*p.CRFLaneWriteEnergy +
		float64(activeLanes)*p.ShifterEnergyPerLaneOp
}

// AdderSavingFraction reports the headline per-adder saving the paper
// quotes (~70%): 1 − ST²/baseline at the given average behaviour.
func (p EnergyParams) AdderSavingFraction(avgRecomputedPerLane, mispredRate float64) float64 {
	lanes := 32
	st2 := p.ST2WarpEnergy(lanes,
		int(avgRecomputedPerLane*float64(lanes)*mispredRate+0.5),
		int(mispredRate*float64(lanes)+0.5))
	base := p.BaselineWarpEnergy(lanes)
	return 1 - st2/base
}
