package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"st2gpu/internal/adder"
	"st2gpu/internal/circuit"
	"st2gpu/internal/speculate"
)

func testParams(t *testing.T) EnergyParams {
	t.Helper()
	p, err := DeriveEnergyParams(circuit.SAED90(), 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUnitKindStrings(t *testing.T) {
	if ALU.String() != "ALU" || FPU.String() != "FPU" || DPU.String() != "DPU" ||
		ALU32.String() != "ALU32" || UnitKind(9).String() != "UnitKind(9)" {
		t.Error("UnitKind strings wrong")
	}
}

func TestUnitKindGeometry(t *testing.T) {
	cases := []struct {
		k     UnitKind
		width uint
	}{{ALU, 64}, {ALU32, 32}, {FPU, 24}, {DPU, 52}}
	for _, c := range cases {
		cfg, err := c.k.AdderConfig(8)
		if err != nil {
			t.Fatalf("%v: %v", c.k, err)
		}
		if cfg.Width != c.width {
			t.Errorf("%v width = %d, want %d", c.k, cfg.Width, c.width)
		}
	}
	if _, err := UnitKind(9).AdderConfig(8); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestDeriveEnergyParams(t *testing.T) {
	p := testParams(t)
	if p.NumSlices != 8 {
		t.Errorf("slices = %d", p.NumSlices)
	}
	if p.SupplyRatio <= 0.4 || p.SupplyRatio >= 0.8 {
		t.Errorf("supply ratio %.3f outside the paper's ≈0.6 region", p.SupplyRatio)
	}
	// The slice at scaled voltage must be much cheaper than the reference.
	if 8*p.SliceEnergy >= p.RefAdderEnergy {
		t.Errorf("8 slices (%.3g) should cost less than the reference (%.3g)",
			8*p.SliceEnergy, p.RefAdderEnergy)
	}
	if _, err := DeriveEnergyParams(circuit.SAED90(), 0, 8); err == nil {
		t.Error("bad geometry should error")
	}
}

// The headline: at the paper's observed behaviour (9% thread mispredict
// rate, ~2 slices recomputed each), the per-adder saving lands near 70%.
func TestAdderSavingNearPaper(t *testing.T) {
	p := testParams(t)
	saving := p.AdderSavingFraction(1.94, 0.09)
	if saving < 0.55 || saving > 0.92 {
		t.Errorf("adder saving %.3f outside the paper's ≈0.70 neighbourhood", saving)
	}
	// Perfect prediction saves even more.
	perfect := p.AdderSavingFraction(0, 0)
	if perfect <= saving {
		t.Errorf("perfect prediction (%.3f) should beat realistic (%.3f)", perfect, saving)
	}
}

func TestST2WarpEnergyMonotonicity(t *testing.T) {
	p := testParams(t)
	base := p.ST2WarpEnergy(32, 0, 0)
	withRecompute := p.ST2WarpEnergy(32, 10, 5)
	if withRecompute <= base {
		t.Error("recomputation must cost energy")
	}
	if p.BaselineWarpEnergy(32) != 32*p.RefAdderEnergy {
		t.Error("baseline pricing wrong")
	}
}

func newTestUnit(t *testing.T, kind UnitKind) *Unit {
	t.Helper()
	cfg, err := kind.AdderConfig(8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := DeriveEnergyParams(circuit.SAED90(), cfg.Width, 8)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUnit(kind, 8, p)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func fullWarp(op adder.Op, f func(l int) (uint64, uint64)) [WarpSize]LaneOp {
	var lanes [WarpSize]LaneOp
	for l := 0; l < WarpSize; l++ {
		a, b := f(l)
		lanes[l] = LaneOp{Active: true, A: a, B: b, Op: op}
	}
	return lanes
}

// Exactness: every lane's result equals the reference for random operands
// under the hardware CRF speculator.
func TestExecuteWarpExact(t *testing.T) {
	u := newTestUnit(t, ALU)
	crf := speculate.NewDefaultCRF(1)
	spec := &CRFSpeculator{CRF: crf, Geom: u.Geometry()}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		op := adder.Add
		if rng.Intn(2) == 1 {
			op = adder.Sub
		}
		lanes := fullWarp(op, func(int) (uint64, uint64) { return rng.Uint64(), rng.Uint64() })
		crf.BeginCycle(uint64(i))
		res := u.ExecuteWarp(spec, uint32(rng.Intn(64)), 0, &lanes)
		for l := 0; l < WarpSize; l++ {
			want := lanes[l].A + lanes[l].B
			if op == adder.Sub {
				want = lanes[l].A - lanes[l].B
			}
			if res.Sums[l] != want {
				t.Fatalf("lane %d: got %#x want %#x", l, res.Sums[l], want)
			}
		}
		if res.ActiveLanes != 32 {
			t.Fatalf("active lanes = %d", res.ActiveLanes)
		}
	}
}

func TestExecuteWarpInactiveLanes(t *testing.T) {
	u := newTestUnit(t, ALU)
	spec := &PredictorSpeculator{P: speculate.NewStaticZero(u.Geometry())}
	var lanes [WarpSize]LaneOp
	lanes[3] = LaneOp{Active: true, A: 5, B: 7, Op: adder.Add}
	res := u.ExecuteWarp(spec, 0, 0, &lanes)
	if res.ActiveLanes != 1 || res.Sums[3] != 12 {
		t.Errorf("partial warp wrong: %+v", res)
	}
	if res.Sums[0] != 0 {
		t.Error("inactive lane produced a value")
	}
	// Fully inactive warp is a no-op.
	var none [WarpSize]LaneOp
	res = u.ExecuteWarp(spec, 0, 0, &none)
	if res.ActiveLanes != 0 || res.Cycles != 0 {
		t.Errorf("empty warp: %+v", res)
	}
}

// Warp-level stall semantics: one mispredicted lane makes the whole warp
// take 2 cycles; zero mispredictions take 1.
func TestWarpStallSemantics(t *testing.T) {
	u := newTestUnit(t, ALU)
	spec := &PredictorSpeculator{P: speculate.NewStaticZero(u.Geometry())}
	// Operands with no boundary carries and MSBs clear: staticZero never
	// wrong → 1 cycle. (Low slice-MSBs avoid carries entirely.)
	clean := fullWarp(adder.Add, func(l int) (uint64, uint64) { return 0x01, 0x02 })
	res := u.ExecuteWarp(spec, 0, 0, &clean)
	if res.Cycles != 1 || res.ThreadMispredicts != 0 {
		t.Fatalf("clean warp: %+v", res)
	}
	// Lane 5 carries into slice 1 (0xFF + 0x01); staticZero is wrong there.
	var lanes [WarpSize]LaneOp
	for l := 0; l < WarpSize; l++ {
		lanes[l] = LaneOp{Active: true, A: 1, B: 2, Op: adder.Add}
	}
	lanes[5] = LaneOp{Active: true, A: 0xFF, B: 0x01, Op: adder.Add}
	res = u.ExecuteWarp(spec, 0, 0, &lanes)
	if res.Cycles != 2 {
		t.Fatalf("one bad lane should stall the warp: %+v", res)
	}
	if res.MispredLanes != 1<<5 || res.ThreadMispredicts != 1 {
		t.Fatalf("mispred accounting: %+v", res)
	}
	st := u.Stats()
	if st.StalledWarpOps != 1 || st.WarpOps != 2 {
		t.Errorf("aggregate: %+v", st)
	}
}

// Peek boundaries are never counted as wrong, and with Peek disabled the
// dynamic boundary count grows.
func TestPeekAccounting(t *testing.T) {
	u := newTestUnit(t, ALU)
	crf := speculate.NewDefaultCRF(3)
	spec := &CRFSpeculator{CRF: crf, Geom: u.Geometry()}
	lanes := fullWarp(adder.Add, func(l int) (uint64, uint64) { return 1, 2 }) // all MSBs clear → all peeked
	res := u.ExecuteWarp(spec, 0, 0, &lanes)
	if res.StaticBoundaries != 32*7 || res.DynamicBoundaries != 0 {
		t.Errorf("all boundaries should be peek-resolved: %+v", res)
	}
	if res.WrongBoundaries != 0 || res.ThreadMispredicts != 0 {
		t.Errorf("peeked boundaries can never be wrong: %+v", res)
	}
	specNoPeek := &CRFSpeculator{CRF: crf, Geom: u.Geometry(), DisablePeek: true}
	res = u.ExecuteWarp(specNoPeek, 0, 0, &lanes)
	if res.StaticBoundaries != 0 || res.DynamicBoundaries != 32*7 {
		t.Errorf("peek disabled: %+v", res)
	}
}

// The CRF speculator learns: repeating the same (PC, operands) pattern
// after a write-back commits eliminates the misprediction.
func TestCRFSpeculatorLearns(t *testing.T) {
	u := newTestUnit(t, ALU)
	crf := speculate.NewDefaultCRF(4)
	spec := &CRFSpeculator{CRF: crf, Geom: u.Geometry()}
	// 0x80 + 0x80 in every lane: slice-0 MSBs are 1&1 → peek resolves
	// boundary 0 to carry 1 — wait, that IS peek. Use operands whose
	// boundary carry exists but MSBs disagree: 0xC0 + 0x40 = 0x100
	// (slice0 MSBs 1,0 → dynamic; carry into slice 1 is 1).
	lanes := fullWarp(adder.Add, func(l int) (uint64, uint64) { return 0xC0, 0x40 })
	crf.BeginCycle(1)
	res := u.ExecuteWarp(spec, 9, 0, &lanes)
	if res.ThreadMispredicts != 32 {
		t.Fatalf("cold CRF should mispredict all lanes, got %d", res.ThreadMispredicts)
	}
	crf.BeginCycle(2) // commit write-back
	res = u.ExecuteWarp(spec, 9, 0, &lanes)
	if res.ThreadMispredicts != 0 {
		t.Fatalf("warm CRF should predict perfectly, got %d mispredicts", res.ThreadMispredicts)
	}
	if res.Cycles != 1 {
		t.Error("warm repeat should be single-cycle")
	}
}

// Ltid sharing through the CRF: a second warp (different gtid base, same
// lanes, same PC) benefits from the first warp's training.
func TestCRFSharingAcrossWarps(t *testing.T) {
	u := newTestUnit(t, ALU)
	crf := speculate.NewDefaultCRF(5)
	spec := &CRFSpeculator{CRF: crf, Geom: u.Geometry()}
	lanes := fullWarp(adder.Add, func(l int) (uint64, uint64) { return 0xC0, 0x40 })
	crf.BeginCycle(1)
	_ = u.ExecuteWarp(spec, 3, 0, &lanes) // warp 0 trains
	crf.BeginCycle(2)
	res := u.ExecuteWarp(spec, 3, 32, &lanes) // warp 1, same lanes
	if res.ThreadMispredicts != 0 {
		t.Errorf("second warp should inherit lane history, got %d mispredicts", res.ThreadMispredicts)
	}
}

func TestUnitStatsAggregation(t *testing.T) {
	u := newTestUnit(t, ALU)
	spec := &PredictorSpeculator{P: speculate.NewStaticZero(u.Geometry())}
	lanes := fullWarp(adder.Add, func(l int) (uint64, uint64) { return 0xFF, 0x01 })
	_ = u.ExecuteWarp(spec, 0, 0, &lanes)
	st := u.Stats()
	if st.ThreadOps != 32 || st.ThreadMispredicts != 32 {
		t.Fatalf("stats: %+v", st)
	}
	if st.ThreadMispredictionRate() != 1.0 {
		t.Errorf("rate = %g", st.ThreadMispredictionRate())
	}
	if st.MeanRecomputedSlices() != 7 {
		t.Errorf("mean recomputed = %g, want 7 (error at boundary 0)", st.MeanRecomputedSlices())
	}
	if st.EnergyST2 <= 0 || st.EnergyBaseline <= 0 {
		t.Error("energy not accumulated")
	}
	var merged UnitStats
	merged.Merge(st)
	merged.Merge(st)
	if merged.ThreadOps != 64 || merged.RecomputeHistogram.Total() != 64 {
		t.Errorf("merge: %+v", merged)
	}
	u.ResetStats()
	if u.Stats().ThreadOps != 0 {
		t.Error("reset failed")
	}
	if (UnitStats{}).ThreadMispredictionRate() != 0 || (UnitStats{}).MeanRecomputedSlices() != 0 {
		t.Error("empty stats should be 0")
	}
}

// FP32 mantissa extraction: the slice datapath result must reproduce the
// exact aligned-significand arithmetic.
func TestMantissaOpF32(t *testing.T) {
	op, ok := MantissaOpF32(1.5, 2.5)
	if !ok {
		t.Fatal("normal operands rejected")
	}
	// 1.5 = 1.1b×2^0 → sig 0xC00000 e127; 2.5 = 1.01b×2^1 → sig 0xA00000 e128.
	// Align: 1.5 shifts right 1 → 0x600000; big = 0xA00000.
	if op.Op != adder.Add || op.A != 0xA00000 || op.B != 0x600000 {
		t.Errorf("1.5+2.5 mantissa op = %+v", op)
	}
	// Different signs → mantissa subtraction.
	op, ok = MantissaOpF32(1.5, -2.5)
	if !ok || op.Op != adder.Sub {
		t.Errorf("mixed signs should be Sub: %+v", op)
	}
	// Specials bypass.
	if _, ok := MantissaOpF32(float32(math.NaN()), 1); ok {
		t.Error("NaN should bypass")
	}
	if _, ok := MantissaOpF32(float32(math.Inf(1)), 1); ok {
		t.Error("Inf should bypass")
	}
	if _, ok := MantissaOpF32(0, 0); ok {
		t.Error("0+0 should bypass")
	}
	// Denormal handled.
	if _, ok := MantissaOpF32(1e-44, 1e-44); !ok {
		t.Error("denormals should flow through the adder")
	}
}

func TestMantissaOpF64(t *testing.T) {
	op, ok := MantissaOpF64(1.0, 1.0)
	if !ok {
		t.Fatal("rejected")
	}
	// Equal exponents: no shift; hidden bits truncated above bit 51.
	if op.A != 0 || op.B != 0 || op.Op != adder.Add {
		t.Errorf("1.0+1.0 mantissa op = %+v (fractions are zero)", op)
	}
	op, ok = MantissaOpF64(1.25, 3.5)
	if !ok || op.Op != adder.Add {
		t.Fatalf("1.25+3.5: %+v", op)
	}
	if _, ok := MantissaOpF64(math.Inf(-1), 3); ok {
		t.Error("Inf should bypass")
	}
}

// Property: for finite floats the extracted mantissa op, run through the
// FPU's sliced adder, is always exact (the slice engine never corrupts the
// mantissa datapath), and large-shift alignment never panics.
func TestMantissaThroughSlicedAdder(t *testing.T) {
	u := newTestUnit(t, FPU)
	f := func(xb, yb uint32, pred uint64) bool {
		x := math.Float32frombits(xb)
		y := math.Float32frombits(yb)
		op, ok := MantissaOpF32(x, y)
		if !ok {
			return true
		}
		r := u.Adder().Execute(op.A, op.B, op.Op, pred)
		wantSum, wantCout := u.Adder().Reference(op.A, op.B, op.Op)
		return r.Sum == wantSum && r.CarryOut == wantCout
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// FP value streams with correlated magnitudes (the paper's observation)
// should speculate well on the FPU after warm-up.
func TestFPUSpeculationOnCorrelatedStream(t *testing.T) {
	u := newTestUnit(t, FPU)
	p, err := speculate.NewDesign(speculate.FinalDesign, u.Geometry())
	if err != nil {
		t.Fatal(err)
	}
	spec := &PredictorSpeculator{P: p}
	rng := rand.New(rand.NewSource(8))
	var mis, tot uint64
	for iter := 0; iter < 400; iter++ {
		var lanes [WarpSize]LaneOp
		for l := 0; l < WarpSize; l++ {
			// Accumulation pattern: running sum + small increment.
			acc := float32(l*100) + float32(iter)*0.25
			inc := 0.25 + float32(rng.Float64())*0.01
			if op, ok := MantissaOpF32(acc, inc); ok {
				lanes[l] = op
			}
		}
		res := u.ExecuteWarp(spec, 4, 0, &lanes)
		if iter >= 50 { // after warm-up
			mis += uint64(res.ThreadMispredicts)
			tot += uint64(res.ActiveLanes)
		}
	}
	rate := float64(mis) / float64(tot)
	if rate > 0.30 {
		t.Errorf("FPU misprediction rate %.3f too high on correlated stream", rate)
	}
}
