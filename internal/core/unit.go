package core

import (
	"fmt"

	"st2gpu/internal/adder"
	"st2gpu/internal/speculate"
	"st2gpu/internal/stats"
)

// WarpSize is the number of threads per warp on the modeled Volta.
const WarpSize = 32

// UnitKind identifies the functional-unit family an ST² adder lives in.
type UnitKind int

const (
	// ALU is the 64-bit integer adder (the paper's general-case figure).
	ALU UnitKind = iota
	// ALU32 is the 32-bit integer adder the TITAN V actually ships.
	ALU32
	// FPU is the FP32 mantissa adder (24 bits, 3 slices).
	FPU
	// DPU is the FP64 mantissa adder (52 bits, 7 slices).
	DPU
)

// UnitKinds lists every unit kind in canonical declaration order. Code
// that folds per-unit results (energy totals, misprediction means) must
// iterate this slice rather than ranging over a map keyed by UnitKind:
// map order is random per process, and float accumulation re-rounds
// under reordering, which would break the bit-identical-results
// guarantee (DESIGN.md §7).
var UnitKinds = []UnitKind{ALU, ALU32, FPU, DPU}

func (k UnitKind) String() string {
	switch k {
	case ALU:
		return "ALU"
	case ALU32:
		return "ALU32"
	case FPU:
		return "FPU"
	case DPU:
		return "DPU"
	default:
		return fmt.Sprintf("UnitKind(%d)", int(k))
	}
}

// AdderConfig returns the adder geometry of the unit kind at the given
// slice width.
func (k UnitKind) AdderConfig(sliceBits uint) (adder.Config, error) {
	var w uint
	switch k {
	case ALU:
		w = 64
	case ALU32:
		w = 32
	case FPU:
		w = 24
	case DPU:
		w = 52
	default:
		return adder.Config{}, fmt.Errorf("core: unknown unit kind %v", k)
	}
	cfg := adder.Config{Width: w, SliceBits: sliceBits}
	return cfg, cfg.Validate()
}

// LaneOp is one thread's operation within a warp instruction. For integer
// ops A/B are the register values; for floating-point ops they are the
// aligned significands extracted by MantissaOp*, with Op carrying the
// effective mantissa add/sub.
type LaneOp struct {
	Active bool
	A, B   uint64
	Op     adder.Op
}

// Speculator supplies warp-wide carry predictions and consumes the
// write-back. Implementations: CRFSpeculator (the hardware path) and
// PredictorSpeculator (DSE / trace analysis path).
type Speculator interface {
	// PredictWarp returns one Prediction per lane (length WarpSize);
	// inactive lanes may hold zero values.
	PredictWarp(pc, gtidBase uint32, lanes *[WarpSize]LaneOp, eff *[WarpSize]EffOperands) [WarpSize]speculate.Prediction
	// UpdateWarp records the true boundary carries; mispred marks lanes
	// whose speculation failed (the only ones the hardware writes back).
	UpdateWarp(pc, gtidBase uint32, active, mispred uint32, actual *[WarpSize]uint64)
}

// EffOperands are the effective (post subtraction-transform) operands a
// lane presents to the slice datapath; predictors peek at these.
type EffOperands struct {
	EA, EB uint64
	Cin0   uint
}

// WarpResult aggregates one warp instruction's execution on the unit.
type WarpResult struct {
	Sums [WarpSize]uint64 // exact per-lane results (Width bits)

	Cycles            uint   // 1, or 2 if any lane mispredicted (warp stalls together)
	MispredLanes      uint32 // lanes whose dynamic speculation failed
	ActiveLanes       int
	ThreadMispredicts int // popcount of MispredLanes
	RecomputedSlices  int // total slice re-executions across lanes
	SliceComputations int // total slice executions (first pass + recomputes)

	// Boundary-level accounting for the Fig 3 style analyses.
	StaticBoundaries  int // resolved by Peek (guaranteed)
	DynamicBoundaries int // actually speculated
	WrongBoundaries   int // speculated and wrong

	// Energy for this warp op under the unit's pricing.
	EnergyST2      float64
	EnergyBaseline float64
}

// Unit is one ST²-equipped adder unit family within an SM sub-core.
type Unit struct {
	Kind  UnitKind
	ad    *adder.SlicedAdder
	geom  speculate.Geometry
	price EnergyParams

	agg UnitStats
}

// UnitStats accumulates per-unit activity across a simulation.
type UnitStats struct {
	WarpOps           uint64
	StalledWarpOps    uint64 // 2-cycle warp ops
	ThreadOps         uint64
	ThreadMispredicts uint64
	SliceComputations uint64
	RecomputedSlices  uint64
	StaticBoundaries  uint64
	DynamicBoundaries uint64
	WrongBoundaries   uint64
	EnergyST2         float64
	EnergyBaseline    float64
	// RecomputeHistogram[k] counts mispredicted thread-ops that recomputed
	// exactly k slices (the paper's "1.94 slices per misprediction").
	RecomputeHistogram *stats.Histogram
	// MispredLanesHistogram[k] counts warp ops on which exactly k lanes
	// mispredicted (0..WarpSize) — the within-kernel misprediction
	// distribution behind the Figure 6 averages.
	MispredLanesHistogram *stats.Histogram
}

// NewUnit builds a unit of the given kind with the paper's 8-bit slices
// unless overridden.
func NewUnit(kind UnitKind, sliceBits uint, price EnergyParams) (*Unit, error) {
	cfg, err := kind.AdderConfig(sliceBits)
	if err != nil {
		return nil, err
	}
	ad, err := adder.New(cfg)
	if err != nil {
		return nil, err
	}
	g := speculate.GeometryOf(cfg)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &Unit{
		Kind:  kind,
		ad:    ad,
		geom:  g,
		price: price,
		agg: UnitStats{
			RecomputeHistogram:    stats.NewHistogram(int(cfg.NumSlices())),
			MispredLanesHistogram: stats.NewHistogram(WarpSize),
		},
	}, nil
}

// Geometry returns the unit's speculation geometry.
func (u *Unit) Geometry() speculate.Geometry { return u.geom }

// Adder exposes the underlying sliced adder (read-only use).
func (u *Unit) Adder() *adder.SlicedAdder { return u.ad }

// Stats returns the accumulated statistics.
func (u *Unit) Stats() UnitStats { return u.agg }

// ResetStats clears the accumulated statistics.
func (u *Unit) ResetStats() {
	u.agg = UnitStats{
		RecomputeHistogram:    stats.NewHistogram(int(u.geom.Boundaries()) + 1),
		MispredLanesHistogram: stats.NewHistogram(WarpSize),
	}
}

// ExecuteWarp runs one warp add/sub through the ST² unit: speculate, slice,
// detect, recompute, write back, and price the energy.
func (u *Unit) ExecuteWarp(spec Speculator, pc, gtidBase uint32, lanes *[WarpSize]LaneOp) WarpResult {
	var res WarpResult
	var eff [WarpSize]EffOperands
	var activeMask uint32
	for l := 0; l < WarpSize; l++ {
		if !lanes[l].Active {
			continue
		}
		activeMask |= 1 << l
		ea, eb, cin0 := u.ad.EffectiveOperands(lanes[l].A, lanes[l].B, lanes[l].Op)
		eff[l] = EffOperands{EA: ea, EB: eb, Cin0: cin0}
	}
	if activeMask == 0 {
		return res
	}

	preds := spec.PredictWarp(pc, gtidBase, lanes, &eff)

	var actual [WarpSize]uint64
	var mispred uint32
	nb := int(u.geom.Boundaries())
	for l := 0; l < WarpSize; l++ {
		if !lanes[l].Active {
			continue
		}
		res.ActiveLanes++
		r := u.ad.Execute(lanes[l].A, lanes[l].B, lanes[l].Op, preds[l].Carries)
		res.Sums[l] = r.Sum
		actual[l] = r.ActualCarries
		res.SliceComputations += int(u.price.NumSlices) + r.Recomputed
		res.RecomputedSlices += r.Recomputed

		staticBits := popcount32(uint32(preds[l].Static))
		res.StaticBoundaries += staticBits
		res.DynamicBoundaries += nb - staticBits
		res.WrongBoundaries += popcount32(uint32(r.ErrorSlices &^ preds[l].Static))

		if r.Mispredicted {
			mispred |= 1 << l
			res.ThreadMispredicts++
			u.agg.RecomputeHistogram.Observe(r.Recomputed)
		}
	}
	res.MispredLanes = mispred
	res.Cycles = 1
	if mispred != 0 {
		res.Cycles = 2
	}
	spec.UpdateWarp(pc, gtidBase, activeMask, mispred, &actual)

	u.agg.MispredLanesHistogram.Observe(res.ThreadMispredicts)
	res.EnergyST2 = u.price.ST2WarpEnergy(res.ActiveLanes, res.RecomputedSlices, res.ThreadMispredicts)
	res.EnergyBaseline = u.price.BaselineWarpEnergy(res.ActiveLanes)

	// Fold into the aggregate.
	u.agg.WarpOps++
	if res.Cycles == 2 {
		u.agg.StalledWarpOps++
	}
	u.agg.ThreadOps += uint64(res.ActiveLanes)
	u.agg.ThreadMispredicts += uint64(res.ThreadMispredicts)
	u.agg.SliceComputations += uint64(res.SliceComputations)
	u.agg.RecomputedSlices += uint64(res.RecomputedSlices)
	u.agg.StaticBoundaries += uint64(res.StaticBoundaries)
	u.agg.DynamicBoundaries += uint64(res.DynamicBoundaries)
	u.agg.WrongBoundaries += uint64(res.WrongBoundaries)
	u.agg.EnergyST2 += res.EnergyST2
	u.agg.EnergyBaseline += res.EnergyBaseline
	return res
}

// ThreadMispredictionRate is the paper's Figure 6 metric.
func (s UnitStats) ThreadMispredictionRate() float64 {
	if s.ThreadOps == 0 {
		return 0
	}
	return float64(s.ThreadMispredicts) / float64(s.ThreadOps)
}

// MeanRecomputedSlices is the paper's "1.94 slices per misprediction".
func (s UnitStats) MeanRecomputedSlices() float64 {
	if s.RecomputeHistogram == nil {
		return 0
	}
	return s.RecomputeHistogram.Mean()
}

// Merge folds another unit's statistics into s (for multi-SM aggregation).
func (s *UnitStats) Merge(o UnitStats) {
	s.WarpOps += o.WarpOps
	s.StalledWarpOps += o.StalledWarpOps
	s.ThreadOps += o.ThreadOps
	s.ThreadMispredicts += o.ThreadMispredicts
	s.SliceComputations += o.SliceComputations
	s.RecomputedSlices += o.RecomputedSlices
	s.StaticBoundaries += o.StaticBoundaries
	s.DynamicBoundaries += o.DynamicBoundaries
	s.WrongBoundaries += o.WrongBoundaries
	s.EnergyST2 += o.EnergyST2
	s.EnergyBaseline += o.EnergyBaseline
	if s.RecomputeHistogram == nil {
		s.RecomputeHistogram = o.RecomputeHistogram
	} else if o.RecomputeHistogram != nil {
		if len(o.RecomputeHistogram.Counts) == len(s.RecomputeHistogram.Counts) {
			_ = s.RecomputeHistogram.Merge(o.RecomputeHistogram)
		}
	}
	if s.MispredLanesHistogram == nil {
		s.MispredLanesHistogram = o.MispredLanesHistogram
	} else if o.MispredLanesHistogram != nil {
		if len(o.MispredLanesHistogram.Counts) == len(s.MispredLanesHistogram.Counts) {
			_ = s.MispredLanesHistogram.Merge(o.MispredLanesHistogram)
		}
	}
}

func popcount32(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// CRFSpeculator is the hardware speculation path: Peek in the slices, the
// SM's Carry Register File for dynamic history, write-back of mispredicted
// lanes with per-row arbitration (the CRF handles staging).
type CRFSpeculator struct {
	CRF  *speculate.CRF
	Geom speculate.Geometry
	// DisablePeek turns off the static resolution filter (ablation).
	DisablePeek bool
}

// PredictWarp implements Speculator with one CRF row read per warp.
func (c *CRFSpeculator) PredictWarp(pc, _ uint32, lanes *[WarpSize]LaneOp, eff *[WarpSize]EffOperands) [WarpSize]speculate.Prediction {
	row := c.CRF.ReadRow(pc)
	var out [WarpSize]speculate.Prediction
	for l := 0; l < WarpSize && l < len(row); l++ {
		if !lanes[l].Active {
			continue
		}
		hist := row[l] & c.Geom.BoundaryMask()
		if c.DisablePeek {
			out[l] = speculate.Prediction{Carries: hist}
			continue
		}
		static, values := speculate.PeekBits(c.Geom, eff[l].EA, eff[l].EB)
		out[l] = speculate.Prediction{
			Carries: (hist &^ static) | values,
			Static:  static,
		}
	}
	return out
}

// UpdateWarp implements Speculator: only mispredicted lanes write back.
func (c *CRFSpeculator) UpdateWarp(pc, _ uint32, _, mispred uint32, actual *[WarpSize]uint64) {
	if mispred == 0 {
		return
	}
	_ = c.CRF.WriteBack(pc, mispred, actual[:])
}

// PredictorSpeculator adapts a trace-level speculate.Predictor (any Fig 5
// design point) to the warp interface; used by the design-space sweeps.
type PredictorSpeculator struct {
	P speculate.Predictor
}

// PredictWarp implements Speculator.
func (p *PredictorSpeculator) PredictWarp(pc, gtidBase uint32, lanes *[WarpSize]LaneOp, eff *[WarpSize]EffOperands) [WarpSize]speculate.Prediction {
	var out [WarpSize]speculate.Prediction
	for l := 0; l < WarpSize; l++ {
		if !lanes[l].Active {
			continue
		}
		out[l] = p.P.Predict(speculate.Context{
			PC:   pc,
			Gtid: gtidBase + uint32(l),
			Ltid: uint8(l),
			EA:   eff[l].EA,
			EB:   eff[l].EB,
			Cin0: eff[l].Cin0,
		})
	}
	return out
}

// UpdateWarp implements Speculator with per-thread updates.
func (p *PredictorSpeculator) UpdateWarp(pc, gtidBase uint32, active, mispred uint32, actual *[WarpSize]uint64) {
	for l := 0; l < WarpSize; l++ {
		if active&(1<<l) == 0 {
			continue
		}
		p.P.Update(speculate.Context{
			PC:   pc,
			Gtid: gtidBase + uint32(l),
			Ltid: uint8(l),
		}, actual[l], mispred&(1<<l) != 0)
	}
}
