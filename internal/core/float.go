package core

import (
	"math"

	"st2gpu/internal/adder"
)

// The floating-point units apply ST² to the *mantissa* adder only
// (Section IV-C: exponents are 8–11 bits, too narrow to benefit). The
// functions below reproduce the FP-add datapath up to the significand
// addition: unpack, compare exponents, align the smaller significand, and
// derive the effective mantissa operation (ADD when signs agree, SUB when
// they differ). The returned LaneOp is what flows through the 24- or
// 52-bit sliced adder; the architectural result itself is produced by
// native IEEE arithmetic (ST² is value-preserving, so this is exact).
//
// Modeling note: guard/round/sticky bits of the real datapath are below
// the significand LSB and do not change slice-boundary carries; we omit
// them.

// MantissaOpF32 extracts the FP32 mantissa-adder operation for x + y.
// ok is false for specials (NaN/Inf) and true zero operations, where the
// FP pipeline bypasses the significand adder.
func MantissaOpF32(x, y float32) (op LaneOp, ok bool) {
	bx := math.Float32bits(x)
	by := math.Float32bits(y)
	ex := int(bx>>23) & 0xFF
	ey := int(by>>23) & 0xFF
	if ex == 0xFF || ey == 0xFF { // NaN or Inf
		return LaneOp{}, false
	}
	sigX, ex := unpackSig(uint64(bx&0x7FFFFF), ex, 23)
	sigY, ey := unpackSig(uint64(by&0x7FFFFF), ey, 23)
	if sigX == 0 && sigY == 0 {
		return LaneOp{}, false
	}
	return alignAndOp(sigX, ex, bx>>31 == 1, sigY, ey, by>>31 == 1, 24), true
}

// MantissaOpF64 extracts the FP64 mantissa-adder operation for x + y.
func MantissaOpF64(x, y float64) (op LaneOp, ok bool) {
	bx := math.Float64bits(x)
	by := math.Float64bits(y)
	ex := int(bx>>52) & 0x7FF
	ey := int(by>>52) & 0x7FF
	if ex == 0x7FF || ey == 0x7FF {
		return LaneOp{}, false
	}
	sigX, ex := unpackSig(bx&(1<<52-1), ex, 52)
	sigY, ey := unpackSig(by&(1<<52-1), ey, 52)
	if sigX == 0 && sigY == 0 {
		return LaneOp{}, false
	}
	return alignAndOp(sigX, ex, bx>>63 == 1, sigY, ey, by>>63 == 1, 52), true
}

// unpackSig restores the implicit leading one of a normal significand and
// normalizes the denormal exponent.
func unpackSig(frac uint64, exp, fracBits int) (sig uint64, e int) {
	if exp == 0 { // denormal (or zero)
		return frac, 1
	}
	return frac | 1<<fracBits, exp
}

// alignAndOp aligns the smaller-exponent significand and produces the
// effective mantissa LaneOp. width is the significand adder width the
// paper assigns: 24 for FP32 (fraction plus hidden bit) and 52 for FP64.
// The FP64 hidden bit (bit 52) sits above the last slice boundary (bit
// 48), so truncating it cannot change any speculated carry.
func alignAndOp(sigX uint64, ex int, negX bool, sigY uint64, ey int, negY bool, width uint) LaneOp {
	big, small := sigX, sigY
	shift := ex - ey
	if shift < 0 {
		big, small = sigY, sigX
		shift = -shift
	}
	if shift >= 64 {
		small = 0
	} else {
		small >>= uint(shift)
	}
	op := adder.Add
	if negX != negY {
		op = adder.Sub
	}
	m := uint64(1)<<width - 1
	return LaneOp{Active: true, A: big & m, B: small & m, Op: op}
}
