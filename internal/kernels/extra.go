package kernels

import (
	"fmt"
	"math"

	"st2gpu/internal/gpusim"
	"st2gpu/internal/isa"
)

// Extras returns additional workloads beyond the paper's 23-kernel suite.
// They are not part of the Figure 1–7 reproductions, but broaden the
// coverage of the ST² units: NBody drives the FP64 DPU mantissa adders
// hard, BlackScholes mixes SFU transcendentals with FP32 adds, and Scan
// is the classic barrier-synchronized integer-add ladder.
func Extras() []Workload {
	return []Workload{
		{"nbody_fp64", "extra", NBodyFP64},
		{"blackscholes", "extra", BlackScholes},
		{"scan_K1", "extra", ScanK1},
	}
}

// NBodyFP64 computes gravitational accelerations in double precision:
// per body, a loop over all bodies accumulating the softened inverse-
// square interaction — FP64 subs, FMAs and an rsqrt per pair, the
// densest DPU-adder workload in the repository.
func NBodyFP64(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const block = 64
	bodies := block * 2 * scale

	b := isa.NewBuilder("nbody_fp64")
	gtid := b.Reg()
	xi := b.Reg()
	yi := b.Reg()
	xj := b.Reg()
	yj := b.Reg()
	dx := b.Reg()
	dy := b.Reg()
	r2 := b.Reg()
	inv := b.Reg()
	inv3 := b.Reg()
	ax := b.Reg()
	ay := b.Reg()
	j := b.Reg()
	addr := b.Reg()
	jaddr := b.Reg()
	p := b.PredReg()

	b.MovSpecial(gtid, isa.SRegGtid)
	// Positions: interleaved (x, y) float64 pairs at AddrIn0.
	b.Shl(isa.U64, addr, isa.R(gtid), isa.Imm(4))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.F64, xi, isa.R(addr))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(8))
	b.Ld(isa.Global, isa.F64, yi, isa.R(addr))
	b.Mov(isa.F64, ax, isa.ImmF64(0))
	b.Mov(isa.F64, ay, isa.ImmF64(0))
	b.Mov(isa.U64, jaddr, isa.Imm(AddrIn0))
	b.Mov(isa.U32, j, isa.Imm(0))
	b.Label("pairs")
	b.Ld(isa.Global, isa.F64, xj, isa.R(jaddr))
	b.IAdd(isa.U64, jaddr, isa.R(jaddr), isa.Imm(8))
	b.Ld(isa.Global, isa.F64, yj, isa.R(jaddr))
	b.IAdd(isa.U64, jaddr, isa.R(jaddr), isa.Imm(8))
	// dx = xj − xi; dy = yj − yi; r² = dx² + dy² + ε
	b.FSub(isa.F64, dx, isa.R(xj), isa.R(xi))
	b.FSub(isa.F64, dy, isa.R(yj), isa.R(yi))
	b.FMul(isa.F64, r2, isa.R(dx), isa.R(dx))
	b.FFma(isa.F64, r2, isa.R(dy), isa.R(dy), isa.R(r2))
	b.FAdd(isa.F64, r2, isa.R(r2), isa.ImmF64(1e-3))
	// inv³ = r⁻³ via rsqrt; a += d·inv³
	b.Rsqrt(isa.F64, inv, isa.R(r2))
	b.FMul(isa.F64, inv3, isa.R(inv), isa.R(inv))
	b.FMul(isa.F64, inv3, isa.R(inv3), isa.R(inv))
	b.FFma(isa.F64, ax, isa.R(dx), isa.R(inv3), isa.R(ax))
	b.FFma(isa.F64, ay, isa.R(dy), isa.R(inv3), isa.R(ay))
	b.IAdd(isa.U32, j, isa.R(j), isa.Imm(1))
	b.Setp(isa.LT, isa.U32, p, isa.R(j), isa.Imm(uint64(bodies)))
	b.BraTo("pairs", p, false)
	// Accelerations out, interleaved.
	b.Shl(isa.U64, addr, isa.R(gtid), isa.Imm(4))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.F64, isa.R(addr), isa.R(ax))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(8))
	b.St(isa.Global, isa.F64, isa.R(addr), isa.R(ay))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(30)
	pos := make([]float64, bodies*2)
	for i := range pos {
		pos[i] = r.NormFloat64() * 10
	}
	want := make([]float64, bodies*2)
	for i := 0; i < bodies; i++ {
		xi, yi := pos[i*2], pos[i*2+1]
		var ax, ay float64
		for j := 0; j < bodies; j++ {
			dx := pos[j*2] - xi
			dy := pos[j*2+1] - yi
			r2 := dx * dx
			r2 = dy*dy + r2
			r2 += 1e-3
			inv := 1 / math.Sqrt(r2)
			inv3 := inv * inv * inv
			ax = dx*inv3 + ax
			ay = dy*inv3 + ay
		}
		want[i*2], want[i*2+1] = ax, ay
	}

	return &Spec{
		Name:  "nbody_fp64",
		Suite: "extra",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  bodies / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			return m.WriteF64s(AddrIn0, pos)
		},
		Verify: func(m *gpusim.Memory) error {
			got, err := m.ReadF64s(AddrOut0, bodies*2)
			if err != nil {
				return err
			}
			for i := range want {
				diff := math.Abs(got[i] - want[i])
				if diff > 1e-9*(1+math.Abs(want[i])) {
					return fmtErrF64("nbody acceleration", i, got[i], want[i])
				}
			}
			return nil
		},
	}, nil
}

// BlackScholes prices European call options with the closed-form model:
// log/exp/sqrt SFU work feeding a polynomial CND built from FP32 FMAs.
func BlackScholes(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const block = 128
	options := block * 4 * scale

	b := isa.NewBuilder("blackscholes")
	gtid := b.Reg()
	s := b.Reg()
	x := b.Reg()
	tt := b.Reg()
	d1 := b.Reg()
	d2 := b.Reg()
	cnd1 := b.Reg()
	cnd2 := b.Reg()
	tmp := b.Reg()
	expRT := b.Reg()
	addr := b.Reg()

	const (
		rate = 0.02
		vol  = 0.30
	)

	// cnd approximates the cumulative normal via the logistic surrogate
	// 1/(1+2^(-k·d)) — same SFU/FMA structure as the classic polynomial.
	cnd := func(dst, d isa.Reg) {
		b.FMul(isa.F32, tmp, isa.R(d), isa.ImmF32(-2.31))
		b.Exp2(isa.F32, tmp, isa.R(tmp))
		b.FAdd(isa.F32, tmp, isa.R(tmp), isa.ImmF32(1))
		b.Rcp(isa.F32, dst, isa.R(tmp))
	}

	b.MovSpecial(gtid, isa.SRegGtid)
	b.Shl(isa.U64, addr, isa.R(gtid), isa.Imm(2))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.F32, s, isa.R(addr))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(AddrIn1-AddrIn0))
	b.Ld(isa.Global, isa.F32, x, isa.R(addr))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(AddrIn2-AddrIn1))
	b.Ld(isa.Global, isa.F32, tt, isa.R(addr))
	// d1 = (lg2(S/X)/lg2(e) + (r+σ²/2)T) / (σ√T)
	b.FDiv(isa.F32, d1, isa.R(s), isa.R(x))
	b.Log2(isa.F32, d1, isa.R(d1))
	b.FMul(isa.F32, d1, isa.R(d1), isa.ImmF32(0.6931472)) // ln
	b.FMul(isa.F32, tmp, isa.R(tt), isa.ImmF32(rate+vol*vol/2))
	b.FAdd(isa.F32, d1, isa.R(d1), isa.R(tmp))
	b.Sqrt(isa.F32, tmp, isa.R(tt))
	b.FMul(isa.F32, tmp, isa.R(tmp), isa.ImmF32(vol))
	b.FDiv(isa.F32, d1, isa.R(d1), isa.R(tmp))
	b.FSub(isa.F32, d2, isa.R(d1), isa.R(tmp))
	cnd(cnd1, d1)
	cnd(cnd2, d2)
	// call = S·N(d1) − X·e^(−rT)·N(d2)
	b.FMul(isa.F32, expRT, isa.R(tt), isa.ImmF32(-rate*1.4426950))
	b.Exp2(isa.F32, expRT, isa.R(expRT))
	b.FMul(isa.F32, cnd1, isa.R(cnd1), isa.R(s))
	b.FMul(isa.F32, cnd2, isa.R(cnd2), isa.R(x))
	b.FMul(isa.F32, cnd2, isa.R(cnd2), isa.R(expRT))
	b.FSub(isa.F32, cnd1, isa.R(cnd1), isa.R(cnd2))
	b.Shl(isa.U64, addr, isa.R(gtid), isa.Imm(2))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.F32, isa.R(addr), isa.R(cnd1))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(31)
	sv := make([]float32, options)
	xv := make([]float32, options)
	tv := make([]float32, options)
	for i := range sv {
		sv[i] = float32(20 + 80*r.Float64())
		xv[i] = float32(20 + 80*r.Float64())
		tv[i] = float32(0.1 + 2*r.Float64())
	}

	return &Spec{
		Name:  "blackscholes",
		Suite: "extra",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  options / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			if err := m.WriteF32s(AddrIn0, sv); err != nil {
				return err
			}
			if err := m.WriteF32s(AddrIn1, xv); err != nil {
				return err
			}
			return m.WriteF32s(AddrIn2, tv)
		},
		Verify: func(m *gpusim.Memory) error {
			got, err := m.ReadF32s(AddrOut0, options)
			if err != nil {
				return err
			}
			for i, v := range got {
				// Sanity bounds: a call is worth at most S and at least
				// max(S − X, 0) − discounting slack.
				if v != v || v < -1 || float64(v) > float64(sv[i])+1 {
					return fmt32err("call price", i, v)
				}
			}
			return nil
		},
	}, nil
}

// ScanK1 is the classic Hillis–Steele inclusive prefix sum over a shared
// memory tile: log2(block) barrier-separated add stages — the canonical
// synchronized-adder-ladder workload.
func ScanK1(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const block = 256
	n := block * 2 * scale

	b := isa.NewBuilder("scan_K1")
	sh := b.Shared(block * 4)
	tid := b.Reg()
	gtid := b.Reg()
	v := b.Reg()
	other := b.Reg()
	addr := b.Reg()
	oaddr := b.Reg()
	pAct := b.PredReg()

	b.MovSpecial(tid, isa.SRegTid)
	b.MovSpecial(gtid, isa.SRegGtid)
	b.Shl(isa.U64, addr, isa.R(gtid), isa.Imm(2))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.U32, v, isa.R(addr))
	b.Shl(isa.U64, addr, isa.R(tid), isa.Imm(2))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(sh))
	b.St(isa.Shared, isa.U32, isa.R(addr), isa.R(v))
	b.Bar()
	for stride := 1; stride < block; stride *= 2 {
		// v += shared[tid-stride] for tid >= stride
		b.Setp(isa.GE, isa.U32, pAct, isa.R(tid), isa.Imm(uint64(stride)))
		b.IAdd(isa.U64, oaddr, isa.R(addr), isa.ImmI(int64(-4*stride)))
		b.Ld(isa.Shared, isa.U32, other, isa.R(oaddr)).Guarded(pAct, false)
		b.Bar()
		b.IAdd(isa.U32, v, isa.R(v), isa.R(other)).Guarded(pAct, false)
		b.St(isa.Shared, isa.U32, isa.R(addr), isa.R(v)).Guarded(pAct, false)
		b.Bar()
	}
	b.Shl(isa.U64, oaddr, isa.R(gtid), isa.Imm(2))
	b.IAdd(isa.U64, oaddr, isa.R(oaddr), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.U32, isa.R(oaddr), isa.R(v))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(32)
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(r.Intn(100))
	}
	want := make([]uint32, n)
	for blk := 0; blk < n/block; blk++ {
		var acc uint32
		for i := 0; i < block; i++ {
			acc += in[blk*block+i]
			want[blk*block+i] = acc
		}
	}

	return &Spec{
		Name:  "scan_K1",
		Suite: "extra",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  n / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			return m.WriteU32s(AddrIn0, in)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectU32(m, AddrOut0, want, "scan")
		},
	}, nil
}

func fmtErrF64(what string, i int, got, want float64) error {
	return fmt.Errorf("kernels: %s[%d] = %g, want %g", what, i, got, want)
}
