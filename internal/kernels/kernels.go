// Package kernels contains the paper's 23-kernel evaluation suite
// (Section V-A) re-implemented in PTX-lite: 6 Rodinia workloads, 9 NVIDIA
// CUDA Samples workloads and 3 Parboil workloads, several contributing two
// kernels. Each workload reproduces the arithmetic skeleton of the
// original CUDA kernel — the loop iterators, index arithmetic,
// accumulations and butterflies that give rise to the spatio-temporal
// value correlation the paper exploits — on deterministic synthetic inputs
// drawn from the same distributions (images, random matrices, sorted
// runs, option chains).
//
// It also provides the 123 micro-benchmark stressors the power-model
// calibration uses (Section V-C).
package kernels

import (
	"fmt"
	"math/rand"
	"sort"

	"st2gpu/internal/gpusim"
)

// Spec is one runnable workload instance: the kernel launch, the host
// code that stages its inputs, and an optional output check.
type Spec struct {
	Name   string
	Suite  string
	Kernel *gpusim.Kernel
	// Setup stages inputs into device memory before launch.
	Setup func(m *gpusim.Memory) error
	// Verify checks kernel outputs against a host-computed reference; nil
	// when the workload has no cheap host oracle.
	Verify func(m *gpusim.Memory) error
}

// Workload is a named factory: Build produces a Spec at the given scale
// (1 = the default evaluation size; tests use smaller scales).
type Workload struct {
	Name  string
	Suite string
	Build func(scale int) (*Spec, error)
}

// Suite lists the paper's 23 kernels in the order of Figure 6.
func Suite() []Workload {
	return []Workload{
		{"binomial", "cuda-sdk", Binomial},
		{"kmeans_K1", "rodinia", KmeansK1},
		{"sgemm", "parboil", Sgemm},
		{"walsh_K1", "cuda-sdk", WalshK1},
		{"mri-q_K1", "parboil", MriQK1},
		{"bprop_K2", "rodinia", BpropK2},
		{"sradv1_K1", "rodinia", Sradv1K1},
		{"pathfinder", "rodinia", Pathfinder},
		{"dct8x8_K1", "cuda-sdk", Dct8x8K1},
		{"dwt2d_K1", "rodinia", Dwt2dK1},
		{"msort_K1", "cuda-sdk", MsortK1},
		{"sortNets_K1", "cuda-sdk", SortNetsK1},
		{"bprop_K1", "rodinia", BpropK1},
		{"b+tree_K1", "rodinia", BTreeK1},
		{"walsh_K2", "cuda-sdk", WalshK2},
		{"b+tree_K2", "rodinia", BTreeK2},
		{"sortNets_K2", "cuda-sdk", SortNetsK2},
		{"qrng_K1", "cuda-sdk", QrngK1},
		{"sad_K1", "parboil", SadK1},
		{"msort_K2", "cuda-sdk", MsortK2},
		{"sobolQRNG", "cuda-sdk", SobolQRNG},
		{"qrng_K2", "cuda-sdk", QrngK2},
		{"histo_K1", "cuda-sdk", HistoK1},
	}
}

// ByName returns the workload with the given name.
func ByName(name string) (Workload, error) {
	for _, w := range Suite() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("kernels: unknown workload %q", name)
}

// Names returns the suite's kernel names in Figure 6 order.
func Names() []string {
	ws := Suite()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

// SuiteNamesSorted returns the distinct suite labels.
func SuiteNamesSorted() []string {
	set := map[string]bool{}
	for _, w := range Suite() {
		set[w.Suite] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Device memory layout used by every kernel: inputs and outputs live in
// fixed, well-separated regions.
const (
	AddrIn0  uint64 = 1 << 20 // 1 MiB
	AddrIn1  uint64 = 8 << 20
	AddrIn2  uint64 = 16 << 20
	AddrOut0 uint64 = 24 << 20
	AddrOut1 uint64 = 32 << 20
	AddrAux  uint64 = 40 << 20
)

// rng returns the deterministic generator every input uses; varying the
// tag decorrelates streams across arrays without global state.
func rng(tag int64) *rand.Rand { return rand.New(rand.NewSource(0x57C0FFEE + tag)) }

// clampScale normalizes a workload scale.
func clampScale(scale int) int {
	if scale < 1 {
		return 1
	}
	if scale > 64 {
		return 64
	}
	return scale
}

// expectU32 compares device memory with a host reference.
func expectU32(m *gpusim.Memory, addr uint64, want []uint32, what string) error {
	got, err := m.ReadU32s(addr, len(want))
	if err != nil {
		return err
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("kernels: %s[%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
	return nil
}

// expectF32 compares float outputs bit-exactly (the simulator evaluates
// the same operation order as the host oracle).
func expectF32(m *gpusim.Memory, addr uint64, want []float32, what string) error {
	got, err := m.ReadF32s(addr, len(want))
	if err != nil {
		return err
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("kernels: %s[%d] = %g, want %g", what, i, got[i], want[i])
		}
	}
	return nil
}

// expectF32Near compares with a relative tolerance for kernels whose host
// oracle accumulates in a different order.
func expectF32Near(m *gpusim.Memory, addr uint64, want []float32, tol float64, what string) error {
	got, err := m.ReadF32s(addr, len(want))
	if err != nil {
		return err
	}
	for i := range want {
		diff := float64(got[i] - want[i])
		if diff < 0 {
			diff = -diff
		}
		lim := tol * (1 + abs64(float64(want[i])))
		if diff > lim {
			return fmt.Errorf("kernels: %s[%d] = %g, want %g (±%g)", what, i, got[i], want[i], lim)
		}
	}
	return nil
}

// fmaf replicates the device's fused multiply-add: the product is exact
// in float64 and a single rounding to float32 happens at the end —
// matching internal/gpusim's FFma evaluation.
func fmaf(a, b, c float32) float32 {
	return float32(float64(a)*float64(b) + float64(c))
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
