package kernels

import (
	"testing"

	"st2gpu/internal/gpusim"
)

// Every multi-kernel application runs end to end under both adder modes
// and verifies its final memory image — mergesort and bitonic check a
// fully sorted array, fwt a complete transform. This exercises
// inter-kernel dataflow through device memory.
func TestApplicationsBothModes(t *testing.T) {
	for _, a := range Apps() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			for _, mode := range []gpusim.AdderMode{gpusim.BaselineAdders, gpusim.ST2Adders} {
				app, err := a.Build(1)
				if err != nil {
					t.Fatal(err)
				}
				if len(app.Launches) == 0 {
					t.Fatal("application has no launches")
				}
				cfg := gpusim.DefaultConfig()
				cfg.NumSMs = 2
				cfg.AdderMode = mode
				stats, err := app.Run(cfg)
				if err != nil {
					t.Fatalf("mode %v: %v", mode, err)
				}
				if len(stats) != len(app.Launches) {
					t.Fatalf("stats for %d of %d launches", len(stats), len(app.Launches))
				}
				for i, rs := range stats {
					if rs.Cycles == 0 {
						t.Errorf("launch %s reported zero cycles", app.Launches[i].Name)
					}
				}
			}
		})
	}
}

// The merge ladder must consist of log2(n/tile) passes and the bitonic
// network of the full (k, j) triangle.
func TestApplicationShapes(t *testing.T) {
	ms, err := MergesortApp(1)
	if err != nil {
		t.Fatal(err)
	}
	// n = 128·16, tile = 128 → 4 merge passes + local sort.
	if len(ms.Launches) != 5 {
		t.Errorf("mergesort launches = %d, want 5", len(ms.Launches))
	}
	bt, err := BitonicApp(1)
	if err != nil {
		t.Fatal(err)
	}
	// n = 2048 = 2^11 → k stages 2..2048 (11), Σj = 1+2+...+11 = 66 passes.
	if len(bt.Launches) != 66 {
		t.Errorf("bitonic launches = %d, want 66", len(bt.Launches))
	}
	bp, err := BackpropApp(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Launches) != 2 {
		t.Errorf("backprop launches = %d", len(bp.Launches))
	}
}
