package kernels

import (
	"math"

	"st2gpu/internal/gpusim"
	"st2gpu/internal/isa"
)

// Sgemm is Parboil's dense matrix multiply: 16×16 thread tiles stage A
// and B panels through shared memory (barriered) and run the classic
// FMA-per-k inner loop. C = A·B with square matrices.
func Sgemm(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const tile = 16
	dim := 64
	if scale > 1 {
		dim = 64 + 32*(scale-1)
		dim -= dim % tile
	}

	b := isa.NewBuilder("sgemm")
	shA := b.Shared(tile * tile * 4)
	shB := b.Shared(tile * tile * 4)
	tid := b.Reg()
	ty := b.Reg()
	tx := b.Reg()
	blk := b.Reg()
	by := b.Reg()
	bx := b.Reg()
	row := b.Reg()
	col := b.Reg()
	acc := b.Reg()
	av := b.Reg()
	bv := b.Reg()
	t := b.Reg()
	kk := b.Reg()
	addr := b.Reg()
	saddr := b.Reg()
	sbddr := b.Reg()
	p := b.PredReg()

	blocksPerRow := dim / tile

	b.MovSpecial(tid, isa.SRegTid)
	b.MovSpecial(blk, isa.SRegCtaid)
	b.Shr(isa.U32, ty, isa.R(tid), isa.Imm(4))
	b.And(isa.U32, tx, isa.R(tid), isa.Imm(tile-1))
	b.IDiv(isa.U32, by, isa.R(blk), isa.Imm(uint64(blocksPerRow)))
	b.IRem(isa.U32, bx, isa.R(blk), isa.Imm(uint64(blocksPerRow)))
	// row = by·16 + ty; col = bx·16 + tx
	b.Shl(isa.U32, row, isa.R(by), isa.Imm(4))
	b.IAdd(isa.U32, row, isa.R(row), isa.R(ty))
	b.Shl(isa.U32, col, isa.R(bx), isa.Imm(4))
	b.IAdd(isa.U32, col, isa.R(col), isa.R(tx))
	b.Mov(isa.F32, acc, isa.ImmF32(0))

	b.Mov(isa.U32, kk, isa.Imm(0))
	b.Label("tiles")
	{
		// Stage A[row, kk+tx] and B[kk+ty, col] into shared memory.
		b.IMul(isa.U32, t, isa.R(row), isa.Imm(uint64(dim)))
		b.IAdd(isa.U32, t, isa.R(t), isa.R(kk))
		b.IAdd(isa.U32, t, isa.R(t), isa.R(tx))
		b.IMad(isa.U64, addr, isa.R(t), isa.Imm(4), isa.Imm(AddrIn0))
		b.Ld(isa.Global, isa.F32, av, isa.R(addr))
		b.IMad(isa.U64, saddr, isa.R(tid), isa.Imm(4), isa.Imm(shA))
		b.St(isa.Shared, isa.F32, isa.R(saddr), isa.R(av))

		b.IAdd(isa.U32, t, isa.R(kk), isa.R(ty))
		b.IMul(isa.U32, t, isa.R(t), isa.Imm(uint64(dim)))
		b.IAdd(isa.U32, t, isa.R(t), isa.R(col))
		b.IMad(isa.U64, addr, isa.R(t), isa.Imm(4), isa.Imm(AddrIn1))
		b.Ld(isa.Global, isa.F32, bv, isa.R(addr))
		b.IMad(isa.U64, sbddr, isa.R(tid), isa.Imm(4), isa.Imm(shB))
		b.St(isa.Shared, isa.F32, isa.R(sbddr), isa.R(bv))
		b.Bar()

		// Inner product over the staged tile (unrolled 16 FMAs).
		// saddr walks row ty of shA; sbddr walks column tx of shB.
		b.Shl(isa.U32, t, isa.R(ty), isa.Imm(4))
		b.IMad(isa.U64, saddr, isa.R(t), isa.Imm(4), isa.Imm(shA))
		b.IMad(isa.U64, sbddr, isa.R(tx), isa.Imm(4), isa.Imm(shB))
		for e := 0; e < tile; e++ {
			b.Ld(isa.Shared, isa.F32, av, isa.R(saddr))
			b.Ld(isa.Shared, isa.F32, bv, isa.R(sbddr))
			b.FFma(isa.F32, acc, isa.R(av), isa.R(bv), isa.R(acc))
			if e < tile-1 {
				b.IAdd(isa.U64, saddr, isa.R(saddr), isa.Imm(4))
				b.IAdd(isa.U64, sbddr, isa.R(sbddr), isa.Imm(tile*4))
			}
		}
		b.Bar()
		b.IAdd(isa.U32, kk, isa.R(kk), isa.Imm(tile))
		b.Setp(isa.LT, isa.U32, p, isa.R(kk), isa.Imm(uint64(dim)))
		b.BraTo("tiles", p, false)
	}
	// C[row, col] = acc
	b.IMul(isa.U32, t, isa.R(row), isa.Imm(uint64(dim)))
	b.IAdd(isa.U32, t, isa.R(t), isa.R(col))
	b.IMad(isa.U64, addr, isa.R(t), isa.Imm(4), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.F32, isa.R(addr), isa.R(acc))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(20)
	A := make([]float32, dim*dim)
	B := make([]float32, dim*dim)
	for i := range A {
		A[i] = float32(r.NormFloat64())
		B[i] = float32(r.NormFloat64())
	}
	want := make([]float32, dim*dim)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			acc := float32(0)
			for k := 0; k < dim; k++ {
				acc = fmaf(A[i*dim+k], B[k*dim+j], acc)
			}
			want[i*dim+j] = acc
		}
	}

	return &Spec{
		Name:  "sgemm",
		Suite: "parboil",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  blocksPerRow * blocksPerRow,
			BlockDim: tile * tile,
		},
		Setup: func(m *gpusim.Memory) error {
			if err := m.WriteF32s(AddrIn0, A); err != nil {
				return err
			}
			return m.WriteF32s(AddrIn1, B)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectF32(m, AddrOut0, want, "sgemm C")
		},
	}, nil
}

// MriQK1 is Parboil MRI-Q's computeQ kernel: per voxel, accumulate
// Σ φ·(cos 2πk·x, sin 2πk·x) over the k-space samples — FMA phase
// arithmetic feeding paired SFU sin/cos.
func MriQK1(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const (
		block   = 128
		kPoints = 48
	)
	voxels := block * 2 * scale

	b := isa.NewBuilder("mri-q_K1")
	gtid := b.Reg()
	x := b.Reg()
	y := b.Reg()
	z := b.Reg()
	kx := b.Reg()
	ky := b.Reg()
	kz := b.Reg()
	phi := b.Reg()
	arg := b.Reg()
	qr := b.Reg()
	qi := b.Reg()
	sv := b.Reg()
	cv := b.Reg()
	addr := b.Reg()
	kaddr := b.Reg()
	i := b.Reg()
	p := b.PredReg()

	b.MovSpecial(gtid, isa.SRegGtid)
	// Voxel coordinates from AddrIn0 (x,y,z interleaved).
	b.IMul(isa.U32, i, isa.R(gtid), isa.Imm(12))
	b.IAdd(isa.U64, addr, isa.R(i), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.F32, x, isa.R(addr))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(4))
	b.Ld(isa.Global, isa.F32, y, isa.R(addr))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(4))
	b.Ld(isa.Global, isa.F32, z, isa.R(addr))
	b.Mov(isa.F32, qr, isa.ImmF32(0))
	b.Mov(isa.F32, qi, isa.ImmF32(0))
	b.Mov(isa.U64, kaddr, isa.Imm(AddrIn1))
	b.Mov(isa.U32, i, isa.Imm(0))
	b.Label("ksum")
	// k-sample: kx,ky,kz,phi packed per point.
	b.Ld(isa.Global, isa.F32, kx, isa.R(kaddr))
	b.IAdd(isa.U64, kaddr, isa.R(kaddr), isa.Imm(4))
	b.Ld(isa.Global, isa.F32, ky, isa.R(kaddr))
	b.IAdd(isa.U64, kaddr, isa.R(kaddr), isa.Imm(4))
	b.Ld(isa.Global, isa.F32, kz, isa.R(kaddr))
	b.IAdd(isa.U64, kaddr, isa.R(kaddr), isa.Imm(4))
	b.Ld(isa.Global, isa.F32, phi, isa.R(kaddr))
	b.IAdd(isa.U64, kaddr, isa.R(kaddr), isa.Imm(4))
	// arg = 2π(kx·x + ky·y + kz·z)
	b.FMul(isa.F32, arg, isa.R(kx), isa.R(x))
	b.FFma(isa.F32, arg, isa.R(ky), isa.R(y), isa.R(arg))
	b.FFma(isa.F32, arg, isa.R(kz), isa.R(z), isa.R(arg))
	b.FMul(isa.F32, arg, isa.R(arg), isa.ImmF32(2*math.Pi))
	b.Cos(isa.F32, cv, isa.R(arg))
	b.Sin(isa.F32, sv, isa.R(arg))
	b.FFma(isa.F32, qr, isa.R(phi), isa.R(cv), isa.R(qr))
	b.FFma(isa.F32, qi, isa.R(phi), isa.R(sv), isa.R(qi))
	b.IAdd(isa.U32, i, isa.R(i), isa.Imm(1))
	b.Setp(isa.LT, isa.U32, p, isa.R(i), isa.Imm(kPoints))
	b.BraTo("ksum", p, false)
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.F32, isa.R(addr), isa.R(qr))
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrOut1))
	b.St(isa.Global, isa.F32, isa.R(addr), isa.R(qi))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(21)
	vox := make([]float32, voxels*3)
	for i := range vox {
		vox[i] = float32(r.Float64())
	}
	ks := make([]float32, kPoints*4)
	for i := range ks {
		ks[i] = float32(r.NormFloat64() * 0.5)
	}
	wantR := make([]float32, voxels)
	wantI := make([]float32, voxels)
	for v := 0; v < voxels; v++ {
		x, y, z := vox[v*3], vox[v*3+1], vox[v*3+2]
		var qr, qi float32
		for k := 0; k < kPoints; k++ {
			kx, ky, kz, phi := ks[k*4], ks[k*4+1], ks[k*4+2], ks[k*4+3]
			arg := kx * x
			arg = fmaf(ky, y, arg)
			arg = fmaf(kz, z, arg)
			arg = arg * (2 * math.Pi)
			cv := float32(math.Cos(float64(arg)))
			sv := float32(math.Sin(float64(arg)))
			qr = fmaf(phi, cv, qr)
			qi = fmaf(phi, sv, qi)
		}
		wantR[v], wantI[v] = qr, qi
	}

	return &Spec{
		Name:  "mri-q_K1",
		Suite: "parboil",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  voxels / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			if err := m.WriteF32s(AddrIn0, vox); err != nil {
				return err
			}
			return m.WriteF32s(AddrIn1, ks)
		},
		Verify: func(m *gpusim.Memory) error {
			if err := expectF32Near(m, AddrOut0, wantR, 1e-4, "Q real"); err != nil {
				return err
			}
			return expectF32Near(m, AddrOut1, wantI, 1e-4, "Q imag")
		},
	}, nil
}

// SadK1 is Parboil's sum-of-absolute-differences kernel: per 4×4 macro
// block, scan candidate motion vectors accumulating Σ|cur−ref| — the
// densest integer subtract/abs/add workload in the suite.
func SadK1(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const (
		block   = 128
		searchN = 9 // 3×3 search window
		mbW     = 4
	)
	mbCount := block * 2 * scale
	width := 256
	rows := (mbCount*mbW)/width*mbW + 8

	b := isa.NewBuilder("sad_K1")
	gtid := b.Reg()
	mbx := b.Reg()
	mby := b.Reg()
	curBase := b.Reg()
	refBase := b.Reg()
	curV := b.Reg()
	refV := b.Reg()
	d := b.Reg()
	sad := b.Reg()
	best := b.Reg()
	bestIdx := b.Reg()
	addr := b.Reg()
	t := b.Reg()
	pBest := b.PredReg()

	mbPerRow := width / mbW

	b.MovSpecial(gtid, isa.SRegGtid)
	b.IRem(isa.U32, mbx, isa.R(gtid), isa.Imm(uint64(mbPerRow)))
	b.IDiv(isa.U32, mby, isa.R(gtid), isa.Imm(uint64(mbPerRow)))
	// curBase = (mby·4+2)·width + mbx·4 + 2 (offset so the search window
	// stays in bounds).
	b.Shl(isa.U32, t, isa.R(mby), isa.Imm(2))
	b.IAdd(isa.U32, t, isa.R(t), isa.Imm(2))
	b.IMul(isa.U32, curBase, isa.R(t), isa.Imm(uint64(width)))
	b.Shl(isa.U32, t, isa.R(mbx), isa.Imm(2))
	b.IAdd(isa.U32, t, isa.R(t), isa.Imm(2))
	b.IAdd(isa.U32, curBase, isa.R(curBase), isa.R(t))
	b.Mov(isa.U32, best, isa.Imm(0xFFFFFFFF))
	b.Mov(isa.U32, bestIdx, isa.Imm(0))
	// Search offsets unrolled: dy,dx ∈ {-1,0,1}.
	searchIdx := 0
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			off := int64(dy*width + dx)
			b.Mov(isa.U32, sad, isa.Imm(0))
			b.IAdd(isa.S32, refBase, isa.R(curBase), isa.ImmI(off))
			// 4×4 block SAD, unrolled.
			for py := 0; py < mbW; py++ {
				for px := 0; px < mbW; px++ {
					pix := int64(py*width + px)
					b.IAdd(isa.S32, t, isa.R(curBase), isa.ImmI(pix))
					b.IMad(isa.U64, addr, isa.R(t), isa.Imm(4), isa.Imm(AddrIn0))
					b.Ld(isa.Global, isa.U32, curV, isa.R(addr))
					b.IAdd(isa.S32, t, isa.R(refBase), isa.ImmI(pix))
					b.IMad(isa.U64, addr, isa.R(t), isa.Imm(4), isa.Imm(AddrIn1))
					b.Ld(isa.Global, isa.U32, refV, isa.R(addr))
					b.ISub(isa.S32, d, isa.R(curV), isa.R(refV))
					b.Abs(isa.S32, d, isa.R(d))
					b.IAdd(isa.U32, sad, isa.R(sad), isa.R(d))
				}
			}
			b.Setp(isa.LT, isa.U32, pBest, isa.R(sad), isa.R(best))
			b.IMin(isa.U32, best, isa.R(sad), isa.R(best))
			b.Selp(isa.U32, bestIdx, isa.Imm(uint64(searchIdx)), isa.R(bestIdx), pBest)
			searchIdx++
		}
	}
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.U32, isa.R(addr), isa.R(best))
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrOut1))
	b.St(isa.Global, isa.U32, isa.R(addr), isa.R(bestIdx))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(22)
	n := width * rows
	cur := make([]uint32, n)
	ref := make([]uint32, n)
	for i := range cur {
		cur[i] = uint32(r.Intn(256))
		// The reference frame is the current frame slightly shifted plus
		// noise — realistic video correlation.
		ref[i] = uint32((int(cur[i]) + r.Intn(21) - 10 + 256) % 256)
	}
	wantSad := make([]uint32, mbCount)
	for mb := 0; mb < mbCount; mb++ {
		mbx, mby := mb%mbPerRow, mb/mbPerRow
		base := (mby*4+2)*width + mbx*4 + 2
		best := uint32(0xFFFFFFFF)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				sad := uint32(0)
				rb := base + dy*width + dx
				for py := 0; py < mbW; py++ {
					for px := 0; px < mbW; px++ {
						c := int32(cur[base+py*width+px])
						rv := int32(ref[rb+py*width+px])
						d := c - rv
						if d < 0 {
							d = -d
						}
						sad += uint32(d)
					}
				}
				if sad < best {
					best = sad
				}
			}
		}
		wantSad[mb] = best
	}

	return &Spec{
		Name:  "sad_K1",
		Suite: "parboil",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  mbCount / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			if err := m.WriteU32s(AddrIn0, cur); err != nil {
				return err
			}
			return m.WriteU32s(AddrIn1, ref)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectU32(m, AddrOut0, wantSad, "sad")
		},
	}, nil
}
