package kernels

import (
	"fmt"
	"math"

	"st2gpu/internal/gpusim"
	"st2gpu/internal/isa"
)

// Pathfinder is the Rodinia grid dynamic-programming kernel whose hot
// loop the paper dissects in Figure 2: every thread owns one column,
// and per iteration computes
//
//	result[tx] = MIN(left, up, right) + wall[cols*(i+1) + col]
//
// through shared memory with a barrier per row. The MIN/index/add chain
// reproduces the seven PCs (PC1..PC7) of the figure.
func Pathfinder(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const block = 256
	iters := 20
	colsBlocks := 2 * scale
	cols := block * colsBlocks
	rows := iters + 1

	b := isa.NewBuilder("pathfinder")
	shPrev := b.Shared(block * 4)
	shCur := b.Shared(block * 4)

	tx := b.Reg()
	col := b.Reg()
	i := b.Reg()
	left := b.Reg()
	up := b.Reg()
	right := b.Reg()
	shortest := b.Reg()
	index := b.Reg()
	wallv := b.Reg()
	addr := b.Reg()
	tmp := b.Reg()
	txm := b.Reg()
	txp := b.Reg()
	p := b.PredReg()

	b.MovSpecial(tx, isa.SRegTid)
	b.MovSpecial(col, isa.SRegGtid)

	// prev[tx] = src[col]  (row 0 of the wall)
	b.IMad(isa.U64, addr, isa.R(col), isa.Imm(4), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.U32, tmp, isa.R(addr))
	b.IMad(isa.U64, addr, isa.R(tx), isa.Imm(4), isa.Imm(shPrev))
	b.St(isa.Shared, isa.U32, isa.R(addr), isa.R(tmp))
	b.Bar()

	b.Mov(isa.U32, i, isa.Imm(0))
	b.Label("row")
	// Clamped neighbour indices (block-edge halo).
	b.ISub(isa.U32, txm, isa.R(tx), isa.Imm(1)) // PC1-flavoured subtract
	b.IMax(isa.S32, txm, isa.R(txm), isa.Imm(0))
	b.IAdd(isa.U32, txp, isa.R(tx), isa.Imm(1)) // PC2
	b.IMin(isa.S32, txp, isa.R(txp), isa.Imm(block-1))
	// left, up, right from prev row.
	b.IMad(isa.U64, addr, isa.R(txm), isa.Imm(4), isa.Imm(shPrev))
	b.Ld(isa.Shared, isa.U32, left, isa.R(addr))
	b.IMad(isa.U64, addr, isa.R(tx), isa.Imm(4), isa.Imm(shPrev))
	b.Ld(isa.Shared, isa.U32, up, isa.R(addr))
	b.IMad(isa.U64, addr, isa.R(txp), isa.Imm(4), isa.Imm(shPrev))
	b.Ld(isa.Shared, isa.U32, right, isa.R(addr))
	// shortest = MIN(left, up); shortest = MIN(shortest, right)  (PC4, PC5)
	b.IMin(isa.S32, shortest, isa.R(left), isa.R(up))
	b.IMin(isa.S32, shortest, isa.R(shortest), isa.R(right))
	// index = cols*(i+1) + col  (PC6)
	b.IAdd(isa.U32, index, isa.R(i), isa.Imm(1)) // PC3-flavoured iterator add
	b.IMul(isa.U32, index, isa.R(index), isa.Imm(uint64(cols)))
	b.IAdd(isa.U32, index, isa.R(index), isa.R(col))
	// result = shortest + wall[index]  (PC7)
	b.IMad(isa.U64, addr, isa.R(index), isa.Imm(4), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.U32, wallv, isa.R(addr))
	b.IAdd(isa.U32, wallv, isa.R(shortest), isa.R(wallv))
	b.IMad(isa.U64, addr, isa.R(tx), isa.Imm(4), isa.Imm(shCur))
	b.St(isa.Shared, isa.U32, isa.R(addr), isa.R(wallv))
	b.Bar()
	// prev[tx] = cur[tx]
	b.IMad(isa.U64, addr, isa.R(tx), isa.Imm(4), isa.Imm(shCur))
	b.Ld(isa.Shared, isa.U32, tmp, isa.R(addr))
	b.IMad(isa.U64, addr, isa.R(tx), isa.Imm(4), isa.Imm(shPrev))
	b.St(isa.Shared, isa.U32, isa.R(addr), isa.R(tmp))
	b.Bar()
	b.IAdd(isa.U32, i, isa.R(i), isa.Imm(1))
	b.Setp(isa.LT, isa.U32, p, isa.R(i), isa.Imm(uint64(iters)))
	b.BraTo("row", p, false)

	// out[col] = prev[tx]
	b.IMad(isa.U64, addr, isa.R(tx), isa.Imm(4), isa.Imm(shPrev))
	b.Ld(isa.Shared, isa.U32, tmp, isa.R(addr))
	b.IMad(isa.U64, addr, isa.R(col), isa.Imm(4), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.U32, isa.R(addr), isa.R(tmp))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	wall := make([]uint32, rows*cols)
	r := rng(1)
	for i := range wall {
		wall[i] = uint32(r.Intn(10))
	}
	want := make([]uint32, cols)
	// Host oracle mirrors the block-local clamped DP.
	prev := make([]uint32, cols)
	copy(prev, wall[:cols])
	cur := make([]uint32, cols)
	for it := 0; it < iters; it++ {
		for c := 0; c < cols; c++ {
			blk := c / block
			lo, hi := blk*block, blk*block+block-1
			l := c - 1
			if l < lo {
				l = lo
			}
			rr := c + 1
			if rr > hi {
				rr = hi
			}
			s := prev[l]
			if prev[c] < s {
				s = prev[c]
			}
			if prev[rr] < s {
				s = prev[rr]
			}
			cur[c] = s + wall[(it+1)*cols+c]
		}
		copy(prev, cur)
	}
	copy(want, prev)

	return &Spec{
		Name:  "pathfinder",
		Suite: "rodinia",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  colsBlocks,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			return m.WriteU32s(AddrIn0, wall)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectU32(m, AddrOut0, want, "pathfinder")
		},
	}, nil
}

// KmeansK1 is Rodinia k-means' distance kernel: one thread per point
// computes squared Euclidean distance to every cluster centre (an
// FSUB+FMA loop over the features) and records the nearest index.
func KmeansK1(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const (
		features = 16
		clusters = 5
		block    = 128
	)
	points := block * 4 * scale

	b := isa.NewBuilder("kmeans_K1")
	gtid := b.Reg()
	k := b.Reg()
	f := b.Reg()
	px := b.Reg()
	cx := b.Reg()
	d := b.Reg()
	dist := b.Reg()
	best := b.Reg()
	bestK := b.Reg()
	paddr := b.Reg()
	caddr := b.Reg()
	addr := b.Reg()
	p := b.PredReg()
	pk := b.PredReg()

	b.MovSpecial(gtid, isa.SRegGtid)
	b.Mov(isa.F32, best, isa.ImmF32(math.MaxFloat32))
	b.Mov(isa.U32, bestK, isa.Imm(0))
	b.Mov(isa.U32, k, isa.Imm(0))
	b.Label("centers")
	{
		b.Mov(isa.F32, dist, isa.ImmF32(0))
		// paddr = point base; caddr = centre base. Incremental addressing
		// inside the feature loop (strength-reduced adds).
		b.IMad(isa.U64, paddr, isa.R(gtid), isa.Imm(features*4), isa.Imm(AddrIn0))
		b.IMad(isa.U64, caddr, isa.R(k), isa.Imm(features*4), isa.Imm(AddrIn1))
		b.Mov(isa.U32, f, isa.Imm(0))
		b.Label("feat")
		b.Ld(isa.Global, isa.F32, px, isa.R(paddr))
		b.Ld(isa.Global, isa.F32, cx, isa.R(caddr))
		b.FSub(isa.F32, d, isa.R(px), isa.R(cx))
		b.FFma(isa.F32, dist, isa.R(d), isa.R(d), isa.R(dist))
		b.IAdd(isa.U64, paddr, isa.R(paddr), isa.Imm(4))
		b.IAdd(isa.U64, caddr, isa.R(caddr), isa.Imm(4))
		b.IAdd(isa.U32, f, isa.R(f), isa.Imm(1))
		b.Setp(isa.LT, isa.U32, p, isa.R(f), isa.Imm(features))
		b.BraTo("feat", p, false)
		// Track the minimum.
		b.Setp(isa.LT, isa.F32, pk, isa.R(dist), isa.R(best))
		b.FMin(isa.F32, best, isa.R(dist), isa.R(best))
		b.Selp(isa.U32, bestK, isa.R(k), isa.R(bestK), pk)
		b.IAdd(isa.U32, k, isa.R(k), isa.Imm(1))
		b.Setp(isa.LT, isa.U32, p, isa.R(k), isa.Imm(clusters))
		b.BraTo("centers", p, false)
	}
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.U32, isa.R(addr), isa.R(bestK))
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrOut1))
	b.St(isa.Global, isa.F32, isa.R(addr), isa.R(best))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(2)
	pts := make([]float32, points*features)
	for i := range pts {
		pts[i] = float32(r.NormFloat64()*2 + float64(i%features))
	}
	ctrs := make([]float32, clusters*features)
	for i := range ctrs {
		ctrs[i] = float32(r.NormFloat64()*2 + float64(i%features))
	}
	// Host oracle with identical op order.
	wantK := make([]uint32, points)
	for pt := 0; pt < points; pt++ {
		best := float32(math.MaxFloat32)
		bk := uint32(0)
		for k := 0; k < clusters; k++ {
			dist := float32(0)
			for f := 0; f < features; f++ {
				d := pts[pt*features+f] - ctrs[k*features+f]
				dist = fmaf(d, d, dist)
			}
			if dist < best {
				bk = uint32(k)
			}
			if dist < best {
				best = dist
			}
		}
		wantK[pt] = bk
	}

	return &Spec{
		Name:  "kmeans_K1",
		Suite: "rodinia",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  points / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			if err := m.WriteF32s(AddrIn0, pts); err != nil {
				return err
			}
			return m.WriteF32s(AddrIn1, ctrs)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectU32(m, AddrOut0, wantK, "kmeans membership")
		},
	}, nil
}

// BpropK1 is backprop's layerforward kernel: one thread per hidden unit
// accumulates Σ w·x over the input layer (FMA chain) and applies the
// sigmoid through the SFU.
func BpropK1(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const (
		inputs = 128
		block  = 128
	)
	hidden := block * 2 * scale

	b := isa.NewBuilder("bprop_K1")
	j := b.Reg()
	i := b.Reg()
	acc := b.Reg()
	w := b.Reg()
	x := b.Reg()
	waddr := b.Reg()
	xaddr := b.Reg()
	addr := b.Reg()
	e := b.Reg()
	p := b.PredReg()

	b.MovSpecial(j, isa.SRegGtid)
	b.Mov(isa.F32, acc, isa.ImmF32(0))
	b.IMad(isa.U64, waddr, isa.R(j), isa.Imm(inputs*4), isa.Imm(AddrIn0))
	b.Mov(isa.U64, xaddr, isa.Imm(AddrIn1))
	b.Mov(isa.U32, i, isa.Imm(0))
	b.Label("sum")
	b.Ld(isa.Global, isa.F32, w, isa.R(waddr))
	b.Ld(isa.Global, isa.F32, x, isa.R(xaddr))
	b.FFma(isa.F32, acc, isa.R(w), isa.R(x), isa.R(acc))
	b.IAdd(isa.U64, waddr, isa.R(waddr), isa.Imm(4))
	b.IAdd(isa.U64, xaddr, isa.R(xaddr), isa.Imm(4))
	b.IAdd(isa.U32, i, isa.R(i), isa.Imm(1))
	b.Setp(isa.LT, isa.U32, p, isa.R(i), isa.Imm(inputs))
	b.BraTo("sum", p, false)
	// sigmoid(acc) = 1 / (1 + 2^(-acc·log2 e))
	b.FMul(isa.F32, e, isa.R(acc), isa.ImmF32(-1.4426950408889634))
	b.Exp2(isa.F32, e, isa.R(e))
	b.FAdd(isa.F32, e, isa.R(e), isa.ImmF32(1))
	b.Rcp(isa.F32, e, isa.R(e))
	b.IMad(isa.U64, addr, isa.R(j), isa.Imm(4), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.F32, isa.R(addr), isa.R(e))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(3)
	weights := make([]float32, hidden*inputs)
	for i := range weights {
		weights[i] = float32(r.NormFloat64() * 0.1)
	}
	xs := make([]float32, inputs)
	for i := range xs {
		xs[i] = float32(r.Float64())
	}
	want := make([]float32, hidden)
	for h := 0; h < hidden; h++ {
		acc := float32(0)
		for i := 0; i < inputs; i++ {
			acc = fmaf(weights[h*inputs+i], xs[i], acc)
		}
		e := float32(math.Exp2(float64(acc * -1.4426950408889634)))
		want[h] = float32(1 / float64(e+1))
	}

	return &Spec{
		Name:  "bprop_K1",
		Suite: "rodinia",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  hidden / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			if err := m.WriteF32s(AddrIn0, weights); err != nil {
				return err
			}
			return m.WriteF32s(AddrIn1, xs)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectF32Near(m, AddrOut0, want, 1e-5, "bprop hidden")
		},
	}, nil
}

// BpropK2 is backprop's weight-adjustment kernel: one thread per weight
// applies w += η·δ·x + α·Δw — the FMA/FADD-dominated update pass.
func BpropK2(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const (
		inputs = 128
		block  = 256
	)
	hidden := 2 * scale
	n := hidden * inputs

	b := isa.NewBuilder("bprop_K2")
	gtid := b.Reg()
	jj := b.Reg()
	ii := b.Reg()
	w := b.Reg()
	oldw := b.Reg()
	delta := b.Reg()
	x := b.Reg()
	upd := b.Reg()
	addr := b.Reg()

	b.MovSpecial(gtid, isa.SRegGtid)
	b.IDiv(isa.U32, jj, isa.R(gtid), isa.Imm(inputs))
	b.IRem(isa.U32, ii, isa.R(gtid), isa.Imm(inputs))
	b.IMad(isa.U64, addr, isa.R(jj), isa.Imm(4), isa.Imm(AddrIn1))
	b.Ld(isa.Global, isa.F32, delta, isa.R(addr))
	b.IMad(isa.U64, addr, isa.R(ii), isa.Imm(4), isa.Imm(AddrIn2))
	b.Ld(isa.Global, isa.F32, x, isa.R(addr))
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.F32, w, isa.R(addr))
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrAux))
	b.Ld(isa.Global, isa.F32, oldw, isa.R(addr))
	// upd = 0.3·δ·x + 0.3·Δw ; w += upd
	b.FMul(isa.F32, upd, isa.R(delta), isa.R(x))
	b.FMul(isa.F32, upd, isa.R(upd), isa.ImmF32(0.3))
	b.FFma(isa.F32, upd, isa.R(oldw), isa.ImmF32(0.3), isa.R(upd))
	b.FAdd(isa.F32, w, isa.R(w), isa.R(upd))
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.F32, isa.R(addr), isa.R(w))
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrOut1))
	b.St(isa.Global, isa.F32, isa.R(addr), isa.R(upd))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(4)
	ws := make([]float32, n)
	olds := make([]float32, n)
	for i := range ws {
		ws[i] = float32(r.NormFloat64() * 0.1)
		olds[i] = float32(r.NormFloat64() * 0.01)
	}
	deltas := make([]float32, hidden)
	for i := range deltas {
		deltas[i] = float32(r.NormFloat64() * 0.05)
	}
	xs := make([]float32, inputs)
	for i := range xs {
		xs[i] = float32(r.Float64())
	}
	want := make([]float32, n)
	for g := 0; g < n; g++ {
		jj, ii := g/inputs, g%inputs
		upd := deltas[jj] * xs[ii]
		upd *= 0.3
		upd = fmaf(olds[g], 0.3, upd)
		want[g] = ws[g] + upd
	}

	return &Spec{
		Name:  "bprop_K2",
		Suite: "rodinia",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  n / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			if err := m.WriteF32s(AddrIn0, ws); err != nil {
				return err
			}
			if err := m.WriteF32s(AddrIn1, deltas); err != nil {
				return err
			}
			if err := m.WriteF32s(AddrIn2, xs); err != nil {
				return err
			}
			return m.WriteF32s(AddrAux, olds)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectF32(m, AddrOut0, want, "bprop weights")
		},
	}, nil
}

// Sradv1K1 is Rodinia SRAD's diffusion-coefficient kernel: per pixel,
// four directional derivatives, the normalized gradient/laplacian, and a
// divide-heavy coefficient computation.
func Sradv1K1(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const block = 256
	rows := 16 * scale
	cols := 256
	n := rows * cols

	b := isa.NewBuilder("sradv1_K1")
	gtid := b.Reg()
	rr := b.Reg()
	cc := b.Reg()
	idx := b.Reg()
	c := b.Reg()
	dN := b.Reg()
	dS := b.Reg()
	dW := b.Reg()
	dE := b.Reg()
	g2 := b.Reg()
	l := b.Reg()
	num := b.Reg()
	den := b.Reg()
	q := b.Reg()
	addr := b.Reg()
	t := b.Reg()

	b.MovSpecial(gtid, isa.SRegGtid)
	b.IDiv(isa.U32, rr, isa.R(gtid), isa.Imm(uint64(cols)))
	b.IRem(isa.U32, cc, isa.R(gtid), isa.Imm(uint64(cols)))

	load := func(dst isa.Reg, rowOff, colOff int64) {
		// idx = clamp(rr+rowOff)·cols + clamp(cc+colOff)
		b.IAdd(isa.S32, idx, isa.R(rr), isa.ImmI(rowOff))
		b.IMax(isa.S32, idx, isa.R(idx), isa.Imm(0))
		b.IMin(isa.S32, idx, isa.R(idx), isa.Imm(uint64(rows-1)))
		b.IMul(isa.U32, idx, isa.R(idx), isa.Imm(uint64(cols)))
		b.IAdd(isa.S32, t, isa.R(cc), isa.ImmI(colOff))
		b.IMax(isa.S32, t, isa.R(t), isa.Imm(0))
		b.IMin(isa.S32, t, isa.R(t), isa.Imm(uint64(cols-1)))
		b.IAdd(isa.U32, idx, isa.R(idx), isa.R(t))
		b.IMad(isa.U64, addr, isa.R(idx), isa.Imm(4), isa.Imm(AddrIn0))
		b.Ld(isa.Global, isa.F32, dst, isa.R(addr))
	}

	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.F32, c, isa.R(addr))
	load(dN, -1, 0)
	load(dS, 1, 0)
	load(dW, 0, -1)
	load(dE, 0, 1)
	b.FSub(isa.F32, dN, isa.R(dN), isa.R(c))
	b.FSub(isa.F32, dS, isa.R(dS), isa.R(c))
	b.FSub(isa.F32, dW, isa.R(dW), isa.R(c))
	b.FSub(isa.F32, dE, isa.R(dE), isa.R(c))
	// G² = (dN²+dS²+dW²+dE²)/c²  ;  L = (dN+dS+dW+dE)/c
	b.FMul(isa.F32, g2, isa.R(dN), isa.R(dN))
	b.FFma(isa.F32, g2, isa.R(dS), isa.R(dS), isa.R(g2))
	b.FFma(isa.F32, g2, isa.R(dW), isa.R(dW), isa.R(g2))
	b.FFma(isa.F32, g2, isa.R(dE), isa.R(dE), isa.R(g2))
	b.FMul(isa.F32, t, isa.R(c), isa.R(c))
	b.FDiv(isa.F32, g2, isa.R(g2), isa.R(t))
	b.FAdd(isa.F32, l, isa.R(dN), isa.R(dS))
	b.FAdd(isa.F32, l, isa.R(l), isa.R(dW))
	b.FAdd(isa.F32, l, isa.R(l), isa.R(dE))
	b.FDiv(isa.F32, l, isa.R(l), isa.R(c))
	// q = (G²/2 − L²/16) / (1 + L/4)²  ;  coeff = 1/(1 + (q−q0)/(q0(1+q0)))
	b.FMul(isa.F32, num, isa.R(g2), isa.ImmF32(0.5))
	b.FMul(isa.F32, t, isa.R(l), isa.R(l))
	b.FFma(isa.F32, num, isa.R(t), isa.ImmF32(-1.0/16), isa.R(num))
	b.FFma(isa.F32, den, isa.R(l), isa.ImmF32(0.25), isa.ImmF32(1))
	b.FMul(isa.F32, den, isa.R(den), isa.R(den))
	b.FDiv(isa.F32, q, isa.R(num), isa.R(den))
	const q0 = 0.05
	b.FSub(isa.F32, t, isa.R(q), isa.ImmF32(q0))
	b.FMul(isa.F32, t, isa.R(t), isa.ImmF32(1.0/(q0*(1+q0))))
	b.FAdd(isa.F32, t, isa.R(t), isa.ImmF32(1))
	b.Rcp(isa.F32, t, isa.R(t))
	b.FMin(isa.F32, t, isa.R(t), isa.ImmF32(1))
	b.FMax(isa.F32, t, isa.R(t), isa.ImmF32(0))
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.F32, isa.R(addr), isa.R(t))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(5)
	img := make([]float32, n)
	for i := range img {
		// Speckled image: positive intensities with smooth structure.
		row, col := i/cols, i%cols
		base := 100 + 40*math.Sin(float64(row)/9)*math.Cos(float64(col)/11)
		img[i] = float32(base * (0.9 + 0.2*r.Float64()))
	}

	return &Spec{
		Name:  "sradv1_K1",
		Suite: "rodinia",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  n / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			return m.WriteF32s(AddrIn0, img)
		},
		Verify: func(m *gpusim.Memory) error {
			out, err := m.ReadF32s(AddrOut0, n)
			if err != nil {
				return err
			}
			for i, v := range out {
				if v < 0 || v > 1 || v != v {
					return fmt32err("srad coefficient", i, v)
				}
			}
			return nil
		},
	}, nil
}

// Dwt2dK1 is Rodinia's 2-D discrete wavelet transform (one 5/3-lifting
// horizontal pass): per output pair, a predict step (high band) and an
// update step (low band) built from adds/subs and halving multiplies.
func Dwt2dK1(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const block = 256
	half := block * 2 * scale // output pairs
	n := half * 2

	b := isa.NewBuilder("dwt2d_K1")
	gtid := b.Reg()
	x0 := b.Reg()
	x1 := b.Reg()
	x2 := b.Reg()
	hi := b.Reg()
	lo := b.Reg()
	addr := b.Reg()
	i2 := b.Reg()
	ip2 := b.Reg()

	b.MovSpecial(gtid, isa.SRegGtid)
	// i2 = 2·gtid; ip2 = min(i2+2, n-2)
	b.Shl(isa.U32, i2, isa.R(gtid), isa.Imm(1))
	b.IAdd(isa.U32, ip2, isa.R(i2), isa.Imm(2))
	b.IMin(isa.U32, ip2, isa.R(ip2), isa.Imm(uint64(n-2)))
	b.IMad(isa.U64, addr, isa.R(i2), isa.Imm(4), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.F32, x0, isa.R(addr))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(4))
	b.Ld(isa.Global, isa.F32, x1, isa.R(addr))
	b.IMad(isa.U64, addr, isa.R(ip2), isa.Imm(4), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.F32, x2, isa.R(addr))
	// hi = x1 − (x0+x2)/2 ; lo = x0 + hi/4
	b.FAdd(isa.F32, hi, isa.R(x0), isa.R(x2))
	b.FMul(isa.F32, hi, isa.R(hi), isa.ImmF32(0.5))
	b.FSub(isa.F32, hi, isa.R(x1), isa.R(hi))
	b.FMul(isa.F32, lo, isa.R(hi), isa.ImmF32(0.25))
	b.FAdd(isa.F32, lo, isa.R(x0), isa.R(lo))
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.F32, isa.R(addr), isa.R(lo))
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrOut1))
	b.St(isa.Global, isa.F32, isa.R(addr), isa.R(hi))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(6)
	sig := make([]float32, n)
	for i := range sig {
		sig[i] = float32(80 + 50*math.Sin(float64(i)/23) + 8*r.NormFloat64())
	}
	wantLo := make([]float32, half)
	wantHi := make([]float32, half)
	for g := 0; g < half; g++ {
		i2 := 2 * g
		ip2 := i2 + 2
		if ip2 > n-2 {
			ip2 = n - 2
		}
		h := sig[i2+1] - (sig[i2]+sig[ip2])*0.5
		wantHi[g] = h
		wantLo[g] = sig[i2] + h*0.25
	}

	return &Spec{
		Name:  "dwt2d_K1",
		Suite: "rodinia",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  half / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			return m.WriteF32s(AddrIn0, sig)
		},
		Verify: func(m *gpusim.Memory) error {
			if err := expectF32(m, AddrOut0, wantLo, "dwt low band"); err != nil {
				return err
			}
			return expectF32(m, AddrOut1, wantHi, "dwt high band")
		},
	}, nil
}

// BTreeK1 is Rodinia b+tree's findK kernel: every thread walks a
// fanout-8 radix tree from the root, counting keys ≤ query at each level
// — the integer-compare / index-arithmetic pattern of pointer chasing.
func BTreeK1(scale int) (*Spec, error) {
	return btreeKernel(scale, false)
}

// BTreeK2 is b+tree's range kernel: the same descent performed for both
// ends of a range, returning the element count between them.
func BTreeK2(scale int) (*Spec, error) {
	return btreeKernel(scale, true)
}

func btreeKernel(scale int, rangeQuery bool) (*Spec, error) {
	scale = clampScale(scale)
	const (
		fanout = 8
		levels = 4 // 8^4 = 4096 leaves
		block  = 128
	)
	leaves := 1
	for l := 0; l < levels; l++ {
		leaves *= fanout
	}
	queries := block * 2 * scale
	name := "b+tree_K1"
	if rangeQuery {
		name = "b+tree_K2"
	}

	// The tree is stored level by level: level l holds 8^(l+1) keys
	// (fanout separators per node). Sorted keys make separators easy.
	keys := make([]uint32, leaves)
	r := rng(7)
	cur := uint32(0)
	for i := range keys {
		cur += uint32(r.Intn(5) + 1)
		keys[i] = cur
	}
	// levelBase[l] = offset (in u32) of level l's separator array.
	levelBase := make([]int, levels)
	total := 0
	for l := 0; l < levels; l++ {
		levelBase[l] = total
		total += pow(fanout, l+1)
	}
	seps := make([]uint32, total)
	for l := 0; l < levels; l++ {
		cnt := pow(fanout, l+1)
		stride := leaves / cnt
		for i := 0; i < cnt; i++ {
			seps[levelBase[l]+i] = keys[(i+1)*stride-1]
		}
	}

	descend := func(b *isa.Builder, q isa.Reg, out isa.Reg, suffix string) {
		// idx = 0; per level: cnt = #(sep <= ... actually sep < q) among
		// the node's fanout separators; idx = idx*8 + cnt.
		idx := b.Reg()
		kreg := b.Reg()
		sep := b.Reg()
		cnt := b.Reg()
		one := b.Reg()
		saddr := b.Reg()
		pcmp := b.PredReg()
		b.Mov(isa.U32, idx, isa.Imm(0))
		for l := 0; l < levels; l++ {
			b.Mov(isa.U32, cnt, isa.Imm(0))
			// saddr = (levelBase[l] + idx*8)*4 + AddrIn0
			b.Shl(isa.U32, kreg, isa.R(idx), isa.Imm(3))
			b.IAdd(isa.U32, kreg, isa.R(kreg), isa.Imm(uint64(levelBase[l])))
			b.IMad(isa.U64, saddr, isa.R(kreg), isa.Imm(4), isa.Imm(AddrIn0))
			for k := 0; k < fanout; k++ {
				b.Ld(isa.Global, isa.U32, sep, isa.R(saddr))
				b.Setp(isa.LT, isa.U32, pcmp, isa.R(sep), isa.R(q))
				b.Selp(isa.U32, one, isa.Imm(1), isa.Imm(0), pcmp)
				b.IAdd(isa.U32, cnt, isa.R(cnt), isa.R(one))
				b.IAdd(isa.U64, saddr, isa.R(saddr), isa.Imm(4))
			}
			b.Shl(isa.U32, idx, isa.R(idx), isa.Imm(3))
			b.IAdd(isa.U32, idx, isa.R(idx), isa.R(cnt))
			// Guard against walking past the level (q above every key).
			b.IMin(isa.U32, idx, isa.R(idx), isa.Imm(uint64(pow(fanout, l+1)-1)))
		}
		b.Mov(isa.U32, out, isa.R(idx))
		_ = suffix
	}

	b := isa.NewBuilder(name)
	gtid := b.Reg()
	q := b.Reg()
	lo := b.Reg()
	addr := b.Reg()
	b.MovSpecial(gtid, isa.SRegGtid)
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrIn1))
	b.Ld(isa.Global, isa.U32, q, isa.R(addr))
	descend(b, q, lo, "lo")
	if rangeQuery {
		q2 := b.Reg()
		hi := b.Reg()
		b.IAdd(isa.U32, q2, isa.R(q), isa.Imm(64))
		descend(b, q2, hi, "hi")
		b.ISub(isa.U32, lo, isa.R(hi), isa.R(lo))
	}
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.U32, isa.R(addr), isa.R(lo))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	qs := make([]uint32, queries)
	maxKey := keys[len(keys)-1]
	for i := range qs {
		qs[i] = uint32(r.Intn(int(maxKey) + 10))
	}
	// Host oracle mirroring the descent.
	oracle := func(q uint32) uint32 {
		idx := 0
		for l := 0; l < levels; l++ {
			cnt := 0
			for k := 0; k < fanout; k++ {
				if seps[levelBase[l]+idx*fanout+k] < q {
					cnt++
				}
			}
			idx = idx*fanout + cnt
			if lim := pow(fanout, l+1) - 1; idx > lim {
				idx = lim
			}
		}
		return uint32(idx)
	}
	want := make([]uint32, queries)
	for i, q := range qs {
		if rangeQuery {
			want[i] = oracle(q+64) - oracle(q)
		} else {
			want[i] = oracle(q)
		}
	}

	return &Spec{
		Name:  name,
		Suite: "rodinia",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  queries / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			if err := m.WriteU32s(AddrIn0, seps); err != nil {
				return err
			}
			return m.WriteU32s(AddrIn1, qs)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectU32(m, AddrOut0, want, name)
		},
	}, nil
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

func fmt32err(what string, i int, v float32) error {
	return fmt.Errorf("kernels: %s[%d] = %g out of range", what, i, v)
}
