package kernels

import (
	"testing"

	"st2gpu/internal/core"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/isa"
)

func coreDPU() core.UnitKind { return core.DPU }

func runSpec(t *testing.T, spec *Spec, mode gpusim.AdderMode) *gpusim.RunStats {
	t.Helper()
	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 2
	cfg.AdderMode = mode
	d, err := gpusim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Setup != nil {
		if err := spec.Setup(d.Memory()); err != nil {
			t.Fatalf("%s setup: %v", spec.Name, err)
		}
	}
	rs, err := d.Launch(spec.Kernel)
	if err != nil {
		t.Fatalf("%s launch: %v", spec.Name, err)
	}
	if spec.Verify != nil {
		if err := spec.Verify(d.Memory()); err != nil {
			t.Fatalf("%s verify (%v adders): %v", spec.Name, mode, err)
		}
	}
	return rs
}

// Every workload in the suite builds, runs to completion, and verifies
// its outputs under both the baseline and the ST² adders — the ST²
// correctness guarantee, end to end through the full GPU model.
func TestSuiteCorrectBothModes(t *testing.T) {
	for _, w := range Suite() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			spec, err := w.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Name != w.Name || spec.Suite != w.Suite {
				t.Errorf("spec identity mismatch: %s/%s vs %s/%s",
					spec.Name, spec.Suite, w.Name, w.Suite)
			}
			if spec.Kernel.Program == nil {
				t.Fatal("no program")
			}
			base := runSpec(t, spec, gpusim.BaselineAdders)

			spec2, err := w.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			st2 := runSpec(t, spec2, gpusim.ST2Adders)

			if base.TotalThreadInstrs() != st2.TotalThreadInstrs() {
				t.Errorf("instruction counts differ: %d vs %d",
					base.TotalThreadInstrs(), st2.TotalThreadInstrs())
			}
			// ST² may come out a whisker faster through scheduling
			// anomalies (a stall can re-align barrier/memory timing);
			// anything beyond ±1% fast or +8% slow is a bug.
			slowdown := float64(st2.Cycles)/float64(base.Cycles) - 1
			if slowdown < -0.01 {
				t.Errorf("ST² implausibly faster than baseline: %d vs %d", st2.Cycles, base.Cycles)
			}
			if slowdown > 0.08 {
				t.Errorf("slowdown %.2f%% far beyond the paper's ≤3.5%%", slowdown*100)
			}
			if st2.MispredictionRate() > 0.45 {
				t.Errorf("misprediction rate %.3f implausibly high", st2.MispredictionRate())
			}
		})
	}
}

func TestSuiteHas23Kernels(t *testing.T) {
	if got := len(Suite()); got != 23 {
		t.Fatalf("suite has %d kernels, the paper evaluates 23", got)
	}
	seen := map[string]bool{}
	for _, w := range Suite() {
		if seen[w.Name] {
			t.Errorf("duplicate kernel %q", w.Name)
		}
		seen[w.Name] = true
		switch w.Suite {
		case "rodinia", "cuda-sdk", "parboil":
		default:
			t.Errorf("%s: unknown suite %q", w.Name, w.Suite)
		}
	}
	if len(Names()) != 23 {
		t.Error("Names() length wrong")
	}
	if got := SuiteNamesSorted(); len(got) != 3 {
		t.Errorf("suites = %v", got)
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("pathfinder")
	if err != nil || w.Name != "pathfinder" {
		t.Errorf("ByName: %v %v", w, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
}

// The Figure 1 premise: most kernels are arithmetically intense — in the
// paper, 21 of 23 exceed 20% ALU+FPU dynamic instructions. Check the
// suite-level shape (ALU.add + FPU.add + ALU.other + mul classes).
func TestArithmeticIntensityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite shape check")
	}
	intense := 0
	for _, w := range Suite() {
		spec, err := w.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		rs := runSpec(t, spec, gpusim.BaselineAdders)
		tot := float64(rs.TotalThreadInstrs())
		arith := float64(rs.ThreadInstrs[isa.FUAluAdd] + rs.ThreadInstrs[isa.FUFpAdd] +
			rs.ThreadInstrs[isa.FUAluOther] + rs.ThreadInstrs[isa.FUIntMul] +
			rs.ThreadInstrs[isa.FUFpMul])
		if arith/tot > 0.20 {
			intense++
		}
	}
	if intense < 18 {
		t.Errorf("only %d/23 kernels exceed 20%% arithmetic intensity; paper has 21/23", intense)
	}
}

func TestScaleGrowsWork(t *testing.T) {
	small, err := Pathfinder(1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Pathfinder(4)
	if err != nil {
		t.Fatal(err)
	}
	if big.Kernel.GridDim <= small.Kernel.GridDim {
		t.Error("scale should grow the grid")
	}
	if clampScale(0) != 1 || clampScale(100) != 64 || clampScale(5) != 5 {
		t.Error("clampScale wrong")
	}
}

func TestMicroSuite(t *testing.T) {
	if _, err := Micro(-1); err == nil {
		t.Error("negative index should error")
	}
	if _, err := Micro(NumMicro); err == nil {
		t.Error("overflow index should error")
	}
	seen := map[string]bool{}
	for i := 0; i < NumMicro; i++ {
		spec, err := Micro(i)
		if err != nil {
			t.Fatalf("micro %d: %v", i, err)
		}
		if seen[spec.Name] {
			t.Fatalf("duplicate micro name %s", spec.Name)
		}
		seen[spec.Name] = true
		if err := spec.Kernel.Program.Validate(); err != nil {
			t.Fatalf("micro %d invalid: %v", i, err)
		}
	}
	// Run a representative subset end to end.
	for i := 0; i < len(microFamilies); i++ {
		spec, err := Micro(i)
		if err != nil {
			t.Fatal(err)
		}
		rs := runSpec(t, spec, gpusim.ST2Adders)
		if rs.TotalThreadInstrs() == 0 {
			t.Errorf("micro %s executed nothing", spec.Name)
		}
	}
}

// Each micro family must actually stress its component: its dominant
// dynamic class should match the family intent.
func TestMicroFamiliesStressTheirComponent(t *testing.T) {
	wantDominant := map[string]isa.FUClass{
		"micro_ialu_add_2": isa.FUAluAdd,
		"micro_imul_2":     isa.FUIntMul,
		"micro_idiv_2":     isa.FUIntDiv,
		"micro_fadd_2":     isa.FUFpAdd,
		"micro_fmul_2":     isa.FUFpMul,
		"micro_fdiv_2":     isa.FUFpDiv,
		"micro_sfu_2":      isa.FUSfu,
	}
	for i := len(microFamilies); i < 2*len(microFamilies); i++ {
		spec, err := Micro(i)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := wantDominant[spec.Name]
		if !ok {
			continue
		}
		rs := runSpec(t, spec, gpusim.BaselineAdders)
		// The intended class should dominate all other non-control,
		// non-trivial classes except the loop overhead (ALU add + other).
		top := want
		var topCount uint64
		for cls, n := range rs.ThreadInstrs {
			if cls == isa.FUCtrl || cls == isa.FUAluOther || cls == isa.FUAluAdd || cls == isa.FUMem {
				continue
			}
			if n > topCount {
				top, topCount = cls, n
			}
		}
		if want == isa.FUAluAdd {
			// The add stressor is dominated by FUAluAdd including loop
			// overhead; just require a high absolute share.
			if frac := float64(rs.ThreadInstrs[isa.FUAluAdd]) / float64(rs.TotalThreadInstrs()); frac < 0.5 {
				t.Errorf("%s: ALU add share %.2f < 0.5", spec.Name, frac)
			}
			continue
		}
		if top != want {
			t.Errorf("%s: dominant class %v, want %v (%v)", spec.Name, top, want, rs.ThreadInstrs)
		}
	}
}

// Pathfinder is the paper's running example; pin its structure.
func TestPathfinderMatchesFigure2Shape(t *testing.T) {
	spec, err := Pathfinder(1)
	if err != nil {
		t.Fatal(err)
	}
	rs := runSpec(t, spec, gpusim.ST2Adders)
	aluAdd, _ := rs.AddFraction()
	if aluAdd < 0.15 {
		t.Errorf("pathfinder ALU-add fraction %.3f; the Figure 2 loop is add-dominated", aluAdd)
	}
	// The ST² speculation should do very well on its loop-structured adds.
	if rate := rs.MispredictionRate(); rate > 0.25 {
		t.Errorf("pathfinder misprediction rate %.3f unexpectedly high", rate)
	}
}

// The extra workloads (DPU-heavy n-body, SFU-heavy Black-Scholes, the
// barrier scan ladder) run correct under both adder modes, and n-body
// actually exercises the FP64 DPU units.
func TestExtrasCorrectBothModes(t *testing.T) {
	for _, w := range Extras() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			spec, err := w.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			runSpec(t, spec, gpusim.BaselineAdders)
			spec2, err := w.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			rs := runSpec(t, spec2, gpusim.ST2Adders)
			if w.Name == "nbody_fp64" {
				if rs.Units[coreDPU()].ThreadOps == 0 {
					t.Error("nbody should drive the DPU mantissa adders")
				}
			}
		})
	}
}
