package kernels

import (
	"testing"

	"st2gpu/internal/isa"
)

// Every kernel in the evaluation suite must survive the text round trip:
// Parse(prog.Text()) reproduces the exact instruction stream. This pins
// the assembler against the full breadth of real programs (guards,
// shared memory, atomics, unrolled networks, all operand kinds).
func TestSuiteTextRoundTrip(t *testing.T) {
	check := func(name string, orig *isa.Program) {
		t.Helper()
		got, err := isa.Parse(orig.Text())
		if err != nil {
			t.Fatalf("%s: re-parse failed: %v", name, err)
		}
		if got.Name != orig.Name || got.SharedBytes != orig.SharedBytes ||
			got.NumRegs != orig.NumRegs || got.NumPreds != orig.NumPreds {
			t.Fatalf("%s: header mismatch: %+v vs %+v", name,
				[4]any{got.Name, got.SharedBytes, got.NumRegs, got.NumPreds},
				[4]any{orig.Name, orig.SharedBytes, orig.NumRegs, orig.NumPreds})
		}
		if len(got.Instrs) != len(orig.Instrs) {
			t.Fatalf("%s: %d instrs vs %d", name, len(got.Instrs), len(orig.Instrs))
		}
		for i := range got.Instrs {
			a, b := got.Instrs[i], orig.Instrs[i]
			a.Label, b.Label = "", ""
			if a != b {
				t.Fatalf("%s @%d:\n got  %+v\n want %+v\n text: %s",
					name, i, a, b, orig.Instrs[i].Format(i))
			}
		}
	}
	for _, w := range Suite() {
		spec, err := w.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		check(w.Name, spec.Kernel.Program)
	}
	for i := 0; i < NumMicro; i += 7 {
		spec, err := Micro(i)
		if err != nil {
			t.Fatal(err)
		}
		check(spec.Name, spec.Kernel.Program)
	}
}
