package kernels

import (
	"fmt"
	"sort"

	"st2gpu/internal/gpusim"
	"st2gpu/internal/isa"
)

// The paper's workloads are *applications*: backprop runs layerforward
// then weight-adjust, mergesort runs a local sort followed by a ladder of
// merge passes, fastWalshTransform alternates shared-memory and global
// stages. This file provides the multi-kernel drivers: an Application is
// a sequence of launches against one device memory image, with a final
// whole-application verification. Running them exercises inter-kernel
// dataflow through device memory and the ST² units across consecutive
// launches.

// Launch is one kernel invocation within an application.
type Launch struct {
	Name   string
	Kernel *gpusim.Kernel
}

// Application is a multi-kernel workload.
type Application struct {
	Name     string
	Launches []Launch
	// Setup stages the application's initial memory image.
	Setup func(m *gpusim.Memory) error
	// Verify checks the final memory image.
	Verify func(m *gpusim.Memory) error
}

// Apps returns the multi-kernel application drivers.
func Apps() []struct {
	Name  string
	Build func(scale int) (*Application, error)
} {
	return []struct {
		Name  string
		Build func(scale int) (*Application, error)
	}{
		{"mergesort", MergesortApp},
		{"fwt", WalshApp},
		{"bitonic", BitonicApp},
		{"backprop", BackpropApp},
	}
}

// Run executes the application on a fresh device and returns the
// per-launch statistics.
func (a *Application) Run(cfg gpusim.Config) ([]*gpusim.RunStats, error) {
	d, err := gpusim.New(cfg)
	if err != nil {
		return nil, err
	}
	if a.Setup != nil {
		if err := a.Setup(d.Memory()); err != nil {
			return nil, fmt.Errorf("kernels: %s setup: %w", a.Name, err)
		}
	}
	out := make([]*gpusim.RunStats, 0, len(a.Launches))
	for _, l := range a.Launches {
		rs, err := d.Launch(l.Kernel)
		if err != nil {
			return nil, fmt.Errorf("kernels: %s/%s: %w", a.Name, l.Name, err)
		}
		out = append(out, rs)
	}
	if a.Verify != nil {
		if err := a.Verify(d.Memory()); err != nil {
			return nil, fmt.Errorf("kernels: %s verify: %w", a.Name, err)
		}
	}
	return out, nil
}

// mergePassKernel builds one global merge pass: each thread merges two
// adjacent sorted runs of length `run` from src to dst.
func mergePassKernel(name string, run int, src, dst uint64) (*isa.Program, error) {
	b := isa.NewBuilder(name)
	gtid := b.Reg()
	ai := b.Reg()
	bi := b.Reg()
	av := b.Reg()
	bv := b.Reg()
	oaddr := b.Reg()
	aaddr := b.Reg()
	baddr := b.Reg()
	k := b.Reg()
	sel := b.Reg()
	t := b.Reg()
	t2 := b.Reg()
	p := b.PredReg()
	pa := b.PredReg()
	pb := b.PredReg()
	pTake := b.PredReg()

	b.MovSpecial(gtid, isa.SRegGtid)
	b.IMul(isa.U32, k, isa.R(gtid), isa.Imm(uint64(run*2)))
	b.IMad(isa.U64, aaddr, isa.R(k), isa.Imm(4), isa.Imm(src))
	b.IAdd(isa.U64, baddr, isa.R(aaddr), isa.Imm(uint64(run*4)))
	b.IMad(isa.U64, oaddr, isa.R(k), isa.Imm(4), isa.Imm(dst))
	b.Mov(isa.U32, ai, isa.Imm(0))
	b.Mov(isa.U32, bi, isa.Imm(0))
	b.Mov(isa.U32, k, isa.Imm(0))
	b.Label("merge")
	b.Setp(isa.LT, isa.U32, pa, isa.R(ai), isa.Imm(uint64(run)))
	b.Setp(isa.LT, isa.U32, pb, isa.R(bi), isa.Imm(uint64(run)))
	b.Ld(isa.Global, isa.U32, av, isa.R(aaddr)).Guarded(pa, false)
	b.Ld(isa.Global, isa.U32, bv, isa.R(baddr)).Guarded(pb, false)
	b.Selp(isa.U32, sel, isa.Imm(1), isa.Imm(0), pa)
	b.Setp(isa.LE, isa.U32, pTake, isa.R(av), isa.R(bv))
	b.Selp(isa.U32, t, isa.Imm(1), isa.Imm(0), pTake)
	b.Selp(isa.U32, t2, isa.R(t), isa.Imm(1), pb)
	b.And(isa.U32, sel, isa.R(sel), isa.R(t2))
	b.Setp(isa.NE, isa.U32, pTake, isa.R(sel), isa.Imm(0))
	b.Selp(isa.U32, t, isa.R(av), isa.R(bv), pTake)
	b.St(isa.Global, isa.U32, isa.R(oaddr), isa.R(t))
	b.IAdd(isa.U64, oaddr, isa.R(oaddr), isa.Imm(4))
	b.IAdd(isa.U32, ai, isa.R(ai), isa.Imm(1)).Guarded(pTake, false)
	b.IAdd(isa.U64, aaddr, isa.R(aaddr), isa.Imm(4)).Guarded(pTake, false)
	b.IAdd(isa.U32, bi, isa.R(bi), isa.Imm(1)).Guarded(pTake, true)
	b.IAdd(isa.U64, baddr, isa.R(baddr), isa.Imm(4)).Guarded(pTake, true)
	b.IAdd(isa.U32, k, isa.R(k), isa.Imm(1))
	b.Setp(isa.LT, isa.U32, p, isa.R(k), isa.Imm(uint64(run*2)))
	b.BraTo("merge", p, false)
	b.Exit()
	return b.Build()
}

// MergesortApp sorts a full array: msort_K1-style local tile sort, then
// log2(n/tile) global merge passes ping-ponging between two buffers.
func MergesortApp(scale int) (*Application, error) {
	scale = clampScale(scale)
	const tile = 128
	n := tile * 16 * scale

	// Local sort (the suite's odd-even kernel shape) writing src → bufA.
	lb := isa.NewBuilder("msort_local")
	sh := lb.Shared(tile * 4)
	tid := lb.Reg()
	gtid := lb.Reg()
	v := lb.Reg()
	a0 := lb.Reg()
	a1 := lb.Reg()
	lo := lb.Reg()
	hi := lb.Reg()
	addr := lb.Reg()
	addr1 := lb.Reg()
	idx := lb.Reg()
	pAct := lb.PredReg()
	lb.MovSpecial(tid, isa.SRegTid)
	lb.MovSpecial(gtid, isa.SRegGtid)
	lb.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrIn0))
	lb.Ld(isa.Global, isa.U32, v, isa.R(addr))
	lb.IMad(isa.U64, addr, isa.R(tid), isa.Imm(4), isa.Imm(sh))
	lb.St(isa.Shared, isa.U32, isa.R(addr), isa.R(v))
	lb.Bar()
	for phase := 0; phase < tile; phase++ {
		lb.Shl(isa.U32, idx, isa.R(tid), isa.Imm(1))
		if phase%2 == 1 {
			lb.IAdd(isa.U32, idx, isa.R(idx), isa.Imm(1))
		}
		lb.Setp(isa.LT, isa.U32, pAct, isa.R(idx), isa.Imm(tile-1))
		lb.IMad(isa.U64, addr, isa.R(idx), isa.Imm(4), isa.Imm(sh))
		lb.IAdd(isa.U64, addr1, isa.R(addr), isa.Imm(4))
		lb.Ld(isa.Shared, isa.U32, a0, isa.R(addr)).Guarded(pAct, false)
		lb.Ld(isa.Shared, isa.U32, a1, isa.R(addr1)).Guarded(pAct, false)
		lb.IMin(isa.U32, lo, isa.R(a0), isa.R(a1)).Guarded(pAct, false)
		lb.IMax(isa.U32, hi, isa.R(a0), isa.R(a1)).Guarded(pAct, false)
		lb.St(isa.Shared, isa.U32, isa.R(addr), isa.R(lo)).Guarded(pAct, false)
		lb.St(isa.Shared, isa.U32, isa.R(addr1), isa.R(hi)).Guarded(pAct, false)
		lb.Bar()
	}
	lb.IMad(isa.U64, addr, isa.R(tid), isa.Imm(4), isa.Imm(sh))
	lb.Ld(isa.Shared, isa.U32, v, isa.R(addr))
	lb.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrOut0))
	lb.St(isa.Global, isa.U32, isa.R(addr), isa.R(v))
	lb.Exit()
	localProg, err := lb.Build()
	if err != nil {
		return nil, err
	}

	app := &Application{Name: "mergesort"}
	app.Launches = append(app.Launches, Launch{
		Name: "local_sort",
		Kernel: &gpusim.Kernel{
			Program:  localProg,
			GridDim:  n / tile,
			BlockDim: tile,
		},
	})

	// Merge ladder: bufA (AddrOut0) ↔ bufB (AddrOut1).
	src, dst := AddrOut0, AddrOut1
	finalAddr := src
	for run := tile; run < n; run *= 2 {
		pairs := n / (run * 2)
		block := pairs
		if block > 128 {
			block = 128
		}
		prog, err := mergePassKernel(fmt.Sprintf("merge_%d", run), run, src, dst)
		if err != nil {
			return nil, err
		}
		app.Launches = append(app.Launches, Launch{
			Name: prog.Name,
			Kernel: &gpusim.Kernel{
				Program:  prog,
				GridDim:  (pairs + block - 1) / block,
				BlockDim: block,
			},
		})
		finalAddr = dst
		src, dst = dst, src
	}

	r := rng(40)
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(r.Intn(1 << 24))
	}
	want := make([]uint32, n)
	copy(want, in)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	app.Setup = func(m *gpusim.Memory) error { return m.WriteU32s(AddrIn0, in) }
	app.Verify = func(m *gpusim.Memory) error {
		return expectU32(m, finalAddr, want, "mergesort result")
	}
	return app, nil
}

// WalshApp computes a complete Walsh–Hadamard transform: the
// shared-memory kernel handles intra-tile strides, then global butterfly
// passes cover the cross-tile strides.
func WalshApp(scale int) (*Application, error) {
	scale = clampScale(scale)
	const tile = 256
	n := tile * 4 * scale
	// Round n to a power of two for a clean full transform.
	pow2 := 1
	for pow2 < n {
		pow2 *= 2
	}
	n = pow2

	app := &Application{Name: "fwt"}

	// Stage 1: local tiles (strides 1..tile/2), in place on AddrIn0.
	lb := isa.NewBuilder("fwt_local")
	sh := lb.Shared(tile * 4)
	tid := lb.Reg()
	gbase := lb.Reg()
	va := lb.Reg()
	vb := lb.Reg()
	sum := lb.Reg()
	diff := lb.Reg()
	stride := lb.Reg()
	strideM1 := lb.Reg()
	logStride := lb.Reg()
	pos := lb.Reg()
	lofs := lb.Reg()
	t0 := lb.Reg()
	addrA := lb.Reg()
	addrB := lb.Reg()
	p := lb.PredReg()
	pHalf := lb.PredReg()
	lb.MovSpecial(tid, isa.SRegTid)
	lb.MovSpecial(gbase, isa.SRegGtid)
	lb.IMad(isa.U64, addrA, isa.R(gbase), isa.Imm(4), isa.Imm(AddrIn0))
	lb.Ld(isa.Global, isa.F32, va, isa.R(addrA))
	lb.IMad(isa.U64, addrA, isa.R(tid), isa.Imm(4), isa.Imm(sh))
	lb.St(isa.Shared, isa.F32, isa.R(addrA), isa.R(va))
	lb.Bar()
	lb.Setp(isa.LT, isa.U32, pHalf, isa.R(tid), isa.Imm(tile/2))
	lb.Mov(isa.U32, stride, isa.Imm(1))
	lb.Mov(isa.U32, strideM1, isa.Imm(0))
	lb.Mov(isa.U32, logStride, isa.Imm(0))
	lb.Label("stage")
	lb.Shr(isa.U32, t0, isa.R(tid), isa.R(logStride))
	lb.Shl(isa.U32, pos, isa.R(t0), isa.R(logStride))
	lb.Shl(isa.U32, pos, isa.R(pos), isa.Imm(1))
	lb.And(isa.U32, lofs, isa.R(tid), isa.R(strideM1))
	lb.IAdd(isa.U32, pos, isa.R(pos), isa.R(lofs))
	lb.IMad(isa.U64, addrA, isa.R(pos), isa.Imm(4), isa.Imm(sh))
	lb.IMad(isa.U64, addrB, isa.R(stride), isa.Imm(4), isa.R(addrA))
	lb.Ld(isa.Shared, isa.F32, va, isa.R(addrA)).Guarded(pHalf, false)
	lb.Ld(isa.Shared, isa.F32, vb, isa.R(addrB)).Guarded(pHalf, false)
	lb.FAdd(isa.F32, sum, isa.R(va), isa.R(vb)).Guarded(pHalf, false)
	lb.FSub(isa.F32, diff, isa.R(va), isa.R(vb)).Guarded(pHalf, false)
	lb.St(isa.Shared, isa.F32, isa.R(addrA), isa.R(sum)).Guarded(pHalf, false)
	lb.St(isa.Shared, isa.F32, isa.R(addrB), isa.R(diff)).Guarded(pHalf, false)
	lb.Bar()
	lb.Shl(isa.U32, strideM1, isa.R(strideM1), isa.Imm(1))
	lb.Or(isa.U32, strideM1, isa.R(strideM1), isa.Imm(1))
	lb.Shl(isa.U32, stride, isa.R(stride), isa.Imm(1))
	lb.IAdd(isa.U32, logStride, isa.R(logStride), isa.Imm(1))
	lb.Setp(isa.LT, isa.U32, p, isa.R(stride), isa.Imm(tile))
	lb.BraTo("stage", p, false)
	lb.IMad(isa.U64, addrA, isa.R(tid), isa.Imm(4), isa.Imm(sh))
	lb.Ld(isa.Shared, isa.F32, va, isa.R(addrA))
	lb.IMad(isa.U64, addrA, isa.R(gbase), isa.Imm(4), isa.Imm(AddrIn0))
	lb.St(isa.Global, isa.F32, isa.R(addrA), isa.R(va))
	lb.Exit()
	localProg, err := lb.Build()
	if err != nil {
		return nil, err
	}
	app.Launches = append(app.Launches, Launch{
		Name:   "fwt_local",
		Kernel: &gpusim.Kernel{Program: localProg, GridDim: n / tile, BlockDim: tile},
	})

	// Stage 2: global butterflies for strides tile..n/2, in place.
	for stride := tile; stride < n; stride *= 2 {
		gb := isa.NewBuilder(fmt.Sprintf("fwt_global_%d", stride))
		gtid := gb.Reg()
		pos := gb.Reg()
		t := gb.Reg()
		a := gb.Reg()
		c := gb.Reg()
		s := gb.Reg()
		d := gb.Reg()
		aa := gb.Reg()
		ab := gb.Reg()
		gb.MovSpecial(gtid, isa.SRegGtid)
		// pos = 2·stride·(gtid/stride) + gtid%stride, via shifts.
		log := 0
		for 1<<log < stride {
			log++
		}
		gb.Shr(isa.U32, t, isa.R(gtid), isa.Imm(uint64(log)))
		gb.Shl(isa.U32, pos, isa.R(t), isa.Imm(uint64(log+1)))
		gb.And(isa.U32, t, isa.R(gtid), isa.Imm(uint64(stride-1)))
		gb.IAdd(isa.U32, pos, isa.R(pos), isa.R(t))
		gb.IMad(isa.U64, aa, isa.R(pos), isa.Imm(4), isa.Imm(AddrIn0))
		gb.IAdd(isa.U64, ab, isa.R(aa), isa.Imm(uint64(stride*4)))
		gb.Ld(isa.Global, isa.F32, a, isa.R(aa))
		gb.Ld(isa.Global, isa.F32, c, isa.R(ab))
		gb.FAdd(isa.F32, s, isa.R(a), isa.R(c))
		gb.FSub(isa.F32, d, isa.R(a), isa.R(c))
		gb.St(isa.Global, isa.F32, isa.R(aa), isa.R(s))
		gb.St(isa.Global, isa.F32, isa.R(ab), isa.R(d))
		gb.Exit()
		prog, err := gb.Build()
		if err != nil {
			return nil, err
		}
		app.Launches = append(app.Launches, Launch{
			Name:   prog.Name,
			Kernel: &gpusim.Kernel{Program: prog, GridDim: n / 2 / 256, BlockDim: 256},
		})
	}

	r := rng(41)
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(r.NormFloat64())
	}
	want := make([]float32, n)
	copy(want, in)
	for stride := 1; stride < n; stride *= 2 {
		for i := 0; i < n/2; i++ {
			pos := 2*stride*(i/stride) + i%stride
			a, c := want[pos], want[pos+stride]
			want[pos], want[pos+stride] = a+c, a-c
		}
	}

	app.Setup = func(m *gpusim.Memory) error { return m.WriteF32s(AddrIn0, in) }
	app.Verify = func(m *gpusim.Memory) error {
		return expectF32(m, AddrIn0, want, "full FWT")
	}
	return app, nil
}

// BitonicApp sorts a power-of-two array with the full bitonic network:
// the local kernel handles k ≤ tile; every larger (k, j) pair is a global
// compare-exchange pass.
func BitonicApp(scale int) (*Application, error) {
	scale = clampScale(scale)
	n := 2048 * scale
	pow2 := 1
	for pow2 < n {
		pow2 *= 2
	}
	n = pow2
	const block = 256

	app := &Application{Name: "bitonic"}
	pass := func(k, j int) error {
		gb := isa.NewBuilder(fmt.Sprintf("bitonic_k%d_j%d", k, j))
		gtid := gb.Reg()
		partner := gb.Reg()
		mine := gb.Reg()
		other := gb.Reg()
		dir := gb.Reg()
		lo := gb.Reg()
		hi := gb.Reg()
		addr := gb.Reg()
		paddr := gb.Reg()
		t := gb.Reg()
		pAct := gb.PredReg()
		pDir := gb.PredReg()
		gb.MovSpecial(gtid, isa.SRegGtid)
		gb.Xor(isa.U32, partner, isa.R(gtid), isa.Imm(uint64(j)))
		gb.Setp(isa.GT, isa.U32, pAct, isa.R(partner), isa.R(gtid))
		gb.And(isa.U32, dir, isa.R(gtid), isa.Imm(uint64(k)))
		gb.Setp(isa.EQ, isa.U32, pDir, isa.R(dir), isa.Imm(0))
		gb.Shl(isa.U64, t, isa.R(gtid), isa.Imm(2))
		gb.IAdd(isa.U64, addr, isa.R(t), isa.Imm(AddrIn0))
		gb.Shl(isa.U64, t, isa.R(partner), isa.Imm(2))
		gb.IAdd(isa.U64, paddr, isa.R(t), isa.Imm(AddrIn0))
		gb.Ld(isa.Global, isa.U32, mine, isa.R(addr)).Guarded(pAct, false)
		gb.Ld(isa.Global, isa.U32, other, isa.R(paddr)).Guarded(pAct, false)
		gb.IMin(isa.U32, lo, isa.R(mine), isa.R(other)).Guarded(pAct, false)
		gb.IMax(isa.U32, hi, isa.R(mine), isa.R(other)).Guarded(pAct, false)
		gb.Selp(isa.U32, t, isa.R(lo), isa.R(hi), pDir)
		gb.St(isa.Global, isa.U32, isa.R(addr), isa.R(t)).Guarded(pAct, false)
		gb.Selp(isa.U32, t, isa.R(hi), isa.R(lo), pDir)
		gb.St(isa.Global, isa.U32, isa.R(paddr), isa.R(t)).Guarded(pAct, false)
		gb.Exit()
		prog, err := gb.Build()
		if err != nil {
			return err
		}
		app.Launches = append(app.Launches, Launch{
			Name:   prog.Name,
			Kernel: &gpusim.Kernel{Program: prog, GridDim: n / block, BlockDim: block},
		})
		return nil
	}
	for k := 2; k <= n; k *= 2 {
		for j := k / 2; j >= 1; j /= 2 {
			if err := pass(k, j); err != nil {
				return nil, err
			}
		}
	}

	r := rng(42)
	in := make([]uint32, n)
	for i := range in {
		in[i] = r.Uint32() >> 4
	}
	want := make([]uint32, n)
	copy(want, in)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	app.Setup = func(m *gpusim.Memory) error { return m.WriteU32s(AddrIn0, in) }
	app.Verify = func(m *gpusim.Memory) error {
		return expectU32(m, AddrIn0, want, "bitonic result")
	}
	return app, nil
}

// BackpropApp chains the two backprop kernels the way the Rodinia
// application does: layerforward (K1) produces hidden activations that
// the host-side delta computation feeds into weight adjustment (K2).
func BackpropApp(scale int) (*Application, error) {
	k1, err := BpropK1(scale)
	if err != nil {
		return nil, err
	}
	k2, err := BpropK2(scale)
	if err != nil {
		return nil, err
	}
	app := &Application{
		Name: "backprop",
		Launches: []Launch{
			{Name: "layerforward", Kernel: k1.Kernel},
			{Name: "adjust_weights", Kernel: k2.Kernel},
		},
		// Staging order matters: the kernels share the input regions, so
		// K2's (smaller) arrays are staged last and stay intact for its
		// verification. K1's forward pass then runs on a partially
		// overwritten image — a realistic instruction stream whose values
		// are not separately checked here (K1 is verified standalone in
		// the suite).
		Setup: func(m *gpusim.Memory) error {
			if err := k1.Setup(m); err != nil {
				return err
			}
			return k2.Setup(m)
		},
		// K2 runs last and overwrites AddrOut0, so its invariants are the
		// application's checkable final state.
		Verify: k2.Verify,
	}
	return app, nil
}
