package kernels

import (
	"sort"

	"st2gpu/internal/gpusim"
	"st2gpu/internal/isa"
)

// Binomial is BinomialOptions: one block per option prices it on an
// additive binomial lattice — payoff initialization followed by backward
// induction v[i] = pu·v[i+1] + pd·v[i] with a barrier per step. The FMA
// accumulation over slowly-shrinking live thread sets is the paper's
// archetype of correlated FP adds.
func Binomial(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const steps = 128 // lattice nodes = threads per block
	options := 4 * scale

	b := isa.NewBuilder("binomial")
	sh := b.Shared(steps * 4)
	tid := b.Reg()
	opt := b.Reg()
	s0 := b.Reg()
	strike := b.Reg()
	v := b.Reg()
	vn := b.Reg()
	t := b.Reg()
	addr := b.Reg()
	saddr := b.Reg()
	step := b.Reg()
	p := b.PredReg()
	pLive := b.PredReg()

	b.MovSpecial(tid, isa.SRegTid)
	b.MovSpecial(opt, isa.SRegCtaid)
	// s0, strike from the option table: AddrIn0[opt*2], [opt*2+1].
	b.Shl(isa.U32, t, isa.R(opt), isa.Imm(3))
	b.IAdd(isa.U64, addr, isa.R(t), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.F32, s0, isa.R(addr))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(4))
	b.Ld(isa.Global, isa.F32, strike, isa.R(addr))
	// payoff: v = max(s0 + tid·dS − strike, 0), dS = 0.5
	b.Cvt(isa.F32, v, isa.R(tid), isa.U32)
	b.FFma(isa.F32, v, isa.R(v), isa.ImmF32(0.5), isa.R(s0))
	b.FSub(isa.F32, v, isa.R(v), isa.R(strike))
	b.FMax(isa.F32, v, isa.R(v), isa.ImmF32(0))
	b.IMad(isa.U64, saddr, isa.R(tid), isa.Imm(4), isa.Imm(sh))
	b.St(isa.Shared, isa.F32, isa.R(saddr), isa.R(v))
	b.Bar()
	// Backward induction: step = steps-1 .. 1; threads tid < step update.
	b.Mov(isa.U32, step, isa.Imm(steps-1))
	b.Label("induct")
	b.Setp(isa.LT, isa.U32, pLive, isa.R(tid), isa.R(step))
	// vn = shared[tid+1]; v = shared[tid]; v = pu·vn + pd·v
	b.IAdd(isa.U64, addr, isa.R(saddr), isa.Imm(4))
	b.Ld(isa.Shared, isa.F32, vn, isa.R(addr)).Guarded(pLive, false)
	b.Ld(isa.Shared, isa.F32, v, isa.R(saddr)).Guarded(pLive, false)
	b.FMul(isa.F32, t, isa.R(vn), isa.ImmF32(0.515)).Guarded(pLive, false)
	b.FFma(isa.F32, v, isa.R(v), isa.ImmF32(0.480), isa.R(t)).Guarded(pLive, false)
	b.Bar()
	b.St(isa.Shared, isa.F32, isa.R(saddr), isa.R(v)).Guarded(pLive, false)
	b.Bar()
	b.ISub(isa.U32, step, isa.R(step), isa.Imm(1))
	b.Setp(isa.GT, isa.U32, p, isa.R(step), isa.Imm(0))
	b.BraTo("induct", p, false)
	// Thread 0 stores the option value.
	b.Setp(isa.EQ, isa.U32, p, isa.R(tid), isa.Imm(0))
	b.IMad(isa.U64, addr, isa.R(opt), isa.Imm(4), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.F32, isa.R(addr), isa.R(v)).Guarded(p, false)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(10)
	table := make([]float32, options*2)
	for o := 0; o < options; o++ {
		table[o*2] = float32(20 + 60*r.Float64())   // spot
		table[o*2+1] = float32(30 + 50*r.Float64()) // strike
	}
	want := make([]float32, options)
	for o := 0; o < options; o++ {
		vals := make([]float32, steps)
		for i := 0; i < steps; i++ {
			v := fmaf(float32(i), 0.5, table[o*2])
			v -= table[o*2+1]
			if v < 0 {
				v = 0
			}
			vals[i] = v
		}
		for step := steps - 1; step >= 1; step-- {
			for i := 0; i < step; i++ {
				vals[i] = fmaf(vals[i], 0.480, vals[i+1]*0.515)
			}
		}
		want[o] = vals[0]
	}

	return &Spec{
		Name:  "binomial",
		Suite: "cuda-sdk",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  options,
			BlockDim: steps,
		},
		Setup: func(m *gpusim.Memory) error {
			return m.WriteF32s(AddrIn0, table)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectF32Near(m, AddrOut0, want, 1e-4, "binomial value")
		},
	}, nil
}

// WalshK1 is fastWalshTransform's shared-memory kernel: log2(block)
// butterfly stages, each computing (a+b, a−b) — the purest FADD/FSUB
// workload in the suite.
func WalshK1(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const block = 256
	n := block * 4 * scale

	b := isa.NewBuilder("walsh_K1")
	sh := b.Shared(block * 4)
	tid := b.Reg()
	gbase := b.Reg()
	va := b.Reg()
	vb := b.Reg()
	sum := b.Reg()
	diff := b.Reg()
	stride := b.Reg()
	strideM1 := b.Reg()
	logStride := b.Reg()
	pos := b.Reg()
	lofs := b.Reg()
	t0 := b.Reg()
	addrA := b.Reg()
	addrB := b.Reg()
	p := b.PredReg()
	pHalf := b.PredReg()

	b.MovSpecial(tid, isa.SRegTid)
	b.MovSpecial(gbase, isa.SRegGtid)
	// Load shared[tid] = in[gtid].
	b.IMad(isa.U64, addrA, isa.R(gbase), isa.Imm(4), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.F32, va, isa.R(addrA))
	b.IMad(isa.U64, addrA, isa.R(tid), isa.Imm(4), isa.Imm(sh))
	b.St(isa.Shared, isa.F32, isa.R(addrA), isa.R(va))
	b.Bar()
	// Butterfly stages: stride = 1,2,...,block/2. Threads tid<block/2 act.
	b.Setp(isa.LT, isa.U32, pHalf, isa.R(tid), isa.Imm(block/2))
	b.Mov(isa.U32, stride, isa.Imm(1))
	b.Mov(isa.U32, strideM1, isa.Imm(0))
	b.Mov(isa.U32, logStride, isa.Imm(0))
	b.Label("stage")
	// pos = ((tid >> log) << (log+1)) | (tid & (stride-1)) — the
	// original's bit arithmetic.
	b.Shr(isa.U32, t0, isa.R(tid), isa.R(logStride))
	b.Shl(isa.U32, pos, isa.R(t0), isa.R(logStride))
	b.Shl(isa.U32, pos, isa.R(pos), isa.Imm(1))
	b.And(isa.U32, lofs, isa.R(tid), isa.R(strideM1))
	b.IAdd(isa.U32, pos, isa.R(pos), isa.R(lofs))
	b.IMad(isa.U64, addrA, isa.R(pos), isa.Imm(4), isa.Imm(sh))
	b.IMad(isa.U64, addrB, isa.R(stride), isa.Imm(4), isa.R(addrA))
	b.Ld(isa.Shared, isa.F32, va, isa.R(addrA)).Guarded(pHalf, false)
	b.Ld(isa.Shared, isa.F32, vb, isa.R(addrB)).Guarded(pHalf, false)
	b.FAdd(isa.F32, sum, isa.R(va), isa.R(vb)).Guarded(pHalf, false)
	b.FSub(isa.F32, diff, isa.R(va), isa.R(vb)).Guarded(pHalf, false)
	b.St(isa.Shared, isa.F32, isa.R(addrA), isa.R(sum)).Guarded(pHalf, false)
	b.St(isa.Shared, isa.F32, isa.R(addrB), isa.R(diff)).Guarded(pHalf, false)
	b.Bar()
	b.Shl(isa.U32, strideM1, isa.R(strideM1), isa.Imm(1))
	b.Or(isa.U32, strideM1, isa.R(strideM1), isa.Imm(1))
	b.Shl(isa.U32, stride, isa.R(stride), isa.Imm(1))
	b.IAdd(isa.U32, logStride, isa.R(logStride), isa.Imm(1))
	b.Setp(isa.LT, isa.U32, p, isa.R(stride), isa.Imm(block))
	b.BraTo("stage", p, false)
	// Store back.
	b.IMad(isa.U64, addrA, isa.R(tid), isa.Imm(4), isa.Imm(sh))
	b.Ld(isa.Shared, isa.F32, va, isa.R(addrA))
	b.IMad(isa.U64, addrA, isa.R(gbase), isa.Imm(4), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.F32, isa.R(addrA), isa.R(va))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(11)
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(r.NormFloat64() * 4)
	}
	want := make([]float32, n)
	copy(want, in)
	for blk := 0; blk < n/block; blk++ {
		seg := want[blk*block : (blk+1)*block]
		for stride := 1; stride < block; stride *= 2 {
			for tid := 0; tid < block/2; tid++ {
				pos := 2*stride*(tid/stride) + tid%stride
				a, c := seg[pos], seg[pos+stride]
				seg[pos], seg[pos+stride] = a+c, a-c
			}
		}
	}

	return &Spec{
		Name:  "walsh_K1",
		Suite: "cuda-sdk",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  n / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			return m.WriteF32s(AddrIn0, in)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectF32(m, AddrOut0, want, "walsh K1")
		},
	}, nil
}

// WalshK2 is fastWalshTransform's global-stride kernel: one butterfly
// with a stride spanning blocks, straight from and to global memory.
func WalshK2(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const block = 256
	n := block * 8 * scale
	stride := n / 2

	b := isa.NewBuilder("walsh_K2")
	gtid := b.Reg()
	va := b.Reg()
	vb := b.Reg()
	addrA := b.Reg()
	addrB := b.Reg()
	sum := b.Reg()
	diff := b.Reg()

	b.MovSpecial(gtid, isa.SRegGtid)
	b.IMad(isa.U64, addrA, isa.R(gtid), isa.Imm(4), isa.Imm(AddrIn0))
	b.IAdd(isa.U64, addrB, isa.R(addrA), isa.Imm(uint64(stride)*4))
	b.Ld(isa.Global, isa.F32, va, isa.R(addrA))
	b.Ld(isa.Global, isa.F32, vb, isa.R(addrB))
	b.FAdd(isa.F32, sum, isa.R(va), isa.R(vb))
	b.FSub(isa.F32, diff, isa.R(va), isa.R(vb))
	b.IMad(isa.U64, addrA, isa.R(gtid), isa.Imm(4), isa.Imm(AddrOut0))
	b.IAdd(isa.U64, addrB, isa.R(addrA), isa.Imm(uint64(stride)*4))
	b.St(isa.Global, isa.F32, isa.R(addrA), isa.R(sum))
	b.St(isa.Global, isa.F32, isa.R(addrB), isa.R(diff))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(12)
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(r.NormFloat64() * 4)
	}
	want := make([]float32, n)
	for i := 0; i < stride; i++ {
		want[i] = in[i] + in[i+stride]
		want[i+stride] = in[i] - in[i+stride]
	}

	return &Spec{
		Name:  "walsh_K2",
		Suite: "cuda-sdk",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  stride / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			return m.WriteF32s(AddrIn0, in)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectF32(m, AddrOut0, want, "walsh K2")
		},
	}, nil
}

// Dct8x8K1 is the dct8x8 row-pass kernel: one thread per 8-pixel row
// computes the AAN butterfly (adds/subs) with four constant multiplies.
func Dct8x8K1(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const block = 128
	rowsN := block * 2 * scale
	n := rowsN * 8

	b := isa.NewBuilder("dct8x8_K1")
	gtid := b.Reg()
	addr := b.Reg()
	x := b.Regs(8)
	s := b.Regs(8)
	o := b.Regs(8)

	b.MovSpecial(gtid, isa.SRegGtid)
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(32), isa.Imm(AddrIn0))
	for i := 0; i < 8; i++ {
		b.Ld(isa.Global, isa.F32, x[i], isa.R(addr))
		if i < 7 {
			b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(4))
		}
	}
	// Stage 1 butterflies.
	b.FAdd(isa.F32, s[0], isa.R(x[0]), isa.R(x[7]))
	b.FSub(isa.F32, s[7], isa.R(x[0]), isa.R(x[7]))
	b.FAdd(isa.F32, s[1], isa.R(x[1]), isa.R(x[6]))
	b.FSub(isa.F32, s[6], isa.R(x[1]), isa.R(x[6]))
	b.FAdd(isa.F32, s[2], isa.R(x[2]), isa.R(x[5]))
	b.FSub(isa.F32, s[5], isa.R(x[2]), isa.R(x[5]))
	b.FAdd(isa.F32, s[3], isa.R(x[3]), isa.R(x[4]))
	b.FSub(isa.F32, s[4], isa.R(x[3]), isa.R(x[4]))
	// Stage 2 (even part).
	b.FAdd(isa.F32, o[0], isa.R(s[0]), isa.R(s[3]))
	b.FSub(isa.F32, o[3], isa.R(s[0]), isa.R(s[3]))
	b.FAdd(isa.F32, o[1], isa.R(s[1]), isa.R(s[2]))
	b.FSub(isa.F32, o[2], isa.R(s[1]), isa.R(s[2]))
	// DC & mid coefficients.
	b.FAdd(isa.F32, x[0], isa.R(o[0]), isa.R(o[1]))
	b.FSub(isa.F32, x[4], isa.R(o[0]), isa.R(o[1]))
	b.FMul(isa.F32, o[2], isa.R(o[2]), isa.ImmF32(0.5411961))
	b.FFma(isa.F32, x[2], isa.R(o[3]), isa.ImmF32(1.3065630), isa.R(o[2]))
	b.FMul(isa.F32, o[3], isa.R(o[3]), isa.ImmF32(0.5411961))
	b.FFma(isa.F32, x[6], isa.R(o[2]), isa.ImmF32(-1.0), isa.R(o[3]))
	// Odd part (simplified rotation chain).
	b.FAdd(isa.F32, o[4], isa.R(s[4]), isa.R(s[5]))
	b.FAdd(isa.F32, o[5], isa.R(s[5]), isa.R(s[6]))
	b.FAdd(isa.F32, o[6], isa.R(s[6]), isa.R(s[7]))
	b.FMul(isa.F32, x[1], isa.R(o[4]), isa.ImmF32(0.7071068))
	b.FFma(isa.F32, x[3], isa.R(o[5]), isa.ImmF32(0.9238795), isa.R(s[7]))
	b.FMul(isa.F32, x[5], isa.R(o[6]), isa.ImmF32(0.3826834))
	b.FSub(isa.F32, x[7], isa.R(s[7]), isa.R(o[5]))
	// Store 8 coefficients.
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(32), isa.Imm(AddrOut0))
	for i := 0; i < 8; i++ {
		b.St(isa.Global, isa.F32, isa.R(addr), isa.R(x[i]))
		if i < 7 {
			b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(4))
		}
	}
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(13)
	img := make([]float32, n)
	for i := range img {
		img[i] = float32(r.Intn(256)) - 128
	}
	want := make([]float32, n)
	for row := 0; row < rowsN; row++ {
		x := img[row*8 : row*8+8]
		var s, o [8]float32
		s[0], s[7] = x[0]+x[7], x[0]-x[7]
		s[1], s[6] = x[1]+x[6], x[1]-x[6]
		s[2], s[5] = x[2]+x[5], x[2]-x[5]
		s[3], s[4] = x[3]+x[4], x[3]-x[4]
		o[0], o[3] = s[0]+s[3], s[0]-s[3]
		o[1], o[2] = s[1]+s[2], s[1]-s[2]
		w := want[row*8 : row*8+8]
		w[0] = o[0] + o[1]
		w[4] = o[0] - o[1]
		o2 := o[2] * 0.5411961
		w[2] = fmaf(o[3], 1.3065630, o2)
		o3 := o[3] * 0.5411961
		w[6] = fmaf(o2, -1.0, o3)
		o[4] = s[4] + s[5]
		o[5] = s[5] + s[6]
		o[6] = s[6] + s[7]
		w[1] = o[4] * 0.7071068
		w[3] = fmaf(o[5], 0.9238795, s[7])
		w[5] = o[6] * 0.3826834
		w[7] = s[7] - o[5]
	}

	return &Spec{
		Name:  "dct8x8_K1",
		Suite: "cuda-sdk",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  rowsN / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			return m.WriteF32s(AddrIn0, img)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectF32(m, AddrOut0, want, "dct8x8")
		},
	}, nil
}

// SortNetsK1 is sortingNetworks' block-local bitonic sort: the full
// k/j compare-exchange network over a shared-memory tile, barrier per
// step — integer compare, min/max and XOR-index arithmetic.
func SortNetsK1(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const block = 256
	n := block * 2 * scale

	b := isa.NewBuilder("sortNets_K1")
	sh := b.Shared(block * 4)
	tid := b.Reg()
	gtid := b.Reg()
	v := b.Reg()
	partner := b.Reg()
	mine := b.Reg()
	other := b.Reg()
	dir := b.Reg()
	lo := b.Reg()
	hi := b.Reg()
	addr := b.Reg()
	paddr := b.Reg()
	t := b.Reg()
	pAct := b.PredReg()
	pDir := b.PredReg()

	b.MovSpecial(tid, isa.SRegTid)
	b.MovSpecial(gtid, isa.SRegGtid)
	// Strength-reduced addressing (shift + add), as NVCC emits for
	// power-of-two element sizes.
	b.Shl(isa.U64, t, isa.R(gtid), isa.Imm(2))
	b.IAdd(isa.U64, addr, isa.R(t), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.U32, v, isa.R(addr))
	b.Shl(isa.U64, t, isa.R(tid), isa.Imm(2))
	b.IAdd(isa.U64, addr, isa.R(t), isa.Imm(sh))
	b.St(isa.Shared, isa.U32, isa.R(addr), isa.R(v))
	b.Bar()
	// Unrolled bitonic network (k, j compile-time constants).
	for k := 2; k <= block; k *= 2 {
		for j := k / 2; j >= 1; j /= 2 {
			// partner = tid ^ j; act when partner > tid.
			b.Xor(isa.U32, partner, isa.R(tid), isa.Imm(uint64(j)))
			b.Setp(isa.GT, isa.U32, pAct, isa.R(partner), isa.R(tid))
			// dir = (tid & k) == 0 → ascending
			b.And(isa.U32, dir, isa.R(tid), isa.Imm(uint64(k)))
			b.Setp(isa.EQ, isa.U32, pDir, isa.R(dir), isa.Imm(0))
			b.Shl(isa.U64, t, isa.R(partner), isa.Imm(2))
			b.IAdd(isa.U64, paddr, isa.R(t), isa.Imm(sh))
			b.Ld(isa.Shared, isa.U32, mine, isa.R(addr)).Guarded(pAct, false)
			b.Ld(isa.Shared, isa.U32, other, isa.R(paddr)).Guarded(pAct, false)
			b.IMin(isa.U32, lo, isa.R(mine), isa.R(other)).Guarded(pAct, false)
			b.IMax(isa.U32, hi, isa.R(mine), isa.R(other)).Guarded(pAct, false)
			// ascending: mine=lo, other=hi; descending: swap.
			b.Selp(isa.U32, t, isa.R(lo), isa.R(hi), pDir)
			b.St(isa.Shared, isa.U32, isa.R(addr), isa.R(t)).Guarded(pAct, false)
			b.Selp(isa.U32, t, isa.R(hi), isa.R(lo), pDir)
			b.St(isa.Shared, isa.U32, isa.R(paddr), isa.R(t)).Guarded(pAct, false)
			b.Bar()
		}
	}
	b.Ld(isa.Shared, isa.U32, v, isa.R(addr))
	b.Shl(isa.U64, t, isa.R(gtid), isa.Imm(2))
	b.IAdd(isa.U64, addr, isa.R(t), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.U32, isa.R(addr), isa.R(v))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(14)
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(r.Intn(1 << 20))
	}
	want := make([]uint32, n)
	copy(want, in)
	for blk := 0; blk < n/block; blk++ {
		seg := want[blk*block : (blk+1)*block]
		// The bitonic network sorts every (tid & block) == 0 region
		// ascending; with k reaching block the whole tile ends ascending.
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
	}

	return &Spec{
		Name:  "sortNets_K1",
		Suite: "cuda-sdk",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  n / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			return m.WriteU32s(AddrIn0, in)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectU32(m, AddrOut0, want, "bitonic tile")
		},
	}, nil
}

// SortNetsK2 is the global bitonic-merge step: one compare-exchange pass
// at a block-spanning stride.
func SortNetsK2(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const block = 256
	n := block * 8 * scale
	j := n / 4 // merge stride
	k := n / 2 // direction period

	b := isa.NewBuilder("sortNets_K2")
	gtid := b.Reg()
	partner := b.Reg()
	mine := b.Reg()
	other := b.Reg()
	dir := b.Reg()
	lo := b.Reg()
	hi := b.Reg()
	addr := b.Reg()
	paddr := b.Reg()
	t := b.Reg()
	pAct := b.PredReg()
	pDir := b.PredReg()

	b.MovSpecial(gtid, isa.SRegGtid)
	b.Xor(isa.U32, partner, isa.R(gtid), isa.Imm(uint64(j)))
	b.Setp(isa.GT, isa.U32, pAct, isa.R(partner), isa.R(gtid))
	b.And(isa.U32, dir, isa.R(gtid), isa.Imm(uint64(k)))
	b.Setp(isa.EQ, isa.U32, pDir, isa.R(dir), isa.Imm(0))
	b.Shl(isa.U64, t, isa.R(gtid), isa.Imm(2))
	b.IAdd(isa.U64, addr, isa.R(t), isa.Imm(AddrIn0))
	b.Shl(isa.U64, t, isa.R(partner), isa.Imm(2))
	b.IAdd(isa.U64, paddr, isa.R(t), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.U32, mine, isa.R(addr)).Guarded(pAct, false)
	b.Ld(isa.Global, isa.U32, other, isa.R(paddr)).Guarded(pAct, false)
	b.IMin(isa.U32, lo, isa.R(mine), isa.R(other)).Guarded(pAct, false)
	b.IMax(isa.U32, hi, isa.R(mine), isa.R(other)).Guarded(pAct, false)
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(AddrOut0-AddrIn0))
	b.IAdd(isa.U64, paddr, isa.R(paddr), isa.Imm(AddrOut0-AddrIn0))
	b.Selp(isa.U32, t, isa.R(lo), isa.R(hi), pDir)
	b.St(isa.Global, isa.U32, isa.R(addr), isa.R(t)).Guarded(pAct, false)
	b.Selp(isa.U32, t, isa.R(hi), isa.R(lo), pDir)
	b.St(isa.Global, isa.U32, isa.R(paddr), isa.R(t)).Guarded(pAct, false)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(15)
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(r.Intn(1 << 20))
	}
	want := make([]uint32, n)
	copy(want, in)
	for g := 0; g < n; g++ {
		partner := g ^ j
		if partner <= g {
			continue
		}
		asc := g&k == 0
		lo, hi := want[g], want[partner]
		if lo > hi {
			lo, hi = hi, lo
		}
		if asc {
			want[g], want[partner] = lo, hi
		} else {
			want[g], want[partner] = hi, lo
		}
	}

	return &Spec{
		Name:  "sortNets_K2",
		Suite: "cuda-sdk",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  n / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			if err := m.WriteU32s(AddrIn0, in); err != nil {
				return err
			}
			// Inactive elements copy through on the host oracle; stage the
			// input into the output too so unwritten slots match.
			return m.WriteU32s(AddrOut0, in)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectU32(m, AddrOut0, want, "bitonic merge")
		},
	}, nil
}

// QrngK1 is quasirandomGenerator's Niederreiter kernel: per sample, XOR
// the table vectors selected by the sample index bits, then scale to
// (0,1) — shift/AND/XOR integer work with one int→float convert.
func QrngK1(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const block = 256
	n := block * 4 * scale

	table := niederreiterTable()

	b := isa.NewBuilder("qrng_K1")
	gtid := b.Reg()
	acc := b.Reg()
	idx := b.Reg()
	bit := b.Reg()
	vec := b.Reg()
	addr := b.Reg()
	i := b.Reg()
	f := b.Reg()
	p := b.PredReg()
	pBit := b.PredReg()

	b.MovSpecial(gtid, isa.SRegGtid)
	b.Mov(isa.U32, acc, isa.Imm(0))
	b.Mov(isa.U32, idx, isa.R(gtid))
	b.Mov(isa.U32, i, isa.Imm(0))
	b.Label("bits")
	b.And(isa.U32, bit, isa.R(idx), isa.Imm(1))
	b.Setp(isa.NE, isa.U32, pBit, isa.R(bit), isa.Imm(0))
	b.IMad(isa.U64, addr, isa.R(i), isa.Imm(4), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.U32, vec, isa.R(addr)).Guarded(pBit, false)
	b.Xor(isa.U32, acc, isa.R(acc), isa.R(vec)).Guarded(pBit, false)
	b.Shr(isa.U32, idx, isa.R(idx), isa.Imm(1))
	b.IAdd(isa.U32, i, isa.R(i), isa.Imm(1))
	b.Setp(isa.LT, isa.U32, p, isa.R(i), isa.Imm(20))
	b.BraTo("bits", p, false)
	// f = acc · 2^-32
	b.Cvt(isa.F32, f, isa.R(acc), isa.U32)
	b.FMul(isa.F32, f, isa.R(f), isa.ImmF32(1.0/4294967296.0))
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.F32, isa.R(addr), isa.R(f))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	want := make([]float32, n)
	for g := 0; g < n; g++ {
		acc := uint32(0)
		idx := uint32(g)
		for i := 0; i < 20; i++ {
			if idx&1 != 0 {
				acc ^= table[i]
			}
			idx >>= 1
		}
		want[g] = float32(acc) * (1.0 / 4294967296.0)
	}

	return &Spec{
		Name:  "qrng_K1",
		Suite: "cuda-sdk",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  n / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			return m.WriteU32s(AddrIn0, table)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectF32(m, AddrOut0, want, "qrng K1")
		},
	}, nil
}

// QrngK2 is quasirandomGenerator's inverse-CND kernel (Moro's
// approximation): a rational-polynomial FMA chain with a log for the
// tails.
func QrngK2(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const block = 256
	n := block * 4 * scale

	b := isa.NewBuilder("qrng_K2")
	gtid := b.Reg()
	u := b.Reg()
	y := b.Reg()
	num := b.Reg()
	den := b.Reg()
	z := b.Reg()
	addr := b.Reg()

	// Moro central-region coefficients.
	a := []float32{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	c := []float32{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}

	b.MovSpecial(gtid, isa.SRegGtid)
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.F32, u, isa.R(addr))
	// y = u − 0.5; central region only (inputs kept in (0.08, 0.92)).
	b.FSub(isa.F32, y, isa.R(u), isa.ImmF32(0.5))
	b.FMul(isa.F32, z, isa.R(y), isa.R(y))
	// num = ((a3·z + a2)·z + a1)·z + a0, times y.
	b.Mov(isa.F32, num, isa.ImmF32(a[3]))
	b.FFma(isa.F32, num, isa.R(num), isa.R(z), isa.ImmF32(a[2]))
	b.FFma(isa.F32, num, isa.R(num), isa.R(z), isa.ImmF32(a[1]))
	b.FFma(isa.F32, num, isa.R(num), isa.R(z), isa.ImmF32(a[0]))
	b.FMul(isa.F32, num, isa.R(num), isa.R(y))
	// den = ((c3·z + c2)·z + c1)·z + c0)·z + 1
	b.Mov(isa.F32, den, isa.ImmF32(c[3]))
	b.FFma(isa.F32, den, isa.R(den), isa.R(z), isa.ImmF32(c[2]))
	b.FFma(isa.F32, den, isa.R(den), isa.R(z), isa.ImmF32(c[1]))
	b.FFma(isa.F32, den, isa.R(den), isa.R(z), isa.ImmF32(c[0]))
	b.FFma(isa.F32, den, isa.R(den), isa.R(z), isa.ImmF32(1))
	b.FDiv(isa.F32, num, isa.R(num), isa.R(den))
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.F32, isa.R(addr), isa.R(num))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(16)
	in := make([]float32, n)
	for i := range in {
		in[i] = float32(0.08 + 0.84*r.Float64())
	}
	want := make([]float32, n)
	for i, u := range in {
		y := u - 0.5
		z := y * y
		num := a[3]
		num = fmaf(num, z, a[2])
		num = fmaf(num, z, a[1])
		num = fmaf(num, z, a[0])
		num = num * y
		den := c[3]
		den = fmaf(den, z, c[2])
		den = fmaf(den, z, c[1])
		den = fmaf(den, z, c[0])
		den = fmaf(den, z, 1)
		want[i] = num / den
	}

	return &Spec{
		Name:  "qrng_K2",
		Suite: "cuda-sdk",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  n / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			return m.WriteF32s(AddrIn0, in)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectF32(m, AddrOut0, want, "qrng K2")
		},
	}, nil
}

// HistoK1 is the 64-bin histogram kernel: per word, four byte extracts
// feed shared-memory atomic increments; block partials merge into the
// global histogram with global atomics.
func HistoK1(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const (
		block = 128
		bins  = 64
	)
	words := block * 8 * scale

	b := isa.NewBuilder("histo_K1")
	sh := b.Shared(bins * 4)
	tid := b.Reg()
	gtid := b.Reg()
	w := b.Reg()
	byteV := b.Reg()
	addr := b.Reg()
	baddr := b.Reg()
	part := b.Reg()
	pInit := b.PredReg()

	b.MovSpecial(tid, isa.SRegTid)
	b.MovSpecial(gtid, isa.SRegGtid)
	// Zero the shared histogram (threads < bins).
	b.Setp(isa.LT, isa.U32, pInit, isa.R(tid), isa.Imm(bins))
	tsh := b.Reg()
	b.Shl(isa.U64, tsh, isa.R(tid), isa.Imm(2))
	b.IAdd(isa.U64, baddr, isa.R(tsh), isa.Imm(sh))
	b.St(isa.Shared, isa.U32, isa.R(baddr), isa.Imm(0)).Guarded(pInit, false)
	b.Bar()
	// Process one word: four byte lanes → shared atomics.
	b.Shl(isa.U64, addr, isa.R(gtid), isa.Imm(2))
	b.IAdd(isa.U64, addr, isa.R(addr), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.U32, w, isa.R(addr))
	for shift := 0; shift < 32; shift += 8 {
		b.Shr(isa.U32, byteV, isa.R(w), isa.Imm(uint64(shift)))
		b.And(isa.U32, byteV, isa.R(byteV), isa.Imm(bins-1))
		b.Shl(isa.U64, baddr, isa.R(byteV), isa.Imm(2))
		b.IAdd(isa.U64, baddr, isa.R(baddr), isa.Imm(sh))
		b.AtomAdd(isa.Shared, isa.U32, isa.R(baddr), isa.Imm(1))
	}
	b.Bar()
	// Merge block partials.
	b.IAdd(isa.U64, baddr, isa.R(tsh), isa.Imm(sh))
	b.Ld(isa.Shared, isa.U32, part, isa.R(baddr)).Guarded(pInit, false)
	b.IAdd(isa.U64, addr, isa.R(tsh), isa.Imm(AddrOut0))
	b.AtomAdd(isa.Global, isa.U32, isa.R(addr), isa.R(part)).Guarded(pInit, false)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(17)
	data := make([]uint32, words)
	for i := range data {
		data[i] = r.Uint32()
	}
	want := make([]uint32, bins)
	for _, w := range data {
		for shift := 0; shift < 32; shift += 8 {
			want[(w>>shift)&(bins-1)]++
		}
	}

	return &Spec{
		Name:  "histo_K1",
		Suite: "cuda-sdk",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  words / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			if err := m.WriteU32s(AddrIn0, data); err != nil {
				return err
			}
			return m.WriteU32s(AddrOut0, make([]uint32, bins))
		},
		Verify: func(m *gpusim.Memory) error {
			return expectU32(m, AddrOut0, want, "histogram")
		},
	}, nil
}

// MsortK1 is mergesort's local step: odd-even transposition sort of a
// shared-memory tile — compare/swap with a barrier per phase.
func MsortK1(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const block = 128
	n := block * 2 * scale

	b := isa.NewBuilder("msort_K1")
	sh := b.Shared(block * 4)
	tid := b.Reg()
	gtid := b.Reg()
	v := b.Reg()
	a0 := b.Reg()
	a1 := b.Reg()
	lo := b.Reg()
	hi := b.Reg()
	addr := b.Reg()
	addr1 := b.Reg()
	idx := b.Reg()
	pAct := b.PredReg()

	b.MovSpecial(tid, isa.SRegTid)
	b.MovSpecial(gtid, isa.SRegGtid)
	b.IMad(isa.U64, addr, isa.R(gtid), isa.Imm(4), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.U32, v, isa.R(addr))
	b.IMad(isa.U64, addr, isa.R(tid), isa.Imm(4), isa.Imm(sh))
	b.St(isa.Shared, isa.U32, isa.R(addr), isa.R(v))
	b.Bar()
	// block phases of odd-even transposition; phase parity alternates.
	for phase := 0; phase < block; phase++ {
		// idx = 2·tid + (phase&1); active when idx+1 < block and tid < block/2.
		b.Shl(isa.U32, idx, isa.R(tid), isa.Imm(1))
		if phase%2 == 1 {
			b.IAdd(isa.U32, idx, isa.R(idx), isa.Imm(1))
		}
		b.Setp(isa.LT, isa.U32, pAct, isa.R(idx), isa.Imm(block-1))
		b.IMad(isa.U64, addr, isa.R(idx), isa.Imm(4), isa.Imm(sh))
		b.IAdd(isa.U64, addr1, isa.R(addr), isa.Imm(4))
		b.Ld(isa.Shared, isa.U32, a0, isa.R(addr)).Guarded(pAct, false)
		b.Ld(isa.Shared, isa.U32, a1, isa.R(addr1)).Guarded(pAct, false)
		b.IMin(isa.U32, lo, isa.R(a0), isa.R(a1)).Guarded(pAct, false)
		b.IMax(isa.U32, hi, isa.R(a0), isa.R(a1)).Guarded(pAct, false)
		b.St(isa.Shared, isa.U32, isa.R(addr), isa.R(lo)).Guarded(pAct, false)
		b.St(isa.Shared, isa.U32, isa.R(addr1), isa.R(hi)).Guarded(pAct, false)
		b.Bar()
	}
	b.IMad(isa.U64, addr, isa.R(tid), isa.Imm(4), isa.Imm(sh))
	b.Ld(isa.Shared, isa.U32, v, isa.R(addr))
	b.Shl(isa.U64, idx, isa.R(gtid), isa.Imm(2))
	b.IAdd(isa.U64, addr, isa.R(idx), isa.Imm(AddrOut0))
	b.St(isa.Global, isa.U32, isa.R(addr), isa.R(v))
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(18)
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(r.Intn(1 << 16))
	}
	want := make([]uint32, n)
	copy(want, in)
	for blk := 0; blk < n/block; blk++ {
		seg := want[blk*block : (blk+1)*block]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
	}

	return &Spec{
		Name:  "msort_K1",
		Suite: "cuda-sdk",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  n / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			return m.WriteU32s(AddrIn0, in)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectU32(m, AddrOut0, want, "msort tile")
		},
	}, nil
}

// MsortK2 is mergesort's merge pass: each thread sequentially merges two
// adjacent sorted runs from global memory — a branchy pointer-walk of
// compares and address increments.
func MsortK2(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const (
		run   = 64
		block = 64
	)
	pairs := block * scale
	n := pairs * run * 2

	b := isa.NewBuilder("msort_K2")
	gtid := b.Reg()
	ai := b.Reg()
	bi := b.Reg()
	av := b.Reg()
	bv := b.Reg()
	oaddr := b.Reg()
	aaddr := b.Reg()
	baddr := b.Reg()
	k := b.Reg()
	sel := b.Reg()
	p := b.PredReg()
	pa := b.PredReg()
	pb := b.PredReg()
	pTake := b.PredReg()

	b.MovSpecial(gtid, isa.SRegGtid)
	// Runs at [gtid·2R, gtid·2R+R) and [gtid·2R+R, gtid·2R+2R).
	b.IMul(isa.U32, k, isa.R(gtid), isa.Imm(run*2))
	b.IMad(isa.U64, aaddr, isa.R(k), isa.Imm(4), isa.Imm(AddrIn0))
	b.IAdd(isa.U64, baddr, isa.R(aaddr), isa.Imm(run*4))
	b.IMad(isa.U64, oaddr, isa.R(k), isa.Imm(4), isa.Imm(AddrOut0))
	b.Mov(isa.U32, ai, isa.Imm(0))
	b.Mov(isa.U32, bi, isa.Imm(0))
	b.Mov(isa.U32, k, isa.Imm(0))
	b.Label("merge")
	b.Setp(isa.LT, isa.U32, pa, isa.R(ai), isa.Imm(run))
	b.Setp(isa.LT, isa.U32, pb, isa.R(bi), isa.Imm(run))
	b.Ld(isa.Global, isa.U32, av, isa.R(aaddr)).Guarded(pa, false)
	b.Ld(isa.Global, isa.U32, bv, isa.R(baddr)).Guarded(pb, false)
	// take A when (a exhausted? no) and (b exhausted || av <= bv)
	b.Selp(isa.U32, sel, isa.Imm(1), isa.Imm(0), pa)
	b.Setp(isa.LE, isa.U32, pTake, isa.R(av), isa.R(bv))
	// sel=1 (take A) iff pa && (!pb || av<=bv): compute with selps.
	t := b.Reg()
	b.Selp(isa.U32, t, isa.Imm(1), isa.Imm(0), pTake)
	t2 := b.Reg()
	b.Selp(isa.U32, t2, isa.R(t), isa.Imm(1), pb) // if b live: av<=bv, else 1
	b.And(isa.U32, sel, isa.R(sel), isa.R(t2))
	b.Setp(isa.NE, isa.U32, pTake, isa.R(sel), isa.Imm(0))
	// Store the chosen value; advance the chosen pointer.
	b.Selp(isa.U32, t, isa.R(av), isa.R(bv), pTake)
	b.St(isa.Global, isa.U32, isa.R(oaddr), isa.R(t))
	b.IAdd(isa.U64, oaddr, isa.R(oaddr), isa.Imm(4))
	b.IAdd(isa.U32, ai, isa.R(ai), isa.Imm(1)).Guarded(pTake, false)
	b.IAdd(isa.U64, aaddr, isa.R(aaddr), isa.Imm(4)).Guarded(pTake, false)
	b.IAdd(isa.U32, bi, isa.R(bi), isa.Imm(1)).Guarded(pTake, true)
	b.IAdd(isa.U64, baddr, isa.R(baddr), isa.Imm(4)).Guarded(pTake, true)
	b.IAdd(isa.U32, k, isa.R(k), isa.Imm(1))
	b.Setp(isa.LT, isa.U32, p, isa.R(k), isa.Imm(run*2))
	b.BraTo("merge", p, false)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	r := rng(19)
	in := make([]uint32, n)
	for pr := 0; pr < pairs; pr++ {
		for half := 0; half < 2; half++ {
			base := pr*run*2 + half*run
			cur := uint32(r.Intn(64))
			for i := 0; i < run; i++ {
				in[base+i] = cur
				cur += uint32(r.Intn(16))
			}
		}
	}
	want := make([]uint32, n)
	for pr := 0; pr < pairs; pr++ {
		base := pr * run * 2
		a := in[base : base+run]
		c := in[base+run : base+2*run]
		ai, bi := 0, 0
		for k := 0; k < run*2; k++ {
			takeA := ai < run && (bi >= run || a[ai] <= c[bi])
			if takeA {
				want[base+k] = a[ai]
				ai++
			} else {
				want[base+k] = c[bi]
				bi++
			}
		}
	}

	return &Spec{
		Name:  "msort_K2",
		Suite: "cuda-sdk",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  pairs / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			return m.WriteU32s(AddrIn0, in)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectU32(m, AddrOut0, want, "merge pass")
		},
	}, nil
}

// SobolQRNG is the Sobol quasirandom generator: each thread emits a
// strip of samples via the gray-code recurrence x ^= v[ctz(i)] — XOR and
// bit-scan loops with an int→float convert per output.
func SobolQRNG(scale int) (*Spec, error) {
	scale = clampScale(scale)
	const (
		block   = 128
		perThr  = 16
		numDirs = 20
	)
	threads := block * 2 * scale

	dirs := sobolDirections()

	b := isa.NewBuilder("sobolQRNG")
	gtid := b.Reg()
	x := b.Reg()
	i := b.Reg()
	gray := b.Reg()
	bitIdx := b.Reg()
	tmp := b.Reg()
	vec := b.Reg()
	addr := b.Reg()
	oaddr := b.Reg()
	f := b.Reg()
	j := b.Reg()
	p := b.PredReg()
	pBit := b.PredReg()
	pz := b.PredReg()

	b.MovSpecial(gtid, isa.SRegGtid)
	// Seed x with the gray-coded thread origin: x = XOR of dirs over the
	// set bits of gray(gtid·perThr).
	b.IMul(isa.U32, i, isa.R(gtid), isa.Imm(perThr))
	b.Shr(isa.U32, gray, isa.R(i), isa.Imm(1))
	b.Xor(isa.U32, gray, isa.R(gray), isa.R(i))
	b.Mov(isa.U32, x, isa.Imm(0))
	b.Mov(isa.U32, j, isa.Imm(0))
	b.Label("seed")
	b.And(isa.U32, tmp, isa.R(gray), isa.Imm(1))
	b.Setp(isa.NE, isa.U32, pBit, isa.R(tmp), isa.Imm(0))
	b.IMad(isa.U64, addr, isa.R(j), isa.Imm(4), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.U32, vec, isa.R(addr)).Guarded(pBit, false)
	b.Xor(isa.U32, x, isa.R(x), isa.R(vec)).Guarded(pBit, false)
	b.Shr(isa.U32, gray, isa.R(gray), isa.Imm(1))
	b.IAdd(isa.U32, j, isa.R(j), isa.Imm(1))
	b.Setp(isa.LT, isa.U32, p, isa.R(j), isa.Imm(numDirs))
	b.BraTo("seed", p, false)
	// Emit perThr samples with the gray-code update x ^= v[ctz(i+1)].
	b.IMul(isa.U32, oaddr, isa.R(gtid), isa.Imm(perThr*4))
	b.IAdd(isa.U64, oaddr, isa.R(oaddr), isa.Imm(AddrOut0))
	b.IMul(isa.U32, i, isa.R(gtid), isa.Imm(perThr))
	b.Mov(isa.U32, j, isa.Imm(0))
	b.Label("emit")
	b.Cvt(isa.F32, f, isa.R(x), isa.U32)
	b.FMul(isa.F32, f, isa.R(f), isa.ImmF32(1.0/4294967296.0))
	b.St(isa.Global, isa.F32, isa.R(oaddr), isa.R(f))
	b.IAdd(isa.U64, oaddr, isa.R(oaddr), isa.Imm(4))
	// bitIdx = ctz(i+1) via a loop.
	b.IAdd(isa.U32, tmp, isa.R(i), isa.Imm(1))
	b.Mov(isa.U32, bitIdx, isa.Imm(0))
	b.Label("ctz")
	b.And(isa.U32, gray, isa.R(tmp), isa.Imm(1))
	b.Setp(isa.EQ, isa.U32, pz, isa.R(gray), isa.Imm(0))
	b.Shr(isa.U32, tmp, isa.R(tmp), isa.Imm(1)).Guarded(pz, false)
	b.IAdd(isa.U32, bitIdx, isa.R(bitIdx), isa.Imm(1)).Guarded(pz, false)
	b.BraTo("ctz", pz, false)
	b.IMin(isa.U32, bitIdx, isa.R(bitIdx), isa.Imm(numDirs-1))
	b.IMad(isa.U64, addr, isa.R(bitIdx), isa.Imm(4), isa.Imm(AddrIn0))
	b.Ld(isa.Global, isa.U32, vec, isa.R(addr))
	b.Xor(isa.U32, x, isa.R(x), isa.R(vec))
	b.IAdd(isa.U32, i, isa.R(i), isa.Imm(1))
	b.IAdd(isa.U32, j, isa.R(j), isa.Imm(1))
	b.Setp(isa.LT, isa.U32, p, isa.R(j), isa.Imm(perThr))
	b.BraTo("emit", p, false)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	want := make([]float32, threads*perThr)
	for g := 0; g < threads; g++ {
		i := uint32(g * perThr)
		gray := (i >> 1) ^ i
		x := uint32(0)
		for j := 0; j < numDirs; j++ {
			if gray&1 != 0 {
				x ^= dirs[j]
			}
			gray >>= 1
		}
		for j := 0; j < perThr; j++ {
			want[g*perThr+j] = float32(x) * (1.0 / 4294967296.0)
			t := i + 1
			bit := 0
			for t&1 == 0 {
				t >>= 1
				bit++
			}
			if bit > numDirs-1 {
				bit = numDirs - 1
			}
			x ^= dirs[bit]
			i++
		}
	}

	return &Spec{
		Name:  "sobolQRNG",
		Suite: "cuda-sdk",
		Kernel: &gpusim.Kernel{
			Program:  prog,
			GridDim:  threads / block,
			BlockDim: block,
		},
		Setup: func(m *gpusim.Memory) error {
			return m.WriteU32s(AddrIn0, dirs)
		},
		Verify: func(m *gpusim.Memory) error {
			return expectF32(m, AddrOut0, want, "sobol")
		},
	}, nil
}

// niederreiterTable returns a deterministic 20-entry direction table.
func niederreiterTable() []uint32 {
	t := make([]uint32, 20)
	v := uint32(0x9E3779B9)
	for i := range t {
		v = v*1664525 + 1013904223
		t[i] = v | 1<<31>>uint(i%20)
	}
	return t
}

// sobolDirections returns the classic power-of-two direction vectors of
// Sobol dimension 0 (v[j] = 2^(31-j)) — the real generator's first
// dimension.
func sobolDirections() []uint32 {
	t := make([]uint32, 20)
	for i := range t {
		t[i] = 1 << (31 - uint(i))
	}
	return t
}
