package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"st2gpu/internal/gpusim"
	"st2gpu/internal/obs"
)

// StoreHandle is an open decoded store with only its header and section
// table parsed: the capture config, the kernel list, and each kernel's
// section offset. LoadKernels then seeks and decodes just the requested
// sections, so a shard worker's load time and memory are proportional
// to its assigned kernels, not the suite. The handle holds no open file
// descriptor between calls and is safe for concurrent LoadKernels.
type StoreHandle struct {
	path     string
	maxBytes uint64
	info     *storeInfo
	offsets  []int64 // absolute file offset of entries[i]'s payload
}

// OpenStore parses the header + section table of the store file at
// path without reading any section payload. maxBytes (0 means
// gpusim.DefaultRecordMaxBytes) bounds the section table here and each
// subsequent LoadKernels call's payload + decoded footprint; unlike
// ReadDecoded, the whole-file payload total is NOT held to the budget —
// a store bigger than one worker's budget is readable a slice at a
// time.
func OpenStore(path string, maxBytes uint64) (*StoreHandle, error) {
	return OpenStoreTraced(path, maxBytes, nil)
}

// OpenStoreTraced is OpenStore with a store.open span annotated with
// the kernel count and table bytes (observability only).
func OpenStoreTraced(path string, maxBytes uint64, tr *obs.Tracer) (*StoreHandle, error) {
	if maxBytes == 0 {
		maxBytes = gpusim.DefaultRecordMaxBytes
	}
	span := tr.Begin("store.open")
	defer span.End()
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open store: %w", err)
	}
	defer f.Close()
	info, err := readStoreInfo(bufio.NewReaderSize(f, 1<<16), maxBytes, false)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("trace: open store: %w", err)
	}
	if want := info.headerLen + int64(info.payloadTotal); fi.Size() != want {
		return nil, fmt.Errorf("trace: store %s is %d bytes but its section table declares %d",
			path, fi.Size(), want)
	}
	h := &StoreHandle{
		path:     path,
		maxBytes: maxBytes,
		info:     info,
		offsets:  make([]int64, len(info.entries)),
	}
	off := info.headerLen
	for i, ent := range info.entries {
		h.offsets[i] = off
		off += int64(ent.sectLen)
	}
	span.Add(
		obs.Int("kernels", int64(len(info.entries))),
		obs.Int("header_bytes", info.headerLen))
	return h, nil
}

// Names returns the store's kernel names in insertion order.
func (h *StoreHandle) Names() []string {
	names := make([]string, len(h.info.entries))
	for i, ent := range h.info.entries {
		names[i] = ent.name
	}
	return names
}

// Matches reports whether the store was captured under the given
// config, naming the first mismatching field.
func (h *StoreHandle) Matches(scale, numSMs int, seed int64) error {
	return matchesConfig("decoded store", h.info.scale, h.info.numSMs, h.info.seed, scale, numSMs, seed)
}

// LoadKernels reads and decodes just the named kernels' sections,
// returning a Decoded holding exactly those kernels — each DeepEqual
// to the same kernel from a full ReadDecoded, in store insertion order
// regardless of the order names are given in. Duplicate names load
// once; an unknown name fails the same way Decoded.MatchesKernels
// does. The requested sections' payload bytes plus decoded column
// footprint must fit the handle's byte budget. workers bounds the
// section-decode pool (0 = GOMAXPROCS); the result is bit-identical at
// any count.
func (h *StoreHandle) LoadKernels(names []string, workers int) (*Decoded, error) {
	return h.LoadKernelsTraced(names, workers, nil)
}

// LoadKernelsTraced is LoadKernels with a store.load_partial span
// annotated with the requested/total kernel counts and byte totals.
func (h *StoreHandle) LoadKernelsTraced(names []string, workers int, tr *obs.Tracer) (*Decoded, error) {
	span := tr.Begin("store.load_partial",
		obs.Int("kernels_requested", int64(len(names))),
		obs.Int("kernels_total", int64(len(h.info.entries))))
	defer span.End()

	want := make(map[string]bool, len(names))
	for _, name := range names {
		want[name] = true
	}
	// Select in store insertion order so any subset folds in the same
	// relative order as a full load.
	var selected []storeEntry
	var selectedOff []int64
	var payload, footprint uint64
	for i, ent := range h.info.entries {
		if !want[ent.name] {
			continue
		}
		delete(want, ent.name)
		selected = append(selected, ent)
		selectedOff = append(selectedOff, h.offsets[i])
		payload += ent.sectLen
		footprint += entryFootprint(ent.records, ent.lanes)
	}
	for _, name := range names {
		if want[name] {
			return nil, fmt.Errorf("trace: decoded set kernel-list mismatch: missing kernel %q (set holds %d kernels: %v)",
				name, len(h.info.entries), h.Names())
		}
	}
	if payload > h.maxBytes || footprint > h.maxBytes-payload {
		return nil, fmt.Errorf("trace: store load of %d kernels declares %d payload + %d footprint bytes with a %d-byte budget: %w",
			len(selected), payload, footprint, h.maxBytes, ErrStoreTooBig)
	}

	f, err := os.Open(h.path)
	if err != nil {
		return nil, fmt.Errorf("trace: open store: %w", err)
	}
	defer f.Close()
	bufs := make([][]byte, len(selected))
	for i, ent := range selected {
		buf, err := readSection(io.NewSectionReader(f, selectedOff[i], int64(ent.sectLen)), ent.sectLen)
		if err != nil {
			return nil, fmt.Errorf("trace: store kernel %q payload: %w", ent.name, err)
		}
		bufs[i] = buf
	}
	d, err := h.info.decodeSections(selected, bufs, workers)
	if err != nil {
		return nil, err
	}
	span.Add(
		obs.Int("bytes", int64(payload)),
		obs.Int("records", int64(d.NumOps())),
		obs.Int("lanes", int64(d.NumLanes())))
	return d, nil
}
