package trace

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"st2gpu/internal/gpusim"
	"st2gpu/internal/kernels"
)

// recordMultiKernel captures a three-kernel Set (pathfinder plus two
// micro stressors) under the standard scale-1/2-SM/seed-1 config, so
// partial loads have distinct kernels to select between.
func recordMultiKernel(t testing.TB) *Set {
	t.Helper()
	set := NewSet(1, 2, 1)
	specs := []*kernels.Spec{}
	pf, err := kernels.Pathfinder(1)
	if err != nil {
		t.Fatal(err)
	}
	specs = append(specs, pf)
	for i := 0; i < 2; i++ {
		sp, err := kernels.Micro(i)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, sp)
	}
	for _, spec := range specs {
		cfg := gpusim.DefaultConfig()
		cfg.NumSMs = 2
		cfg.AdderMode = gpusim.BaselineAdders
		cfg.Seed = 1
		d, err := gpusim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := spec.Setup(d.Memory()); err != nil {
			t.Fatal(err)
		}
		rec := gpusim.NewRecorder(0)
		d.SetRecorder(rec)
		if _, err := d.Launch(spec.Kernel); err != nil {
			t.Fatal(err)
		}
		set.Add(spec.Name, rec.Recording())
	}
	return set
}

// writeMultiKernelStore decodes the multi-kernel capture and persists
// it to a store file, returning the path and the in-memory reference.
func writeMultiKernelStore(t *testing.T, opts StoreOptions) (string, *Decoded) {
	t.Helper()
	dec, err := DecodeSet(recordMultiKernel(t))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "multi.st2dec")
	if err := dec.WriteStoreFile(path, opts); err != nil {
		t.Fatal(err)
	}
	return path, dec
}

// TestPartialLoadMatchesFullRead pins the partial loader's contract:
// LoadKernels returns kernels DeepEqual to the same kernels from a full
// ReadDecoded, at 1/2/8 decode workers and both omit-derived modes, for
// subsets given in any order and with duplicates.
func TestPartialLoadMatchesFullRead(t *testing.T) {
	for _, omit := range []bool{false, true} {
		path, _ := writeMultiKernelStore(t, StoreOptions{OmitDerived: omit})
		full, err := ReadStoreFile(path)
		if err != nil {
			t.Fatal(err)
		}
		names := full.Names()
		if len(names) != 3 {
			t.Fatalf("omit=%v: capture holds %d kernels, want 3", omit, len(names))
		}
		h, err := OpenStore(path, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(h.Names(), names) {
			t.Fatalf("omit=%v: handle names %v, full-read names %v", omit, h.Names(), names)
		}
		if err := h.Matches(full.Scale, full.NumSMs, full.Seed); err != nil {
			t.Fatalf("omit=%v: handle rejects capture config: %v", omit, err)
		}
		subsets := [][]string{
			{names[0]},
			{names[2]},
			{names[2], names[0]},               // reversed request order
			{names[1], names[1], names[2]},     // duplicate request
			{names[2], names[1], names[0]},     // full suite, reversed
		}
		for _, workers := range []int{1, 2, 8} {
			for _, req := range subsets {
				part, err := h.LoadKernels(req, workers)
				if err != nil {
					t.Fatalf("omit=%v workers=%d req=%v: %v", omit, workers, req, err)
				}
				if part.Scale != full.Scale || part.NumSMs != full.NumSMs || part.Seed != full.Seed {
					t.Fatalf("omit=%v workers=%d req=%v: partial load config %d/%d/%d, want %d/%d/%d",
						omit, workers, req, part.Scale, part.NumSMs, part.Seed, full.Scale, full.NumSMs, full.Seed)
				}
				// Loaded names must follow store insertion order, deduped.
				want := []string{}
				seen := map[string]bool{}
				for _, n := range req {
					seen[n] = true
				}
				for _, n := range names {
					if seen[n] {
						want = append(want, n)
					}
				}
				if !reflect.DeepEqual(part.Names(), want) {
					t.Fatalf("omit=%v workers=%d req=%v: loaded names %v, want %v", omit, workers, req, part.Names(), want)
				}
				for _, n := range want {
					pk, ok := part.Kernel(n)
					if !ok {
						t.Fatalf("omit=%v workers=%d req=%v: kernel %q missing from partial load", omit, workers, req, n)
					}
					fk, _ := full.Kernel(n)
					if !reflect.DeepEqual(pk, fk) {
						t.Fatalf("omit=%v workers=%d req=%v: kernel %q differs between partial and full load", omit, workers, req, n)
					}
				}
			}
		}
	}
}

// TestPartialLoadErrors covers the handle's failure paths: unknown
// kernels fail like Decoded.MatchesKernels, over-budget subsets fail
// with ErrStoreTooBig before any payload read, and a truncated file is
// rejected at OpenStore.
func TestPartialLoadErrors(t *testing.T) {
	path, full := writeMultiKernelStore(t, StoreOptions{})
	names := full.Names()

	h, err := OpenStore(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.LoadKernels([]string{names[0], "no_such_kernel"}, 0); err == nil {
		t.Fatal("unknown kernel: want error, got nil")
	} else if !strings.Contains(err.Error(), `missing kernel "no_such_kernel"`) {
		t.Fatalf("unknown kernel: error %q does not name the missing kernel", err)
	}

	// A budget large enough for the table but far too small for any
	// kernel's payload + decoded footprint must refuse the load (and
	// must have refused nothing at OpenStore, which reads no payloads).
	tiny, err := OpenStore(path, 4096)
	if err != nil {
		t.Fatalf("OpenStore with small budget: %v", err)
	}
	if _, err := tiny.LoadKernels(names[:1], 0); !errors.Is(err, ErrStoreTooBig) {
		t.Fatalf("over-budget load: got %v, want ErrStoreTooBig", err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "truncated.st2dec")
	if err := os.WriteFile(cut, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(cut, 0); err == nil {
		t.Fatal("truncated store: want error, got nil")
	} else if !strings.Contains(err.Error(), "declares") {
		t.Fatalf("truncated store: error %q does not report the size mismatch", err)
	}
}
