package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// storePathfinder decodes the real pathfinder capture used across this
// package's tests — the reference Decoded every store assertion compares
// against.
func storePathfinder(t *testing.T) *Decoded {
	t.Helper()
	dec, err := DecodeSet(recordPathfinder(t))
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

func encodeStore(t *testing.T, d *Decoded, opts StoreOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := WriteDecoded(&buf, d, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStoreRoundTripBitIdentical pins the tentpole guarantee: a Decoded
// loaded from the store is bit-identical (reflect.DeepEqual) to the one
// DecodeSet produced, at any load worker count, whether the derived
// Sum/Carries columns were stored or recomputed at load.
func TestStoreRoundTripBitIdentical(t *testing.T) {
	want := storePathfinder(t)
	if want.NumLanes() == 0 {
		t.Fatal("reference capture holds no lanes")
	}
	for _, omit := range []bool{false, true} {
		raw := encodeStore(t, want, StoreOptions{OmitDerived: omit})
		for _, workers := range []int{1, 2, 8} {
			got, err := ReadDecodedLimit(bytes.NewReader(raw), 0, workers)
			if err != nil {
				t.Fatalf("omit=%v workers=%d: %v", omit, workers, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("omit=%v workers=%d: store-loaded Decoded is not bit-identical to DecodeSet output", omit, workers)
			}
		}
	}
}

// TestStoreBytesDeterministic pins the writer's determinism rule: equal
// sets write equal bytes at any encode worker count, and the OmitDerived
// file is strictly smaller.
func TestStoreBytesDeterministic(t *testing.T) {
	d := storePathfinder(t)
	full := encodeStore(t, d, StoreOptions{Workers: 1})
	for _, workers := range []int{2, 8} {
		if !bytes.Equal(full, encodeStore(t, d, StoreOptions{Workers: workers})) {
			t.Fatalf("store bytes differ at %d encode workers", workers)
		}
	}
	compact := encodeStore(t, d, StoreOptions{OmitDerived: true})
	if len(compact) >= len(full) {
		t.Errorf("OmitDerived store (%d bytes) is not smaller than the full store (%d bytes)", len(compact), len(full))
	}
}

// TestStoreFileRoundTrip exercises the atomic file path end to end and
// checks the config header round-trips through Matches.
func TestStoreFileRoundTrip(t *testing.T) {
	d := storePathfinder(t)
	path := filepath.Join(t.TempDir(), "suite.decoded")
	if err := d.WriteStoreFile(path, StoreOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after a successful write")
	}
	got, err := ReadStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatal("file round-trip is not bit-identical")
	}
	if err := got.Matches(1, 2, 1); err != nil {
		t.Errorf("loaded store rejects its own capture config: %v", err)
	}
	err = got.Matches(4, 2, 1)
	if err == nil || !strings.Contains(err.Error(), "scale") {
		t.Errorf("scale mismatch error = %v, want a per-field scale error", err)
	}
	if err := got.MatchesKernels([]string{"pathfinder"}); err != nil {
		t.Errorf("MatchesKernels rejects a present kernel: %v", err)
	}
	err = got.MatchesKernels([]string{"bfs"})
	if err == nil || !strings.Contains(err.Error(), `"bfs"`) {
		t.Errorf("MatchesKernels error = %v, want the missing kernel named", err)
	}
}

// TestWriteStoreFileCleansUpOnFailure pins the atomic-writer contract:
// when the rename (or the write itself) fails, the temp file must not
// survive.
func TestWriteStoreFileCleansUpOnFailure(t *testing.T) {
	d := storePathfinder(t)
	// Rename onto a non-empty directory fails after a successful write.
	dir := t.TempDir()
	target := filepath.Join(dir, "occupied")
	if err := os.MkdirAll(filepath.Join(target, "child"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteStoreFile(target, StoreOptions{}); err == nil {
		t.Fatal("rename onto a non-empty directory succeeded")
	}
	if _, err := os.Stat(target + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after a failed rename")
	}

	// A failing writer mid-stream must also clean up (exercised through
	// the shared helper with an injected error), and the helper must
	// return that error, not swallow it.
	path := filepath.Join(dir, "failing")
	wantErr := errors.New("disk on fire")
	err := writeFileAtomic(path, func(io.Writer) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Errorf("writeFileAtomic error = %v, want the writer's own error", err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind after a failed write func")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("destination created despite a failed write func")
	}
}

// TestStoreRejectsCorruptInputs is the table-driven robustness suite for
// the store reader: every corruption fails with an error naming the
// problem (never a panic or a giant allocation), and budget violations
// fail with ErrStoreTooBig before any length-sized allocation.
func TestStoreRejectsCorruptInputs(t *testing.T) {
	valid := encodeStore(t, storePathfinder(t), StoreOptions{})

	flip := func(off int, b byte) []byte {
		c := append([]byte(nil), valid...)
		c[off] = b
		return c
	}
	// Header field offsets (see the format comment in store.go).
	const (
		offBOM      = len(storeMagicStr)
		offFlags    = offBOM + 4 + 4 + 4 + 8
		offTableLen = offFlags + 4 + 4
	)
	bigTable := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(bigTable[offTableLen:], 1<<62)

	v9 := append([]byte(nil), valid...)
	copy(v9, storeVersionPrefix+"v9\n")

	bigEndian := append([]byte(nil), valid...)
	binary.BigEndian.PutUint32(bigEndian[offBOM:], storeBOM)

	cases := []struct {
		name    string
		data    []byte
		max     uint64
		wantBig bool
		wantMsg string
	}{
		{name: "empty", data: nil},
		{name: "bad magic", data: []byte("definitely not a decoded store, not even close")},
		{name: "future version", data: v9, wantMsg: "unsupported decoded-store version"},
		{name: "big-endian writer", data: bigEndian, wantMsg: "byte-order mismatch"},
		{name: "corrupt byte-order marker", data: flip(offBOM, 0xEE), wantMsg: "byte-order marker"},
		{name: "truncated header", data: valid[:offFlags]},
		{name: "truncated table", data: valid[:offTableLen+8+4]},
		{name: "truncated payload", data: valid[:len(valid)-7]},
		{name: "oversized table length", data: bigTable, wantBig: true},
		{name: "whole store beyond budget", data: valid, max: 256, wantBig: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadDecodedLimit(bytes.NewReader(tc.data), tc.max, 0)
			if err == nil {
				t.Fatal("corrupt store accepted")
			}
			if tc.wantBig != errors.Is(err, ErrStoreTooBig) {
				t.Fatalf("error = %v, ErrStoreTooBig match = %v, want %v", err, !tc.wantBig, tc.wantBig)
			}
			if tc.wantMsg != "" && !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error = %v, want it to mention %q", err, tc.wantMsg)
			}
		})
	}
}

// TestStoreFootprintBudget builds a tiny hand-rolled store whose header
// declares a huge lane count backed by width-0 blocks — a few hundred
// bytes on disk that would decode into gigabytes. The reader must refuse
// with ErrStoreTooBig before allocating.
func TestStoreFootprintBudget(t *testing.T) {
	var b []byte
	b = append(b, storeMagicStr...)
	b = binary.LittleEndian.AppendUint32(b, storeBOM)
	b = binary.LittleEndian.AppendUint32(b, 1) // scale
	b = binary.LittleEndian.AppendUint32(b, 2) // numSMs
	b = binary.LittleEndian.AppendUint64(b, 1) // seed
	b = binary.LittleEndian.AppendUint32(b, 0) // flags (derived omitted)
	b = binary.LittleEndian.AppendUint32(b, 1) // one kernel

	var table []byte
	table = binary.LittleEndian.AppendUint16(table, 4)
	table = append(table, "huge"...)
	table = binary.LittleEndian.AppendUint32(table, 1<<30) // records
	table = binary.LittleEndian.AppendUint32(table, 1<<31) // lanes
	table = binary.LittleEndian.AppendUint64(table, 1<<10) // tiny payload
	b = binary.LittleEndian.AppendUint64(b, uint64(len(table)))
	b = append(b, table...)
	b = append(b, make([]byte, 1<<10)...)

	_, err := ReadDecodedLimit(bytes.NewReader(b), 1<<20, 0)
	if !errors.Is(err, ErrStoreTooBig) {
		t.Fatalf("error = %v, want ErrStoreTooBig for a width-0 decode bomb", err)
	}
}

// TestStoreRejectsInconsistentSections corrupts section-level invariants
// (duplicate kernels, lane-count mismatches, bad unit kinds) and checks
// each is named in the error.
func TestStoreRejectsInconsistentSections(t *testing.T) {
	d := storePathfinder(t)
	k, _ := d.Kernel("pathfinder")

	dup := &Decoded{Scale: 1, NumSMs: 2, Seed: 1,
		names:   []string{"pathfinder", "pathfinder"},
		kernels: map[string]*DecodedKernel{"pathfinder": k}}
	raw := encodeStore(t, dup, StoreOptions{})
	if _, err := ReadDecoded(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate kernel error = %v", err)
	}
}

// FuzzReadDecoded drives the store reader with arbitrary bytes under a
// small budget: it must never panic or over-allocate, and anything it
// accepts must re-serialize and read back to a fixed point.
func FuzzReadDecoded(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(storeMagicStr))
	// Seed from a valid store (and a truncation of it) so the fuzzer
	// starts inside the format instead of rediscovering the magic.
	seed, err := DecodeSet(recordPathfinder(f))
	if err != nil {
		f.Fatal(err)
	}
	var seedBuf bytes.Buffer
	if _, err := WriteDecoded(&seedBuf, seed, StoreOptions{}); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.Bytes())
	f.Add(seedBuf.Bytes()[:seedBuf.Len()/2])
	var compact bytes.Buffer
	if _, err := WriteDecoded(&compact, seed, StoreOptions{OmitDerived: true}); err != nil {
		f.Fatal(err)
	}
	f.Add(compact.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		const budget = 1 << 20
		d, err := ReadDecodedLimit(bytes.NewReader(data), budget, 1)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := WriteDecoded(&out, d, StoreOptions{Workers: 1}); err != nil {
			t.Fatalf("accepted store failed to serialize: %v", err)
		}
		// The rewrite always stores the derived columns, so it can be
		// larger than a compact input that just squeezed under the
		// budget — read it back under a proportionally larger one.
		again, err := ReadDecodedLimit(bytes.NewReader(out.Bytes()), 8*budget, 1)
		if err != nil {
			t.Fatalf("accepted store failed to read back: %v", err)
		}
		var out2 bytes.Buffer
		if _, err := WriteDecoded(&out2, again, StoreOptions{Workers: 1}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Error("serialize/read/serialize is not a fixed point")
		}
		if !reflect.DeepEqual(d, again) {
			t.Error("read/serialize/read changed the decoded set")
		}
	})
}

// TestStoreColumnPacking exercises the block packer/unpacker directly
// across widths, block boundaries, and reference offsets.
func TestStoreColumnPacking(t *testing.T) {
	cases := [][]uint64{
		nil,
		{0},
		{42},
		{7, 7, 7, 7},
		{1, 2, 3, 4, 5, 6, 7, 8, 9},
		{0, ^uint64(0)},
		{1 << 63, 1<<63 + 1, 1<<63 + 2},
	}
	// A multi-block column with an outlier confined to the second block.
	big := make([]uint64, colBlock+100)
	for i := range big {
		big[i] = uint64(i % 17)
	}
	big[colBlock+5] = 1 << 40
	cases = append(cases, big)
	// Pseudo-random widths spanning byte boundaries.
	mixed := make([]uint64, 1000)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range mixed {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		mixed[i] = x >> (i % 64)
	}
	cases = append(cases, mixed)

	for i, vals := range cases {
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			packed := appendColumn(nil, vals)
			out := make([]uint64, len(vals))
			pos := 0
			if err := readColumn(packed, &pos, out); err != nil {
				t.Fatal(err)
			}
			if pos != len(packed) {
				t.Errorf("unpack consumed %d of %d bytes", pos, len(packed))
			}
			for j := range vals {
				if out[j] != vals[j] {
					t.Fatalf("value %d: packed %#x, unpacked %#x", j, vals[j], out[j])
				}
			}
		})
	}
}
