package trace

import (
	"testing"

	"st2gpu/internal/bitmath"
	"st2gpu/internal/core"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/kernels"
	"st2gpu/internal/speculate"
)

// feed pushes a synthetic stream through any tracer: per (pc, warp),
// slowly evolving operands on four active lanes — the paper's correlated
// regime.
func feed(t *testing.T, tr gpusim.AddTracer, ops int) {
	t.Helper()
	for i := 0; i < ops; i++ {
		for pc := uint32(0); pc < 4; pc++ {
			var batch [32]gpusim.WarpAddOp
			for lane := 0; lane < 4; lane++ {
				ea := uint64(i)*3 + uint64(pc)*1000 + uint64(lane)
				eb := uint64(pc) * 17
				batch[lane] = gpusim.WarpAddOp{Active: true, EA: ea, EB: eb, Sum: ea + eb}
			}
			tr.TraceWarpAdds(core.ALU, pc, 0, &batch)
		}
	}
}

func TestValueTrace(t *testing.T) {
	vt := NewValueTrace(2, 16)
	feed(t, vt, 32)
	pcs := vt.PCs()
	if len(pcs) != 4 {
		t.Fatalf("PCs = %v", pcs)
	}
	s := vt.Series(0)
	if len(s) != 16 {
		t.Fatalf("series capped at MaxPts: got %d", len(s))
	}
	// Values from one PC evolve gradually (consecutive deltas are small).
	for i := 1; i < len(s); i++ {
		d := s[i].Value - s[i-1].Value
		if d < 0 {
			d = -d
		}
		if d > 100 {
			t.Fatalf("PC0 stream jumped by %d", d)
		}
		if s[i].Time <= s[i-1].Time {
			t.Fatal("logical time must increase")
		}
	}
	// Signed interpretation of 32-bit results.
	vt32 := NewValueTrace(0, 4)
	var one [32]gpusim.WarpAddOp
	one[0] = gpusim.WarpAddOp{Active: true, Sum: 0xFFFFFFFF}
	vt32.TraceWarpAdds(core.ALU32, 0, 0, &one)
	if vt32.Series(0)[0].Value != -1 {
		t.Error("ALU32 results should sign-extend")
	}
	// Other threads are ignored.
	vt2 := NewValueTrace(99, 4)
	feed(t, vt2, 4)
	if len(vt2.PCs()) != 0 {
		t.Error("ValueTrace leaked other threads")
	}
}

// The paper's Figure 3 ordering: Prev+Gtid (no PC) is much worse than
// Prev+FullPC+Gtid, and Ltid sharing is at least comparable to Gtid.
func TestCorrMeterOrdering(t *testing.T) {
	m, err := NewCorrMeter()
	if err != nil {
		t.Fatal(err)
	}
	feed(t, m, 400)
	rates := m.Rates()
	noPC, gtidPC, ltidPC := rates[0], rates[1], rates[2]
	if !(noPC < gtidPC) {
		t.Errorf("Prev+Gtid (%.3f) should trail Prev+FullPC+Gtid (%.3f)", noPC, gtidPC)
	}
	if gtidPC < 0.8 {
		t.Errorf("PC-indexed match rate %.3f; the paper reports ≈0.83", gtidPC)
	}
	if ltidPC < gtidPC-0.05 {
		t.Errorf("Ltid sharing (%.3f) should not trail Gtid (%.3f) badly", ltidPC, gtidPC)
	}
	if _, err := m.MatchRate("bogus"); err == nil {
		t.Error("unknown design should error")
	}
}

func TestDSEMeterFinalDesignWins(t *testing.T) {
	m, err := NewDSEMeter(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Designs) != len(speculate.DesignSpace) {
		t.Fatal("nil designs should default to the Figure 5 space")
	}
	feed(t, m, 400)
	final, err := m.MissRate(speculate.FinalDesign)
	if err != nil {
		t.Fatal(err)
	}
	valhalla, _ := m.MissRate("VaLHALLA")
	staticZero, _ := m.MissRate("staticZero")
	if final >= valhalla {
		t.Errorf("final design (%.3f) should beat VaLHALLA (%.3f)", final, valhalla)
	}
	if final >= staticZero {
		t.Errorf("final design (%.3f) should beat staticZero (%.3f)", final, staticZero)
	}
	if _, err := m.MissRate("bogus"); err == nil {
		t.Error("unknown design should error")
	}
	if _, err := m.Rate("bogus"); err == nil {
		t.Error("unknown design rate should error")
	}
	r, err := m.Rate(speculate.FinalDesign)
	if err != nil || r.Total == 0 {
		t.Error("raw rate should be populated")
	}
}

func TestDSEMeterUnknownDesignFails(t *testing.T) {
	if _, err := NewDSEMeter([]string{"nope"}); err == nil {
		t.Error("unknown design should fail construction")
	}
}

// End-to-end: attach all collectors to a real pathfinder simulation and
// confirm the Figure 2 PCs and Figure 3 ordering appear.
func TestTracersOnPathfinder(t *testing.T) {
	spec, err := kernels.Pathfinder(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 1
	cfg.AdderMode = gpusim.BaselineAdders
	d, err := gpusim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Setup(d.Memory()); err != nil {
		t.Fatal(err)
	}
	vt := NewValueTrace(5, 200)
	cm, err := NewCorrMeter()
	if err != nil {
		t.Fatal(err)
	}
	dse, err := NewDSEMeter([]string{"staticZero", speculate.FinalDesign})
	if err != nil {
		t.Fatal(err)
	}
	d.SetTracer(Multi{vt, cm, dse})
	if _, err := d.Launch(spec.Kernel); err != nil {
		t.Fatal(err)
	}
	if len(vt.PCs()) < 4 {
		t.Errorf("pathfinder thread should execute several add PCs, got %v", vt.PCs())
	}
	rates := cm.Rates()
	if rates[1] <= rates[0] {
		t.Errorf("FullPC bucketing (%.3f) should beat no-PC (%.3f) on pathfinder", rates[1], rates[0])
	}
	final, _ := dse.MissRate(speculate.FinalDesign)
	zero, _ := dse.MissRate("staticZero")
	if final >= zero {
		t.Errorf("final design (%.3f) should beat staticZero (%.3f) on pathfinder", final, zero)
	}
}

// A mispredict flagged by the DSE meter corresponds exactly to what the
// sliced adder would detect.
func TestDSEMeterMatchesAdderSemantics(t *testing.T) {
	m, err := NewDSEMeter([]string{"staticZero"})
	if err != nil {
		t.Fatal(err)
	}
	// 0xFF+0x01 produces a boundary carry staticZero always misses.
	var b1 [32]gpusim.WarpAddOp
	b1[0] = gpusim.WarpAddOp{Active: true, EA: 0xFF, EB: 0x01, Sum: 0x100}
	m.TraceWarpAdds(core.ALU, 0, 0, &b1)
	// 1+2 produces none (and peek is irrelevant to staticZero).
	var b2 [32]gpusim.WarpAddOp
	b2[0] = gpusim.WarpAddOp{Active: true, EA: 1, EB: 2, Sum: 3}
	m.TraceWarpAdds(core.ALU, 0, 0, &b2)
	r, _ := m.Rate("staticZero")
	if r.Hits != 1 || r.Total != 2 {
		t.Errorf("rate = %+v, want 1/2", r)
	}
	// Cross-check against ground truth.
	if bitmath.BoundaryCarriesPacked(0xFF, 0x01, 0, 64, 8) != 1 {
		t.Error("ground truth changed?")
	}
}

// The approximate-adder meter: peeked boundaries never corrupt results,
// wrong predictions do, and the final design corrupts far fewer results
// than staticZero on a correlated stream.
func TestApproxMeter(t *testing.T) {
	m, err := NewApproxMeter(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Designs) != 2 {
		t.Fatalf("default designs = %v", m.Designs)
	}
	feed(t, m, 300)
	zeroWrong, err := m.WrongRate("staticZero")
	if err != nil {
		t.Fatal(err)
	}
	finalWrong, err := m.WrongRate(speculate.FinalDesign)
	if err != nil {
		t.Fatal(err)
	}
	if finalWrong >= zeroWrong {
		t.Errorf("final design (%.3f wrong) should corrupt fewer results than staticZero (%.3f)",
			finalWrong, zeroWrong)
	}
	if _, err := m.WrongRate("bogus"); err == nil {
		t.Error("unknown design should error")
	}
	if _, err := m.MeanRelError("bogus"); err == nil {
		t.Error("unknown design should error")
	}
	if _, err := NewApproxMeter([]string{"nope"}); err == nil {
		t.Error("unknown design should fail construction")
	}
}

// Single-op sanity: a dropped carry produces exactly the expected wrong
// value, and the meter's relative-error tracking sees it.
func TestApproxMeterSingleOp(t *testing.T) {
	m, err := NewApproxMeter([]string{"staticZero"})
	if err != nil {
		t.Fatal(err)
	}
	// 0xC0 + 0x40 = 0x100; dropping the carry into slice 1 yields 0.
	// (MSBs disagree, so Peek cannot save staticZero here.)
	var b1 [32]gpusim.WarpAddOp
	b1[0] = gpusim.WarpAddOp{Active: true, EA: 0xC0, EB: 0x40, Sum: 0x100}
	m.TraceWarpAdds(core.ALU, 0, 0, &b1)
	wrong, _ := m.WrongRate("staticZero")
	if wrong != 1 {
		t.Fatalf("wrong rate = %v, want 1", wrong)
	}
	re, _ := m.MeanRelError("staticZero")
	if re != 1 { // |0-256|/256
		t.Errorf("relative error = %v, want 1", re)
	}
}

func TestChainMeter(t *testing.T) {
	m := NewChainMeter()
	// Small positive operands: chains stay inside one slice.
	var b1 [32]gpusim.WarpAddOp
	for l := 0; l < 8; l++ {
		b1[l] = gpusim.WarpAddOp{Active: true, EA: uint64(l), EB: 3}
	}
	m.TraceWarpAdds(core.ALU, 0, 0, &b1)
	if m.Ops != 8 {
		t.Fatalf("ops = %d", m.Ops)
	}
	if f := m.ShortChainFraction(); f != 1 {
		t.Errorf("small operands should all be short-chain: %.2f", f)
	}
	// Crossing zero from a negative value ripples the carry to the top
	// (the paper's PC3-style full-width chain).
	var b2 [32]gpusim.WarpAddOp
	b2[0] = gpusim.WarpAddOp{Active: true, EA: ^uint64(0), EB: 2} // -1 + 2
	m.TraceWarpAdds(core.ALU, 1, 0, &b2)
	if m.MeanChainLength() <= 1 {
		t.Errorf("negative result should lengthen the mean chain: %.2f", m.MeanChainLength())
	}
	if m.BoundaryCarryRate[6].Hits == 0 {
		t.Error("negative result should carry at the top boundary")
	}
	if m.Lengths[core.ALU].Total() != 9 {
		t.Errorf("histogram total = %d", m.Lengths[core.ALU].Total())
	}
}

// End-to-end on pathfinder: the Section III observation — most adds have
// chains within one slice.
func TestChainMeterOnPathfinder(t *testing.T) {
	spec, err := kernels.Pathfinder(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 1
	cfg.AdderMode = gpusim.BaselineAdders
	d, err := gpusim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Setup(d.Memory()); err != nil {
		t.Fatal(err)
	}
	m := NewChainMeter()
	d.SetTracer(m)
	if _, err := d.Launch(spec.Kernel); err != nil {
		t.Fatal(err)
	}
	if m.Ops == 0 {
		t.Fatal("no ops traced")
	}
	short := m.ShortChainFraction()
	t.Logf("pathfinder: %.1f%% of chains fit in one slice (mean %.2f bits)",
		100*short, m.MeanChainLength())
	if short < 0.5 {
		t.Errorf("pathfinder's small-value adds should mostly be short-chain: %.2f", short)
	}
}
