package trace

import (
	"st2gpu/internal/core"
	"st2gpu/internal/gpusim"
)

// Multi fans one adder-operation stream out to several collectors, so a
// single simulation pass can feed Figure 2, Figure 3 and the DSE at once.
type Multi []gpusim.AddTracer

// TraceWarpAdds implements gpusim.AddTracer.
func (m Multi) TraceWarpAdds(kind core.UnitKind, pc, gtidBase uint32, ops *[32]gpusim.WarpAddOp) {
	for _, t := range m {
		t.TraceWarpAdds(kind, pc, gtidBase, ops)
	}
}
