package trace

import (
	"reflect"
	"strings"
	"testing"

	"st2gpu/internal/core"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/kernels"
	"st2gpu/internal/speculate"
)

// recordPathfinder captures a real pathfinder run into a one-kernel Set.
func recordPathfinder(t testing.TB) *Set {
	t.Helper()
	spec, err := kernels.Pathfinder(1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := gpusim.DefaultConfig()
	cfg.NumSMs = 2
	cfg.AdderMode = gpusim.BaselineAdders
	cfg.Seed = 1
	d, err := gpusim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Setup(d.Memory()); err != nil {
		t.Fatal(err)
	}
	rec := gpusim.NewRecorder(0)
	d.SetRecorder(rec)
	if _, err := d.Launch(spec.Kernel); err != nil {
		t.Fatal(err)
	}
	set := NewSet(1, 2, 1)
	set.Add("pathfinder", rec.Recording())
	return set
}

// captureTracer stores the full delivered stream for deep comparison.
type captureTracer struct {
	kinds []core.UnitKind
	pcs   []uint32
	bases []uint32
	ops   [][32]gpusim.WarpAddOp
}

func (c *captureTracer) TraceWarpAdds(kind core.UnitKind, pc, base uint32, ops *[32]gpusim.WarpAddOp) {
	c.kinds = append(c.kinds, kind)
	c.pcs = append(c.pcs, pc)
	c.bases = append(c.bases, base)
	c.ops = append(c.ops, *ops)
}

// TestDecodedEvalMatchesMeterReplay pins the tentpole guarantee: every
// decoded evaluation (miss, correlation, approx) is bit-identical to
// replaying the recording through the corresponding live meter, for a
// real kernel stream.
func TestDecodedEvalMatchesMeterReplay(t *testing.T) {
	set := recordPathfinder(t)
	dec, err := DecodeSet(set)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := set.Get("pathfinder")
	k, ok := dec.Kernel("pathfinder")
	if !ok {
		t.Fatal("decoded set lost the kernel")
	}
	if k.NumRecords() != int(rec.NumOps()) {
		t.Fatalf("decoded %d records, recording holds %d", k.NumRecords(), rec.NumOps())
	}

	designs := append(append([]string{}, speculate.DesignSpace...), "oracle")
	meter, err := NewDSEMeter(designs)
	if err != nil {
		t.Fatal(err)
	}
	if err := Replay(rec, meter); err != nil {
		t.Fatal(err)
	}
	for _, d := range designs {
		want, _ := meter.Rate(d)
		got, err := k.EvalMiss(d)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("EvalMiss(%q) = %+v, meter replay = %+v", d, got, want)
		}
	}

	cm, err := NewCorrMeter()
	if err != nil {
		t.Fatal(err)
	}
	if err := Replay(rec, cm); err != nil {
		t.Fatal(err)
	}
	for _, d := range Fig3Designs {
		want, _ := cm.RawRate(d)
		got, err := k.EvalCorr(d)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("EvalCorr(%q) = %+v, meter replay = %+v", d, got, want)
		}
	}

	approxDesigns := []string{"staticZero", "CASA", speculate.FinalDesign}
	am, err := NewApproxMeter(approxDesigns)
	if err != nil {
		t.Fatal(err)
	}
	if err := Replay(rec, am); err != nil {
		t.Fatal(err)
	}
	for _, d := range approxDesigns {
		wantWrong, _ := am.WrongRate(d)
		wantRE, _ := am.MeanRelError(d)
		got, err := k.EvalApprox(d)
		if err != nil {
			t.Fatal(err)
		}
		if got.Wrong.Value() != wantWrong || got.MeanRelErr != wantRE {
			t.Errorf("EvalApprox(%q) = (%v, %v), meter replay = (%v, %v)",
				d, got.Wrong.Value(), got.MeanRelErr, wantWrong, wantRE)
		}
	}

	if _, err := k.EvalMiss("bogus"); err == nil {
		t.Error("EvalMiss should reject unknown designs")
	}
	if _, err := k.EvalCorr("bogus"); err == nil {
		t.Error("EvalCorr should reject unknown designs")
	}
	if _, err := k.EvalApprox("bogus"); err == nil {
		t.Error("EvalApprox should reject unknown designs")
	}
}

// TestDecodedReplayMatchesRecordingReplay: the decoded form reconstructs
// the exact legacy tracer stream.
func TestDecodedReplayMatchesRecordingReplay(t *testing.T) {
	set := recordPathfinder(t)
	dec, err := DecodeSet(set)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := set.Get("pathfinder")
	k, _ := dec.Kernel("pathfinder")

	var fromRec, fromDec captureTracer
	if err := rec.Replay(&fromRec); err != nil {
		t.Fatal(err)
	}
	k.Replay(&fromDec)
	if !reflect.DeepEqual(fromRec, fromDec) {
		t.Fatal("decoded replay stream differs from recording replay stream")
	}
	if dec.NumOps() != rec.NumOps() {
		t.Errorf("NumOps = %d, want %d", dec.NumOps(), rec.NumOps())
	}
	if dec.NumLanes() == 0 || int(dec.NumLanes()) != k.NumLanes() {
		t.Errorf("NumLanes = %d, kernel holds %d", dec.NumLanes(), k.NumLanes())
	}
}

// TestMatchesArms covers every mismatch arm of Set.Matches (and the
// Decoded mirror): each error must name both the captured and the
// requested value, and the kernel-list check must name the missing
// kernel.
func TestMatchesArms(t *testing.T) {
	s := NewSet(2, 4, 7)
	s.Add("pathfinder", &gpusim.Recording{})
	if err := s.Matches(2, 4, 7); err != nil {
		t.Fatalf("matching config rejected: %v", err)
	}
	cases := []struct {
		name                string
		scale, sms          int
		seed                int64
		wantField, wantVals string
	}{
		{"scale", 3, 4, 7, "scale mismatch", "captured scale=2, replay requested scale=3"},
		{"sms", 2, 8, 7, "SM-count mismatch", "captured sms=4, replay requested sms=8"},
		{"seed", 2, 4, 9, "seed mismatch", "captured seed=7, replay requested seed=9"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := s.Matches(c.scale, c.sms, c.seed)
			if err == nil {
				t.Fatal("mismatch accepted")
			}
			if !strings.Contains(err.Error(), c.wantField) || !strings.Contains(err.Error(), c.wantVals) {
				t.Errorf("error %q should contain %q and %q", err, c.wantField, c.wantVals)
			}
		})
	}
	// Kernel-list arm: present kernels pass, missing kernels are named.
	if err := s.MatchesKernels([]string{"pathfinder"}); err != nil {
		t.Errorf("present kernel rejected: %v", err)
	}
	err := s.MatchesKernels([]string{"pathfinder", "bfs"})
	if err == nil {
		t.Fatal("missing kernel accepted")
	}
	if !strings.Contains(err.Error(), `"bfs"`) || !strings.Contains(err.Error(), "kernel-list mismatch") {
		t.Errorf("kernel-list error %q should name the missing kernel", err)
	}
	// The decoded form carries the same stamp and the same arm errors.
	dec, err := DecodeSet(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Matches(2, 4, 7); err != nil {
		t.Fatalf("decoded matching config rejected: %v", err)
	}
	if err := dec.Matches(1, 4, 7); err == nil || !strings.Contains(err.Error(), "captured scale=2") {
		t.Errorf("decoded scale arm error = %v", err)
	}
}
