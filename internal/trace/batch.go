package trace

import (
	"math/bits"

	"st2gpu/internal/bitmath"
	"st2gpu/internal/core"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/speculate"
	"st2gpu/internal/stats"
)

// warpRec is the canonical flat form of one warp-synchronous record: the
// lane masks plus per-active-lane operands, exact sums and (unmasked)
// boundary carry-outs in ascending lane order — the j-th set bit of
// active owns index j. Both the live AddTracer meters (via warpScratch)
// and the decoded SoA caches (via DecodedKernel views) produce this form
// and run the same eval steps below, which is what makes decoded
// evaluation bit-identical to live metering by construction.
type warpRec struct {
	kind        core.UnitKind
	pc, base    uint32
	active, cin uint32
	ea, eb, sum []uint64
	carries     []uint64 // 7-boundary carry-outs, kind mask applied at eval
}

// evalScratch is the per-evaluator lane scratch reused across records.
type evalScratch struct {
	carries, static, actual [32]uint64
}

// warpScratch compacts the dense [32]WarpAddOp tracer form into a
// warpRec, computing each lane's boundary carry-outs once per record (the
// meters then share them across every design).
type warpScratch struct {
	rec                  warpRec
	ea, eb, sum, carries [32]uint64
	eval                 evalScratch
}

func (w *warpScratch) compact(kind core.UnitKind, pc, base uint32, ops *[32]gpusim.WarpAddOp) *warpRec {
	var active, cin uint32
	n := 0
	for l := 0; l < 32; l++ {
		op := &ops[l]
		if !op.Active {
			continue
		}
		active |= 1 << l
		cin |= uint32(op.Cin0&1) << l
		w.ea[n], w.eb[n], w.sum[n] = op.EA, op.EB, op.Sum
		w.carries[n] = bitmath.BoundaryCarriesPacked(op.EA, op.EB, op.Cin0, 64, 8)
		n++
	}
	w.rec = warpRec{
		kind: kind, pc: pc, base: base, active: active, cin: cin,
		ea: w.ea[:n], eb: w.eb[:n], sum: w.sum[:n], carries: w.carries[:n],
	}
	return &w.rec
}

// nonZeroBit returns 1 when x != 0 and 0 otherwise, without a branch.
func nonZeroBit(x uint64) uint64 { return (x | -x) >> 63 }

// dseStep evaluates one design on one warp record with Figure 5
// semantics: predictions for every lane come from the pre-update state,
// a lane mispredicts when any non-Peek boundary was speculated wrong,
// and mispredicting lanes write back. The judge loop is branchless.
func dseStep(p speculate.Predictor, miss *stats.Rate, r *warpRec, s *evalScratch) {
	mask := bitmath.Mask(boundariesOf(r.kind))
	n := len(r.ea)
	carries, static := s.carries[:n], s.static[:n]
	speculate.PredictWarp(p, r.pc, r.base, r.active, r.cin, r.ea, r.eb, carries, static)
	actual := s.actual[:n]
	for j := 0; j < n; j++ {
		actual[j] = r.carries[j] & mask
	}
	mispred, missed := speculate.JudgeMissWarp(r.active, mask, carries, static, actual)
	miss.Add(missed, uint64(n))
	speculate.UpdateWarp(p, r.pc, r.base, r.active, mispred, r.cin, r.ea, r.eb, s.actual[:n])
}

// corrStep evaluates one Figure 3 scheme on one warp record: per-boundary
// match tallies against the pre-update history, then every active lane
// writes back (the correlation analysis compares with the immediately
// preceding operation, so history updates unconditionally).
func corrStep(p speculate.Predictor, match *stats.Rate, r *warpRec, s *evalScratch) {
	nb := boundariesOf(r.kind)
	mask := bitmath.Mask(nb)
	n := len(r.ea)
	carries, static := s.carries[:n], s.static[:n]
	speculate.PredictWarp(p, r.pc, r.base, r.active, r.cin, r.ea, r.eb, carries, static)
	actual := s.actual[:n]
	for j := 0; j < n; j++ {
		actual[j] = r.carries[j] & mask
	}
	matched := speculate.JudgeCorrWarp(nb, mask, carries, actual)
	match.Add(matched, uint64(nb)*uint64(n))
	speculate.UpdateWarp(p, r.pc, r.base, r.active, r.active, r.cin, r.ea, r.eb, s.actual[:n])
}

// approxStep evaluates one design on one warp record with the
// approximate-adder (no-correction) semantics: Peek-resolved boundaries
// are exact, dynamic ones use whatever was predicted, and the
// uncorrected result is compared against the exact sum. relErr
// accumulates in ascending lane order (floating-point sums are
// order-sensitive, and this is the order the sequential path used).
func approxStep(p speculate.Predictor, wrong *stats.Rate, relErr *runningMean, r *warpRec, s *evalScratch) {
	width := widthOf(r.kind)
	mask := bitmath.Mask(bitmath.NumSlices(width, 8) - 1)
	n := len(r.ea)
	carries, static := s.carries[:n], s.static[:n]
	speculate.PredictWarp(p, r.pc, r.base, r.active, r.cin, r.ea, r.eb, carries, static)
	var mispred uint32
	var wrongResults uint64
	j := 0
	for m := r.active; m != 0; m &= m - 1 {
		l := bits.TrailingZeros32(m)
		actual := r.carries[j] & mask
		s.actual[j] = actual
		used := (carries[j] &^ static[j]) | (actual & static[j] & mask)
		got := approxSum(r.ea[j], r.eb[j], uint(r.cin>>l&1), width, used)
		mispred |= uint32(nonZeroBit((carries[j]^actual)&mask&^static[j])) << l
		if got != r.sum[j] {
			wrongResults++
			relErr.addRelative(got, r.sum[j])
		}
		j++
	}
	wrong.Add(wrongResults, uint64(n))
	speculate.UpdateWarp(p, r.pc, r.base, r.active, mispred, r.cin, r.ea, r.eb, s.actual[:n])
}
