package trace

import (
	"st2gpu/internal/bitmath"
	"st2gpu/internal/core"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/stats"
)

// ChainMeter quantifies Section III's carry-chain observation: operations
// on small positive numbers yield short chains, negative results ripple to
// the top. It histograms the carry-propagation chain length of every
// traced addition, per unit kind, and tracks how many operations carry at
// all at each slice boundary.
type ChainMeter struct {
	// Lengths[kind] histograms the longest propagate run per operation
	// (0..64 bits; bin 64 is the full-width ripple of a sign change).
	Lengths map[core.UnitKind]*stats.Histogram
	// BoundaryCarryRate[i] is the fraction of operations whose carry into
	// slice i+1 is set — the raw signal the predictors fight over.
	BoundaryCarryRate [7]stats.Rate
	// Ops counts traced lane operations.
	Ops uint64
}

// NewChainMeter builds the meter.
func NewChainMeter() *ChainMeter {
	return &ChainMeter{Lengths: make(map[core.UnitKind]*stats.Histogram)}
}

// TraceWarpAdds implements gpusim.AddTracer.
func (m *ChainMeter) TraceWarpAdds(kind core.UnitKind, _, _ uint32, ops *[32]gpusim.WarpAddOp) {
	h := m.Lengths[kind]
	if h == nil {
		h = stats.NewHistogram(64)
		m.Lengths[kind] = h
	}
	width := widthOf(kind)
	nb := bitmath.NumSlices(width, 8) - 1
	for l := 0; l < 32; l++ {
		if !ops[l].Active {
			continue
		}
		m.Ops++
		h.Observe(int(bitmath.CarryChainLength(ops[l].EA, ops[l].EB, ops[l].Cin0, width)))
		carries := bitmath.BoundaryCarriesPacked(ops[l].EA, ops[l].EB, ops[l].Cin0, 64, 8)
		for i := uint(0); i < nb && i < 7; i++ {
			m.BoundaryCarryRate[i].AddBool(carries>>i&1 == 1)
		}
	}
}

// MeanChainLength returns the mean chain length across all unit kinds.
func (m *ChainMeter) MeanChainLength() float64 {
	var sum float64
	var n uint64
	// Canonical kind order: float accumulation re-rounds under
	// reordering, so map iteration order must not reach the result.
	for _, kind := range core.UnitKinds {
		h, ok := m.Lengths[kind]
		if !ok {
			continue
		}
		sum += h.Mean() * float64(h.Total())
		n += h.Total()
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ShortChainFraction returns the fraction of operations whose chain fits
// within one 8-bit slice — the regime where per-slice speculation is
// trivially safe.
func (m *ChainMeter) ShortChainFraction() float64 {
	var short, n uint64
	for _, h := range m.Lengths {
		for v, c := range h.Counts {
			if v < 8 {
				short += c
			}
			n += c
		}
	}
	if n == 0 {
		return 0
	}
	return float64(short) / float64(n)
}
