package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"st2gpu/internal/gpusim"
)

// storeHeaderBytes hand-rolls a store header + one-kernel section table
// with the given declared sizes, so budget tests control the exact
// declarations under test without materializing the declared bytes.
func storeHeaderBytes(records, lanes uint32, sectLen, tableLen uint64, withTable bool) []byte {
	var b []byte
	b = append(b, storeMagicStr...)
	b = binary.LittleEndian.AppendUint32(b, storeBOM)
	b = binary.LittleEndian.AppendUint32(b, 1) // scale
	b = binary.LittleEndian.AppendUint32(b, 2) // numSMs
	b = binary.LittleEndian.AppendUint64(b, 1) // seed
	b = binary.LittleEndian.AppendUint32(b, 0) // flags (derived omitted)
	b = binary.LittleEndian.AppendUint32(b, 1) // one kernel
	if !withTable {
		b = binary.LittleEndian.AppendUint64(b, tableLen)
		return b
	}
	var table []byte
	table = binary.LittleEndian.AppendUint16(table, 4)
	table = append(table, "huge"...)
	table = binary.LittleEndian.AppendUint32(table, records)
	table = binary.LittleEndian.AppendUint32(table, lanes)
	table = binary.LittleEndian.AppendUint64(table, sectLen)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(table)))
	b = append(b, table...)
	return b
}

// TestNoLimitReadersDefaultBudget pins the budget-hardening contract:
// the no-limit store entry points (ReadDecoded, ReadStoreFile,
// OpenStore, LoadKernels) all default to gpusim.DefaultRecordMaxBytes
// rather than an unlimited budget, so a corrupt input declaring
// gigabytes fails with ErrStoreTooBig before any length-sized
// allocation.
func TestNoLimitReadersDefaultBudget(t *testing.T) {
	writeTemp := func(name string, data []byte) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	// A section table declared just past the 1 GiB default: every entry
	// point must refuse before allocating it.
	hugeTable := storeHeaderBytes(0, 0, 0, gpusim.DefaultRecordMaxBytes+1, false)
	hugeTablePath := writeTemp("huge_table.st2dec", hugeTable)
	if _, err := ReadDecoded(bytes.NewReader(hugeTable)); !errors.Is(err, ErrStoreTooBig) {
		t.Errorf("ReadDecoded(huge table) = %v, want ErrStoreTooBig under the default budget", err)
	}
	if _, err := ReadStoreFile(hugeTablePath); !errors.Is(err, ErrStoreTooBig) {
		t.Errorf("ReadStoreFile(huge table) = %v, want ErrStoreTooBig under the default budget", err)
	}
	if _, err := OpenStore(hugeTablePath, 0); !errors.Is(err, ErrStoreTooBig) {
		t.Errorf("OpenStore(huge table) = %v, want ErrStoreTooBig under the default budget", err)
	}

	// A decode bomb: a 1 KiB payload whose declared record/lane counts
	// would decode into >70 GiB of columns. The full readers refuse at
	// the table; the handle opens fine (it reads no payloads) but must
	// refuse the load under its default budget.
	bomb := storeHeaderBytes(1<<30, 1<<31, 1<<10, 0, true)
	bomb = append(bomb, make([]byte, 1<<10)...)
	bombPath := writeTemp("bomb.st2dec", bomb)
	if _, err := ReadDecoded(bytes.NewReader(bomb)); !errors.Is(err, ErrStoreTooBig) {
		t.Errorf("ReadDecoded(decode bomb) = %v, want ErrStoreTooBig under the default budget", err)
	}
	if _, err := ReadStoreFile(bombPath); !errors.Is(err, ErrStoreTooBig) {
		t.Errorf("ReadStoreFile(decode bomb) = %v, want ErrStoreTooBig under the default budget", err)
	}
	h, err := OpenStore(bombPath, 0)
	if err != nil {
		t.Fatalf("OpenStore(decode bomb) = %v, want success (no payload is read at open)", err)
	}
	if _, err := h.LoadKernels([]string{"huge"}, 0); !errors.Is(err, ErrStoreTooBig) {
		t.Errorf("LoadKernels(decode bomb) = %v, want ErrStoreTooBig under the default budget", err)
	}
}
