// The on-disk columnar decoded-trace store: st2gpu.decoded/v1.
//
// A Decoded set is the decode-once structure-of-arrays form of a
// recording set — every sweep strategy walks its flat columns. The store
// persists exactly those columns so a sweep process pays the varint
// decode (and the carry/sum reconstruction behind it) once, ever: loading
// is a sequential read of bit-packed columns, not a re-decode.
//
// Layout (all fixed-width integers little-endian):
//
//	magic    "st2gpu.decoded/v1\n"            (18 bytes)
//	bom      uint32 = 0x01020304              (byte-order tripwire)
//	scale    uint32  │
//	numSMs   uint32  │ capture config — checked by Decoded.Matches with
//	seed     uint64  │ the same per-field errors Set.Matches reports
//	flags    uint32  (bit0: Sum columns stored, bit1: Carries stored)
//	kernels  uint32
//	tableLen uint64  (section-table bytes, budget-checked before read)
//
// then the section table — per kernel, in Set insertion order:
//
//	nameLen  uint16, name bytes
//	records  uint32, lanes uint32   (column lengths, sanity-checked)
//	sectLen  uint64                 (payload bytes, budget-checked)
//
// then the section payloads, concatenated in table order. A section is
// the kernel's columns back to back, each encoded as frame-of-reference
// + narrow-width bit-packing in blocks of colBlock values (ref uint64,
// width byte, then ceil(n·width/8) packed bytes — one operand outlier
// widens at most its own block):
//
//	Kind, ΔPC (zigzag), ΔGtidBase (zigzag), Active, Cin   over records
//	EA, EB                                                over lanes
//	Sum, Carries (iff stored by flags)                    over lanes
//
// Off is never stored: it is the prefix sum of popcount(Active). When
// the writer omitted Sum/Carries (StoreOptions.OmitDerived), the loader
// recomputes them exactly as decodeKernel does, so the loaded Decoded is
// bit-identical to DecodeSet output either way. Sections encode and load
// on a bounded worker pool and fold in insertion order, so the bytes and
// the loaded form are independent of the worker count.
//
// Version policy: any wire change bumps the magic (…/v2) and this
// package keeps reading every version it ever wrote or fails with an
// error naming both versions — a store is a cache of a recording, so a
// reader that cannot load one regenerates it rather than guessing.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"os"
	"runtime"
	"strings"
	"sync"

	"st2gpu/internal/bitmath"
	"st2gpu/internal/core"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/obs"
)

// storeMagic names the format and its version; storeVersionPrefix lets
// the reader distinguish "not a store at all" from "a store this build
// is too old (or too new) to read".
const (
	storeVersionPrefix = "st2gpu.decoded/"
	storeMagicStr      = storeVersionPrefix + "v1\n"
	storeBOM           = uint32(0x01020304)
)

// Store header flag bits.
const (
	storeHasSum     = 1 << 0
	storeHasCarries = 1 << 1
)

// colBlock is the FOR/bit-packing block size: small enough that one
// outlier operand widens only its own 4096 values, large enough that the
// 9-byte block header amortizes away.
const colBlock = 4096

// ErrStoreTooBig marks a store whose declared section-table or column
// payload lengths exceed the reader's byte budget. Like
// gpusim.ErrRecordingTooBig it fires before any length-sized allocation,
// so a corrupt or hostile header cannot trigger a multi-GiB make.
var ErrStoreTooBig = errors.New("trace: decoded store exceeds byte budget")

// StoreOptions parameterizes WriteDecoded.
type StoreOptions struct {
	// OmitDerived drops the Sum and Carries columns from the file; loads
	// recompute them from EA/EB/Cin (smaller file, slower load). Either
	// way the loaded Decoded is bit-identical to DecodeSet output.
	OmitDerived bool
	// Workers bounds the section-encode worker pool (0 = GOMAXPROCS).
	// The written bytes are identical at any count.
	Workers int
}

// storeWorkers resolves a worker-count knob.
func storeWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// --- column encoding ---

// appendColumn appends vals as FOR/bit-packed blocks.
func appendColumn(dst []byte, vals []uint64) []byte {
	for lo := 0; lo < len(vals); lo += colBlock {
		hi := lo + colBlock
		if hi > len(vals) {
			hi = len(vals)
		}
		block := vals[lo:hi]
		ref := block[0]
		for _, v := range block {
			if v < ref {
				ref = v
			}
		}
		var maxDelta uint64
		for _, v := range block {
			if d := v - ref; d > maxDelta {
				maxDelta = d
			}
		}
		width := uint(bits.Len64(maxDelta))
		dst = binary.LittleEndian.AppendUint64(dst, ref)
		dst = append(dst, byte(width))
		if width == 0 {
			continue
		}
		var acc uint64
		var nb uint
		for _, v := range block {
			d := v - ref
			acc |= d << nb
			if nb+width >= 64 {
				dst = binary.LittleEndian.AppendUint64(dst, acc)
				acc = d >> (64 - nb) // 0 when nb == 0 (Go over-shift)
				nb = nb + width - 64
			} else {
				nb += width
			}
		}
		for nb > 0 {
			dst = append(dst, byte(acc))
			acc >>= 8
			if nb >= 8 {
				nb -= 8
			} else {
				nb = 0
			}
		}
	}
	return dst
}

// le64Padded reads 8 little-endian bytes at i, zero-padding past the end
// of b — the tail of a packed block spans fewer than 8 real bytes.
func le64Padded(b []byte, i int) uint64 {
	if i+8 <= len(b) {
		return binary.LittleEndian.Uint64(b[i:])
	}
	var v uint64
	for k := 0; k < 8 && i+k < len(b); k++ {
		v |= uint64(b[i+k]) << (8 * uint(k))
	}
	return v
}

// readColumn unpacks len(out) values from buf at *pos, advancing it.
func readColumn(buf []byte, pos *int, out []uint64) error {
	for lo := 0; lo < len(out); lo += colBlock {
		hi := lo + colBlock
		if hi > len(out) {
			hi = len(out)
		}
		n := hi - lo
		if len(buf)-*pos < 9 {
			return fmt.Errorf("truncated column block header at offset %d", *pos)
		}
		ref := binary.LittleEndian.Uint64(buf[*pos:])
		width := uint(buf[*pos+8])
		*pos += 9
		if width > 64 {
			return fmt.Errorf("column block declares %d-bit values (max 64)", width)
		}
		block := out[lo:hi]
		if width == 0 {
			for i := range block {
				block[i] = ref
			}
			continue
		}
		plen := (n*int(width) + 7) / 8
		if len(buf)-*pos < plen {
			return fmt.Errorf("column block declares %d packed bytes with %d present", plen, len(buf)-*pos)
		}
		packed := buf[*pos : *pos+plen]
		*pos += plen
		unpackBlock(packed, width, ref, block)
	}
	return nil
}

// unpackBlock is the store loader's hot loop: it undoes one appendColumn
// block. Narrow widths (the common case — deltas, masks, FOR-reduced
// operands) stream through a 64-bit reservoir refilled 32 bits at a
// time, ~one load per two values; wide values take two unchecked loads
// each. Both paths are branch-predictable: no data-dependent branch sits
// inside either loop.
func unpackBlock(packed []byte, width uint, ref uint64, block []uint64) {
	mask := bitmath.Mask(width)
	plen := len(packed)
	if width <= 32 {
		var res uint64 // bit reservoir, low nb bits valid
		var nb uint
		s := 0
		for i := range block {
			if nb < width {
				if s+4 <= plen {
					res |= uint64(binary.LittleEndian.Uint32(packed[s:])) << nb
					s += 4
					nb += 32
				} else {
					// Tail: at most the last few values. The encoder wrote
					// every one of the block's n·width bits, so byte-wise
					// refill always reaches nb ≥ width before s runs out.
					for s < plen && nb <= 56 {
						res |= uint64(packed[s]) << nb
						s++
						nb += 8
					}
				}
			}
			block[i] = ref + (res & mask)
			res >>= width
			nb -= width
		}
		return
	}
	// Wide values: a 9-byte window covers any (shift, width ≤ 64) pair.
	// The OR of the ninth byte is unconditional — when shift+width ≤ 64
	// its bits land at positions ≥ width and the mask strips them (and a
	// shift by 64 is 0 by Go's shift semantics).
	fast := 0
	if plen >= 9 {
		fast = ((plen-9)*8)/int(width) + 1
		if fast > len(block) {
			fast = len(block)
		}
	}
	bitpos := uint(0)
	for i := 0; i < fast; i++ {
		p := packed[bitpos>>3 : bitpos>>3+9]
		shift := bitpos & 7
		v := binary.LittleEndian.Uint64(p)>>shift | uint64(p[8])<<(64-shift)
		block[i] = ref + (v & mask)
		bitpos += width
	}
	for i := fast; i < len(block); i++ {
		byteIdx := int(bitpos >> 3)
		shift := bitpos & 7
		v := le64Padded(packed, byteIdx) >> shift
		if shift+width > 64 && byteIdx+8 < plen {
			v |= uint64(packed[byteIdx+8]) << (64 - shift)
		}
		block[i] = ref + (v & mask)
		bitpos += width
	}
}

// --- section encoding ---

// encodeSection serializes one kernel's columns.
func encodeSection(k *DecodedKernel, omitDerived bool) []byte {
	nrec := k.NumRecords()
	scratch := make([]uint64, nrec)
	// Rough estimate: masks/kinds pack tightly, operands dominate.
	dst := make([]byte, 0, 8*k.NumLanes()+4*nrec+64)

	for i, kind := range k.Kind {
		scratch[i] = uint64(kind)
	}
	dst = appendColumn(dst, scratch)
	var prev uint32
	for i, pc := range k.PC {
		scratch[i] = zigzag64(int64(pc) - int64(prev))
		prev = pc
	}
	dst = appendColumn(dst, scratch)
	prev = 0
	for i, base := range k.GtidBase {
		scratch[i] = zigzag64(int64(base) - int64(prev))
		prev = base
	}
	dst = appendColumn(dst, scratch)
	for i, a := range k.Active {
		scratch[i] = uint64(a)
	}
	dst = appendColumn(dst, scratch)
	for i, c := range k.Cin {
		scratch[i] = uint64(c)
	}
	dst = appendColumn(dst, scratch)

	dst = appendColumn(dst, k.EA)
	dst = appendColumn(dst, k.EB)
	if !omitDerived {
		dst = appendColumn(dst, k.Sum)
		dst = appendColumn(dst, k.Carries)
	}
	return dst
}

// decodeSection rebuilds one kernel from its columns. The result is
// bit-identical to decodeKernel's output for the same stream.
func decodeSection(buf []byte, nrec, nlanes int, hasSum, hasCarries bool) (*DecodedKernel, error) {
	k := &DecodedKernel{
		Kind:     make([]core.UnitKind, nrec),
		PC:       make([]uint32, nrec),
		GtidBase: make([]uint32, nrec),
		Active:   make([]uint32, nrec),
		Cin:      make([]uint32, nrec),
		Off:      make([]uint32, nrec+1),
		EA:       make([]uint64, nlanes),
		EB:       make([]uint64, nlanes),
		Sum:      make([]uint64, nlanes),
		Carries:  make([]uint64, nlanes),
	}
	pos := 0
	scratch := make([]uint64, nrec)

	if err := readColumn(buf, &pos, scratch); err != nil {
		return nil, fmt.Errorf("kind column: %w", err)
	}
	for i, v := range scratch {
		if v >= uint64(len(core.UnitKinds)) {
			return nil, fmt.Errorf("kind column: record %d declares unit kind %d", i, v)
		}
		k.Kind[i] = core.UnitKind(v)
	}
	if err := readColumn(buf, &pos, scratch); err != nil {
		return nil, fmt.Errorf("pc column: %w", err)
	}
	var prev uint32
	for i, v := range scratch {
		prev = uint32(int64(prev) + unzigzag64(v))
		k.PC[i] = prev
	}
	if err := readColumn(buf, &pos, scratch); err != nil {
		return nil, fmt.Errorf("gtidBase column: %w", err)
	}
	prev = 0
	for i, v := range scratch {
		prev = uint32(int64(prev) + unzigzag64(v))
		k.GtidBase[i] = prev
	}
	if err := readColumn(buf, &pos, scratch); err != nil {
		return nil, fmt.Errorf("active column: %w", err)
	}
	var laneTotal uint64
	for i, v := range scratch {
		if v == 0 || v > uint64(^uint32(0)) {
			return nil, fmt.Errorf("active column: record %d mask %#x is empty or wider than a warp", i, v)
		}
		k.Active[i] = uint32(v)
		laneTotal += uint64(bits.OnesCount32(uint32(v)))
		k.Off[i+1] = uint32(laneTotal)
	}
	if laneTotal != uint64(nlanes) {
		return nil, fmt.Errorf("active masks hold %d lanes, section header declares %d", laneTotal, nlanes)
	}
	if err := readColumn(buf, &pos, scratch); err != nil {
		return nil, fmt.Errorf("cin column: %w", err)
	}
	for i, v := range scratch {
		if v > uint64(^uint32(0)) {
			return nil, fmt.Errorf("cin column: record %d mask %#x is wider than a warp", i, v)
		}
		k.Cin[i] = uint32(v)
	}

	if err := readColumn(buf, &pos, k.EA); err != nil {
		return nil, fmt.Errorf("ea column: %w", err)
	}
	if err := readColumn(buf, &pos, k.EB); err != nil {
		return nil, fmt.Errorf("eb column: %w", err)
	}
	if hasSum {
		if err := readColumn(buf, &pos, k.Sum); err != nil {
			return nil, fmt.Errorf("sum column: %w", err)
		}
	}
	if hasCarries {
		if err := readColumn(buf, &pos, k.Carries); err != nil {
			return nil, fmt.Errorf("carries column: %w", err)
		}
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("section holds %d trailing bytes", len(buf)-pos)
	}
	if !hasSum || !hasCarries {
		deriveLaneColumns(k, !hasSum, !hasCarries)
	}
	return k, nil
}

// deriveLaneColumns recomputes the Sum and/or Carries columns exactly as
// decodeKernel does: Sum = EA + EB + Cin0 over the unit width, Carries =
// the packed 8-bit-slice boundary carry-outs of the full 64-bit add.
func deriveLaneColumns(k *DecodedKernel, sum, carries bool) {
	j := 0
	for i, kind := range k.Kind {
		width := widthOf(kind)
		for m := k.Active[i]; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			cin := uint(k.Cin[i] >> l & 1)
			if sum {
				k.Sum[j], _ = bitmath.AddWithCarry(k.EA[j], k.EB[j], cin, width)
			}
			if carries {
				k.Carries[j] = bitmath.BoundaryCarriesPacked(k.EA[j], k.EB[j], cin, 64, 8)
			}
			j++
		}
	}
}

// --- writer ---

// WriteDecoded serializes the decoded set in st2gpu.decoded/v1 form.
// Deterministic: equal sets (and equal options) write equal bytes at any
// opts.Workers count.
func WriteDecoded(w io.Writer, d *Decoded, opts StoreOptions) (int64, error) {
	return WriteDecodedTraced(w, d, opts, nil)
}

// WriteDecodedTraced is WriteDecoded with a store.encode span annotated
// with the kernel, record, lane, and byte totals. Spans are
// observability-only; a nil tracer writes identical bytes.
func WriteDecodedTraced(w io.Writer, d *Decoded, opts StoreOptions, tr *obs.Tracer) (int64, error) {
	span := tr.Begin("store.encode", obs.Int("kernels", int64(len(d.names))))

	// Encode every section on the bounded pool; sections land in
	// insertion-order slots, so the write below is schedule-independent.
	sections := make([][]byte, len(d.names))
	sem := make(chan struct{}, storeWorkers(opts.Workers))
	var wg sync.WaitGroup
	for i, name := range d.names {
		i, k := i, d.kernels[name]
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			sections[i] = encodeSection(k, opts.OmitDerived)
		}()
	}
	wg.Wait()

	flags := uint32(0)
	if !opts.OmitDerived {
		flags = storeHasSum | storeHasCarries
	}
	hdr := make([]byte, 0, 64)
	hdr = append(hdr, storeMagicStr...)
	hdr = binary.LittleEndian.AppendUint32(hdr, storeBOM)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(d.Scale))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(d.NumSMs))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(d.Seed))
	hdr = binary.LittleEndian.AppendUint32(hdr, flags)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(d.names)))

	var table []byte
	for i, name := range d.names {
		k := d.kernels[name]
		table = binary.LittleEndian.AppendUint16(table, uint16(len(name)))
		table = append(table, name...)
		table = binary.LittleEndian.AppendUint32(table, uint32(k.NumRecords()))
		table = binary.LittleEndian.AppendUint32(table, uint32(k.NumLanes()))
		table = binary.LittleEndian.AppendUint64(table, uint64(len(sections[i])))
	}
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(table)))

	var total int64
	for _, chunk := range append([][]byte{hdr, table}, sections...) {
		n, err := w.Write(chunk)
		total += int64(n)
		if err != nil {
			span.End()
			return total, err
		}
	}
	span.Add(
		obs.Int("bytes", total),
		obs.Int("records", int64(d.NumOps())),
		obs.Int("lanes", int64(d.NumLanes())))
	span.End()
	return total, nil
}

// WriteStoreFile saves the decoded set to path atomically (sibling temp
// file; on any write, close, or rename failure the temp file is removed,
// so a crashed or failed writer never leaves a partial store behind).
func (d *Decoded) WriteStoreFile(path string, opts StoreOptions) error {
	return d.WriteStoreFileTraced(path, opts, nil)
}

// WriteStoreFileTraced is WriteStoreFile with a store.encode span.
func (d *Decoded) WriteStoreFileTraced(path string, opts StoreOptions, tr *obs.Tracer) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		_, err := WriteDecodedTraced(w, d, opts, tr)
		return err
	})
}

// --- reader ---

// storeEntry is one parsed section-table row.
type storeEntry struct {
	name    string
	records int
	lanes   int
	sectLen uint64
}

// ReadDecoded loads a store written by WriteDecoded under the default
// byte budget with GOMAXPROCS section-load workers.
func ReadDecoded(r io.Reader) (*Decoded, error) {
	return ReadDecodedLimit(r, 0, 0)
}

// ReadDecodedLimit loads a store, failing with ErrStoreTooBig when the
// declared section-table, section payload, or decoded column footprint
// exceeds maxBytes (0 means gpusim.DefaultRecordMaxBytes — the same
// budget the recording pipeline enforces). workers bounds the
// section-decode pool (0 = GOMAXPROCS); the loaded set is bit-identical
// at any count.
func ReadDecodedLimit(r io.Reader, maxBytes uint64, workers int) (*Decoded, error) {
	return ReadDecodedTraced(r, maxBytes, workers, nil)
}

// ReadDecodedTraced is ReadDecodedLimit with a store.load span annotated
// with the kernel, record, lane, and byte totals (observability only).
func ReadDecodedTraced(r io.Reader, maxBytes uint64, workers int, tr *obs.Tracer) (*Decoded, error) {
	if maxBytes == 0 {
		maxBytes = gpusim.DefaultRecordMaxBytes
	}
	span := tr.Begin("store.load")
	d, bytesRead, err := readDecoded(bufio.NewReaderSize(r, 1<<20), maxBytes, workers)
	if err != nil {
		span.End()
		return nil, err
	}
	span.Add(
		obs.Int("kernels", int64(len(d.names))),
		obs.Int("bytes", bytesRead),
		obs.Int("records", int64(d.NumOps())),
		obs.Int("lanes", int64(d.NumLanes())))
	span.End()
	return d, nil
}

// storeInfo is the parsed header + section table of a store: everything
// a reader needs to know before touching any section payload. headerLen
// is the byte length of magic + fixed header + table — the file offset
// of the first section payload.
type storeInfo struct {
	scale, numSMs int
	seed          int64
	flags         uint32
	entries       []storeEntry
	payloadTotal  uint64 // Σ declared section bytes
	headerLen     int64
}

// readStoreInfo parses the store header and section table from r,
// leaving r positioned at the first section payload. Every table row is
// sanity-checked (name length, duplicates, lane/record consistency) and
// the table itself is budget-checked before it is allocated. When
// wholeFile is set the declared payload total and the full decoded
// column footprint are also held to maxBytes — the full-load invariant;
// a partial loader (StoreHandle) instead budgets each LoadKernels call
// over just its requested sections, so a store bigger than one worker's
// budget can still be read a slice at a time.
func readStoreInfo(r io.Reader, maxBytes uint64, wholeFile bool) (*storeInfo, error) {
	magic := make([]byte, len(storeMagicStr))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("trace: store header: %w", err)
	}
	if string(magic) != storeMagicStr {
		if strings.HasPrefix(string(magic), storeVersionPrefix) {
			return nil, fmt.Errorf("trace: unsupported decoded-store version %q (this build reads %q); regenerate the store",
				strings.TrimSpace(string(magic)), strings.TrimSpace(storeMagicStr))
		}
		return nil, fmt.Errorf("trace: not an st2gpu.decoded store (bad magic %q)", magic)
	}
	var fixed [36]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("trace: store header: %w", err)
	}
	bom := binary.LittleEndian.Uint32(fixed[0:])
	if bom != storeBOM {
		if bits.ReverseBytes32(bom) == storeBOM {
			return nil, fmt.Errorf("trace: store byte-order mismatch (written as big-endian, this build reads little-endian)")
		}
		return nil, fmt.Errorf("trace: corrupt store byte-order marker %#x (want %#x)", bom, storeBOM)
	}
	info := &storeInfo{
		scale:  int(int32(binary.LittleEndian.Uint32(fixed[4:]))),
		numSMs: int(int32(binary.LittleEndian.Uint32(fixed[8:]))),
		seed:   int64(binary.LittleEndian.Uint64(fixed[12:])),
		flags:  binary.LittleEndian.Uint32(fixed[20:]),
	}
	nkern := binary.LittleEndian.Uint32(fixed[24:])
	tableLen := binary.LittleEndian.Uint64(fixed[28:])

	if tableLen > maxBytes {
		return nil, fmt.Errorf("trace: store declares a %d-byte section table with a %d-byte budget: %w",
			tableLen, maxBytes, ErrStoreTooBig)
	}
	// The kernel count sizes the entry slice and the dedup map below, so
	// it gets its own bound before any allocation: every table row is at
	// least 2 bytes (the name-length prefix), so a count the
	// budget-checked table cannot physically hold is corrupt, not big.
	if uint64(nkern) > tableLen/2 {
		return nil, fmt.Errorf("trace: store declares %d kernels but its %d-byte section table cannot hold them",
			nkern, tableLen)
	}
	table := make([]byte, tableLen)
	if _, err := io.ReadFull(r, table); err != nil {
		return nil, fmt.Errorf("trace: store section table: %w", err)
	}
	info.headerLen = int64(len(storeMagicStr)) + int64(len(fixed)) + int64(tableLen)

	// Parse and sanity-check every table row before any section payload
	// or column allocation: declared payload bytes and the decoded column
	// footprint both stay under the budget (full loads), and lane counts
	// must be consistent with record counts (1..32 active lanes per
	// record).
	info.entries = make([]storeEntry, 0, nkern)
	seen := make(map[string]bool, nkern)
	var footprint uint64
	pos := 0
	for i := uint32(0); i < nkern; i++ {
		if len(table)-pos < 2 {
			return nil, fmt.Errorf("trace: store section table truncated at entry %d", i)
		}
		nameLen := int(binary.LittleEndian.Uint16(table[pos:]))
		pos += 2
		if nameLen > maxSetNameLen || len(table)-pos < nameLen+16 {
			return nil, fmt.Errorf("trace: store section table entry %d truncated or name too long (%d bytes)", i, nameLen)
		}
		name := string(table[pos : pos+nameLen])
		pos += nameLen
		records := binary.LittleEndian.Uint32(table[pos:])
		lanes := binary.LittleEndian.Uint32(table[pos+4:])
		sectLen := binary.LittleEndian.Uint64(table[pos+8:])
		pos += 16
		if seen[name] {
			return nil, fmt.Errorf("trace: store declares kernel %q twice", name)
		}
		seen[name] = true
		if uint64(lanes) < uint64(records) || uint64(lanes) > 32*uint64(records) {
			return nil, fmt.Errorf("trace: store kernel %q declares %d lanes for %d records (want 1..32 per record)",
				name, lanes, records)
		}
		if wholeFile {
			if sectLen > maxBytes-info.payloadTotal {
				return nil, fmt.Errorf("trace: store kernel %q declares %d payload bytes with %d of %d remaining: %w",
					name, sectLen, maxBytes-info.payloadTotal, maxBytes, ErrStoreTooBig)
			}
			// Decoded footprint: ~21 bytes per record of mask/offset columns
			// plus four 8-byte lane columns. Checked against the same budget
			// so a tiny file full of width-0 blocks cannot demand gigabytes.
			footprint += entryFootprint(int(records), int(lanes))
			if footprint > maxBytes {
				return nil, fmt.Errorf("trace: store declares a %d-byte decoded footprint with a %d-byte budget: %w",
					footprint, maxBytes, ErrStoreTooBig)
			}
		} else if sectLen > uint64(1)<<62-info.payloadTotal {
			// Even a partial reader refuses absurd declared lengths: the
			// payload total must stay far below int64 so section offset
			// arithmetic cannot overflow.
			return nil, fmt.Errorf("trace: store kernel %q declares a %d-byte section: %w", name, sectLen, ErrStoreTooBig)
		}
		info.payloadTotal += sectLen
		info.entries = append(info.entries, storeEntry{name: name, records: int(records), lanes: int(lanes), sectLen: sectLen})
	}
	if pos != len(table) {
		return nil, fmt.Errorf("trace: store section table holds %d trailing bytes", len(table)-pos)
	}
	return info, nil
}

// entryFootprint is the decoded in-memory cost of one kernel's columns:
// ~21 bytes per record of mask/offset columns plus four 8-byte lane
// columns.
func entryFootprint(records, lanes int) uint64 {
	return 21*uint64(records) + 32*uint64(lanes)
}

// decodeSections decodes the given section payload buffers on a bounded
// pool and folds them, in entries order, into a Decoded stamped with the
// store's capture config. bufs[i] is entries[i]'s payload.
func (info *storeInfo) decodeSections(entries []storeEntry, bufs [][]byte, workers int) (*Decoded, error) {
	d := &Decoded{
		Scale: info.scale, NumSMs: info.numSMs, Seed: info.seed,
		names:   make([]string, len(entries)),
		kernels: make(map[string]*DecodedKernel, len(entries)),
	}
	decoded := make([]*DecodedKernel, len(entries))
	errs := make([]error, len(entries))
	sem := make(chan struct{}, storeWorkers(workers))
	var wg sync.WaitGroup
	for i, ent := range entries {
		i, ent := i, ent
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			k, err := decodeSection(bufs[i], ent.records, ent.lanes,
				info.flags&storeHasSum != 0, info.flags&storeHasCarries != 0)
			if err != nil {
				errs[i] = fmt.Errorf("trace: store kernel %q: %w", ent.name, err)
				return
			}
			decoded[i] = k
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i, ent := range entries {
		d.names[i] = ent.name
		d.kernels[ent.name] = decoded[i]
	}
	return d, nil
}

func readDecoded(r io.Reader, maxBytes uint64, workers int) (*Decoded, int64, error) {
	info, err := readStoreInfo(r, maxBytes, true)
	if err != nil {
		return nil, 0, err
	}

	// Sequential payload read (chunked so a lying length fails at true
	// EOF, like the recording reader), then parallel section decode with
	// results folded in table order.
	bufs := make([][]byte, len(info.entries))
	for i, ent := range info.entries {
		buf, err := readSection(r, ent.sectLen)
		if err != nil {
			return nil, 0, fmt.Errorf("trace: store kernel %q payload: %w", ent.name, err)
		}
		bufs[i] = buf
	}
	d, err := info.decodeSections(info.entries, bufs, workers)
	if err != nil {
		return nil, 0, err
	}
	return d, info.headerLen + int64(info.payloadTotal), nil
}

// readSection reads a section payload incrementally so a lying length
// burns at most one chunk of allocation, not the declared size. Real
// suite sections fit one chunk, so the common case is a single
// exact-size ReadFull with no growth copies.
func readSection(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 8 << 20
	buf := make([]byte, min64(n, chunk))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	for uint64(len(buf)) < n {
		c := min64(n-uint64(len(buf)), chunk)
		lo := len(buf)
		buf = append(buf, make([]byte, c)...)
		if _, err := io.ReadFull(r, buf[lo:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// ReadStoreFile loads a store saved by WriteStoreFile under the default
// byte budget.
func ReadStoreFile(path string) (*Decoded, error) {
	return ReadStoreFileLimit(path, 0, 0)
}

// ReadStoreFileLimit loads a store saved by WriteStoreFile with a byte
// budget and section-load worker bound (see ReadDecodedLimit).
func ReadStoreFileLimit(path string, maxBytes uint64, workers int) (*Decoded, error) {
	return ReadStoreFileTraced(path, maxBytes, workers, nil)
}

// ReadStoreFileTraced is ReadStoreFileLimit with a store.load span.
func ReadStoreFileTraced(path string, maxBytes uint64, workers int, tr *obs.Tracer) (*Decoded, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDecodedTraced(f, maxBytes, workers, tr)
}

// --- zigzag helpers (mirrors the recording encoder's transform) ---

func zigzag64(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag64(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
