package trace

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"st2gpu/internal/speculate"
	"st2gpu/internal/stats"
)

// TestBatchEvalMatchesPerDesign pins the design-batched kernels'
// guarantee: for every evaluation mode, result i of the one-pass batch
// is bit-identical to the per-design walk of designs[i], including when
// Peek designs (whose per-record Peek computation the batch hoists and
// shares) sit in the same batch as non-Peek ones.
func TestBatchEvalMatchesPerDesign(t *testing.T) {
	set := recordPathfinder(t)
	dec, err := DecodeSet(set)
	if err != nil {
		t.Fatal(err)
	}
	k, ok := dec.Kernel("pathfinder")
	if !ok {
		t.Fatal("missing decoded kernel")
	}

	designs := append(append([]string(nil), speculate.DesignSpace...), "oracle")
	batch, err := k.EvalMissBatch(designs)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range designs {
		want, err := k.EvalMiss(d)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != want {
			t.Errorf("EvalMissBatch[%s] = %+v, per-design EvalMiss = %+v", d, batch[i], want)
		}
	}

	corrBatch, err := k.EvalCorrBatch(Fig3Designs[:])
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range Fig3Designs {
		want, err := k.EvalCorr(d)
		if err != nil {
			t.Fatal(err)
		}
		if corrBatch[i] != want {
			t.Errorf("EvalCorrBatch[%s] = %+v, per-design EvalCorr = %+v", d, corrBatch[i], want)
		}
	}

	approxDesigns := []string{"staticZero", speculate.FinalDesign}
	apBatch, err := k.EvalApproxBatch(approxDesigns)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range approxDesigns {
		want, err := k.EvalApprox(d)
		if err != nil {
			t.Fatal(err)
		}
		if apBatch[i] != want {
			t.Errorf("EvalApproxBatch[%s] = %+v, per-design EvalApprox = %+v", d, apBatch[i], want)
		}
	}
}

// TestBatchEvalBatchCompositionIrrelevant pins the sweep engine's
// scheduling freedom: a design's counters don't depend on which batch it
// lands in (per-design predictor state is independent), so any
// partition folds to the same grid.
func TestBatchEvalBatchCompositionIrrelevant(t *testing.T) {
	set := recordPathfinder(t)
	dec, err := DecodeSet(set)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := dec.Kernel("pathfinder")
	designs := speculate.DesignSpace
	whole, err := k.EvalMissBatch(designs)
	if err != nil {
		t.Fatal(err)
	}
	for _, split := range []int{1, 3, len(designs) - 1} {
		lo, err := k.EvalMissBatch(designs[:split])
		if err != nil {
			t.Fatal(err)
		}
		hi, err := k.EvalMissBatch(designs[split:])
		if err != nil {
			t.Fatal(err)
		}
		for i := range designs {
			var got stats.Rate
			if i < split {
				got = lo[i]
			} else {
				got = hi[i-split]
			}
			if got != whole[i] {
				t.Errorf("split %d: design %s differs across batch compositions", split, designs[i])
			}
		}
	}
}

// TestBatchEvalBadDesign checks the batch constructors surface unknown
// design names instead of walking anything.
func TestBatchEvalBadDesign(t *testing.T) {
	set := recordPathfinder(t)
	dec, err := DecodeSet(set)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := dec.Kernel("pathfinder")
	if _, err := k.EvalMissBatch([]string{"no-such-design"}); err == nil {
		t.Fatal("EvalMissBatch accepted an unknown design")
	}
}

// TestDecodeSetMissingKernelDoesNotLeak is the regression test for the
// DecodeSet early-return leak: a set whose name list references a
// kernel with no recording must fail after spawning NO decode work —
// the buggy version returned mid-spawn without wg.Wait, leaving decode
// goroutines writing into the result slices past the call.
func TestDecodeSetMissingKernelDoesNotLeak(t *testing.T) {
	set := recordPathfinder(t)
	rec, ok := set.Get("pathfinder")
	if !ok {
		t.Fatal("missing recording")
	}
	doctored := NewSet(set.Scale, set.NumSMs, set.Seed)
	for i := 0; i < 8; i++ {
		doctored.Add(fmt.Sprintf("k%d", i), rec)
	}
	// Doctor the name list directly: a name with no recording, listed
	// last so the buggy code had already spawned decoders for the real
	// kernels by the time it saw it.
	doctored.names = append(doctored.names, "ghost")

	before := runtime.NumGoroutine()
	_, err := DecodeSet(doctored)
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("DecodeSet error = %v, want missing-kernel error naming %q", err, "ghost")
	}
	// Sampled immediately — leaked decoders would still be running.
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("DecodeSet returned with %d goroutines, started with %d: in-flight decoders leaked", after, before)
	}
}
