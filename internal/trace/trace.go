// Package trace implements the value- and carry-correlation analyses of
// the paper's Sections III and IV: collectors that attach to the GPU
// simulator's adder-operation stream (gpusim.AddTracer) and produce
//
//   - Figure 2-style value-evolution series (per-PC result streams in
//     logical time);
//   - Figure 3-style carry-in match rates across the temporal/spatial
//     axes (Prev+Gtid, Prev+FullPC+Gtid, Prev+FullPC+Ltid);
//   - the single-pass design-space sweep behind Figure 5, evaluating
//     every speculation design on the identical operation stream.
package trace

import (
	"fmt"
	"sort"

	"st2gpu/internal/bitmath"
	"st2gpu/internal/core"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/speculate"
	"st2gpu/internal/stats"
)

// g64 is the prediction geometry shared by every meter: with 8-bit
// slices, boundary i sits at bit 8(i+1) for every unit width, so one
// 7-boundary predictor covers ALU64/ALU32/FPU/DPU operations — narrower
// ops simply use (and are judged on) their low boundaries. This mirrors
// the hardware, where the same per-SM CRF serves every unit family.
var g64 = speculate.Geometry{Width: 64, SliceBits: 8}

// boundariesOf returns how many carry boundaries an op of the given unit
// kind speculates (width/8 − 1).
func boundariesOf(kind core.UnitKind) uint {
	switch kind {
	case core.ALU32:
		return 3
	case core.FPU:
		return 2
	case core.DPU:
		return 6
	default:
		return 7
	}
}

// --- Figure 2: value evolution ---

// ValuePoint is one executed add: its logical time (order of observation)
// and the produced value.
type ValuePoint struct {
	Time  int
	Value int64
}

// ValueTrace records, for one thread, the result stream of each PC —
// exactly the data behind Figure 2's pathfinder plot.
type ValueTrace struct {
	Gtid   uint32
	MaxPts int
	clock  int
	series map[uint32][]ValuePoint
}

// NewValueTrace traces thread gtid, keeping at most maxPts points per PC.
func NewValueTrace(gtid uint32, maxPts int) *ValueTrace {
	return &ValueTrace{Gtid: gtid, MaxPts: maxPts, series: make(map[uint32][]ValuePoint)}
}

// TraceWarpAdds implements gpusim.AddTracer.
func (v *ValueTrace) TraceWarpAdds(kind core.UnitKind, pc, gtidBase uint32, ops *[32]gpusim.WarpAddOp) {
	if v.Gtid < gtidBase || v.Gtid >= gtidBase+32 {
		return
	}
	op := ops[v.Gtid-gtidBase]
	if !op.Active {
		return
	}
	v.clock++
	if len(v.series[pc]) >= v.MaxPts {
		return
	}
	var val int64
	switch kind {
	case core.ALU32:
		val = bitmath.SignExtend(op.Sum, 32)
	default:
		val = int64(op.Sum) // 64-bit results; mantissa magnitudes for FP adds
	}
	v.series[pc] = append(v.series[pc], ValuePoint{Time: v.clock, Value: val})
}

// PCs returns the traced PCs in ascending order.
func (v *ValueTrace) PCs() []uint32 {
	out := make([]uint32, 0, len(v.series))
	for pc := range v.series {
		out = append(out, pc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Series returns the value stream of one PC.
func (v *ValueTrace) Series(pc uint32) []ValuePoint { return v.series[pc] }

// --- Figure 3: carry-in correlation ---

// Fig3Designs are the three history-bucketing schemes of Figure 3.
var Fig3Designs = []string{"Gtid+Prev", "Gtid+Prev+FullPC", "Ltid+Prev+FullPC"}

// CorrMeter measures, for each Figure 3 scheme, the fraction of boundary
// carry-ins that match the history bucket's previous content. Cold
// buckets compare against the zero-initialized history — which is what
// lets *shared* histories (Ltid) score higher than fully disambiguated
// ones (Gtid): sharing warms buckets faster.
type CorrMeter struct {
	preds   map[string]speculate.Predictor
	match   map[string]*stats.Rate
	scratch warpScratch
}

// NewCorrMeter builds the three-scheme correlation meter.
func NewCorrMeter() (*CorrMeter, error) {
	m := &CorrMeter{
		preds: make(map[string]speculate.Predictor),
		match: make(map[string]*stats.Rate),
	}
	for _, d := range Fig3Designs {
		p, err := speculate.NewDesign(d, g64)
		if err != nil {
			return nil, err
		}
		m.preds[d] = p
		m.match[d] = &stats.Rate{}
	}
	return m, nil
}

// TraceWarpAdds implements gpusim.AddTracer: every lane's prediction is
// read from the pre-update history (warp-synchronous), then all lanes
// write back. The warp is compacted once and all three schemes run the
// shared batched eval core.
func (m *CorrMeter) TraceWarpAdds(kind core.UnitKind, pc, gtidBase uint32, ops *[32]gpusim.WarpAddOp) {
	r := m.scratch.compact(kind, pc, gtidBase, ops)
	for _, d := range Fig3Designs {
		corrStep(m.preds[d], m.match[d], r, &m.scratch.eval)
	}
}

// MatchRate returns the per-boundary match fraction for a design.
func (m *CorrMeter) MatchRate(design string) (float64, error) {
	r, ok := m.match[design]
	if !ok {
		return 0, fmt.Errorf("trace: unknown Figure 3 design %q", design)
	}
	return r.Value(), nil
}

// Rates returns all three match rates in Fig3Designs order.
func (m *CorrMeter) Rates() []float64 {
	out := make([]float64, len(Fig3Designs))
	for i, d := range Fig3Designs {
		out[i], _ = m.MatchRate(d)
	}
	return out
}

// RawRate exposes the underlying counter so callers can aggregate match
// rates op-weighted across kernels (buckets with a single observation
// contribute nothing and must not be averaged as zero).
func (m *CorrMeter) RawRate(design string) (stats.Rate, error) {
	r, ok := m.match[design]
	if !ok {
		return stats.Rate{}, fmt.Errorf("trace: unknown Figure 3 design %q", design)
	}
	return *r, nil
}

// --- Figure 5: single-pass design-space sweep ---

// DSEMeter evaluates a set of speculation designs on the identical
// operation stream, counting per-thread-op mispredictions exactly as the
// ST² hardware would (a thread-op mispredicts when any non-Peek boundary
// was speculated wrong).
type DSEMeter struct {
	Designs []string
	preds   map[string]speculate.Predictor
	miss    map[string]*stats.Rate
	scratch warpScratch
}

// NewDSEMeter builds a sweep over the given designs (defaulting to the
// full Figure 5 space when nil).
func NewDSEMeter(designs []string) (*DSEMeter, error) {
	if designs == nil {
		designs = speculate.DesignSpace
	}
	m := &DSEMeter{
		Designs: designs,
		preds:   make(map[string]speculate.Predictor),
		miss:    make(map[string]*stats.Rate),
	}
	for _, d := range designs {
		p, err := speculate.NewDesign(d, g64)
		if err != nil {
			return nil, fmt.Errorf("trace: design %q: %w", d, err)
		}
		m.preds[d] = p
		m.miss[d] = &stats.Rate{}
	}
	return m, nil
}

// TraceWarpAdds implements gpusim.AddTracer: predictions for every lane
// come from the pre-update history (as in hardware, where the CRF row is
// read once per warp), then mispredicting lanes write back. The warp is
// compacted once (boundary carries computed per lane, not per design)
// and every design runs the shared batched eval core.
func (m *DSEMeter) TraceWarpAdds(kind core.UnitKind, pc, gtidBase uint32, ops *[32]gpusim.WarpAddOp) {
	r := m.scratch.compact(kind, pc, gtidBase, ops)
	for _, d := range m.Designs {
		dseStep(m.preds[d], m.miss[d], r, &m.scratch.eval)
	}
}

// MissRate returns a design's thread misprediction rate.
func (m *DSEMeter) MissRate(design string) (float64, error) {
	r, ok := m.miss[design]
	if !ok {
		return 0, fmt.Errorf("trace: design %q not in sweep", design)
	}
	return r.Value(), nil
}

// Rate exposes the raw counter for aggregation across kernels.
func (m *DSEMeter) Rate(design string) (stats.Rate, error) {
	r, ok := m.miss[design]
	if !ok {
		return stats.Rate{}, fmt.Errorf("trace: design %q not in sweep", design)
	}
	return *r, nil
}

func popcount(x uint64) int { return bitmath.PopCount64(x) }
