package trace

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"st2gpu/internal/bitmath"
	"st2gpu/internal/core"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/obs"
	"st2gpu/internal/speculate"
	"st2gpu/internal/stats"
)

// DecodedKernel is the structure-of-arrays decoded form of one kernel's
// recording: record i's masks live at index i of Kind/PC/GtidBase/
// Active/Cin, and its active lanes occupy Off[i]:Off[i+1] of the flat
// lane arrays in ascending lane order. Sums are reconstructed (and
// thereby integrity-checked) and each lane's boundary carry-outs are
// precomputed once at decode time, so evaluating a design is a pure
// array walk — no varint decoding, no carry recomputation.
type DecodedKernel struct {
	Kind     []core.UnitKind
	PC       []uint32
	GtidBase []uint32
	Active   []uint32
	Cin      []uint32
	Off      []uint32 // len(Kind)+1 prefix sums into the lane arrays
	EA, EB   []uint64
	Sum      []uint64
	Carries  []uint64 // unmasked 7-boundary carry-outs per lane
}

// NumRecords returns the number of warp-synchronous records.
func (k *DecodedKernel) NumRecords() int { return len(k.Kind) }

// NumLanes returns the total number of active thread-ops.
func (k *DecodedKernel) NumLanes() int { return len(k.EA) }

// decodeKernel runs the single varint-decode pass over one recording and
// materializes the flat arrays. Both the record-count and the lane-count
// columns are sized up front from the recording's own counters, so the
// pass appends into preallocated storage instead of re-growing the lane
// arrays from zero capacity (legacy v1 recordings report zero lanes and
// fall back to append-growth).
func decodeKernel(rec *gpusim.Recording) (*DecodedKernel, error) {
	nrec := int(rec.NumOps())
	nlanes := int(rec.NumLanes())
	k := &DecodedKernel{
		Kind:     make([]core.UnitKind, 0, nrec),
		PC:       make([]uint32, 0, nrec),
		GtidBase: make([]uint32, 0, nrec),
		Active:   make([]uint32, 0, nrec),
		Cin:      make([]uint32, 0, nrec),
		Off:      make([]uint32, 1, nrec+1),
		EA:       make([]uint64, 0, nlanes),
		EB:       make([]uint64, 0, nlanes),
		Sum:      make([]uint64, 0, nlanes),
		Carries:  make([]uint64, 0, nlanes),
	}
	err := rec.Decode(func(r *gpusim.DecodedRecord) error {
		k.Kind = append(k.Kind, r.Kind)
		k.PC = append(k.PC, r.PC)
		k.GtidBase = append(k.GtidBase, r.GtidBase)
		k.Active = append(k.Active, r.Active)
		k.Cin = append(k.Cin, r.Cin)
		k.EA = append(k.EA, r.EA...)
		k.EB = append(k.EB, r.EB...)
		k.Sum = append(k.Sum, r.Sum...)
		j := 0
		for m := r.Active; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			k.Carries = append(k.Carries,
				bitmath.BoundaryCarriesPacked(r.EA[j], r.EB[j], uint(r.Cin>>l&1), 64, 8))
			j++
		}
		k.Off = append(k.Off, uint32(len(k.EA)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return k, nil
}

// each walks the records in stream order, presenting each as a warpRec
// view over the flat arrays (zero-copy; valid during the callback).
func (k *DecodedKernel) each(visit func(r *warpRec)) {
	var r warpRec
	for i := range k.Kind {
		lo, hi := k.Off[i], k.Off[i+1]
		r = warpRec{
			kind: k.Kind[i], pc: k.PC[i], base: k.GtidBase[i],
			active: k.Active[i], cin: k.Cin[i],
			ea: k.EA[lo:hi], eb: k.EB[lo:hi], sum: k.Sum[lo:hi], carries: k.Carries[lo:hi],
		}
		visit(&r)
	}
}

// Replay feeds the decoded stream to a legacy AddTracer, reconstructing
// the dense [32]WarpAddOp form — bit-identical to replaying the original
// recording.
func (k *DecodedKernel) Replay(t gpusim.AddTracer) {
	k.each(func(r *warpRec) {
		var ops [32]gpusim.WarpAddOp
		j := 0
		for m := r.active; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			ops[l] = gpusim.WarpAddOp{
				Active: true,
				EA:     r.ea[j], EB: r.eb[j],
				Cin0: uint(r.cin >> l & 1),
				Sum:  r.sum[j],
			}
			j++
		}
		t.TraceWarpAdds(r.kind, r.pc, r.base, &ops)
	})
}

// EvalMiss evaluates one speculation design over the decoded stream with
// Figure 5 semantics and returns its thread-misprediction counter —
// bit-identical to replaying the recording through a DSEMeter, at the
// cost of an array walk.
func (k *DecodedKernel) EvalMiss(design string) (stats.Rate, error) {
	p, err := speculate.NewDesign(design, g64)
	if err != nil {
		return stats.Rate{}, fmt.Errorf("trace: design %q: %w", design, err)
	}
	var miss stats.Rate
	var s evalScratch
	k.each(func(r *warpRec) { dseStep(p, &miss, r, &s) })
	return miss, nil
}

// EvalCorr evaluates one Figure 3 correlation scheme over the decoded
// stream — bit-identical to a CorrMeter replay.
func (k *DecodedKernel) EvalCorr(design string) (stats.Rate, error) {
	p, err := speculate.NewDesign(design, g64)
	if err != nil {
		return stats.Rate{}, fmt.Errorf("trace: design %q: %w", design, err)
	}
	var match stats.Rate
	var s evalScratch
	k.each(func(r *warpRec) { corrStep(p, &match, r, &s) })
	return match, nil
}

// ApproxResult is one design's uncorrected-adder outcome on one kernel.
type ApproxResult struct {
	Wrong       stats.Rate
	MeanRelErr  float64
	WrongErrSum float64 // relative-error numerator (Σ relErr over wrong results)
}

// EvalApprox evaluates one design with the approximate-adder
// (no-correction) semantics — bit-identical to an ApproxMeter replay.
func (k *DecodedKernel) EvalApprox(design string) (ApproxResult, error) {
	p, err := speculate.NewDesign(design, g64)
	if err != nil {
		return ApproxResult{}, fmt.Errorf("trace: approx design %q: %w", design, err)
	}
	var wrong stats.Rate
	var re runningMean
	var s evalScratch
	k.each(func(r *warpRec) { approxStep(p, &wrong, &re, r, &s) })
	return ApproxResult{Wrong: wrong, MeanRelErr: re.mean(), WrongErrSum: re.sum}, nil
}

// Decoded is the decode-once form of a whole recording Set: every kernel
// materialized as a DecodedKernel, stamped with the same capture
// configuration. Build it with DecodeSet, then evaluate as many designs
// as you like — N designs cost one decode plus N array walks, and the
// flat arrays are read-only so evaluations can run concurrently.
type Decoded struct {
	Scale  int
	NumSMs int
	Seed   int64

	names   []string
	kernels map[string]*DecodedKernel
}

// DecodeSet decodes every kernel of a recording set once (kernels
// decoded concurrently, bounded by GOMAXPROCS; the result does not
// depend on the worker count).
func DecodeSet(s *Set) (*Decoded, error) {
	return DecodeSetTraced(s, nil)
}

// DecodeSetTraced is DecodeSet with span tracing: a trace.decode_set
// root span with one child per kernel, annotated with its record, lane,
// and encoded-byte counts. Spans are observability-only — decoding with
// a nil tracer produces the identical Decoded.
func DecodeSetTraced(s *Set, tr *obs.Tracer) (*Decoded, error) {
	decodeSpan := tr.Begin("trace.decode_set",
		obs.Int("kernels", int64(len(s.Names()))))
	names := s.Names()
	d := &Decoded{
		Scale: s.Scale, NumSMs: s.NumSMs, Seed: s.Seed,
		names:   names,
		kernels: make(map[string]*DecodedKernel, len(names)),
	}
	// Resolve every kernel before spawning any decode work: an early
	// return after goroutines are in flight would leak them (still
	// writing into decoded/errs past this function's lifetime).
	recs := make([]*gpusim.Recording, len(names))
	for i, name := range names {
		rec, ok := s.Get(name)
		if !ok {
			return nil, fmt.Errorf("trace: recording set is missing kernel %q", name)
		}
		recs[i] = rec
	}
	decoded := make([]*DecodedKernel, len(names))
	errs := make([]error, len(names))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, name := range names {
		i, name, rec := i, name, recs[i]
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			kernSpan := decodeSpan.Child("decode."+name,
				obs.Int("bytes", int64(rec.Bytes())))
			k, err := decodeKernel(rec)
			if err != nil {
				errs[i] = fmt.Errorf("trace: decode kernel %q: %w", name, err)
				kernSpan.End()
				return
			}
			kernSpan.Add(
				obs.Int("records", int64(k.NumRecords())),
				obs.Int("lanes", int64(k.NumLanes())))
			kernSpan.End()
			decoded[i] = k
		}()
	}
	wg.Wait()
	decodeSpan.End()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i, name := range names {
		d.kernels[name] = decoded[i]
	}
	return d, nil
}

// Names returns the kernel names in the set's insertion order.
func (d *Decoded) Names() []string { return append([]string(nil), d.names...) }

// Kernel returns the named kernel's decoded form.
func (d *Decoded) Kernel(name string) (*DecodedKernel, bool) {
	k, ok := d.kernels[name]
	return k, ok
}

// NumOps returns the total decoded warp-add records across all kernels.
func (d *Decoded) NumOps() uint64 {
	var n uint64
	for _, name := range d.names {
		n += uint64(d.kernels[name].NumRecords())
	}
	return n
}

// NumLanes returns the total decoded active thread-ops across all kernels.
func (d *Decoded) NumLanes() uint64 {
	var n uint64
	for _, name := range d.names {
		n += uint64(d.kernels[name].NumLanes())
	}
	return n
}

// Matches reports whether the decoded set was captured under the given
// workload configuration, field by field (see Set.Matches).
func (d *Decoded) Matches(scale, numSMs int, seed int64) error {
	return matchesConfig("decoded recording set", d.Scale, d.NumSMs, d.Seed, scale, numSMs, seed)
}

// MatchesKernels reports whether the decoded set holds every named
// kernel, naming the first missing one and what the set does hold —
// the Decoded counterpart of Set.MatchesKernels, so a sweep loading a
// store fails the same way a sweep reusing a trace does.
func (d *Decoded) MatchesKernels(names []string) error {
	for _, name := range names {
		if _, ok := d.kernels[name]; !ok {
			return fmt.Errorf("trace: decoded set kernel-list mismatch: missing kernel %q (set holds %d kernels: %v)",
				name, len(d.names), d.names)
		}
	}
	return nil
}
