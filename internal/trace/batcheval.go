package trace

import (
	"fmt"
	"math/bits"

	"st2gpu/internal/bitmath"
	"st2gpu/internal/speculate"
	"st2gpu/internal/stats"
)

// This file is the design-batched evaluation path: one pass over a
// decoded kernel's flat arrays scores every design of a batch, so each
// warp record's operands, true boundary carries and Peek masks are
// loaded/computed once and amortized across the design dimension.
// Correctness rests on two invariants:
//
//   - Per-design predictor state is fully independent, so iterating
//     record-major (all designs per record) produces bit-identical
//     per-design results to the design-major walks of EvalMiss/EvalCorr/
//     EvalApprox — each design still observes the records in stream
//     order with its own pre-update state.
//   - The Peek overlay is hoisted: PeekBitsWarp computes each lane's
//     statically-resolved boundaries once per record, and OverlayPeek
//     applies exactly the peekPredictor composition per design, so
//     stripping the Peek wrapper (SplitPeek) changes nothing bit-wise.
//
// batchScratch is reused across records; all slices index by compacted
// lane position j (the j-th set bit of active).
type batchScratch struct {
	eval               evalScratch
	pkStatic, pkValues [32]uint64
}

// batchPreds builds the predictors for a design batch, stripping Peek
// wrappers so the per-record Peek computation can be shared.
func batchPreds(designs []string) (inner []speculate.Predictor, peeked []bool, anyPeek bool, err error) {
	inner = make([]speculate.Predictor, len(designs))
	peeked = make([]bool, len(designs))
	for d, name := range designs {
		p, err := speculate.NewDesign(name, g64)
		if err != nil {
			return nil, nil, false, fmt.Errorf("trace: design %q: %w", name, err)
		}
		inner[d], peeked[d] = speculate.SplitPeek(p)
		anyPeek = anyPeek || peeked[d]
	}
	return inner, peeked, anyPeek, nil
}

// EvalMissBatch evaluates a batch of speculation designs over the
// decoded stream in one pass with Figure 5 semantics. Result i is
// bit-identical to EvalMiss(designs[i]).
func (k *DecodedKernel) EvalMissBatch(designs []string) ([]stats.Rate, error) {
	inner, peeked, anyPeek, err := batchPreds(designs)
	if err != nil {
		return nil, err
	}
	miss := make([]stats.Rate, len(designs))
	var s batchScratch
	k.each(func(r *warpRec) {
		mask := bitmath.Mask(boundariesOf(r.kind))
		n := len(r.ea)
		actual := s.eval.actual[:n]
		for j := 0; j < n; j++ {
			actual[j] = r.carries[j] & mask
		}
		pkS, pkV := s.pkStatic[:n], s.pkValues[:n]
		if anyPeek {
			speculate.PeekBitsWarp(g64, r.ea, r.eb, pkS, pkV)
		}
		carries, static := s.eval.carries[:n], s.eval.static[:n]
		for d, p := range inner {
			speculate.PredictWarp(p, r.pc, r.base, r.active, r.cin, r.ea, r.eb, carries, static)
			if peeked[d] {
				speculate.OverlayPeek(carries, static, pkS, pkV)
			}
			mispred, missed := speculate.JudgeMissWarp(r.active, mask, carries, static, actual)
			miss[d].Add(missed, uint64(n))
			speculate.UpdateWarp(p, r.pc, r.base, r.active, mispred, r.cin, r.ea, r.eb, actual)
		}
	})
	return miss, nil
}

// EvalCorrBatch evaluates a batch of Figure 3 correlation schemes over
// the decoded stream in one pass. Result i is bit-identical to
// EvalCorr(designs[i]).
func (k *DecodedKernel) EvalCorrBatch(designs []string) ([]stats.Rate, error) {
	inner, peeked, anyPeek, err := batchPreds(designs)
	if err != nil {
		return nil, err
	}
	match := make([]stats.Rate, len(designs))
	var s batchScratch
	k.each(func(r *warpRec) {
		nb := boundariesOf(r.kind)
		mask := bitmath.Mask(nb)
		n := len(r.ea)
		actual := s.eval.actual[:n]
		for j := 0; j < n; j++ {
			actual[j] = r.carries[j] & mask
		}
		pkS, pkV := s.pkStatic[:n], s.pkValues[:n]
		if anyPeek {
			speculate.PeekBitsWarp(g64, r.ea, r.eb, pkS, pkV)
		}
		carries, static := s.eval.carries[:n], s.eval.static[:n]
		for d, p := range inner {
			speculate.PredictWarp(p, r.pc, r.base, r.active, r.cin, r.ea, r.eb, carries, static)
			if peeked[d] {
				speculate.OverlayPeek(carries, static, pkS, pkV)
			}
			matched := speculate.JudgeCorrWarp(nb, mask, carries, actual)
			match[d].Add(matched, uint64(nb)*uint64(n))
			speculate.UpdateWarp(p, r.pc, r.base, r.active, r.active, r.cin, r.ea, r.eb, actual)
		}
	})
	return match, nil
}

// EvalApproxBatch evaluates a batch of designs with the
// approximate-adder (no-correction) semantics in one pass. Result i is
// bit-identical to EvalApprox(designs[i]); relative errors accumulate in
// ascending lane order within each design, as the sequential path does.
func (k *DecodedKernel) EvalApproxBatch(designs []string) ([]ApproxResult, error) {
	inner, peeked, anyPeek, err := batchPreds(designs)
	if err != nil {
		return nil, err
	}
	wrong := make([]stats.Rate, len(designs))
	relErr := make([]runningMean, len(designs))
	var s batchScratch
	k.each(func(r *warpRec) {
		width := widthOf(r.kind)
		mask := bitmath.Mask(bitmath.NumSlices(width, 8) - 1)
		n := len(r.ea)
		actual := s.eval.actual[:n]
		for j := 0; j < n; j++ {
			actual[j] = r.carries[j] & mask
		}
		pkS, pkV := s.pkStatic[:n], s.pkValues[:n]
		if anyPeek {
			speculate.PeekBitsWarp(g64, r.ea, r.eb, pkS, pkV)
		}
		carries, static := s.eval.carries[:n], s.eval.static[:n]
		for d, p := range inner {
			speculate.PredictWarp(p, r.pc, r.base, r.active, r.cin, r.ea, r.eb, carries, static)
			if peeked[d] {
				speculate.OverlayPeek(carries, static, pkS, pkV)
			}
			var mispred uint32
			var wrongResults uint64
			j := 0
			for m := r.active; m != 0; m &= m - 1 {
				l := bits.TrailingZeros32(m)
				used := (carries[j] &^ static[j]) | (actual[j] & static[j])
				got := approxSum(r.ea[j], r.eb[j], uint(r.cin>>l&1), width, used)
				mispred |= uint32(nonZeroBit((carries[j]^actual[j])&mask&^static[j])) << l
				if got != r.sum[j] {
					wrongResults++
					relErr[d].addRelative(got, r.sum[j])
				}
				j++
			}
			wrong[d].Add(wrongResults, uint64(n))
			speculate.UpdateWarp(p, r.pc, r.base, r.active, mispred, r.cin, r.ea, r.eb, actual)
		}
	})
	out := make([]ApproxResult, len(designs))
	for d := range designs {
		out[d] = ApproxResult{Wrong: wrong[d], MeanRelErr: relErr[d].mean(), WrongErrSum: relErr[d].sum}
	}
	return out, nil
}
