package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"syscall"

	"st2gpu/internal/gpusim"
)

// Replay feeds a captured recording to one or more meters exactly as a
// sequential live tracer would have seen the stream (SM-ID-major,
// per-SM execution order, warp-synchronous batches with reconstructed
// sums). Record once, replay as many analyses as you like: every meter
// observes the bit-identical operation stream without re-simulating.
func Replay(rec *gpusim.Recording, meters ...gpusim.AddTracer) error {
	switch len(meters) {
	case 0:
		return nil
	case 1:
		return rec.Replay(meters[0])
	default:
		return rec.Replay(Multi(meters))
	}
}

// Set is an ordered collection of named per-kernel recordings plus the
// capture configuration that makes replays comparable: a recording is
// only a valid stand-in for a live trace of the same (scale, SM count,
// seed) workload, so those are carried in the container and checked by
// the experiment drivers before replaying.
type Set struct {
	Scale  int
	NumSMs int
	Seed   int64

	names []string
	recs  map[string]*gpusim.Recording
}

// NewSet builds an empty recording set for the given capture config.
func NewSet(scale, numSMs int, seed int64) *Set {
	return &Set{Scale: scale, NumSMs: numSMs, Seed: seed, recs: make(map[string]*gpusim.Recording)}
}

// Add stores a kernel's recording (replacing any previous entry with the
// same name; first-add order is preserved).
func (s *Set) Add(name string, rec *gpusim.Recording) {
	if _, ok := s.recs[name]; !ok {
		s.names = append(s.names, name)
	}
	s.recs[name] = rec
}

// Get returns the named kernel's recording.
func (s *Set) Get(name string) (*gpusim.Recording, bool) {
	r, ok := s.recs[name]
	return r, ok
}

// Names returns the kernel names in insertion order.
func (s *Set) Names() []string { return append([]string(nil), s.names...) }

// Bytes returns the total encoded size across all recordings.
func (s *Set) Bytes() uint64 {
	var n uint64
	for _, name := range s.names {
		n += s.recs[name].Bytes()
	}
	return n
}

// NumOps returns the total recorded warp-add records across all kernels.
func (s *Set) NumOps() uint64 {
	var n uint64
	for _, name := range s.names {
		n += s.recs[name].NumOps()
	}
	return n
}

// matchesConfig checks one capture configuration against a requested
// one, reporting the first mismatching field with both the captured and
// the requested value named.
func matchesConfig(what string, haveScale, haveSMs int, haveSeed int64, scale, numSMs int, seed int64) error {
	if haveScale != scale {
		return fmt.Errorf("trace: %s scale mismatch: captured scale=%d, replay requested scale=%d", what, haveScale, scale)
	}
	if haveSMs != numSMs {
		return fmt.Errorf("trace: %s SM-count mismatch: captured sms=%d, replay requested sms=%d", what, haveSMs, numSMs)
	}
	if haveSeed != seed {
		return fmt.Errorf("trace: %s seed mismatch: captured seed=%d, replay requested seed=%d", what, haveSeed, seed)
	}
	return nil
}

// Matches reports whether the set was captured under the given workload
// configuration; a mismatch means replays would answer questions about a
// different workload. Each field is checked separately so the error
// names exactly what diverged, with both the captured and the requested
// value.
func (s *Set) Matches(scale, numSMs int, seed int64) error {
	return matchesConfig("recording set", s.Scale, s.NumSMs, s.Seed, scale, numSMs, seed)
}

// MatchesKernels reports whether the set contains a recording for every
// named kernel, naming the first missing one and what the set does hold.
// Experiment drivers call this up front so a stale or partial set fails
// before any replay work starts.
func (s *Set) MatchesKernels(names []string) error {
	for _, name := range names {
		if _, ok := s.recs[name]; !ok {
			return fmt.Errorf("trace: recording set kernel-list mismatch: missing kernel %q (set holds %d kernels: %v)",
				name, len(s.names), s.names)
		}
	}
	return nil
}

// setMagic versions the on-disk set encoding.
var setMagic = []byte("st2set\x01")

// WriteTo serializes the set: header (magic, scale, SM count, seed,
// entry count), then per kernel a length-prefixed name followed by the
// recording payload. Deterministic: equal sets write equal bytes.
func (s *Set) WriteTo(w io.Writer) (int64, error) {
	var hdr []byte
	hdr = append(hdr, setMagic...)
	hdr = binary.AppendUvarint(hdr, uint64(s.Scale))
	hdr = binary.AppendUvarint(hdr, uint64(s.NumSMs))
	hdr = binary.AppendVarint(hdr, s.Seed)
	hdr = binary.AppendUvarint(hdr, uint64(len(s.names)))
	n, err := w.Write(hdr)
	total := int64(n)
	if err != nil {
		return total, err
	}
	for _, name := range s.names {
		var nb []byte
		nb = binary.AppendUvarint(nb, uint64(len(name)))
		nb = append(nb, name...)
		n, err = w.Write(nb)
		total += int64(n)
		if err != nil {
			return total, err
		}
		m, err := s.recs[name].WriteTo(w)
		total += m
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// maxSetNameLen caps a set entry's declared name length; kernel names
// are short identifiers, so anything larger marks a corrupt stream and
// must not size an allocation.
const maxSetNameLen = 4096

// ReadSet deserializes a set written by WriteTo, holding each
// recording to the gpusim.DefaultRecordMaxBytes budget.
func ReadSet(r io.Reader) (*Set, error) {
	return ReadSetLimit(r, 0)
}

// ReadSetLimit deserializes a set written by WriteTo, failing with
// gpusim.ErrRecordingTooBig when any single recording's declared
// payload exceeds maxRecordBytes (0 means gpusim.DefaultRecordMaxBytes).
func ReadSetLimit(r io.Reader, maxRecordBytes uint64) (*Set, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(setMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: set header: %w", err)
	}
	if string(magic) != string(setMagic) {
		return nil, fmt.Errorf("trace: not an st2 recording set (bad magic %q)", magic)
	}
	scale, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: set scale: %w", err)
	}
	numSMs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: set SM count: %w", err)
	}
	seed, err := binary.ReadVarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: set seed: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: set entry count: %w", err)
	}
	s := NewSet(int(scale), int(numSMs), seed)
	for i := uint64(0); i < count; i++ {
		nameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: entry %d name length: %w", i, err)
		}
		if nameLen > maxSetNameLen {
			return nil, fmt.Errorf("trace: entry %d declares a %d-byte name (max %d)", i, nameLen, maxSetNameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("trace: entry %d name: %w", i, err)
		}
		rec, err := gpusim.ReadRecordingLimit(br, maxRecordBytes)
		if err != nil {
			return nil, fmt.Errorf("trace: entry %d (%s): %w", i, name, err)
		}
		s.Add(string(name), rec)
	}
	return s, nil
}

// writeFileAtomic writes a file via a sibling temp file renamed into
// place, so readers never observe a partial write. On any failure —
// write, sync, close, or the rename itself — the temp file is removed
// and the first error is returned; a crashed or failed writer leaves
// nothing behind. The data is fsynced before the rename and the parent
// directory after it: rename-without-sync can survive a crash as a
// zero-length or absent file even though the write "succeeded".
func writeFileAtomic(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Some
// platforms refuse to sync directories; those errors are ignored — the
// rename itself is still atomic there.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.EBADF) {
		return err
	}
	return nil
}

// WriteFile saves the set to path (atomically via a sibling temp file,
// so a crashed writer never leaves a truncated set behind).
func (s *Set) WriteFile(path string) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		_, err := s.WriteTo(w)
		return err
	})
}

// ReadSetFile loads a set saved by WriteFile.
func ReadSetFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSet(f)
}

// ReadSetFileLimit loads a set saved by WriteFile with a per-recording
// byte budget (see ReadSetLimit).
func ReadSetFileLimit(path string, maxRecordBytes uint64) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSetLimit(f, maxRecordBytes)
}

// SortedNames returns the kernel names in lexical order (handy for
// deterministic reporting regardless of capture order).
func (s *Set) SortedNames() []string {
	out := s.Names()
	sort.Strings(out)
	return out
}
