package trace

import (
	"fmt"
	"math"

	"st2gpu/internal/bitmath"
	"st2gpu/internal/core"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/speculate"
	"st2gpu/internal/stats"
)

// ApproxMeter quantifies what the error-accepting approximate speculative
// adders of the paper's related work ([10]–[13]) would do on real kernel
// streams: it executes every traced operation with the predicted carries
// and *no correction pass*, recording how often the result is wrong and
// by how much. This is the repository's evidence for the paper's central
// design decision — why ST² insists on the variable-latency correction.
type ApproxMeter struct {
	Designs []string
	preds   map[string]speculate.Predictor
	wrong   map[string]*stats.Rate
	relErr  map[string]*runningMean
	scratch warpScratch
}

type runningMean struct {
	sum float64
	n   uint64
}

func (r *runningMean) add(v float64) { r.sum += v; r.n++ }

// addRelative records |got−exact|/max(1,|exact|) with both values read as
// two's-complement signed results.
func (r *runningMean) addRelative(got, exact uint64) {
	denom := math.Max(1, math.Abs(float64(int64(exact))))
	r.add(math.Abs(float64(int64(got))-float64(int64(exact))) / denom)
}
func (r *runningMean) mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// NewApproxMeter builds the meter over the given designs (nil = the
// final ST² design and staticZero, the most common approximate-adder
// assumption).
func NewApproxMeter(designs []string) (*ApproxMeter, error) {
	if designs == nil {
		designs = []string{"staticZero", speculate.FinalDesign}
	}
	m := &ApproxMeter{
		Designs: designs,
		preds:   make(map[string]speculate.Predictor),
		wrong:   make(map[string]*stats.Rate),
		relErr:  make(map[string]*runningMean),
	}
	for _, d := range designs {
		p, err := speculate.NewDesign(d, g64)
		if err != nil {
			return nil, fmt.Errorf("trace: approx design %q: %w", d, err)
		}
		m.preds[d] = p
		m.wrong[d] = &stats.Rate{}
		m.relErr[d] = &runningMean{}
	}
	return m, nil
}

// widthOf returns the datapath width for a unit kind.
func widthOf(kind core.UnitKind) uint {
	switch kind {
	case core.ALU32:
		return 32
	case core.FPU:
		return 24
	case core.DPU:
		return 52
	default:
		return 64
	}
}

// approxSum assembles the no-correction result: each 8-bit slice adds
// with its predicted carry-in, wrong or not.
func approxSum(ea, eb uint64, cin0 uint, width uint, predicted uint64) uint64 {
	n := bitmath.NumSlices(width, 8)
	var out uint64
	for i := uint(0); i < n; i++ {
		lo := i * 8
		w := bitmath.SliceWidthAt(i, width, 8)
		cin := cin0
		if i > 0 {
			cin = uint((predicted >> (i - 1)) & 1)
		}
		s, _ := bitmath.AddWithCarry(bitmath.Slice(ea, lo, w), bitmath.Slice(eb, lo, w), cin, w)
		out |= s << lo
	}
	return out & bitmath.Mask(width)
}

// TraceWarpAdds implements gpusim.AddTracer. The warp is compacted once
// (the traced Sum doubles as the exact result — the recording integrity
// check pins Sum == EA+EB+Cin0 over the unit width) and every design
// runs the shared batched eval core.
func (m *ApproxMeter) TraceWarpAdds(kind core.UnitKind, pc, gtidBase uint32, ops *[32]gpusim.WarpAddOp) {
	r := m.scratch.compact(kind, pc, gtidBase, ops)
	for _, d := range m.Designs {
		approxStep(m.preds[d], m.wrong[d], m.relErr[d], r, &m.scratch.eval)
	}
}

// WrongRate returns the fraction of operations whose uncorrected result
// would have been wrong.
func (m *ApproxMeter) WrongRate(design string) (float64, error) {
	r, ok := m.wrong[design]
	if !ok {
		return 0, fmt.Errorf("trace: design %q not in approx meter", design)
	}
	return r.Value(), nil
}

// MeanRelError returns the mean relative magnitude error of the wrong
// results.
func (m *ApproxMeter) MeanRelError(design string) (float64, error) {
	r, ok := m.relErr[design]
	if !ok {
		return 0, fmt.Errorf("trace: design %q not in approx meter", design)
	}
	return r.mean(), nil
}
