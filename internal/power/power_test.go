package power

import (
	"math"
	"math/rand"
	"testing"

	"st2gpu/internal/circuit"
	"st2gpu/internal/core"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/isa"
)

func defaultTable(t *testing.T) Table {
	t.Helper()
	tbl, err := DefaultTable(circuit.SAED90())
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestComponentStrings(t *testing.T) {
	names := map[Component]string{
		CompALUFPU: "ALU+FPU", CompIntMulDiv: "int Mul/Div", CompFpMulDiv: "fp Mul/Div",
		CompSFU: "SFU", CompRegFile: "RegFile", CompCachesMC: "Caches+MC",
		CompNoC: "NoC", CompOthers: "Others", CompDRAM: "DRAM",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d: %q != %q", c, c.String(), want)
		}
	}
	if Component(99).String() != "Component(99)" {
		t.Error("unknown component string")
	}
	if len(Components()) != int(NumComponents) {
		t.Error("Components() length")
	}
}

func TestDefaultTableOrdering(t *testing.T) {
	tbl := defaultTable(t)
	// Within-component ordering sanity: div > mul, and the memory
	// hierarchy grows with distance. (Cross-component magnitudes are
	// calibrated effective energies, not raw circuit energies.)
	if !(tbl.SimpleOp < tbl.IntDiv && tbl.IntMul < tbl.IntDiv && tbl.FpMul < tbl.FpDiv) {
		t.Error("integer/fp energy ordering broken")
	}
	if !(tbl.RegAccess < tbl.SharedAccess && tbl.SharedAccess < tbl.L1Access &&
		tbl.L1Access < tbl.L2Access && tbl.L2Access < tbl.DRAMAccess) {
		t.Error("memory hierarchy energy ordering broken")
	}
	if tbl.ClockHz <= 0 || tbl.ConstWattsPerSM <= 0 {
		t.Error("table constants")
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	var b Breakdown
	b[CompALUFPU] = 3
	b[CompDRAM] = 2
	if b.Total() != 5 || b.Chip() != 3 {
		t.Errorf("total/chip: %g %g", b.Total(), b.Chip())
	}
	c := b.Add(b).Scale(0.5)
	if c.Total() != 5 {
		t.Errorf("add/scale: %g", c.Total())
	}
}

// synthetic run for pricing tests.
func fakeRun(mode gpusim.AdderMode) *gpusim.RunStats {
	rs := &gpusim.RunStats{
		Kernel:           "fake",
		Mode:             mode,
		Cycles:           10000,
		ThreadInstrs:     map[isa.FUClass]uint64{},
		WarpInstrs:       map[isa.FUClass]uint64{},
		Units:            map[core.UnitKind]core.UnitStats{},
		BaselineAdderOps: map[core.UnitKind]uint64{},
		SMsUsed:          2,
	}
	rs.ThreadInstrs[isa.FUAluAdd] = 50000
	rs.ThreadInstrs[isa.FUAluOther] = 30000
	rs.ThreadInstrs[isa.FUIntMul] = 10000
	rs.ThreadInstrs[isa.FUFpAdd] = 20000
	rs.ThreadInstrs[isa.FUFpMul] = 15000
	rs.ThreadInstrs[isa.FUSfu] = 2000
	rs.WarpInstrs[isa.FUMem] = 3000
	rs.RegReads = 200000
	rs.RegWrites = 90000
	rs.L1.Accesses = 4000
	rs.L2.Accesses = 900
	rs.DRAMAccesses = 300
	rs.SharedAccesses = 20000
	if mode == gpusim.ST2Adders {
		rs.Units[core.ALU32] = core.UnitStats{EnergyST2: 2e-8, EnergyBaseline: 7e-8}
		rs.Units[core.FPU] = core.UnitStats{EnergyST2: 8e-9, EnergyBaseline: 2.5e-8}
	} else {
		rs.BaselineAdderOps[core.ALU32] = 50000
		rs.BaselineAdderOps[core.FPU] = 20000
	}
	return rs
}

func testPrices(t *testing.T) map[core.UnitKind]core.EnergyParams {
	t.Helper()
	out := map[core.UnitKind]core.EnergyParams{}
	for _, k := range []core.UnitKind{core.ALU, core.ALU32, core.FPU, core.DPU} {
		cfg, err := k.AdderConfig(8)
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.DeriveEnergyParams(circuit.SAED90(), cfg.Width, 8)
		if err != nil {
			t.Fatal(err)
		}
		out[k] = p
	}
	return out
}

func TestFromRunPricesEveryComponent(t *testing.T) {
	tbl := defaultTable(t)
	prices := testPrices(t)
	b := FromRun(fakeRun(gpusim.BaselineAdders), prices, tbl)
	for c := Component(0); c < NumComponents; c++ {
		if b[c] <= 0 {
			t.Errorf("component %v priced at %g; every bucket should be active", c, b[c])
		}
	}
	// ST² run must spend less in ALU+FPU than baseline, all else equal.
	b2 := FromRun(fakeRun(gpusim.ST2Adders), prices, tbl)
	if b2[CompALUFPU] >= b[CompALUFPU] {
		t.Errorf("ST² ALU+FPU %g should undercut baseline %g", b2[CompALUFPU], b[CompALUFPU])
	}
	if b2[CompDRAM] != b[CompDRAM] {
		t.Error("DRAM energy should not depend on the adder mode")
	}
	if s := tbl.Seconds(fakeRun(gpusim.BaselineAdders)); s <= 0 {
		t.Error("Seconds")
	}
}

func TestModelPredict(t *testing.T) {
	var m Model
	for i := range m.Scale {
		m.Scale[i] = 1
	}
	m.PConst = 10
	m.PIdleSM = 1
	var b Breakdown
	b[CompALUFPU] = 5 // joules
	got := m.Predict(b, 2.0, 3)
	if math.Abs(got-(10+3+2.5)) > 1e-12 {
		t.Errorf("Predict = %g, want 15.5", got)
	}
	if m.Predict(b, 0, 0) != 0 {
		t.Error("zero duration should predict 0")
	}
}

// The full Section V-C story: generate stressor samples from a hidden
// silicon, calibrate, and validate on a held-out set. With modest noise
// the recovered factors are close and validation error is in the paper's
// ≈10% regime.
func TestCalibrationRecoversSilicon(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	silicon := NewSilicon(42, 0.05)

	synth := func(n int, tag float64) []Sample {
		out := make([]Sample, n)
		for i := range out {
			var b Breakdown
			// Each synthetic stressor emphasizes one component (×10) over
			// a random baseline mix — mimicking the isolation micros. The
			// magnitudes are GPU-realistic (tens of watts per component) so
			// the factors are identifiable above the constant term.
			for c := range b {
				b[c] = (0.2 + rng.Float64()) * 8 * tag
			}
			b[Component(i%int(NumComponents))] *= 10
			secs := 0.5 + rng.Float64()
			idle := rng.Intn(4)
			out[i] = Sample{
				Name:     "synth",
				B:        b,
				Seconds:  secs,
				IdleSMs:  idle,
				Measured: silicon.Measure(b, secs, idle),
			}
		}
		return out
	}

	train := synth(123, 1.0)
	m, err := Calibrate(train)
	if err != nil {
		t.Fatal(err)
	}
	truth := silicon.Truth()
	for i := range truth.Scale {
		if rel := math.Abs(m.Scale[i]-truth.Scale[i]) / truth.Scale[i]; rel > 0.25 {
			t.Errorf("scale[%v] = %.3f vs truth %.3f (%.0f%% off)",
				Component(i), m.Scale[i], truth.Scale[i], rel*100)
		}
	}

	val := synth(23, 1.3)
	rep, err := Validate(m, val)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeanAbsRelErr > 0.15 {
		t.Errorf("validation MARE %.3f; paper-regime is ≈0.10", rep.MeanAbsRelErr)
	}
	if rep.PearsonR < 0.7 {
		t.Errorf("Pearson r %.3f; paper reports 0.8", rep.PearsonR)
	}
	if rep.N != 23 {
		t.Errorf("N = %d", rep.N)
	}
}

func TestCalibrationNoiseless(t *testing.T) {
	silicon := NewSilicon(5, 0)
	rng := rand.New(rand.NewSource(6))
	samples := make([]Sample, 40)
	for i := range samples {
		var b Breakdown
		for c := range b {
			b[c] = rng.Float64() * 10
		}
		b[Component(i%int(NumComponents))] *= 8
		samples[i] = Sample{B: b, Seconds: 1, IdleSMs: i % 3,
			Measured: silicon.Measure(b, 1, i%3)}
	}
	m, err := Calibrate(samples)
	if err != nil {
		t.Fatal(err)
	}
	truth := silicon.Truth()
	for i := range truth.Scale {
		if math.Abs(m.Scale[i]-truth.Scale[i]) > 1e-6 {
			t.Fatalf("noiseless recovery failed: scale[%d] %.6f vs %.6f",
				i, m.Scale[i], truth.Scale[i])
		}
	}
	if math.Abs(m.PConst-truth.PConst) > 1e-6 || math.Abs(m.PIdleSM-truth.PIdleSM) > 1e-6 {
		t.Error("constant terms not recovered")
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(nil); err == nil {
		t.Error("too few samples should error")
	}
	bad := make([]Sample, 20)
	for i := range bad {
		bad[i] = Sample{Seconds: 0}
	}
	if _, err := Calibrate(bad); err == nil {
		t.Error("zero-duration sample should error")
	}
	if _, err := Validate(Model{}, nil); err == nil {
		t.Error("validate with no samples should error")
	}
}
