package power

import (
	"fmt"
	"math/rand"

	"st2gpu/internal/stats"
)

// Model is Equation 1 of the paper:
//
//	P_total = P_const + N_idleSM·P_idleSM + Σ_i P_i·Scale_i
//
// where P_i is the modeled (un-scaled) power of component i and Scale_i
// the calibrated correction factor.
type Model struct {
	Scale   [NumComponents]float64
	PConst  float64 // watts
	PIdleSM float64 // watts per idle SM
}

// Predict evaluates the model for one run: component average powers
// (breakdown energies over the run duration), the idle-SM count, and the
// constant term.
func (m Model) Predict(b Breakdown, seconds float64, idleSMs int) float64 {
	if seconds <= 0 {
		return 0
	}
	p := m.PConst + float64(idleSMs)*m.PIdleSM
	for i := 0; i < int(NumComponents); i++ {
		p += b[i] / seconds * m.Scale[i]
	}
	return p
}

// Sample is one calibration observation: a workload's activity breakdown
// plus the silicon's measured average power.
type Sample struct {
	Name     string
	B        Breakdown
	Seconds  float64
	IdleSMs  int
	Measured float64 // watts
}

// Silicon is the synthetic stand-in for the NVML-probed TITAN V: a
// ground-truth Model with hidden scale factors, plus multiplicative
// measurement noise (the 50–100 Hz power probe's jitter).
type Silicon struct {
	truth Model
	noise float64
	rng   *rand.Rand
}

// NewSilicon builds a silicon instance. Hidden factors are drawn from
// [0.7, 1.4] — the same order of deviation GPUWattch's un-calibrated
// component models show against hardware — and measurements carry
// Gaussian noise with the given relative sigma. The constant terms are
// sized for the scaled-down simulated chip (a few-SM device), keeping
// the dynamic/constant power ratio of real hardware so the validation
// statistics are meaningful.
func NewSilicon(seed int64, noiseSigma float64) *Silicon {
	r := rand.New(rand.NewSource(seed))
	var truth Model
	for i := range truth.Scale {
		truth.Scale[i] = 0.7 + 0.7*r.Float64()
	}
	truth.PConst = 0.05 + 0.04*r.Float64()
	truth.PIdleSM = 0.008 + 0.008*r.Float64()
	return &Silicon{truth: truth, noise: noiseSigma, rng: r}
}

// Truth exposes the hidden model (for tests only).
func (s *Silicon) Truth() Model { return s.truth }

// Measure returns the silicon's noisy power reading for a run.
func (s *Silicon) Measure(b Breakdown, seconds float64, idleSMs int) float64 {
	p := s.truth.Predict(b, seconds, idleSMs)
	return p * (1 + s.noise*s.rng.NormFloat64())
}

// Calibrate solves Equation 1's scale factors (plus P_const and
// P_idleSM) from the stressor samples with non-negative least squares,
// exactly the paper's "least-square-error solver to calibrate the
// GPUWattch power scaling factors per component".
func Calibrate(samples []Sample) (Model, error) {
	if len(samples) < int(NumComponents)+2 {
		return Model{}, fmt.Errorf("power: %d samples cannot identify %d factors",
			len(samples), int(NumComponents)+2)
	}
	nUnknowns := int(NumComponents) + 2
	a := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for r, s := range samples {
		if s.Seconds <= 0 {
			return Model{}, fmt.Errorf("power: sample %q has non-positive duration", s.Name)
		}
		row := make([]float64, nUnknowns)
		for i := 0; i < int(NumComponents); i++ {
			row[i] = s.B[i] / s.Seconds
		}
		row[NumComponents] = 1 // P_const
		row[NumComponents+1] = float64(s.IdleSMs)
		a[r] = row
		y[r] = s.Measured
	}
	x, err := stats.NonNegativeLeastSquares(a, y)
	if err != nil {
		return Model{}, fmt.Errorf("power: calibration solve: %w", err)
	}
	var m Model
	copy(m.Scale[:], x[:NumComponents])
	m.PConst = x[NumComponents]
	m.PIdleSM = x[NumComponents+1]
	return m, nil
}

// ValidationReport summarizes model accuracy on a held-out suite — the
// paper reports 10.5% ± 3.8% mean absolute relative error and Pearson
// r = 0.8 on its 23 kernels.
type ValidationReport struct {
	MeanAbsRelErr float64
	ErrCI95       float64
	PearsonR      float64
	N             int
}

// Validate evaluates the calibrated model on independent samples.
func Validate(m Model, samples []Sample) (ValidationReport, error) {
	if len(samples) < 2 {
		return ValidationReport{}, fmt.Errorf("power: need at least 2 validation samples")
	}
	pred := make([]float64, len(samples))
	meas := make([]float64, len(samples))
	errs := make([]float64, len(samples))
	for i, s := range samples {
		pred[i] = m.Predict(s.B, s.Seconds, s.IdleSMs)
		meas[i] = s.Measured
		e := (pred[i] - meas[i]) / meas[i]
		if e < 0 {
			e = -e
		}
		errs[i] = e
	}
	mare, err := stats.MeanAbsRelError(pred, meas)
	if err != nil {
		return ValidationReport{}, err
	}
	_, ci, err := stats.MeanCI95(errs)
	if err != nil {
		return ValidationReport{}, err
	}
	r, err := stats.Pearson(pred, meas)
	if err != nil {
		return ValidationReport{}, err
	}
	return ValidationReport{MeanAbsRelErr: mare, ErrCI95: ci, PearsonR: r, N: len(samples)}, nil
}
