// Package power is the repository's substitute for the paper's
// GPUWattch + NVML power-modeling workflow (Section V-C): a
// component-level energy model over the simulator's activity counters
// (Equation 1 of the paper), a synthetic "silicon" with hidden
// per-component scale factors and measurement noise standing in for the
// TITAN V under NVML probing, the 123-stressor least-squares calibration
// that recovers those factors, and the per-kernel energy breakdowns of
// Figure 7.
package power

import (
	"fmt"

	"st2gpu/internal/circuit"
	"st2gpu/internal/core"
	"st2gpu/internal/gpusim"
	"st2gpu/internal/isa"
)

// Component enumerates the Figure 7 energy buckets.
type Component int

const (
	CompALUFPU Component = iota // adders + simple int/FP ops (ST²'s target)
	CompIntMulDiv
	CompFpMulDiv
	CompSFU
	CompRegFile
	CompCachesMC
	CompNoC
	CompOthers // front-end, scheduling, leakage, board constants
	CompDRAM
	NumComponents
)

func (c Component) String() string {
	switch c {
	case CompALUFPU:
		return "ALU+FPU"
	case CompIntMulDiv:
		return "int Mul/Div"
	case CompFpMulDiv:
		return "fp Mul/Div"
	case CompSFU:
		return "SFU"
	case CompRegFile:
		return "RegFile"
	case CompCachesMC:
		return "Caches+MC"
	case CompNoC:
		return "NoC"
	case CompOthers:
		return "Others"
	case CompDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Components lists all buckets in Figure 7 stacking order.
func Components() []Component {
	out := make([]Component, NumComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Table holds the per-event energies (joules) and static powers (watts)
// the activity counters are priced with — the "P_i from our GPUWattch
// simulations" of Equation 1. Adder energies are *not* here: they come
// from the circuit characterization through core.EnergyParams.
type Table struct {
	SimpleOp     float64 // one ALU non-add lane-op (logic, min, setp, mov)
	IntMul       float64
	IntDiv       float64 // the multi-instruction division sequence
	FpMul        float64 // also FMA, min/max
	FpDiv        float64
	SfuOp        float64
	RegAccess    float64 // one lane register read or write
	SharedAccess float64
	L1Access     float64
	L2Access     float64
	NoCPerL2     float64 // interconnect traversal per L2 access
	DRAMAccess   float64
	MemInstr     float64 // LSU front-end per warp memory instruction

	IssuePerWarpInstr  float64 // fetch/decode/issue/operand-collector energy per warp instruction
	OtherPerCyclePerSM float64 // clocking/leakage per SM-cycle
	ConstWattsPerSM    float64 // per-SM share of board constants (fans, regulators, leakage)
	IdleSMWatts        float64 // static power of an idle SM (P_idleSM)
	ClockHz            float64
}

// DefaultTable derives the pricing from the circuit technology, anchored
// on the reference adder's energy. The cross-component ratios are
// *calibrated effective* energies — chosen so the 23-kernel suite's
// average baseline breakdown lands at the paper's Figure 7 shares
// (ALU+FPU ≈ 27% of system energy, DRAM ≈ 17%, RegFile ≈ 9%, Others ≈
// 20%) given this simulator's activity profile. This mirrors the paper's
// own methodology, where GPUWattch's raw component energies are rescaled
// by solver-fit factors until they reproduce silicon measurements.
func DefaultTable(tech circuit.Technology) (Table, error) {
	ref, err := tech.CharacterizeAdder(circuit.AdderSpec{Kind: circuit.ParallelPrefix, Width: 64}, tech.VNominal)
	if err != nil {
		return Table{}, err
	}
	add := ref.EnergyOp // ≈ a few pJ: the unit everything is scaled from
	return Table{
		SimpleOp:     0.12 * add,
		IntMul:       0.50 * add,
		IntDiv:       2.2 * add,
		FpMul:        0.70 * add,
		FpDiv:        4.6 * add,
		SfuOp:        4.2 * add,
		RegAccess:    0.034 * add,
		SharedAccess: 0.34 * add,
		L1Access:     1.10 * add,
		L2Access:     3.8 * add,
		NoCPerL2:     34 * add,
		DRAMAccess:   210 * add,
		MemInstr:     0.21 * add,

		IssuePerWarpInstr:  2.2 * add,
		OtherPerCyclePerSM: 0.10 * add,
		ConstWattsPerSM:    0.006,
		IdleSMWatts:        0.3,
		ClockHz:            1.2e9,
	}, nil
}

// Breakdown is a per-component energy vector in joules.
type Breakdown [NumComponents]float64

// Total returns the system energy (all components).
func (b Breakdown) Total() float64 {
	var s float64
	for _, v := range b {
		s += v
	}
	return s
}

// Chip returns the chip energy — everything but DRAM (the paper's "21%
// chip energy savings (excluding DRAM)").
func (b Breakdown) Chip() float64 { return b.Total() - b[CompDRAM] }

// Add returns the element-wise sum.
func (b Breakdown) Add(o Breakdown) Breakdown {
	for i := range b {
		b[i] += o[i]
	}
	return b
}

// Scale returns the element-wise product with a scalar.
func (b Breakdown) Scale(f float64) Breakdown {
	for i := range b {
		b[i] *= f
	}
	return b
}

// FromRun prices one kernel run's activity into a per-component energy
// breakdown. prices must be the device's core.EnergyParams map so the
// adder energy matches the microarchitecture that actually ran (baseline
// reference adders or ST² slices + CRF + level shifters).
func FromRun(rs *gpusim.RunStats, prices map[core.UnitKind]core.EnergyParams, tbl Table) Breakdown {
	var b Breakdown

	// --- ALU+FPU: the adders first. ---
	// Fold per-unit energies in canonical kind order: float addition
	// re-rounds under reordering, so ranging the maps directly would make
	// the energy figures depend on map iteration order.
	if rs.Mode == gpusim.ST2Adders {
		for _, kind := range core.UnitKinds {
			b[CompALUFPU] += rs.Units[kind].EnergyST2
		}
	} else {
		for _, kind := range core.UnitKinds {
			b[CompALUFPU] += float64(rs.BaselineAdderOps[kind]) * prices[kind].RefAdderEnergy
		}
	}
	// Simple single-cycle ops share the ALU+FPU bucket.
	b[CompALUFPU] += float64(rs.ThreadInstrs[isa.FUAluOther]) * tbl.SimpleOp

	b[CompIntMulDiv] = float64(rs.ThreadInstrs[isa.FUIntMul])*tbl.IntMul +
		float64(rs.ThreadInstrs[isa.FUIntDiv])*tbl.IntDiv
	b[CompFpMulDiv] = float64(rs.ThreadInstrs[isa.FUFpMul])*tbl.FpMul +
		float64(rs.ThreadInstrs[isa.FUFpDiv])*tbl.FpDiv
	b[CompSFU] = float64(rs.ThreadInstrs[isa.FUSfu]) * tbl.SfuOp
	b[CompRegFile] = float64(rs.RegReads+rs.RegWrites) * tbl.RegAccess
	b[CompCachesMC] = float64(rs.L1.Accesses)*tbl.L1Access +
		float64(rs.L2.Accesses)*tbl.L2Access +
		float64(rs.SharedAccesses)*tbl.SharedAccess +
		float64(rs.WarpInstrs[isa.FUMem])*tbl.MemInstr
	b[CompNoC] = float64(rs.L2.Accesses) * tbl.NoCPerL2
	b[CompDRAM] = float64(rs.DRAMAccesses) * tbl.DRAMAccess

	// Others: per-warp-instruction front-end energy (fetch, decode, issue,
	// operand collector), per-SM-cycle clocking/leakage, and the per-SM
	// constant-power share integrated over the run. Scaling the board
	// constants by the SMs actually used keeps the breakdown meaningful on
	// scaled-down simulations (the full-chip constant would otherwise
	// swamp the dynamic energy of a 2-SM run).
	var warpInstrs uint64
	for _, v := range rs.WarpInstrs {
		warpInstrs += v
	}
	seconds := float64(rs.Cycles) / tbl.ClockHz
	b[CompOthers] = float64(warpInstrs)*tbl.IssuePerWarpInstr +
		float64(rs.Cycles)*float64(rs.SMsUsed)*tbl.OtherPerCyclePerSM +
		tbl.ConstWattsPerSM*float64(rs.SMsUsed)*seconds
	return b
}

// Seconds returns the wall-clock duration of a run under the table's
// clock.
func (tbl Table) Seconds(rs *gpusim.RunStats) float64 {
	return float64(rs.Cycles) / tbl.ClockHz
}
