package analysis

import (
	"strings"
)

// DetOk is the companion check for the suppression mechanism itself: a
// `//st2:det-ok` or `//st2:conc-ok` comment must carry a reason, and
// near-miss spellings of the directives must not silently do nothing.
//
// A reasonless suppression is doubly broken — it suppresses nothing
// (Filter ignores it) while looking like it does — so it is reported,
// and the report cannot itself be suppressed. Unknown `//st2:`
// directives (typos like //st2:detok or //st2:conc-okay) are reported
// too, since a typoed suppression would otherwise leave its target
// finding active with no hint why.
//
// Stale suppressions — reasoned directives whose line carries no
// finding from the directive's analyzer family — are detok's third
// concern, detected by the checker after filtering (StaleSuppressions)
// and attributed to this analyzer. A suppression that covers nothing is
// a finding that was fixed without deleting its excuse, and it will
// hide the next real finding on that line.
var DetOk = &Analyzer{
	Name: "detok",
	Doc: "requires //st2:det-ok and //st2:conc-ok suppressions to carry a reason\n\n" +
		"A directive without a reason suppresses nothing and is flagged; " +
		"unknown //st2: directives are flagged as probable typos; reasoned " +
		"suppressions that cover no finding are flagged as stale.",
	Run: runDetOk,
}

func runDetOk(pass *Pass) error {
	prefixes := []string{DetOkPrefix, ConcOkPrefix}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//st2:")
				if !ok {
					continue
				}
				known := false
				for _, prefix := range prefixes {
					after, ok := strings.CutPrefix(c.Text, prefix)
					if !ok || (after != "" && after[0] != ' ' && after[0] != '\t') {
						continue
					}
					known = true
					if strings.TrimSpace(after) == "" {
						pass.Reportf(c.Pos(),
							"%s suppression is missing a reason: write %s <why this site is safe>; a reasonless directive suppresses nothing",
							prefix, prefix)
					}
					break
				}
				if known {
					continue
				}
				word := rest
				if i := strings.IndexAny(word, " \t"); i >= 0 {
					word = word[:i]
				}
				pass.Reportf(c.Pos(),
					"unknown //st2: directive %q: recognized directives are %s <reason> and %s <reason>",
					"//st2:"+word, DetOkPrefix, ConcOkPrefix)
			}
		}
	}
	return nil
}
