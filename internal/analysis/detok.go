package analysis

import (
	"strings"
)

// DetOk is the companion check for the suppression mechanism itself: a
// `//st2:det-ok` comment must carry a reason, and near-miss spellings of
// the directive must not silently do nothing.
//
// A reasonless suppression is doubly broken — it suppresses nothing
// (Filter ignores it) while looking like it does — so it is reported,
// and the report cannot itself be suppressed. Unknown `//st2:`
// directives (typos like //st2:detok or //st2:det-okay) are reported
// too, since a typoed suppression would otherwise leave its target
// finding active with no hint why.
var DetOk = &Analyzer{
	Name: "detok",
	Doc: "requires //st2:det-ok suppressions to carry a reason\n\n" +
		"A det-ok without a reason suppresses nothing and is flagged; " +
		"unknown //st2: directives are flagged as probable typos.",
	Run: runDetOk,
}

func runDetOk(pass *Pass) error {
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//st2:")
				if !ok {
					continue
				}
				if after, ok := strings.CutPrefix(c.Text, DetOkPrefix); ok &&
					(after == "" || after[0] == ' ' || after[0] == '\t') {
					if strings.TrimSpace(after) == "" {
						pass.Reportf(c.Pos(),
							"%s suppression is missing a reason: write %s <why this site is deterministic>; a reasonless det-ok suppresses nothing",
							DetOkPrefix, DetOkPrefix)
					}
					continue
				}
				word := rest
				if i := strings.IndexAny(word, " \t"); i >= 0 {
					word = word[:i]
				}
				pass.Reportf(c.Pos(),
					"unknown //st2: directive %q: the only recognized directive is %s <reason>",
					"//st2:"+word, DetOkPrefix)
			}
		}
	}
	return nil
}
