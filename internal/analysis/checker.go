package analysis

import (
	"fmt"
	"go/token"
	"strings"

	"st2gpu/internal/analysis/load"
)

// All returns the full st2lint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{DetMapRange, DetClock, ShardOwn, FoldOrder, DetOk}
}

// ByName resolves a comma-separated analyzer list ("detmaprange,detok");
// empty selects the whole suite.
func ByName(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("st2lint: unknown analyzer %q (have %s)", n, strings.Join(Names(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Names lists the suite's analyzer names in order.
func Names() []string {
	var out []string
	for _, a := range All() {
		out = append(out, a.Name)
	}
	return out
}

// CheckPackages runs the analyzers over loaded packages, applies
// //st2:det-ok suppression filtering, and returns the surviving
// findings sorted by position. Packages that failed to load contribute
// an error instead of silently passing.
func CheckPackages(pkgs []*load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			return nil, fmt.Errorf("st2lint: %s did not type-check: %v", pkg.ImportPath, pkg.Errors[0])
		}
		pkgDiags, err := checkOnePackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, pkgDiags...)
	}
	SortDiagnostics(diags)
	return diags, nil
}

// checkOnePackage applies the analyzers to one package and filters
// suppressed findings. Suppression state is per package: a det-ok
// comment can only cover findings in its own file.
func checkOnePackage(pkg *load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Skip != nil && a.Skip(pkg.ImportPath) {
			continue
		}
		if err := runOne(a, pkg.Fset, pkg.Syntax, pkg.Types, pkg.TypesInfo, pkg.ImportPath, &diags); err != nil {
			return nil, fmt.Errorf("st2lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sup := Suppressions(pkg.Fset, pkg.Syntax)
	return Filter(diags, sup), nil
}

// CheckForTests applies the analyzers to one loaded package without the
// per-analyzer Skip filter (testdata import paths are synthetic) and
// with suppression filtering, returning the surviving findings sorted.
// It is the analysistest harness's entry point.
func CheckForTests(pkg *load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if err := runOne(a, pkg.Fset, pkg.Syntax, pkg.Types, pkg.TypesInfo, pkg.ImportPath, &diags); err != nil {
			return nil, fmt.Errorf("st2lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sup := Suppressions(pkg.Fset, pkg.Syntax)
	diags = Filter(diags, sup)
	SortDiagnostics(diags)
	return diags, nil
}

// Run is the multichecker entry point: load patterns from dir, check,
// return findings.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	pkgs, err := load.Load(fset, dir, patterns...)
	if err != nil {
		return nil, err
	}
	return CheckPackages(pkgs, analyzers)
}
