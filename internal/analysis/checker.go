package analysis

import (
	"fmt"
	"go/token"
	"strings"

	"st2gpu/internal/analysis/load"
)

// All returns the full st2lint suite in reporting order: the first-
// generation determinism analyzers, the second-generation concurrency
// and input-hardening analyzers, then the suppression-hygiene check.
func All() []*Analyzer {
	return []*Analyzer{
		DetMapRange, DetClock, ShardOwn, FoldOrder,
		WireTaint, GoLeak, LockOrder, ChanDisc,
		DetOk,
	}
}

// ByName resolves a comma-separated analyzer list ("detmaprange,detok");
// empty selects the whole suite.
func ByName(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("st2lint: unknown analyzer %q (have %s)", n, strings.Join(Names(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

// Names lists the suite's analyzer names in order.
func Names() []string {
	var out []string
	for _, a := range All() {
		out = append(out, a.Name)
	}
	return out
}

// CheckPackages runs the analyzers over loaded packages, applies
// suppression filtering, and returns the surviving findings sorted by
// position. Packages arrive in dependency order, so facts exported
// while checking a dependency are visible to its importers' passes.
// Packages that failed to load contribute an error instead of silently
// passing.
func CheckPackages(pkgs []*load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := NewFacts()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		if len(pkg.Errors) > 0 {
			return nil, fmt.Errorf("st2lint: %s did not type-check: %v", pkg.ImportPath, pkg.Errors[0])
		}
		pkgDiags, err := checkOnePackage(pkg, analyzers, facts)
		if err != nil {
			return nil, err
		}
		diags = append(diags, pkgDiags...)
	}
	SortDiagnostics(diags)
	return diags, nil
}

// checkOnePackage applies the analyzers to one package and filters
// suppressed findings. Suppression state is per package: a det-ok or
// conc-ok comment can only cover findings in its own file. Reasoned
// suppressions that covered nothing are reported as stale (when the
// full directive family ran; see StaleSuppressions).
func checkOnePackage(pkg *load.Package, analyzers []*Analyzer, facts *Facts) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Skip != nil && a.Skip(pkg.ImportPath) {
			continue
		}
		if err := runOne(a, pkg.Fset, pkg.Syntax, pkg.Types, pkg.TypesInfo, pkg.ImportPath, facts, &diags); err != nil {
			return nil, fmt.Errorf("st2lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sup := Suppressions(pkg.Fset, pkg.Syntax)
	diags = Filter(diags, sup)
	return append(diags, StaleSuppressions(sup, analyzers)...), nil
}

// CheckForTests applies the analyzers to one loaded package without the
// per-analyzer Skip filter (testdata import paths are synthetic) and
// with suppression filtering, returning the surviving findings sorted.
// Sibling testdata dependencies are checked first — diagnostics
// discarded, facts kept — so cross-package fact propagation is
// exercised exactly as in a real run. It is the analysistest harness's
// entry point.
func CheckForTests(pkg *load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := NewFacts()
	for _, dep := range pkg.SiblingDeps() {
		var depDiags []Diagnostic
		for _, a := range analyzers {
			if err := runOne(a, dep.Fset, dep.Syntax, dep.Types, dep.TypesInfo, dep.ImportPath, facts, &depDiags); err != nil {
				return nil, fmt.Errorf("st2lint: %s on dep %s: %w", a.Name, dep.ImportPath, err)
			}
		}
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		if err := runOne(a, pkg.Fset, pkg.Syntax, pkg.Types, pkg.TypesInfo, pkg.ImportPath, facts, &diags); err != nil {
			return nil, fmt.Errorf("st2lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sup := Suppressions(pkg.Fset, pkg.Syntax)
	diags = Filter(diags, sup)
	diags = append(diags, StaleSuppressions(sup, analyzers)...)
	SortDiagnostics(diags)
	return diags, nil
}

// Run is the multichecker entry point: load patterns from dir, check,
// return findings. cacheDir, when non-empty, caches the `go list` load
// (see load.LoadCached).
func Run(dir string, patterns []string, analyzers []*Analyzer, cacheDir string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	pkgs, err := load.LoadCached(fset, dir, cacheDir, patterns...)
	if err != nil {
		return nil, err
	}
	return CheckPackages(pkgs, analyzers)
}
