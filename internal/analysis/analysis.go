// Package analysis is st2lint: a suite of static analyzers that enforce
// the simulator's determinism and shard-ownership invariants at lint
// time, before a map-order fold or a stray wall-clock read can silently
// skew a reproduced paper figure.
//
// The headline guarantee of the parallel simulator — bit-identical
// RunStats, recordings, and sweep rows at any worker count — is enforced
// at runtime by tests like TestSweepBitIdenticalAcrossWorkers, but
// runtime tests only cover the paths they exercise. These analyzers
// check every function in the tree:
//
//   - detmaprange: no map-order iteration in result-producing paths
//   - detclock:    no wall-clock or global-rand reads in simulation code
//   - shardown:    worker goroutines write only worker-owned shards
//   - foldorder:   cross-shard float folds happen in blessed fold helpers
//   - detok:       //st2:det-ok suppressions must carry a reason
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, an analysistest-style harness) so the
// suite can migrate to the upstream driver if the repository ever takes
// that dependency; the build intentionally stays stdlib-only.
//
// A finding is suppressed by a line comment on the flagged line or the
// line above it:
//
//	//st2:det-ok <reason>
//
// The reason is mandatory: a det-ok with no reason does not suppress
// anything and is itself flagged by the detok analyzer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name is the analyzer's identifier, printed with each diagnostic
	// and accepted by st2lint's -run filter.
	Name string
	// Doc states the invariant the analyzer encodes, first line short.
	Doc string
	// Directive is the suppression directive that silences this
	// analyzer's findings ("det-ok" or "conc-ok"); empty means det-ok.
	// The determinism analyzers answer to //st2:det-ok, the concurrency
	// and input-hardening analyzers to //st2:conc-ok, so a reviewer can
	// tell at the suppression site which invariant family is being
	// waived.
	Directive string
	// Skip reports whether the analyzer does not apply to the package
	// with the given import path (nil: applies everywhere). Skipped
	// packages are not traversed at all.
	Skip func(pkgPath string) bool
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass) error
}

// directive returns the analyzer's suppression directive name,
// defaulting to det-ok.
// directive returns the suppression family for a's findings; empty for
// detok, whose findings are unsuppressible.
func (a *Analyzer) directive() string {
	return a.Directive
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	PkgPath   string

	facts *Facts
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportRangef(pos, pos, format, args...)
}

// ReportRangef records a finding spanning [pos, end), so editor and CI
// annotators can underline the whole offending expression rather than
// one column.
func (p *Pass) ReportRangef(pos, end token.Pos, format string, args ...any) {
	endp := p.Fset.Position(pos)
	if end.IsValid() && end >= pos {
		endp = p.Fset.Position(end)
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer:  p.Analyzer.Name,
		Directive: p.Analyzer.directive(),
		Pos:       p.Fset.Position(pos),
		End:       endp,
		Message:   fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with its position resolved.
type Diagnostic struct {
	Analyzer string
	// Directive names the suppression directive that can silence this
	// finding (det-ok or conc-ok); empty for unsuppressible findings.
	Directive string
	Pos       token.Position
	// End is the exclusive end of the flagged range; equal to Pos for
	// point findings.
	End     token.Position
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// SortDiagnostics orders findings by file, line, column, then analyzer,
// so lint output is stable run to run.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Suppression directive names and their comment prefixes. The directive
// form (no space after //, like //go:build) keeps them out of godoc.
const (
	// DirectiveDetOk suppresses determinism findings (detmaprange,
	// detclock, shardown, foldorder).
	DirectiveDetOk = "det-ok"
	// DirectiveConcOk suppresses concurrency-safety and input-hardening
	// findings (wiretaint, goleak, lockorder, chandisc).
	DirectiveConcOk = "conc-ok"

	DetOkPrefix  = "//st2:det-ok"
	ConcOkPrefix = "//st2:conc-ok"
)

// DirectivePrefix returns the comment prefix for a directive name.
func DirectivePrefix(directive string) string {
	return "//st2:" + directive
}

// Suppression is one parsed //st2:det-ok or //st2:conc-ok comment.
type Suppression struct {
	Pos       token.Position
	Directive string // det-ok or conc-ok
	Reason    string // empty reasons are invalid and suppress nothing
	Used      bool
}

// Suppressions collects every suppression comment in the files, keyed by
// (filename, line). Multi-line comment groups attach each directive to
// its own line.
func Suppressions(fset *token.FileSet, files []*ast.File) map[string]map[int]*Suppression {
	out := make(map[string]map[int]*Suppression)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, directive := range []string{DirectiveDetOk, DirectiveConcOk} {
					text, ok := strings.CutPrefix(c.Text, DirectivePrefix(directive))
					if !ok {
						continue
					}
					// Guard against //st2:det-okay and friends: the directive
					// must end exactly at the prefix or be followed by space.
					if text != "" && text[0] != ' ' && text[0] != '\t' {
						continue
					}
					pos := fset.Position(c.Pos())
					byLine := out[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]*Suppression)
						out[pos.Filename] = byLine
					}
					byLine[pos.Line] = &Suppression{Pos: pos, Directive: directive, Reason: strings.TrimSpace(text)}
					break
				}
			}
		}
	}
	return out
}

// Filter drops findings covered by a valid suppression — with the
// matching directive — on the same line or the line directly above,
// marking those suppressions used. Findings from the detok analyzer
// itself are never suppressible.
func Filter(diags []Diagnostic, sup map[string]map[int]*Suppression) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != DetOk.Name {
			if s := lookupSuppression(sup, d.Pos); s != nil && s.Reason != "" && s.Directive == d.Directive {
				s.Used = true
				continue
			}
		}
		kept = append(kept, d)
	}
	return kept
}

func lookupSuppression(sup map[string]map[int]*Suppression, pos token.Position) *Suppression {
	byLine := sup[pos.Filename]
	if byLine == nil {
		return nil
	}
	if s := byLine[pos.Line]; s != nil {
		return s
	}
	return byLine[pos.Line-1]
}

// StaleSuppressions reports reasoned suppressions that covered no
// finding — dead directives that accumulate silently and hide nothing.
// A directive family is only judged when every analyzer it can suppress
// ran (otherwise a det-ok for a not-run analyzer would look stale), and
// the findings are attributed to detok, so they are unsuppressible like
// the rest of the suppression-hygiene checks.
func StaleSuppressions(sup map[string]map[int]*Suppression, analyzers []*Analyzer) []Diagnostic {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	if !ran[DetOk.Name] {
		return nil
	}
	complete := map[string]bool{DirectiveDetOk: true, DirectiveConcOk: true}
	for _, a := range All() {
		if a.Name != DetOk.Name && !ran[a.Name] {
			complete[a.directive()] = false
		}
	}
	var out []Diagnostic
	for _, byLine := range sup {
		for _, s := range byLine {
			if s.Used || s.Reason == "" || !complete[s.Directive] {
				continue
			}
			out = append(out, Diagnostic{
				Analyzer: DetOk.Name,
				Pos:      s.Pos,
				End:      s.Pos,
				Message: fmt.Sprintf(
					"stale %s suppression: no analyzer reports anything on this line; delete the directive (dead suppressions hide future findings)",
					DirectivePrefix(s.Directive)),
			})
		}
	}
	return out
}

// runOne applies one analyzer to one package, with facts carried across
// packages of the same run.
func runOne(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, pkgPath string, facts *Facts, diags *[]Diagnostic) error {
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		PkgPath:   pkgPath,
		facts:     facts,
		diags:     diags,
	}
	return a.Run(pass)
}
