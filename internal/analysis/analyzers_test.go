package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"st2gpu/internal/analysis"
	"st2gpu/internal/analysis/analysistest"
)

func testdata(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestDetMapRange(t *testing.T) {
	analysistest.Run(t, testdata("detmaprange"), analysis.DetMapRange)
}

func TestDetClock(t *testing.T) {
	analysistest.Run(t, testdata("detclock"), analysis.DetClock)
}

func TestShardOwn(t *testing.T) {
	analysistest.Run(t, testdata("shardown"), analysis.ShardOwn)
}

func TestFoldOrder(t *testing.T) {
	analysistest.Run(t, testdata("foldorder"), analysis.FoldOrder)
}

// TestDetOk asserts on the diagnostics directly: detok reports at the
// offending comment's own position, so a want comment cannot share the
// line with it.
func TestDetOk(t *testing.T) {
	diags, _, _ := analysistest.Check(t, testdata("detok"), analysis.DetOk)
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2:\n%v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "missing a reason") {
		t.Errorf("first finding should flag the reasonless det-ok, got: %s", diags[0].String())
	}
	if !strings.Contains(diags[1].Message, "unknown //st2: directive") ||
		!strings.Contains(diags[1].Message, "det-okay") {
		t.Errorf("second finding should flag the //st2:det-okay typo, got: %s", diags[1].String())
	}
	if diags[0].Pos.Line >= diags[1].Pos.Line {
		t.Errorf("findings out of source order: %v", diags)
	}
}

// TestDetOkNeverSuppressed pins the rule that a det-ok finding cannot
// be silenced by another det-ok: running detok together with detclock
// over the detclock fixtures must keep detclock suppressions working
// without detok gaining any.
func TestDetOkNeverSuppressed(t *testing.T) {
	diags, _, _ := analysistest.Check(t, testdata("detok"), analysis.All()...)
	for _, d := range diags {
		if d.Analyzer != analysis.DetOk.Name {
			t.Errorf("non-detok finding in detok fixtures: %s", d.String())
		}
	}
	if len(diags) != 2 {
		t.Errorf("got %d detok findings, want 2:\n%v", len(diags), diags)
	}
}

func TestByName(t *testing.T) {
	all, err := analysis.ByName("")
	if err != nil || len(all) != 5 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want the full suite of 5", len(all), err)
	}
	two, err := analysis.ByName("detmaprange, detok")
	if err != nil || len(two) != 2 || two[0].Name != "detmaprange" || two[1].Name != "detok" {
		t.Fatalf("ByName(\"detmaprange, detok\") = %v, err %v", two, err)
	}
	if _, err := analysis.ByName("nosuch"); err == nil {
		t.Fatal("ByName(\"nosuch\") should fail")
	}
}

func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analysis.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing metadata", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if !seen["detok"] {
		t.Error("suite must include the detok companion check")
	}
}
