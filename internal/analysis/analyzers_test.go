package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"st2gpu/internal/analysis"
	"st2gpu/internal/analysis/analysistest"
)

func testdata(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestDetMapRange(t *testing.T) {
	analysistest.Run(t, testdata("detmaprange"), analysis.DetMapRange)
}

func TestDetClock(t *testing.T) {
	analysistest.Run(t, testdata("detclock"), analysis.DetClock)
}

func TestShardOwn(t *testing.T) {
	analysistest.Run(t, testdata("shardown"), analysis.ShardOwn)
}

func TestFoldOrder(t *testing.T) {
	analysistest.Run(t, testdata("foldorder"), analysis.FoldOrder)
}

func TestWireTaint(t *testing.T) {
	analysistest.Run(t, testdata("wiretaint"), analysis.WireTaint)
}

func TestGoLeak(t *testing.T) {
	analysistest.Run(t, testdata("goleak"), analysis.GoLeak)
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, testdata("lockorder"), analysis.LockOrder)
}

func TestChanDisc(t *testing.T) {
	analysistest.Run(t, testdata("chandisc"), analysis.ChanDisc)
}

// TestCrossPackageFacts loads the importer half of the fact-propagation
// fixture: testdata/factimp imports testdata/factdep, whose shardown
// writes-summary and lockorder locks-stripes facts are exported while
// checking the dependency and consumed at factimp's call sites. Every
// want comment in factimp exists only because a fact crossed the
// package boundary.
func TestCrossPackageFacts(t *testing.T) {
	analysistest.Run(t, testdata("factimp"), analysis.ShardOwn, analysis.LockOrder)
}

// TestDetOk asserts on the diagnostics directly: detok reports at the
// offending comment's own position, so a want comment cannot share the
// line with it. Running detok alone leaves both directive families
// incomplete, so the reasoned-but-unused suppression in the fixture is
// NOT reported as stale here.
func TestDetOk(t *testing.T) {
	diags, _, _ := analysistest.Check(t, testdata("detok"), analysis.DetOk)
	wants := []string{
		"//st2:det-ok suppression is missing a reason",
		"//st2:conc-ok suppression is missing a reason",
		`unknown //st2: directive "//st2:det-okay"`,
		`unknown //st2: directive "//st2:conc-okay"`,
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d findings, want %d:\n%v", len(diags), len(wants), diags)
	}
	for i, want := range wants {
		if !strings.Contains(diags[i].Message, want) {
			t.Errorf("finding %d should contain %q, got: %s", i, want, diags[i].String())
		}
		if i > 0 && diags[i-1].Pos.Line >= diags[i].Pos.Line {
			t.Errorf("findings out of source order: %v", diags)
		}
	}
}

// TestDetOkNeverSuppressed pins two rules at once: a detok finding
// cannot be silenced by another directive, and with the full suite
// running both directive families are complete, so the reasoned
// suppression that covers nothing becomes a stale finding.
func TestDetOkNeverSuppressed(t *testing.T) {
	diags, _, _ := analysistest.Check(t, testdata("detok"), analysis.All()...)
	for _, d := range diags {
		if d.Analyzer != analysis.DetOk.Name {
			t.Errorf("non-detok finding in detok fixtures: %s", d.String())
		}
	}
	if len(diags) != 5 {
		t.Fatalf("got %d detok findings, want 5 (4 directive errors + 1 stale):\n%v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "stale //st2:det-ok suppression") {
		t.Errorf("first finding should flag the stale reasoned suppression, got: %s", diags[0].String())
	}
}

// TestStaleNotReportedForPartialFamily: a reasoned det-ok must not be
// called stale when only part of its analyzer family ran — the analyzer
// it suppresses might be one that did not run.
func TestStaleNotReportedForPartialFamily(t *testing.T) {
	diags, _, _ := analysistest.Check(t, testdata("detok"),
		analysis.DetClock, analysis.DetOk)
	for _, d := range diags {
		if strings.Contains(d.Message, "stale") {
			t.Errorf("stale finding with incomplete det-ok family: %s", d.String())
		}
	}
}

func TestByName(t *testing.T) {
	all, err := analysis.ByName("")
	if err != nil || len(all) != 9 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want the full suite of 9", len(all), err)
	}
	two, err := analysis.ByName("detmaprange, detok")
	if err != nil || len(two) != 2 || two[0].Name != "detmaprange" || two[1].Name != "detok" {
		t.Fatalf("ByName(\"detmaprange, detok\") = %v, err %v", two, err)
	}
	if _, err := analysis.ByName("nosuch"); err == nil {
		t.Fatal("ByName(\"nosuch\") should fail")
	}
}

func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analysis.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing metadata", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"detok", "wiretaint", "goleak", "lockorder", "chandisc"} {
		if !seen[name] {
			t.Errorf("suite must include %s", name)
		}
	}
}
