package analysis

import (
	"go/ast"
	"go/types"
)

// DetClock flags wall-clock reads (time.Now / time.Since / time.Until)
// and globally seeded math/rand calls inside the simulation, trace,
// speculate, stats, metrics, and experiments packages.
//
// Simulated time is cycle counts; every random stream is a seeded
// *rand.Rand derived from Config.Seed. A wall-clock read on a result
// path makes RunStats differ run to run, and the package-level
// math/rand functions draw from a process-global, randomly seeded
// source. Wall-clock belongs in exactly two places: the runlog phase
// timings (internal/metrics/runlog, which deliberately keeps timings
// off RunStats) and CLI progress output under cmd/ — both outside this
// analyzer's scope. The phase-timing probes that feed runlog from
// inside scoped packages carry //st2:det-ok suppressions.
//
// Seeded constructors (rand.New, rand.NewSource, rand.NewZipf, and the
// v2 PCG/ChaCha8 sources) are allowed; the nondeterminism would come
// from the seed expression, and a time.Now() there is flagged anyway.
var DetClock = &Analyzer{
	Name:      "detclock",
	Directive: DirectiveDetOk,
	Doc: "flags wall-clock and global math/rand reads in simulation code\n\n" +
		"Results must be functions of (kernel, config, seed) alone; " +
		"wall-clock belongs only in runlog phase timings and CLI progress.",
	Skip: func(pkgPath string) bool {
		if pkgPath == "st2gpu/internal/metrics/runlog" {
			return true // the one blessed wall-clock consumer
		}
		return skipOutside(
			"st2gpu/internal/gpusim",
			"st2gpu/internal/trace",
			"st2gpu/internal/speculate",
			"st2gpu/internal/stats",
			"st2gpu/internal/metrics",
			"st2gpu/internal/experiments",
			"st2gpu/internal/kernels",
			"st2gpu/internal/core",
			"st2gpu/internal/adder",
			"st2gpu/internal/bitmath",
			"st2gpu/internal/power",
			// The span tracer is checked too: its single clock capture in
			// obs.New carries the one reasoned //st2:det-ok exemption, and
			// every other obs entry point must stay clock-free.
			"st2gpu/internal/obs",
		)(pkgPath)
	},
	Run: runDetClock,
}

// allowedRandFuncs are the math/rand (and v2) package-level names that
// construct explicitly seeded generators rather than reading the global
// one.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDetClock(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, name := selectorPkgName(pass.TypesInfo, sel)
			if pkg == "" {
				return true
			}
			// Only function references matter: rand.Rand / rand.Source as
			// type names are how the seeded idiom is written.
			if _, isFunc := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func); !isFunc {
				return true
			}
			switch pkg {
			case "time":
				switch name {
				case "Now", "Since", "Until":
					pass.Reportf(sel.Pos(),
						"wall-clock read time.%s in a deterministic package: results must depend only on (kernel, config, seed); keep timings in runlog/CLI or suppress with %s <reason>",
						name, DetOkPrefix)
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[name] {
					pass.Reportf(sel.Pos(),
						"global math/rand.%s draws from the process-global nondeterministically seeded source; thread a seeded *rand.Rand (rand.New(rand.NewSource(seed))) instead",
						name)
				}
			}
			return true
		})
	}
	return nil
}
