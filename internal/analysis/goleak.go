package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak requires every `go` statement to have a statically-visible
// exit path reaching function return, the bug class behind the pre-fix
// DecodeSet leak (PR 6): goroutines were spawned per kernel, and an
// error return between the spawn loop and wg.Wait left every in-flight
// goroutine writing into slices past the function's lifetime.
//
// Three shapes are flagged:
//
//   - join leak: the goroutine participates in a sync.WaitGroup (its
//     body calls wg.Done), but the spawning function can return after
//     the `go` statement without passing wg.Wait() — and the Wait is
//     not deferred. This is exactly the pre-fix DecodeSet shape;
//   - unbounded loop: the goroutine body contains a condition-less
//     `for {}` (or `for { select {...} }`) with no `return`, no `break`
//     out of the loop, and no quit-channel / ctx.Done() receive case
//     that exits — the goroutine can never terminate;
//   - unclosable range: the goroutine body ranges over a channel that
//     the spawning function never closes (directly or in a defer) and
//     that is not a parameter documented to be closed elsewhere — the
//     range never ends.
//
// Straight-line goroutine bodies terminate when their last statement
// does, so they need no join evidence; the analyzer is about goroutines
// that outlive the function or the process, not about forcing a
// WaitGroup onto every spawn.
var GoLeak = &Analyzer{
	Name:      "goleak",
	Directive: DirectiveConcOk,
	Doc: "requires every go statement to have a statically-visible exit path\n\n" +
		"WaitGroup joins must be reached on every return after the spawn; " +
		"goroutine loops need a return, break, or quit-channel exit.",
	Skip: skipUnder(
		"st2gpu/internal/analysis",
		"st2gpu/examples",
	),
	Run: runGoLeak,
}

func runGoLeak(pass *Pass) error {
	gl := &goLeak{pass: pass}
	for _, file := range pass.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			_, encl := enclosingFunc(stack)
			gl.checkGo(gs, encl)
			return true
		})
	}
	return nil
}

type goLeak struct {
	pass *Pass
}

// checkGo validates one go statement spawned inside encl's body.
func (gl *goLeak) checkGo(gs *ast.GoStmt, encl *ast.BlockStmt) {
	lit, isLit := gs.Call.Fun.(*ast.FuncLit)
	if isLit {
		gl.checkLoops(lit, encl)
	}
	if encl == nil {
		return
	}
	if isLit {
		if wg := gl.waitGroupOf(lit); wg != nil {
			gl.checkJoin(gs, wg, encl)
		}
	}
}

// waitGroupOf returns the sync.WaitGroup object whose Done the
// goroutine body calls (plainly or deferred), or nil.
func (gl *goLeak) waitGroupOf(lit *ast.FuncLit) types.Object {
	info := gl.pass.TypesInfo
	var wg types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || wg != nil {
			return wg == nil
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		if root := rootIdent(sel.X); root != nil {
			wg = info.ObjectOf(root)
		}
		return wg == nil
	})
	return wg
}

// checkJoin enforces the DecodeSet rule: once goroutines with a
// WaitGroup join are in flight, every return of the spawning function
// must pass wg.Wait() first. A deferred Wait covers every return; an
// inline Wait covers returns after it; a return between the spawn and
// the first Wait leaks the spawned goroutines.
func (gl *goLeak) checkJoin(gs *ast.GoStmt, wg types.Object, encl *ast.BlockStmt) {
	info := gl.pass.TypesInfo
	deferred := false
	var waitPos token.Pos = token.NoPos
	ast.Inspect(encl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n == gs.Call.Fun {
				return false
			}
			return false // Waits inside other closures don't join this frame
		case *ast.DeferStmt:
			if isWaitCall(info, n.Call, wg) {
				deferred = true
			}
			// `defer func() { ...; wg.Wait() }()` counts too.
			if dl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(dl.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok && isWaitCall(info, call, wg) {
						deferred = true
					}
					return true
				})
			}
			return false
		case *ast.CallExpr:
			if isWaitCall(info, n, wg) && (!waitPos.IsValid() || n.Pos() < waitPos) {
				if n.Pos() > gs.Pos() {
					waitPos = n.Pos()
				}
			}
		}
		return true
	})
	if deferred {
		return
	}
	if !waitPos.IsValid() {
		gl.pass.ReportRangef(gs.Pos(), gs.Call.End(),
			"goroutine joins %s but the function never calls %s.Wait() after the spawn: the goroutines outlive the function (DESIGN.md §16)",
			wg.Name(), wg.Name())
		return
	}
	ast.Inspect(encl, func(n ast.Node) bool {
		// Returns inside any function literal — including the goroutine's
		// own body — are not returns of the spawning frame.
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ret.Pos() > gs.Pos() && ret.Pos() < waitPos {
			gl.pass.ReportRangef(ret.Pos(), ret.End(),
				"return before %s.Wait() leaks the goroutines spawned at line %d: they keep running (and writing) past this function's lifetime; validate inputs before spawning, or defer the Wait (DESIGN.md §16)",
				wg.Name(), gl.pass.Fset.Position(gs.Pos()).Line)
		}
		return true
	})
}

// isWaitCall reports whether call is wg.Wait() on the given WaitGroup.
func isWaitCall(info *types.Info, call *ast.CallExpr, wg types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	root := rootIdent(sel.X)
	return root != nil && info.ObjectOf(root) == wg
}

// checkLoops flags goroutine-body loops with no statically-visible
// exit: condition-less `for` without return/break/quit-receive, and
// range-over-channel with no visible close in the spawning function.
func (gl *goLeak) checkLoops(lit *ast.FuncLit, encl *ast.BlockStmt) {
	info := gl.pass.TypesInfo
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.ForStmt:
			if loop.Cond != nil {
				return true
			}
			if loopHasExit(info, loop) {
				return true
			}
			gl.pass.ReportRangef(loop.Pos(), loop.Pos()+3,
				"goroutine loops forever with no exit path: add a return/break, or a quit-channel / ctx.Done() receive that exits the loop (DESIGN.md §16)")
		case *ast.RangeStmt:
			tv, ok := info.Types[loop.X]
			if !ok {
				return true
			}
			if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
				return true
			}
			ch := rootIdent(loop.X)
			if ch == nil {
				return true
			}
			chObj := info.ObjectOf(ch)
			if chObj == nil || closesChannel(info, encl, chObj) {
				return true
			}
			gl.pass.ReportRangef(loop.Pos(), loop.X.End(),
				"goroutine ranges over %s but the spawning function never closes it: the range (and the goroutine) can never end; close the channel when dispatch is done (DESIGN.md §16)",
				ch.Name)
		}
		return true
	})
}

// loopHasExit reports whether a condition-less for loop contains a
// reachable return, a break targeting it, or a quit/ctx receive case
// that returns or breaks.
func loopHasExit(info *types.Info, loop *ast.ForStmt) bool {
	found := false
	var depth int // nested condition-less loops: break applies to innermost
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			depth++
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && (depth == 0 || n.Label != nil) {
				found = true
			}
		case *ast.SelectStmt:
			// A receive on any channel with a body that returns/breaks is
			// found by the cases above; nothing special needed here —
			// select alone is not an exit.
		}
		return !found
	})
	return found
}

// closesChannel reports whether fn (or one of its defers) closes the
// channel object — including closing each element of the slice the
// channel came from (`for _, ch := range sendChs { close(ch) }`).
func closesChannel(info *types.Info, fn ast.Node, ch types.Object) bool {
	if fn == nil {
		return false
	}
	// If ch is an element of a slice (sendChs[c]), accept a close of any
	// expression rooted at the same slice, or of a range variable over it.
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "close" || len(call.Args) != 1 {
			return true
		}
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); !isBuiltin {
			return true
		}
		root := rootIdent(call.Args[0])
		if root == nil {
			return true
		}
		obj := info.ObjectOf(root)
		if obj == ch {
			found = true
			return false
		}
		// Range-variable close: `for _, c := range chans { close(c) }`
		// closes every element; match when ch is rooted at the ranged
		// slice or IS the ranged slice's element variable's source.
		if obj != nil && sameChannelSource(info, fn, obj, ch) {
			found = true
			return false
		}
		return true
	})
	return found
}

// sameChannelSource reports whether closeTarget and ch both trace to the
// same slice-of-channels variable: ch used as `slice[i]` in the range
// expression and closeTarget declared as the value variable of a `range
// slice` statement (or vice versa).
func sameChannelSource(info *types.Info, fn ast.Node, closeTarget, ch types.Object) bool {
	matches := func(rangeVar, elemOf types.Object) bool {
		ok := false
		ast.Inspect(fn, func(n ast.Node) bool {
			if ok {
				return false
			}
			rs, ok2 := n.(*ast.RangeStmt)
			if !ok2 {
				return true
			}
			val := rs.Value
			if val == nil {
				val = rs.Key
			}
			id, ok2 := val.(*ast.Ident)
			if !ok2 || info.ObjectOf(id) != rangeVar {
				return true
			}
			if root := rootIdent(rs.X); root != nil && info.ObjectOf(root) == elemOf {
				ok = true
			}
			return !ok
		})
		return ok
	}
	return matches(closeTarget, ch) || matches(ch, closeTarget)
}
