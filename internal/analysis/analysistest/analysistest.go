// Package analysistest runs st2lint analyzers over testdata packages
// and checks the reported findings against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest for the stdlib-only
// framework in internal/analysis.
//
// A want comment sits on the line the diagnostic is reported at and
// holds one quoted regular expression per expected finding:
//
//	for k := range m { // want `range over map m`
//
// Each expectation must be matched by exactly one diagnostic on its
// line, and every diagnostic must match an expectation; the regexp is
// unanchored and tested against "analyzer: message".
package analysistest

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"st2gpu/internal/analysis"
	"st2gpu/internal/analysis/load"
)

// Run loads the single package rooted at pkgdir (normally
// testdata/src/<analyzer>), applies the analyzers through the same
// pipeline as st2lint — including //st2:det-ok suppression filtering,
// but without the per-package Skip filter, since testdata import paths
// are synthetic — and compares the surviving findings to the package's
// want comments.
func Run(t *testing.T, pkgdir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	diags, fset, pkg := Check(t, pkgdir, analyzers...)
	wants := parseWants(t, fset, pkg)

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected finding: %s", d.String())
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched `%s`", w.pos.Filename, w.pos.Line, w.re)
		}
	}
}

// Check loads pkgdir and returns its suppression-filtered findings
// without comparing them to want comments. Tests that assert on
// diagnostics directly (e.g. for findings reported at comment positions,
// where a want comment cannot share the line) use this.
func Check(t *testing.T, pkgdir string, analyzers ...*analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, *load.Package) {
	t.Helper()
	fset := token.NewFileSet()
	pkg, err := load.LoadDir(fset, pkgdir)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgdir, err)
	}
	for _, e := range pkg.Errors {
		t.Errorf("%s does not type-check: %v", pkgdir, e)
	}
	if t.Failed() {
		t.FailNow()
	}
	diags, err := analysis.CheckForTests(pkg, analyzers)
	if err != nil {
		t.Fatalf("checking %s: %v", pkgdir, err)
	}
	return diags, fset, pkg
}

// expectation is one parsed `// want` regexp, bound to a file and line.
type expectation struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

func parseWants(t *testing.T, fset *token.FileSet, pkg *load.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q: %v", pos.Filename, pos.Line, rest, err)
					}
					rest = rest[len(q):]
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, q, err)
					}
					out = append(out, &expectation{pos: pos, re: re})
				}
			}
		}
	}
	return out
}

// claim marks the first unmatched expectation on d's line whose regexp
// matches, reporting whether one was found.
func claim(wants []*expectation, d analysis.Diagnostic) bool {
	text := d.Analyzer + ": " + d.Message
	for _, w := range wants {
		if w.matched || w.pos.Filename != d.Pos.Filename || w.pos.Line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(text) {
			w.matched = true
			return true
		}
	}
	return false
}
