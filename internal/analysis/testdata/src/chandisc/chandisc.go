// Package chandisc exercises the chandisc analyzer: dispatcher channel
// sends must be unblockable — buffered with derived capacity, literal
// capacity with a justifying comment, or select-guarded.
package chandisc

func work(n int) int { return n * 2 }

// unbufferedDispatch feeds workers over an unbuffered channel: one
// stalled worker wedges the dispatch loop.
func unbufferedDispatch(items []int) {
	ch := make(chan int)
	for range items {
		go func() {
			for v := range ch {
				work(v)
			}
		}()
	}
	for _, it := range items {
		ch <- it // want `dispatcher send on unbuffered ch`
	}
	close(ch)
}

// derivedCapDispatch buffers with a workload-derived capacity: the
// buffer provably covers the in-flight count.
func derivedCapDispatch(items []int) {
	ch := make(chan int, len(items))
	go func() {
		for v := range ch {
			work(v)
		}
	}()
	for _, it := range items {
		ch <- it
	}
	close(ch)
}

// bareLiteralNoComment buffers with a magic number and no justification.
func bareLiteralNoComment(items []int) {
	ch := make(chan int, 8)
	go func() {
		for v := range ch {
			work(v)
		}
	}()
	for _, it := range items {
		ch <- it // want `buffered with a bare literal capacity`
	}
	close(ch)
}

// literalWithComment justifies the number on the make line: accepted.
func literalWithComment(items []int) {
	ch := make(chan int, 8) // 8 > the 4 producers' max burst of 2 each
	go func() {
		for v := range ch {
			work(v)
		}
	}()
	for _, it := range items {
		ch <- it
	}
	close(ch)
}

// selectGuarded sends under a select with a quit escape (the shard
// coordinator reader shape): a stalled receiver cannot wedge it.
func selectGuarded(events chan int, quit chan struct{}, items []int) {
	go func() {
		for _, it := range items {
			select {
			case events <- work(it):
			case <-quit:
				return
			}
		}
	}()
}

// selectDefault: a default case also makes the send non-blocking.
func selectDefault(events chan int, items []int) {
	go func() {
		for _, it := range items {
			select {
			case events <- it:
			default:
			}
		}
	}()
}

// invisibleMakeSite sends inside a goroutine on a parameter channel:
// nothing here bounds the send.
func invisibleMakeSite(out chan int, items []int) {
	go func() {
		for _, it := range items {
			out <- it // want `dispatcher send on out whose make site is not visible`
		}
	}()
}

// sendInSelectBody: the send sits in a case BODY, not as the comm — the
// select does not guard it.
func sendInSelectBody(out chan int, quit chan struct{}) {
	go func() {
		select {
		case <-quit:
			out <- 1 // want `dispatcher send on out whose make site is not visible`
		}
	}()
}

// plainSequential: a function with no goroutines sends to a channel its
// caller drains — out of scope.
func plainSequential(ch chan int, v int) {
	ch <- v
}

// suppressedSend carries a conc-ok reason, so the finding is filtered.
func suppressedSend(out chan int) {
	go func() {
		out <- 1 //st2:conc-ok test fixture: receiver is the test itself, always draining
	}()
}
