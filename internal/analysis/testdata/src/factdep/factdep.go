// Package factdep is the dependency half of the cross-package fact
// propagation fixture: its helpers export shardown writes-summary facts
// and lockorder locks-stripes facts that testdata/factimp consumes.
package factdep

import "sync"

// WriteCell writes dst at exactly the index the caller hands over:
// safe from a worker goroutine iff i is worker-owned at the call site.
func WriteCell(dst []float64, i int, v float64) {
	dst[i] = v
}

// WriteFirst writes a fixed cell: never safe from concurrent workers,
// whoever calls it.
func WriteFirst(dst []float64, v float64) {
	dst[0] = v
}

// AppendTo grows the slice through the pointer: append races on length
// and backing array.
func AppendTo(dst *[]float64, v float64) {
	*dst = append(*dst, v)
}

// PutKey writes the map: concurrent map writes fault even at distinct
// keys.
func PutKey(m map[string]int, k string, v int) {
	m[k] = v
}

// Bump writes through the pointer without indexing.
func Bump(p *int) {
	*p++
}

// LockStripe acquires one stripe lock; the exported locks-stripes fact
// flags callers that invoke it while already holding a stripe.
func LockStripe(locks []sync.Mutex, i int, f func()) {
	locks[i].Lock()
	f()
	locks[i].Unlock()
}
