// Package lockorder exercises the lockorder analyzer: multi-lock
// acquisitions over a sync.Mutex stripe array must be provably
// ascending.
package lockorder

import "sync"

type striped struct {
	locks [8]sync.Mutex
	cells [8]int
}

// badPair takes two stripe locks with no ordering guarantee: two
// goroutines calling badPair(1, 2) and badPair(2, 1) deadlock.
func (s *striped) badPair(i, j int) {
	s.locks[i].Lock()
	s.locks[j].Lock() // want `second lock on stripe array locks without ascending-order normalization`
	s.cells[i], s.cells[j] = s.cells[j], s.cells[i]
	s.locks[j].Unlock()
	s.locks[i].Unlock()
}

// lockSpan is the blessed idiom (internal/gpusim memory.go): equal
// indices short-circuit, a swap guard normalizes the pair, and the
// locks are taken through pointers in ascending order.
func (s *striped) lockSpan(i, j int) {
	if i == j {
		s.locks[i].Lock()
		return
	}
	if j < i {
		i, j = j, i
	}
	a, b := &s.locks[i], &s.locks[j]
	a.Lock()
	b.Lock()
}

// swapDirect: the guard also covers direct (non-pointer) second locks.
func (s *striped) swapDirect(i, j int) {
	if i > j {
		i, j = j, i
	}
	s.locks[i].Lock()
	s.locks[j].Lock()
	s.locks[j].Unlock()
	s.locks[i].Unlock()
}

// lockAll uses the ascending-loop idiom: ordered by construction.
func (s *striped) lockAll() {
	for i := range s.locks {
		s.locks[i].Lock()
	}
	for i := range s.locks {
		s.locks[i].Unlock()
	}
}

// seqPair never overlaps the two acquisitions: clean.
func (s *striped) seqPair(i, j int) {
	s.locks[i].Lock()
	s.cells[i]++
	s.locks[i].Unlock()
	s.locks[j].Lock()
	s.cells[j]++
	s.locks[j].Unlock()
}

// lockOne acquires a single stripe lock; it exports a locks-stripes
// fact rather than a finding.
func (s *striped) lockOne(i int) {
	s.locks[i].Lock()
	s.cells[i]++
	s.locks[i].Unlock()
}

// helperUnderLock calls a stripe-locking helper while already holding a
// stripe: the cross-function acquisition order cannot be verified.
func (s *striped) helperUnderLock(i, j int) {
	s.locks[i].Lock()
	s.lockOne(j) // want `call to lockOne \(which locks stripe array locks\) while a stripe lock is held`
	s.locks[i].Unlock()
}

// helperAfterUnlock calls the helper with nothing held: clean.
func (s *striped) helperAfterUnlock(i, j int) {
	s.locks[i].Lock()
	s.cells[i]++
	s.locks[i].Unlock()
	s.lockOne(j)
}

// suppressedPair carries a conc-ok reason, so the finding is filtered.
func (s *striped) suppressedPair(i, j int) {
	s.locks[i].Lock()
	s.locks[j].Lock() //st2:conc-ok test fixture: callers are single-threaded during init
	s.locks[j].Unlock()
	s.locks[i].Unlock()
}

// otherMutex: a lone mutex (not a stripe array) is out of scope.
type otherMutex struct {
	mu   sync.Mutex
	data map[string]int
}

func (o *otherMutex) put(k string, v int) {
	o.mu.Lock()
	o.data[k] = v
	o.mu.Unlock()
}
