// Package factimp is the importer half of the cross-package fact
// propagation fixture: worker goroutines call testdata/factdep helpers,
// and the shardown writes-summary and lockorder locks-stripes facts
// exported by that package decide which calls are flagged here.
package factimp

import (
	"sync"

	"testdata/factdep"
)

// FillOwned hands each worker's per-iteration index to the helper: the
// index write inside factdep.WriteCell is fully determined by a
// worker-owned argument, so the call is clean.
func FillOwned(n int) []float64 {
	out := make([]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			factdep.WriteCell(out, i, 1.0)
		}()
	}
	wg.Wait()
	return out
}

// FillClash passes the same non-owned index from every worker.
func FillClash(n int) []float64 {
	out := make([]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			factdep.WriteCell(out, n-1, 2.0) // want `writes it at an index not fully determined by worker-owned arguments`
		}()
	}
	wg.Wait()
	return out
}

// FixedCell calls a helper that writes a constant cell: every worker
// hits the same element.
func FixedCell(n int) []float64 {
	out := make([]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			factdep.WriteFirst(out, 3.0) // want `writes it at an index not fully determined by worker-owned arguments`
		}()
	}
	wg.Wait()
	return out
}

// SharedMap hands a shared map to a helper that writes it.
func SharedMap(keys []string) map[string]int {
	m := make(map[string]int, len(keys))
	var wg sync.WaitGroup
	for i, k := range keys {
		i, k := i, k
		wg.Add(1)
		go func() {
			defer wg.Done()
			factdep.PutKey(m, k, i) // want `concurrent map writes fault even at distinct keys`
		}()
	}
	wg.Wait()
	return m
}

// SharedAppend hands a shared slice pointer to an appending helper.
func SharedAppend(n int) []float64 {
	out := make([]float64, 0, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			factdep.AppendTo(&out, 1.0) // want `appends to it: append races on length and backing array`
		}()
	}
	wg.Wait()
	return out
}

// SharedScalar hands a captured counter to a helper that writes through
// the pointer.
func SharedScalar(n int) int {
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			factdep.Bump(&counter) // want `writes through it without indexing`
		}()
	}
	wg.Wait()
	return counter
}

// Transfer calls the stripe-locking helper while already holding a
// stripe of the same array: the cross-package acquisition order cannot
// be verified.
func Transfer(locks []sync.Mutex, i, j int) {
	locks[i].Lock()
	factdep.LockStripe(locks, j, func() {}) // want `call to LockStripe \(which locks stripe array locks\) while a stripe lock is held`
	locks[i].Unlock()
}

// Delegate calls the helper with nothing held: clean.
func Delegate(locks []sync.Mutex, j int) {
	factdep.LockStripe(locks, j, func() {})
}
