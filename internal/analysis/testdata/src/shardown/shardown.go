// Package shardown exercises the shardown analyzer: worker goroutines
// may write shared slices only at worker-owned indices, and never write
// shared maps or append to shared slices.
package shardown

import (
	"sync"
	"sync/atomic"
)

// atomicClaim is the device.Launch idiom: workers claim indices through
// an atomic counter and own the claimed cell.
func atomicClaim(n int) []int {
	shared := make([]int, n)
	offset := make([]int, n+1)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				shared[i] = i * 2
				offset[i+1] = 3
				shared[0] = -1 // want `not derived from the worker-owned index`
			}
		}()
	}
	wg.Wait()
	return shared
}

// perIteration relies on Go's per-iteration loop variables.
func perIteration(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = items[i] * 2
		}()
	}
	wg.Wait()
	return out
}

// mapWrite faults under concurrent writers even at distinct keys.
func mapWrite(m map[int]int) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			m[w] = w // want `write to shared map m`
		}()
	}
	wg.Wait()
}

// appendShared races on the slice length and backing array.
func appendShared(items []int) []int {
	var out []int
	var wg sync.WaitGroup
	for i := range items {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out = append(out, i) // want `append to shared slice out`
		}()
	}
	wg.Wait()
	return out
}

// guardedProgress is the mutex-guarded progress-callback idiom.
func guardedProgress(n int) int {
	var mu sync.Mutex
	done := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			done++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return done
}

// unguarded increments a captured scalar with no lock held.
func unguarded(n int) int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			total += i // want `write to captured variable total`
		}()
	}
	wg.Wait()
	return total
}

type row struct {
	name  string
	rates []float64
}

// ownedElement writes freely inside its own element: once the root-most
// index is owned, everything beneath it is worker-private.
func ownedElement(rows []row, vals []float64) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := int(next.Add(1)) - 1
			if i >= len(rows) {
				return
			}
			rows[i].name = "k"
			for j := range vals {
				rows[i].rates[j] = vals[j]
			}
			rows[0].rates[i] = 0 // want `not derived from the worker-owned index`
		}()
	}
	wg.Wait()
}

// runGrid is a dispatcher: it invokes its func parameter from worker
// goroutines with an owned index, so callbacks passed to it are worker
// bodies with fn's first argument owned.
func runGrid(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for t := 0; t < n; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[t] = fn(t)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// useDispatcher's callback owns i but not index 0.
func useDispatcher(n int) ([]int, error) {
	out := make([]int, n)
	err := runGrid(n, func(i int) error {
		out[i] = i * i
		out[0] = 1 // want `not derived from the worker-owned index`
		return nil
	})
	return out, err
}

// fill is a helper handed a shared slice plus an owned index: ownership
// facts propagate into it from helperCall's worker body.
func fill(dst []int, i, v int) {
	dst[i] = v
	dst[0] = v // want `not derived from the worker-owned index`
}

func helperCall(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			fill(out, i, i)
		}()
	}
	wg.Wait()
	return out
}

// channelItems treats received work items as owned.
func channelItems(ch chan int, out []int) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				out[i] = i
			}
		}()
	}
	wg.Wait()
}

// suppressedWrite carries a reason, so the finding is filtered.
func suppressedWrite(n int) int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			total += i //st2:det-ok test fixture: demonstrating suppression
		}()
	}
	wg.Wait()
	return total
}
