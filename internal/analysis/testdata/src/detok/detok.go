// Package detok exercises the suppression-directive companion check.
// Findings here are reported at the comment positions themselves, so
// the test asserts on them directly instead of using want comments (a
// line comment cannot share its line with a second comment).
package detok

// reasoned is a well-formed suppression (it has nothing to suppress,
// which is fine — unused suppressions are not errors).
func reasoned() int {
	return 1 //st2:det-ok fixture: a valid reason
}

// reasonless suppresses nothing and must be flagged.
func reasonless() int {
	return 2 //st2:det-ok
}

// typo is an unknown directive and must be flagged.
func typo() int {
	return 3 //st2:det-okay close but not the directive
}

// otherDirectives that are not st2-prefixed are none of our business.
//
//go:noinline
func otherDirectives() int {
	return 4
}
