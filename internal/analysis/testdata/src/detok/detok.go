// Package detok exercises the suppression-directive companion check.
// Findings here are reported at the comment positions themselves, so
// the test asserts on them directly instead of using want comments (a
// line comment cannot share its line with a second comment).
package detok

// reasoned is a well-formed suppression that covers nothing. Running
// detok alone cannot judge it (the analyzers it might suppress did not
// run), but once the full det-ok family runs it is flagged as stale.
func reasoned() int {
	return 1 //st2:det-ok fixture: a valid reason
}

// reasonless suppresses nothing and must be flagged.
func reasonless() int {
	return 2 //st2:det-ok
}

// reasonlessConc: the conc-ok directive needs a reason too.
func reasonlessConc() int {
	return 3 //st2:conc-ok
}

// typo is an unknown directive and must be flagged.
func typo() int {
	return 4 //st2:det-okay close but not the directive
}

// concTypo: near-miss spellings of conc-ok are flagged the same way.
func concTypo() int {
	return 5 //st2:conc-okay also not a directive
}

// otherDirectives that are not st2-prefixed are none of our business.
//
//go:noinline
func otherDirectives() int {
	return 6
}
