// Package goleak exercises the goleak analyzer: every go statement
// needs a statically-visible exit path reaching function return.
package goleak

import (
	"errors"
	"sync"
)

var errBad = errors.New("bad")

func work(n int) int { return n * 2 }

func validate(n int) error {
	if n < 0 {
		return errBad
	}
	return nil
}

// decodeSetPreFix is the pre-fix PR 6 DecodeSet shape: goroutines are
// spawned per item, and an error return between the spawn loop and
// wg.Wait leaves every in-flight goroutine writing into out past the
// function's lifetime.
func decodeSetPreFix(items []int) ([]int, error) {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		i, it := i, it
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = work(it)
		}()
		if err := validate(it); err != nil {
			return nil, err // want `return before wg\.Wait\(\) leaks the goroutines`
		}
	}
	wg.Wait()
	return out, nil
}

// decodeSetPostFix validates every input before the first spawn — the
// shape the fix landed on — so no return sits between spawn and join.
func decodeSetPostFix(items []int) ([]int, error) {
	for _, it := range items {
		if err := validate(it); err != nil {
			return nil, err
		}
	}
	out := make([]int, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		i, it := i, it
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = work(it)
		}()
	}
	wg.Wait()
	return out, nil
}

// deferredWait joins on every return path via defer: returns between
// spawns are fine.
func deferredWait(items []int) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for _, it := range items {
		it := it
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(it)
		}()
		if it == 0 {
			return errBad
		}
	}
	return nil
}

// deferredWaitClosure joins through a deferred closure (the shard
// coordinator shape): also fine.
func deferredWaitClosure(items []int) error {
	var wg sync.WaitGroup
	defer func() {
		wg.Wait()
	}()
	for _, it := range items {
		it := it
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(it)
		}()
		if it == 0 {
			return errBad
		}
	}
	return nil
}

// neverJoined participates in a WaitGroup but the function never calls
// Wait at all.
func neverJoined(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		it := it
		wg.Add(1)
		go func() { // want `never calls wg\.Wait\(\) after the spawn`
			defer wg.Done()
			work(it)
		}()
	}
}

// foreverLoop spins with no exit path.
func foreverLoop() {
	go func() {
		n := 0
		for { // want `goroutine loops forever with no exit path`
			n++
		}
	}()
}

// quitLoop exits through a quit-channel receive: clean.
func quitLoop(quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
			}
		}
	}()
}

// claimLoop exits by returning when the claimed index runs out (the
// device worker-pool shape): clean.
func claimLoop(n int) {
	go func() {
		i := 0
		for {
			i++
			if i >= n {
				return
			}
		}
	}()
}

// unclosedRange ranges over a channel the spawning function never
// closes.
func unclosedRange(ch chan int) {
	go func() {
		for v := range ch { // want `ranges over ch but the spawning function never closes it`
			work(v)
		}
	}()
}

// closedRange: the spawner closes the channel when dispatch is done.
func closedRange(items []int) {
	ch := make(chan int, len(items))
	go func() {
		for v := range ch {
			work(v)
		}
	}()
	for _, it := range items {
		ch <- it
	}
	close(ch)
}

// closedElemRange: the shard-coordinator shape — each goroutine ranges
// one element of a channel slice, and the spawner closes every element
// through the range variable of a loop over the same slice.
func closedElemRange(n int) {
	sendChs := make([]chan int, n)
	for c := range sendChs {
		sendChs[c] = make(chan int, 4) // capacity covers the per-conn in-flight budget
	}
	for c := range sendChs {
		c := c
		go func() {
			for v := range sendChs[c] {
				work(v)
			}
		}()
	}
	defer func() {
		for _, ch := range sendChs {
			close(ch)
		}
	}()
}

// suppressedLeak carries a conc-ok reason, so the finding is filtered.
func suppressedLeak() {
	go func() {
		for { //st2:conc-ok test fixture: process-lifetime heartbeat, exits with the process
			work(1)
		}
	}()
}
