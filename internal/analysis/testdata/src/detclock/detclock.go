// Package detclock exercises the detclock analyzer: no wall-clock or
// globally seeded math/rand reads in simulation code.
package detclock

import (
	"math/rand"
	"time"
)

// wallClock reads the wall clock twice.
func wallClock() time.Duration {
	t0 := time.Now()      // want `wall-clock read time\.Now`
	return time.Since(t0) // want `wall-clock read time\.Since`
}

// deadline reads the clock through Until.
func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `wall-clock read time\.Until`
}

// globalRand draws from the process-global source.
func globalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn`
}

// seeded constructs an explicitly seeded generator: allowed. The
// time.Duration and rand.Rand type references are not function reads.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// simulatedTime is cycle counting, not wall clock.
func simulatedTime(cycles uint64) uint64 {
	return cycles + 1
}

// suppressedClock carries a reason, so the finding is filtered.
func suppressedClock() time.Time {
	return time.Now() //st2:det-ok test fixture: display-only timestamp
}
