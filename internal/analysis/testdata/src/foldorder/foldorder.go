// Package foldorder exercises the foldorder analyzer: cross-shard
// floating-point folds belong in blessed fold* helpers that walk shards
// in a fixed order.
package foldorder

import "sync"

type shard struct {
	energy float64
	ops    uint64
}

// foldShards is a blessed helper: fold-prefixed, walks shards in slice
// order.
func foldShards(shards []*shard) float64 {
	var total float64
	for _, s := range shards {
		total += s.energy
	}
	return total
}

// sumShards does the same fold outside a blessed helper.
func sumShards(shards []*shard) float64 {
	var total float64
	for _, s := range shards {
		total += s.energy // want `outside a blessed fold helper`
	}
	return total
}

// intShardFold is exact at any order: integers never re-round.
func intShardFold(shards []*shard) uint64 {
	var n uint64
	for _, s := range shards {
		n += s.ops
	}
	return n
}

// mapFold accumulates floats in random map order.
func mapFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `inside a range over map m`
	}
	return sum
}

// mapFoldExplicit spells the accumulation as x = x + v.
func mapFoldExplicit(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want `inside a range over map m`
	}
	return sum
}

// workerAccum accumulates in schedule order across goroutines.
func workerAccum(vals []float64) float64 {
	var sum float64
	var wg sync.WaitGroup
	for _, v := range vals {
		v := v
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum += v // want `captured by a worker goroutine`
		}()
	}
	wg.Wait()
	return sum
}

// localInWorker accumulates into a goroutine-local: fine.
func localInWorker(vals []float64, out []float64) {
	var wg sync.WaitGroup
	for i := range vals {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0.0
			local += vals[i]
			out[i] = local
		}()
	}
	wg.Wait()
}

// sliceFold over plain floats (not shards) outside a map range or
// goroutine is positionally ordered and deterministic.
func sliceFold(vals []float64) float64 {
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum
}

// suppressedFold carries a reason, so the finding is filtered.
func suppressedFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //st2:det-ok test fixture: tolerance-checked aggregate
	}
	return sum
}
