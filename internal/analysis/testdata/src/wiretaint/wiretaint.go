// Package wiretaint exercises the wiretaint analyzer: wire-decoded
// lengths must pass a budget comparison before sizing an allocation.
package wiretaint

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
)

var errTooBig = errors.New("too big")

const maxBytes = 1 << 20

// readRecordingPreFix is the pre-fix PR 6 ReadRecording shape: a varint
// segment length flows straight into make with no budget check.
func readRecordingPreFix(r *bufio.Reader) ([]byte, error) {
	segLen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, segLen) // want `allocation sized by wire-decoded value segLen with no bound check`
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// readRecordingPostFix is the fixed shape: the decoded length is
// compared against the remaining budget before the allocation.
func readRecordingPostFix(r *bufio.Reader, total uint64) ([]byte, error) {
	segLen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if segLen > maxBytes-total {
		return nil, errTooBig
	}
	buf := make([]byte, segLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

type entry struct {
	name string
}

// headerBombPreFix is the pre-fix PR 9 store-header shape: a fixed-width
// kernel count sizes slice capacity and a map hint with no bound of its
// own (the table-length budget check does not bound the count).
func headerBombPreFix(hdr []byte) []entry {
	nkern := binary.LittleEndian.Uint32(hdr[24:])
	entries := make([]entry, 0, nkern)   // want `allocation sized by wire-decoded value nkern`
	seen := make(map[string]bool, nkern) // want `allocation sized by wire-decoded value nkern`
	_ = seen
	return entries
}

// headerBombPostFix bounds the count against what the budget-checked
// table can physically hold before any allocation.
func headerBombPostFix(hdr []byte, tableLen uint64) []entry {
	nkern := binary.LittleEndian.Uint32(hdr[24:])
	if uint64(nkern) > tableLen/2 {
		return nil
	}
	entries := make([]entry, 0, nkern)
	return entries
}

type header struct {
	Count uint64
	Flags uint32
}

// binaryReadUnchecked decodes a struct and uses one of its fields as an
// allocation size without checking it.
func binaryReadUnchecked(r io.Reader) ([]byte, error) {
	var h header
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return nil, err
	}
	return make([]byte, h.Count), nil // want `allocation sized by wire-decoded value h\.Count`
}

// binaryReadChecked compares the decoded field against the budget
// first: clean.
func binaryReadChecked(r io.Reader) ([]byte, error) {
	var h header
	if err := binary.Read(r, binary.LittleEndian, &h); err != nil {
		return nil, err
	}
	if h.Count > maxBytes {
		return nil, errTooBig
	}
	return make([]byte, h.Count), nil
}

type request struct {
	N int
}

// jsonUnchecked: a JSON-decoded field sizes a slice unchecked.
func jsonUnchecked(data []byte) ([]int, error) {
	var req request
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, err
	}
	return make([]int, req.N), nil // want `allocation sized by wire-decoded value req\.N`
}

// jsonChecked bounds the field first: clean.
func jsonChecked(data []byte) ([]int, error) {
	var req request
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, err
	}
	if req.N > 1024 {
		return nil, errTooBig
	}
	return make([]int, req.N), nil
}

// allocFor sizes an allocation directly from its parameter: callers
// passing tainted values are flagged at the call site (alloc-size-param
// fact), not here.
func allocFor(n uint64) []byte {
	return make([]byte, n)
}

// callUnchecked hands a wire-decoded length to allocFor unchecked.
func callUnchecked(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	return allocFor(n), nil // want `wire-decoded value n reaches an allocation size inside allocFor`
}

// callChecked bounds the value before the call: clean.
func callChecked(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > maxBytes {
		return nil, errTooBig
	}
	return allocFor(n), nil
}

// readLen is a wire-source helper: its result carries taint into
// callers (tainted-result fact).
func readLen(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

// viaHelper consumes the helper's tainted result unchecked.
func viaHelper(r *bufio.Reader) []byte {
	n, _ := readLen(r)
	return make([]byte, n) // want `allocation sized by wire-decoded value n`
}

// sanitizers stay quiet: min with a bounded operand, masking, modulo,
// narrow conversions, and loop-bound comparisons all bound the value.
func sanitizers(r *bufio.Reader) []byte {
	a, _ := binary.ReadUvarint(r)
	b, _ := binary.ReadUvarint(r)
	c, _ := binary.ReadUvarint(r)
	d, _ := binary.ReadUvarint(r)
	buf := make([]byte, min(a, maxBytes))
	buf = append(buf, make([]byte, b%4096)...)
	buf = append(buf, make([]byte, c&0xfff)...)
	buf = append(buf, make([]byte, uint16(d))...)
	return buf
}

// loopBound: `for i < n` is an ordering comparison, so n counts as
// checked afterward.
func loopBound(r *bufio.Reader) []int {
	n, _ := binary.ReadUvarint(r)
	total := 0
	for i := uint64(0); i < n; i++ {
		total++
	}
	return make([]int, n)
}

// suppressed carries a conc-ok reason, so the finding is filtered.
func suppressed(r *bufio.Reader) []byte {
	n, _ := binary.ReadUvarint(r)
	return make([]byte, n) //st2:conc-ok test fixture: caller bounds n before handing over the reader
}

// notWire: lengths derived without a wire read never taint.
func notWire(items []int) []int {
	total := 0
	for range items {
		total += 2
	}
	return make([]int, total)
}
