// Package detmaprange exercises the detmaprange analyzer: map-order
// ranges must follow an allowed deterministic idiom or carry a
// //st2:det-ok reason.
package detmaprange

import "sort"

// badKeys leaks map order into the returned slice.
func badKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map m has order-sensitive effects`
		out = append(out, k)
	}
	return out
}

// floatFold re-rounds differently per iteration order.
func floatFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `range over map m has order-sensitive effects`
		sum += v
	}
	return sum
}

// callInBody may have order-sensitive side effects.
func callInBody(m map[string]func()) {
	for _, f := range m { // want `range over map m has order-sensitive effects`
		f()
	}
}

// sortedKeys is the blessed key-collection idiom: collect, then sort.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// slicesSorted uses the slices package for the same idiom.
func slicesSorted(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// unsortedKeys collects but never sorts: the order still leaks.
func unsortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `range over map m has order-sensitive effects`
		keys = append(keys, k)
	}
	return keys
}

// intFold is a commutative integer accumulation: exact at any order.
func intFold(m map[string]uint64) uint64 {
	var n uint64
	for _, v := range m {
		n += v
	}
	return n
}

// keyedTransfer touches a distinct destination cell per iteration.
func keyedTransfer(dst, src map[string]uint64) {
	for k, v := range src {
		dst[k] += v
	}
}

// guardedFold mixes an if guard, max tracking, and bit folds — all
// order-insensitive.
func guardedFold(m map[string]int) (int, int) {
	var bits, best int
	for _, v := range m {
		if v != 0 {
			bits |= v
		}
		best = max(best, v)
	}
	return bits, best
}

// drain deletes during iteration, which the spec sanctions.
func drain(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// suppressed carries a valid reason, so the finding is filtered.
func suppressed(m map[string]func()) {
	//st2:det-ok test fixture: callbacks are independent and order-free
	for _, f := range m {
		f()
	}
}

// reasonless has a det-ok with no reason: it suppresses nothing.
func reasonless(m map[string]int) []string {
	var out []string
	//st2:det-ok
	for k := range m { // want `range over map m has order-sensitive effects`
		out = append(out, k)
	}
	return out
}
