package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder generalizes the lockSpan invariant of internal/gpusim's
// striped memory (DESIGN.md §7): when a function acquires more than one
// lock out of the same sync.Mutex array ("stripes"), the acquisitions
// must be provably in ascending index order — otherwise two goroutines
// taking the same pair in opposite orders deadlock.
//
// Accepted orderings:
//
//   - a swap normalization dominating the locks: `if j < i { i, j = j,
//     i }` (either comparison direction) before the first Lock;
//   - equal-index short-circuit paths: a Lock followed by a return is
//     path-terminal and does not pair with later locks;
//   - an ascending loop: a single Lock site inside a `for i := 0; i <
//     n; i++` loop over the array (the lock-all idiom).
//
// Lock acquisitions are tracked through the pointer idiom too (`a :=
// &m.stripes[i]; a.Lock()`), and a fact is exported for every function
// that locks a stripe array, so acquiring a stripe lock and then
// calling a helper that itself locks stripes — an ordering the analyzer
// cannot see across the call — is flagged at the call site. Facts
// propagate across packages within one run.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Directive: DirectiveConcOk,
	Doc: "requires ascending acquisition order over sync.Mutex stripe arrays\n\n" +
		"Two stripe locks taken in opposite orders by two goroutines " +
		"deadlock; normalize indices (the lockSpan swap idiom) first.",
	Skip: skipUnder(
		"st2gpu/internal/analysis",
		"st2gpu/examples",
	),
	Run: runLockOrder,
}

// loLocksFact marks a function that acquires locks on a mutex array:
// callers holding a stripe lock must not call it.
type loLocksFact struct {
	field string // the stripe array's field or variable name, for messages
}

func runLockOrder(pass *Pass) error {
	lo := &lockOrder{pass: pass}
	var decls []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Fact round first so same-package helper calls are visible
	// regardless of declaration order; dependencies' facts are already
	// in the store.
	for _, fd := range decls {
		if field, locks := lo.locksStripes(fd); locks {
			if obj := pass.TypesInfo.ObjectOf(fd.Name); obj != nil {
				pass.ExportFact(obj, &loLocksFact{field: field})
			}
		}
	}
	for _, fd := range decls {
		lo.checkFunc(fd)
	}
	return nil
}

type lockOrder struct {
	pass *Pass
}

// stripeLock is one Lock() acquisition on an element of a mutex array.
type stripeLock struct {
	pos   token.Pos
	base  types.Object // the array variable or field object
	index ast.Expr     // the element index expression (nil if unknown)
	// loop is set when the Lock sits inside an ascending for loop whose
	// variable is the index.
	loop bool
}

// event is one step of the source-order walk of a function body.
type event struct {
	kind  int // 0 lock, 1 unlock, 2 return, 3 swap-guard, 4 call-with-fact
	lock  *stripeLock
	obj   types.Object // swap-guard: one of the normalized index objects
	obj2  types.Object
	pos   token.Pos
	call  *ast.CallExpr
	fact  *loLocksFact
	fname string
}

// locksStripes reports whether fd acquires any stripe-array lock, and
// the array's name.
func (lo *lockOrder) locksStripes(fd *ast.FuncDecl) (string, bool) {
	events := lo.collect(fd)
	for _, e := range events {
		if e.kind == 0 {
			return e.lock.base.Name(), true
		}
	}
	return "", false
}

// checkFunc walks fd's events in source order, flagging unordered
// second acquisitions and helper calls made while a stripe is held.
func (lo *lockOrder) checkFunc(fd *ast.FuncDecl) {
	events := lo.collect(fd)
	var held []*stripeLock
	swapped := make(map[types.Object]bool)
	for _, e := range events {
		switch e.kind {
		case 0: // lock
			if e.lock.loop {
				// Ascending lock-all loop: ordered by construction.
				continue
			}
			if len(held) > 0 && held[0].base == e.lock.base {
				if !lo.orderedPair(held[len(held)-1], e.lock, swapped) {
					lo.pass.ReportRangef(e.pos, e.pos,
						"second lock on stripe array %s without ascending-order normalization: two goroutines taking the pair in opposite orders deadlock; normalize with the lockSpan swap idiom (`if j < i { i, j = j, i }`) before locking (DESIGN.md §7)",
						e.lock.base.Name())
				}
			}
			held = append(held, e.lock)
		case 1: // unlock: release the matching base (coarse: clear one)
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].base == e.lock.base {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		case 2: // return: this path ends; locks do not pair across it
			held = held[:0]
		case 3: // swap guard normalizes both index objects
			swapped[e.obj] = true
			swapped[e.obj2] = true
		case 4: // call to a function that locks stripes
			if len(held) > 0 {
				lo.pass.ReportRangef(e.pos, e.call.End(),
					"call to %s (which locks stripe array %s) while a stripe lock is held: acquisition order across functions cannot be verified; restructure so one function owns the whole multi-lock sequence (DESIGN.md §7)",
					e.fname, e.fact.field)
			}
		}
	}
}

// orderedPair reports whether the (first, second) acquisition is
// provably ascending: both index objects were normalized by a swap
// guard earlier in the function.
func (lo *lockOrder) orderedPair(first, second *stripeLock, swapped map[types.Object]bool) bool {
	a := indexObj(lo.pass.TypesInfo, first.index)
	b := indexObj(lo.pass.TypesInfo, second.index)
	return a != nil && b != nil && swapped[a] && swapped[b]
}

func indexObj(info *types.Info, e ast.Expr) types.Object {
	if e == nil {
		return nil
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return info.ObjectOf(id)
	}
	return nil
}

// collect walks fd's body in source order, producing the lock/unlock/
// return/guard/call event stream. The pointer idiom is resolved by
// remembering `p := &arr[i]` bindings.
func (lo *lockOrder) collect(fd *ast.FuncDecl) []event {
	info := lo.pass.TypesInfo
	var events []event
	// ptrBinds maps a *sync.Mutex local to the stripe element it points
	// at.
	ptrBinds := make(map[types.Object]*stripeLock)

	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures are separate frames
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				lhs, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				lobj := info.ObjectOf(lhs)
				if lobj == nil {
					continue
				}
				if sl := lo.stripeElemAddr(r); sl != nil {
					ptrBinds[lobj] = sl
				} else {
					delete(ptrBinds, lobj)
				}
			}
			// Swap detection: `i, j = j, i` normalizes after a comparison;
			// the guard event is emitted at the IfStmt below, so nothing
			// here.
		case *ast.IfStmt:
			if a, b, ok := swapGuard(info, n); ok {
				events = append(events, event{kind: 3, obj: a, obj2: b, pos: n.Pos()})
			}
		case *ast.ReturnStmt:
			events = append(events, event{kind: 2, pos: n.Pos()})
		case *ast.CallExpr:
			if sl, isLock, isUnlock := lo.lockCall(n, ptrBinds); sl != nil {
				if isLock {
					sl.loop = insideAscendingLoop(info, stack, sl.index)
					events = append(events, event{kind: 0, lock: sl, pos: n.Pos()})
				} else if isUnlock {
					events = append(events, event{kind: 1, lock: sl, pos: n.Pos()})
				}
				return true
			}
			callee := calleeObject(info, n.Fun)
			if callee == nil {
				return true
			}
			if fact, ok := lo.pass.ImportFact(callee); ok {
				if lf, ok := fact.(*loLocksFact); ok {
					events = append(events, event{kind: 4, pos: n.Pos(), call: n, fact: lf, fname: callee.Name()})
				}
			}
		}
		return true
	})
	return events
}

// stripeElemAddr recognizes `&arr[i]` where arr is an array/slice of
// sync.Mutex, returning the element descriptor.
func (lo *lockOrder) stripeElemAddr(e ast.Expr) *stripeLock {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	return lo.stripeElem(u.X)
}

// stripeElem recognizes `arr[i]` over a mutex array, resolving arr to
// its field or variable object.
func (lo *lockOrder) stripeElem(e ast.Expr) *stripeLock {
	info := lo.pass.TypesInfo
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return nil
	}
	baseT := info.Types[ix.X].Type
	if baseT == nil || !isMutexArray(baseT) {
		return nil
	}
	base := exprObj(info, ix.X)
	if base == nil {
		return nil
	}
	return &stripeLock{base: base, index: ix.Index}
}

// lockCall classifies a call as Lock/Unlock on a stripe element —
// direct (`arr[i].Lock()`) or through a remembered pointer binding.
func (lo *lockOrder) lockCall(call *ast.CallExpr, ptrBinds map[types.Object]*stripeLock) (sl *stripeLock, isLock, isUnlock bool) {
	info := lo.pass.TypesInfo
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	var locking bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locking = true
	case "Unlock", "RUnlock":
	default:
		return nil, false, false
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	if direct := lo.stripeElem(sel.X); direct != nil {
		return direct, locking, !locking
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if bound := ptrBinds[info.ObjectOf(id)]; bound != nil {
			return bound, locking, !locking
		}
	}
	return nil, false, false
}

// swapGuard recognizes `if j < i { i, j = j, i }` (or with > and either
// operand order): a comparison of two index variables whose body swaps
// them.
func swapGuard(info *types.Info, ifs *ast.IfStmt) (types.Object, types.Object, bool) {
	cond, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.GTR) {
		return nil, nil, false
	}
	a := indexObj(info, cond.X)
	b := indexObj(info, cond.Y)
	if a == nil || b == nil {
		return nil, nil, false
	}
	for _, s := range ifs.Body.List {
		asg, ok := s.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 2 || len(asg.Rhs) != 2 {
			continue
		}
		l0, l1 := indexObj(info, asg.Lhs[0]), indexObj(info, asg.Lhs[1])
		r0, r1 := indexObj(info, asg.Rhs[0]), indexObj(info, asg.Rhs[1])
		if l0 == nil || l1 == nil {
			continue
		}
		swapsAB := (l0 == a && l1 == b && r0 == b && r1 == a) ||
			(l0 == b && l1 == a && r0 == a && r1 == b)
		if swapsAB {
			return a, b, true
		}
	}
	return nil, nil, false
}

// insideAscendingLoop reports whether the lock sits in a `for i := ...;
// i < n; i++` loop with i as the element index — the ordered lock-all
// idiom.
func insideAscendingLoop(info *types.Info, stack []ast.Node, index ast.Expr) bool {
	iobj := indexObj(info, index)
	if iobj == nil {
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		fs, ok := stack[i].(*ast.ForStmt)
		if !ok || fs.Post == nil {
			continue
		}
		inc, ok := fs.Post.(*ast.IncDecStmt)
		if !ok || inc.Tok != token.INC {
			continue
		}
		if indexObj(info, inc.X) == iobj {
			return true
		}
	}
	// `for i := range arr` is ascending by definition.
	for i := len(stack) - 1; i >= 0; i-- {
		rs, ok := stack[i].(*ast.RangeStmt)
		if !ok || rs.Key == nil {
			continue
		}
		if key, ok := rs.Key.(*ast.Ident); ok && info.ObjectOf(key) == iobj {
			return true
		}
	}
	return false
}

// isMutexArray reports whether t is an array or slice of sync.Mutex /
// sync.RWMutex.
func isMutexArray(t types.Type) bool {
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Array:
		elem = u.Elem()
	case *types.Slice:
		elem = u.Elem()
	case *types.Pointer:
		return isMutexArray(u.Elem())
	default:
		return false
	}
	named, ok := elem.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
