package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// walkStack traverses root, calling fn with each node and the stack of
// its ancestors (outermost first, not including the node itself). fn
// returning false prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		if ok {
			stack = append(stack, n)
		}
		return ok
	})
}

// isMap reports whether t's core type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isSliceOrArray reports whether t is a slice, array, or pointer to
// array.
func isSliceOrArray(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}

// isInteger reports whether t is an integer (or untyped int) type.
func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isFloat reports whether t is a float32/float64 (or untyped float).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// exprObj resolves an identifier or selector's terminal identifier to
// its object: x -> obj(x), a.b.c -> obj(c). Returns nil for anything
// else.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	}
	return nil
}

// rootIdent returns the leftmost identifier of an expression chain
// (x, x.f, x[i].f, (*x).f -> x), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// pkgFunc reports whether call's callee is the named function of the
// named package (matched by package path), e.g. pkgFunc(info, call,
// "time", "Now").
func pkgFunc(info *types.Info, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj := info.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath
}

// selectorPkgName returns (package path, selected name) when e is a
// selector on an imported package identifier (time.Now, rand.Intn), or
// ("", "") otherwise.
func selectorPkgName(info *types.Info, e ast.Expr) (string, string) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := info.ObjectOf(id).(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}

// containsCall reports whether e contains any function or method call
// (conversions excluded).
func containsCall(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return !found // conversion, keep looking inside
		}
		found = true
		return false
	})
	return found
}

// sameObjectExpr reports whether a and b resolve to the same variable
// reference: identical identifiers, or selector/index chains over the
// same objects with identical index expressions.
func sameObjectExpr(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch av := a.(type) {
	case *ast.Ident:
		bv, ok := b.(*ast.Ident)
		return ok && info.ObjectOf(av) != nil && info.ObjectOf(av) == info.ObjectOf(bv)
	case *ast.SelectorExpr:
		bv, ok := b.(*ast.SelectorExpr)
		return ok && info.ObjectOf(av.Sel) == info.ObjectOf(bv.Sel) && sameObjectExpr(info, av.X, bv.X)
	case *ast.IndexExpr:
		bv, ok := b.(*ast.IndexExpr)
		return ok && sameObjectExpr(info, av.X, bv.X) && sameObjectExpr(info, av.Index, bv.Index)
	}
	return false
}

// enclosingFunc returns the innermost function declaration or literal
// in the stack, with its body.
func enclosingFunc(stack []ast.Node) (ast.Node, *ast.BlockStmt) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f, f.Body
		case *ast.FuncLit:
			return f, f.Body
		}
	}
	return nil, nil
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && node != nil && obj.Pos() != token.NoPos &&
		obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// pathHasPrefix reports whether pkg path is p or lives under p/.
func pathHasPrefix(path, p string) bool {
	return path == p || (len(path) > len(p) && path[:len(p)] == p && path[len(p)] == '/')
}

// skipOutside builds a Skip func that keeps only packages under one of
// the given path prefixes.
func skipOutside(prefixes ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, p := range prefixes {
			if pathHasPrefix(pkgPath, p) {
				return false
			}
		}
		return true
	}
}

// skipUnder builds a Skip func that rejects packages under any of the
// given prefixes and accepts everything else.
func skipUnder(prefixes ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, p := range prefixes {
			if pathHasPrefix(pkgPath, p) {
				return true
			}
		}
		return false
	}
}
