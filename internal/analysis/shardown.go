package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShardOwn enforces the per-SM / per-cell ownership rule of DESIGN.md §7
// inside worker goroutines: a goroutine spawned by Launch or a sweep
// pool may write a shared slice only at the index it owns (its claimed
// SM id, its grid-cell index, its per-iteration loop variable), and may
// never write a shared map or append to a shared slice at all.
//
// "Owned" is computed by local dataflow inside the worker body:
//
//   - parameters of a worker callback invoked by a dispatcher (a
//     function that calls its func-typed parameter from inside a
//     goroutine, like experiments.runGrid / Config.forEachKernel);
//   - variables captured from a loop iteration that encloses the `go`
//     statement (Go ≥1.22 loop variables are per-iteration);
//   - results of an atomic claim (x.Add(1) on a sync/atomic value) or a
//     channel receive;
//   - arithmetic over owned values, constants, and read-only captures;
//     and elements of shared slices read at an owned index.
//
// Ownership facts propagate across same-package helper calls: passing a
// shared slice together with an owned index into a helper re-checks the
// helper's writes with those parameters marked shared/owned. Writes to
// captured scalars are allowed only under a held sync mutex.
var ShardOwn = &Analyzer{
	Name:      "shardown",
	Directive: DirectiveDetOk,
	Doc: "enforces worker-goroutine shard ownership (DESIGN.md §7)\n\n" +
		"Worker goroutines may write shared slices only at worker-owned " +
		"indices, and may never write shared maps.",
	Skip: skipUnder(
		"st2gpu/internal/analysis",
		"st2gpu/examples",
	),
	Run: runShardOwn,
}

func runShardOwn(pass *Pass) error {
	so := &shardOwn{
		pass:    pass,
		decls:   make(map[types.Object]*ast.FuncDecl),
		checked: make(map[helperKey]bool),
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.ObjectOf(fd.Name); obj != nil {
					so.decls[obj] = fd
				}
			}
		}
	}
	// Export a writes-summary fact for every function before checking, so
	// importing packages (checked later in dependency order) can validate
	// calls into this package's helpers from their worker goroutines.
	for obj, fd := range so.decls {
		if fact := so.computeWritesFact(fd); fact != nil {
			pass.ExportFact(obj, fact)
		}
	}
	so.findDispatchers()
	for _, file := range pass.Files {
		so.checkFile(file)
	}
	return nil
}

// Write kinds recorded in soWritesFact.
const (
	soWriteIndex  = iota // container[expr] = ...
	soWriteMap           // map[key] = ...
	soWriteAppend        // container = append(container, ...)
	soWriteScalar        // *p = ... / p.Field = ... without indexing
)

// soWrite is one write to a parameter-rooted container inside a helper.
type soWrite struct {
	param     int   // written parameter index (soRecvParam for the receiver)
	kind      int   // soWrite* constant
	idxParams []int // parameters the index expression derives from
	// paramOnly: every identifier in the index expression is a parameter
	// or a constant, so the call site fully determines the index.
	paramOnly bool
}

// soRecvParam is the pseudo-index of a method receiver in soWrite.param.
const soRecvParam = -1

// soWritesFact summarizes how a function writes through its parameters,
// so a caller in another package can check worker-goroutine calls into
// it: a shared container passed to a recorded write is safe only when
// the write is an index write whose index parameters all receive owned
// values at the call site.
type soWritesFact struct {
	writes []soWrite
}

// computeWritesFact records fd's writes through parameter- or
// receiver-rooted containers, or nil when there are none. Function
// literals inside fd run on unknown goroutines and are skipped — calls
// into fd only account for fd's own frame.
func (so *shardOwn) computeWritesFact(fd *ast.FuncDecl) *soWritesFact {
	info := so.pass.TypesInfo
	paramIdx := make(map[types.Object]int)
	for i, p := range paramObjs(info, fd.Type) {
		if p != nil {
			paramIdx[p] = i
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		if obj := info.ObjectOf(fd.Recv.List[0].Names[0]); obj != nil {
			paramIdx[obj] = soRecvParam
		}
	}
	if len(paramIdx) == 0 {
		return nil
	}
	var fact soWritesFact
	record := func(lhs ast.Expr, rhs []ast.Expr) {
		lhs = ast.Unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			return
		}
		root := rootIdent(lhs)
		if root == nil {
			return
		}
		pi, isParam := paramIdx[info.ObjectOf(root)]
		if !isParam {
			return
		}
		if rootmost := rootmostIndex(lhs); rootmost != nil {
			if isMap(info.Types[rootmost.X].Type) {
				fact.writes = append(fact.writes, soWrite{param: pi, kind: soWriteMap})
				return
			}
			w := soWrite{param: pi, kind: soWriteIndex, paramOnly: true}
			seen := make(map[int]bool)
			ast.Inspect(rootmost.Index, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.ObjectOf(id)
				if obj == nil {
					w.paramOnly = false
					return true
				}
				if _, isConst := obj.(*types.Const); isConst {
					return true
				}
				if j, ok := paramIdx[obj]; ok && j >= 0 {
					if !seen[j] {
						seen[j] = true
						w.idxParams = append(w.idxParams, j)
					}
					return true
				}
				w.paramOnly = false
				return true
			})
			fact.writes = append(fact.writes, w)
			return
		}
		for _, r := range rhs {
			if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
					if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
						fact.writes = append(fact.writes, soWrite{param: pi, kind: soWriteAppend})
						return
					}
				}
			}
		}
		// A plain rebind of the parameter itself (`p = ...`) changes only
		// the callee's local copy; only derefs and field writes reach the
		// caller's state.
		if _, plain := lhs.(*ast.Ident); plain {
			return
		}
		fact.writes = append(fact.writes, soWrite{param: pi, kind: soWriteScalar})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				record(l, n.Rhs)
			}
		case *ast.IncDecStmt:
			record(n.X, nil)
		}
		return true
	})
	if len(fact.writes) == 0 {
		return nil
	}
	return &fact
}

type shardOwn struct {
	pass  *Pass
	decls map[types.Object]*ast.FuncDecl
	// dispatchers maps a function's func-typed parameter object to the
	// per-argument ownedness with which worker goroutines invoke it.
	dispatchers map[types.Object][]bool
	checked     map[helperKey]bool
}

type helperKey struct {
	fn          types.Object
	shared, own uint64 // parameter bitmasks (receiver = bit 63)
}

const recvBit = 63

// workerCtx is the analysis state for one worker function body.
type workerCtx struct {
	so *shardOwn
	// body is the worker function literal (or helper declaration).
	fn ast.Node
	// encl is the outermost enclosing FuncDecl, for read-only checks.
	encl *ast.FuncDecl
	// owned holds objects carrying the worker-owned index/work-item.
	owned map[types.Object]bool
	// sharedParams marks helper parameters bound to shared containers at
	// a propagated call site: declared inside the helper, but aliasing
	// state shared across workers.
	sharedParams map[types.Object]bool
	// loops are the for/range statements enclosing the `go` statement;
	// variables declared inside them are per-iteration copies.
	loops []ast.Node
	depth int
}

// findDispatchers records, for every function in the package that calls
// one of its own func-typed parameters from inside a `go` literal, how
// owned each argument of that call is. A func literal passed to such a
// parameter elsewhere in the package is then analyzed as a worker body.
func (so *shardOwn) findDispatchers() {
	so.dispatchers = make(map[types.Object][]bool)
	info := so.pass.TypesInfo
	for _, fd := range so.decls {
		fd := fd
		walkStack(fd, func(n ast.Node, stack []ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			ctx := so.newGoCtx(fd, gs, lit, stack)
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				obj := info.ObjectOf(id)
				if obj == nil || !isFuncParamOf(obj, fd) {
					return true
				}
				ownedArgs := make([]bool, len(call.Args))
				for i, a := range call.Args {
					ownedArgs[i] = ctx.ownedExpr(a) == ownOwned
				}
				if prev, ok := so.dispatchers[obj]; ok {
					for i := range prev {
						if i < len(ownedArgs) {
							prev[i] = prev[i] && ownedArgs[i]
						}
					}
				} else {
					so.dispatchers[obj] = ownedArgs
				}
				return true
			})
			return true
		})
	}
}

// isFuncParamOf reports whether obj is a func-typed parameter of fd.
func isFuncParamOf(obj types.Object, fd *ast.FuncDecl) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if _, ok := v.Type().Underlying().(*types.Signature); !ok {
		return false
	}
	if fd.Type.Params == nil {
		return false
	}
	return declaredWithin(obj, fd.Type.Params)
}

// checkFile analyzes every worker body in the file: `go` literals, and
// func literals passed to known dispatcher parameters.
func (so *shardOwn) checkFile(file *ast.File) {
	info := so.pass.TypesInfo
	walkStack(file, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				fd := enclosingDecl(stack)
				ctx := so.newGoCtx(fd, n, lit, stack)
				// Immediate-call arguments bind to literal parameters.
				params := paramObjs(info, lit.Type)
				for i, a := range n.Call.Args {
					if i < len(params) && ctx.ownedExpr(a) == ownOwned {
						ctx.owned[params[i]] = true
					}
				}
				ctx.checkBody(lit.Body)
				return false // literal handled; don't double-visit nested go stmts? keep walking for nested
			}
		case *ast.CallExpr:
			callee := calleeObject(info, n.Fun)
			if callee == nil {
				return true
			}
			fd, ok := so.decls[callee]
			if !ok {
				return true
			}
			// Map call args to parameter objects; a func literal passed to
			// a dispatcher parameter runs on worker goroutines.
			params := paramObjs(info, fd.Type)
			for i, a := range n.Args {
				lit, ok := ast.Unparen(a).(*ast.FuncLit)
				if !ok || i >= len(params) {
					continue
				}
				ownedArgs, ok := so.dispatchers[params[i]]
				if !ok {
					continue
				}
				ctx := &workerCtx{
					so:    so,
					fn:    lit,
					encl:  enclosingDecl(stack),
					owned: make(map[types.Object]bool),
				}
				litParams := paramObjs(info, lit.Type)
				for j, p := range litParams {
					if j < len(ownedArgs) && ownedArgs[j] {
						ctx.owned[p] = true
					}
				}
				ctx.checkBody(lit.Body)
			}
		}
		return true
	})
}

// newGoCtx builds the worker context for a `go func(...){...}(...)`
// statement: captures declared inside enclosing loops are per-iteration.
func (so *shardOwn) newGoCtx(encl *ast.FuncDecl, gs *ast.GoStmt, lit *ast.FuncLit, stack []ast.Node) *workerCtx {
	ctx := &workerCtx{
		so:    so,
		fn:    lit,
		encl:  encl,
		owned: make(map[types.Object]bool),
	}
	for _, a := range stack {
		switch a.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			ctx.loops = append(ctx.loops, a)
		}
	}
	return ctx
}

func enclosingDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

func paramObjs(info *types.Info, ft *ast.FuncType) []types.Object {
	var out []types.Object
	if ft.Params == nil {
		return nil
	}
	for _, f := range ft.Params.List {
		for _, name := range f.Names {
			out = append(out, info.ObjectOf(name))
		}
	}
	return out
}

// calleeObject resolves a call target to its function object, for plain
// and method calls.
func calleeObject(info *types.Info, fun ast.Expr) types.Object {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		if o, ok := info.ObjectOf(f).(*types.Func); ok {
			return o
		}
	case *ast.SelectorExpr:
		if o, ok := info.ObjectOf(f.Sel).(*types.Func); ok {
			return o
		}
	}
	return nil
}

// ownedness lattice for expressions inside a worker body.
type ownedness int

const (
	ownTaint ownedness = iota // reaches shared mutable state or unknown calls
	ownPure                   // constants and read-only captures only
	ownOwned                  // derived from the worker-owned index/claim
)

func combine(a, b ownedness) ownedness {
	if a == ownTaint || b == ownTaint {
		return ownTaint
	}
	if a == ownOwned || b == ownOwned {
		return ownOwned
	}
	return ownPure
}

// localTo reports whether obj is declared inside the worker body itself.
func (ctx *workerCtx) localTo(obj types.Object) bool {
	return declaredWithin(obj, ctx.fn)
}

// perIteration reports whether obj is declared inside a loop that
// encloses the worker's `go` statement — a fresh copy per iteration.
func (ctx *workerCtx) perIteration(obj types.Object) bool {
	for _, l := range ctx.loops {
		if declaredWithin(obj, l) {
			return true
		}
	}
	return false
}

// readOnlyCapture reports whether obj (captured from outside the worker
// body) is never reassigned or address-taken in the enclosing function,
// making it constant-like for index arithmetic.
func (ctx *workerCtx) readOnlyCapture(obj types.Object) bool {
	if ctx.encl == nil || !declaredWithin(obj, ctx.encl) {
		return false // package-level or unknown: stay conservative
	}
	info := ctx.so.pass.TypesInfo
	writable := false
	ast.Inspect(ctx.encl, func(n ast.Node) bool {
		if writable {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, l := range n.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok && info.ObjectOf(id) == obj {
					writable = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && info.ObjectOf(id) == obj {
				writable = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && info.ObjectOf(id) == obj {
					writable = true
				}
			}
		}
		return !writable
	})
	return !writable
}

// ownedExpr classifies an expression.
func (ctx *workerCtx) ownedExpr(e ast.Expr) ownedness {
	info := ctx.so.pass.TypesInfo
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return ownPure
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return ownTaint
		}
		if _, isConst := obj.(*types.Const); isConst {
			return ownPure
		}
		if ctx.sharedParams[obj] {
			return ownTaint
		}
		if ctx.owned[obj] || ctx.perIteration(obj) {
			return ownOwned
		}
		if ctx.localTo(obj) {
			// Locals are classified when assigned (checkBody seeds
			// ctx.owned); an unseeded local is schedule-private but not
			// owned: it cannot prove a shared write safe.
			return ownPure
		}
		if ctx.readOnlyCapture(obj) {
			return ownPure
		}
		return ownTaint
	case *ast.SelectorExpr:
		if root := rootIdent(e); root != nil {
			return ctx.ownedExpr(root)
		}
		return ownTaint
	case *ast.IndexExpr:
		base := ctx.ownedExpr(e.X)
		idx := ctx.ownedExpr(e.Index)
		if idx == ownOwned {
			return ownOwned // shared[ownedIdx]: the worker's own element
		}
		return combine(base, idx)
	case *ast.BinaryExpr:
		return combine(ctx.ownedExpr(e.X), ctx.ownedExpr(e.Y))
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return ownOwned // received work item
		}
		return ctx.ownedExpr(e.X)
	case *ast.StarExpr:
		return ctx.ownedExpr(e.X)
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			// Conversion.
			res := ownPure
			for _, a := range e.Args {
				res = combine(res, ctx.ownedExpr(a))
			}
			return res
		}
		if isAtomicClaim(info, e) {
			return ownOwned
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin &&
				(id.Name == "len" || id.Name == "cap" || id.Name == "min" || id.Name == "max") {
				res := ownPure
				for _, a := range e.Args {
					if ctx.ownedExpr(a) == ownOwned {
						res = ownOwned
					}
				}
				return res
			}
		}
		return ownTaint
	}
	return ownTaint
}

// isAtomicClaim recognizes x.Add(n) on a sync/atomic value — the
// worker-pool idiom for claiming the next work index.
func isAtomicClaim(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" {
		return false
	}
	obj, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "sync/atomic"
}

// checkBody walks a worker body: classifying locals, validating writes,
// and propagating facts into same-package helpers.
func (ctx *workerCtx) checkBody(body *ast.BlockStmt) {
	info := ctx.so.pass.TypesInfo
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// First classify defines so later uses see ownedness.
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i, l := range n.Lhs {
					if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
						if obj := info.ObjectOf(id); obj != nil && ctx.ownedExpr(n.Rhs[i]) == ownOwned {
							ctx.owned[obj] = true
						}
					}
				}
			}
			for _, l := range n.Lhs {
				ctx.checkWrite(n, l, n.Rhs, stack)
			}
		case *ast.RangeStmt:
			// `for v := range ch` inside the worker: items are owned.
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					if id, ok := n.Key.(*ast.Ident); ok && id.Name != "_" {
						if obj := info.ObjectOf(id); obj != nil {
							ctx.owned[obj] = true
						}
					}
				}
			}
		case *ast.IncDecStmt:
			ctx.checkWrite(n, n.X, nil, stack)
		case *ast.CallExpr:
			ctx.propagateCall(n, stack)
		}
		return true
	})
}

// sharedRoot resolves the base of a write target: returns the captured
// (shared, non-owned) root identifier's object, or nil when the target
// is local or owned.
func (ctx *workerCtx) sharedRoot(e ast.Expr) types.Object {
	root := rootIdent(e)
	if root == nil {
		return nil // unknown shape: stay silent rather than guess
	}
	obj := ctx.so.pass.TypesInfo.ObjectOf(root)
	if obj == nil {
		return nil
	}
	if ctx.sharedParams[obj] {
		return obj
	}
	if ctx.localTo(obj) || ctx.owned[obj] || ctx.perIteration(obj) {
		return nil
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	return obj
}

// checkWrite validates one assignment target inside the worker body.
func (ctx *workerCtx) checkWrite(stmt ast.Node, lhs ast.Expr, rhs []ast.Expr, stack []ast.Node) {
	info := ctx.so.pass.TypesInfo
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	if rootmost := rootmostIndex(lhs); rootmost != nil {
		obj := ctx.sharedRoot(rootmost.X)
		if obj == nil {
			return
		}
		// The index applied directly to the shared root decides ownership:
		// once the worker has selected its own cell (rows[i]), everything
		// beneath it (rows[i].Rates[j]) is worker-private.
		baseType := info.Types[rootmost.X].Type
		if isMap(baseType) {
			ctx.so.pass.Reportf(lhs.Pos(),
				"write to shared map %s inside a worker goroutine: concurrent map writes fault even at distinct keys; give each worker its own map and fold in SM-ID order (DESIGN.md §7)",
				types.ExprString(rootmost.X))
			return
		}
		if ctx.ownedExpr(rootmost.Index) != ownOwned {
			ctx.so.pass.Reportf(lhs.Pos(),
				"write to shared %s at index %s that is not derived from the worker-owned index; workers may write only the cells they own (DESIGN.md §7)",
				types.ExprString(rootmost.X), types.ExprString(rootmost.Index))
		}
		return
	}
	obj := ctx.sharedRoot(lhs)
	if obj == nil {
		return
	}
	// append-to-shared is a growth race even at "distinct" elements.
	for _, r := range rhs {
		if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					ctx.so.pass.Reportf(lhs.Pos(),
						"append to shared slice %s inside a worker goroutine races on length and backing array; accumulate into a per-worker shard and fold after the workers join (DESIGN.md §7)",
						obj.Name())
					return
				}
			}
		}
	}
	if ctx.mutexHeld(stack) {
		return
	}
	ctx.so.pass.Reportf(lhs.Pos(),
		"write to captured variable %s inside a worker goroutine without a held mutex; shard it per worker or guard it (DESIGN.md §7)",
		types.ExprString(lhs))
}

// rootmostIndex returns the index expression applied closest to the
// root of an lvalue chain (rows[i].Rates[j] -> rows[i]), or nil when
// the chain contains no indexing. The root-most index is the one that
// selects the worker's cell out of the shared container; everything
// below it lives inside that cell.
func rootmostIndex(e ast.Expr) *ast.IndexExpr {
	var last *ast.IndexExpr
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			last = v
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return last
		}
	}
}

// mutexHeld reports whether a sync mutex .Lock() call appears earlier in
// one of the statement blocks enclosing the write, inside the worker
// body — a lightweight "is this the guarded-progress idiom" test.
func (ctx *workerCtx) mutexHeld(stack []ast.Node) bool {
	info := ctx.so.pass.TypesInfo
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] == ctx.fn {
			break
		}
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		for _, s := range block.List {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
				continue
			}
			if fn, ok := info.ObjectOf(sel.Sel).(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				return true
			}
		}
	}
	return false
}

// propagateCall pushes shared/owned facts into same-package helpers: a
// helper handed a shared container plus owned indices must itself obey
// the ownership rule.
func (ctx *workerCtx) propagateCall(call *ast.CallExpr, stack []ast.Node) {
	if ctx.depth >= 4 {
		return
	}
	info := ctx.so.pass.TypesInfo
	callee := calleeObject(info, call.Fun)
	if callee == nil {
		return
	}
	fd, ok := ctx.so.decls[callee]
	if !ok {
		// Cross-package helper: no syntax to re-walk, but the callee's
		// pass exported a writes summary we can check this call against.
		ctx.applyWritesFact(call, callee)
		return
	}
	var sharedMask, ownMask uint64
	params := paramObjs(info, fd.Type)
	for i, a := range call.Args {
		if i >= len(params) || i >= 63 {
			break
		}
		t := info.Types[a].Type
		if t != nil && (isMap(t) || isSliceOrArray(t) || isPointer(t)) {
			if obj := ctx.sharedRoot(a); obj != nil && ctx.ownedExpr(a) != ownOwned {
				sharedMask |= 1 << i
				continue
			}
		}
		if ctx.ownedExpr(a) == ownOwned {
			ownMask |= 1 << i
		}
	}
	// A method's receiver propagates too: calling m on a shared pointer
	// receiver hands the callee the shared state.
	var recvShared bool
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && fd.Recv != nil {
		t := info.Types[sel.X].Type
		if t != nil && isPointer(t) {
			if obj := ctx.sharedRoot(sel.X); obj != nil && ctx.ownedExpr(sel.X) != ownOwned {
				recvShared = true
				sharedMask |= 1 << recvBit
			}
		}
	}
	if sharedMask == 0 {
		return
	}
	key := helperKey{fn: callee, shared: sharedMask, own: ownMask}
	if ctx.so.checked[key] {
		return
	}
	ctx.so.checked[key] = true

	helper := &workerCtx{
		so:    ctx.so,
		fn:    fd,
		encl:  fd,
		owned: make(map[types.Object]bool),
		depth: ctx.depth + 1,
	}
	for i, p := range params {
		if ownMask&(1<<i) != 0 {
			helper.owned[p] = true
		}
	}
	helper.sharedParams = make(map[types.Object]bool)
	for i, p := range params {
		if sharedMask&(1<<i) != 0 {
			helper.sharedParams[p] = true
		}
	}
	if recvShared && fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		if obj := info.ObjectOf(fd.Recv.List[0].Names[0]); obj != nil {
			helper.sharedParams[obj] = true
		}
	}
	helper.checkBody(fd.Body)
}

// applyWritesFact checks one worker-goroutine call into another
// package's helper against the helper's exported writes summary: every
// shared container handed to a recorded write must be an index write
// whose index parameters all receive worker-owned values here.
func (ctx *workerCtx) applyWritesFact(call *ast.CallExpr, callee types.Object) {
	fact, ok := ctx.so.pass.ImportFact(callee)
	if !ok {
		return
	}
	wf, ok := fact.(*soWritesFact)
	if !ok {
		return
	}
	argFor := func(param int) ast.Expr {
		var arg ast.Expr
		if param == soRecvParam {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				arg = sel.X
			}
		} else if param >= 0 && param < len(call.Args) {
			arg = call.Args[param]
		}
		if arg == nil {
			return nil
		}
		// &x hands over x itself; the callee writes through the pointer.
		if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
			return u.X
		}
		return arg
	}
	for _, w := range wf.writes {
		arg := argFor(w.param)
		if arg == nil {
			continue
		}
		if ctx.sharedRoot(arg) == nil || ctx.ownedExpr(arg) == ownOwned {
			continue // not shared state, or the worker's own cell
		}
		switch w.kind {
		case soWriteIndex:
			safe := w.paramOnly && len(w.idxParams) > 0
			for _, j := range w.idxParams {
				idxArg := argFor(j)
				if idxArg == nil || ctx.ownedExpr(idxArg) != ownOwned {
					safe = false
				}
			}
			if !safe {
				ctx.so.pass.Reportf(call.Pos(),
					"call passes shared %s to %s, which writes it at an index not fully determined by worker-owned arguments here (DESIGN.md §7)",
					types.ExprString(arg), callee.Name())
			}
		case soWriteMap:
			ctx.so.pass.Reportf(call.Pos(),
				"call passes shared map %s to %s, which writes it: concurrent map writes fault even at distinct keys (DESIGN.md §7)",
				types.ExprString(arg), callee.Name())
		case soWriteAppend:
			ctx.so.pass.Reportf(call.Pos(),
				"call passes shared slice %s to %s, which appends to it: append races on length and backing array (DESIGN.md §7)",
				types.ExprString(arg), callee.Name())
		case soWriteScalar:
			ctx.so.pass.Reportf(call.Pos(),
				"call passes shared %s to %s, which writes through it without indexing; shard it per worker or guard it (DESIGN.md §7)",
				types.ExprString(arg), callee.Name())
		}
	}
}

func isPointer(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}
