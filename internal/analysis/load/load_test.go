package load

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// writeModule lays out a one-package module with no dependencies, so
// the test loads fast and never touches the network.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod":  "module example.com/tiny\n\ngo 1.22\n",
		"tiny.go": src,
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadCached(t *testing.T) {
	dir := writeModule(t, "package tiny\n\nfunc Two() int { return 2 }\n")
	cacheDir := filepath.Join(t.TempDir(), "cache")

	load := func() []*Package {
		t.Helper()
		pkgs, err := LoadCached(token.NewFileSet(), dir, cacheDir, "./...")
		if err != nil {
			t.Fatal(err)
		}
		if len(pkgs) != 1 || pkgs[0].Name != "tiny" || len(pkgs[0].Errors) != 0 {
			t.Fatalf("unexpected load result: %+v", pkgs)
		}
		return pkgs
	}

	load()
	ents, err := os.ReadDir(cacheDir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("first load should leave exactly one cache entry, got %v (err %v)", ents, err)
	}
	first := ents[0].Name()

	// Second load hits the cached go-list output: same single entry, and
	// the packages still come back fully type-checked.
	load()
	ents, _ = os.ReadDir(cacheDir)
	if len(ents) != 1 || ents[0].Name() != first {
		t.Fatalf("second load should reuse the cache entry %s, got %v", first, ents)
	}

	// Editing a .go file must change the key — a stale graph here would
	// mean analyzing phantom packages.
	if err := os.WriteFile(filepath.Join(dir, "tiny.go"),
		[]byte("package tiny\n\nfunc Three() int { return 3 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	load()
	ents, _ = os.ReadDir(cacheDir)
	if len(ents) != 2 {
		t.Fatalf("edited source should mint a second cache entry, got %v", ents)
	}
}

func TestLoadCachedEmptyDirFallsBack(t *testing.T) {
	dir := writeModule(t, "package tiny\n")
	pkgs, err := LoadCached(token.NewFileSet(), dir, "", "./...")
	if err != nil || len(pkgs) != 1 {
		t.Fatalf("LoadCached with no cache dir should behave like Load: %v, %v", pkgs, err)
	}
}

func TestLoadCachedIgnoresCorruptEntry(t *testing.T) {
	dir := writeModule(t, "package tiny\n\nfunc Two() int { return 2 }\n")
	cacheDir := t.TempDir()
	key, err := cacheKey(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cacheDir, key+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadCached(token.NewFileSet(), dir, cacheDir, "./...")
	if err != nil || len(pkgs) != 1 || pkgs[0].Name != "tiny" {
		t.Fatalf("corrupt cache entry should be ignored, got %v, %v", pkgs, err)
	}
}
