// Package load turns `go list` package graphs into parsed, type-checked
// packages using nothing but the standard library.
//
// It exists because the canonical loader (golang.org/x/tools/go/packages)
// is a module dependency this repository deliberately does not take: the
// build must stay stdlib-only so `go build ./...` is green from a clean
// module cache with no network. The loader shells out to the go command
// for package discovery — `go list -deps -json` emits the transitive
// import closure in dependency order — and then parses and type-checks
// every package from source, stdlib included, with go/parser and
// go/types. That is slower than reading export data, but it is fully
// offline, deterministic, and gives analyzers complete syntax trees and
// types.Info for every target package.
package load

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string // absolute paths, build-constraint filtered by go list
	Standard   bool     // part of the standard library
	Target     bool     // named by the Load patterns (not a pure dependency)

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// Errors holds parse and type errors. Dependencies are allowed to
	// carry errors (analysis degrades gracefully); targets with errors
	// should normally abort the run.
	Errors []error

	imports   map[string]*Package // source import path -> package
	importMap map[string]string   // source path -> canonical (vendored) path
	siblings  []*Package          // sibling testdata packages, dependencies first
}

// SiblingDeps returns the sibling testdata packages this package
// imports (directly or transitively), dependencies first. Only LoadDir
// populates siblings; packages from Load return nil.
func (p *Package) SiblingDeps() []*Package {
	return p.siblings
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists patterns from dir (module-aware, offline) and returns the
// type-checked target packages in `go list` order. Dependencies are
// checked too — from source — but only targets are returned.
func Load(fset *token.FileSet, dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return fromListed(fset, listed)
}

// LoadCached is Load with the `go list -e -deps -json` step memoized on
// disk. The cache key hashes the toolchain version, the patterns,
// go.mod, and the name+content of every non-testdata .go file under
// dir, so any edit that could change the package graph invalidates the
// entry. Parsing and type-checking still run fresh each call — only the
// package-discovery subprocess is skipped. An empty cacheDir, or any
// cache error, falls back to a plain Load.
func LoadCached(fset *token.FileSet, dir, cacheDir string, patterns ...string) ([]*Package, error) {
	if cacheDir == "" {
		return Load(fset, dir, patterns...)
	}
	key, err := cacheKey(dir, patterns)
	if err != nil {
		return Load(fset, dir, patterns...)
	}
	path := filepath.Join(cacheDir, key+".json")
	if data, err := os.ReadFile(path); err == nil {
		var listed []*listPackage
		if json.Unmarshal(data, &listed) == nil && len(listed) > 0 {
			return fromListed(fset, listed)
		}
	}
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	if data, err := json.Marshal(listed); err == nil {
		if err := os.MkdirAll(cacheDir, 0o755); err == nil {
			tmp := path + ".tmp"
			if os.WriteFile(tmp, data, 0o644) == nil {
				_ = os.Rename(tmp, path)
			}
		}
	}
	return fromListed(fset, listed)
}

// cacheKey derives the LoadCached key from everything that can change
// `go list` output: toolchain, patterns, go.mod/go.sum, and each .go
// file's path and content under dir (testdata and dot-directories
// excluded — go list never reads them).
func cacheKey(dir string, patterns []string) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "v1\x00%s\x00%s\x00", runtime.Version(), strings.Join(patterns, "\x00"))
	for _, name := range []string{"go.mod", "go.sum"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err == nil {
			fmt.Fprintf(h, "%s\x00%x\x00", name, sha256.Sum256(data))
		}
	}
	var files []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || name == "testdata") {
				return fs.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(files)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return "", err
		}
		rel, _ := filepath.Rel(dir, f)
		fmt.Fprintf(h, "%s\x00%x\x00", rel, sha256.Sum256(data))
	}
	return hex.EncodeToString(h.Sum(nil))[:32], nil
}

// fromListed parses, type-checks, and filters the listed graph down to
// the target packages in `go list` order.
func fromListed(fset *token.FileSet, listed []*listPackage) ([]*Package, error) {
	byPath, order, err := checkGraph(fset, listed, nil)
	if err != nil {
		return nil, err
	}
	var targets []*Package
	for _, path := range order {
		if p := byPath[path]; p.Target {
			targets = append(targets, p)
		}
	}
	return targets, nil
}

// LoadDir parses the single package rooted at dir — which may live under
// a testdata directory the go tool refuses to list — resolves its
// imports against the standard library, and type-checks it. Imports of
// the form "testdata/<name>" resolve to the sibling directory
// ../<name>, loaded recursively, so analysistest packages can exercise
// cross-package fact propagation; siblings are exposed via
// SiblingDeps() in dependency order. Used by the analysistest harness.
func LoadDir(fset *token.FileSet, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	pkg := &Package{
		ImportPath: "testdata/" + filepath.Base(dir),
		Dir:        dir,
		GoFiles:    files,
		Target:     true,
		Fset:       fset,
		imports:    make(map[string]*Package),
	}
	if err := parsePackage(fset, pkg); err != nil {
		return nil, err
	}
	// Gather the imports the testdata package needs and type-check them
	// (and their dependencies) from source.
	seen := map[string]bool{}
	var deps, sibs []string
	for _, f := range pkg.Syntax {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "unsafe" || seen[path] {
				continue
			}
			seen[path] = true
			if strings.HasPrefix(path, "testdata/") {
				sibs = append(sibs, path)
			} else {
				deps = append(deps, path)
			}
		}
	}
	sort.Strings(deps)
	sort.Strings(sibs)
	for _, path := range sibs {
		sibDir := filepath.Join(filepath.Dir(dir), strings.TrimPrefix(path, "testdata/"))
		sib, err := LoadDir(fset, sibDir)
		if err != nil {
			return nil, fmt.Errorf("load: sibling %s of %s: %w", path, dir, err)
		}
		haveSib := map[string]bool{}
		for _, s := range pkg.siblings {
			haveSib[s.ImportPath] = true
		}
		for _, s := range append(sib.siblings, sib) {
			if !haveSib[s.ImportPath] {
				haveSib[s.ImportPath] = true
				pkg.siblings = append(pkg.siblings, s)
			}
		}
		pkg.imports[path] = sib
		// The sibling's own stdlib dependencies must be resolvable when
		// type-checking this package re-reaches them through the sibling's
		// exported API.
		for p, d := range sib.imports {
			if _, ok := pkg.imports[p]; !ok {
				pkg.imports[p] = d
			}
		}
	}
	if len(deps) > 0 {
		listed, err := goList(dir, deps...)
		if err != nil {
			return nil, err
		}
		// Seed with the packages the siblings already checked: re-checking
		// a shared dependency (sync, fmt, ...) would mint a second
		// *types.Package for the same import path, and the sibling's
		// exported API would no longer be type-identical to this package's
		// view of it.
		byPath, _, err := checkGraph(fset, listed, pkg.imports)
		if err != nil {
			return nil, err
		}
		for path, dep := range byPath {
			pkg.imports[path] = dep
		}
	}
	typeCheck(fset, pkg)
	return pkg, nil
}

// goList runs `go list -e -deps -json` and decodes the stream. CGO is
// disabled so every package resolves to pure Go sources the type
// checker can consume.
func goList(dir string, patterns ...string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-deps",
		"-json=ImportPath,Name,Dir,Standard,DepOnly,GoFiles,CgoFiles,Imports,ImportMap,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("load: starting go list: %w", err)
	}
	var listed []*listPackage
	dec := json.NewDecoder(out)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return listed, nil
}

// checkGraph parses and type-checks every listed package. `go list
// -deps` emits dependencies before dependents, so a single forward pass
// sees every import already checked. Packages present in seed (already
// type-checked by an earlier load sharing the same fset) are reused as
// is — one *types.Package per import path per run is what makes object
// identity, and therefore facts and type equality, work across loads.
func checkGraph(fset *token.FileSet, listed []*listPackage, seed map[string]*Package) (map[string]*Package, []string, error) {
	byPath := make(map[string]*Package, len(listed))
	order := make([]string, 0, len(listed))
	for _, lp := range listed {
		if pre, ok := seed[lp.ImportPath]; ok && pre.Types != nil {
			byPath[lp.ImportPath] = pre
			order = append(order, lp.ImportPath)
			continue
		}
		if lp.ImportPath == "unsafe" {
			byPath["unsafe"] = &Package{ImportPath: "unsafe", Standard: true, Types: types.Unsafe, Fset: fset}
			order = append(order, "unsafe")
			continue
		}
		pkg := &Package{
			ImportPath: lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			Standard:   lp.Standard,
			Target:     !lp.DepOnly,
			Fset:       fset,
			imports:    make(map[string]*Package, len(lp.Imports)),
			importMap:  lp.ImportMap,
		}
		if lp.Error != nil {
			pkg.Errors = append(pkg.Errors, fmt.Errorf("%s", lp.Error.Err))
		}
		for _, f := range lp.GoFiles {
			if !filepath.IsAbs(f) {
				f = filepath.Join(lp.Dir, f)
			}
			pkg.GoFiles = append(pkg.GoFiles, f)
		}
		for _, imp := range lp.Imports {
			if dep, ok := byPath[imp]; ok {
				pkg.imports[imp] = dep
			}
		}
		if len(lp.CgoFiles) > 0 {
			pkg.Errors = append(pkg.Errors,
				fmt.Errorf("%s: cgo package cannot be type-checked from source", lp.ImportPath))
		} else if err := parsePackage(fset, pkg); err != nil {
			pkg.Errors = append(pkg.Errors, err)
		}
		typeCheck(fset, pkg)
		byPath[lp.ImportPath] = pkg
		order = append(order, lp.ImportPath)
	}
	return byPath, order, nil
}

func parsePackage(fset *token.FileSet, pkg *Package) error {
	for _, name := range pkg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		pkg.Syntax = append(pkg.Syntax, f)
	}
	return nil
}

func typeCheck(fset *token.FileSet, pkg *Package) {
	if len(pkg.Syntax) == 0 {
		return
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: &graphImporter{pkg: pkg},
		Error: func(err error) {
			pkg.Errors = append(pkg.Errors, err)
		},
		Sizes: types.SizesFor("gc", "amd64"),
	}
	tpkg, _ := conf.Check(pkg.ImportPath, fset, pkg.Syntax, info)
	pkg.Types = tpkg
	pkg.TypesInfo = info
}

// graphImporter resolves imports against the already-checked graph,
// applying go list's ImportMap for stdlib-vendored paths.
type graphImporter struct {
	pkg *Package
}

func (gi *graphImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	canonical := path
	if mapped, ok := gi.pkg.importMap[path]; ok {
		canonical = mapped
	}
	dep, ok := gi.pkg.imports[canonical]
	if !ok {
		dep, ok = gi.pkg.imports[path]
	}
	if !ok || dep.Types == nil {
		return nil, fmt.Errorf("load: import %q not in dependency graph of %s", path, gi.pkg.ImportPath)
	}
	return dep.Types, nil
}
