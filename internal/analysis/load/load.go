// Package load turns `go list` package graphs into parsed, type-checked
// packages using nothing but the standard library.
//
// It exists because the canonical loader (golang.org/x/tools/go/packages)
// is a module dependency this repository deliberately does not take: the
// build must stay stdlib-only so `go build ./...` is green from a clean
// module cache with no network. The loader shells out to the go command
// for package discovery — `go list -deps -json` emits the transitive
// import closure in dependency order — and then parses and type-checks
// every package from source, stdlib included, with go/parser and
// go/types. That is slower than reading export data, but it is fully
// offline, deterministic, and gives analyzers complete syntax trees and
// types.Info for every target package.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string // absolute paths, build-constraint filtered by go list
	Standard   bool     // part of the standard library
	Target     bool     // named by the Load patterns (not a pure dependency)

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	// Errors holds parse and type errors. Dependencies are allowed to
	// carry errors (analysis degrades gracefully); targets with errors
	// should normally abort the run.
	Errors []error

	imports   map[string]*Package // source import path -> package
	importMap map[string]string   // source path -> canonical (vendored) path
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists patterns from dir (module-aware, offline) and returns the
// type-checked target packages in `go list` order. Dependencies are
// checked too — from source — but only targets are returned.
func Load(fset *token.FileSet, dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	byPath, order, err := checkGraph(fset, listed)
	if err != nil {
		return nil, err
	}
	var targets []*Package
	for _, path := range order {
		if p := byPath[path]; p.Target {
			targets = append(targets, p)
		}
	}
	return targets, nil
}

// LoadDir parses the single package rooted at dir — which may live under
// a testdata directory the go tool refuses to list — resolves its
// imports against the standard library, and type-checks it. Used by the
// analysistest harness.
func LoadDir(fset *token.FileSet, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	pkg := &Package{
		ImportPath: "testdata/" + filepath.Base(dir),
		Dir:        dir,
		GoFiles:    files,
		Target:     true,
		Fset:       fset,
		imports:    make(map[string]*Package),
	}
	if err := parsePackage(fset, pkg); err != nil {
		return nil, err
	}
	// Gather the imports the testdata package needs and type-check them
	// (and their dependencies) from source.
	seen := map[string]bool{}
	var deps []string
	for _, f := range pkg.Syntax {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != "unsafe" && !seen[path] {
				seen[path] = true
				deps = append(deps, path)
			}
		}
	}
	sort.Strings(deps)
	if len(deps) > 0 {
		listed, err := goList(dir, deps...)
		if err != nil {
			return nil, err
		}
		byPath, _, err := checkGraph(fset, listed)
		if err != nil {
			return nil, err
		}
		for path, dep := range byPath {
			pkg.imports[path] = dep
		}
	}
	typeCheck(fset, pkg)
	return pkg, nil
}

// goList runs `go list -e -deps -json` and decodes the stream. CGO is
// disabled so every package resolves to pure Go sources the type
// checker can consume.
func goList(dir string, patterns ...string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-deps",
		"-json=ImportPath,Name,Dir,Standard,DepOnly,GoFiles,CgoFiles,Imports,ImportMap,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("load: starting go list: %w", err)
	}
	var listed []*listPackage
	dec := json.NewDecoder(out)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("load: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return listed, nil
}

// checkGraph parses and type-checks every listed package. `go list
// -deps` emits dependencies before dependents, so a single forward pass
// sees every import already checked.
func checkGraph(fset *token.FileSet, listed []*listPackage) (map[string]*Package, []string, error) {
	byPath := make(map[string]*Package, len(listed))
	order := make([]string, 0, len(listed))
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			byPath["unsafe"] = &Package{ImportPath: "unsafe", Standard: true, Types: types.Unsafe, Fset: fset}
			order = append(order, "unsafe")
			continue
		}
		pkg := &Package{
			ImportPath: lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			Standard:   lp.Standard,
			Target:     !lp.DepOnly,
			Fset:       fset,
			imports:    make(map[string]*Package, len(lp.Imports)),
			importMap:  lp.ImportMap,
		}
		if lp.Error != nil {
			pkg.Errors = append(pkg.Errors, fmt.Errorf("%s", lp.Error.Err))
		}
		for _, f := range lp.GoFiles {
			if !filepath.IsAbs(f) {
				f = filepath.Join(lp.Dir, f)
			}
			pkg.GoFiles = append(pkg.GoFiles, f)
		}
		for _, imp := range lp.Imports {
			if dep, ok := byPath[imp]; ok {
				pkg.imports[imp] = dep
			}
		}
		if len(lp.CgoFiles) > 0 {
			pkg.Errors = append(pkg.Errors,
				fmt.Errorf("%s: cgo package cannot be type-checked from source", lp.ImportPath))
		} else if err := parsePackage(fset, pkg); err != nil {
			pkg.Errors = append(pkg.Errors, err)
		}
		typeCheck(fset, pkg)
		byPath[lp.ImportPath] = pkg
		order = append(order, lp.ImportPath)
	}
	return byPath, order, nil
}

func parsePackage(fset *token.FileSet, pkg *Package) error {
	for _, name := range pkg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		pkg.Syntax = append(pkg.Syntax, f)
	}
	return nil
}

func typeCheck(fset *token.FileSet, pkg *Package) {
	if len(pkg.Syntax) == 0 {
		return
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: &graphImporter{pkg: pkg},
		Error: func(err error) {
			pkg.Errors = append(pkg.Errors, err)
		},
		Sizes: types.SizesFor("gc", "amd64"),
	}
	tpkg, _ := conf.Check(pkg.ImportPath, fset, pkg.Syntax, info)
	pkg.Types = tpkg
	pkg.TypesInfo = info
}

// graphImporter resolves imports against the already-checked graph,
// applying go list's ImportMap for stdlib-vendored paths.
type graphImporter struct {
	pkg *Package
}

func (gi *graphImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	canonical := path
	if mapped, ok := gi.pkg.importMap[path]; ok {
		canonical = mapped
	}
	dep, ok := gi.pkg.imports[canonical]
	if !ok {
		dep, ok = gi.pkg.imports[path]
	}
	if !ok || dep.Types == nil {
		return nil, fmt.Errorf("load: import %q not in dependency graph of %s", path, gi.pkg.ImportPath)
	}
	return dep.Types, nil
}
