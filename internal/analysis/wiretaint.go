package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WireTaint tracks untrusted wire-decoded integers — varint and
// fixed-width reads, binary.Read / JSON decode targets, and values
// returned by helpers that decode them — into allocation sizes, the bug
// class behind the pre-fix ReadRecording segment bomb (PR 6) and the
// store header bomb (PR 9): a corrupt or hostile length prefix a few
// bytes long demanding a multi-GiB make.
//
// The rule it encodes: every wire-decoded length must pass a budget
// comparison before it sizes a make (or reaches a callee that sizes one
// with it). Sanitizers are ordering comparisons (if n > budget, loop
// bounds), min() with a bounded argument, masking (& / %), and narrow
// (≤16-bit) conversions; an allocation is flagged only when the tainted
// value reaches it with none of those on any earlier line of the
// function — a deliberate lexical approximation of "checked on every
// path" that matches both pre-fix bug shapes and stays quiet on the
// budget-checked readers.
//
// Taint crosses function boundaries through facts: a function whose
// parameter flows unchecked into an allocation size exports an
// alloc-size-param fact, and callers passing tainted values into such a
// parameter are flagged at the call site; a function returning a
// wire-decoded value (like the varint helpers) exports a tainted-result
// fact, so its callers treat the result as wire input. Facts propagate
// across packages within one run.
var WireTaint = &Analyzer{
	Name:      "wiretaint",
	Directive: DirectiveConcOk,
	Doc: "flags allocations sized by unchecked wire-decoded lengths\n\n" +
		"Every decoded length must be compared against a budget before " +
		"it sizes a make; a lying length prefix must fail, not allocate.",
	Skip: skipUnder(
		"st2gpu/internal/analysis",
		"st2gpu/examples",
	),
	Run: runWireTaint,
}

// wtAllocParamsFact marks parameters that flow unchecked into an
// allocation size inside the function.
type wtAllocParamsFact struct {
	params []int // parameter indices
}

// wtTaintedResultFact marks functions whose results carry wire-decoded
// values (varint helpers and the like).
type wtTaintedResultFact struct{}

func runWireTaint(pass *Pass) error {
	wt := &wireTaint{pass: pass}
	var decls []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Fact rounds before the reporting round: same-package helpers can
	// chain (readUvarint feeding a sizing helper), so facts are computed
	// twice to let one level of local chaining settle; cross-package
	// facts from dependencies are already present.
	for round := 0; round < 2; round++ {
		for _, fd := range decls {
			wt.computeFacts(fd)
		}
	}
	for _, fd := range decls {
		fn := wt.newFn(fd, false, false)
		fn.walk(fd.Body)
	}
	return nil
}

type wireTaint struct {
	pass *Pass
}

// wtFn analyzes one function body in source order.
type wtFn struct {
	wt   *wireTaint
	decl *ast.FuncDecl
	// factMode: findings are recorded as facts instead of diagnostics.
	factMode bool
	// taintParams: parameters are pre-tainted to discover alloc-size
	// params. Off in the result-fact walk, where only genuine wire
	// sources may taint a result — a pure arithmetic helper returning a
	// param-derived value is not wire input.
	taintParams bool

	// tainted holds locals carrying unchecked wire-decoded values.
	tainted map[types.Object]bool
	// checked holds objects that passed a bound comparison.
	checked map[types.Object]bool
	// decodeTargets holds objects whose address was handed to a decode
	// call (binary.Read, json.Unmarshal, Decoder.Decode): their fields
	// are wire input too.
	decodeTargets map[types.Object]bool
	// checkedSel holds "obj.Field" selector paths that passed a bound
	// comparison.
	checkedSel map[string]bool

	// factMode outputs.
	paramIdx    map[types.Object]int
	allocParams map[int]bool
	resTainted  bool
}

func (wt *wireTaint) newFn(fd *ast.FuncDecl, factMode, taintParams bool) *wtFn {
	fn := &wtFn{
		wt:            wt,
		decl:          fd,
		factMode:      factMode,
		taintParams:   taintParams,
		tainted:       make(map[types.Object]bool),
		checked:       make(map[types.Object]bool),
		decodeTargets: make(map[types.Object]bool),
		checkedSel:    make(map[string]bool),
	}
	if taintParams {
		fn.paramIdx = make(map[types.Object]int)
		fn.allocParams = make(map[int]bool)
		for i, p := range paramObjs(wt.pass.TypesInfo, fd.Type) {
			if p != nil && isInteger(p.Type()) {
				fn.paramIdx[p] = i
				fn.tainted[p] = true
			}
		}
	}
	return fn
}

// computeFacts runs fd in fact mode twice — once with parameters
// tainted (alloc-size-param discovery) and once with only genuine wire
// sources (tainted-result discovery) — and exports the resulting facts.
// The split matters: a pure arithmetic helper whose result derives from
// its parameters must not be mistaken for a wire decoder.
func (wt *wireTaint) computeFacts(fd *ast.FuncDecl) {
	obj := wt.pass.TypesInfo.ObjectOf(fd.Name)
	if obj == nil {
		return
	}
	fn := wt.newFn(fd, true, true)
	fn.walk(fd.Body)
	if len(fn.allocParams) > 0 {
		var idxs []int
		for i := range fn.allocParams {
			idxs = append(idxs, i)
		}
		wt.pass.ExportFact(obj, &wtAllocParamsFact{params: idxs})
	}
	res := wt.newFn(fd, true, false)
	res.walk(fd.Body)
	if res.resTainted {
		wt.pass.ExportFact(obj, &wtTaintedResultFact{})
	}
}

// walk visits the body in source order, updating taint state and
// reporting (or fact-recording) sink hits.
func (fn *wtFn) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures get their own facts only via decls; skip
		case *ast.BinaryExpr:
			fn.noteComparison(n)
		case *ast.AssignStmt:
			fn.assign(n)
		case *ast.CallExpr:
			fn.call(n)
		case *ast.ReturnStmt:
			if fn.factMode && !fn.taintParams {
				for _, r := range n.Results {
					if fn.taintedExpr(r) {
						fn.resTainted = true
					}
				}
			}
		}
		return true
	})
}

// noteComparison marks both operands of an ordering comparison checked:
// the budget-check idiom (`if segLen > maxBytes-total`, `for i < count`)
// always compares the decoded value against a bound.
func (fn *wtFn) noteComparison(b *ast.BinaryExpr) {
	switch b.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return
	}
	for _, side := range []ast.Expr{b.X, b.Y} {
		side = ast.Unparen(side)
		// A widening conversion in the comparison (`uint64(n) > budget`)
		// still checks the underlying value.
		if call, ok := side.(*ast.CallExpr); ok && len(call.Args) == 1 {
			if tv, ok := fn.wt.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
				side = ast.Unparen(call.Args[0])
			}
		}
		if id, ok := side.(*ast.Ident); ok {
			if obj := fn.wt.pass.TypesInfo.ObjectOf(id); obj != nil {
				fn.checked[obj] = true
			}
			continue
		}
		if key, ok := fn.selKey(side); ok {
			fn.checkedSel[key] = true
		}
	}
}

// selKey renders obj.Field (with the root a decode target or any local)
// as a stable string key, reporting whether e is such a selector.
func (fn *wtFn) selKey(e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	root := rootIdent(sel.X)
	if root == nil {
		return "", false
	}
	obj := fn.wt.pass.TypesInfo.ObjectOf(root)
	if obj == nil {
		return "", false
	}
	return obj.Name() + "\x00" + sel.Sel.Name, true
}

// assign re-classifies assignment targets: a tainted right side taints
// the target (clearing any earlier check — it is a new untrusted
// value); an untainted right side clears it.
func (fn *wtFn) assign(a *ast.AssignStmt) {
	info := fn.wt.pass.TypesInfo
	if len(a.Lhs) == len(a.Rhs) {
		for i, l := range a.Lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.ObjectOf(id)
			if obj == nil {
				continue
			}
			if fn.taintedExpr(a.Rhs[i]) {
				fn.tainted[obj] = true
				delete(fn.checked, obj)
			} else if a.Tok == token.DEFINE || a.Tok == token.ASSIGN {
				delete(fn.tainted, obj)
			}
		}
		return
	}
	// Multi-value form: x, err := f(...). Taint every non-error target
	// when the call is a wire source.
	if len(a.Rhs) == 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok && fn.wireSourceCall(call) {
			for _, l := range a.Lhs {
				id, ok := ast.Unparen(l).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.ObjectOf(id)
				if obj == nil || !isInteger(obj.Type()) {
					continue
				}
				fn.tainted[obj] = true
				delete(fn.checked, obj)
			}
		}
	}
}

// call handles decode-target registration and the two sinks: make sizes
// and alloc-size parameters of known callees.
func (fn *wtFn) call(call *ast.CallExpr) {
	info := fn.wt.pass.TypesInfo

	// Register decode targets: binary.Read(r, order, &x),
	// json.Unmarshal(b, &x), (*json.Decoder).Decode(&x).
	if target := decodeTargetArg(info, call); target != nil {
		if id, ok := ast.Unparen(target).(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				fn.decodeTargets[obj] = true
			}
		}
	}

	// Sink 1: make([]T, n[, c]) / make(map, n) / make(chan, n).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" {
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
			for _, sz := range call.Args[1:] {
				if fn.taintedExpr(sz) {
					fn.sink(sz, "make")
				}
			}
			return
		}
	}

	// Sink 2: passing a tainted value into a callee parameter that sizes
	// an allocation unchecked (alloc-size-param fact).
	callee := calleeObject(info, call.Fun)
	if callee == nil {
		return
	}
	fact, ok := fn.wt.pass.ImportFact(callee)
	if !ok {
		return
	}
	ap, ok := fact.(*wtAllocParamsFact)
	if !ok {
		return
	}
	for _, i := range ap.params {
		if i < len(call.Args) && fn.taintedExpr(call.Args[i]) {
			fn.sinkCall(call.Args[i], callee)
		}
	}
}

// sink records a tainted allocation size: a finding in reporting mode,
// an alloc-param fact in fact mode.
func (fn *wtFn) sink(sz ast.Expr, kind string) {
	if fn.factMode {
		fn.recordParamSink(sz)
		return
	}
	fn.wt.pass.ReportRangef(sz.Pos(), sz.End(),
		"allocation sized by wire-decoded value %s with no bound check before it: a corrupt or hostile length prefix can demand GiBs; compare it against a byte budget (the RecordMaxBytes idiom) before the %s (DESIGN.md §16)",
		types.ExprString(sz), kind)
}

func (fn *wtFn) sinkCall(arg ast.Expr, callee types.Object) {
	if fn.factMode {
		fn.recordParamSink(arg)
		return
	}
	fn.wt.pass.ReportRangef(arg.Pos(), arg.End(),
		"wire-decoded value %s reaches an allocation size inside %s with no bound check on this path; check it against a byte budget before the call (DESIGN.md §16)",
		types.ExprString(arg), callee.Name())
}

// recordParamSink marks the parameters feeding a tainted sink
// expression in fact mode.
func (fn *wtFn) recordParamSink(e ast.Expr) {
	if fn.paramIdx == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := fn.wt.pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return true
		}
		if i, isParam := fn.paramIdx[obj]; isParam && fn.tainted[obj] && !fn.checked[obj] {
			fn.allocParams[i] = true
		}
		return true
	})
}

// taintedExpr reports whether e carries an unchecked wire-decoded value.
func (fn *wtFn) taintedExpr(e ast.Expr) bool {
	info := fn.wt.pass.TypesInfo
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return false
		}
		if fn.decodeTargets[obj] && !fn.checked[obj] {
			return true
		}
		return fn.tainted[obj] && !fn.checked[obj]
	case *ast.SelectorExpr:
		// A field of a decode target is wire input until that field is
		// checked.
		if root := rootIdent(e.X); root != nil {
			obj := info.ObjectOf(root)
			if obj != nil && fn.decodeTargets[obj] {
				if key, ok := fn.selKey(e); ok && fn.checkedSel[key] {
					return false
				}
				return true
			}
		}
		return false
	case *ast.IndexExpr:
		return fn.taintedExpr(e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.REM, token.AND:
			return false // masked/modulo: bounded by the right operand
		case token.ADD, token.SUB, token.MUL, token.QUO, token.SHL, token.SHR, token.OR, token.XOR:
			return fn.taintedExpr(e.X) || fn.taintedExpr(e.Y)
		}
		return false
	case *ast.UnaryExpr:
		return fn.taintedExpr(e.X)
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			// Conversion: narrow integer targets bound the value.
			if isNarrowInt(tv.Type) {
				return false
			}
			for _, a := range e.Args {
				if fn.taintedExpr(a) {
					return true
				}
			}
			return false
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
				switch id.Name {
				case "min":
					// min is tainted only if every argument is: one bounded
					// operand bounds the result.
					for _, a := range e.Args {
						if !fn.taintedExpr(a) {
							return false
						}
					}
					return len(e.Args) > 0
				case "len", "cap", "max":
					return false
				}
				return false
			}
		}
		return fn.wireSourceCall(e)
	}
	return false
}

// wireSourceCall reports whether call reads a wire-level integer:
// binary.ReadUvarint / ReadVarint, binary.<Order>.Uint32/Uint64, or a
// function carrying a tainted-result fact.
func (fn *wtFn) wireSourceCall(call *ast.CallExpr) bool {
	info := fn.wt.pass.TypesInfo
	if pkgFunc(info, call.Fun, "encoding/binary", "ReadUvarint") ||
		pkgFunc(info, call.Fun, "encoding/binary", "ReadVarint") {
		return true
	}
	// binary.LittleEndian.Uint32(b) and friends: a *types.Func from
	// encoding/binary named Uint32/Uint64 (Uint16 is bounded at 64 KiB
	// and sizes nothing dangerous).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj, ok := info.ObjectOf(sel.Sel).(*types.Func); ok && obj.Pkg() != nil &&
			obj.Pkg().Path() == "encoding/binary" &&
			(sel.Sel.Name == "Uint32" || sel.Sel.Name == "Uint64") {
			return true
		}
	}
	if callee := calleeObject(info, call.Fun); callee != nil {
		if fact, ok := fn.wt.pass.ImportFact(callee); ok {
			if _, ok := fact.(*wtTaintedResultFact); ok {
				return true
			}
		}
	}
	return false
}

// decodeTargetArg returns the &x argument of a decode call, or nil:
// binary.Read(r, order, &x) — arg 2; json.Unmarshal(b, &x) — arg 1;
// dec.Decode(&x) on *encoding/json.Decoder — arg 0.
func decodeTargetArg(info *types.Info, call *ast.CallExpr) ast.Expr {
	deref := func(e ast.Expr) ast.Expr {
		if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
			return u.X
		}
		return e
	}
	if pkgFunc(info, call.Fun, "encoding/binary", "Read") && len(call.Args) == 3 {
		return deref(call.Args[2])
	}
	if pkgFunc(info, call.Fun, "encoding/json", "Unmarshal") && len(call.Args) == 2 {
		return deref(call.Args[1])
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Decode" && len(call.Args) == 1 {
		if obj, ok := info.ObjectOf(sel.Sel).(*types.Func); ok && obj.Pkg() != nil &&
			obj.Pkg().Path() == "encoding/json" {
			return deref(call.Args[0])
		}
	}
	return nil
}

// isNarrowInt reports whether t is an integer type of 16 bits or fewer:
// converting through one bounds the value below any realistic budget.
func isNarrowInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int8, types.Int16, types.Uint8, types.Uint16:
		return true
	}
	return false
}
