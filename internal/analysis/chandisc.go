package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanDisc enforces the shard coordinator's channel discipline (PR 7,
// DESIGN.md §12): a coordinator that feeds worker goroutines over
// channels must never be able to block forever on a send. A send that
// can block with no escape deadlocks the whole dispatch loop the moment
// one worker dies without draining.
//
// The check applies to sends inside goroutine bodies and inside
// functions that spawn goroutines (the dispatcher shape). Each such
// send must satisfy one of:
//
//   - the channel's make site is visible and buffered with a capacity
//     DERIVED from the workload (`perConn+2`, `len(conns)*n`,
//     `storeWorkers(w)`) — the buffer provably covers the in-flight
//     message count;
//   - the make site is buffered with a bare literal capacity AND the
//     make line carries a comment justifying the number — magic buffer
//     sizes hide exactly the races this analyzer exists for;
//   - the send is a select case alongside a quit/default escape, so a
//     stalled receiver cannot wedge the sender.
//
// Unbuffered channels, or channels whose make site is not visible in
// the function (parameters, struct fields), require the select guard.
var ChanDisc = &Analyzer{
	Name:      "chandisc",
	Directive: DirectiveConcOk,
	Doc: "requires dispatcher channel sends to be unblockable\n\n" +
		"Buffered with derived capacity, literal capacity with a " +
		"justifying comment, or select-guarded with an escape case.",
	Skip: skipUnder(
		"st2gpu/internal/analysis",
		"st2gpu/examples",
	),
	Run: runChanDisc,
}

func runChanDisc(pass *Pass) error {
	cd := &chanDisc{pass: pass}
	for _, file := range pass.Files {
		cd.file = file
		cd.makeSites = collectMakeSites(pass.TypesInfo, file)
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cd.checkFunc(fd)
		}
	}
	return nil
}

type chanDisc struct {
	pass      *Pass
	file      *ast.File
	makeSites map[types.Object]*makeSite
}

// makeSite records one `ch := make(chan T[, cap])` binding.
type makeSite struct {
	pos token.Pos
	cap ast.Expr // nil for unbuffered
}

// collectMakeSites maps channel variables to their make expressions.
// Only direct bindings are tracked (`ch := make(...)`, `ch = make(...)`,
// `chs[i] = make(...)` keyed on the slice variable); channels arriving
// through parameters or fields have no visible site.
func collectMakeSites(info *types.Info, file *ast.File) map[types.Object]*makeSite {
	sites := make(map[types.Object]*makeSite)
	ast.Inspect(file, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, r := range asg.Rhs {
			if i >= len(asg.Lhs) {
				break
			}
			call, ok := ast.Unparen(r).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" || len(call.Args) == 0 {
				continue
			}
			if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); !isBuiltin {
				continue
			}
			tv, ok := info.Types[call.Args[0]]
			if !ok {
				continue
			}
			if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
				continue
			}
			root := rootIdent(asg.Lhs[i])
			if root == nil {
				continue
			}
			obj := info.ObjectOf(root)
			if obj == nil {
				continue
			}
			ms := &makeSite{pos: call.Pos()}
			if len(call.Args) > 1 {
				ms.cap = call.Args[1]
			}
			// Last site wins; channels rebound per iteration (sendChs[c] =
			// make(...)) all share one capacity shape anyway.
			sites[obj] = ms
		}
		return true
	})
	return sites
}

// checkFunc checks fd's sends if fd is a dispatcher (spawns goroutines)
// and always checks sends inside fd's goroutine bodies.
func (cd *chanDisc) checkFunc(fd *ast.FuncDecl) {
	spawns := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			spawns = true
			return false
		}
		return true
	})
	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		inGoroutine := underGoStmt(stack)
		if !spawns && !inGoroutine {
			return true // plain sequential send; receiver runs in this frame's caller
		}
		cd.checkSend(send, stack)
		return true
	})
}

// underGoStmt reports whether the innermost enclosing function literal
// in the stack is the operand of a go statement. The stack runs
// GoStmt → CallExpr → FuncLit, so the grandparent is checked.
func underGoStmt(stack []ast.Node) bool {
	for i := len(stack) - 1; i > 1; i-- {
		if _, ok := stack[i].(*ast.FuncLit); ok {
			_, isGo := stack[i-2].(*ast.GoStmt)
			return isGo
		}
	}
	return false
}

// checkSend validates one dispatcher send against the three accepted
// shapes.
func (cd *chanDisc) checkSend(send *ast.SendStmt, stack []ast.Node) {
	if selectGuarded(send, stack) {
		return
	}
	root := rootIdent(send.Chan)
	var site *makeSite
	if root != nil {
		if obj := cd.pass.TypesInfo.ObjectOf(root); obj != nil {
			site = cd.makeSites[obj]
		}
	}
	name := "channel"
	if root != nil {
		name = root.Name
	}
	switch {
	case site == nil:
		cd.pass.ReportRangef(send.Pos(), send.End(),
			"dispatcher send on %s whose make site is not visible here: if the receiver stalls, this send blocks the dispatch loop forever; guard it with select and a quit/default case, or make the channel here with derived capacity (DESIGN.md §16)",
			name)
	case site.cap == nil:
		cd.pass.ReportRangef(send.Pos(), send.End(),
			"dispatcher send on unbuffered %s: one stalled receiver wedges the whole dispatch loop; buffer it with capacity derived from the in-flight count, or guard the send with select and a quit case (DESIGN.md §16)",
			name)
	case bareLiteralCap(site.cap) && !cd.hasLineComment(site.pos):
		cd.pass.ReportRangef(send.Pos(), send.End(),
			"dispatcher send on %s buffered with a bare literal capacity: justify the number with a comment on the make line (why does this buffer provably cover the in-flight count?), or derive it from the workload (DESIGN.md §16)",
			name)
	}
}

// selectGuarded reports whether send is the comm of a select case that
// has an escape: another case that is a receive (quit/ctx.Done) or a
// default clause. The send being inside a case BODY does not count —
// only being the case's communication makes it non-blocking.
func selectGuarded(send *ast.SendStmt, stack []ast.Node) bool {
	for i := len(stack) - 1; i > 0; i-- {
		clause, ok := stack[i].(*ast.CommClause)
		if !ok {
			continue
		}
		if clause.Comm != send {
			return false // send is in a case body, not the comm
		}
		// The clause's parent chain is SelectStmt → BlockStmt → CommClause.
		if i < 2 {
			return false
		}
		sel, ok := stack[i-2].(*ast.SelectStmt)
		if !ok {
			return false
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc == clause {
				continue
			}
			if cc.Comm == nil {
				return true // default: send never blocks
			}
			if isReceiveComm(cc.Comm) {
				return true // quit/ctx.Done escape
			}
		}
		return false
	}
	return false
}

// isReceiveComm reports whether a select comm statement is a channel
// receive (`<-quit`, `v := <-ch`, `case <-ctx.Done():`).
func isReceiveComm(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		u, ok := ast.Unparen(s.X).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return false
		}
		u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	}
	return false
}

// bareLiteralCap reports whether the make capacity is a bare numeric
// literal (possibly parenthesized) — a magic number with no derivation.
func bareLiteralCap(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok
}

// hasLineComment reports whether any comment in the file sits on the
// same line as pos — the justification slot for literal capacities.
func (cd *chanDisc) hasLineComment(pos token.Pos) bool {
	line := cd.pass.Fset.Position(pos).Line
	for _, cg := range cd.file.Comments {
		for _, c := range cg.List {
			if cd.pass.Fset.Position(c.Pos()).Line == line {
				return true
			}
		}
	}
	return false
}
