package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FoldOrder guards the floating-point half of the bit-identical
// guarantee: float addition is not associative, so any float
// accumulation whose iteration order can vary re-rounds differently and
// breaks TestSweepBitIdenticalAcrossWorkers-style identities. The
// simulator's rule is that cross-shard float folds happen in exactly one
// place: a blessed fold helper (a function named fold*/Fold*) that walks
// shards in SM-ID or suite order after the workers have joined.
//
// Three shapes are flagged:
//
//  1. float accumulation inside a range-over-map body (iteration order
//     is random);
//  2. float accumulation into a variable captured by a worker goroutine
//     (accumulation order follows the schedule);
//  3. float accumulation while ranging over a shard collection (element
//     type named *Shard*/smState) outside a fold* helper — folds belong
//     in the blessed helpers where the ordering contract is visible.
var FoldOrder = &Analyzer{
	Name:      "foldorder",
	Directive: DirectiveDetOk,
	Doc: "restricts cross-shard floating-point folds to blessed fold helpers\n\n" +
		"Float addition re-rounds under reordering; folds must run in " +
		"SM-ID/suite order inside fold*-named helpers.",
	Skip: skipUnder(
		"st2gpu/internal/analysis",
		"st2gpu/examples",
	),
	Run: runFoldOrder,
}

func runFoldOrder(pass *Pass) error {
	for _, file := range pass.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			lhs, ok := floatAccumTarget(pass.TypesInfo, n)
			if !ok {
				return true
			}
			if mrs := enclosingMapRange(pass, stack); mrs != nil {
				pass.Reportf(n.Pos(),
					"floating-point accumulation into %s inside a range over map %s: map order is random and float addition re-rounds under reordering; fold in a fixed key order",
					types.ExprString(lhs), types.ExprString(mrs.X))
				return true
			}
			if lit := enclosingGoLit(stack); lit != nil && capturedBy(pass, lhs, lit) {
				pass.Reportf(n.Pos(),
					"floating-point accumulation into %s captured by a worker goroutine: accumulation order follows the schedule; accumulate per worker and fold in SM-ID order",
					types.ExprString(lhs))
				return true
			}
			if srs := enclosingShardRange(pass, stack); srs != nil && !inFoldHelper(stack) {
				pass.Reportf(n.Pos(),
					"floating-point fold over shard collection %s outside a blessed fold helper: move the accumulation into a fold*-named helper that walks shards in SM-ID order",
					types.ExprString(srs.X))
			}
			return true
		})
	}
	return nil
}

// floatAccumTarget reports whether n is a float accumulation statement
// (x += e, x -= e, or x = x ± e) and returns the accumulation target.
func floatAccumTarget(info *types.Info, n ast.Node) (ast.Expr, bool) {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	lhs := ast.Unparen(as.Lhs[0])
	if !isFloat(info.Types[lhs].Type) {
		return nil, false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return lhs, true
	case token.ASSIGN:
		be, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok || (be.Op != token.ADD && be.Op != token.SUB) {
			return nil, false
		}
		if sameObjectExpr(info, lhs, be.X) || sameObjectExpr(info, lhs, be.Y) {
			return lhs, true
		}
	}
	return nil, false
}

func enclosingMapRange(pass *Pass, stack []ast.Node) *ast.RangeStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return nil // scope boundary: a closure runs when called, not per iteration
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[s.X]; ok && isMap(tv.Type) {
				return s
			}
		}
	}
	return nil
}

// enclosingGoLit returns the innermost function literal launched by a
// `go` statement (or passed to a call inside one) that encloses the
// stack tip, stopping at function-declaration boundaries.
func enclosingGoLit(stack []ast.Node) *ast.FuncLit {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.FuncDecl:
			return nil
		case *ast.FuncLit:
			if i > 0 {
				if gs, ok := stack[i-1].(*ast.GoStmt); ok && gs.Call.Fun == s {
					return s
				}
				if call, ok := stack[i-1].(*ast.CallExpr); ok && i > 1 {
					if gs, ok := stack[i-2].(*ast.GoStmt); ok && gs.Call == call {
						return s
					}
				}
			}
		}
	}
	return nil
}

func capturedBy(pass *Pass, e ast.Expr, lit *ast.FuncLit) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(root)
	if obj == nil {
		return false
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return false
	}
	return !declaredWithin(obj, lit)
}

// enclosingShardRange finds a range over a collection whose element type
// names it a shard (metrics.Shard, recShard, smState, …).
func enclosingShardRange(pass *Pass, stack []ast.Node) *ast.RangeStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return nil
		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[s.X]
			if !ok || tv.Type == nil {
				continue
			}
			var elem types.Type
			switch u := tv.Type.Underlying().(type) {
			case *types.Slice:
				elem = u.Elem()
			case *types.Array:
				elem = u.Elem()
			case *types.Map:
				elem = u.Elem()
			default:
				continue
			}
			if isShardType(elem) {
				return s
			}
		}
	}
	return nil
}

func isShardType(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	lower := strings.ToLower(name)
	return strings.Contains(lower, "shard") || name == "smState"
}

// inFoldHelper reports whether the innermost enclosing function is a
// blessed fold helper: its name begins with "fold" or "Fold".
func inFoldHelper(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			name := fd.Name.Name
			return strings.HasPrefix(name, "fold") || strings.HasPrefix(name, "Fold")
		}
	}
	return false
}
