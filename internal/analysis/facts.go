package analysis

import (
	"go/types"
)

// Facts is the cross-package fact store for one checker run, mirroring
// the role of golang.org/x/tools/go/analysis object facts in the
// stdlib-only framework. Packages are checked in dependency order (`go
// list -deps` emits dependencies first), so by the time an importer's
// pass runs, every fact its dependencies exported is already present.
// Object identity works across packages because one run shares a single
// type-checked graph: the *types.Func an importer resolves for dep.F is
// the same object dep's own pass saw.
//
// Facts are keyed by (analyzer, object): analyzers never observe each
// other's facts.
type Facts struct {
	m map[factKey]any
}

type factKey struct {
	analyzer string
	obj      types.Object
}

// NewFacts returns an empty fact store for one checker run.
func NewFacts() *Facts {
	return &Facts{m: make(map[factKey]any)}
}

// ExportFact records a fact about obj for this pass's analyzer,
// replacing any previous fact on the same object.
func (p *Pass) ExportFact(obj types.Object, fact any) {
	if obj == nil || p.facts == nil {
		return
	}
	p.facts.m[factKey{p.Analyzer.Name, obj}] = fact
}

// ImportFact returns the fact this pass's analyzer exported about obj in
// this run (from this package or any already-checked dependency).
func (p *Pass) ImportFact(obj types.Object) (any, bool) {
	if obj == nil || p.facts == nil {
		return nil, false
	}
	fact, ok := p.facts.m[factKey{p.Analyzer.Name, obj}]
	return fact, ok
}
