package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetMapRange flags `range` statements over maps in result-producing
// packages. Go randomizes map iteration order per run, so any map-order
// loop whose body effects are order-sensitive leaks schedule-dependent
// bits into RunStats, recordings, manifests, or sweep rows — exactly
// the nondeterminism the parallel simulator's fold-in-SM-ID-order rule
// exists to prevent.
//
// Two idioms are recognized as deterministic and allowed:
//
//  1. Key collection: the body only appends the loop key (or value) to
//     a slice that is sorted later in the same function —
//     `for k := range m { keys = append(keys, k) } ... sort.X(keys)`.
//  2. Commutative integer folding: every statement in the body is an
//     order-insensitive integer accumulation — `sum += v`, `n++`,
//     bitwise or/and/xor folds, keyed transfers like `dst[k] += v`
//     (each iteration touches its own cell), integer max/min tracking,
//     `delete(m, k)`, or an if/range wrapper around only such
//     statements. Floating-point accumulation is never allowed: float
//     addition rounds differently under reordering.
//
// Anything else needs either a sorted key slice or a
// `//st2:det-ok <reason>` suppression.
var DetMapRange = &Analyzer{
	Name:      "detmaprange",
	Directive: DirectiveDetOk,
	Doc: "flags map-order iteration in result-producing paths\n\n" +
		"Map iteration order is randomized; loops whose bodies are not " +
		"provably order-insensitive must iterate a sorted key slice.",
	Skip: skipUnder(
		"st2gpu/internal/analysis",
		"st2gpu/examples",
	),
	Run: runDetMapRange,
}

func runDetMapRange(pass *Pass) error {
	for _, file := range pass.Files {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || !isMap(tv.Type) {
				return true
			}
			if allowedKeyCollection(pass, rs, stack) || allowedCommutativeBody(pass, rs) {
				return true
			}
			pass.Reportf(rs.For,
				"range over map %s has order-sensitive effects; iterate a sorted key slice, restrict the body to commutative integer folds, or suppress with %s <reason>",
				types.ExprString(rs.X), DetOkPrefix)
			return true
		})
	}
	return nil
}

// allowedKeyCollection accepts `for k := range m { s = append(s, k) }`
// when s is sorted by a sort./slices. call later in the same function.
func allowedKeyCollection(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fid.Name != "append" {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || pass.TypesInfo.ObjectOf(first) != pass.TypesInfo.ObjectOf(dst) {
		return false
	}
	// The collected elements must not call anything: pure key/value reads.
	for _, a := range call.Args[1:] {
		if containsCall(pass.TypesInfo, a) {
			return false
		}
	}
	_, body := enclosingFunc(stack)
	return body != nil && sortedAfter(pass, body, pass.TypesInfo.ObjectOf(dst), rs.End())
}

// sortedAfter reports whether obj is passed to a recognized sorting
// call somewhere after pos in body.
func sortedAfter(pass *Pass, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found || len(call.Args) == 0 {
			return !found
		}
		pkg, name := selectorPkgName(pass.TypesInfo, call.Fun)
		sorter := false
		switch pkg {
		case "sort":
			sorter = true // Strings, Ints, Slice, SliceStable, Sort, ...
		case "slices":
			switch name {
			case "Sort", "SortFunc", "SortStableFunc":
				sorter = true
			}
		}
		if !sorter {
			return true
		}
		if root := rootIdent(call.Args[0]); root != nil && pass.TypesInfo.ObjectOf(root) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// allowedCommutativeBody accepts bodies made solely of order-insensitive
// integer statements.
func allowedCommutativeBody(pass *Pass, rs *ast.RangeStmt) bool {
	keyObj := rangeVarObj(pass, rs.Key)
	for _, s := range rs.Body.List {
		if !commutativeStmt(pass, s, keyObj) {
			return false
		}
	}
	return len(rs.Body.List) > 0
}

func rangeVarObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return pass.TypesInfo.ObjectOf(id)
}

// commutativeStmt reports whether s is order-insensitive: integer
// accumulation into a plain variable or a cell keyed by the loop key,
// integer max/min tracking, delete, continue, or an if/range wrapper
// around only such statements.
func commutativeStmt(pass *Pass, s ast.Stmt, keyObj types.Object) bool {
	info := pass.TypesInfo
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		switch s.Tok {
		case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			return intAccumTarget(info, lhs, keyObj) &&
				isInteger(info.Types[rhs].Type) && !containsCall(info, rhs)
		case token.ASSIGN:
			// x = max(x, e) / x = min(x, e) over integers.
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return false
			}
			fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || (fid.Name != "max" && fid.Name != "min") {
				return false
			}
			if _, isBuiltin := info.ObjectOf(fid).(*types.Builtin); !isBuiltin {
				return false
			}
			return intAccumTarget(info, lhs, keyObj) &&
				(sameObjectExpr(info, lhs, call.Args[0]) || sameObjectExpr(info, lhs, call.Args[1])) &&
				!containsCall(info, call.Args[0]) && !containsCall(info, call.Args[1])
		}
		return false
	case *ast.IncDecStmt:
		return intAccumTarget(info, s.X, keyObj)
	case *ast.ExprStmt:
		// delete(m, k): spec-sanctioned during iteration, order-free.
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		fid, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fid.Name != "delete" {
			return false
		}
		_, isBuiltin := info.ObjectOf(fid).(*types.Builtin)
		return isBuiltin
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.IfStmt:
		// Guards like `if v != 0 { sum += v }` and max-tracking `if v >
		// best { best = v }`: the condition must be call-free and the
		// branches order-insensitive themselves.
		if s.Init != nil || containsCall(info, s.Cond) {
			return false
		}
		for _, bs := range s.Body.List {
			if !commutativeStmt(pass, bs, keyObj) {
				return false
			}
		}
		if s.Else != nil {
			eb, ok := s.Else.(*ast.BlockStmt)
			if !ok {
				return false
			}
			for _, bs := range eb.List {
				if !commutativeStmt(pass, bs, keyObj) {
					return false
				}
			}
		}
		return true
	case *ast.RangeStmt:
		// A nested range over a slice/array (e.g. histogram buckets) is
		// positionally ordered; only its body must stay commutative.
		tv, ok := info.Types[s.X]
		if !ok || isMap(tv.Type) {
			return false
		}
		for _, bs := range s.Body.List {
			if !commutativeStmt(pass, bs, keyObj) {
				return false
			}
		}
		return true
	}
	return false
}

// intAccumTarget reports whether lhs is a legitimate commutative
// accumulation cell: an integer variable, or an integer map/slice cell
// indexed by the loop key (each iteration then owns a distinct cell).
func intAccumTarget(info *types.Info, lhs ast.Expr, keyObj types.Object) bool {
	lhs = ast.Unparen(lhs)
	if !isInteger(info.Types[lhs].Type) {
		return false
	}
	switch lv := lhs.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		idx, ok := ast.Unparen(lv.Index).(*ast.Ident)
		if !ok || keyObj == nil {
			return false
		}
		return info.ObjectOf(idx) == keyObj
	}
	return false
}
