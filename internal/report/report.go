// Package report renders experiment results as aligned text, CSV,
// Markdown, or JSON tables — the output layer of the cmd/ tools, so
// every figure the harness regenerates can be exported for plotting.
package report

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Table is a rectangular result set: a header row plus data rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// New creates a table with the given title and column names.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row; cells are stringified with %v.
func (t *Table) Add(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
	return t
}

// Pct formats a fraction as a percentage cell ("0.0964" → "9.64%").
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// SortBy stably sorts the rows ascending by column col and returns the
// table for chaining. Cells that parse as numbers (a trailing "%" is
// ignored, so Pct cells sort correctly) compare numerically; otherwise
// lexically, with numeric cells ordering before non-numeric ones. An
// out-of-range col leaves the table untouched.
func (t *Table) SortBy(col int) *Table {
	if col < 0 || col >= len(t.Header) {
		return t
	}
	sort.SliceStable(t.Rows, func(i, j int) bool {
		var a, b string
		if col < len(t.Rows[i]) {
			a = t.Rows[i][col]
		}
		if col < len(t.Rows[j]) {
			b = t.Rows[j][col]
		}
		fa, oka := parseCell(a)
		fb, okb := parseCell(b)
		switch {
		case oka && okb:
			return fa < fb
		case oka != okb:
			return oka
		default:
			return a < b
		}
	})
	return t
}

func parseCell(s string) (float64, bool) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "%"), 64)
	return v, err == nil
}

// Validate reports whether every row matches the header width.
func (t *Table) Validate() error {
	for i, r := range t.Rows {
		if len(r) != len(t.Header) {
			return fmt.Errorf("report: row %d has %d cells, header has %d", i, len(r), len(t.Header))
		}
	}
	return nil
}

// Text renders an aligned plain-text table.
func (t *Table) Text() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders RFC-4180-style CSV (quoting cells containing commas,
// quotes, or newlines).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown renders a GitHub-flavoured Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", `\|`) }
	b.WriteString("|")
	for _, h := range t.Header {
		b.WriteString(" " + esc(h) + " |")
	}
	b.WriteString("\n|")
	for range t.Header {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString("|")
		for _, c := range r {
			b.WriteString(" " + esc(c) + " |")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the table as a single JSON object
// {"title":…,"header":[…],"rows":[{col:cell,…},…]} with one object per
// row keyed by header name, trailing newline included — the shape
// plotting scripts ingest directly. Cells stay strings; numeric parsing
// is the consumer's choice.
func (t *Table) JSON() (string, error) {
	rows := make([]map[string]string, len(t.Rows))
	for i, r := range t.Rows {
		obj := make(map[string]string, len(t.Header))
		for j, h := range t.Header {
			obj[h] = r[j]
		}
		rows[i] = obj
	}
	out, err := json.Marshal(struct {
		Title  string              `json:"title"`
		Header []string            `json:"header"`
		Rows   []map[string]string `json:"rows"`
	}{t.Title, t.Header, rows})
	if err != nil {
		return "", fmt.Errorf("report: %w", err)
	}
	return string(out) + "\n", nil
}

// Render dispatches on format: "text", "csv", "markdown"/"md", or
// "json".
func (t *Table) Render(format string) (string, error) {
	if err := t.Validate(); err != nil {
		return "", err
	}
	switch format {
	case "", "text":
		return t.Text(), nil
	case "csv":
		return t.CSV(), nil
	case "markdown", "md":
		return t.Markdown(), nil
	case "json":
		return t.JSON()
	default:
		return "", fmt.Errorf("report: unknown format %q (want text, csv, markdown, or json)", format)
	}
}
