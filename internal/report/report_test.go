package report

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Figure X", "kernel", "rate")
	t.Add("pathfinder", 0.0123)
	t.Add("with,comma", `has"quote`)
	return t
}

func TestText(t *testing.T) {
	out := sample().Text()
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "pathfinder") {
		t.Errorf("text output:\n%s", out)
	}
	// Aligned: the header and rows share column starts.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Index(lines[1], "rate") != strings.Index(lines[2], "0.0123") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestCSVQuoting(t *testing.T) {
	out := sample().CSV()
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Errorf("quote cell not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "kernel,rate\n") {
		t.Errorf("header wrong: %s", out)
	}
}

func TestMarkdown(t *testing.T) {
	tb := New("T", "a|b", "c")
	tb.Add("x|y", 1)
	out := tb.Markdown()
	if !strings.Contains(out, `a\|b`) || !strings.Contains(out, `x\|y`) {
		t.Errorf("pipe not escaped:\n%s", out)
	}
	if !strings.Contains(out, "|---|---|") {
		t.Errorf("separator missing:\n%s", out)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	out, err := sample().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(out, "\n") || strings.Count(out, "\n") != 1 {
		t.Errorf("JSON must be a single newline-terminated line: %q", out)
	}
	var got struct {
		Title  string              `json:"title"`
		Header []string            `json:"header"`
		Rows   []map[string]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if got.Title != "Figure X" || !reflect.DeepEqual(got.Header, []string{"kernel", "rate"}) {
		t.Errorf("title/header wrong: %+v", got)
	}
	want := []map[string]string{
		{"kernel": "pathfinder", "rate": "0.0123"},
		{"kernel": "with,comma", "rate": `has"quote`},
	}
	if !reflect.DeepEqual(got.Rows, want) {
		t.Errorf("rows = %v, want %v", got.Rows, want)
	}
}

func TestSortBy(t *testing.T) {
	tb := New("T", "kernel", "rate")
	tb.Add("b", "10.00%")
	tb.Add("a", "9.64%")
	tb.Add("c", "2.00%")
	col := func(i int) []string {
		out := make([]string, len(tb.Rows))
		for j, r := range tb.Rows {
			out[j] = r[i]
		}
		return out
	}
	tb.SortBy(1)
	if want := []string{"2.00%", "9.64%", "10.00%"}; !reflect.DeepEqual(col(1), want) {
		t.Errorf("numeric sort with %% suffix: got %v, want %v", col(1), want)
	}
	tb.SortBy(0)
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(col(0), want) {
		t.Errorf("lexical sort: got %v, want %v", col(0), want)
	}
	before := col(0)
	tb.SortBy(7)
	if !reflect.DeepEqual(col(0), before) {
		t.Error("out-of-range column must be a no-op")
	}

	// Mixed numeric/text column: numbers order before text, stably.
	mx := New("T", "v")
	mx.Add("n/a")
	mx.Add("3")
	mx.Add("1")
	mx.SortBy(0)
	if want := []string{"1", "3", "n/a"}; !reflect.DeepEqual(mx.Rows[0], want[:1]) ||
		mx.Rows[1][0] != "3" || mx.Rows[2][0] != "n/a" {
		t.Errorf("mixed sort: got %v", mx.Rows)
	}
}

func TestRenderDispatch(t *testing.T) {
	tb := sample()
	for _, f := range []string{"", "text", "csv", "md", "markdown", "json"} {
		if _, err := tb.Render(f); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
	}
	if _, err := tb.Render("xml"); err == nil {
		t.Error("unknown format should error")
	}
}

func TestValidate(t *testing.T) {
	tb := New("T", "a", "b")
	tb.Rows = append(tb.Rows, []string{"only-one"})
	if err := tb.Validate(); err == nil {
		t.Error("ragged table should fail")
	}
	for _, f := range []string{"text", "csv", "markdown", "json"} {
		if _, err := tb.Render(f); err == nil {
			t.Errorf("Render(%q) must validate and reject a ragged table", f)
		}
	}
}

func TestPct(t *testing.T) {
	if Pct(0.0964) != "9.64%" {
		t.Errorf("Pct = %s", Pct(0.0964))
	}
}
