package report

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Figure X", "kernel", "rate")
	t.Add("pathfinder", 0.0123)
	t.Add("with,comma", `has"quote`)
	return t
}

func TestText(t *testing.T) {
	out := sample().Text()
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "pathfinder") {
		t.Errorf("text output:\n%s", out)
	}
	// Aligned: the header and rows share column starts.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Index(lines[1], "rate") != strings.Index(lines[2], "0.0123") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestCSVQuoting(t *testing.T) {
	out := sample().CSV()
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Errorf("quote cell not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "kernel,rate\n") {
		t.Errorf("header wrong: %s", out)
	}
}

func TestMarkdown(t *testing.T) {
	tb := New("T", "a|b", "c")
	tb.Add("x|y", 1)
	out := tb.Markdown()
	if !strings.Contains(out, `a\|b`) || !strings.Contains(out, `x\|y`) {
		t.Errorf("pipe not escaped:\n%s", out)
	}
	if !strings.Contains(out, "|---|---|") {
		t.Errorf("separator missing:\n%s", out)
	}
}

func TestRenderDispatch(t *testing.T) {
	tb := sample()
	for _, f := range []string{"", "text", "csv", "md", "markdown"} {
		if _, err := tb.Render(f); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
	}
	if _, err := tb.Render("xml"); err == nil {
		t.Error("unknown format should error")
	}
}

func TestValidate(t *testing.T) {
	tb := New("T", "a", "b")
	tb.Rows = append(tb.Rows, []string{"only-one"})
	if err := tb.Validate(); err == nil {
		t.Error("ragged table should fail")
	}
	if _, err := tb.Render("csv"); err == nil {
		t.Error("render must validate")
	}
}

func TestPct(t *testing.T) {
	if Pct(0.0964) != "9.64%" {
		t.Errorf("Pct = %s", Pct(0.0964))
	}
}
