package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a clock advancing stepMS milliseconds per read.
func fakeClock(stepMS int64) func() time.Time {
	var mu sync.Mutex
	t := time.UnixMilli(0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Duration(stepMS) * time.Millisecond)
		return t
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	sp := tr.Begin("root", Str("k", "v"))
	if sp != nil {
		t.Fatal("nil tracer returned a live span")
	}
	// Every method must be callable on the nil span.
	sp.Add(Int("n", 1))
	child := sp.Child("child")
	child.End()
	sp.End()
	if got := tr.Spans(); got != nil {
		t.Errorf("nil tracer has spans: %v", got)
	}
	if tr.Len() != 0 || tr.Elapsed() != 0 {
		t.Error("nil tracer not fully inert")
	}
}

func TestSpanHierarchyAndOrder(t *testing.T) {
	tr := NewWithClock(fakeClock(1))
	root := tr.Begin("launch", Str("kernel", "k"))
	setup := root.Child("setup")
	setup.End()
	sim := root.Child("simulate", Int("workers", 2))
	sim.Add(Int("cycles", 100))
	sim.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Stable (start, id) order: root began first.
	if spans[0].Name != "launch" || spans[1].Name != "setup" || spans[2].Name != "simulate" {
		t.Errorf("span order wrong: %v %v %v", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[1].Parent != spans[0].ID || spans[2].Parent != spans[0].ID {
		t.Error("children do not point at the root span")
	}
	if spans[0].Parent != 0 {
		t.Error("root has a parent")
	}
	for _, s := range spans {
		if s.Dur <= 0 {
			t.Errorf("span %s has non-positive duration %v", s.Name, s.Dur)
		}
	}
	want := []Attr{{Key: "workers", Value: int64(2)}, {Key: "cycles", Value: int64(100)}}
	if !reflect.DeepEqual(spans[2].Attrs, want) {
		t.Errorf("simulate attrs = %v, want %v", spans[2].Attrs, want)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New()
	root := tr.Begin("grid")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := root.Child("cell", Int("worker", int64(w)))
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := tr.Len(); got != 8*50+1 {
		t.Errorf("got %d spans, want %d", got, 8*50+1)
	}
	seen := map[SpanID]bool{}
	for _, s := range tr.Spans() {
		if seen[s.ID] {
			t.Fatalf("duplicate span id %d", s.ID)
		}
		seen[s.ID] = true
	}
}

// TestChromeTraceShape pins the produced run.trace.json against the
// Chrome trace-event JSON shape: an object with a traceEvents array of
// complete events ("ph":"X") carrying name/ts/dur/pid/tid, parseable by
// chrome://tracing and Perfetto.
func TestChromeTraceShape(t *testing.T) {
	tr := NewWithClock(fakeClock(1))
	root := tr.Begin("launch")
	cell := root.Child("cell", Int("worker", 3), Int("eval_ops", 1000))
	cell.End()
	root.End()

	path := filepath.Join(t.TempDir(), "run.trace.json")
	if err := tr.WriteChromeTraceFile(path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Decode generically first: the contract is the JSON shape, not our
	// Go struct.
	var generic map[string]any
	if err := json.Unmarshal(buf, &generic); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	evs, ok := generic["traceEvents"].([]any)
	if !ok || len(evs) != 2 {
		t.Fatalf("traceEvents missing or wrong length: %v", generic["traceEvents"])
	}
	for i, e := range evs {
		m, ok := e.(map[string]any)
		if !ok {
			t.Fatalf("event %d is not an object", i)
		}
		for _, key := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := m[key]; !ok {
				t.Errorf("event %d missing %q", i, key)
			}
		}
		if m["ph"] != "X" {
			t.Errorf("event %d ph = %v, want X", i, m["ph"])
		}
		if ts, ok := m["ts"].(float64); !ok || ts < 0 {
			t.Errorf("event %d ts = %v, want >= 0", i, m["ts"])
		}
		if dur, ok := m["dur"].(float64); !ok || dur < 0 {
			t.Errorf("event %d dur = %v, want >= 0", i, m["dur"])
		}
	}

	// The worker attribute becomes the event's thread lane.
	var ct ChromeTrace
	if err := json.Unmarshal(buf, &ct); err != nil {
		t.Fatal(err)
	}
	if ct.TraceEvents[1].TID != 4 { // worker 3 → lane 3+1
		t.Errorf("cell tid = %d, want 4", ct.TraceEvents[1].TID)
	}
	if ct.TraceEvents[1].Args["parent_id"] == nil {
		t.Error("child event lost its parent link")
	}
}

func TestTrendAppendRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")

	// Missing file reads as empty.
	if entries, err := ReadTrend(path); err != nil || entries != nil {
		t.Fatalf("missing file: entries=%v err=%v", entries, err)
	}

	type entry struct {
		Rate float64 `json:"rate"`
	}
	if err := AppendTrend(path, entry{Rate: 1.5}); err != nil {
		t.Fatal(err)
	}
	if err := AppendTrend(path, entry{Rate: 2.5}); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadTrend(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	var last entry
	if err := json.Unmarshal(entries[1], &last); err != nil {
		t.Fatal(err)
	}
	if last.Rate != 2.5 {
		t.Errorf("newest entry rate = %v, want 2.5", last.Rate)
	}

	// A legacy single-object file wraps into an array on append.
	legacy := filepath.Join(t.TempDir(), "legacy.json")
	if err := os.WriteFile(legacy, []byte(`{"rate": 9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendTrend(legacy, entry{Rate: 10}); err != nil {
		t.Fatal(err)
	}
	entries, err = ReadTrend(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("legacy wrap: got %d entries, want 2", len(entries))
	}
	buf, _ := os.ReadFile(legacy)
	if !bytes.HasPrefix(bytes.TrimSpace(buf), []byte("[")) {
		t.Error("legacy file was not rewritten as an array")
	}
}
