// Package obs is the simulator stack's span tracer: a deterministic-safe
// hierarchical begin/end tracer for the sim → decode → sweep pipeline.
//
// Spans carry wall-clock durations and free-form attributes (eval-ops,
// bytes decoded, worker id, queue-wait) into observability sinks ONLY —
// the Chrome trace-event JSON writer (chrome.go), the runlog v2 span
// events (internal/metrics/runlog), and ad-hoc inspection. Nothing a
// span records ever feeds back into RunStats, sweep rates, or any other
// simulated result: the tracer mirrors gpusim.PhaseTimings, which keeps
// wall-clock out of the bit-identity invariant by construction. st2lint's
// detclock analyzer scopes this package and the clock capture below
// carries the one reasoned exemption, exactly like the runlog phase
// timers.
//
// Every method is safe for concurrent use (worker goroutines begin and
// end cell spans while other workers run), and every method is a no-op
// on a nil *Tracer or nil *ActiveSpan, so instrumented code needs no
// "is tracing on" branches.
package obs

import (
	"sort"
	"sync"
	"time"
)

// SpanID identifies a span within one Tracer; 0 is "no parent".
type SpanID int64

// Attr is one key/value annotation on a span. Values should be strings,
// integers, or floats so every sink can serialize them.
type Attr struct {
	Key   string
	Value any
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Span is one completed span: a named interval with its parent link and
// attributes. Start and Dur are offsets from the tracer's epoch — spans
// never carry absolute wall-clock, which keeps golden tests trivial and
// sinks free to stamp their own epoch.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Start  time.Duration
	Dur    time.Duration
	Attrs  []Attr
}

// Tracer collects spans. Create with New (live clock) or NewWithClock
// (tests). The zero Tracer is not usable; a nil *Tracer is a valid
// "tracing disabled" tracer on which every method no-ops.
type Tracer struct {
	mu     sync.Mutex
	clock  func() time.Time
	epoch  time.Time
	nextID SpanID
	spans  []Span
}

// New returns a tracer reading the live wall clock.
func New() *Tracer {
	return NewWithClock(time.Now) //st2:det-ok span wall-clock; spans feed observability sinks (chrome trace, runlog v2) only, never RunStats or sweep rates
}

// NewWithClock returns a tracer with an injected clock, for
// deterministic tests and golden files.
func NewWithClock(clock func() time.Time) *Tracer {
	return &Tracer{clock: clock, epoch: clock()}
}

// Enabled reports whether spans are being collected (t is non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Elapsed returns the time since the tracer's epoch (0 on a nil tracer).
func (t *Tracer) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return t.clock().Sub(t.epoch)
}

// ActiveSpan is a span that has begun and not yet ended. It is owned by
// the goroutine that began it until End; Child may be called from any
// goroutine (the tracer serializes).
type ActiveSpan struct {
	t      *Tracer
	id     SpanID
	parent SpanID
	name   string
	start  time.Duration
	attrs  []Attr
}

func (t *Tracer) begin(parent SpanID, name string, attrs []Attr) *ActiveSpan {
	if t == nil {
		return nil
	}
	now := t.clock().Sub(t.epoch)
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &ActiveSpan{t: t, id: id, parent: parent, name: name, start: now, attrs: attrs}
}

// Begin starts a root span.
func (t *Tracer) Begin(name string, attrs ...Attr) *ActiveSpan {
	return t.begin(0, name, attrs)
}

// Child starts a span nested under s. On a nil s it returns nil, so
// instrumentation composes without nil checks.
func (s *ActiveSpan) Child(name string, attrs ...Attr) *ActiveSpan {
	if s == nil {
		return nil
	}
	return s.t.begin(s.id, name, attrs)
}

// Add appends attributes to the span (typically results known only at
// the end, like bytes produced).
func (s *ActiveSpan) Add(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// Start returns the span's start offset from the tracer epoch (0 on nil).
func (s *ActiveSpan) Start() time.Duration {
	if s == nil {
		return 0
	}
	return s.start
}

// End completes the span and records it on the tracer. Ending twice
// records twice; don't.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	end := s.t.clock().Sub(s.t.epoch)
	dur := end - s.start
	if dur < 0 {
		dur = 0
	}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, Span{
		ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start, Dur: dur, Attrs: s.attrs,
	})
	s.t.mu.Unlock()
}

// Spans returns the completed spans ordered by (start, id) — a stable
// order independent of which worker goroutine ended a span first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns the number of completed spans (0 on a nil tracer).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
