package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// This file owns the append-only trend-array format shared by
// BENCH_dse.json and BENCH_smoke.json: a JSON array of flat entry
// objects, newest last, diffable with line-oriented tools and gated by
// cmd/st2trend. A legacy single-object file (the pre-trend format) is
// wrapped into a one-entry array on first append.

// ReadTrend returns the entries of the trend array at path, oldest
// first. A legacy single-object file reads as a one-entry array; a
// missing or empty file reads as an empty array with no error.
func ReadTrend(path string) ([]json.RawMessage, error) {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimSpace(buf)
	if len(trimmed) == 0 {
		return nil, nil
	}
	if trimmed[0] != '[' {
		return []json.RawMessage{json.RawMessage(trimmed)}, nil
	}
	var entries []json.RawMessage
	if err := json.Unmarshal(trimmed, &entries); err != nil {
		return nil, fmt.Errorf("obs: trend array %s: %w", path, err)
	}
	return entries, nil
}

// AppendTrend appends entry to the trend array at path, creating the
// file (or wrapping a legacy single-object file) as needed.
func AppendTrend(path string, entry any) error {
	entries, err := ReadTrend(path)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(entry, "  ", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding trend entry: %w", err)
	}
	entries = append(entries, json.RawMessage(buf))
	var out bytes.Buffer
	out.WriteString("[\n")
	for i, e := range entries {
		out.WriteString("  ")
		out.Write(e)
		if i < len(entries)-1 {
			out.WriteString(",")
		}
		out.WriteString("\n")
	}
	out.WriteString("]\n")
	return os.WriteFile(path, out.Bytes(), 0o644)
}
